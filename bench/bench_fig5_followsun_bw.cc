// Figure 5: Follow-the-Sun — per-node communication overhead (KB/s) as the
// number of data centers grows.
#include <cstdio>

#include "apps/followsun.h"

using namespace cologne;
using namespace cologne::apps;

int main() {
  printf("Figure 5: per-node communication overhead (Follow-the-Sun)\n");
  printf("%15s %28s\n", "# data centers", "per-node overhead (KB/s)");
  double last = 0;
  for (int n : {2, 4, 6, 8, 10}) {
    FtsConfig cfg;
    cfg.num_dcs = n;
    cfg.seed = 100 + static_cast<uint64_t>(n);
    FollowTheSunScenario scenario(cfg);
    auto r = scenario.Run();
    if (!r.ok()) {
      printf("n=%d failed: %s\n", n, r.status().ToString().c_str());
      return 1;
    }
    printf("%15d %28.3f\n", n, r.value().avg_per_node_kBps);
    last = r.value().avg_per_node_kBps;
  }
  printf("\n(paper: linear growth, about 3.5 KB/s at 10 data centers; "
         "measured %.3f KB/s)\n", last);
  return 0;
}

// Microbenchmarks (google-benchmark) for the Datalog engine substrate.
#include <benchmark/benchmark.h>

#include "datalog/engine.h"

using namespace cologne;
using namespace cologne::datalog;

namespace {

Row R2(int64_t a, int64_t b) { return Row{Value::Int(a), Value::Int(b)}; }

TableSchema Schema(const std::string& name, int arity) {
  TableSchema s;
  s.name = name;
  for (int i = 0; i < arity; ++i) s.attrs.push_back("A" + std::to_string(i));
  return s;
}

void SetupJoin(Engine* e) {
  (void)e->DeclareTable(Schema("a", 2));
  (void)e->DeclareTable(Schema("b", 2));
  (void)e->DeclareTable(Schema("h", 2));
  RuleIR r;
  r.label = "j";
  r.head = {"h", {TermIR::Slot(0), TermIR::Slot(2)}};
  r.body.push_back({"a", {TermIR::Slot(0), TermIR::Slot(1)}});
  r.body.push_back({"b", {TermIR::Slot(1), TermIR::Slot(2)}});
  r.trigger = {1, 1};
  r.num_slots = 3;
  (void)e->AddRule(std::move(r));
}

}  // namespace

// Incremental insert throughput through a two-way join.
static void BM_IncrementalJoinInsert(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine e;
    SetupJoin(&e);
    for (int i = 0; i < n; ++i) {
      (void)e.Apply("b", R2(i % 50, i), +1);
    }
    (void)e.Flush();
    for (int i = 0; i < n; ++i) {
      (void)e.Apply("a", R2(i, i % 50), +1);
    }
    (void)e.Flush();
    benchmark::DoNotOptimize(e.GetTable("h")->size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_IncrementalJoinInsert)->Arg(256)->Arg(1024)->Arg(4096);

// Aggregate maintenance under churn.
static void BM_AggregateChurn(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine e;
    (void)e.DeclareTable(Schema("item", 2));
    (void)e.DeclareTable(Schema("total", 2));
    RuleIR r;
    r.label = "agg";
    r.head = {"total", {TermIR::Slot(0), TermIR::Slot(1)}};
    r.agg = AggIR{AggKind::kSum, 1, 1};
    r.body.push_back({"item", {TermIR::Slot(0), TermIR::Slot(1)}});
    r.trigger = {1};
    r.num_slots = 2;
    (void)e.AddRule(std::move(r));
    for (int i = 0; i < n; ++i) {
      (void)e.Apply("item", R2(i % 16, i), +1);
    }
    (void)e.Flush();
    for (int i = 0; i < n; i += 2) {
      (void)e.Apply("item", R2(i % 16, i), -1);
    }
    (void)e.Flush();
    benchmark::DoNotOptimize(e.GetTable("total")->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AggregateChurn)->Arg(256)->Arg(1024)->Arg(4096);

// Recursive transitive closure (PSN fixpoint) on a chain graph.
static void BM_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine e;
    (void)e.DeclareTable(Schema("edge", 2));
    (void)e.DeclareTable(Schema("path", 2));
    RuleIR base;
    base.label = "b";
    base.head = {"path", {TermIR::Slot(0), TermIR::Slot(1)}};
    base.body.push_back({"edge", {TermIR::Slot(0), TermIR::Slot(1)}});
    base.trigger = {1};
    base.num_slots = 2;
    (void)e.AddRule(std::move(base));
    RuleIR rec;
    rec.label = "r";
    rec.head = {"path", {TermIR::Slot(0), TermIR::Slot(2)}};
    rec.body.push_back({"edge", {TermIR::Slot(0), TermIR::Slot(1)}});
    rec.body.push_back({"path", {TermIR::Slot(1), TermIR::Slot(2)}});
    rec.trigger = {1, 1};
    rec.num_slots = 3;
    (void)e.AddRule(std::move(rec));
    for (int i = 0; i + 1 < n; ++i) {
      (void)e.Apply("edge", R2(i, i + 1), +1);
    }
    (void)e.Flush();
    benchmark::DoNotOptimize(e.GetTable("path")->size());
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(16)->Arg(48)->Arg(96);

BENCHMARK_MAIN();

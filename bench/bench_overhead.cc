// Sections 6.2-6.4 overhead numbers: Colog compilation time, per-COP solver
// time, and memory footprints for each case-study program.
//
//   bench_overhead            full report (compilation + ACloud COP)
//   bench_overhead obsjson    observability overhead on the 10-DC batched
//                             FTS soak, written to BENCH_obs.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "apps/followsun.h"
#include "apps/programs.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "runtime/instance.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

double CompileMs(const std::string& src, int reps = 10) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    auto r = colog::CompileColog(src);
    if (!r.ok()) return -1;
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         reps;
}

// The bench_fig4 r10 soak shape: 10 DCs over the reliable transport with
// batched per-link solves — the heaviest recorded scenario, so the obs
// layer's relative cost is measured where it matters.
FtsConfig ObsSoakConfig(bool obs) {
  FtsConfig cfg;
  cfg.num_dcs = 10;
  cfg.seed = 104;
  cfg.net_reliable = true;
  cfg.batch_links = true;
  cfg.max_link_batch = 3;
  cfg.capacity = 45;
  cfg.demand_hi = 4;
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = 8;
  cfg.solver_time_ms = 0;
  cfg.obs_metrics = obs;
  return cfg;
}

// One timed soak run; returns wall ms, or -1 on failure. The trace recorder
// is attached in BOTH arms so the measured delta is the obs layer alone
// (metric accumulation, provenance recording, `metrics` line emission) and
// not the baseline trace plumbing.
double TimedSoakMs(bool obs, runtime::TraceRecorder* trace) {
  using Clock = std::chrono::steady_clock;
  FtsConfig cfg = ObsSoakConfig(obs);
  cfg.trace = trace;
  FollowTheSunScenario scenario(cfg);
  auto t0 = Clock::now();
  auto r = scenario.Run();
  double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!r.ok()) {
    fprintf(stderr, "obs soak (obs=%d) failed: %s\n", obs ? 1 : 0,
            r.status().ToString().c_str());
    return -1;
  }
  return ms;
}

// Observability overhead: alternate off/on runs, keep the per-arm minimum
// (the standard noise-resistant estimator for "how fast can this go"), and
// report the relative cost. Target is <=3%; the row records the measured
// number either way so regressions are visible in the uploaded artifact.
int RunObsJson() {
  constexpr int kReps = 3;
  constexpr double kTargetPct = 3.0;
  double best_off = -1, best_on = -1;
  size_t metrics_lines = 0, trace_lines_on = 0, trace_lines_off = 0;
  for (int i = 0; i < kReps; ++i) {
    runtime::TraceRecorder off_trace, on_trace;
    double off = TimedSoakMs(false, &off_trace);
    double on = TimedSoakMs(true, &on_trace);
    if (off < 0 || on < 0) return 1;
    if (best_off < 0 || off < best_off) best_off = off;
    if (best_on < 0 || on < best_on) best_on = on;
    trace_lines_off = off_trace.lines().size();
    trace_lines_on = on_trace.lines().size();
    metrics_lines = 0;
    for (const std::string& line : on_trace.lines()) {
      if (line.find("\"ev\":\"metrics\"") != std::string::npos) {
        ++metrics_lines;
      }
    }
  }
  double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::string row = StrFormat(
      "{\"bench\":\"obs_overhead\",\"case\":\"r10_soak\",\"backend\":\"lns\","
      "\"seed\":104,\"dcs\":10,\"reps\":%d,\"wall_ms_off\":%.1f,"
      "\"wall_ms_on\":%.1f,\"overhead_pct\":%.2f,\"target_pct\":%.1f,"
      "\"within_target\":%d,\"metrics_lines\":%zu,\"trace_lines_off\":%zu,"
      "\"trace_lines_on\":%zu}",
      kReps, best_off, best_on, overhead_pct, kTargetPct,
      overhead_pct <= kTargetPct ? 1 : 0, metrics_lines, trace_lines_off,
      trace_lines_on);
  printf("%s\n", row.c_str());
  printf("obs overhead on the 10-DC soak: %.2f%% (target <=%.1f%%)\n",
         overhead_pct, kTargetPct);
  FILE* out = fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open BENCH_obs.json for writing\n");
    return 1;
  }
  fprintf(out, "%s\n", row.c_str());
  fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "obsjson") return RunObsJson();
  printf("Compilation time (avg of 10 runs)\n");
  printf("  %-32s %10s %26s\n", "program", "this impl", "paper (codegen+g++)");
  struct P {
    const char* name;
    std::string src;
    const char* paper;
  };
  for (const P& p : std::vector<P>{
           {"ACloud (centralized)", ACloudProgram(true, 3), "0.5 s"},
           {"Follow-the-Sun (distributed)",
            FollowTheSunDistributedProgram(true), "0.6 s"},
           {"Wireless (centralized)", WirelessCentralizedProgram(true),
            "1.2 s"},
           {"Wireless (distributed)", WirelessDistributedProgram(), "1.6 s"},
       }) {
    printf("  %-32s %8.2fms %26s\n", p.name, CompileMs(p.src), p.paper);
  }
  printf("  (ours interprets plans in-process; the original emitted C++ and "
         "invoked a compiler)\n");

  // ACloud solver overhead on a representative instance.
  auto compiled = colog::CompileColog(ACloudProgram(false));
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::Instance inst(0, &prog);
  if (!inst.Init().ok()) return 1;
  Rng rng(5);
  for (int h = 0; h < 4; ++h) {
    (void)inst.InsertFact("host", {Value::Int(h), Value::Int(0), Value::Int(0)});
    (void)inst.InsertFact("hostMemThres", {Value::Int(h), Value::Int(64)});
  }
  for (int v = 0; v < 40; ++v) {
    Row vm_row{Value::Int(v), Value::Int(rng.UniformInt(20, 90)),
               Value::Int(2)};
    (void)inst.InsertFact("vm", std::move(vm_row));
    Row origin_row{Value::Int(v), Value::Int(rng.UniformInt(0, 3))};
    (void)inst.InsertFact("origin", std::move(origin_row));
  }
  printf("\nACloud COP execution (40 VMs x 4 hosts, 2 s cap; paper used 10 s "
         "cap), per backend:\n");
  for (solver::Backend backend :
       {solver::Backend::kBranchAndBound, solver::Backend::kLns}) {
    runtime::SolveOptions o = inst.solve_options();
    o.time_limit_ms = 2000;
    o.backend = backend;
    inst.set_solve_options(o);
    inst.reset_warm_start();
    auto out = inst.InvokeSolver();
    if (!out.ok()) {
      printf("solve failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
    const runtime::SolveOutput& res = out.value();
    printf("  [%s] status %s, objective (CPU stdev) %.2f\n",
           solver::BackendName(res.backend), solver::SolveStatusName(res.status),
           res.objective);
    printf("  model: %zu vars, %zu propagators\n", res.model_vars,
           res.model_propagators);
    printf("  search: %llu nodes, %llu propagations, %llu iterations, "
           "%llu restarts, %.0f ms\n",
           static_cast<unsigned long long>(res.stats.nodes),
           static_cast<unsigned long long>(res.stats.propagations),
           static_cast<unsigned long long>(res.stats.iterations),
           static_cast<unsigned long long>(res.stats.restarts),
           res.stats.wall_ms);
    printf("  solver memory %.1f MB (paper: 9 MB avg / 20 MB max)\n",
           static_cast<double>(res.model_memory_bytes) / 1048576.0);
    printf("  engine tables %.2f MB (paper: 12 MB RapidNet base)\n",
           static_cast<double>(inst.engine().MemoryEstimate()) / 1048576.0);
    SolveRecord rec;
    rec.bench = "overhead_acloud";
    rec.backend = solver::BackendName(res.backend);
    rec.seed = res.seed;
    rec.nodes = res.stats.nodes;
    rec.iterations = res.stats.iterations;
    rec.restarts = res.stats.restarts;
    rec.wall_ms = res.stats.wall_ms;
    rec.objective = res.objective;
    rec.has_objective = res.has_objective;
    printf("  %s\n", rec.ToJsonLine().c_str());
  }
  return 0;
}

// Sections 6.2-6.4 overhead numbers: Colog compilation time, per-COP solver
// time, and memory footprints for each case-study program.
#include <chrono>
#include <cstdio>

#include "apps/programs.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "common/stats.h"
#include "runtime/instance.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

double CompileMs(const std::string& src, int reps = 10) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    auto r = colog::CompileColog(src);
    if (!r.ok()) return -1;
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         reps;
}

}  // namespace

int main() {
  printf("Compilation time (avg of 10 runs)\n");
  printf("  %-32s %10s %26s\n", "program", "this impl", "paper (codegen+g++)");
  struct P {
    const char* name;
    std::string src;
    const char* paper;
  };
  for (const P& p : std::vector<P>{
           {"ACloud (centralized)", ACloudProgram(true, 3), "0.5 s"},
           {"Follow-the-Sun (distributed)",
            FollowTheSunDistributedProgram(true), "0.6 s"},
           {"Wireless (centralized)", WirelessCentralizedProgram(true),
            "1.2 s"},
           {"Wireless (distributed)", WirelessDistributedProgram(), "1.6 s"},
       }) {
    printf("  %-32s %8.2fms %26s\n", p.name, CompileMs(p.src), p.paper);
  }
  printf("  (ours interprets plans in-process; the original emitted C++ and "
         "invoked a compiler)\n");

  // ACloud solver overhead on a representative instance.
  auto compiled = colog::CompileColog(ACloudProgram(false));
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::Instance inst(0, &prog);
  if (!inst.Init().ok()) return 1;
  Rng rng(5);
  for (int h = 0; h < 4; ++h) {
    (void)inst.InsertFact("host", {Value::Int(h), Value::Int(0), Value::Int(0)});
    (void)inst.InsertFact("hostMemThres", {Value::Int(h), Value::Int(64)});
  }
  for (int v = 0; v < 40; ++v) {
    Row vm_row{Value::Int(v), Value::Int(rng.UniformInt(20, 90)),
               Value::Int(2)};
    (void)inst.InsertFact("vm", std::move(vm_row));
    Row origin_row{Value::Int(v), Value::Int(rng.UniformInt(0, 3))};
    (void)inst.InsertFact("origin", std::move(origin_row));
  }
  printf("\nACloud COP execution (40 VMs x 4 hosts, 2 s cap; paper used 10 s "
         "cap), per backend:\n");
  for (solver::Backend backend :
       {solver::Backend::kBranchAndBound, solver::Backend::kLns}) {
    runtime::SolveOptions o = inst.solve_options();
    o.time_limit_ms = 2000;
    o.backend = backend;
    inst.set_solve_options(o);
    inst.reset_warm_start();
    auto out = inst.InvokeSolver();
    if (!out.ok()) {
      printf("solve failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
    const runtime::SolveOutput& res = out.value();
    printf("  [%s] status %s, objective (CPU stdev) %.2f\n",
           solver::BackendName(res.backend), solver::SolveStatusName(res.status),
           res.objective);
    printf("  model: %zu vars, %zu propagators\n", res.model_vars,
           res.model_propagators);
    printf("  search: %llu nodes, %llu propagations, %llu iterations, "
           "%llu restarts, %.0f ms\n",
           static_cast<unsigned long long>(res.stats.nodes),
           static_cast<unsigned long long>(res.stats.propagations),
           static_cast<unsigned long long>(res.stats.iterations),
           static_cast<unsigned long long>(res.stats.restarts),
           res.stats.wall_ms);
    printf("  solver memory %.1f MB (paper: 9 MB avg / 20 MB max)\n",
           static_cast<double>(res.model_memory_bytes) / 1048576.0);
    printf("  engine tables %.2f MB (paper: 12 MB RapidNet base)\n",
           static_cast<double>(inst.engine().MemoryEstimate()) / 1048576.0);
    SolveRecord rec;
    rec.bench = "overhead_acloud";
    rec.backend = solver::BackendName(res.backend);
    rec.seed = res.seed;
    rec.nodes = res.stats.nodes;
    rec.iterations = res.stats.iterations;
    rec.restarts = res.stats.restarts;
    rec.wall_ms = res.stats.wall_ms;
    rec.objective = res.objective;
    rec.has_objective = res.has_objective;
    printf("  %s\n", rec.ToJsonLine().c_str());
  }
  return 0;
}

// Sections 6.2-6.4 overhead numbers: Colog compilation time, per-COP solver
// time, and memory footprints for each case-study program.
//
//   bench_overhead             full report (compilation + ACloud COP)
//   bench_overhead obsjson     observability overhead on the 10-DC batched
//                              FTS soak, written to BENCH_obs.json
//   bench_overhead resolvejson 1-fact-delta incremental re-solve latency vs
//                              a cold solve (ISSUE 7), BENCH_resolve.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "apps/common_config.h"
#include "apps/followsun.h"
#include "apps/programs.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "runtime/instance.h"
#include "runtime/system.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

double CompileMs(const std::string& src, int reps = 10) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    auto r = colog::CompileColog(src);
    if (!r.ok()) return -1;
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         reps;
}

// The bench_fig4 r10 soak shape: 10 DCs over the reliable transport with
// batched per-link solves — the heaviest recorded scenario, so the obs
// layer's relative cost is measured where it matters.
FtsConfig ObsSoakConfig(bool obs) {
  FtsConfig cfg;
  cfg.num_dcs = 10;
  cfg.seed = 104;
  cfg.net_reliable = true;
  cfg.batch_links = true;
  cfg.max_link_batch = 3;
  cfg.capacity = 45;
  cfg.demand_hi = 4;
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = 8;
  cfg.solver_time_ms = 0;
  cfg.obs_metrics = obs;
  return cfg;
}

// One timed soak run; returns wall ms, or -1 on failure. The trace recorder
// is attached in BOTH arms so the measured delta is the obs layer alone
// (metric accumulation, provenance recording, `metrics` line emission) and
// not the baseline trace plumbing.
double TimedSoakMs(bool obs, runtime::TraceRecorder* trace) {
  using Clock = std::chrono::steady_clock;
  FtsConfig cfg = ObsSoakConfig(obs);
  cfg.trace = trace;
  FollowTheSunScenario scenario(cfg);
  auto t0 = Clock::now();
  auto r = scenario.Run();
  double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!r.ok()) {
    fprintf(stderr, "obs soak (obs=%d) failed: %s\n", obs ? 1 : 0,
            r.status().ToString().c_str());
    return -1;
  }
  return ms;
}

// Observability overhead: alternate off/on runs, keep the per-arm minimum
// (the standard noise-resistant estimator for "how fast can this go"), and
// report the relative cost. Target is <=3%; the row records the measured
// number either way so regressions are visible in the uploaded artifact.
int RunObsJson() {
  constexpr int kReps = 3;
  constexpr double kTargetPct = 3.0;
  double best_off = -1, best_on = -1;
  size_t metrics_lines = 0, trace_lines_on = 0, trace_lines_off = 0;
  for (int i = 0; i < kReps; ++i) {
    runtime::TraceRecorder off_trace, on_trace;
    double off = TimedSoakMs(false, &off_trace);
    double on = TimedSoakMs(true, &on_trace);
    if (off < 0 || on < 0) return 1;
    if (best_off < 0 || off < best_off) best_off = off;
    if (best_on < 0 || on < best_on) best_on = on;
    trace_lines_off = off_trace.lines().size();
    trace_lines_on = on_trace.lines().size();
    metrics_lines = 0;
    for (const std::string& line : on_trace.lines()) {
      if (line.find("\"ev\":\"metrics\"") != std::string::npos) {
        ++metrics_lines;
      }
    }
  }
  double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::string row = StrFormat(
      "{\"bench\":\"obs_overhead\",\"case\":\"r10_soak\",\"backend\":\"lns\","
      "\"seed\":104,\"dcs\":10,\"reps\":%d,\"wall_ms_off\":%.1f,"
      "\"wall_ms_on\":%.1f,\"overhead_pct\":%.2f,\"target_pct\":%.1f,"
      "\"within_target\":%d,\"metrics_lines\":%zu,\"trace_lines_off\":%zu,"
      "\"trace_lines_on\":%zu}",
      kReps, best_off, best_on, overhead_pct, kTargetPct,
      overhead_pct <= kTargetPct ? 1 : 0, metrics_lines, trace_lines_off,
      trace_lines_on);
  printf("%s\n", row.c_str());
  printf("obs overhead on the 10-DC soak: %.2f%% (target <=%.1f%%)\n",
         overhead_pct, kTargetPct);
  FILE* out = fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open BENCH_obs.json for writing\n");
    return 1;
  }
  fprintf(out, "%s\n", row.c_str());
  fclose(out);
  return 0;
}

// ---- Incremental re-solve latency (ISSUE 7) --------------------------------

// One measured arm of the re-solve bench: a 10-DC reliable chain
// (0-1-...-9, node i initiating the negotiation for link (i,i+1)), primed
// to the system fixed point, then hit with a single fact delta at the tail
// DC (its capacity collapses). Re-converging means every initiator
// re-solves once; the delta only perturbs node 8's model, so with the
// incremental path on, nodes 0..7 serve their cached solve from the
// content-hash reuse check while node 8 rebuilds. The cold arm re-solves
// every node from scratch — what every re-convergence sweep cost before
// SOLVER_INCREMENTAL.
struct ResolveArm {
  double ms = -1;
  int dirty = 0, clean = 0, reused = 0;
  bool fallback = false;
  double objective = 0;
  bool ok = false;
};

constexpr NodeId kChainDcs = 10;
constexpr NodeId kInitiators = kChainDcs - 1;
constexpr int kDemands = 64;  // decision vars per negotiated link

ResolveArm TimedResolve(bool incremental, const colog::CompiledProgram& prog) {
  using Clock = std::chrono::steady_clock;
  ResolveArm arm;
  FtsConfig cfg = ObsSoakConfig(false);
  cfg.solver_incremental = true;  // both arms prime the same steady state
  runtime::System sys(&prog, kChainDcs, MakeSystemOptions(cfg));
  if (!sys.Init().ok()) return arm;
  auto N = [](NodeId n) { return Value::Node(n); };
  auto I = [](int64_t v) { return Value::Int(v); };
  for (NodeId i = 0; i + 1 < kChainDcs; ++i) {
    (void)sys.AddLink(i, i + 1);
    (void)sys.InsertFact(i, "link", {N(i), N(i + 1)});
    (void)sys.InsertFact(i + 1, "link", {N(i + 1), N(i)});
    (void)sys.InsertFact(i, "migCost", {N(i), N(i + 1), I(2)});
  }
  for (NodeId x = 0; x < kChainDcs; ++x) {
    (void)sys.InsertFact(x, "resource", {N(x), I(200)});
    (void)sys.InsertFact(x, "opCost", {N(x), I(1)});
    for (int d = 0; d < kDemands; ++d) {
      (void)sys.InsertFact(x, "curVm", {N(x), I(d), I((x + d) % 3 + 1)});
      (void)sys.InsertFact(
          x, "commCost",
          {N(x), I(d), I(static_cast<int>(x) == d % 10 ? 1 : 40)});
      if (x < kInitiators) (void)sys.InsertFact(x, "dc", {N(x), I(d)});
    }
  }
  sys.RunToQuiescence();
  for (NodeId i = 0; i < kInitiators; ++i) {
    (void)sys.InsertFact(i, "setLink", {N(i), N(i + 1)});
  }
  sys.RunToQuiescence();

  runtime::SolveRequest req = MakeSolveRequest(cfg, /*batched_prefix=*/2);
  for (NodeId i = 0; i < kInitiators; ++i) {
    runtime::Instance& inst = sys.node(i);
    inst.set_solve_options(
        OverlaySolveOptions(cfg, inst.solve_options(), cfg.solver_time_ms));
  }
  // Prime sweeps until the negotiation reaches its fixed point: every
  // initiator's re-solve classifies clean (served from the reuse cache).
  for (int sweep = 0; sweep < 20; ++sweep) {
    int stable = 0;
    for (NodeId i = 0; i < kInitiators; ++i) {
      req.changed_tables = sys.node(i).touched_tables();
      auto out = sys.node(i).Solve(req);
      if (!out.ok()) return arm;
      if (out.value().incr_dirty == 0) ++stable;
      sys.RunToQuiescence();
    }
    if (stable == kInitiators) break;
  }
  // The 1-fact delta: the tail DC's capacity collapses (keyed replacement
  // of its resource row), forcing link (8,9) to renegotiate. Only node 8's
  // model reads that fact; every other initiator's inputs are untouched.
  (void)sys.InsertFact(kChainDcs - 1, "resource", {N(kChainDcs - 1), I(126)});
  sys.RunToQuiescence();

  if (!incremental) {
    for (NodeId i = 0; i < kInitiators; ++i) {
      runtime::Instance& inst = sys.node(i);
      inst.reset_warm_start();
      runtime::SolveOptions o = inst.solve_options();
      o.incremental = false;
      inst.set_solve_options(o);
    }
    req.mode = runtime::SolveMode::kBatched;
  }
  // The measured unit: one full re-convergence sweep (every initiator
  // re-solves once, then the writeback deltas drain).
  auto t0 = Clock::now();
  for (NodeId i = 0; i < kInitiators; ++i) {
    req.changed_tables = sys.node(i).touched_tables();
    auto out = sys.node(i).Solve(req);
    if (!out.ok() || !out.value().has_solution()) return arm;
    const runtime::SolveOutput& o = out.value();
    if (o.incr_dirty > 0) arm.dirty += o.incr_dirty;
    if (o.incr_clean > 0) arm.clean += o.incr_clean;
    if (o.incr_reused) ++arm.reused;
    if (o.incr_fallback) arm.fallback = true;
    arm.objective += o.objective;
  }
  sys.RunToQuiescence();
  arm.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  arm.ok = true;
  return arm;
}

// Re-solve latency after a 1-fact delta: alternate cold/incremental arms,
// keep each arm's minimum over kReps runs, and report the speedup against
// the >=5x target. Both arms sweep the identical post-delta system with the
// same backend/budget knobs; the only difference is the incremental state.
int RunResolveJson() {
  constexpr int kReps = 3;
  constexpr double kTarget = 5.0;
  auto compiled = colog::CompileColog(
      FollowTheSunDistributedProgram(false, 60, 20, /*batched=*/true));
  if (!compiled.ok()) {
    fprintf(stderr, "compile: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  colog::CompiledProgram prog = std::move(compiled).value();
  ResolveArm best_cold, best_incr;
  for (int i = 0; i < kReps; ++i) {
    ResolveArm cold = TimedResolve(false, prog);
    ResolveArm incr = TimedResolve(true, prog);
    if (!cold.ok || !incr.ok) {
      fprintf(stderr, "resolve bench arm failed (cold ok=%d incr ok=%d)\n",
              cold.ok ? 1 : 0, incr.ok ? 1 : 0);
      return 1;
    }
    if (!best_cold.ok || cold.ms < best_cold.ms) best_cold = cold;
    if (!best_incr.ok || incr.ms < best_incr.ms) best_incr = incr;
  }
  double speedup = best_incr.ms > 0 ? best_cold.ms / best_incr.ms : 0;
  std::string row = StrFormat(
      "{\"bench\":\"incr_resolve\",\"case\":\"r10_chain_sweep_1fact\","
      "\"backend\":\"lns\",\"seed\":104,\"dcs\":10,\"reps\":%d,"
      "\"wall_ms_cold\":%.3f,\"wall_ms_incr\":%.3f,\"speedup\":%.2f,"
      "\"target\":%.1f,\"within_target\":%d,\"dirty\":%d,\"clean\":%d,"
      "\"reused\":%d,\"fallback\":%d,\"objective_cold\":%.1f,"
      "\"objective_incr\":%.1f}",
      kReps, best_cold.ms, best_incr.ms, speedup, kTarget,
      speedup >= kTarget ? 1 : 0, best_incr.dirty, best_incr.clean,
      best_incr.reused, best_incr.fallback ? 1 : 0, best_cold.objective,
      best_incr.objective);
  printf("%s\n", row.c_str());
  printf("1-fact-delta re-convergence sweep: cold %.3f ms, incremental "
         "%.3f ms (%d/%d node solves reused), speedup %.2fx (target "
         ">=%.1fx)\n",
         best_cold.ms, best_incr.ms, best_incr.reused, kInitiators, speedup,
         kTarget);
  FILE* out = fopen("BENCH_resolve.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open BENCH_resolve.json for writing\n");
    return 1;
  }
  fprintf(out, "%s\n", row.c_str());
  fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "obsjson") return RunObsJson();
  if (argc > 1 && std::string(argv[1]) == "resolvejson") {
    return RunResolveJson();
  }
  printf("Compilation time (avg of 10 runs)\n");
  printf("  %-32s %10s %26s\n", "program", "this impl", "paper (codegen+g++)");
  struct P {
    const char* name;
    std::string src;
    const char* paper;
  };
  for (const P& p : std::vector<P>{
           {"ACloud (centralized)", ACloudProgram(true, 3), "0.5 s"},
           {"Follow-the-Sun (distributed)",
            FollowTheSunDistributedProgram(true), "0.6 s"},
           {"Wireless (centralized)", WirelessCentralizedProgram(true),
            "1.2 s"},
           {"Wireless (distributed)", WirelessDistributedProgram(), "1.6 s"},
       }) {
    printf("  %-32s %8.2fms %26s\n", p.name, CompileMs(p.src), p.paper);
  }
  printf("  (ours interprets plans in-process; the original emitted C++ and "
         "invoked a compiler)\n");

  // ACloud solver overhead on a representative instance.
  auto compiled = colog::CompileColog(ACloudProgram(false));
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::Instance inst(0, &prog);
  if (!inst.Init().ok()) return 1;
  Rng rng(5);
  for (int h = 0; h < 4; ++h) {
    (void)inst.InsertFact("host", {Value::Int(h), Value::Int(0), Value::Int(0)});
    (void)inst.InsertFact("hostMemThres", {Value::Int(h), Value::Int(64)});
  }
  for (int v = 0; v < 40; ++v) {
    Row vm_row{Value::Int(v), Value::Int(rng.UniformInt(20, 90)),
               Value::Int(2)};
    (void)inst.InsertFact("vm", std::move(vm_row));
    Row origin_row{Value::Int(v), Value::Int(rng.UniformInt(0, 3))};
    (void)inst.InsertFact("origin", std::move(origin_row));
  }
  printf("\nACloud COP execution (40 VMs x 4 hosts, 2 s cap; paper used 10 s "
         "cap), per backend:\n");
  for (solver::Backend backend :
       {solver::Backend::kBranchAndBound, solver::Backend::kLns,
        solver::Backend::kLocalSearch}) {
    runtime::SolveOptions o = inst.solve_options();
    o.time_limit_ms = 2000;
    o.backend = backend;
    inst.set_solve_options(o);
    inst.reset_warm_start();
    auto out = inst.Solve();
    if (!out.ok()) {
      printf("solve failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
    const runtime::SolveOutput& res = out.value();
    printf("  [%s] status %s, objective (CPU stdev) %.2f\n",
           solver::BackendName(res.backend), solver::SolveStatusName(res.status),
           res.objective);
    printf("  model: %zu vars, %zu propagators\n", res.model_vars,
           res.model_propagators);
    printf("  search: %llu nodes, %llu propagations, %llu iterations, "
           "%llu restarts, %.0f ms\n",
           static_cast<unsigned long long>(res.stats.nodes),
           static_cast<unsigned long long>(res.stats.propagations),
           static_cast<unsigned long long>(res.stats.iterations),
           static_cast<unsigned long long>(res.stats.restarts),
           res.stats.wall_ms);
    printf("  solver memory %.1f MB (paper: 9 MB avg / 20 MB max)\n",
           static_cast<double>(res.model_memory_bytes) / 1048576.0);
    printf("  engine tables %.2f MB (paper: 12 MB RapidNet base)\n",
           static_cast<double>(inst.engine().MemoryEstimate()) / 1048576.0);
    SolveRecord rec;
    rec.bench = "overhead_acloud";
    rec.backend = solver::BackendName(res.backend);
    rec.seed = res.seed;
    rec.nodes = res.stats.nodes;
    rec.iterations = res.stats.iterations;
    rec.restarts = res.stats.restarts;
    rec.wall_ms = res.stats.wall_ms;
    rec.objective = res.objective;
    rec.has_objective = res.has_objective;
    printf("  %s\n", rec.ToJsonLine().c_str());
  }
  return 0;
}

// Microbenchmarks (google-benchmark) for the constraint solver substrate,
// including backend comparisons (B&B vs LNS vs local_search vs portfolio vs
// parallel LNS) at equal time budgets: the per-iteration `objective` counter
// is the quality signal to compare. Each backend-comparison benchmark also emits one
// SolveRecord JSON row (consumed by the CI bench-smoke job).
//
// Two extra modes, both over the same canonical fixed-seed micro instances
// (deterministic node/iteration budgets, no wall clock):
//   bench_micro_solver solverjson    writes BENCH_solver.json — one row per
//                                    case with per-backend nodes/sec,
//                                    propagations/sec, peak memory, trail
//                                    saves, and domain-vector allocations
//                                    (the IntDomain copy-counting hook) —
//                                    the solver-core perf trajectory the CI
//                                    bench-smoke job schema-validates.
//   bench_micro_solver determinism   solves every case twice and fails
//                                    (exit 1) on any node/failure/solution
//                                    divergence — the CI Release gate that
//                                    keeps solver perf work from silently
//                                    changing the search tree.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/strings.h"
#include "solver/context_cache.h"
#include "solver/domain.h"
#include "solver/model.h"

using namespace cologne::solver;

namespace {

// google-benchmark invokes each benchmark function several times (iteration
// estimation, then the measured run). Registering rows by benchmark key and
// printing once at exit keeps exactly one JSON row per benchmark — the final
// (measured) run's — in the bench-smoke artifact.
std::map<std::string, cologne::SolveRecord>& RecordRegistry() {
  static std::map<std::string, cologne::SolveRecord> records;
  return records;
}

void EmitRecordAtExit(const std::string& key, cologne::SolveRecord rec) {
  RecordRegistry();  // construct before atexit: the map must outlive it
  static const bool registered = [] {
    atexit([] {
      for (const auto& [key, rec] : RecordRegistry()) {
        printf("%s\n", rec.ToJsonLine().c_str());
      }
    });
    return true;
  }();
  (void)registered;
  RecordRegistry()[key] = std::move(rec);
}

// The ACloud kernel: `vms` VMs on 4 hosts, minimize squared load imbalance.
std::unique_ptr<Model> MakeAssignmentModel(int vms) {
  const int hosts = 4;
  auto m = std::make_unique<Model>();
  std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
  for (int i = 0; i < vms; ++i) {
    LinExpr one;
    for (int h = 0; h < hosts; ++h) {
      IntVar b = m->NewBool();
      m->MarkDecision(b);
      v[static_cast<size_t>(i)].push_back(b);
      one += LinExpr(b);
    }
    m->PostRel(one, Rel::kEq, LinExpr(1));
  }
  LinExpr obj;
  for (int h = 0; h < hosts; ++h) {
    LinExpr load;
    for (int i = 0; i < vms; ++i) {
      load += LinExpr::Term(10 + (i * 7) % 40,
                            v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
    }
    obj += LinExpr(m->MakeSquare(load));
  }
  m->Minimize(obj);
  return m;
}

// Backend shoot-out at an equal wall-clock budget; report the incumbent
// objective so the qualities are directly comparable. `workers` > 1 selects
// the concurrent backends' race width.
void RunBackendComparison(benchmark::State& state, Backend backend,
                          int workers = 1) {
  int vms = static_cast<int>(state.range(0));
  auto m = MakeAssignmentModel(vms);
  double obj_sum = 0;
  cologne::SolveRecord rec;
  rec.workers = 1;
  for (auto _ : state) {
    Model::Options o;
    o.time_limit_ms = 25;
    o.backend = backend;
    o.seed = 0x5EED;
    o.num_workers = workers;
    Solution s = m->Solve(o);
    benchmark::DoNotOptimize(s.objective);
    obj_sum += s.has_solution() ? static_cast<double>(s.objective) : 0;
    rec.nodes += s.stats.nodes;
    rec.iterations += s.stats.iterations;
    rec.restarts += s.stats.restarts;
    rec.wall_ms += s.stats.wall_ms;
    rec.seed = o.seed;
    // Effective race width (wall-clock solves cap at the core count), not
    // the requested one.
    if (!s.stats.per_worker.empty()) rec.workers = s.stats.per_worker.size();
  }
  double mean_obj = obj_sum / static_cast<double>(state.iterations());
  state.counters["objective"] = mean_obj;
  rec.bench = std::string("micro_assignment/") + std::to_string(vms);
  rec.backend = BackendName(backend);
  rec.objective = mean_obj;
  rec.has_objective = true;
  // Key built before the move: argument evaluation order is unspecified.
  std::string key = rec.bench + "/" + rec.backend;
  EmitRecordAtExit(key, std::move(rec));
}

}  // namespace

// Propagation throughput: long linear chains.
static void BM_LinearChainPropagation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Model m;
    std::vector<IntVar> xs;
    for (int i = 0; i < n; ++i) xs.push_back(m.NewInt(0, 100));
    for (int i = 0; i + 1 < n; ++i) {
      m.PostRel(LinExpr(xs[static_cast<size_t>(i)]) + LinExpr(1), Rel::kLe,
                LinExpr(xs[static_cast<size_t>(i + 1)]));
    }
    m.PostRel(LinExpr(xs[0]), Rel::kGe, LinExpr(1));
    Solution s = m.Solve();
    benchmark::DoNotOptimize(s.status);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinearChainPropagation)->Arg(64)->Arg(256)->Arg(1024);

// Branch-and-bound on small assignment problems (the ACloud kernel).
static void BM_AssignmentBnB(benchmark::State& state) {
  int vms = static_cast<int>(state.range(0));
  const int hosts = 4;
  for (auto _ : state) {
    Model m;
    std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
    for (int i = 0; i < vms; ++i) {
      LinExpr one;
      for (int h = 0; h < hosts; ++h) {
        IntVar b = m.NewBool();
        m.MarkDecision(b);
        v[static_cast<size_t>(i)].push_back(b);
        one += LinExpr(b);
      }
      m.PostRel(one, Rel::kEq, LinExpr(1));
    }
    LinExpr obj;
    for (int h = 0; h < hosts; ++h) {
      LinExpr load;
      for (int i = 0; i < vms; ++i) {
        load += LinExpr::Term(10 + (i * 7) % 40, v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
      }
      obj += LinExpr(m.MakeSquare(load));
    }
    m.Minimize(obj);
    Model::Options o;
    o.time_limit_ms = 50;
    Solution s = m.Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_AssignmentBnB)->Arg(6)->Arg(10)->Arg(16);

// Reified constraint stacks (the wireless interference kernel).
static void BM_ReifiedInterference(benchmark::State& state) {
  int links = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Model m;
    std::vector<IntVar> ch;
    for (int i = 0; i < links; ++i) {
      IntVar c = m.NewInt(1, 8);
      m.MarkDecision(c);
      ch.push_back(c);
    }
    LinExpr cost;
    for (int i = 0; i + 1 < links; ++i) {
      IntVar diff = m.MakeAbs(LinExpr(ch[static_cast<size_t>(i)]) -
                              LinExpr(ch[static_cast<size_t>(i + 1)]));
      cost += LinExpr(m.ReifyRel(LinExpr(diff), Rel::kLt, LinExpr(2)));
    }
    m.Minimize(cost);
    Model::Options o;
    o.time_limit_ms = 30;
    Solution s = m.Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_ReifiedInterference)->Arg(8)->Arg(16)->Arg(32);

// Equal-budget backend comparison on the assignment kernel (25 ms/solve).
static void BM_AssignmentBackendBnb(benchmark::State& state) {
  RunBackendComparison(state, Backend::kBranchAndBound);
}
BENCHMARK(BM_AssignmentBackendBnb)->Arg(10)->Arg(20)->Arg(32);

static void BM_AssignmentBackendLns(benchmark::State& state) {
  RunBackendComparison(state, Backend::kLns);
}
BENCHMARK(BM_AssignmentBackendLns)->Arg(10)->Arg(20)->Arg(32);

static void BM_AssignmentBackendLocalSearch(benchmark::State& state) {
  RunBackendComparison(state, Backend::kLocalSearch);
}
BENCHMARK(BM_AssignmentBackendLocalSearch)->Arg(10)->Arg(20)->Arg(32);

// Concurrent backends at the same budget, 4 workers (the ISSUE's race width).
static void BM_AssignmentBackendPortfolio(benchmark::State& state) {
  RunBackendComparison(state, Backend::kPortfolio, 4);
}
BENCHMARK(BM_AssignmentBackendPortfolio)->Arg(10)->Arg(20)->Arg(32);

static void BM_AssignmentBackendParallelLns(benchmark::State& state) {
  RunBackendComparison(state, Backend::kParallelLns, 4);
}
BENCHMARK(BM_AssignmentBackendParallelLns)->Arg(10)->Arg(20)->Arg(32);

// Luby-restart variant of the B&B backend on the same kernel.
static void BM_AssignmentBackendBnbRestarts(benchmark::State& state) {
  int vms = static_cast<int>(state.range(0));
  auto m = MakeAssignmentModel(vms);
  for (auto _ : state) {
    Model::Options o;
    o.time_limit_ms = 25;
    o.restart_base_nodes = 512;
    o.seed = 0x5EED;
    Solution s = m->Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_AssignmentBackendBnbRestarts)->Arg(10)->Arg(20);

// ---------------------------------------------------------------------------
// Canonical fixed-seed micro instances (solverjson / determinism modes).
// Deterministic budgets only — node limits and iteration caps, no wall
// clock — so identical seeds must reproduce identical search trees.
// ---------------------------------------------------------------------------

namespace {

// The grouped variant of the assignment kernel: one decision group per VM
// (the batched per-link negotiation shape), driving group-unit LNS
// neighborhoods.
std::unique_ptr<Model> MakeGroupedAssignmentModel(int vms) {
  const int hosts = 4;
  auto m = std::make_unique<Model>();
  std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
  for (int i = 0; i < vms; ++i) {
    LinExpr one;
    std::vector<IntVar> group;
    for (int h = 0; h < hosts; ++h) {
      IntVar b = m->NewBool();
      m->MarkDecision(b);
      v[static_cast<size_t>(i)].push_back(b);
      group.push_back(b);
      one += LinExpr(b);
    }
    m->MarkGroup(std::move(group));
    m->PostRel(one, Rel::kEq, LinExpr(1));
  }
  LinExpr obj;
  for (int h = 0; h < hosts; ++h) {
    LinExpr load;
    for (int i = 0; i < vms; ++i) {
      load += LinExpr::Term(10 + (i * 7) % 40,
                            v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
    }
    obj += LinExpr(m->MakeSquare(load));
  }
  m->Minimize(obj);
  return m;
}

// The wireless interference kernel with holey channel domains (primary-user
// removals), abs/reified stacks.
std::unique_ptr<Model> MakeInterferenceModel(int links) {
  auto m = std::make_unique<Model>();
  std::vector<IntVar> ch;
  for (int i = 0; i < links; ++i) {
    IntVar c = m->NewInt(1, 8);
    m->MarkDecision(c);
    m->RemoveValue(c, 3 + (i % 2));
    ch.push_back(c);
  }
  LinExpr cost;
  for (int i = 0; i + 1 < links; ++i) {
    IntVar diff = m->MakeAbs(LinExpr(ch[static_cast<size_t>(i)]) -
                             LinExpr(ch[static_cast<size_t>(i + 1)]));
    cost += LinExpr(m->ReifyRel(LinExpr(diff), Rel::kLt, LinExpr(2)));
  }
  m->Minimize(cost);
  return m;
}

// Propagation-heavy kernel (the event-typed engine's canonical micro case):
// wide overlapping <=-capacity sums over shared decision variables plus a
// stack of reified threshold constraints. The <= sums subscribe min events
// only (max tightenings filter), and deep dives entail reified thresholds
// early, so this is where typed wakeups and entailment unsubscription pay.
std::unique_ptr<Model> MakePropHeavyModel(int n) {
  auto m = std::make_unique<Model>();
  std::vector<IntVar> xs;
  for (int i = 0; i < n; ++i) {
    IntVar x = m->NewInt(0, 6);
    m->MarkDecision(x);
    xs.push_back(x);
  }
  // Every width-n/2 window is capacity-bounded: each decision variable sits
  // in many wide sums, so an untyped engine re-wakes all of them on every
  // bound change.
  const int w = n / 2;
  for (int start = 0; start + w <= n; ++start) {
    LinExpr sum;
    for (int j = 0; j < w; ++j) {
      sum += LinExpr::Term(1 + ((start + j) % 3),
                           xs[static_cast<size_t>(start + j)]);
    }
    m->PostRel(sum, Rel::kLe, LinExpr(static_cast<int64_t>(3 * w)));
  }
  // Reified thresholds feeding the objective; fixing a dive prefix entails
  // most of them long before the leaf.
  LinExpr cost;
  for (int i = 0; i + 1 < n; ++i) {
    IntVar b = m->ReifyRel(LinExpr(xs[static_cast<size_t>(i)]) +
                               LinExpr(xs[static_cast<size_t>(i + 1)]),
                           Rel::kGe, LinExpr(4));
    cost += LinExpr::Term(3, b);
  }
  LinExpr load;
  for (int i = 0; i < n; ++i) {
    load += LinExpr::Term(1 + (i % 4), xs[static_cast<size_t>(i)]);
  }
  // Tension: raising load lowers the objective but trips thresholds and
  // capacity sums, so B&B has real pruning work at every depth.
  m->Minimize(cost - load);
  return m;
}

struct MicroCase {
  const char* name;
  std::unique_ptr<Model> (*make)(int);
  int size;
  Backend backend;
  uint64_t seed;
  uint64_t node_limit;
  uint64_t max_iterations;
  uint64_t restart_base_nodes;
  bool cache;       ///< Fresh ContextCache per solve (SOLVER_CACHE).
  int subproblems;  ///< Subproblem-parallel frontier width; 0 = off.
  int workers;      ///< Race/steal width; <= 1 keeps the sequential path.
  bool naive = false;  ///< Legacy untyped-FIFO propagation reference mode
                       ///< (SOLVER_NAIVE_PROPAGATION); same search tree,
                       ///< historical effort counters.
};

// `deep_dive_bnb` is the headline case of the trailed-store trajectory: a
// 64-decision B&B dive deep enough that state restoration dominates.
// `deep_dive_bnb_par` is the same instance under the subproblem-parallel
// mode (8 stealing workers, context cache on) — the wall_ms ratio between
// the two rows is the PR's time-to-solution acceptance signal.
const MicroCase kMicroCases[] = {
    {"deep_dive_bnb", MakeAssignmentModel, 16, Backend::kBranchAndBound,
     0x5EED, 200'000, 0, 0, false, 0, 1},
    {"bnb_assign10", MakeAssignmentModel, 10, Backend::kBranchAndBound,
     0x5EED, 50'000, 50, 0, false, 0, 1},
    {"bnb_luby_assign8", MakeAssignmentModel, 8, Backend::kBranchAndBound,
     0xABCD, 30'000, 0, 256, false, 0, 1},
    {"lns_assign12", MakeAssignmentModel, 12, Backend::kLns, 0x10C5, 0, 300,
     0, false, 0, 1},
    {"lns_grouped10", MakeGroupedAssignmentModel, 10, Backend::kLns, 0x77, 0,
     250, 0, false, 0, 1},
    {"bnb_interf12", MakeInterferenceModel, 12, Backend::kBranchAndBound,
     0x1234, 40'000, 60, 0, false, 0, 1},
    // Context-cache rows: same kernels, exhausted-subtree proofs on. The
    // Luby case is where intra-solve reuse fires (restart dives re-enter
    // contexts earlier dives exhausted).
    {"bnb_cache_luby8", MakeAssignmentModel, 8, Backend::kBranchAndBound,
     0xABCD, 30'000, 0, 256, true, 0, 1},
    {"lns_cache_grouped10", MakeGroupedAssignmentModel, 10, Backend::kLns,
     0x77, 0, 250, 0, true, 0, 1},
    {"deep_dive_bnb_par", MakeAssignmentModel, 16, Backend::kPortfolio,
     0x5EED, 12'000, 0, 0, true, 64, 8},
    // Propagation-ratio pairs: the same instance under the event-typed
    // engine (default) and the naive untyped-FIFO reference. Search trees
    // are identical by construction; the props_executed ratio between the
    // paired rows is the CI acceptance gate of the event-typed engine.
    {"deep_dive_bnb_naive", MakeAssignmentModel, 16, Backend::kBranchAndBound,
     0x5EED, 200'000, 0, 0, false, 0, 1, true},
    {"prop_heavy_bnb", MakePropHeavyModel, 16, Backend::kBranchAndBound,
     0xF00D, 60'000, 0, 0, false, 0, 1},
    {"prop_heavy_naive", MakePropHeavyModel, 16, Backend::kBranchAndBound,
     0xF00D, 60'000, 0, 0, false, 0, 1, true},
    // Local-search rows: the move walk is iteration-capped, so its ls_*
    // counters (moves / accepted / tabu hits) are part of the determinism
    // contract like nodes and failures are.
    {"ls_assign12", MakeAssignmentModel, 12, Backend::kLocalSearch, 0x10C5, 0,
     300, 0, false, 0, 1},
    {"ls_interf12", MakeInterferenceModel, 12, Backend::kLocalSearch, 0x1234,
     0, 200, 0, false, 0, 1},
};

Model::Options MicroOptions(const MicroCase& c) {
  Model::Options o;
  o.time_limit_ms = 0;  // deterministic budgets only
  o.backend = c.backend;
  o.seed = c.seed;
  o.node_limit = c.node_limit;
  o.max_iterations = c.max_iterations;
  o.restart_base_nodes = c.restart_base_nodes;
  o.subproblems = c.subproblems;
  o.num_workers = c.workers > 0 ? c.workers : 1;
  o.naive_propagation = c.naive;
  return o;
}

Solution RunMicroCase(const MicroCase& c) {
  auto m = c.make(c.size);
  Model::Options o = MicroOptions(c);
  ContextCache cache;  // fresh per solve: runs stay independent
  if (c.cache) o.context_cache = &cache;
  return m->Solve(o);
}

// One BENCH_solver.json row per canonical case.
int RunSolverJson() {
  FILE* out = fopen("BENCH_solver.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open BENCH_solver.json for writing\n");
    return 1;
  }
  for (const MicroCase& c : kMicroCases) {
    // Build outside the timed window: the row measures the search core
    // (nodes/sec, allocations during search), not model construction.
    auto m = c.make(c.size);
    Model::Options o = MicroOptions(c);
    ContextCache cache;
    if (c.cache) o.context_cache = &cache;
    const uint64_t allocs_before = DomainCopyCount();
    const auto t0 = std::chrono::steady_clock::now();
    Solution s = m->Solve(o);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    const uint64_t domain_allocs = DomainCopyCount() - allocs_before;
    const double secs = wall_ms > 0 ? wall_ms / 1000.0 : 1e-9;
    std::string row = cologne::StrFormat(
        "{\"bench\":\"solver_micro\",\"case\":\"%s\",\"backend\":\"%s\","
        "\"seed\":%llu,\"nodes\":%llu,\"propagations\":%llu,"
        "\"wall_ms\":%.3f,\"nodes_per_sec\":%.0f,\"props_per_sec\":%.0f,"
        "\"peak_mem_bytes\":%llu,\"trail_saves\":%llu,"
        "\"domain_allocs\":%llu,\"cache_hits\":%llu,\"cache_stores\":%llu,"
        "\"cache_mem_bytes\":%llu,\"steals\":%llu,\"subproblems\":%llu,"
        "\"ls_moves\":%llu,\"ls_accepted\":%llu,\"ls_tabu_hits\":%llu,"
        "\"props_executed\":%llu,\"props_skipped_entailed\":%llu,"
        "\"wakes_filtered\":%llu,\"naive\":%d,"
        "\"workers\":%d,\"objective\":%lld}",
        c.name, BackendName(c.backend),
        static_cast<unsigned long long>(c.seed),
        static_cast<unsigned long long>(s.stats.nodes),
        static_cast<unsigned long long>(s.stats.propagations), wall_ms,
        static_cast<double>(s.stats.nodes) / secs,
        static_cast<double>(s.stats.propagations) / secs,
        static_cast<unsigned long long>(s.stats.peak_memory_bytes),
        static_cast<unsigned long long>(s.stats.trail_saves),
        static_cast<unsigned long long>(domain_allocs),
        static_cast<unsigned long long>(s.stats.cache_hits),
        static_cast<unsigned long long>(s.stats.cache_stores),
        static_cast<unsigned long long>(s.stats.cache_mem_bytes),
        static_cast<unsigned long long>(s.stats.steals),
        static_cast<unsigned long long>(s.stats.subproblems),
        static_cast<unsigned long long>(s.stats.ls_moves),
        static_cast<unsigned long long>(s.stats.ls_accepted),
        static_cast<unsigned long long>(s.stats.ls_tabu_hits),
        static_cast<unsigned long long>(s.stats.propagations),
        static_cast<unsigned long long>(s.stats.props_skipped_entailed),
        static_cast<unsigned long long>(s.stats.wakes_filtered),
        c.naive ? 1 : 0,
        c.workers > 0 ? c.workers : 1,
        static_cast<long long>(s.has_solution() ? s.objective : 0));
    fprintf(out, "%s\n", row.c_str());
    printf("%s\n", row.c_str());
  }
  fclose(out);
  return 0;
}

// Solve every canonical case twice; any divergence in the explored tree
// (nodes / failures / solutions / propagations / objective) is a
// determinism regression.
int RunDeterminism() {
  int rc = 0;
  for (const MicroCase& c : kMicroCases) {
    if (c.workers > 1) {
      // Multi-worker runs race on wall clock by design; the determinism
      // contract covers the single-worker search paths (cache on or off —
      // a fresh cache per run keeps cache-on solves replayable too).
      printf("%-18s SKIP (multi-worker)\n", c.name);
      continue;
    }
    Solution a = RunMicroCase(c);
    Solution b = RunMicroCase(c);
    const bool same = a.stats.nodes == b.stats.nodes &&
                      a.stats.failures == b.stats.failures &&
                      a.stats.solutions == b.stats.solutions &&
                      a.stats.propagations == b.stats.propagations &&
                      a.stats.ls_moves == b.stats.ls_moves &&
                      a.stats.ls_accepted == b.stats.ls_accepted &&
                      a.stats.ls_tabu_hits == b.stats.ls_tabu_hits &&
                      a.objective == b.objective && a.values == b.values;
    printf("%-18s %s nodes=%llu/%llu failures=%llu/%llu solutions=%llu/%llu\n",
           c.name, same ? "OK" : "MISMATCH",
           static_cast<unsigned long long>(a.stats.nodes),
           static_cast<unsigned long long>(b.stats.nodes),
           static_cast<unsigned long long>(a.stats.failures),
           static_cast<unsigned long long>(b.stats.failures),
           static_cast<unsigned long long>(a.stats.solutions),
           static_cast<unsigned long long>(b.stats.solutions));
    if (!same) rc = 1;
  }
  // Cross-mode gate: the event-typed engine and the naive reference must
  // explore the exact same tree (nodes / failures / solutions / objective /
  // values) on the paired canonical instances. Propagation-effort counters
  // are intentionally NOT compared across modes — differing is the point.
  const std::pair<const char*, const char*> kModePairs[] = {
      {"deep_dive_bnb", "deep_dive_bnb_naive"},
      {"prop_heavy_bnb", "prop_heavy_naive"},
  };
  for (const auto& [event_name, naive_name] : kModePairs) {
    const MicroCase* ev = nullptr;
    const MicroCase* na = nullptr;
    for (const MicroCase& c : kMicroCases) {
      if (std::strcmp(c.name, event_name) == 0) ev = &c;
      if (std::strcmp(c.name, naive_name) == 0) na = &c;
    }
    if (ev == nullptr || na == nullptr) continue;
    Solution a = RunMicroCase(*ev);
    Solution b = RunMicroCase(*na);
    const bool same = a.stats.nodes == b.stats.nodes &&
                      a.stats.failures == b.stats.failures &&
                      a.stats.solutions == b.stats.solutions &&
                      a.objective == b.objective && a.values == b.values;
    printf("%-18s %s cross-mode nodes=%llu/%llu objective=%lld/%lld\n",
           event_name, same ? "OK" : "MISMATCH",
           static_cast<unsigned long long>(a.stats.nodes),
           static_cast<unsigned long long>(b.stats.nodes),
           static_cast<long long>(a.objective),
           static_cast<long long>(b.objective));
    if (!same) rc = 1;
  }
  if (rc != 0) {
    fprintf(stderr, "determinism check FAILED: identical seeds explored "
                    "different search trees\n");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "solverjson") == 0) {
    return RunSolverJson();
  }
  if (argc > 1 && std::strcmp(argv[1], "determinism") == 0) {
    return RunDeterminism();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Microbenchmarks (google-benchmark) for the constraint solver substrate,
// including backend comparisons (B&B vs LNS vs portfolio vs parallel LNS) at
// equal time budgets: the per-iteration `objective` counter is the quality
// signal to compare. Each backend-comparison benchmark also emits one
// SolveRecord JSON row (consumed by the CI bench-smoke job).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"
#include "solver/model.h"

using namespace cologne::solver;

namespace {

// google-benchmark invokes each benchmark function several times (iteration
// estimation, then the measured run). Registering rows by benchmark key and
// printing once at exit keeps exactly one JSON row per benchmark — the final
// (measured) run's — in the bench-smoke artifact.
std::map<std::string, cologne::SolveRecord>& RecordRegistry() {
  static std::map<std::string, cologne::SolveRecord> records;
  return records;
}

void EmitRecordAtExit(const std::string& key, cologne::SolveRecord rec) {
  RecordRegistry();  // construct before atexit: the map must outlive it
  static const bool registered = [] {
    atexit([] {
      for (const auto& [key, rec] : RecordRegistry()) {
        printf("%s\n", rec.ToJsonLine().c_str());
      }
    });
    return true;
  }();
  (void)registered;
  RecordRegistry()[key] = std::move(rec);
}

// The ACloud kernel: `vms` VMs on 4 hosts, minimize squared load imbalance.
std::unique_ptr<Model> MakeAssignmentModel(int vms) {
  const int hosts = 4;
  auto m = std::make_unique<Model>();
  std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
  for (int i = 0; i < vms; ++i) {
    LinExpr one;
    for (int h = 0; h < hosts; ++h) {
      IntVar b = m->NewBool();
      m->MarkDecision(b);
      v[static_cast<size_t>(i)].push_back(b);
      one += LinExpr(b);
    }
    m->PostRel(one, Rel::kEq, LinExpr(1));
  }
  LinExpr obj;
  for (int h = 0; h < hosts; ++h) {
    LinExpr load;
    for (int i = 0; i < vms; ++i) {
      load += LinExpr::Term(10 + (i * 7) % 40,
                            v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
    }
    obj += LinExpr(m->MakeSquare(load));
  }
  m->Minimize(obj);
  return m;
}

// Backend shoot-out at an equal wall-clock budget; report the incumbent
// objective so the qualities are directly comparable. `workers` > 1 selects
// the concurrent backends' race width.
void RunBackendComparison(benchmark::State& state, Backend backend,
                          int workers = 1) {
  int vms = static_cast<int>(state.range(0));
  auto m = MakeAssignmentModel(vms);
  double obj_sum = 0;
  cologne::SolveRecord rec;
  rec.workers = 1;
  for (auto _ : state) {
    Model::Options o;
    o.time_limit_ms = 25;
    o.backend = backend;
    o.seed = 0x5EED;
    o.num_workers = workers;
    Solution s = m->Solve(o);
    benchmark::DoNotOptimize(s.objective);
    obj_sum += s.has_solution() ? static_cast<double>(s.objective) : 0;
    rec.nodes += s.stats.nodes;
    rec.iterations += s.stats.iterations;
    rec.restarts += s.stats.restarts;
    rec.wall_ms += s.stats.wall_ms;
    rec.seed = o.seed;
    // Effective race width (wall-clock solves cap at the core count), not
    // the requested one.
    if (!s.stats.per_worker.empty()) rec.workers = s.stats.per_worker.size();
  }
  double mean_obj = obj_sum / static_cast<double>(state.iterations());
  state.counters["objective"] = mean_obj;
  rec.bench = std::string("micro_assignment/") + std::to_string(vms);
  rec.backend = BackendName(backend);
  rec.objective = mean_obj;
  rec.has_objective = true;
  // Key built before the move: argument evaluation order is unspecified.
  std::string key = rec.bench + "/" + rec.backend;
  EmitRecordAtExit(key, std::move(rec));
}

}  // namespace

// Propagation throughput: long linear chains.
static void BM_LinearChainPropagation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Model m;
    std::vector<IntVar> xs;
    for (int i = 0; i < n; ++i) xs.push_back(m.NewInt(0, 100));
    for (int i = 0; i + 1 < n; ++i) {
      m.PostRel(LinExpr(xs[static_cast<size_t>(i)]) + LinExpr(1), Rel::kLe,
                LinExpr(xs[static_cast<size_t>(i + 1)]));
    }
    m.PostRel(LinExpr(xs[0]), Rel::kGe, LinExpr(1));
    Solution s = m.Solve();
    benchmark::DoNotOptimize(s.status);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinearChainPropagation)->Arg(64)->Arg(256)->Arg(1024);

// Branch-and-bound on small assignment problems (the ACloud kernel).
static void BM_AssignmentBnB(benchmark::State& state) {
  int vms = static_cast<int>(state.range(0));
  const int hosts = 4;
  for (auto _ : state) {
    Model m;
    std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
    for (int i = 0; i < vms; ++i) {
      LinExpr one;
      for (int h = 0; h < hosts; ++h) {
        IntVar b = m.NewBool();
        m.MarkDecision(b);
        v[static_cast<size_t>(i)].push_back(b);
        one += LinExpr(b);
      }
      m.PostRel(one, Rel::kEq, LinExpr(1));
    }
    LinExpr obj;
    for (int h = 0; h < hosts; ++h) {
      LinExpr load;
      for (int i = 0; i < vms; ++i) {
        load += LinExpr::Term(10 + (i * 7) % 40, v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
      }
      obj += LinExpr(m.MakeSquare(load));
    }
    m.Minimize(obj);
    Model::Options o;
    o.time_limit_ms = 50;
    Solution s = m.Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_AssignmentBnB)->Arg(6)->Arg(10)->Arg(16);

// Reified constraint stacks (the wireless interference kernel).
static void BM_ReifiedInterference(benchmark::State& state) {
  int links = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Model m;
    std::vector<IntVar> ch;
    for (int i = 0; i < links; ++i) {
      IntVar c = m.NewInt(1, 8);
      m.MarkDecision(c);
      ch.push_back(c);
    }
    LinExpr cost;
    for (int i = 0; i + 1 < links; ++i) {
      IntVar diff = m.MakeAbs(LinExpr(ch[static_cast<size_t>(i)]) -
                              LinExpr(ch[static_cast<size_t>(i + 1)]));
      cost += LinExpr(m.ReifyRel(LinExpr(diff), Rel::kLt, LinExpr(2)));
    }
    m.Minimize(cost);
    Model::Options o;
    o.time_limit_ms = 30;
    Solution s = m.Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_ReifiedInterference)->Arg(8)->Arg(16)->Arg(32);

// Equal-budget backend comparison on the assignment kernel (25 ms/solve).
static void BM_AssignmentBackendBnb(benchmark::State& state) {
  RunBackendComparison(state, Backend::kBranchAndBound);
}
BENCHMARK(BM_AssignmentBackendBnb)->Arg(10)->Arg(20)->Arg(32);

static void BM_AssignmentBackendLns(benchmark::State& state) {
  RunBackendComparison(state, Backend::kLns);
}
BENCHMARK(BM_AssignmentBackendLns)->Arg(10)->Arg(20)->Arg(32);

// Concurrent backends at the same budget, 4 workers (the ISSUE's race width).
static void BM_AssignmentBackendPortfolio(benchmark::State& state) {
  RunBackendComparison(state, Backend::kPortfolio, 4);
}
BENCHMARK(BM_AssignmentBackendPortfolio)->Arg(10)->Arg(20)->Arg(32);

static void BM_AssignmentBackendParallelLns(benchmark::State& state) {
  RunBackendComparison(state, Backend::kParallelLns, 4);
}
BENCHMARK(BM_AssignmentBackendParallelLns)->Arg(10)->Arg(20)->Arg(32);

// Luby-restart variant of the B&B backend on the same kernel.
static void BM_AssignmentBackendBnbRestarts(benchmark::State& state) {
  int vms = static_cast<int>(state.range(0));
  auto m = MakeAssignmentModel(vms);
  for (auto _ : state) {
    Model::Options o;
    o.time_limit_ms = 25;
    o.restart_base_nodes = 512;
    o.seed = 0x5EED;
    Solution s = m->Solve(o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_AssignmentBackendBnbRestarts)->Arg(10)->Arg(20);

BENCHMARK_MAIN();

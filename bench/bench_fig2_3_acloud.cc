// Figures 2 and 3: ACloud trace replay.
//
// Figure 2: average CPU standard deviation across the three data centers
// over a 4-hour replay, for Default / Heuristic / ACloud / ACloud (M).
// Figure 3: number of VM migrations per 10-minute interval.
//
// A trailing section compares the search backends (B&B, LNS, portfolio and
// parallel LNS) on the same replay at equal per-solve time budgets and emits
// one JSON row per backend.
//
// Usage: bench_fig2_3_acloud [duration_hours] [comparison_budget_ms]
// The optional arguments shrink the replay for smoke runs (the CI bench-smoke
// job uses `0.25 40`); defaults reproduce the paper-scale figures.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/acloud.h"
#include "common/stats.h"
#include "solver/types.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

// Replay the ACloud policy under one backend; returns the per-backend JSON
// row plus the time-averaged imbalance.
int CompareBackend(solver::Backend backend, int workers, double budget_ms,
                   double duration_hours) {
  ACloudConfig cfg;
  cfg.duration_hours = duration_hours;  // keep the comparison leg quick
  cfg.solver_time_ms = budget_ms;
  cfg.solver_backend = solver::BackendName(backend);
  cfg.solver_workers = workers;
  ACloudScenario scenario(cfg);
  auto r = scenario.Run(ACloudPolicy::kACloud);
  if (!r.ok()) {
    printf("%s failed: %s\n", solver::BackendName(backend),
           r.status().ToString().c_str());
    return 1;
  }
  const std::vector<ACloudInterval>& rows = r.value();
  if (rows.size() < 2) {
    printf("%s: replay too short (%zu intervals) — need duration >= one "
           "interval\n",
           solver::BackendName(backend), rows.size());
    return 1;
  }
  double stdev_sum = 0;
  SolveRecord rec;
  rec.bench = "fig2_3_acloud";
  rec.backend = solver::BackendName(backend);
  rec.seed = cfg.solver_seed;
  rec.workers = 1;
  for (size_t i = 1; i < rows.size(); ++i) {
    stdev_sum += rows[i].avg_cpu_stdev;
    rec.nodes += rows[i].solver_nodes;
    rec.iterations += rows[i].solver_iterations;
    rec.restarts += rows[i].solver_restarts;
    rec.wall_ms += rows[i].solve_ms;
    // Effective race width (the core-count cap may shrink the request).
    rec.workers = std::max(rec.workers, rows[i].solver_workers);
  }
  rec.objective = stdev_sum / static_cast<double>(rows.size() - 1);
  rec.has_objective = true;
  printf("  %-12s x%llu avg stdev %6.2f%%  (%llu nodes, %llu LNS iterations, "
         "%llu restarts, %.0f ms solver time)\n",
         rec.backend.c_str(), static_cast<unsigned long long>(rec.workers),
         rec.objective,
         static_cast<unsigned long long>(rec.nodes),
         static_cast<unsigned long long>(rec.iterations),
         static_cast<unsigned long long>(rec.restarts), rec.wall_ms);
  printf("%s\n", rec.ToJsonLine().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Non-numeric or non-positive arguments (atof yields 0) fall back to the
  // paper-scale defaults; the replay needs at least one 10-minute interval.
  double duration_hours = argc > 1 ? atof(argv[1]) : 4.0;
  if (duration_hours * 3600 < 600) duration_hours = 4.0;
  double comparison_budget_ms = argc > 2 ? atof(argv[2]) : 150;
  if (comparison_budget_ms <= 0) comparison_budget_ms = 150;

  ACloudConfig cfg;
  cfg.solver_time_ms = 500;
  cfg.duration_hours = duration_hours;

  ACloudScenario scenario(cfg);
  std::vector<ACloudPolicy> policies = {
      ACloudPolicy::kDefault, ACloudPolicy::kHeuristic, ACloudPolicy::kACloud,
      ACloudPolicy::kACloudM};

  std::vector<std::vector<ACloudInterval>> results;
  for (ACloudPolicy p : policies) {
    auto r = scenario.Run(p);
    if (!r.ok()) {
      printf("%s failed: %s\n", ACloudPolicyName(p),
             r.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(r).value());
  }

  printf("Figure 2: average CPU stdev of %d data centers (%%), by time\n",
         cfg.num_dcs);
  printf("%8s", "t(h)");
  for (ACloudPolicy p : policies) printf(" %12s", ACloudPolicyName(p));
  printf("\n");
  for (size_t i = 0; i < results[0].size(); ++i) {
    printf("%8.2f", results[0][i].t_hours);
    for (size_t p = 0; p < policies.size(); ++p) {
      printf(" %12.2f", results[p][i].avg_cpu_stdev);
    }
    printf("\n");
  }

  printf("\nFigure 3: VM migrations per interval\n");
  printf("%8s", "t(h)");
  for (ACloudPolicy p : policies) printf(" %12s", ACloudPolicyName(p));
  printf("\n");
  for (size_t i = 0; i < results[0].size(); ++i) {
    printf("%8.2f", results[0][i].t_hours);
    for (size_t p = 0; p < policies.size(); ++p) {
      printf(" %12d", results[p][i].migrations);
    }
    printf("\n");
  }

  // Summary (paper: ACloud reduces imbalance by 98.1% vs Default and 87.8%
  // vs Heuristic; ACloud ~20.3 migrations/interval, ACloud(M) ~9).
  printf("\nSummary (time-averaged, ignoring the initial interval):\n");
  std::vector<double> avg_stdev(policies.size(), 0);
  std::vector<double> avg_migr(policies.size(), 0);
  size_t n = results[0].size() - 1;
  for (size_t p = 0; p < policies.size(); ++p) {
    for (size_t i = 1; i < results[p].size(); ++i) {
      avg_stdev[p] += results[p][i].avg_cpu_stdev;
      avg_migr[p] += results[p][i].migrations;
    }
    avg_stdev[p] /= static_cast<double>(n);
    avg_migr[p] /= static_cast<double>(n);
    printf("  %-12s stdev %7.2f%%  migrations/interval %6.1f\n",
           ACloudPolicyName(policies[p]), avg_stdev[p], avg_migr[p]);
  }
  printf("  ACloud imbalance reduction vs Default:   %5.1f%% (paper: 98.1%%)\n",
         (1 - avg_stdev[2] / avg_stdev[0]) * 100);
  printf("  ACloud imbalance reduction vs Heuristic: %5.1f%% (paper: 87.8%%)\n",
         (1 - avg_stdev[2] / avg_stdev[1]) * 100);

  // ---- Backend comparison at equal time budgets ----------------------------
  const double comparison_hours = duration_hours < 1.0 ? duration_hours : 1.0;
  printf(
      "\nSearch backends on the ACloud replay (%.2f h, %.0f ms per solve):\n",
      comparison_hours, comparison_budget_ms);
  struct Entry {
    solver::Backend backend;
    int workers;
  };
  const Entry entries[] = {
      {solver::Backend::kBranchAndBound, 1},
      {solver::Backend::kLns, 1},
      {solver::Backend::kPortfolio, 4},
      {solver::Backend::kParallelLns, 4},
  };
  for (const Entry& e : entries) {
    if (CompareBackend(e.backend, e.workers, comparison_budget_ms,
                       comparison_hours) != 0) {
      return 1;
    }
  }
  return 0;
}

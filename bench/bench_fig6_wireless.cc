// Figure 6: aggregate throughput vs offered data rate on the 30-node grid
// (the ORBIT-testbed substitute) for the five channel-selection protocols.
#include <cstdio>

#include "apps/wireless.h"

using namespace cologne;
using namespace cologne::apps;

int main() {
  WirelessConfig cfg;  // 30 nodes, 2 interfaces, 8 channels
  WirelessScenario scenario(cfg);

  std::vector<WirelessProtocol> protocols = {
      WirelessProtocol::kCrossLayer, WirelessProtocol::kDistributed,
      WirelessProtocol::kCentralized, WirelessProtocol::kIdenticalCh,
      WirelessProtocol::k1Interface};

  std::vector<ChannelAssignment> assignments;
  printf("Figure 6: aggregate throughput, 30 nodes\n");
  printf("Channel assignment phase:\n");
  for (WirelessProtocol p : protocols) {
    auto r = scenario.AssignChannels(p);
    if (!r.ok()) {
      printf("%s failed: %s\n", WirelessProtocolName(p),
             r.status().ToString().c_str());
      return 1;
    }
    printf("  %-12s interference cost %6.0f   converge %5.1fs   "
           "per-node %.2f KB/s\n",
           WirelessProtocolName(p), r.value().interference_cost,
           r.value().converge_time_s, r.value().per_node_kBps);
    assignments.push_back(std::move(r).value());
  }

  printf("\nThroughput (Mbps) vs per-flow data rate (Mbps):\n%10s", "rate");
  for (WirelessProtocol p : protocols) printf(" %13s", WirelessProtocolName(p));
  printf("\n");
  for (double rate = 1; rate <= 12; rate += 1) {
    printf("%10.0f", rate);
    for (size_t i = 0; i < protocols.size(); ++i) {
      bool cross = protocols[i] == WirelessProtocol::kCrossLayer;
      printf(" %13.2f",
             scenario.AggregateThroughput(assignments[i], rate, cross));
    }
    printf("\n");
  }
  printf("\n(paper shape: Cologne protocols >> Identical-Ch > 1-Interface;\n"
         " cross-layer best overall)\n");
  return 0;
}

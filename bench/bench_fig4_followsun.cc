// Figure 4: Follow-the-Sun — normalized total cost as distributed solving
// converges, for 2..10 data centers. A churn section then replays a fixed
// 4-DC workload under injected faults (0%/5%/20% loss and one mid-run node
// crash), emitting objective-vs-time rows to BENCH_churn.json so the
// robustness trajectory is recorded alongside the happy-path figures.
#include <cstdio>
#include <string>

#include "apps/followsun.h"
#include "common/stats.h"
#include "common/strings.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

// Loss on every link for the whole run, plus (optionally) one crash with
// restart two rounds later.
net::FaultPlan ChurnPlan(double loss, bool crash, int num_dcs,
                         uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  if (loss > 0) {
    for (int a = 0; a < num_dcs; ++a) {
      for (int b = a + 1; b < num_dcs; ++b) {
        net::LinkFault f;
        f.a = a;
        f.b = b;
        f.loss.push_back({0.0, 1e9, loss});
        plan.links.push_back(std::move(f));
      }
    }
  }
  if (crash) {
    net::CrashFault c;
    c.node = 1;
    c.t = 7.0;        // mid-negotiation (round 2)
    c.restart_t = 17.0;
    plan.crashes.push_back(c);
  }
  return plan;
}

int RunChurn(FILE* out_file) {
  struct Case {
    const char* label;
    double loss;
    bool crash;
    int dcs = 4;
    bool reliable = false;  ///< NET_RELIABLE transport + batched solves.
  };
  // The 4-DC datagram cases replay PR 3's robustness trajectory; the 10-DC
  // reliable cases are ISSUE 4's scale-up — batched incident-link solves
  // over the retransmission/FIFO transport, anti-entropy sweeps retired.
  const Case cases[] = {
      {"loss0", 0.0, false},
      {"loss5", 0.05, false},
      {"loss20", 0.20, false},
      {"crash1", 0.0, true},
      {"r10_loss5", 0.05, false, 10, true},
      {"r10_loss20", 0.20, false, 10, true},
      {"r10_crash", 0.0, true, 10, true},
  };
  printf("\nChurn: objective vs time under loss/crash (BENCH_churn.json)\n");
  for (const Case& c : cases) {
    FtsConfig cfg;
    cfg.num_dcs = c.dcs;
    cfg.seed = 104;
    if (c.reliable) {
      cfg.net_reliable = true;
      cfg.batch_links = true;
      cfg.max_link_batch = 3;
      cfg.capacity = 45;
      cfg.demand_hi = 4;
      cfg.link_loss_prob = c.loss;  // sustained loss; retransmission recovers
      cfg.solver_backend = "lns";
      cfg.solver_max_iterations = 8;
      cfg.solver_time_ms = 0;
      cfg.fault_plan = ChurnPlan(0, c.crash, cfg.num_dcs, cfg.seed);
    } else {
      cfg.fault_plan = ChurnPlan(c.loss, c.crash, cfg.num_dcs, cfg.seed);
    }
    FollowTheSunScenario faulted(cfg);
    auto r = faulted.Run();
    if (!r.ok()) {
      printf("churn case %s failed: %s\n", c.label,
             r.status().ToString().c_str());
      return 1;
    }
    const FtsResult& res = r.value();
    for (const FtsSample& s : res.series) {
      std::string row = StrFormat(
          "{\"bench\":\"followsun_churn\",\"case\":\"%s\",\"loss_pct\":%.1f,"
          "\"crash\":%d,\"dcs\":%d,\"reliable\":%d,\"seed\":%llu,"
          "\"t_s\":%.1f,\"cost\":%.1f,"
          "\"normalized\":%.2f,\"failed_rounds\":%d,\"recovered_rounds\":%d,"
          "\"drops\":%llu}",
          c.label, c.loss * 100, c.crash ? 1 : 0, c.dcs, c.reliable ? 1 : 0,
          static_cast<unsigned long long>(cfg.seed), s.t_s, s.total_cost,
          s.normalized, res.failed_rounds, res.recovered_rounds,
          static_cast<unsigned long long>(res.messages_dropped));
      printf("%s\n", row.c_str());
      if (out_file != nullptr) fprintf(out_file, "%s\n", row.c_str());
    }
    // Summary SolveRecord row with the churn columns for the shared
    // bench-smoke schema validation.
    SolveRecord rec;
    rec.bench = std::string("followsun_churn_") + c.label;
    rec.backend = c.reliable ? "lns" : "bnb";
    rec.seed = cfg.seed;
    rec.wall_ms = res.avg_link_solve_ms;
    rec.objective = res.final_cost;
    rec.has_objective = true;
    rec.loss_pct = c.loss * 100;
    rec.crashes = static_cast<uint64_t>(res.crashes);
    rec.drops = res.messages_dropped;
    rec.failed_rounds = static_cast<uint64_t>(res.failed_rounds);
    rec.recovered_rounds = static_cast<uint64_t>(res.recovered_rounds);
    printf("%s\n", rec.ToJsonLine().c_str());
    printf("  %s: final %.1f (%.1f%% of initial), %d rounds, "
           "%d failed, %d recovered, %llu drops, %d crashes\n",
           c.label, res.final_cost,
           res.final_cost / res.initial_cost * 100, res.rounds,
           res.failed_rounds, res.recovered_rounds,
           static_cast<unsigned long long>(res.messages_dropped),
           res.crashes);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional arg: churn-only mode for CI smoke ("churn").
  bool churn_only = argc > 1 && std::string(argv[1]) == "churn";
  if (!churn_only) {
    printf("Figure 4: total cost as distributed solving converges\n");
    printf("(normalized to 100%% at t=0; one line per network size)\n\n");
    for (int n : {2, 4, 6, 8, 10}) {
      FtsConfig cfg;
      cfg.num_dcs = n;
      cfg.seed = 100 + static_cast<uint64_t>(n);
      FollowTheSunScenario scenario(cfg);
      auto r = scenario.Run();
      if (!r.ok()) {
        printf("n=%d failed: %s\n", n, r.status().ToString().c_str());
        return 1;
      }
      const FtsResult& res = r.value();
      printf("%2d data centers: ", n);
      for (const FtsSample& s : res.series) {
        printf("t=%.0fs:%.1f%% ", s.t_s, s.normalized);
      }
      printf("\n                 cost reduction %.1f%%, converged in %.0fs "
             "(%d rounds), %d VM units migrated\n",
             res.reduction_pct, res.converge_time_s, res.rounds,
             res.total_vms_migrated);
    }
    printf("\n(paper: reduction ranges from 40.4%% at 2 DCs down to 11.2%% at\n"
           " 10 DCs — the distributed approximation weakens as the problem\n"
           " grows; larger networks also take longer to converge)\n");
  }

  FILE* churn = fopen("BENCH_churn.json", "w");
  int rc = RunChurn(churn);
  if (churn != nullptr) fclose(churn);
  return rc;
}

// Figure 4: Follow-the-Sun — normalized total cost as distributed solving
// converges, for 2..10 data centers.
#include <cstdio>

#include "apps/followsun.h"

using namespace cologne;
using namespace cologne::apps;

int main() {
  printf("Figure 4: total cost as distributed solving converges\n");
  printf("(normalized to 100%% at t=0; one line per network size)\n\n");
  for (int n : {2, 4, 6, 8, 10}) {
    FtsConfig cfg;
    cfg.num_dcs = n;
    cfg.seed = 100 + static_cast<uint64_t>(n);
    FollowTheSunScenario scenario(cfg);
    auto r = scenario.Run();
    if (!r.ok()) {
      printf("n=%d failed: %s\n", n, r.status().ToString().c_str());
      return 1;
    }
    const FtsResult& res = r.value();
    printf("%2d data centers: ", n);
    for (const FtsSample& s : res.series) {
      printf("t=%.0fs:%.1f%% ", s.t_s, s.normalized);
    }
    printf("\n                 cost reduction %.1f%%, converged in %.0fs "
           "(%d rounds), %d VM units migrated\n",
           res.reduction_pct, res.converge_time_s, res.rounds,
           res.total_vms_migrated);
  }
  printf("\n(paper: reduction ranges from 40.4%% at 2 DCs down to 11.2%% at\n"
         " 10 DCs — the distributed approximation weakens as the problem\n"
         " grows; larger networks also take longer to converge)\n");
  return 0;
}

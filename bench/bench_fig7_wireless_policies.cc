// Figure 7: aggregate throughput under channel-selection policy variations
// (cross-layer protocol, 30 simulated nodes):
//   * 2-hop Interference  — the original policy,
//   * Restricted Channels — 20% of channels blocked by primary users,
//   * 1-hop Interference  — restricted channels + one-hop cost model.
#include <cstdio>

#include "apps/wireless.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

struct Policy {
  const char* name;
  double restrict_frac;
  int hops;
};

}  // namespace

int main() {
  std::vector<Policy> policies = {
      {"2-hop Interference", 0.0, 2},
      {"Restricted Channels", 0.20, 2},
      {"1-hop Interference", 0.20, 1},
  };

  std::vector<WirelessScenario> scenarios;
  std::vector<ChannelAssignment> assignments;
  printf("Figure 7: aggregate throughput under policy variations\n");
  for (const Policy& pol : policies) {
    WirelessConfig cfg;
    cfg.restrict_frac = pol.restrict_frac;
    cfg.interference_hops = pol.hops;
    scenarios.emplace_back(cfg);
    auto r = scenarios.back().AssignChannels(WirelessProtocol::kCrossLayer);
    if (!r.ok()) {
      printf("%s failed: %s\n", pol.name, r.status().ToString().c_str());
      return 1;
    }
    printf("  %-20s interference cost %6.0f\n", pol.name,
           r.value().interference_cost);
    assignments.push_back(std::move(r).value());
  }

  printf("\nThroughput (Mbps) vs per-flow data rate (Mbps):\n%10s", "rate");
  for (const Policy& pol : policies) printf(" %22s", pol.name);
  printf("\n");
  // Evaluate every assignment on the *same* unrestricted 2-hop physical
  // model: the policy changes what the optimizer may use/knows, not physics.
  WirelessConfig phys;
  WirelessScenario physical(phys);
  std::vector<double> totals(policies.size(), 0);
  for (double rate = 1; rate <= 10; rate += 1) {
    printf("%10.0f", rate);
    for (size_t i = 0; i < policies.size(); ++i) {
      double t = physical.AggregateThroughput(assignments[i], rate, true);
      totals[i] += t;
      printf(" %22.2f", t);
    }
    printf("\n");
  }
  printf("\nAverage deltas: restricted vs 2-hop %.1f%% (paper: -35.9%%), "
         "1-hop vs restricted %.1f%% (paper: -6.9%%)\n",
         (totals[1] / totals[0] - 1) * 100, (totals[2] / totals[1] - 1) * 100);
  return 0;
}

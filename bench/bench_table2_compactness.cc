// Table 2: Colog program size (rules) vs generated imperative C++ (SLOC).
//
// Reproduces the paper's compactness comparison: each case-study program is
// compiled and run through the C++ code generator (the RapidNet/Gecode
// translation), and we report Colog statement counts against generated SLOC.
// Paper reference values are printed alongside.
#include <cstdio>

#include "apps/programs.h"
#include "colog/codegen.h"
#include "colog/parser.h"
#include "colog/planner.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

struct Row2 {
  const char* name;
  std::string source;
  const char* unit;
  int paper_rules;
  int paper_loc;
};

}  // namespace

int main() {
  std::vector<Row2> rows = {
      {"ACloud (centralized)", ACloudProgram(true, 3), "acloud", 10, 935},
      {"Follow-the-Sun (centralized)", FollowTheSunCentralizedProgram(),
       "fts_central", 16, 1487},
      {"Follow-the-Sun (distributed)", FollowTheSunDistributedProgram(true),
       "fts_dist", 32, 3112},
      {"Wireless (centralized)", WirelessCentralizedProgram(true),
       "wireless_central", 35, 3229},
      {"Wireless (distributed)", WirelessDistributedProgram(),
       "wireless_dist", 48, 4445},
  };

  printf("Table 2: Colog and compiled C++ comparison\n");
  printf("%-32s %12s %18s %8s | %12s %10s\n", "Protocol", "Colog rules",
         "generated C++ SLOC", "ratio", "paper rules", "paper LOC");
  for (const Row2& row : rows) {
    auto parsed = colog::Parse(row.source);
    if (!parsed.ok()) {
      printf("%-32s PARSE ERROR: %s\n", row.name,
             parsed.status().ToString().c_str());
      return 1;
    }
    size_t rules = parsed.value().RuleCount();
    auto compiled = colog::CompileColog(row.source);
    if (!compiled.ok()) {
      printf("%-32s COMPILE ERROR: %s\n", row.name,
             compiled.status().ToString().c_str());
      return 1;
    }
    std::string cpp = colog::GenerateCpp(compiled.value(), row.unit);
    size_t sloc = colog::CountSloc(cpp);
    printf("%-32s %12zu %18zu %7.1fx | %12d %10d\n", row.name, rules, sloc,
           static_cast<double>(sloc) / static_cast<double>(rules),
           row.paper_rules, row.paper_loc);
  }
  printf(
      "\nNote: our distributed rule counts are lower than the paper's because"
      "\nthe link-negotiation protocol (13 rules, omitted in the paper) runs"
      "\nin the C++ driver; the generated-code ratio is the reproduced "
      "shape.\n");
  return 0;
}

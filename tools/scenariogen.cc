// scenariogen — emit seeded randomized scenarios for the three paper apps
// as reproducible JSON lines (docs/testing.md).
//
//   scenariogen [--count N] [--seed S] [--apps fts,wireless,acloud]
//               [--app NAME --scenario-seed S]   # regenerate one scenario
//               [--no-faults] [--out FILE]
//
// Same flags => same output, byte for byte. `--app X --scenario-seed S`
// regenerates exactly the scenario a sweep failure names, independent of
// --count/--seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenariogen.h"

namespace {

using cologne::apps::GenerateScenario;
using cologne::apps::GenerateScenarios;
using cologne::apps::ParseScenarioApp;
using cologne::apps::Scenario;
using cologne::apps::ScenarioApp;
using cologne::apps::ScenarioGenConfig;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--count N] [--seed S] [--apps fts,wireless,acloud]\n"
      "          [--app NAME --scenario-seed S] [--no-faults] [--out FILE]\n",
      argv0);
  return 2;
}

std::vector<ScenarioApp> ParseApps(const std::string& csv, bool* ok) {
  std::vector<ScenarioApp> apps;
  *ok = true;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    ScenarioApp app;
    if (!ParseScenarioApp(item, &app)) {
      std::fprintf(stderr, "scenariogen: unknown app \"%s\"\n", item.c_str());
      *ok = false;
      return apps;
    }
    apps.push_back(app);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return apps;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioGenConfig config;
  std::string out_path;
  std::string one_app;
  bool have_scenario_seed = false;
  uint64_t scenario_seed = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.count = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      bool ok = false;
      config.apps = ParseApps(v, &ok);
      if (!ok || config.apps.empty()) return Usage(argv[0]);
    } else if (arg == "--app") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      one_app = v;
    } else if (arg == "--scenario-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      scenario_seed = std::strtoull(v, nullptr, 10);
      have_scenario_seed = true;
    } else if (arg == "--no-faults") {
      config.with_faults = false;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else {
      return Usage(argv[0]);
    }
  }

  std::vector<Scenario> scenarios;
  if (!one_app.empty() || have_scenario_seed) {
    if (one_app.empty() || !have_scenario_seed) {
      std::fprintf(stderr,
                   "scenariogen: --app and --scenario-seed go together\n");
      return 2;
    }
    ScenarioApp app;
    if (!ParseScenarioApp(one_app, &app)) {
      std::fprintf(stderr, "scenariogen: unknown app \"%s\"\n",
                   one_app.c_str());
      return 2;
    }
    scenarios.push_back(GenerateScenario(app, scenario_seed, config));
  } else {
    scenarios = GenerateScenarios(config);
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "scenariogen: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  for (const Scenario& s : scenarios) {
    std::fprintf(out, "%s\n", s.ToJson().c_str());
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

// explain: answer provenance queries against a recorded trace (ISSUE 6).
//
//   explain --trace run.trace --list
//   explain --trace run.trace --node 3 --round 7
//   explain --trace run.trace --node 3 --round 7 --var curVm
//
// For each matching `solve` event the tool prints the binding-constraint
// chain recorded in its `prov` field (per decision group: which rule-posted
// constraints hold with zero slack at the incumbent, and whether the group's
// values came from the warm-start cache, a domain bound — propagation or a
// B&B clamp — or branching). For the selected round it also prints the
// counter deltas between that round's `metrics` snapshot and the previous
// one. `--var` narrows the provenance output to groups whose key or tight
// constraint labels contain the given substring.
//
// Rounds follow the trace convention: the `metrics` line for round R is
// emitted after round R's events, so every event up to and including that
// line (and after round R-1's line) belongs to round R.
//
// Output is deterministic — CI diffs it against a golden answer file.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "runtime/trace_replay.h"

namespace cologne::runtime {
namespace {

// ---------------------------------------------------------------------------
// Minimal parser for the canonical trace JSON (no whitespace, fixed escapes).
// Only the shapes TraceRecorder emits are supported; anything else is a
// parse error, which is what we want for a format checker.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  std::string text;  // number: raw spelling; string: unescaped contents
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  int64_t AsInt() const { return strtoll(text.c_str(), nullptr, 10); }
  uint64_t AsUInt() const { return strtoull(text.c_str(), nullptr, 10); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& in) : in_(in) {}

  bool Parse(JsonValue* out) {
    return ParseValue(out) && pos_ == in_.size();
  }

 private:
  bool ParseValue(JsonValue* out) {
    if (pos_ >= in_.size()) return false;
    char c = in_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      const char* word = c == 't' ? "true" : "false";
      size_t len = strlen(word);
      if (in_.compare(pos_, len, word) != 0) return false;
      out->b = c == 't';
      pos_ += len;
      return true;
    }
    if (c == 'n') {
      if (in_.compare(pos_, 4, "null") != 0) return false;
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    // Number: take the maximal run of number characters, keep the raw
    // spelling so values round-trip exactly as the writer rendered them.
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (strchr("+-.eE", in_[pos_]) != nullptr ||
            (in_[pos_] >= '0' && in_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->text = in_.substr(start, pos_ - start);
    return true;
  }

  bool ParseString(std::string* out) {
    if (in_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) return false;
      char esc = in_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          // The canonical writer only emits \u00XX for control bytes.
          if (pos_ + 4 > in_.size()) return false;
          unsigned code = static_cast<unsigned>(
              strtoul(in_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= in_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (pos_ < in_.size() && in_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (pos_ >= in_.size() || !ParseString(&key)) return false;
      if (pos_ >= in_.size() || in_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      if (pos_ >= in_.size()) return false;
      if (in_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (in_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (pos_ < in_.size() && in_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      if (pos_ >= in_.size()) return false;
      if (in_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (in_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Trace model
// ---------------------------------------------------------------------------

struct ProvGroup {
  std::string key;  // empty = ungrouped solve
  std::string src;
  std::vector<std::string> tight;
};

struct SolveEvent {
  std::string t;  // raw spelling, echoed verbatim
  int node = 0;
  std::string status;
  bool has_objective = false;
  std::string objective;
  uint64_t vars = 0;
  uint64_t groups = 0;
  bool warm = false;
  std::vector<ProvGroup> prov;
  uint64_t round = 0;  // 0 = no metrics lines follow this event
};

struct MetricsEvent {
  std::string t;
  uint64_t round = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  // name -> (le bounds, counts, total count, sum)
  struct Hist {
    std::vector<int64_t> le;
    std::vector<uint64_t> n;
    uint64_t count = 0;
    int64_t sum = 0;
  };
  std::map<std::string, Hist> hists;
};

struct Trace {
  std::string program;
  uint64_t seed = 0;
  std::vector<SolveEvent> solves;
  std::vector<MetricsEvent> metrics;

  const MetricsEvent* Round(uint64_t round) const {
    for (const MetricsEvent& m : metrics) {
      if (m.round == round) return &m;
    }
    return nullptr;
  }
};

bool ParseSolve(const JsonValue& line, SolveEvent* out) {
  const JsonValue* t = line.Find("t");
  const JsonValue* node = line.Find("node");
  const JsonValue* status = line.Find("status");
  if (t == nullptr || node == nullptr || status == nullptr) return false;
  out->t = t->text;
  out->node = static_cast<int>(node->AsInt());
  out->status = status->text;
  if (const JsonValue* v = line.Find("objective")) {
    out->has_objective = true;
    out->objective = v->text;
  }
  if (const JsonValue* v = line.Find("vars")) out->vars = v->AsUInt();
  if (const JsonValue* v = line.Find("groups")) out->groups = v->AsUInt();
  if (const JsonValue* v = line.Find("warm")) out->warm = v->AsInt() != 0;
  if (const JsonValue* v = line.Find("prov")) {
    for (const JsonValue& g : v->items) {
      ProvGroup group;
      if (const JsonValue* k = g.Find("g")) group.key = k->text;
      if (const JsonValue* s = g.Find("src")) group.src = s->text;
      if (const JsonValue* tight = g.Find("tight")) {
        for (const JsonValue& label : tight->items) {
          group.tight.push_back(label.text);
        }
      }
      out->prov.push_back(std::move(group));
    }
  }
  return true;
}

bool ParseMetrics(const JsonValue& line, MetricsEvent* out) {
  const JsonValue* t = line.Find("t");
  const JsonValue* round = line.Find("round");
  if (t == nullptr || round == nullptr) return false;
  out->t = t->text;
  out->round = round->AsUInt();
  if (const JsonValue* c = line.Find("counters")) {
    for (const auto& [name, v] : c->fields) out->counters[name] = v.AsUInt();
  }
  if (const JsonValue* g = line.Find("gauges")) {
    for (const auto& [name, v] : g->fields) out->gauges[name] = v.AsInt();
  }
  if (const JsonValue* h = line.Find("hist")) {
    for (const auto& [name, v] : h->fields) {
      MetricsEvent::Hist hist;
      if (const JsonValue* le = v.Find("le")) {
        for (const JsonValue& b : le->items) hist.le.push_back(b.AsInt());
      }
      if (const JsonValue* n = v.Find("n")) {
        for (const JsonValue& b : n->items) hist.n.push_back(b.AsUInt());
      }
      if (const JsonValue* c = v.Find("count")) hist.count = c->AsUInt();
      if (const JsonValue* s = v.Find("sum")) hist.sum = s->AsInt();
      out->hists[name] = std::move(hist);
    }
  }
  return true;
}

Result<Trace> LoadTrace(const std::string& path) {
  COLOGNE_ASSIGN_OR_RETURN(lines, ReadTraceLines(path));
  if (lines.empty()) return Status::ParseError("empty trace: " + path);
  COLOGNE_ASSIGN_OR_RETURN(header, ParseTraceHeader(lines[0]));
  Trace trace;
  trace.program = header.program;
  trace.seed = header.seed;
  // Indices of solve events still waiting for their round's metrics line.
  std::vector<size_t> open_solves;
  for (size_t i = 1; i < lines.size(); ++i) {
    JsonValue value;
    if (!JsonParser(lines[i]).Parse(&value)) {
      return Status::ParseError("line " + std::to_string(i + 1) +
                                " is not canonical trace JSON");
    }
    const JsonValue* ev = value.Find("ev");
    if (ev == nullptr) {
      return Status::ParseError("line " + std::to_string(i + 1) +
                                " has no \"ev\" field");
    }
    if (ev->text == "solve") {
      SolveEvent solve;
      if (!ParseSolve(value, &solve)) {
        return Status::ParseError("line " + std::to_string(i + 1) +
                                  ": malformed solve event");
      }
      open_solves.push_back(trace.solves.size());
      trace.solves.push_back(std::move(solve));
    } else if (ev->text == "metrics") {
      MetricsEvent metrics;
      if (!ParseMetrics(value, &metrics)) {
        return Status::ParseError("line " + std::to_string(i + 1) +
                                  ": malformed metrics event");
      }
      for (size_t s : open_solves) trace.solves[s].round = metrics.round;
      open_solves.clear();
      trace.metrics.push_back(std::move(metrics));
    }
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool GroupMatchesVar(const ProvGroup& g, const std::string& var) {
  if (var.empty()) return true;
  if (g.key.find(var) != std::string::npos) return true;
  for (const std::string& label : g.tight) {
    if (label.find(var) != std::string::npos) return true;
  }
  return false;
}

void PrintSolve(const SolveEvent& s, const std::string& var) {
  printf("solve t=%s node=%d round=", s.t.c_str(), s.node);
  if (s.round == 0) {
    printf("?");
  } else {
    printf("%llu", static_cast<unsigned long long>(s.round));
  }
  printf(" status=%s", s.status.c_str());
  if (s.has_objective) printf(" objective=%s", s.objective.c_str());
  printf(" vars=%llu", static_cast<unsigned long long>(s.vars));
  if (s.groups > 0) {
    printf(" groups=%llu", static_cast<unsigned long long>(s.groups));
  }
  printf(" warm=%s\n", s.warm ? "yes" : "no");
  if (s.prov.empty()) {
    printf("  (no provenance recorded: OBS_METRICS was off, or no solution)\n");
    return;
  }
  bool any = false;
  for (const ProvGroup& g : s.prov) {
    if (!GroupMatchesVar(g, var)) continue;
    any = true;
    printf("  group %s src=%s\n", g.key.empty() ? "(all)" : g.key.c_str(),
           g.src.c_str());
    if (g.tight.empty()) {
      printf("    binding: (none — every touching constraint has slack)\n");
    } else {
      printf("    binding:");
      for (const std::string& label : g.tight) printf(" %s", label.c_str());
      printf("\n");
    }
  }
  if (!any) {
    printf("  (no group matches --var %s)\n", var.c_str());
  }
}

void PrintMetricsDelta(const Trace& trace, uint64_t round) {
  const MetricsEvent* cur = trace.Round(round);
  if (cur == nullptr) {
    printf("\nno metrics snapshot for round %llu\n",
           static_cast<unsigned long long>(round));
    return;
  }
  const MetricsEvent* prev = trace.Round(round - 1);
  printf("\nmetrics round %llu (t=%s)%s:\n",
         static_cast<unsigned long long>(round), cur->t.c_str(),
         prev == nullptr ? "" : " — delta vs previous round");
  for (const auto& [name, value] : cur->counters) {
    uint64_t before = 0;
    if (prev != nullptr) {
      auto it = prev->counters.find(name);
      if (it != prev->counters.end()) before = it->second;
    }
    printf("  %s: %llu (+%llu)\n", name.c_str(),
           static_cast<unsigned long long>(value),
           static_cast<unsigned long long>(value - before));
  }
  for (const auto& [name, value] : cur->gauges) {
    printf("  %s: %lld (gauge)\n", name.c_str(),
           static_cast<long long>(value));
  }
  for (const auto& [name, h] : cur->hists) {
    printf("  %s: count=%llu sum=%lld buckets[", name.c_str(),
           static_cast<unsigned long long>(h.count),
           static_cast<long long>(h.sum));
    for (size_t i = 0; i < h.n.size(); ++i) {
      if (i > 0) printf(" ");
      if (i < h.le.size()) {
        printf("<=%lld:%llu", static_cast<long long>(h.le[i]),
               static_cast<unsigned long long>(h.n[i]));
      } else {
        printf("inf:%llu", static_cast<unsigned long long>(h.n[i]));
      }
    }
    printf("]\n");
  }
}

void PrintList(const Trace& trace) {
  std::map<int, size_t> per_node;
  for (const SolveEvent& s : trace.solves) ++per_node[s.node];
  printf("solve events: %zu\n", trace.solves.size());
  for (const auto& [node, count] : per_node) {
    printf("  node %d: %zu\n", node, count);
  }
  printf("metrics snapshots: %zu\n", trace.metrics.size());
  for (const MetricsEvent& m : trace.metrics) {
    printf("  round %llu t=%s counters=%zu gauges=%zu\n",
           static_cast<unsigned long long>(m.round), m.t.c_str(),
           m.counters.size(), m.gauges.size());
  }
}

int Usage() {
  fprintf(stderr,
          "usage: explain --trace FILE [--list] [--node N] [--round R] "
          "[--var NAME]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string trace_path;
  std::string var;
  int node = -1;
  int64_t round = -1;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_path = v;
    } else if (arg == "--node") {
      const char* v = next();
      if (v == nullptr) return Usage();
      node = atoi(v);
    } else if (arg == "--round") {
      const char* v = next();
      if (v == nullptr) return Usage();
      round = strtoll(v, nullptr, 10);
    } else if (arg == "--var") {
      const char* v = next();
      if (v == nullptr) return Usage();
      var = v;
    } else if (arg == "--list") {
      list = true;
    } else {
      return Usage();
    }
  }
  if (trace_path.empty()) return Usage();

  auto loaded = LoadTrace(trace_path);
  if (!loaded.ok()) {
    fprintf(stderr, "explain: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Trace& trace = loaded.value();
  printf("trace: program=%s seed=%llu\n", trace.program.c_str(),
         static_cast<unsigned long long>(trace.seed));

  if (list) {
    PrintList(trace);
    return 0;
  }

  printf("query: node=%s round=%s var=%s\n",
         node < 0 ? "*" : std::to_string(node).c_str(),
         round < 0 ? "*" : std::to_string(round).c_str(),
         var.empty() ? "*" : var.c_str());
  size_t matched = 0;
  for (const SolveEvent& s : trace.solves) {
    if (node >= 0 && s.node != node) continue;
    if (round >= 0 && s.round != static_cast<uint64_t>(round)) continue;
    PrintSolve(s, var);
    ++matched;
  }
  if (matched == 0) {
    printf("no solve events match\n");
    return 1;
  }
  if (round >= 0 && !trace.metrics.empty()) {
    PrintMetricsDelta(trace, static_cast<uint64_t>(round));
  }
  return 0;
}

}  // namespace
}  // namespace cologne::runtime

int main(int argc, char** argv) {
  return cologne::runtime::Main(argc, argv);
}

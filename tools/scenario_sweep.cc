// scenario_sweep — run generated scenarios across solver backends and report
// the objective-gap distribution vs the portfolio incumbent
// (docs/testing.md).
//
//   scenario_sweep [--count N] [--seed S] [--apps fts,wireless,acloud]
//                  [--backends local_search,lns] [--iterations N]
//                  [--no-faults] [--gate-gap X] [--out FILE]
//
// For every generated scenario the portfolio backend solves first (the
// baseline incumbent), then each candidate backend; the first candidate
// additionally re-runs to enforce seed determinism (equal objective and
// byte-identical trace fingerprint). Every run is invariant-checked
// (apps/invariants.h). Output is one JSON object per line — per-run rows
// followed by one summary row per backend (p50/p95 gap) — written to --out
// (default BENCH_scenarios.json).
//
// Exit status is non-zero on any driver error, invariant violation,
// determinism failure, conservation mismatch, or (with --gate-gap) a p50/p95
// gap above the gate; each failure prints the scenariogen command that
// regenerates the offending scenario.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenariogen.h"
#include "common/json.h"

namespace {

using cologne::JsonWriter;
using cologne::apps::GenerateScenarios;
using cologne::apps::ParseScenarioApp;
using cologne::apps::RunScenario;
using cologne::apps::Scenario;
using cologne::apps::ScenarioApp;
using cologne::apps::ScenarioAppName;
using cologne::apps::ScenarioGenConfig;
using cologne::apps::ScenarioRun;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--count N] [--seed S] [--apps fts,wireless,acloud]\n"
      "          [--backends local_search,lns] [--iterations N]\n"
      "          [--no-faults] [--gate-gap X] [--out FILE]\n",
      argv0);
  return 2;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    items.push_back(csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

// The one-command reproduction line every failure prints.
void PrintRepro(const Scenario& s, const std::string& backend,
                const char* what, const std::string& detail) {
  std::fprintf(stderr,
               "scenario_sweep: %s: scenario=%s backend=%s seed=%llu: %s\n"
               "  reproduce: scenariogen --app %s --scenario-seed %llu\n",
               what, s.name.c_str(), backend.c_str(),
               static_cast<unsigned long long>(s.seed), detail.c_str(),
               ScenarioAppName(s.app),
               static_cast<unsigned long long>(s.seed));
}

// Objective gap vs the baseline, guarded against zero objectives (a perfect
// interference cost of 0 must compare as gap 1.0, not 0/0).
double Gap(double objective, double baseline) {
  return (objective + 1.0) / (baseline + 1.0);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  double rank = p * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioGenConfig config;
  config.count = 30;
  std::vector<std::string> backends = {"local_search", "lns"};
  std::string out_path = "BENCH_scenarios.json";
  double gate_gap = 0;  // 0 = report only

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.count = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.apps.clear();
      for (const std::string& name : SplitCsv(v)) {
        ScenarioApp app;
        if (!ParseScenarioApp(name, &app)) {
          std::fprintf(stderr, "scenario_sweep: unknown app \"%s\"\n",
                       name.c_str());
          return 2;
        }
        config.apps.push_back(app);
      }
      if (config.apps.empty()) return Usage(argv[0]);
    } else if (arg == "--backends") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      backends = SplitCsv(v);
      if (backends.empty()) return Usage(argv[0]);
    } else if (arg == "--iterations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.solver_iterations = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-faults") {
      config.with_faults = false;
    } else if (arg == "--gate-gap") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gate_gap = std::atof(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else {
      return Usage(argv[0]);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "scenario_sweep: cannot open %s\n", out_path.c_str());
    return 1;
  }

  const std::vector<Scenario> scenarios = GenerateScenarios(config);
  int failures = 0;
  int violations = 0;
  // Per-backend gap samples across satisfiable (baseline-ok) scenarios.
  std::vector<std::vector<double>> gaps(backends.size());

  for (const Scenario& s : scenarios) {
    ScenarioRun base = RunScenario(s, "portfolio");
    if (!base.ok) {
      ++failures;
      PrintRepro(s, "portfolio", "driver error", base.error);
      continue;
    }
    if (!base.violation.empty()) {
      ++failures;
      ++violations;
      PrintRepro(s, "portfolio", "invariant violation", base.violation);
    }
    {
      JsonWriter w;
      w.BeginObject();
      w.Key("scenario").String(s.name);
      w.Key("app").String(ScenarioAppName(s.app));
      w.Key("seed").UInt(s.seed);
      w.Key("backend").String("portfolio");
      w.Key("objective").Double(base.objective);
      w.Key("gap").Double(1.0);
      w.Key("solves").Int(base.solves);
      w.Key("violation").String(base.violation);
      w.EndObject();
      std::fprintf(out, "%s\n", w.Take().c_str());
    }

    for (size_t b = 0; b < backends.size(); ++b) {
      const std::string& backend = backends[b];
      ScenarioRun run = RunScenario(s, backend);
      bool deterministic = true;
      if (!run.ok) {
        ++failures;
        PrintRepro(s, backend, "driver error", run.error);
        continue;
      }
      if (!run.violation.empty()) {
        ++failures;
        ++violations;
        PrintRepro(s, backend, "invariant violation", run.violation);
      }
      if (b == 0) {
        // Determinism gate: the first candidate backend re-runs the same
        // scenario; objective and trace fingerprint must match byte for
        // byte (every scenario solves wall-clock-free by construction).
        ScenarioRun again = RunScenario(s, backend);
        deterministic = again.ok && again.objective == run.objective &&
                        again.trace_hash == run.trace_hash;
        if (!deterministic) {
          ++failures;
          PrintRepro(s, backend, "determinism failure",
                     "re-run diverged (objective or trace fingerprint)");
        }
      }
      // Conservation across backends only binds crash-free plans: a
      // restart replays the initial placement, legitimately shifting the
      // per-demand totals depending on negotiation timing.
      if (s.app == ScenarioApp::kFts && s.fts.fault_plan.crashes.empty() &&
          run.fts_demand_totals != base.fts_demand_totals) {
        ++failures;
        ++violations;
        PrintRepro(s, backend, "conservation violation",
                   "per-demand VM totals differ from the portfolio run");
      }
      const double gap = Gap(run.objective, base.objective);
      gaps[b].push_back(gap);

      JsonWriter w;
      w.BeginObject();
      w.Key("scenario").String(s.name);
      w.Key("app").String(ScenarioAppName(s.app));
      w.Key("seed").UInt(s.seed);
      w.Key("backend").String(backend);
      w.Key("objective").Double(run.objective);
      w.Key("gap").Double(gap);
      w.Key("solves").Int(run.solves);
      w.Key("violation").String(run.violation);
      w.Key("deterministic").Bool(deterministic);
      w.EndObject();
      std::fprintf(out, "%s\n", w.Take().c_str());
    }
  }

  bool gate_failed = false;
  for (size_t b = 0; b < backends.size(); ++b) {
    const double p50 = Percentile(gaps[b], 0.50);
    const double p95 = Percentile(gaps[b], 0.95);
    JsonWriter w;
    w.BeginObject();
    w.Key("summary").Bool(true);
    w.Key("backend").String(backends[b]);
    w.Key("scenarios").Int(static_cast<int64_t>(gaps[b].size()));
    w.Key("violations").Int(violations);
    w.Key("p50_gap").Double(p50);
    w.Key("p95_gap").Double(p95);
    w.EndObject();
    std::fprintf(out, "%s\n", w.Take().c_str());
    std::fprintf(stderr, "scenario_sweep: %s: %zu scenarios, p50 gap %.4f, "
                         "p95 gap %.4f\n",
                 backends[b].c_str(), gaps[b].size(), p50, p95);
    if (gate_gap > 0 && (p50 > gate_gap || p95 > gate_gap)) {
      gate_failed = true;
      std::fprintf(stderr,
                   "scenario_sweep: %s gap gate failed (p50 %.4f / p95 %.4f "
                   "> %.2f)\n",
                   backends[b].c_str(), p50, p95, gate_gap);
    }
  }
  std::fclose(out);

  if (failures > 0 || gate_failed) {
    std::fprintf(stderr, "scenario_sweep: %d failure(s), %d violation(s)\n",
                 failures, violations);
    return 1;
  }
  return 0;
}

// doccheck: executable documentation for Colog.
//
// Extracts every ```colog fenced code block from the given markdown files,
// compiles it through the real toolchain (CompileColog), and — when the
// block carries `//!` directives — loads it into a runtime::Instance, feeds
// it facts, runs invokeSolver, and checks the outcome. Directives are Colog
// comments, so documented programs run verbatim.
//
//   //! fact vm(1, 20, 30)         insert a base fact before solving
//   //! solve                      invokeSolver must find a solution
//   //! solve objective=42         ... with this exact objective
//   //! expect assign rows=4       engine table cardinality after the solve
//   //! compile-only               only compile (default for @-distributed
//                                  programs, which need a full System)
//
// Usage: doccheck FILE.md [FILE.md ...]; exits non-zero on the first
// failing block, printing file and line. Wired into ctest and the CI docs
// job so the examples in docs/colog-reference.md cannot rot.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/value.h"
#include "runtime/instance.h"

namespace {

using cologne::Row;
using cologne::Value;

struct Directive {
  std::string kind;  // "fact", "solve", "expect", "compile-only"
  std::string body;  // remainder of the line after the kind
  int line = 0;
};

struct Block {
  std::string source;
  std::vector<Directive> directives;
  int start_line = 0;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ParseValue(const std::string& text, Value* out) {
  std::string t = Trim(text);
  if (t.empty()) return false;
  if (t.front() == '"' && t.back() == '"' && t.size() >= 2) {
    *out = Value::Str(t.substr(1, t.size() - 2));
    return true;
  }
  if (t.front() == '@') {
    *out = Value::Node(static_cast<cologne::NodeId>(
        strtol(t.c_str() + 1, nullptr, 10)));
    return true;
  }
  char* end = nullptr;
  long long v = strtoll(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = Value::Int(v);
  return true;
}

/// Parse "table(v1, v2, ...)" into a table name and a row.
bool ParseFact(const std::string& text, std::string* table, Row* row) {
  size_t open = text.find('(');
  size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  *table = Trim(text.substr(0, open));
  std::string args = text.substr(open + 1, close - open - 1);
  row->clear();
  std::string cur;
  for (char c : args + ",") {
    if (c == ',') {
      if (Trim(cur).empty()) continue;
      Value v;
      if (!ParseValue(cur, &v)) return false;
      row->push_back(std::move(v));
      cur.clear();
    } else {
      cur += c;
    }
  }
  return !table->empty();
}

int Fail(const std::string& file, int line, const std::string& msg) {
  fprintf(stderr, "%s:%d: %s\n", file.c_str(), line, msg.c_str());
  return 1;
}

int CheckBlock(const std::string& file, const Block& block) {
  auto compiled = cologne::colog::CompileColog(block.source);
  if (!compiled.ok()) {
    return Fail(file, block.start_line,
                "colog block fails to compile: " +
                    compiled.status().ToString());
  }
  cologne::colog::CompiledProgram prog = std::move(compiled).value();

  bool compile_only = prog.distributed;  // needs a full System to run
  bool has_run_directives = false;
  for (const Directive& d : block.directives) {
    if (d.kind == "compile-only") compile_only = true;
    if (d.kind == "fact" || d.kind == "solve" || d.kind == "expect") {
      has_run_directives = true;
    }
  }
  if (compile_only || !has_run_directives) return 0;

  cologne::runtime::Instance inst(0, &prog);
  cologne::Status s = inst.Init();
  if (!s.ok()) return Fail(file, block.start_line, s.ToString());

  cologne::runtime::SolveOutput last;
  bool solved = false;
  for (const Directive& d : block.directives) {
    if (d.kind == "fact") {
      std::string table;
      Row row;
      if (!ParseFact(d.body, &table, &row)) {
        return Fail(file, d.line, "unparseable fact directive: " + d.body);
      }
      s = inst.InsertFact(table, std::move(row));
      if (!s.ok()) return Fail(file, d.line, s.ToString());
    } else if (d.kind == "solve") {
      auto out = inst.Solve();
      if (!out.ok()) return Fail(file, d.line, out.status().ToString());
      last = out.value();
      solved = true;
      if (!last.has_solution()) {
        return Fail(file, d.line, "solve found no solution");
      }
      size_t eq = d.body.find("objective=");
      if (eq != std::string::npos) {
        double want = strtod(d.body.c_str() + eq + 10, nullptr);
        if (!last.has_objective || last.objective != want) {
          return Fail(file, d.line,
                      "objective mismatch: wanted " + std::to_string(want) +
                          ", got " + std::to_string(last.objective));
        }
      }
    } else if (d.kind == "expect") {
      std::istringstream in(d.body);
      std::string table, rows_spec;
      in >> table >> rows_spec;
      if (table.empty() || rows_spec.rfind("rows=", 0) != 0) {
        return Fail(file, d.line, "unparseable expect directive: " + d.body);
      }
      size_t want = strtoull(rows_spec.c_str() + 5, nullptr, 10);
      const cologne::datalog::Table* t = inst.engine().GetTable(table);
      size_t got = t == nullptr ? 0 : t->size();
      if (got != want) {
        return Fail(file, d.line,
                    "table " + table + " has " + std::to_string(got) +
                        " rows, expected " + std::to_string(want));
      }
    }
  }
  (void)solved;
  return 0;
}

int CheckFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fprintf(stderr, "doccheck: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  int lineno = 0, blocks = 0, failures = 0;
  bool in_block = false;
  Block block;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = Trim(line);
    if (!in_block) {
      if (t.rfind("```colog", 0) == 0) {
        in_block = true;
        block = Block{};
        block.start_line = lineno + 1;
      }
      continue;
    }
    if (t.rfind("```", 0) == 0) {
      in_block = false;
      ++blocks;
      failures += CheckBlock(path, block);
      continue;
    }
    if (t.rfind("//!", 0) == 0) {
      std::string rest = Trim(t.substr(3));
      size_t sp = rest.find(' ');
      Directive d;
      d.kind = sp == std::string::npos ? rest : rest.substr(0, sp);
      d.body = sp == std::string::npos ? "" : Trim(rest.substr(sp + 1));
      d.line = lineno;
      block.directives.push_back(std::move(d));
    }
    block.source += line;
    block.source += '\n';
  }
  if (in_block) {
    fprintf(stderr, "%s: unterminated ```colog block\n", path.c_str());
    return 1;
  }
  printf("%s: %d colog block(s), %d failure(s)\n", path.c_str(), blocks,
         failures);
  if (blocks == 0) {
    fprintf(stderr, "%s: no ```colog blocks found — nothing verified\n",
            path.c_str());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s FILE.md [FILE.md ...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= CheckFile(argv[i]);
  return rc;
}

// Tier-1 shrunk subset of the scenario sweep (tools/scenario_sweep runs the
// full set in CI): seeded generator determinism, app invariants across
// solver backends, re-run byte-determinism of objective and trace
// fingerprint, and FTS demand conservation on crash-free plans.
#include "apps/scenariogen.h"

#include <gtest/gtest.h>

#include <vector>

#include "solver_test_util.h"

namespace cologne::apps {
namespace {

// Sanitizer instrumentation slows solves 10-50x; the shrunk set keeps the
// property shapes (all three apps, faulted and fault-free) within the ctest
// watchdog.
constexpr int kScenarioCount = solver::kSanitizerBuild ? 6 : 20;

ScenarioGenConfig SweepConfig() {
  ScenarioGenConfig config;
  config.seed = 1;
  config.count = kScenarioCount;
  return config;
}

TEST(ScenarioGenTest, GenerationIsDeterministic) {
  const std::vector<Scenario> a = GenerateScenarios(SweepConfig());
  const std::vector<Scenario> b = GenerateScenarios(SweepConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToJson(), b[i].ToJson()) << a[i].name;
  }
}

TEST(ScenarioGenTest, SingleScenarioMatchesSweepMember) {
  // The failure-repro path: GenerateScenario(app, seed) must reproduce the
  // sweep's scenario byte for byte, independent of count.
  const ScenarioGenConfig config = SweepConfig();
  for (const Scenario& s : GenerateScenarios(config)) {
    EXPECT_EQ(GenerateScenario(s.app, s.seed, config).ToJson(), s.ToJson());
  }
}

TEST(ScenarioSweepTest, InvariantsAndDeterminismAcrossBackends) {
  for (const Scenario& s : GenerateScenarios(SweepConfig())) {
    const ScenarioRun base = RunScenario(s, "portfolio");
    ASSERT_TRUE(base.ok) << s.name << ": " << base.error;
    EXPECT_EQ(base.violation, "") << s.name;

    const ScenarioRun run = RunScenario(s, "local_search");
    ASSERT_TRUE(run.ok) << s.name << ": " << run.error;
    EXPECT_EQ(run.violation, "") << s.name;

    // Generated scenarios solve wall-clock-free over the reliable
    // transport: a re-run must reproduce objective and trace fingerprint
    // exactly.
    const ScenarioRun again = RunScenario(s, "local_search");
    ASSERT_TRUE(again.ok) << s.name << ": " << again.error;
    EXPECT_EQ(again.objective, run.objective) << s.name;
    EXPECT_EQ(again.trace_hash, run.trace_hash) << s.name;

    // Negotiation moves VMs but never creates or destroys them — exact
    // conservation only binds crash-free plans (a restart replays the
    // initial placement).
    if (s.app == ScenarioApp::kFts && s.fts.fault_plan.crashes.empty()) {
      EXPECT_EQ(run.fts_demand_totals, base.fts_demand_totals) << s.name;
    }
  }
}

}  // namespace
}  // namespace cologne::apps

// Unit tests for IntDomain range-list operations.
#include "solver/domain.h"

#include <gtest/gtest.h>

namespace cologne::solver {
namespace {

TEST(IntDomainTest, ConstructInterval) {
  IntDomain d(3, 7);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.min(), 3);
  EXPECT_EQ(d.max(), 7);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_FALSE(d.IsFixed());
}

TEST(IntDomainTest, EmptyWhenLoGreaterThanHi) {
  IntDomain d(5, 4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(IntDomainTest, SingletonIsFixed) {
  IntDomain d = IntDomain::Singleton(42);
  EXPECT_TRUE(d.IsFixed());
  EXPECT_EQ(d.value(), 42);
  EXPECT_EQ(d.size(), 1u);
}

TEST(IntDomainTest, ContainsChecksRanges) {
  IntDomain d(0, 10);
  d.Remove(5);
  EXPECT_TRUE(d.Contains(4));
  EXPECT_FALSE(d.Contains(5));
  EXPECT_TRUE(d.Contains(6));
  EXPECT_FALSE(d.Contains(11));
  EXPECT_FALSE(d.Contains(-1));
}

TEST(IntDomainTest, ClampMinDropsRangesAndTrims) {
  IntDomain d(0, 10);
  d.Remove(3);  // {0..2, 4..10}
  EXPECT_TRUE(d.ClampMin(4));
  EXPECT_EQ(d.min(), 4);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_FALSE(d.ClampMin(2));  // no change
}

TEST(IntDomainTest, ClampMaxDropsRangesAndTrims) {
  IntDomain d(0, 10);
  d.Remove(7);  // {0..6, 8..10}
  EXPECT_TRUE(d.ClampMax(6));
  EXPECT_EQ(d.max(), 6);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_FALSE(d.ClampMax(9));  // no change
}

TEST(IntDomainTest, ClampToEmpty) {
  IntDomain d(0, 5);
  EXPECT_TRUE(d.ClampMin(6));
  EXPECT_TRUE(d.empty());
}

TEST(IntDomainTest, RemoveSplitsRange) {
  IntDomain d(0, 4);
  EXPECT_TRUE(d.Remove(2));
  EXPECT_EQ(d.ranges().size(), 2u);
  EXPECT_EQ(d.size(), 4u);
  std::vector<int64_t> want{0, 1, 3, 4};
  EXPECT_EQ(d.Values(), want);
}

TEST(IntDomainTest, RemoveEndpoints) {
  IntDomain d(0, 4);
  EXPECT_TRUE(d.Remove(0));
  EXPECT_TRUE(d.Remove(4));
  EXPECT_EQ(d.min(), 1);
  EXPECT_EQ(d.max(), 3);
  EXPECT_EQ(d.ranges().size(), 1u);
}

TEST(IntDomainTest, RemoveAbsentValueNoChange) {
  IntDomain d(0, 4);
  d.Remove(2);
  EXPECT_FALSE(d.Remove(2));
  EXPECT_FALSE(d.Remove(9));
}

TEST(IntDomainTest, RemoveLastValueEmpties) {
  IntDomain d = IntDomain::Singleton(3);
  EXPECT_TRUE(d.Remove(3));
  EXPECT_TRUE(d.empty());
}

TEST(IntDomainTest, AssignContainedValue) {
  IntDomain d(0, 9);
  EXPECT_TRUE(d.Assign(4));
  EXPECT_TRUE(d.IsFixed());
  EXPECT_EQ(d.value(), 4);
  EXPECT_FALSE(d.Assign(4));  // already fixed to 4: no change
}

TEST(IntDomainTest, AssignMissingValueEmpties) {
  IntDomain d(0, 9);
  d.Remove(4);
  EXPECT_TRUE(d.Assign(4));
  EXPECT_TRUE(d.empty());
}

TEST(IntDomainTest, IntersectDisjointRanges) {
  IntDomain a(0, 10);
  a.Remove(5);
  IntDomain b(3, 8);
  EXPECT_TRUE(a.IntersectWith(b));
  std::vector<int64_t> want{3, 4, 6, 7, 8};
  EXPECT_EQ(a.Values(), want);
}

TEST(IntDomainTest, IntersectNoChange) {
  IntDomain a(2, 4);
  IntDomain b(0, 10);
  EXPECT_FALSE(a.IntersectWith(b));
  EXPECT_EQ(a.min(), 2);
}

TEST(IntDomainTest, IntersectToEmpty) {
  IntDomain a(0, 3);
  IntDomain b(5, 9);
  EXPECT_TRUE(a.IntersectWith(b));
  EXPECT_TRUE(a.empty());
}

TEST(IntDomainTest, ClampedToGlobalLimit) {
  IntDomain d(INT64_MIN, INT64_MAX);
  EXPECT_EQ(d.min(), -kDomainLimit);
  EXPECT_EQ(d.max(), kDomainLimit);
}

TEST(IntDomainTest, ToStringFormats) {
  IntDomain d(1, 3);
  d.Remove(2);
  EXPECT_EQ(d.ToString(), "{1, 3}");
  IntDomain e(0, 5);
  EXPECT_EQ(e.ToString(), "{0..5}");
  EXPECT_EQ(IntDomain().ToString(), "{}");
}

// Property sweep: random remove/clamp sequences agree with a reference set.
class DomainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DomainPropertyTest, MatchesReferenceSet) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  // xorshift-ish deterministic op stream.
  auto next = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  IntDomain d(0, 30);
  std::vector<bool> ref(31, true);
  for (int step = 0; step < 60; ++step) {
    int op = static_cast<int>(next() % 3);
    int64_t v = static_cast<int64_t>(next() % 31);
    if (op == 0) {
      d.Remove(v);
      ref[static_cast<size_t>(v)] = false;
    } else if (op == 1) {
      int64_t lo = static_cast<int64_t>(next() % 8);  // keep clamps gentle
      d.ClampMin(lo);
      for (int64_t i = 0; i < lo; ++i) ref[static_cast<size_t>(i)] = false;
    } else {
      int64_t hi = 30 - static_cast<int64_t>(next() % 8);
      d.ClampMax(hi);
      for (int64_t i = hi + 1; i <= 30; ++i) ref[static_cast<size_t>(i)] = false;
    }
  }
  std::vector<int64_t> want;
  for (int64_t i = 0; i <= 30; ++i) {
    if (ref[static_cast<size_t>(i)]) want.push_back(i);
  }
  EXPECT_EQ(d.Values(), want) << "seed=" << GetParam();
  EXPECT_EQ(d.size(), want.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainPropertyTest,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace cologne::solver

// Unit tests for Table: counting semantics, indexes, keyed replacement.
#include "datalog/table.h"

#include <gtest/gtest.h>

namespace cologne::datalog {
namespace {

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

TableSchema Schema(const std::string& name, int arity,
                   std::vector<int> keys = {}) {
  TableSchema s;
  s.name = name;
  for (int i = 0; i < arity; ++i) s.attrs.push_back("A" + std::to_string(i));
  s.key_cols = std::move(keys);
  return s;
}

TEST(TableTest, InsertMakesVisible) {
  Table t(Schema("t", 2));
  EXPECT_EQ(t.Apply(R({1, 2}), +1), +1);
  EXPECT_TRUE(t.Contains(R({1, 2})));
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, DuplicateInsertCountsDerivations) {
  Table t(Schema("t", 2));
  EXPECT_EQ(t.Apply(R({1, 2}), +1), +1);
  EXPECT_EQ(t.Apply(R({1, 2}), +1), 0) << "second derivation: no transition";
  EXPECT_EQ(t.CountOf(R({1, 2})), 2);
  EXPECT_EQ(t.Apply(R({1, 2}), -1), 0);
  EXPECT_TRUE(t.Contains(R({1, 2})));
  EXPECT_EQ(t.Apply(R({1, 2}), -1), -1) << "last derivation removed";
  EXPECT_FALSE(t.Contains(R({1, 2})));
}

TEST(TableTest, DeleteAbsentRowIsNoTransition) {
  Table t(Schema("t", 1));
  EXPECT_EQ(t.Apply(R({5}), -1), 0);
  EXPECT_FALSE(t.Contains(R({5})));
  // Count went negative; a subsequent insert must cancel it.
  EXPECT_EQ(t.Apply(R({5}), +1), 0);
  EXPECT_EQ(t.Apply(R({5}), +1), +1);
}

TEST(TableTest, RowsSortedDeterministically) {
  Table t(Schema("t", 1));
  t.Apply(R({3}), +1);
  t.Apply(R({1}), +1);
  t.Apply(R({2}), +1);
  std::vector<Row> rows = t.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].as_int(), 1);
  EXPECT_EQ(rows[2][0].as_int(), 3);
}

TEST(TableTest, ProbeByColumn) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  t.Apply(R({1, 11}), +1);
  t.Apply(R({2, 12}), +1);
  const auto& rows = t.Probe({0}, R({1}));
  EXPECT_EQ(rows.size(), 2u);
  const auto& none = t.Probe({0}, R({9}));
  EXPECT_TRUE(none.empty());
}

TEST(TableTest, ProbeIndexStaysFreshAfterUpdates) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  (void)t.Probe({0}, R({1}));  // force index build
  t.Apply(R({1, 11}), +1);
  t.Apply(R({1, 10}), -1);
  const auto& rows = t.Probe({0}, R({1}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].as_int(), 11);
}

TEST(TableTest, ProbeMultiColumn) {
  Table t(Schema("t", 3));
  t.Apply(R({1, 2, 3}), +1);
  t.Apply(R({1, 2, 4}), +1);
  t.Apply(R({1, 5, 3}), +1);
  EXPECT_EQ(t.Probe({0, 1}, R({1, 2})).size(), 2u);
  EXPECT_EQ(t.Probe({1, 2}, R({2, 4})).size(), 1u);
}

TEST(TableTest, EmptyColsProbeScansAll) {
  Table t(Schema("t", 1));
  t.Apply(R({1}), +1);
  t.Apply(R({2}), +1);
  EXPECT_EQ(t.Probe({}, {}).size(), 2u);
  t.Apply(R({1}), -1);
  EXPECT_EQ(t.Probe({}, {}).size(), 1u);
}

TEST(TableTest, KeyedDisplacement) {
  Table t(Schema("t", 3, {0, 1}));
  t.Apply(R({1, 2, 30}), +1);
  const Row* disp = t.DisplacedBy(R({1, 2, 40}));
  ASSERT_NE(disp, nullptr);
  EXPECT_EQ((*disp)[2].as_int(), 30);
  EXPECT_EQ(t.DisplacedBy(R({1, 2, 30})), nullptr) << "same row: no displace";
  EXPECT_EQ(t.DisplacedBy(R({9, 9, 1})), nullptr);
}

TEST(TableTest, FindByKey) {
  Table t(Schema("t", 2, {0}));
  t.Apply(R({7, 70}), +1);
  const Row* r = t.FindByKey(R({7}));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ((*r)[1].as_int(), 70);
  EXPECT_EQ(t.FindByKey(R({8})), nullptr);
}

TEST(TableTest, EraseAllRemovesEverything) {
  Table t(Schema("t", 1));
  t.Apply(R({1}), +1);
  t.Apply(R({1}), +1);
  EXPECT_TRUE(t.EraseAll(R({1})));
  EXPECT_FALSE(t.Contains(R({1})));
  EXPECT_EQ(t.CountOf(R({1})), 0);
  EXPECT_FALSE(t.EraseAll(R({1})));
}

// ---------------------------------------------------------------------------
// Lazy-index invalidation: once Probe() has built an index for a column set,
// every later Apply / EraseAll / keyed displacement must keep it consistent,
// and an index built *after* a batch of mutations must reflect exactly the
// visible rows at build time.
// ---------------------------------------------------------------------------

TEST(TableProbeIndexTest, IndexStaysFreshAfterEraseAll) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  t.Apply(R({1, 11}), +1);
  ASSERT_EQ(t.Probe({0}, R({1})).size(), 2u);  // force index build
  EXPECT_TRUE(t.EraseAll(R({1, 10})));
  const auto& rows = t.Probe({0}, R({1}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].as_int(), 11);
  // Scan probe (empty column set) agrees after the same EraseAll.
  EXPECT_EQ(t.Probe({}, {}).size(), 1u);
}

TEST(TableProbeIndexTest, EraseAllOfInvisibleRowLeavesIndexIntact) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  t.Apply(R({1, 99}), -1);  // negative count: row counted but never visible
  ASSERT_EQ(t.Probe({0}, R({1})).size(), 1u);
  EXPECT_FALSE(t.EraseAll(R({1, 99})));  // was not visible
  EXPECT_EQ(t.Probe({0}, R({1})).size(), 1u);
  EXPECT_EQ(t.Probe({0}, R({1}))[0][1].as_int(), 10);
}

TEST(TableProbeIndexTest, IndexBuiltLazilyReflectsPriorMutations) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  t.Apply(R({1, 11}), +1);
  t.Apply(R({2, 20}), +1);
  t.EraseAll(R({1, 10}));
  t.Apply(R({2, 21}), -1);  // negative count: must not appear in the index
  // First probe on this column set builds the index now, over the visible
  // rows only.
  EXPECT_EQ(t.Probe({0}, R({1})).size(), 1u);
  EXPECT_EQ(t.Probe({0}, R({2})).size(), 1u);
  EXPECT_TRUE(t.Probe({0}, R({9})).empty());
}

TEST(TableProbeIndexTest, KeyedDisplacementKeepsIndexesConsistent) {
  // The engine's primary-key replacement protocol: look up the displaced
  // row, erase it, then insert the replacement. Secondary indexes built
  // before the displacement must track both steps.
  Table t(Schema("t", 3, {0, 1}));
  t.Apply(R({1, 2, 30}), +1);
  t.Apply(R({1, 3, 30}), +1);
  ASSERT_EQ(t.Probe({2}, R({30})).size(), 2u);  // index on a non-key column

  const Row* disp = t.DisplacedBy(R({1, 2, 40}));
  ASSERT_NE(disp, nullptr);
  Row displaced = *disp;  // copy: EraseAll invalidates the reference
  EXPECT_TRUE(t.EraseAll(displaced));
  EXPECT_EQ(t.Apply(R({1, 2, 40}), +1), +1);

  EXPECT_EQ(t.Probe({2}, R({30})).size(), 1u);
  EXPECT_EQ(t.Probe({2}, R({30}))[0][1].as_int(), 3);
  ASSERT_EQ(t.Probe({2}, R({40})).size(), 1u);
  EXPECT_EQ(t.Probe({2}, R({40}))[0][1].as_int(), 2);
  const Row* by_key = t.FindByKey(R({1, 2}));
  ASSERT_NE(by_key, nullptr);
  EXPECT_EQ((*by_key)[2].as_int(), 40);
}

TEST(TableProbeIndexTest, ProbeReferenceInvalidatedByNextApply) {
  // The documented contract: the reference returned by Probe() is only valid
  // until the next Apply(). The supported pattern is copy-then-mutate; the
  // copy must survive unchanged while a fresh probe sees the mutation.
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  const std::vector<Row>& live = t.Probe({0}, R({1}));
  ASSERT_EQ(live.size(), 1u);
  std::vector<Row> copied = live;  // consume the reference before Apply()
  t.Apply(R({1, 11}), +1);         // invalidates `live`
  EXPECT_EQ(copied.size(), 1u);
  EXPECT_EQ(copied[0][1].as_int(), 10);
  const std::vector<Row>& fresh = t.Probe({0}, R({1}));
  EXPECT_EQ(fresh.size(), 2u);
}

TEST(TableProbeIndexTest, EmptiedBucketReappearsOnReinsert) {
  Table t(Schema("t", 2));
  t.Apply(R({1, 10}), +1);
  ASSERT_EQ(t.Probe({0}, R({1})).size(), 1u);
  t.Apply(R({1, 10}), -1);  // bucket empties and is erased from the index
  EXPECT_TRUE(t.Probe({0}, R({1})).empty());
  t.Apply(R({1, 12}), +1);  // bucket recreated
  ASSERT_EQ(t.Probe({0}, R({1})).size(), 1u);
  EXPECT_EQ(t.Probe({0}, R({1}))[0][1].as_int(), 12);
}

TEST(TableProbeIndexTest, MultipleIndexesTrackInterleavedMutations) {
  Table t(Schema("t", 3));
  t.Apply(R({1, 2, 3}), +1);
  ASSERT_EQ(t.Probe({0}, R({1})).size(), 1u);      // index A
  ASSERT_EQ(t.Probe({1, 2}, R({2, 3})).size(), 1u);  // index B
  t.Apply(R({1, 5, 3}), +1);
  t.EraseAll(R({1, 2, 3}));
  t.Apply(R({4, 2, 3}), +1);
  EXPECT_EQ(t.Probe({0}, R({1})).size(), 1u);
  EXPECT_EQ(t.Probe({0}, R({4})).size(), 1u);
  EXPECT_EQ(t.Probe({1, 2}, R({2, 3})).size(), 1u);
  EXPECT_EQ(t.Probe({1, 2}, R({2, 3}))[0][0].as_int(), 4);
  EXPECT_EQ(t.Probe({1, 2}, R({5, 3})).size(), 1u);
}

}  // namespace
}  // namespace cologne::datalog

// Tests for the event-typed propagation core: watch-list deduplication (one
// wake per (propagator, change)), event-mask wake filtering, the trailed aux
// store backing advisor aggregates, entailment unsubscription with re-plug on
// backtrack (including the reified fixed-b regression), priority-bucket
// ordering, and the seeded naive-vs-event confluence sweep — both modes must
// reach bit-identical root fixpoints and bit-identical search trees, with the
// event engine doing strictly less propagation work overall.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "solver/model.h"
#include "solver/propagator.h"
#include "solver/search_internal.h"
#include "solver/store.h"
#include "solver_test_util.h"

namespace cologne::solver {
namespace {

// Propagator that prunes nothing and records every execution into a shared
// sequence — the observable for wake-count and scheduling-order assertions.
class RecordingProp : public Propagator {
 public:
  RecordingProp(std::vector<std::pair<IntVar, uint8_t>> watches, int id,
                std::vector<int>* seq)
      : id_(id), seq_(seq) {
    for (const auto& [v, mask] : watches) Watch(v, mask);
  }
  bool Propagate(PropCtx& ctx) override {
    (void)ctx;
    seq_->push_back(id_);
    return true;
  }
  std::string DebugString() const override { return "recording"; }

 private:
  int id_;
  std::vector<int>* seq_;
};

// Store over `n` fresh [lo, hi] variables.
DomainStore MakeStore(int n, int64_t lo, int64_t hi) {
  DomainStore st;
  st.Init(std::vector<IntDomain>(static_cast<size_t>(n), IntDomain(lo, hi)));
  return st;
}

// ---- Satellite (a): watch-list dedup ---------------------------------------

TEST(EventPropagationTest, DuplicateWatchYieldsOneWakePerChange) {
  IntVar v{0};
  std::vector<int> seq;
  std::vector<std::unique_ptr<Propagator>> props;
  // The same variable watched twice: construction must collapse the two
  // subscriptions into one, so a single domain change wakes the propagator
  // exactly once (not once per watch entry).
  props.push_back(std::make_unique<RecordingProp>(
      std::vector<std::pair<IntVar, uint8_t>>{{v, kEventAny}, {v, kEventAny}},
      /*id=*/7, &seq));
  PropagationEngine engine(&props, /*num_vars=*/1, /*naive=*/false);
  DomainStore st = MakeStore(1, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(v.id, 3));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(seq, (std::vector<int>{7})) << "one change must wake once";
}

TEST(EventPropagationTest, DuplicateWatchMergesMasks) {
  IntVar v{0};
  std::vector<int> seq;
  std::vector<std::unique_ptr<Propagator>> props;
  // Duplicate watches with disjoint masks: the merged subscription must keep
  // the union, so an event matching only the *second* mask still wakes.
  props.push_back(std::make_unique<RecordingProp>(
      std::vector<std::pair<IntVar, uint8_t>>{{v, kEventMin}, {v, kEventMax}},
      /*id=*/1, &seq));
  PropagationEngine engine(&props, 1, false);
  DomainStore st = MakeStore(1, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  st.PushLevel();
  EXPECT_TRUE(st.ClampMax(v.id, 8));  // max-tightened: second watch's mask
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(seq, (std::vector<int>{1}));
  EXPECT_EQ(engine.wakes_filtered(), 0u);
}

TEST(EventPropagationTest, MultiVarChangeStillWakesOnce) {
  IntVar x{0}, y{1};
  std::vector<int> seq;
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(std::make_unique<RecordingProp>(
      std::vector<std::pair<IntVar, uint8_t>>{{x, kEventAny}, {y, kEventAny}},
      /*id=*/2, &seq));
  PropagationEngine engine(&props, 2, false);
  DomainStore st = MakeStore(2, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  st.PushLevel();
  // Two watched variables change before the queue drains: the in-queue flag
  // must coalesce them into a single execution.
  EXPECT_TRUE(st.ClampMin(x.id, 2));
  EXPECT_TRUE(st.ClampMin(y.id, 4));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(seq, (std::vector<int>{2}));
}

// ---- Event-mask filtering --------------------------------------------------

TEST(EventPropagationTest, MaskFiltersIrrelevantEvents) {
  IntVar v{0};
  std::vector<int> seq;
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(std::make_unique<RecordingProp>(
      std::vector<std::pair<IntVar, uint8_t>>{{v, kEventMin}}, /*id=*/3, &seq));
  PropagationEngine engine(&props, 1, false);
  DomainStore st = MakeStore(1, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  st.PushLevel();
  EXPECT_TRUE(st.ClampMax(v.id, 9));  // max event: cannot affect a min-subscriber
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_TRUE(seq.empty()) << "max-tightening woke a min-only subscriber";
  EXPECT_EQ(engine.wakes_filtered(), 1u);

  EXPECT_TRUE(st.ClampMin(v.id, 1));  // min event: must wake
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(seq, (std::vector<int>{3}));
  EXPECT_EQ(engine.wakes_filtered(), 1u);
}

// ---- Advisor no-op proof (AtFixpoint wake subsumption) ---------------------

TEST(EventPropagationTest, AdvisorNoOpProofFiltersFruitlessWakes) {
  // x + y - 6 <= 0 over [0,5]^2. A linear propagator can only prune when
  // some term's width |c|*(max-min) exceeds the slack -sum_min; the advisor
  // keeps both live, so wakes that provably cannot prune are dropped without
  // executing the propagator.
  IntVar x{0}, y{1};
  LinExpr e = LinExpr(x) + LinExpr(y) + LinExpr(int64_t{-6});
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(MakeLinear(e, Rel::kLe));
  PropagationEngine engine(&props, 2, false);
  DomainStore st = MakeStore(2, 0, 5);
  engine.AttachStore(st);

  SolveStats stats;
  ASSERT_TRUE(engine.PropagateAll(st, &stats));  // slack 6, widths 5: no prune
  const uint64_t root_runs = engine.run_counts()[0];
  const uint64_t filtered_root = engine.wakes_filtered();

  st.PushLevel();
  // sum_min -5, max width 5: the run could not narrow anything — subsumed.
  EXPECT_TRUE(st.ClampMin(x.id, 1));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(engine.run_counts()[0], root_runs) << "provable no-op executed";
  EXPECT_EQ(engine.wakes_filtered(), filtered_root + 1);

  // sum_min -4 < width 5: now y can be pruned, so the wake must go through.
  EXPECT_TRUE(st.ClampMin(x.id, 2));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(engine.run_counts()[0], root_runs + 1);
  EXPECT_EQ(st.dom(y.id).max(), 4) << "x >= 2 forces y <= 4";
}

// ---- Trailed aux slots (advisor aggregate storage) -------------------------

TEST(AuxTrailTest, BacktrackRestoresAuxSlots) {
  DomainStore st = MakeStore(1, 0, 10);
  int base = st.AddAuxSlots(2);
  st.SetAux(base, 100);  // level 0: permanent
  st.SetAux(base + 1, -7);

  st.PushLevel();
  st.SetAux(base, 42);
  st.SetAux(base, 43);  // second write in the same level: save-once semantics
  st.SetAux(base + 1, 8);
  EXPECT_EQ(static_cast<int64_t>(st.aux(base)), 43);
  EXPECT_EQ(static_cast<int64_t>(st.aux(base + 1)), 8);

  st.PushLevel();
  st.SetAux(base, 1000);
  st.Backtrack();
  EXPECT_EQ(static_cast<int64_t>(st.aux(base)), 43) << "level-2 write leaked";

  st.Backtrack();
  EXPECT_EQ(static_cast<int64_t>(st.aux(base)), 100);
  EXPECT_EQ(static_cast<int64_t>(st.aux(base + 1)), -7);
}

// ---- Entailment unsubscription + re-plug -----------------------------------

TEST(EntailmentTest, EntailedPropagatorSkippedThenReplugged) {
  IntVar x{0}, y{1};
  // x + y - 5 <= 0 over [0,10]^2: the root prunes both to [0,5], kMaybe.
  // A kLe propagator subscribes min events only (max tightenings cannot
  // fail it) — but its advisor still tracks them, so when a min event does
  // wake it the live sum-max can prove entailment.
  LinExpr e = LinExpr(x) + LinExpr(y) + LinExpr(int64_t{-5});
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(MakeLinear(e, Rel::kLe));
  PropagationEngine engine(&props, 2, false);
  DomainStore st = MakeStore(2, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  ASSERT_TRUE(engine.PropagateAll(st, &stats));
  EXPECT_EQ(st.dom(x.id).max(), 5);
  const uint64_t root_runs = engine.run_counts()[0];
  ASSERT_GT(root_runs, 0u);

  st.PushLevel();
  // Max tightenings: advised but filtered (cannot fail a <=). The root
  // propagation already filtered its own self-prune max events, so compare
  // against the count entering this level.
  const uint64_t filtered_before = engine.wakes_filtered();
  EXPECT_TRUE(st.ClampMax(x.id, 2));
  EXPECT_TRUE(st.ClampMax(y.id, 3));
  EXPECT_EQ(engine.wakes_filtered(), filtered_before + 2);
  // A min event wakes it; sum-max is now 2 + 3 - 5 = 0: entailed.
  EXPECT_TRUE(st.ClampMin(x.id, 1));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  const uint64_t entail_runs = engine.run_counts()[0];
  EXPECT_GT(entail_runs, root_runs);

  // Entailed on this subtree: further wakes must be skipped, not executed.
  EXPECT_TRUE(st.ClampMin(y.id, 1));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(engine.run_counts()[0], entail_runs) << "ran while entailed";
  EXPECT_GT(engine.props_skipped_entailed(), 0u);

  // Backtrack unwinds the trailed flag: the subscription is live again.
  st.Backtrack();
  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(x.id, 1));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_GT(engine.run_counts()[0], entail_runs) << "not re-plugged";
}

// ---- Satellite (b): reified entailment once b is fixed ---------------------

TEST(EntailmentTest, ReifiedFixedBReportsEntailment) {
  // b is already fixed true; the inner relation x + y - 5 >= 0 becomes
  // entailed mid-search. Regression: ReifiedLinearProp used to keep
  // re-executing forever in that state. Today two mechanisms cooperate to
  // suppress the chain — the advisor no-op proof (an entailed one-sided
  // relation always has every term width within the slack, so the wake is
  // filtered before the propagator even queues) and the trailed entailment
  // flag for wakes that slip past a stale width bound. Either way, the
  // propagator must not run again.
  IntVar b{0}, x{1}, y{2};
  LinExpr e = LinExpr(x) + LinExpr(y) + LinExpr(int64_t{-5});
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(MakeReifiedLinear(b, e, Rel::kGe));
  PropagationEngine engine(&props, 3, false);
  DomainStore st;
  st.Init({IntDomain(1, 1), IntDomain(0, 10), IntDomain(0, 10)});
  engine.AttachStore(st);

  SolveStats stats;
  ASSERT_TRUE(engine.PropagateAll(st, &stats));

  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(x.id, 6));  // sum-min 6 - 5 = 1: entailed
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  const uint64_t runs = engine.run_counts()[0];
  const uint64_t suppressed_before =
      engine.wakes_filtered() + engine.props_skipped_entailed();

  // Fixed-reified chain of wakes on an entailed constraint: all suppressed.
  EXPECT_TRUE(st.ClampMin(y.id, 2));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_TRUE(st.ClampMax(y.id, 9));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(engine.run_counts()[0], runs)
      << "reified prop kept running after b fixed + inner relation entailed";
  EXPECT_GE(engine.wakes_filtered() + engine.props_skipped_entailed(),
            suppressed_before + 2);
}

TEST(EntailmentTest, ReifiedFixedFalseBUsesNegation) {
  // b fixed false: the propagator enforces the negated relation and must
  // report entailment once *that* is entailed (x + y - 5 < 0 here).
  IntVar b{0}, x{1}, y{2};
  LinExpr e = LinExpr(x) + LinExpr(y) + LinExpr(int64_t{-5});
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(MakeReifiedLinear(b, e, Rel::kGe));
  PropagationEngine engine(&props, 3, false);
  DomainStore st;
  st.Init({IntDomain(0, 0), IntDomain(0, 10), IntDomain(0, 10)});
  engine.AttachStore(st);

  SolveStats stats;
  ASSERT_TRUE(engine.PropagateAll(st, &stats));
  // not-(x + y >= 5) prunes to x + y <= 4.
  EXPECT_LE(st.dom(x.id).max() + st.dom(y.id).min(), 4);

  st.PushLevel();
  EXPECT_TRUE(st.ClampMax(x.id, 2));
  EXPECT_TRUE(st.ClampMax(y.id, 2));  // sum-max 4 < 5: negation entailed
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  const uint64_t runs = engine.run_counts()[0];
  EXPECT_TRUE(st.ClampMax(x.id, 1));
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  EXPECT_EQ(engine.run_counts()[0], runs);
}

// ---- Priority buckets ------------------------------------------------------

TEST(PriorityTest, WideProducerRunsBeforeNarrowConsumer) {
  // Nine variables; the wide propagator watches all of them (top bucket —
  // wide sums are the producers whose output narrow consumers read), the
  // narrow one watches only the shared v0 (bottom bucket). The narrow
  // propagator is constructed AND woken first — the bucket order must still
  // run the wide one first.
  const int kVars = 9;
  std::vector<int> seq;
  std::vector<std::pair<IntVar, uint8_t>> wide;
  for (int i = 0; i < kVars; ++i) wide.push_back({IntVar{i}, kEventAny});
  std::vector<std::unique_ptr<Propagator>> props;
  props.push_back(std::make_unique<RecordingProp>(
      std::vector<std::pair<IntVar, uint8_t>>{{IntVar{0}, kEventAny}},
      /*id=*/200, &seq));
  props.push_back(std::make_unique<RecordingProp>(wide, /*id=*/100, &seq));
  PropagationEngine engine(&props, kVars, false);
  DomainStore st = MakeStore(kVars, 0, 10);
  engine.AttachStore(st);

  SolveStats stats;
  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(0, 5));  // wakes both; narrow subscribes first
  ASSERT_TRUE(engine.PropagateDelta(st, &stats));
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], 100) << "wide producer must drain first";
  EXPECT_EQ(seq[1], 200);
}

// ---- Satellite (c): seeded naive-vs-event confluence sweep -----------------

// Random model: a handful of decision variables under a mix of linear,
// reified, and nonlinear (square/abs/max) constraints with a linear-ish
// objective. Shaped so typical instances have feasible regions and finite
// B&B trees within the node budget.
std::unique_ptr<Model> MakeRandomModel(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint32_t>(hi - lo + 1));
  };
  auto m = std::make_unique<Model>();
  const int nv = pick(3, 6);
  std::vector<IntVar> xs;
  for (int i = 0; i < nv; ++i) {
    int64_t lo = pick(-3, 2);
    IntVar x = m->NewInt(lo, lo + pick(3, 8));
    m->MarkDecision(x);
    xs.push_back(x);
  }
  const Rel rels[] = {Rel::kLe, Rel::kGe, Rel::kEq, Rel::kNe, Rel::kLt};
  const int ncons = pick(2, 5);
  for (int c = 0; c < ncons; ++c) {
    LinExpr e;
    for (const IntVar& x : xs) {
      int64_t coef = pick(-3, 3);
      if (coef != 0) e += LinExpr::Term(coef, x);
    }
    if (e.terms.empty()) e += LinExpr(xs[0]);
    Rel rel = rels[pick(0, 4)];
    // Anchor the rhs near a satisfiable point so most instances are SAT.
    int64_t rhs = pick(-4, 4);
    if (pick(0, 2) == 0) {
      // Reified form: the truth value feeds the objective below.
      IntVar b = m->ReifyRel(e, rel, LinExpr(rhs));
      m->MarkDecision(b);
    } else {
      m->PostRel(e, rel, LinExpr(rhs));
    }
  }
  LinExpr obj;
  for (const IntVar& x : xs) obj += LinExpr::Term(pick(-2, 2), x);
  switch (pick(0, 3)) {
    case 0:
      obj += LinExpr(m->MakeSquare(LinExpr(xs[0]) - LinExpr(xs.back())));
      break;
    case 1:
      obj += LinExpr(m->MakeAbs(LinExpr(xs[0]) + LinExpr(xs.back())));
      break;
    case 2:
      obj += LinExpr(m->MakeMaxConst(LinExpr(xs[0]), 1));
      break;
    default:
      break;
  }
  if (pick(0, 1) == 0) {
    m->Minimize(obj);
  } else {
    m->Maximize(obj);
  }
  return m;
}

TEST(ConfluencePropertyTest, EventAndNaiveModesAgreeOnSeededModels) {
  // Property: for every model, the event-typed engine and the naive
  // reference reach (1) bit-identical root fixpoint domains and (2)
  // bit-identical search trees — same nodes, failures, solutions, status,
  // objective, and values. Only the effort counters may differ, and across
  // the sweep the event engine must do strictly less work.
  const int kModels = kSanitizerBuild ? 12 : 50;
  uint64_t total_naive_props = 0;
  uint64_t total_event_props = 0;
  for (int i = 0; i < kModels; ++i) {
    const uint32_t seed = 0xC01u + static_cast<uint32_t>(i) * 7919u;
    auto model = MakeRandomModel(seed);

    Model::Options naive_opts;
    naive_opts.time_limit_ms = 0;
    naive_opts.node_limit = 20'000;
    naive_opts.naive_propagation = true;
    Model::Options event_opts = naive_opts;
    event_opts.naive_propagation = false;

    // Root fixpoint domains, variable by variable.
    {
      internal::SearchContext nctx(*model, naive_opts);
      internal::SearchContext ectx(*model, event_opts);
      const bool nok = nctx.PropagateRoot();
      const bool eok = ectx.PropagateRoot();
      ASSERT_EQ(nok, eok) << "root feasibility diverged, seed " << seed;
      if (nok) {
        for (size_t v = 0; v < model->num_vars(); ++v) {
          ASSERT_EQ(nctx.store().dom(static_cast<int32_t>(v)),
                    ectx.store().dom(static_cast<int32_t>(v)))
              << "root fixpoint diverged at var " << v << ", seed " << seed
              << ": naive=" << nctx.store().dom(static_cast<int32_t>(v)).ToString()
              << " event=" << ectx.store().dom(static_cast<int32_t>(v)).ToString();
        }
      }
    }

    Solution a = model->Solve(naive_opts);
    Solution b = model->Solve(event_opts);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    EXPECT_EQ(a.stats.nodes, b.stats.nodes) << "seed " << seed;
    EXPECT_EQ(a.stats.failures, b.stats.failures) << "seed " << seed;
    EXPECT_EQ(a.stats.solutions, b.stats.solutions) << "seed " << seed;
    if (a.has_solution()) {
      EXPECT_EQ(a.objective, b.objective) << "seed " << seed;
      EXPECT_EQ(a.values, b.values) << "seed " << seed;
    }
    EXPECT_EQ(a.stats.wakes_filtered, 0u) << "naive mode filtered a wake";
    EXPECT_EQ(a.stats.props_skipped_entailed, 0u);
    total_naive_props += a.stats.propagations;
    total_event_props += b.stats.propagations;
  }
  EXPECT_LT(total_event_props, total_naive_props)
      << "event-typed engine should do strictly less propagation work";
}

// The two modes must also agree on a real structured model (the ACloud
// benchmark shape shared with the search-backend suites).
TEST(ConfluencePropertyTest, EventAndNaiveModesAgreeOnACloud) {
  auto model = MakeACloudModel(6, 3);
  Model::Options naive_opts;
  naive_opts.time_limit_ms = 0;
  naive_opts.node_limit = 50'000;
  naive_opts.naive_propagation = true;
  Model::Options event_opts = naive_opts;
  event_opts.naive_propagation = false;

  Solution a = model->Solve(naive_opts);
  Solution b = model->Solve(event_opts);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.failures, b.stats.failures);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
  // No propagation-count assertion here: ACloud is mask-poor (kEq sums and
  // times channeling subscribe min|max, so nothing filters) and the
  // priority reorder can cost a few extra runs on the way to the same
  // fixpoint. The effort win is asserted on the sweep above and ratio-gated
  // on the propagation-heavy bench cases in CI.
}

}  // namespace
}  // namespace cologne::solver

// Observability layer unit tests (ISSUE 6): RunningStats edge cases, the
// canonical JSON writer's escaping, histogram bucket boundaries, registry
// snapshot canonicalization, and the end-to-end determinism contract — two
// identical OBS_METRICS runs produce byte-identical traces, `metrics`
// lines included.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/wireless.h"
#include "common/json.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "runtime/trace_replay.h"

namespace cologne {
namespace {

// ---- RunningStats ----------------------------------------------------------

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(-7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), -7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -7.5);
  EXPECT_DOUBLE_EQ(s.max(), -7.5);
  EXPECT_DOUBLE_EQ(s.sum(), -7.5);
}

TEST(RunningStatsTest, MergeMatchesSequentialAdd) {
  const std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  RunningStats all;
  for (double x : xs) all.Add(x);

  for (size_t split = 0; split <= xs.size(); ++split) {
    RunningStats a, b;
    for (size_t i = 0; i < split; ++i) a.Add(xs[i]);
    for (size_t i = split; i < xs.size(); ++i) b.Add(xs[i]);
    a.Merge(b);  // split=0 and split=n exercise the empty-side fast paths
    EXPECT_EQ(a.count(), all.count()) << "split " << split;
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9) << "split " << split;
    EXPECT_DOUBLE_EQ(a.min(), all.min()) << "split " << split;
    EXPECT_DOUBLE_EQ(a.max(), all.max()) << "split " << split;
    EXPECT_NEAR(a.sum(), all.sum(), 1e-12) << "split " << split;
  }
}

TEST(RunningStatsTest, MergeTwoEmptiesStaysEmpty) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
}

// ---- JsonWriter escaping ---------------------------------------------------

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControls) {
  JsonWriter w;
  w.BeginObject();
  // Note the literal split: "\x01" "f" keeps the hex escape to one byte
  // (otherwise \x01f parses as 0x1f).
  w.Key("s").String("a\"b\\c\nd\te\x01" "f");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriterTest, CanonicalContainersAndNumbers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("i").Int(-3);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("d").Double(0.1);
  w.Key("b").Bool(true);
  w.Key("a").BeginArray();
  w.Int(1).Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"i\":-3,\"u\":18446744073709551615,\"d\":0.1,\"b\":true,"
            "\"a\":[1,2]}");
}

// ---- Histogram buckets -----------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  obs::MetricsRegistry reg;
  reg.DeclareHistogram("h", {0, 10, 100});
  // One sample per interesting position: below the first bound, exactly on
  // each bound, just past each bound, and past the last bound (overflow).
  for (int64_t sample : {-5, 0, 1, 10, 11, 100, 101, 100000}) {
    reg.Observe("h", sample);
  }
  const obs::Histogram* h = reg.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->counts[0], 2u);      // -5, 0
  EXPECT_EQ(h->counts[1], 2u);      // 1, 10
  EXPECT_EQ(h->counts[2], 2u);      // 11, 100
  EXPECT_EQ(h->counts[3], 2u);      // 101, 100000
  EXPECT_EQ(h->count, 8u);
  EXPECT_EQ(h->sum, -5 + 0 + 1 + 10 + 11 + 100 + 101 + 100000);
}

TEST(HistogramTest, UndeclaredObserveIsIgnored) {
  obs::MetricsRegistry reg;
  reg.Observe("nope", 7);
  EXPECT_EQ(reg.SnapshotJson(), "{}");
}

// ---- Registry snapshots ----------------------------------------------------

TEST(MetricsRegistryTest, SnapshotIsSortedAndSectionsOmittedWhenEmpty) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.SnapshotJson(), "{}");
  reg.Add("zeta", 2);
  reg.Add("alpha");
  reg.Add("zeta");
  EXPECT_EQ(reg.SnapshotJson(), "{\"counters\":{\"alpha\":1,\"zeta\":3}}");
  reg.SetGauge("depth", -4);
  EXPECT_EQ(reg.SnapshotJson(),
            "{\"counters\":{\"alpha\":1,\"zeta\":3},"
            "\"gauges\":{\"depth\":-4}}");
  reg.Set("zeta", 10);  // absolute overwrite
  EXPECT_EQ(reg.counter("zeta"), 10u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(MetricsRegistryTest, HistogramSnapshotShape) {
  obs::MetricsRegistry reg;
  reg.DeclareHistogram("lat", {1, 2});
  reg.Observe("lat", 1);
  reg.Observe("lat", 5);
  EXPECT_EQ(reg.SnapshotJson(),
            "{\"hist\":{\"lat\":{\"le\":[1,2],\"n\":[1,0,1],\"count\":2,"
            "\"sum\":6}}}");
}

// ---- End-to-end determinism ------------------------------------------------

// Two identical distributed runs with OBS_METRICS on must produce
// byte-identical traces — metrics snapshots and solve provenance included.
// This is the same contract the golden test pins, but across two in-process
// runs rather than against a checked-in file.
TEST(ObsDeterminismTest, TwoRunsByteIdenticalWithMetricsOn) {
  auto run = [](runtime::TraceRecorder* trace) {
    apps::WirelessConfig cfg;
    cfg.grid_w = 2;
    cfg.grid_h = 2;
    cfg.num_flows = 2;
    cfg.seed = 43;
    cfg.solver_backend = "lns";
    cfg.solver_max_iterations = 8;
    cfg.link_solve_ms = 0;
    cfg.obs_metrics = true;
    cfg.trace = trace;
    apps::WirelessScenario scenario(cfg);
    auto r = scenario.AssignChannels(apps::WirelessProtocol::kDistributed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  };
  runtime::TraceRecorder a, b;
  run(&a);
  run(&b);
  ASSERT_FALSE(a.lines().empty());
  EXPECT_EQ(runtime::DiffTraces(a.lines(), b.lines()), "");
  size_t metrics_lines = 0;
  for (const std::string& line : a.lines()) {
    if (line.find("\"ev\":\"metrics\"") != std::string::npos) ++metrics_lines;
  }
  EXPECT_GT(metrics_lines, 0u) << "metrics snapshots missing from the trace";
}

}  // namespace
}  // namespace cologne

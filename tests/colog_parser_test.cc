// Lexer + parser tests, including the paper's ACloud program verbatim
// (Section 4.2) and the distributed syntax of Section 4.3.
#include <gtest/gtest.h>

#include "colog/lexer.h"
#include "colog/parser.h"

namespace cologne::colog {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Lex("goal minimize C in hostStdevCpu(C).");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  ASSERT_GE(toks.size(), 9u);
  EXPECT_TRUE(toks[0].IsKeyword("goal"));
  EXPECT_TRUE(toks[1].IsKeyword("minimize"));
  EXPECT_EQ(toks[2].kind, TokKind::kVariable);
  EXPECT_EQ(toks[2].text, "C");
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(LexerTest, ArrowsAndComparisons) {
  auto r = Lex("a <- b -> c <= d < e");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_EQ(t[1].kind, TokKind::kLeftArrow);
  EXPECT_EQ(t[3].kind, TokKind::kRightArrow);
  EXPECT_EQ(t[5].kind, TokKind::kLe);
  EXPECT_EQ(t[7].kind, TokKind::kLt);
}

TEST(LexerTest, NumbersAndStatementDots) {
  auto r = Lex("f(1.5, 2). ");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_EQ(t[2].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(t[2].literal.as_double(), 1.5);
  EXPECT_EQ(t[4].kind, TokKind::kInt);
  EXPECT_EQ(t[6].kind, TokKind::kDot) << "trailing dot is a statement end";
}

TEST(LexerTest, CommentsSkipped) {
  auto r = Lex("a // comment <- ignored\n# another\nb");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);  // a, b, EOF
  EXPECT_EQ(r.value()[1].text, "b");
}

TEST(LexerTest, AbsoluteValueBars) {
  auto r = Lex("(C==1)==(|C1-C2|<F)");
  ASSERT_TRUE(r.ok());
  int bars = 0;
  for (const auto& t : r.value()) bars += t.is(TokKind::kBar);
  EXPECT_EQ(bars, 2);
}

TEST(LexerTest, AssignToken) {
  auto r = Lex("R2 := -R1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[1].kind, TokKind::kAssign);
}

TEST(LexerTest, ErrorsOnStray) {
  EXPECT_FALSE(Lex("a : b").ok());
  EXPECT_FALSE(Lex("a & b").ok());
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a ~ b").ok());
}

// The paper's centralized ACloud program (Section 4.2), verbatim apart from
// the documented extensions (param/domain declarations).
const char* kACloudColog = R"(
param max_migrates = 9.

goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem),
     host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V),
     vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem),
     hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V),
     vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.

d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V),
     origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
)";

TEST(ParserTest, ParsesACloudProgram) {
  auto r = Parse(kACloudColog);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Program& p = r.value();
  EXPECT_EQ(p.goals.size(), 1u);
  EXPECT_EQ(p.goals[0].type, GoalType::kMinimize);
  EXPECT_EQ(p.goals[0].attr_var, "C");
  EXPECT_EQ(p.goals[0].atom.pred, "hostStdevCpu");
  EXPECT_EQ(p.var_decls.size(), 1u);
  EXPECT_EQ(p.var_decls[0].var_atom.pred, "assign");
  EXPECT_EQ(p.var_decls[0].forall_atom.pred, "toAssign");
  ASSERT_EQ(p.params.size(), 1u);
  EXPECT_EQ(p.params[0].name, "max_migrates");
  EXPECT_EQ(p.params[0].value->as_int(), 9);
  EXPECT_EQ(p.rules.size(), 10u);
  // Table 2 counts goal+var+rules.
  EXPECT_EQ(p.RuleCount(), 12u);
}

TEST(ParserTest, RuleLabelsAndArrows) {
  auto r = Parse(kACloudColog);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  EXPECT_EQ(p.rules[0].label, "r1");
  EXPECT_FALSE(p.rules[0].is_constraint);
  // Order: r1 d1 d2 d3 c1 d4 c2 d5 d6 c3 — c1 is index 4.
  EXPECT_EQ(p.rules[4].label, "c1");
  EXPECT_TRUE(p.rules[4].is_constraint);
}

TEST(ParserTest, AggregateArguments) {
  auto r = Parse(kACloudColog);
  ASSERT_TRUE(r.ok());
  const SrcRule& d1 = r.value().rules[1];
  ASSERT_EQ(d1.head.args.size(), 2u);
  EXPECT_TRUE(d1.head.args[1].is_aggregate());
  EXPECT_EQ(d1.head.args[1].agg, datalog::AggKind::kSum);
  EXPECT_EQ(d1.head.args[1].agg_var, "C");
  const SrcRule& d2 = r.value().rules[2];
  EXPECT_EQ(d2.head.args[0].agg, datalog::AggKind::kStdev);
}

TEST(ParserTest, ReifiedEqualityExpression) {
  auto r = Parse(kACloudColog);
  ASSERT_TRUE(r.ok());
  const SrcRule& d5 = r.value().rules[7];
  ASSERT_EQ(d5.label, "d5");
  // Body: assign, origin, Hid1!=Hid2, (V==1)==(C==1).
  ASSERT_EQ(d5.body.size(), 4u);
  const SrcBodyElem& reif = d5.body[3];
  EXPECT_EQ(reif.kind, SrcBodyElem::Kind::kCond);
  EXPECT_EQ(reif.expr.op, datalog::ExprOp::kEq);
  EXPECT_EQ(reif.expr.kids[0].op, datalog::ExprOp::kEq);
  EXPECT_EQ(reif.expr.kids[1].op, datalog::ExprOp::kEq);
}

TEST(ParserTest, LocationSpecifiers) {
  auto r = Parse(
      "d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),\n"
      "   migVm(@X,Y,D,R2), R==R1+R2.\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SrcRule& d2 = r.value().rules[0];
  EXPECT_TRUE(d2.head.args[0].loc);
  EXPECT_EQ(d2.head.LocArg(), 0);
  EXPECT_TRUE(d2.body[0].atom.args[0].loc);
  EXPECT_EQ(d2.body[0].atom.args[0].expr.name, "Y");
}

TEST(ParserTest, AssignmentsAndAbs) {
  auto r = Parse(
      "r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.\n"
      "d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2), Y!=Z,\n"
      "   (C==1)==(|C1-C2|<2).\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SrcRule& r2 = r.value().rules[0];
  EXPECT_EQ(r2.body[2].kind, SrcBodyElem::Kind::kAssign);
  EXPECT_EQ(r2.body[2].assign_var, "R2");
  const SrcRule& d1 = r.value().rules[1];
  const SrcExpr& reif = d1.body[3].expr;
  EXPECT_EQ(reif.kids[1].op, datalog::ExprOp::kLt);
  EXPECT_EQ(reif.kids[1].kids[0].op, datalog::ExprOp::kAbs);
}

TEST(ParserTest, TableDeclWithKeys) {
  auto r = Parse("table curVm(X,D,R) keys(X,D).\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TableDecl& t = r.value().table_decls[0];
  EXPECT_EQ(t.name, "curVm");
  ASSERT_EQ(t.attrs.size(), 3u);
  ASSERT_EQ(t.keys.size(), 2u);
  EXPECT_EQ(t.keys[1], "D");
}

TEST(ParserTest, GoalSatisfyBare) {
  auto r = Parse("goal satisfy.\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().goals[0].type, GoalType::kSatisfy);
  EXPECT_TRUE(r.value().goals[0].attr_var.empty());
}

TEST(ParserTest, NegativeParamValue) {
  auto r = Parse("param low = -5.\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().params[0].value->as_int(), -5);
}

TEST(ParserTest, ErrorsHaveLineNumbers) {
  auto r = Parse("\n\nfoo(X <- bar(X).\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, RejectsMissingDot) {
  EXPECT_FALSE(Parse("a(X) <- b(X)").ok());
  EXPECT_FALSE(Parse("goal minimize C hostStdevCpu(C).").ok());
  EXPECT_FALSE(Parse("var assign(V) toAssign(V).").ok());
}

// --- Reserved solver knobs (SOLVER_BACKEND / SOLVER_SEED / ...) -----------

TEST(ParserTest, SolverKnobsParseAsParams) {
  auto r = Parse(
      "param SOLVER_BACKEND = \"lns\".\n"
      "param SOLVER_MAX_TIME = 500.\n"
      "param SOLVER_SEED = 7.\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().params.size(), 3u);
  EXPECT_EQ(r.value().params[0].name, "SOLVER_BACKEND");
  EXPECT_EQ(r.value().params[0].value->as_string(), "lns");
}

TEST(ParserTest, SolverKnobRequiresValue) {
  auto r = Parse("param SOLVER_BACKEND.\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("requires a literal value"),
            std::string::npos)
      << r.status().ToString();
  // Plain open parameters (bound later via extra_params) still parse.
  EXPECT_TRUE(Parse("param max_migrates.\n").ok());
}

}  // namespace
}  // namespace cologne::colog

// Tests for the local_search backend: seed determinism (including the ls_*
// move counters), the shift/swap walk on the paper's model shapes, and a
// property-based cross-backend sweep — on seeded random models an exhaustive
// B&B solve supplies ground truth that the incomplete backends (LNS,
// local_search) must agree with on feasibility and never beat on objective.
#include "solver/local_search.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "solver/model.h"
#include "solver_test_util.h"

namespace cologne::solver {
namespace {

int64_t Eval(const LinExpr& e, const std::vector<int64_t>& values) {
  int64_t v = e.constant;
  for (const auto& [coef, var] : e.terms) {
    v += coef * values[static_cast<size_t>(var.id)];
  }
  return v;
}

// A small random COP: a handful of int decisions, a few random linear
// constraints, and a random linear objective in a random sense. Domains stay
// tiny so the exhaustive B&B reference solve finishes instantly; some seeds
// yield infeasible models on purpose (feasibility agreement is part of the
// property).
struct RandomCop {
  std::unique_ptr<Model> model;
  LinExpr objective;
  bool maximize = false;
};

RandomCop MakeRandomCop(uint64_t seed) {
  RandomCop cop;
  cop.model = std::make_unique<Model>();
  Model& m = *cop.model;
  Rng rng(SplitMix64(seed ^ 0xc0ffee11ull));

  const int n = static_cast<int>(rng.UniformInt(2, 5));
  std::vector<IntVar> vars;
  for (int i = 0; i < n; ++i) {
    IntVar v = m.NewInt(0, rng.UniformInt(2, 6));
    m.MarkDecision(v);
    vars.push_back(v);
  }

  const int constraints = static_cast<int>(rng.UniformInt(1, 3));
  for (int c = 0; c < constraints; ++c) {
    LinExpr lhs;
    for (const IntVar& v : vars) {
      int64_t coef = rng.UniformInt(0, 2) - 1;  // -1, 0, or 1
      if (coef != 0) lhs += LinExpr::Term(coef, v);
    }
    if (lhs.terms.empty()) lhs += LinExpr(vars[0]);
    const Rel rel = rng.Bernoulli(0.5) ? Rel::kLe : Rel::kGe;
    m.PostRel(lhs, rel, LinExpr(rng.UniformInt(0, 6) - 2));
  }

  for (const IntVar& v : vars) {
    cop.objective += LinExpr::Term(rng.UniformInt(1, 3), v);
  }
  cop.maximize = rng.Bernoulli(0.5);
  if (cop.maximize) {
    m.Maximize(cop.objective);
  } else {
    m.Minimize(cop.objective);
  }
  return cop;
}

Solution SolveWith(Model& m, Backend backend, uint64_t seed,
                   uint64_t iterations = 25) {
  Model::Options o;
  o.backend = backend;
  // Iteration-capped, no wall clock: deterministic on any machine.
  o.time_limit_ms = 0;
  o.max_iterations = iterations;
  o.seed = seed;
  return m.Solve(o);
}

TEST(LocalSearchTest, NameAndParseRoundTrip) {
  EXPECT_STREQ(BackendName(Backend::kLocalSearch), "local_search");
  Backend b = Backend::kBranchAndBound;
  ASSERT_TRUE(ParseBackend("local_search", &b));
  EXPECT_EQ(b, Backend::kLocalSearch);
  EXPECT_FALSE(ParseBackend("localsearch", &b));
}

TEST(LocalSearchTest, FeasibleOnACloudShape) {
  auto m = MakeACloudModel(12, 4);
  Solution s = SolveWith(*m, Backend::kLocalSearch, 7, 40);
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.backend, Backend::kLocalSearch);
  // Every VM placed on exactly one host.
  for (int i = 0; i < 12; ++i) {
    int64_t placed = 0;
    for (int h = 0; h < 4; ++h) {
      placed += s.values[static_cast<size_t>(i * 4 + h)];
    }
    EXPECT_EQ(placed, 1) << "vm " << i;
  }
}

TEST(LocalSearchTest, DeterministicUnderFixedSeedIncludingMoveCounters) {
  auto run = [](uint64_t seed) {
    auto m = MakeACloudModel(10, 4);
    return SolveWith(*m, Backend::kLocalSearch, seed, 50);
  };
  Solution a = run(42);
  Solution b = run(42);
  ASSERT_TRUE(a.has_solution());
  ASSERT_TRUE(b.has_solution());
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.ls_moves, b.stats.ls_moves);
  EXPECT_EQ(a.stats.ls_accepted, b.stats.ls_accepted);
  EXPECT_EQ(a.stats.ls_tabu_hits, b.stats.ls_tabu_hits);
}

TEST(LocalSearchTest, MoveCountersAccountedOnlyByLocalSearch) {
  // 48 boolean decisions: the bounded sharpening dive cannot exhaust this
  // space, so the move walk actually runs.
  {
    auto m = MakeACloudModel(12, 4);
    Solution s = SolveWith(*m, Backend::kLocalSearch, 3, 40);
    ASSERT_TRUE(s.has_solution());
    EXPECT_GT(s.stats.ls_moves, 0u);
    EXPECT_LE(s.stats.ls_accepted, s.stats.ls_moves);
  }
  // Small model for the negative half: B&B solves it to exhaustion, which
  // must not take sanitizer-build minutes just to observe three zeros.
  for (Backend other : {Backend::kBranchAndBound, Backend::kLns}) {
    auto m = MakeACloudModel(6, 3);
    Solution s = SolveWith(*m, other, 3, 40);
    EXPECT_EQ(s.stats.ls_moves, 0u) << BackendName(other);
    EXPECT_EQ(s.stats.ls_accepted, 0u) << BackendName(other);
    EXPECT_EQ(s.stats.ls_tabu_hits, 0u) << BackendName(other);
  }
}

TEST(LocalSearchTest, GroupedModelSolves) {
  // Group-aware models (the Colog bridge marks per-negotiation groups) must
  // pass through the walk unharmed.
  auto m = MakeACloudModel(8, 4);
  std::vector<IntVar> group;
  for (int32_t id = 0; id < 8; ++id) group.push_back(IntVar{id});
  m->MarkGroup(group);
  Solution s = SolveWith(*m, Backend::kLocalSearch, 11, 30);
  ASSERT_TRUE(s.has_solution());
}

// The cross-backend property: for every seeded random model, exhaustive B&B
// is ground truth. The incomplete backends must agree on feasibility, their
// reported objective must re-evaluate from their assignment, and — sign
// aware in both senses — they must never beat the proved optimum.
TEST(LocalSearchTest, PropertyHeuristicsNeverBeatProvedOptimum) {
  const uint64_t kModels = kSanitizerBuild ? 12 : 30;
  int optimal = 0;
  int infeasible = 0;
  for (uint64_t seed = 1; seed <= kModels; ++seed) {
    RandomCop ref = MakeRandomCop(seed);
    Solution truth = SolveWith(*ref.model, Backend::kBranchAndBound, seed);
    // No wall clock and no iteration pressure on the tree phase: the tiny
    // model is solved to exhaustion, one way or the other.
    ASSERT_TRUE(truth.status == SolveStatus::kOptimal ||
                truth.status == SolveStatus::kInfeasible)
        << "seed " << seed << ": " << SolveStatusName(truth.status);

    for (Backend heuristic : {Backend::kLns, Backend::kLocalSearch}) {
      RandomCop cop = MakeRandomCop(seed);
      Solution s = SolveWith(*cop.model, heuristic, seed);
      if (truth.status == SolveStatus::kInfeasible) {
        ++infeasible;
        EXPECT_FALSE(s.has_solution())
            << "seed " << seed << ": " << BackendName(heuristic)
            << " claims a solution for a proved-infeasible model";
        continue;
      }
      ++optimal;
      // Feasible models have an unbounded first dive: a solution is
      // guaranteed, not merely likely.
      ASSERT_TRUE(s.has_solution())
          << "seed " << seed << ": " << BackendName(heuristic);
      EXPECT_EQ(s.objective, Eval(cop.objective, s.values))
          << "seed " << seed << ": " << BackendName(heuristic)
          << " objective does not re-evaluate from its assignment";
      if (cop.maximize) {
        EXPECT_LE(s.objective, truth.objective)
            << "seed " << seed << ": " << BackendName(heuristic)
            << " beats the proved maximum";
      } else {
        EXPECT_GE(s.objective, truth.objective)
            << "seed " << seed << ": " << BackendName(heuristic)
            << " beats the proved minimum";
      }
    }
  }
  // The generator must actually exercise both arms of the property.
  EXPECT_GT(optimal, 0);
  EXPECT_GT(infeasible, 0);
}

}  // namespace
}  // namespace cologne::solver

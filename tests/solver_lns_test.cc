// Tests for the pluggable search backends: LNS determinism under a fixed
// seed, warm-start reuse across Solve calls, LNS-vs-B&B quality at equal
// time budgets on the paper's two model shapes (ACloud assignment, wireless
// channel selection), restart accounting, and the kSatisfy fallback.
#include "solver/lns.h"

#include <gtest/gtest.h>

#include <memory>

#include "solver/model.h"
#include "solver/search_backend.h"
#include "solver_test_util.h"

namespace cologne::solver {
namespace {

// Wireless-shaped model: per-link channel decisions in [1, channels],
// minimize the number of adjacent links on interfering (distance < 2)
// channels.
std::unique_ptr<Model> MakeWirelessModel(int links, int channels) {
  auto m = std::make_unique<Model>();
  std::vector<IntVar> ch;
  for (int i = 0; i < links; ++i) {
    IntVar c = m->NewInt(1, channels);
    m->MarkDecision(c);
    ch.push_back(c);
  }
  LinExpr cost;
  for (int i = 0; i + 1 < links; ++i) {
    IntVar diff = m->MakeAbs(LinExpr(ch[static_cast<size_t>(i)]) -
                             LinExpr(ch[static_cast<size_t>(i + 1)]));
    cost += LinExpr(m->ReifyRel(LinExpr(diff), Rel::kLt, LinExpr(2)));
  }
  m->Minimize(cost);
  return m;
}

TEST(LnsTest, FeasibleOnACloudShape) {
  auto m = MakeACloudModel(12, 4);
  Model::Options o;
  o.backend = Backend::kLns;
  // Iteration-capped, no wall clock: the improvement loop always runs even
  // on a slow sanitizer build or a loaded CI runner.
  o.time_limit_ms = 0;
  o.max_iterations = 40;
  Solution s = m->Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.backend, Backend::kLns);
  EXPECT_GT(s.stats.iterations, 0u);
  // Every VM placed on exactly one host.
  for (int i = 0; i < 12; ++i) {
    int64_t placed = 0;
    for (int h = 0; h < 4; ++h) {
      placed += s.values[static_cast<size_t>(i * 4 + h)];
    }
    EXPECT_EQ(placed, 1) << "vm " << i;
  }
}

TEST(LnsTest, DeterministicUnderFixedSeed) {
  // No wall-clock limit + an iteration cap makes the run machine
  // independent: identical seeds must reproduce identical solutions.
  auto run = [](uint64_t seed) {
    auto m = MakeACloudModel(10, 4);
    Model::Options o;
    o.backend = Backend::kLns;
    o.time_limit_ms = 0;
    o.max_iterations = 50;
    o.seed = seed;
    return m->Solve(o);
  };
  Solution a = run(42);
  Solution b = run(42);
  ASSERT_TRUE(a.has_solution());
  ASSERT_TRUE(b.has_solution());
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

TEST(LnsTest, ObjectiveBeatsBnbAtEqualNodeBudget) {
  // Deterministic form of the equal-budget comparison: the same node budget
  // for both backends with no wall clock involved, so the assertion cannot
  // jitter. A model too big to search exhaustively in the budget — the
  // regime the ISSUE targets, where anytime local search dominates.
  auto bnb_model = MakeACloudModel(28, 4);
  Model::Options bo;
  bo.time_limit_ms = 0;
  bo.node_limit = 6000;
  Solution bnb = bnb_model->Solve(bo);

  auto lns_model = MakeACloudModel(28, 4);
  Model::Options lo = bo;
  lo.backend = Backend::kLns;
  Solution lns = lns_model->Solve(lo);

  ASSERT_TRUE(bnb.has_solution());
  ASSERT_TRUE(lns.has_solution());
  EXPECT_LE(lns.objective, bnb.objective)
      << "LNS incumbent must be at least as good as B&B's at an equal budget";
}

TEST(LnsTest, ObjectiveNoWorseThanBnbAtEqual100MsBudget) {
  // Wall-clock form at the ISSUE's 100 ms: both backends converge to
  // near-identical quality here, so allow a 1% slack for scheduler jitter
  // around ties (the deterministic node-budget test above is strict).
  if (kSanitizerBuild) {
    GTEST_SKIP() << "wall-clock comparison skipped under sanitizers";
  }
  const double budget_ms = 100;
  auto bnb_model = MakeACloudModel(28, 4);
  Model::Options bo;
  bo.time_limit_ms = budget_ms;
  Solution bnb = bnb_model->Solve(bo);

  auto lns_model = MakeACloudModel(28, 4);
  Model::Options lo;
  lo.backend = Backend::kLns;
  lo.time_limit_ms = budget_ms;
  Solution lns = lns_model->Solve(lo);

  ASSERT_TRUE(bnb.has_solution());
  ASSERT_TRUE(lns.has_solution());
  EXPECT_LE(lns.objective, bnb.objective + bnb.objective / 100);
}

TEST(LnsTest, ObjectiveNoWorseThanBnbOnWirelessShape) {
  // Equal node budgets (the deterministic equal-budget form, as above) so
  // the strict comparison cannot jitter on a loaded CI runner.
  auto bnb_model = MakeWirelessModel(32, 8);
  Model::Options bo;
  bo.time_limit_ms = 0;
  bo.node_limit = 6000;
  Solution bnb = bnb_model->Solve(bo);

  auto lns_model = MakeWirelessModel(32, 8);
  Model::Options lo = bo;
  lo.backend = Backend::kLns;
  Solution lns = lns_model->Solve(lo);

  ASSERT_TRUE(bnb.has_solution());
  ASSERT_TRUE(lns.has_solution());
  EXPECT_LE(lns.objective, bnb.objective);
}

TEST(LnsTest, SatisfySenseFallsBackToFirstSolution) {
  // kSatisfy models must return promptly with the first feasible assignment
  // instead of spinning neighborhoods (the bridge relies on this when the
  // goal table is empty).
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.MarkDecision(x);
  m.MarkDecision(y);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kEq, LinExpr(7));
  Model::Options o;
  o.backend = Backend::kLns;
  Solution s = m.Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.ValueOf(x) + s.ValueOf(y), 7);
  EXPECT_EQ(s.stats.iterations, 0u) << "no improvement loop for kSatisfy";
}

TEST(LnsTest, InfeasibleModelReported) {
  Model m;
  IntVar x = m.NewInt(0, 5);
  m.MarkDecision(x);
  m.PostRel(LinExpr(x), Rel::kGt, LinExpr(10));
  Model::Options o;
  o.backend = Backend::kLns;
  Solution s = m.Solve(o);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(WarmStartTest, HintSeedsEqualIncumbentUnderTinyNodeLimit) {
  // First solve to optimality, then re-solve with the solution as a hint and
  // a node limit too small to find anything from scratch: the warm start
  // must carry the incumbent across.
  auto m = MakeACloudModel(8, 4);
  Model::Options full;
  full.time_limit_ms = 5000;
  Solution s1 = m->Solve(full);
  ASSERT_TRUE(s1.has_solution());

  Model::Options cold;
  cold.node_limit = 3;
  Solution s_cold = m->Solve(cold);
  EXPECT_FALSE(s_cold.has_solution())
      << "3 nodes cannot complete a 32-decision assignment from scratch";

  Model::Options warm = cold;
  warm.warm_start = s1.values;
  Solution s2 = m->Solve(warm);
  ASSERT_TRUE(s2.has_solution());
  EXPECT_EQ(s2.objective, s1.objective);
}

TEST(WarmStartTest, StaleHintsAreRepairedNotTrusted) {
  // A hint that violates the constraints must not poison the solve.
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.MarkDecision(x);
  m.MarkDecision(y);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kEq, LinExpr(4));
  m.Minimize(LinExpr(x));
  Model::Options o;
  o.warm_start = {9, 9};  // infeasible pair
  Solution s = m.Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.objective, 0);
  EXPECT_EQ(s.ValueOf(x) + s.ValueOf(y), 4);
}

TEST(WarmStartTest, LnsUsesHintAsInitialAssignment) {
  auto m = MakeACloudModel(8, 4);
  Model::Options full;
  full.time_limit_ms = 5000;
  Solution s1 = m->Solve(full);
  ASSERT_TRUE(s1.has_solution());

  Model::Options warm;
  warm.backend = Backend::kLns;
  warm.time_limit_ms = 0;
  warm.max_iterations = 5;
  warm.warm_start = s1.values;
  Solution s2 = m->Solve(warm);
  ASSERT_TRUE(s2.has_solution());
  EXPECT_LE(s2.objective, s1.objective)
      << "starting from the optimum, LNS can never end up worse";
}

TEST(RestartTest, LubyRestartsAreCountedAndHarmless) {
  auto m = MakeACloudModel(12, 4);
  Model::Options o;
  // Node-budgeted, no wall clock: the 64-node Luby dives always cycle a few
  // times before the 4000-node cap, however slow the build.
  o.time_limit_ms = 0;
  o.node_limit = 4000;
  o.restart_base_nodes = 64;
  o.seed = 7;
  Solution s = m->Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_GT(s.stats.restarts, 0u);
}

TEST(RestartTest, RestartsStillProveOptimalityOnSmallModels) {
  // On a model small enough to exhaust, the restarting B&B must reach the
  // same optimum as the plain one.
  auto plain = MakeACloudModel(5, 3);
  Model::Options po;
  po.time_limit_ms = 10'000;
  Solution p = plain->Solve(po);

  auto restarting = MakeACloudModel(5, 3);
  Model::Options ro = po;
  ro.restart_base_nodes = 32;
  Solution r = restarting->Solve(ro);

  ASSERT_TRUE(p.has_solution());
  ASSERT_TRUE(r.has_solution());
  EXPECT_EQ(p.status, SolveStatus::kOptimal);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_EQ(p.objective, r.objective);
}

TEST(BackendFactoryTest, NamesRoundTrip) {
  EXPECT_STREQ(MakeSearchBackend(Backend::kBranchAndBound)->name(), "bnb");
  EXPECT_STREQ(MakeSearchBackend(Backend::kLns)->name(), "lns");
  Backend b;
  ASSERT_TRUE(ParseBackend("lns", &b));
  EXPECT_EQ(b, Backend::kLns);
  ASSERT_TRUE(ParseBackend("bnb", &b));
  EXPECT_EQ(b, Backend::kBranchAndBound);
  EXPECT_FALSE(ParseBackend("tabu", &b));
}

}  // namespace
}  // namespace cologne::solver

// Tests for the trailed domain store (solver/store.h) and the search
// machinery built on it: exact backtrack restoration, save-once-per-level
// bookkeeping, deep-stack dives (the historical Dive dangling-reference
// hazard, exercised under ASan in CI), the iterative Luby sequence, and
// solve-twice determinism of the trailed search.
#include <gtest/gtest.h>

#include <vector>

#include "solver/model.h"
#include "solver/search_internal.h"
#include "solver/store.h"

namespace cologne::solver {
namespace {

std::vector<IntDomain> MakeDoms() {
  std::vector<IntDomain> doms;
  doms.push_back(IntDomain(0, 9));
  doms.push_back(IntDomain(-5, 5));
  IntDomain holey(1, 8);
  holey.Remove(4);
  holey.Remove(6);
  doms.push_back(holey);
  return doms;
}

TEST(DomainStoreTest, BacktrackRestoresExactRanges) {
  DomainStore st;
  st.Init(MakeDoms());
  const std::vector<IntDomain> before = {st[0], st[1], st[2]};

  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(0, 3));
  EXPECT_TRUE(st.ClampMax(1, 2));
  EXPECT_TRUE(st.Remove(2, 7));   // splits nothing: 7 is a singleton edge
  EXPECT_TRUE(st.Remove(2, 2));   // splits {1..3} into {1},{3}
  EXPECT_TRUE(st.Assign(0, 5));
  EXPECT_EQ(st[0].value(), 5);

  st.Backtrack();
  EXPECT_EQ(st.level(), 0);
  for (size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(st[i], before[i]) << "var " << i << " not restored: "
                                << st[i].ToString();
  }
}

TEST(DomainStoreTest, SaveOncePerLevel) {
  DomainStore st;
  st.Init(MakeDoms());
  st.PushLevel();
  EXPECT_TRUE(st.ClampMin(0, 1));
  EXPECT_TRUE(st.ClampMin(0, 2));
  EXPECT_TRUE(st.ClampMin(0, 3));
  // Three mutations of the same variable on one level: one save record.
  EXPECT_EQ(st.total_saves(), 1u);
  st.Backtrack();
  EXPECT_EQ(st[0].min(), 0);
}

TEST(DomainStoreTest, NestedLevelsRestoreInOrder) {
  DomainStore st;
  st.Init(MakeDoms());
  st.PushLevel();  // level 1
  st.ClampMax(0, 7);
  st.PushLevel();  // level 2
  st.ClampMax(0, 4);
  st.PushLevel();  // level 3
  st.Assign(0, 2);
  EXPECT_EQ(st.level(), 3);
  EXPECT_EQ(st.peak_depth(), 3u);

  st.Backtrack();
  EXPECT_EQ(st[0].max(), 4);  // level-2 state
  st.Backtrack();
  EXPECT_EQ(st[0].max(), 7);  // level-1 state
  st.Backtrack();
  EXPECT_EQ(st[0].max(), 9);  // pristine
}

TEST(DomainStoreTest, BacktrackToUnwindsMultipleLevels) {
  DomainStore st;
  st.Init(MakeDoms());
  for (int i = 0; i < 5; ++i) {
    st.PushLevel();
    st.ClampMax(0, 8 - i);
  }
  EXPECT_EQ(st.level(), 5);
  st.BacktrackTo(1);
  EXPECT_EQ(st.level(), 1);
  EXPECT_EQ(st[0].max(), 8);
  st.BacktrackTo(0);
  EXPECT_EQ(st[0].max(), 9);
  // Backtracking to the current-or-deeper level is a no-op.
  st.BacktrackTo(3);
  EXPECT_EQ(st.level(), 0);
}

TEST(DomainStoreTest, LevelZeroMutationsArePermanent) {
  DomainStore st;
  st.Init(MakeDoms());
  EXPECT_TRUE(st.ClampMin(0, 4));  // no level pushed: permanent, untrailed
  EXPECT_EQ(st.total_saves(), 0u);
  st.PushLevel();
  st.ClampMin(0, 6);
  st.Backtrack();
  EXPECT_EQ(st[0].min(), 4);  // restores to the *mutated* level-0 state
}

TEST(DomainStoreTest, NoChangeMutatorsDoNotTrail) {
  DomainStore st;
  st.Init(MakeDoms());
  st.PushLevel();
  EXPECT_FALSE(st.ClampMin(0, -3));  // already satisfied
  EXPECT_FALSE(st.ClampMax(0, 20));
  EXPECT_FALSE(st.Remove(0, 42));    // not contained
  EXPECT_EQ(st.total_saves(), 0u);
  st.Backtrack();
}

TEST(DomainStoreTest, AssignToMissingValueEmptiesAndRestores) {
  DomainStore st;
  st.Init(MakeDoms());
  st.PushLevel();
  EXPECT_TRUE(st.Assign(2, 4));  // 4 was removed: domain empties
  EXPECT_TRUE(st.dom(2).empty());
  st.Backtrack();
  EXPECT_FALSE(st.dom(2).empty());
  EXPECT_EQ(st.dom(2).size(), 6u);
}

TEST(DomainStoreTest, PeakMemoryAccountsTrail) {
  DomainStore st;
  st.Init(MakeDoms());
  const size_t base = st.PeakMemoryBytes();
  st.PushLevel();
  st.ClampMin(0, 5);
  st.ClampMin(1, 0);
  EXPECT_GT(st.PeakMemoryBytes(), base);
  st.Backtrack();
  // Peak is a high-water mark: it does not shrink on backtrack.
  EXPECT_GT(st.PeakMemoryBytes(), base);
}

// Reference implementation: the historical self-recursive Luby form.
uint64_t LubyRecursive(uint64_t i) {
  for (uint64_t k = 1;; ++k) {
    uint64_t pow2 = uint64_t{1} << k;
    if (i == pow2 - 1) return pow2 >> 1;
    if (i < pow2 - 1) return LubyRecursive(i - (pow2 >> 1) + 1);
  }
}

TEST(LubyTest, MatchesRecursiveReference) {
  // Prefix of the classic sequence, then a broad sweep.
  const uint64_t want[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t i = 0; i < std::size(want); ++i) {
    EXPECT_EQ(internal::Luby(i + 1), want[i]) << "i=" << i + 1;
  }
  for (uint64_t i = 1; i <= 1u << 14; ++i) {
    ASSERT_EQ(internal::Luby(i), LubyRecursive(i)) << "i=" << i;
  }
  // Spot checks deep into the sequence (recursion here would be log-deep;
  // the iterative form must still agree).
  for (uint64_t i : {uint64_t{1} << 32, (uint64_t{1} << 40) - 1,
                     (uint64_t{1} << 40) + 12345}) {
    EXPECT_EQ(internal::Luby(i), LubyRecursive(i)) << "i=" << i;
  }
  // Luby(0) is out of contract and asserts in debug builds; the release
  // fallback pins it to the first block's value.
#ifdef NDEBUG
  EXPECT_EQ(internal::Luby(0), 1u);
#endif
}

// Regression for the historical Dive hazard (`top` dangling after push_node
// reallocated the frame stack): a satisfy chain thousands of variables deep
// forces the frame vector through many reallocations during the first
// descent. Under ASan (the debug-asan-ubsan CI row runs this test) a
// reference outliving a reallocation dies loudly.
TEST(DeepDiveTest, ThousandsOfFramesUnderAsan) {
  constexpr int kVars = 4000;
  Model m;
  std::vector<IntVar> xs;
  xs.reserve(kVars);
  for (int i = 0; i < kVars; ++i) {
    IntVar x = m.NewInt(0, 3);
    m.MarkDecision(x);
    xs.push_back(x);
  }
  // Sparse coupling so propagation fixes nothing ahead of branching: the
  // dive really holds one frame per variable.
  for (int i = 0; i + 1 < kVars; i += 2) {
    m.PostRel(LinExpr(xs[static_cast<size_t>(i)]), Rel::kLe,
              LinExpr(xs[static_cast<size_t>(i + 1)]));
  }
  m.Satisfy();
  Model::Options o;
  o.time_limit_ms = 0;
  Solution s = m.Solve(o);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.stats.nodes, static_cast<uint64_t>(kVars));
  EXPECT_EQ(s.stats.failures, 0u);
  EXPECT_EQ(s.stats.solutions, 1u);
  for (int i = 0; i + 1 < kVars; i += 2) {
    EXPECT_LE(s.ValueOf(xs[static_cast<size_t>(i)]),
              s.ValueOf(xs[static_cast<size_t>(i + 1)]));
  }
}

// A deep *optimizing* dive with backtracking: maximize the tail of a chain
// with interleaved failures, so backtrack + re-descend crosses reallocation
// boundaries repeatedly.
TEST(DeepDiveTest, DeepBacktrackingDive) {
  constexpr int kVars = 600;
  Model m;
  std::vector<IntVar> xs;
  LinExpr sum;
  for (int i = 0; i < kVars; ++i) {
    IntVar x = m.NewInt(0, 2);
    m.MarkDecision(x);
    xs.push_back(x);
    sum += LinExpr(x);
  }
  // Adjacent vars may not both be 2: forces failures along the descent when
  // maximizing.
  for (int i = 0; i + 1 < kVars; ++i) {
    m.PostRel(LinExpr(xs[static_cast<size_t>(i)]) +
                  LinExpr(xs[static_cast<size_t>(i + 1)]),
              Rel::kLe, LinExpr(3));
  }
  m.Maximize(sum);
  Model::Options o;
  o.time_limit_ms = 0;
  o.node_limit = 30'000;
  Solution s = m.Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_GT(s.stats.failures, 0u);
}

// The trailed search must leave no state behind: an identical second solve
// on the same Model reproduces the identical search tree and statistics.
TEST(TrailedSearchTest, SolveTwiceIsBitIdentical) {
  for (Backend backend : {Backend::kBranchAndBound, Backend::kLns}) {
    Model m;
    std::vector<std::vector<IntVar>> v(6);
    for (int i = 0; i < 6; ++i) {
      LinExpr one;
      for (int h = 0; h < 4; ++h) {
        IntVar b = m.NewBool();
        m.MarkDecision(b);
        v[static_cast<size_t>(i)].push_back(b);
        one += LinExpr(b);
      }
      m.PostRel(one, Rel::kEq, LinExpr(1));
    }
    LinExpr obj;
    for (int h = 0; h < 4; ++h) {
      LinExpr load;
      for (int i = 0; i < 6; ++i) {
        load += LinExpr::Term(10 + (i * 7) % 40,
                              v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
      }
      obj += LinExpr(m.MakeSquare(load));
    }
    m.Minimize(obj);

    Model::Options o;
    o.time_limit_ms = 0;
    o.node_limit = 20'000;
    o.max_iterations = 50;
    o.backend = backend;
    o.seed = 0x5EED;
    Solution a = m.Solve(o);
    Solution b = m.Solve(o);
    EXPECT_EQ(a.stats.nodes, b.stats.nodes);
    EXPECT_EQ(a.stats.failures, b.stats.failures);
    EXPECT_EQ(a.stats.solutions, b.stats.solutions);
    EXPECT_EQ(a.stats.propagations, b.stats.propagations);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.values, b.values);
  }
}

}  // namespace
}  // namespace cologne::solver

// Property tests for the solver bridge: full Colog pipeline vs brute-force
// enumeration on randomized instances, and coverage of every symbolic
// aggregate construction.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "colog/planner.h"
#include "common/rng.h"
#include "runtime/instance.h"

namespace cologne::runtime {
namespace {

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

// Minimal balance program: minimize the scaled variance of host loads.
const char* kBalance = R"(
goal minimize C in spread(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].
r1 toAssign(Vid,Hid) <- vm(Vid,Cpu), host(Hid).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu), C==V*Cpu.
d2 spread(STDEV<C>) <- hostCpu(Hid,C).
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
)";

class BridgeVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(BridgeVsBruteForceTest, PipelineOptimumMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  int vms = 3 + GetParam() % 3;    // 3..5
  int hosts = 2 + GetParam() % 2;  // 2..3
  std::vector<int64_t> cpu;
  for (int v = 0; v < vms; ++v) cpu.push_back(rng.UniformInt(10, 60));

  // Brute force: minimal sum of squared deviations over host assignments.
  double best = 1e18;
  std::vector<int> a(static_cast<size_t>(vms), 0);
  while (true) {
    std::vector<double> load(static_cast<size_t>(hosts), 0);
    for (int v = 0; v < vms; ++v) {
      load[static_cast<size_t>(a[static_cast<size_t>(v)])] +=
          static_cast<double>(cpu[static_cast<size_t>(v)]);
    }
    double mean = 0;
    for (double l : load) mean += l;
    mean /= hosts;
    double ss = 0;
    for (double l : load) ss += (l - mean) * (l - mean);
    best = std::min(best, std::sqrt(ss / hosts));
    int i = 0;
    while (i < vms && ++a[static_cast<size_t>(i)] >= hosts) {
      a[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == vms) break;
  }

  auto compiled = colog::CompileColog(kBalance);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  for (int v = 0; v < vms; ++v) {
    ASSERT_TRUE(
        inst.InsertFact("vm", R({v, cpu[static_cast<size_t>(v)]})).ok());
  }
  for (int h = 0; h < hosts; ++h) {
    ASSERT_TRUE(inst.InsertFact("host", R({h})).ok());
  }
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_EQ(out.value().status, solver::SolveStatus::kOptimal);
  EXPECT_NEAR(out.value().objective, best, 1e-6)
      << "vms=" << vms << " hosts=" << hosts;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BridgeVsBruteForceTest,
                         ::testing::Range(0, 12));

TEST(BridgeAggregateTest, SumAbsMinimizesMagnitudes) {
  const char* src = R"(
goal minimize C in total(C).
var flow(E,F) forall edge(E) domain [-5,5].
d1 total(SUMABS<F>) <- flow(E,F).
d2 net(SUM<F>) <- flow(E,F).
c1 net(F) -> F==3.
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  for (int e = 0; e < 3; ++e) ASSERT_TRUE(inst.InsertFact("edge", R({e})).ok());
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_DOUBLE_EQ(out.value().objective, 3) << "no cancellation: |sum|=3";
}

TEST(BridgeAggregateTest, MaxAggregateMinimizesPeak) {
  const char* src = R"(
goal minimize M in peak(M).
var put(I,B,V) forall slot(I,B) domain [0,1].
d1 cnt(I,SUM<V>) <- put(I,B,V).
c1 cnt(I,V) -> V==1.
d2 load(B,SUM<V>) <- put(I,B,V).
d3 peak(MAX<V>) <- load(B,V).
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  // 4 items, 2 bins: min-max load is 2.
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 2; ++b) {
      ASSERT_TRUE(inst.InsertFact("slot", R({i, b})).ok());
    }
  }
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_DOUBLE_EQ(out.value().objective, 2);
}

TEST(BridgeAggregateTest, UniqueAggregateConstrainsDistinctValues) {
  const char* src = R"(
goal minimize C in spread(C).
var pick(I,V) forall item(I) domain [1,4].
d1 distinct(UNIQUE<V>) <- pick(I,V).
c1 distinct(N) -> N<=2.
d2 spread(SUM<V>) <- pick(I,V).
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(inst.InsertFact("item", R({i})).ok());
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  // Minimizing the sum picks all 1s (one distinct value, allowed).
  EXPECT_DOUBLE_EQ(out.value().objective, 5);
  std::set<int64_t> values;
  for (const Row& row : inst.engine().GetTable("pick")->Rows()) {
    values.insert(row[1].as_int());
  }
  EXPECT_LE(values.size(), 2u);
}

TEST(BridgeGoalTest, MaximizeGoal) {
  const char* src = R"(
goal maximize C in value(C).
var take(I,V) forall item(I) domain [0,1].
d1 weight(SUM<W>) <- take(I,V), itemW(I,X), W==V*X.
c1 weight(W) -> W<=10.
d2 value(SUM<P>) <- take(I,V), itemP(I,X), P==V*X.
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  // Knapsack: weights {6,5,5}, profits {7,5,5}, cap 10 -> take items 2+3.
  int64_t w[3] = {6, 5, 5}, p[3] = {7, 5, 5};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(inst.InsertFact("item", R({i})).ok());
    ASSERT_TRUE(inst.InsertFact("itemW", R({i, w[i]})).ok());
    ASSERT_TRUE(inst.InsertFact("itemP", R({i, p[i]})).ok());
  }
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_DOUBLE_EQ(out.value().objective, 10);
}

TEST(BridgeGoalTest, SatisfyGoalFindsAnySolution) {
  const char* src = R"(
goal satisfy.
var color(N,C) forall node(N) domain [1,3].
c1 color(N,C) -> banned(N,B), C!=B.
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(inst.InsertFact("node", R({n})).ok());
    ASSERT_TRUE(inst.InsertFact("banned", R({n, 1})).ok());
    ASSERT_TRUE(inst.InsertFact("banned", R({n, 2})).ok());
  }
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  // Universal constraint semantics: every banned row applies -> color 3.
  for (const Row& row : inst.engine().GetTable("color")->Rows()) {
    EXPECT_EQ(row[1].as_int(), 3);
  }
}

TEST(BridgeConstraintTest, CrossVariableEqualityViaConstraintBody) {
  // Wireless c2 pattern: a constraint body atom over the var table unifies
  // two solver variables.
  const char* src = R"(
goal minimize S in total(S).
var ch(A,B,C) forall pair(A,B) domain [1,5].
d1 total(SUM<C>) <- ch(A,B,C).
c1 ch(A,B,C) -> ch(B,A,C).
c2 ch(A,B,C) -> lo(A,L), C>=L.
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  ASSERT_TRUE(inst.InsertFact("pair", R({1, 2})).ok());
  ASSERT_TRUE(inst.InsertFact("pair", R({2, 1})).ok());
  ASSERT_TRUE(inst.InsertFact("lo", R({1, 1})).ok());
  ASSERT_TRUE(inst.InsertFact("lo", R({2, 4})).ok());
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  // Symmetry + per-endpoint lower bounds force both directions to 4.
  EXPECT_TRUE(inst.engine().GetTable("ch")->Contains(R({1, 2, 4})));
  EXPECT_TRUE(inst.engine().GetTable("ch")->Contains(R({2, 1, 4})));
}

TEST(BridgeErrorTest, JoinOnSolverAttributeRejected) {
  // Section 5.3: joins on solver attributes are not allowed in derivations.
  const char* src = R"(
goal minimize S in total(S).
var v1(I,V) forall item(I) domain [0,3].
var v2(I,V) forall item(I) domain [0,3].
d1 pairCost(I,J,V) <- v1(I,V), v2(J,V).
d2 total(SUM<V>) <- pairCost(I,J,V).
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  ASSERT_TRUE(inst.InsertFact("item", R({0})).ok());
  auto out = inst.Solve();
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("join on a solver attribute"),
            std::string::npos);
}

}  // namespace
}  // namespace cologne::runtime

// Unit and property tests for the constraint solver: propagators, search,
// branch-and-bound optimality, and the derived-variable constructions used by
// the Colog runtime bridge (squares for STDEV, abs for SUMABS, count-distinct
// for UNIQUE).
#include "solver/model.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cologne::solver {
namespace {

TEST(ModelTest, SatisfyTrivial) {
  Model m;
  IntVar x = m.NewInt(0, 5);
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(3));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 3);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
}

TEST(ModelTest, InfeasibleDetected) {
  Model m;
  IntVar x = m.NewInt(0, 5);
  m.PostRel(LinExpr(x), Rel::kGt, LinExpr(10));
  Solution s = m.Solve();
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(s.has_solution());
}

TEST(ModelTest, LinearEqualityPropagatesWithoutSearch) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  IntVar y = m.NewInt(0, 10);
  // x + y == 20 forces both to 10.
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kEq, LinExpr(20));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 10);
  EXPECT_EQ(s.ValueOf(y), 10);
  EXPECT_EQ(s.stats.nodes, 0u) << "should be solved by propagation alone";
}

TEST(ModelTest, MinimizeLinear) {
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kGe, LinExpr(7));
  m.Minimize(LinExpr::Term(3, x) + LinExpr::Term(5, y));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, 21);  // x=7, y=0
  EXPECT_EQ(s.ValueOf(x), 7);
  EXPECT_EQ(s.ValueOf(y), 0);
}

TEST(ModelTest, MaximizeLinear) {
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.PostRel(LinExpr::Term(2, x) + LinExpr::Term(3, y), Rel::kLe, LinExpr(12));
  m.Maximize(LinExpr(x) + LinExpr(y));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  // x=6,y=0 gives 6; x=3,y=2 gives 5; best is x=6 => 6.
  EXPECT_EQ(s.objective, 6);
}

TEST(ModelTest, NotEqualPrunesLastValue) {
  Model m;
  IntVar x = m.NewInt(0, 1);
  IntVar y = m.NewInt(0, 1);
  m.PostRel(LinExpr(x), Rel::kNe, LinExpr(y));
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(1));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(y), 0);
}

TEST(ModelTest, StrictInequalities) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  m.PostRel(LinExpr(x), Rel::kGt, LinExpr(3));
  m.PostRel(LinExpr(x), Rel::kLt, LinExpr(5));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 4);
}

TEST(ModelTest, ReifiedTracksTruth) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  IntVar b = m.ReifyRel(LinExpr(x), Rel::kGe, LinExpr(5));
  m.PostRel(LinExpr(b), Rel::kEq, LinExpr(1));
  m.Minimize(LinExpr(x));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 5);
}

TEST(ModelTest, ReifiedFalseForcesNegation) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  IntVar b = m.ReifyRel(LinExpr(x), Rel::kGe, LinExpr(5));
  m.PostRel(LinExpr(b), Rel::kEq, LinExpr(0));
  m.Maximize(LinExpr(x));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 4);
}

TEST(ModelTest, ReifiedEntailmentFixesBool) {
  Model m;
  IntVar x = m.NewInt(6, 10);
  IntVar b = m.ReifyRel(LinExpr(x), Rel::kGe, LinExpr(5));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(b), 1);
}

TEST(ModelTest, PaperStyleEqualityChaining) {
  // The ACloud rule d5 pattern: (V==1)==(C==1).
  Model m;
  IntVar v = m.NewBool();
  IntVar c = m.NewBool();
  IntVar bv = m.ReifyRel(LinExpr(v), Rel::kEq, LinExpr(1));
  IntVar bc = m.ReifyRel(LinExpr(c), Rel::kEq, LinExpr(1));
  m.PostRel(LinExpr(bv), Rel::kEq, LinExpr(bc));
  m.PostRel(LinExpr(v), Rel::kEq, LinExpr(1));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(c), 1);
}

TEST(ModelTest, TimesFixedFactors) {
  Model m;
  IntVar x = m.NewInt(3, 3);
  IntVar y = m.NewInt(-4, -4);
  IntVar z = m.MakeTimes(x, y);
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(z), -12);
}

TEST(ModelTest, TimesBoundsPropagation) {
  Model m;
  IntVar x = m.NewInt(2, 5);
  IntVar y = m.NewInt(3, 4);
  IntVar z = m.MakeTimes(x, y);
  m.PostRel(LinExpr(z), Rel::kLe, LinExpr(8));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_LE(s.ValueOf(z), 8);
  EXPECT_EQ(s.ValueOf(x) * s.ValueOf(y), s.ValueOf(z));
}

TEST(ModelTest, SquareIsNonNegative) {
  Model m;
  IntVar x = m.NewInt(-5, 5);
  IntVar z = m.MakeSquare(LinExpr(x));
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(-3));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(z), 9);
}

TEST(ModelTest, MinimizeSquareFindsZero) {
  Model m;
  IntVar x = m.NewInt(-5, 5);
  IntVar z = m.MakeSquare(LinExpr(x));
  m.Minimize(LinExpr(z));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.objective, 0);
  EXPECT_EQ(s.ValueOf(x), 0);
}

TEST(ModelTest, AbsOfExpression) {
  Model m;
  IntVar x = m.NewInt(-10, 10);
  IntVar z = m.MakeAbs(LinExpr(x) - LinExpr(4));
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(-2));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(z), 6);
}

TEST(ModelTest, MinimizeSumAbs) {
  // SUMABS-style: minimize |x| + |y| with x + y == 4.
  Model m;
  IntVar x = m.NewInt(-10, 10);
  IntVar y = m.NewInt(-10, 10);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kEq, LinExpr(4));
  IntVar ax = m.MakeAbs(LinExpr(x));
  IntVar ay = m.MakeAbs(LinExpr(y));
  m.Minimize(LinExpr(ax) + LinExpr(ay));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.objective, 4);  // no cancellation possible
}

TEST(ModelTest, MaxConst) {
  Model m;
  IntVar x = m.NewInt(-5, 5);
  IntVar z = m.MakeMaxConst(LinExpr(x), 0);
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(-3));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(z), 0);
}

TEST(ModelTest, MaxConstPositive) {
  Model m;
  IntVar x = m.NewInt(-5, 5);
  IntVar z = m.MakeMaxConst(LinExpr(x), 0);
  m.PostRel(LinExpr(x), Rel::kEq, LinExpr(4));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(z), 4);
}

TEST(ModelTest, OrSemantics) {
  Model m;
  IntVar a = m.NewBool();
  IntVar b = m.NewBool();
  IntVar c = m.MakeOr({a, b});
  m.PostRel(LinExpr(a), Rel::kEq, LinExpr(0));
  m.PostRel(LinExpr(c), Rel::kEq, LinExpr(1));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(b), 1);
}

TEST(ModelTest, OrFalseForcesAllFalse) {
  Model m;
  IntVar a = m.NewBool();
  IntVar b = m.NewBool();
  IntVar c = m.MakeOr({a, b});
  m.PostRel(LinExpr(c), Rel::kEq, LinExpr(0));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(a), 0);
  EXPECT_EQ(s.ValueOf(b), 0);
}

TEST(ModelTest, CountDistinctBasic) {
  Model m;
  IntVar x = m.NewInt(1, 3);
  IntVar y = m.NewInt(1, 3);
  IntVar z = m.NewInt(1, 3);
  IntVar count = m.MakeCountDistinct({x, y, z});
  m.PostRel(LinExpr(count), Rel::kEq, LinExpr(1));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), s.ValueOf(y));
  EXPECT_EQ(s.ValueOf(y), s.ValueOf(z));
}

TEST(ModelTest, CountDistinctInterfaceConstraint) {
  // Wireless c3 pattern: a node with 2 interfaces uses at most 2 distinct
  // channels across its 3 links.
  Model m;
  IntVar c1 = m.NewInt(1, 4);
  IntVar c2 = m.NewInt(1, 4);
  IntVar c3 = m.NewInt(1, 4);
  IntVar count = m.MakeCountDistinct({c1, c2, c3});
  m.PostRel(LinExpr(count), Rel::kLe, LinExpr(2));
  m.PostRel(LinExpr(c1), Rel::kEq, LinExpr(1));
  m.PostRel(LinExpr(c2), Rel::kEq, LinExpr(2));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  int64_t v3 = s.ValueOf(c3);
  EXPECT_TRUE(v3 == 1 || v3 == 2) << "third channel must reuse 1 or 2";
}

TEST(ModelTest, RemoveValueActsAsPrimaryUserConstraint) {
  Model m;
  IntVar ch = m.NewInt(1, 3);
  m.RemoveValue(ch, 1);
  m.RemoveValue(ch, 3);
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(ch), 2);
}

TEST(ModelTest, AssignmentProblemEachVmExactlyOneHost) {
  // Miniature ACloud: 3 VMs x 2 hosts; V[i][h] in {0,1}; each VM on exactly
  // one host; minimize squared-load imbalance. CPU: 4, 2, 2.
  Model m;
  int64_t cpu[3] = {4, 2, 2};
  IntVar v[3][2];
  for (int i = 0; i < 3; ++i) {
    for (int h = 0; h < 2; ++h) v[i][h] = m.NewBool();
    m.PostRel(LinExpr(v[i][0]) + LinExpr(v[i][1]), Rel::kEq, LinExpr(1));
  }
  LinExpr load0, load1;
  for (int i = 0; i < 3; ++i) {
    load0 += LinExpr::Term(cpu[i], v[i][0]);
    load1 += LinExpr::Term(cpu[i], v[i][1]);
  }
  IntVar dev = m.MakeSquare(load0 - load1);
  m.Minimize(LinExpr(dev));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, 0) << "4 vs 2+2 balances exactly";
}

TEST(ModelTest, NodeLimitYieldsFeasibleNotOptimal) {
  Model m;
  std::vector<IntVar> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(m.NewInt(0, 3));
  LinExpr sum;
  for (IntVar x : xs) sum += LinExpr(x);
  m.PostRel(sum, Rel::kGe, LinExpr(6));
  LinExpr obj;
  for (size_t i = 0; i < xs.size(); ++i) {
    obj += LinExpr::Term(static_cast<int64_t>(i % 3) + 1, xs[i]);
  }
  m.Minimize(obj);
  Model::Options opt;
  opt.node_limit = 3;
  Solution s = m.Solve(opt);
  // With a 3-node budget the search can find an incumbent but not prove it.
  EXPECT_TRUE(s.status == SolveStatus::kFeasible ||
              s.status == SolveStatus::kUnknown);
}

TEST(ModelTest, SolveIsRepeatable) {
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kGe, LinExpr(7));
  m.Minimize(LinExpr::Term(3, x) + LinExpr::Term(5, y));
  Solution s1 = m.Solve();
  Solution s2 = m.Solve();
  ASSERT_TRUE(s1.has_solution());
  ASSERT_TRUE(s2.has_solution());
  EXPECT_EQ(s1.objective, s2.objective);
  EXPECT_EQ(s1.values, s2.values);
}

TEST(ModelTest, StatsArePopulated) {
  Model m;
  IntVar x = m.NewInt(0, 9);
  IntVar y = m.NewInt(0, 9);
  m.PostRel(LinExpr(x) + LinExpr(y), Rel::kEq, LinExpr(9));
  m.Minimize(LinExpr::Term(2, x) - LinExpr(y));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_GT(s.stats.propagations, 0u);
  EXPECT_GT(s.stats.peak_memory_bytes, 0u);
  EXPECT_GE(s.stats.wall_ms, 0.0);
}

// --- Variable-selection regression tests ----------------------------------
// The selection order is observable through which solution a satisfaction
// search reaches first; these pin the contract down so the watermark-based
// SelectVar rewrite cannot silently change it.

TEST(ModelTest, SelectVarBreaksSizeTiesByLowestId) {
  // x1 and x2 tie on domain size; the search must branch x1 (lower id)
  // first with ascending values: x1=0 propagates x2=2.
  Model m;
  IntVar x1 = m.NewInt(0, 2);
  IntVar x2 = m.NewInt(0, 2);
  m.PostRel(LinExpr(x1) + LinExpr(x2), Rel::kEq, LinExpr(2));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x1), 0);
  EXPECT_EQ(s.ValueOf(x2), 2);
}

TEST(ModelTest, SelectVarPrefersDecisionOverSmallerAuxiliary) {
  // z has the smaller domain, but x is the marked decision variable and must
  // be branched first: x=0 fails (z would need 2), x=1 succeeds with z=1.
  // Size-first selection would instead branch z=0 and land on x=2.
  Model m;
  IntVar z = m.NewInt(0, 1);
  IntVar x = m.NewInt(0, 2);
  m.MarkDecision(x);
  m.PostRel(LinExpr(x) + LinExpr(z), Rel::kEq, LinExpr(2));
  Solution s = m.Solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.ValueOf(x), 1);
  EXPECT_EQ(s.ValueOf(z), 1);
}

// --- Property tests: branch-and-bound equals brute force ------------------

struct RandomCopCase {
  int num_vars;
  uint64_t seed;
};

class BnbVsBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BnbVsBruteForceTest, MinimumMatchesExhaustiveEnumeration) {
  auto [num_vars, seed_int] = GetParam();
  Rng rng(static_cast<uint64_t>(seed_int) * 7919 + 13);

  // Random COP: vars in [0,3], a few random <=/>= linear constraints, random
  // linear objective. Brute force enumerates all 4^n assignments.
  int n = num_vars;
  std::vector<int64_t> lo(static_cast<size_t>(n), 0),
      hi(static_cast<size_t>(n), 3);
  struct Lin {
    std::vector<int64_t> coef;
    int64_t rhs;
    bool le;
  };
  std::vector<Lin> cons;
  int num_cons = 2 + static_cast<int>(rng.UniformInt(0, 2));
  for (int k = 0; k < num_cons; ++k) {
    Lin c;
    for (int i = 0; i < n; ++i) c.coef.push_back(rng.UniformInt(-2, 3));
    c.rhs = rng.UniformInt(0, 3 * n);
    c.le = rng.Bernoulli(0.5);
    cons.push_back(c);
  }
  std::vector<int64_t> obj_coef;
  for (int i = 0; i < n; ++i) obj_coef.push_back(rng.UniformInt(-3, 4));

  // Brute force.
  int64_t best = INT64_MAX;
  std::vector<int64_t> a(static_cast<size_t>(n), 0);
  bool any = false;
  while (true) {
    bool feasible = true;
    for (const Lin& c : cons) {
      int64_t s = 0;
      for (int i = 0; i < n; ++i) s += c.coef[static_cast<size_t>(i)] * a[static_cast<size_t>(i)];
      if (c.le ? (s > c.rhs) : (s < c.rhs)) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      any = true;
      int64_t o = 0;
      for (int i = 0; i < n; ++i) o += obj_coef[static_cast<size_t>(i)] * a[static_cast<size_t>(i)];
      best = std::min(best, o);
    }
    int i = 0;
    while (i < n && ++a[static_cast<size_t>(i)] > hi[static_cast<size_t>(i)]) {
      a[static_cast<size_t>(i)] = lo[static_cast<size_t>(i)];
      ++i;
    }
    if (i == n) break;
  }

  // Solver.
  Model m;
  std::vector<IntVar> xs;
  for (int i = 0; i < n; ++i) xs.push_back(m.NewInt(0, 3));
  for (const Lin& c : cons) {
    LinExpr e;
    for (int i = 0; i < n; ++i) e += LinExpr::Term(c.coef[static_cast<size_t>(i)], xs[static_cast<size_t>(i)]);
    m.PostRel(e, c.le ? Rel::kLe : Rel::kGe, LinExpr(c.rhs));
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) obj += LinExpr::Term(obj_coef[static_cast<size_t>(i)], xs[static_cast<size_t>(i)]);
  m.Minimize(obj);
  Solution s = m.Solve();

  if (!any) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_TRUE(s.has_solution());
    EXPECT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_EQ(s.objective, best);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCops, BnbVsBruteForceTest,
                         ::testing::Combine(::testing::Values(3, 5, 7),
                                            ::testing::Range(0, 10)));

}  // namespace
}  // namespace cologne::solver

// Helpers shared by the search-backend test suites (solver_lns_test,
// solver_portfolio_test): the ACloud-shaped benchmark model and sanitizer
// detection for wall-clock-sensitive assertions.
#ifndef COLOGNE_TESTS_SOLVER_TEST_UTIL_H_
#define COLOGNE_TESTS_SOLVER_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "solver/model.h"

namespace cologne::solver {

// True when compiled with ASan or TSan. Sanitizer instrumentation slows
// search nodes 10-50x, so wall-clock-budgeted assertions are skipped (their
// deterministic node-budget variants always run) and stress loops shrink
// their fixed work to fit the ctest timeout.
inline constexpr bool kSanitizerBuild =
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

// ACloud-shaped model: `vms` VMs on `hosts` hosts via 0/1 decision
// variables, exactly one host per VM, minimize the squared load imbalance.
inline std::unique_ptr<Model> MakeACloudModel(int vms, int hosts) {
  auto m = std::make_unique<Model>();
  std::vector<std::vector<IntVar>> v(static_cast<size_t>(vms));
  for (int i = 0; i < vms; ++i) {
    LinExpr one;
    for (int h = 0; h < hosts; ++h) {
      IntVar b = m->NewBool();
      m->MarkDecision(b);
      v[static_cast<size_t>(i)].push_back(b);
      one += LinExpr(b);
    }
    m->PostRel(one, Rel::kEq, LinExpr(1));
  }
  LinExpr obj;
  for (int h = 0; h < hosts; ++h) {
    LinExpr load;
    for (int i = 0; i < vms; ++i) {
      load += LinExpr::Term(10 + (i * 13) % 50,
                            v[static_cast<size_t>(i)][static_cast<size_t>(h)]);
    }
    obj += LinExpr(m->MakeSquare(load));
  }
  m->Minimize(obj);
  return m;
}

}  // namespace cologne::solver

#endif  // COLOGNE_TESTS_SOLVER_TEST_UTIL_H_

// Tests for the discrete-event simulator and the message network.
#include <gtest/gtest.h>

#include "net/fault_plan.h"
#include "net/network.h"
#include "net/simulator.h"

namespace cologne::net {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(1.0, [&] {
    times.push_back(sim.Now());
    sim.Schedule(0.5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PendingAndExecutedCounters) {
  Simulator sim;
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 2u);
}

// --- Simulator edge cases (ISSUE 3 satellite) --------------------------------

TEST(SimulatorEdgeTest, CancelOfAlreadyFiredEventIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(1.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
  sim.Cancel(id);  // already fired: must not underflow pending
  EXPECT_EQ(sim.pending(), 0u);
  // A later event is unaffected by the stale cancel.
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorEdgeTest, DoubleCancelDecrementsPendingOnce) {
  Simulator sim;
  EventId id = sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(id);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorEdgeTest, CancelSelfFromCallbackIsNoOp) {
  Simulator sim;
  EventId id = 0;
  int fired = 0;
  id = sim.Schedule(1.0, [&] {
    ++fired;
    sim.Cancel(id);  // cancelling the event currently executing
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorEdgeTest, ScheduleAtPastTimeClampsToNow) {
  Simulator sim;
  sim.Schedule(5.0, [] {});
  sim.Run();
  ASSERT_DOUBLE_EQ(sim.Now(), 5.0);
  double fired_at = -1;
  sim.ScheduleAt(2.0, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0) << "past-dated events fire at Now()";
  // Negative relative delays clamp the same way.
  fired_at = -1;
  sim.Schedule(-3.0, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorEdgeTest, EqualTimestampFifoAcrossNestedScheduling) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] {
    order.push_back(0);
    // Nested zero-delay events land at the same timestamp but after every
    // previously scheduled t=1 event (strict FIFO by sequence number).
    sim.Schedule(0.0, [&] { order.push_back(3); });
    sim.Schedule(0.0, [&] { order.push_back(4); });
  });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(1.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorEdgeTest, RunUntilDeliversEventsScheduledExactlyAtT) {
  Simulator sim;
  std::vector<int> fired;
  sim.Schedule(2.0, [&] {
    fired.push_back(0);
    // Scheduled *during* RunUntil(2.0) at exactly t=2: still delivered.
    sim.Schedule(0.0, [&] { fired.push_back(1); });
  });
  sim.Schedule(2.0 + 1e-9, [&] { fired.push_back(2); });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorEdgeTest, RunUntilNeverMovesClockBackwards) {
  Simulator sim;
  sim.Schedule(5.0, [] {});
  sim.Run();
  sim.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorEdgeTest, CancelledEventsAreSkippedByRunUntil) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Cancel(id);
  sim.RunUntil(1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

// --- Fault plans -------------------------------------------------------------

TEST(FaultPlanTest, WindowsAndPartitions) {
  FaultPlan plan;
  LinkFault f;
  f.a = 0;
  f.b = 1;
  f.down.push_back({2.0, 4.0, 0});
  f.loss.push_back({1.0, 5.0, 0.25});
  plan.links.push_back(f);
  PartitionFault part;
  part.group = {2};
  part.t0 = 3.0;
  part.t1 = 6.0;
  plan.partitions.push_back(part);

  const char* reason = nullptr;
  EXPECT_FALSE(plan.SeveredAt(0, 1, 1.9));
  EXPECT_TRUE(plan.SeveredAt(0, 1, 2.0, &reason));
  EXPECT_STREQ(reason, "link_down");
  EXPECT_TRUE(plan.SeveredAt(1, 0, 3.9)) << "endpoints are unordered";
  EXPECT_FALSE(plan.SeveredAt(0, 1, 4.0)) << "window is half-open";
  EXPECT_DOUBLE_EQ(plan.LossProbAt(0, 1, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.LossProbAt(0, 1, 5.0), 0.0);
  // Partition separates node 2 from everyone; 0-1 stays connected.
  EXPECT_TRUE(plan.SeveredAt(0, 2, 3.5, &reason));
  EXPECT_STREQ(reason, "partition");
  EXPECT_TRUE(plan.SeveredAt(2, 1, 3.5));
  EXPECT_FALSE(plan.SeveredAt(0, 1, 4.5))
      << "partition excludes links inside one side";
  EXPECT_FALSE(plan.SeveredAt(0, 2, 6.0));
}

TEST(FaultPlanTest, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 42;
  LinkFault f;
  f.a = 0;
  f.b = 3;
  f.down.push_back({1.25, 3.5, 0});
  f.loss.push_back({0.5, 10.0, 0.125});
  f.duplicate.push_back({2.0, 4.0, 0.0625});
  f.reorder.push_back({1.0, 9.0, 0.015625});
  plan.links.push_back(f);
  PartitionFault part;
  part.group = {1, 2};
  part.t0 = 5.5;
  part.t1 = 7.75;
  plan.partitions.push_back(part);
  CrashFault c;
  c.node = 2;
  c.t = 6.125;
  c.restart_t = 12.5;
  c.retain_warm_start = true;
  plan.crashes.push_back(c);

  std::string json = plan.ToJson();
  auto parsed = FaultPlan::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToJson(), json) << "canonical round trip";
  EXPECT_EQ(parsed.value().seed, 42u);
  ASSERT_EQ(parsed.value().crashes.size(), 1u);
  EXPECT_TRUE(parsed.value().crashes[0].retain_warm_start);
  EXPECT_DOUBLE_EQ(parsed.value().crashes[0].restart_t, 12.5);
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  std::vector<std::pair<NodeId, NodeId>> links{{0, 1}, {1, 2}, {0, 2}};
  FaultPlan a = FaultPlan::Random(7, 3, links);
  FaultPlan b = FaultPlan::Random(7, 3, links);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  FaultPlan c = FaultPlan::Random(8, 3, links);
  EXPECT_NE(a.ToJson(), c.ToJson()) << "different seeds, different plans";
}

TEST(NetworkFaultTest, DownWindowDropsAndCounts) {
  Simulator sim;
  Network net(&sim);
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  ASSERT_TRUE(net.AddLink(a, b).ok());
  FaultPlan plan;
  LinkFault f;
  f.a = a;
  f.b = b;
  f.down.push_back({0.0, 10.0, 0});
  plan.links.push_back(f);
  net.SetFaultPlan(plan);
  int got = 0;
  net.SetReceiver(b, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net.Send(a, b, m).ok());
  sim.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.StatsOf(a).messages_dropped, 1u);
  EXPECT_EQ(net.TotalDropped(), 1u);
  // After the window, delivery resumes.
  sim.Schedule(11.0, [] {});
  sim.Run();
  ASSERT_TRUE(net.Send(a, b, m).ok());
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST(NetworkFaultTest, ReliableMessagesBypassDrops) {
  Simulator sim;
  Network net(&sim);
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  ASSERT_TRUE(net.AddLink(a, b).ok());
  FaultPlan plan;
  LinkFault f;
  f.a = a;
  f.b = b;
  f.down.push_back({0.0, 10.0, 0});
  f.loss.push_back({0.0, 10.0, 1.0});
  plan.links.push_back(f);
  net.SetFaultPlan(plan);
  int got = 0;
  net.SetReceiver(b, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  m.reliable = true;
  ASSERT_TRUE(net.Send(a, b, m).ok());
  sim.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.TotalDropped(), 0u);
}

TEST(NetworkFaultTest, DuplicationDeliversTwiceInOrder) {
  Simulator sim;
  Network net(&sim);
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  ASSERT_TRUE(net.AddLink(a, b).ok());
  FaultPlan plan;
  LinkFault f;
  f.a = a;
  f.b = b;
  f.duplicate.push_back({0.0, 10.0, 1.0});
  plan.links.push_back(f);
  net.SetFaultPlan(plan);
  int got = 0;
  net.SetReceiver(b, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net.Send(a, b, m).ok());
  sim.Run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.StatsOf(b).messages_received, 2u);
}

TEST(MessageTest, WireSize) {
  Message m;
  m.table = "curVm";  // 5 chars
  m.row = {Value::Node(1), Value::Int(3), Value::Int(4)};
  // 20 header + 5 name + 1 sign + 5 + 9 + 9 payload.
  EXPECT_EQ(m.WireSize(), 20u + 5u + 1u + 5u + 9u + 9u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_) {
    a_ = net_.AddNode();
    b_ = net_.AddNode();
    c_ = net_.AddNode();
    EXPECT_TRUE(net_.AddLink(a_, b_).ok());
  }
  Simulator sim_;
  Network net_;
  NodeId a_, b_, c_;
};

TEST_F(NetworkTest, DeliversAlongLink) {
  Message got;
  net_.SetReceiver(b_, [&](NodeId, NodeId, const Message& m) { got = m; });
  Message m;
  m.table = "t";
  m.row = {Value::Int(7)};
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  sim_.Run();
  EXPECT_EQ(got.table, "t");
  ASSERT_EQ(got.row.size(), 1u);
  EXPECT_EQ(got.row[0].as_int(), 7);
}

TEST_F(NetworkTest, NoLinkRejected) {
  Message m;
  m.table = "t";
  Status s = net_.Send(a_, c_, m);
  EXPECT_FALSE(s.ok());
}

TEST_F(NetworkTest, SelfSendDeliversLocally) {
  int got = 0;
  net_.SetReceiver(a_, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net_.Send(a_, a_, m).ok());
  sim_.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 0u)
      << "self-delivery is not network traffic";
}

TEST_F(NetworkTest, LatencyAndSerializationDelay) {
  LinkConfig cfg;
  cfg.latency_s = 0.010;
  cfg.bandwidth_bps = 8000;  // 1000 bytes/s
  ASSERT_TRUE(net_.AddLink(a_, c_, cfg).ok());
  double delivered_at = -1;
  net_.SetReceiver(c_, [&](NodeId, NodeId, const Message&) {
    delivered_at = sim_.Now();
  });
  Message m;
  m.table = "xy";  // wire size 20 + 2 + 1 + 9 = 32 bytes -> 0.032 s at 1 kB/s
  m.row = {Value::Int(1)};
  ASSERT_TRUE(net_.Send(a_, c_, m).ok());
  sim_.Run();
  EXPECT_NEAR(delivered_at, 0.010 + 0.032, 1e-9);
}

TEST_F(NetworkTest, TrafficAccounting) {
  net_.SetReceiver(b_, [](NodeId, NodeId, const Message&) {});
  Message m;
  m.table = "t";
  m.row = {Value::Int(1)};
  size_t size = m.WireSize();
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  sim_.Run();
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 2u);
  EXPECT_EQ(net_.StatsOf(a_).bytes_sent, 2 * size);
  EXPECT_EQ(net_.StatsOf(b_).messages_received, 2u);
  EXPECT_EQ(net_.StatsOf(b_).bytes_received, 2 * size);
  net_.ResetStats();
  EXPECT_EQ(net_.StatsOf(a_).bytes_sent, 0u);
}

TEST_F(NetworkTest, DropProbabilityLosesMessages) {
  LinkConfig cfg;
  cfg.drop_prob = 1.0;
  ASSERT_TRUE(net_.AddLink(a_, c_, cfg).ok());
  int got = 0;
  net_.SetReceiver(c_, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net_.Send(a_, c_, m).ok());
  sim_.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 1u) << "sender still pays";
}

TEST_F(NetworkTest, NeighborsAndLinks) {
  ASSERT_TRUE(net_.AddLink(b_, c_).ok());
  EXPECT_EQ(net_.Neighbors(b_), (std::vector<NodeId>{a_, c_}));
  EXPECT_TRUE(net_.HasLink(b_, a_));
  EXPECT_FALSE(net_.HasLink(a_, c_));
  EXPECT_EQ(net_.Links().size(), 2u);
  EXPECT_FALSE(net_.AddLink(a_, a_).ok());
  EXPECT_FALSE(net_.AddLink(a_, 99).ok());
}

}  // namespace
}  // namespace cologne::net

// Tests for the discrete-event simulator and the message network.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/simulator.h"

namespace cologne::net {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(1.0, [&] {
    times.push_back(sim.Now());
    sim.Schedule(0.5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PendingAndExecutedCounters) {
  Simulator sim;
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(MessageTest, WireSize) {
  Message m;
  m.table = "curVm";  // 5 chars
  m.row = {Value::Node(1), Value::Int(3), Value::Int(4)};
  // 20 header + 5 name + 1 sign + 5 + 9 + 9 payload.
  EXPECT_EQ(m.WireSize(), 20u + 5u + 1u + 5u + 9u + 9u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_) {
    a_ = net_.AddNode();
    b_ = net_.AddNode();
    c_ = net_.AddNode();
    EXPECT_TRUE(net_.AddLink(a_, b_).ok());
  }
  Simulator sim_;
  Network net_;
  NodeId a_, b_, c_;
};

TEST_F(NetworkTest, DeliversAlongLink) {
  Message got;
  net_.SetReceiver(b_, [&](NodeId, NodeId, const Message& m) { got = m; });
  Message m;
  m.table = "t";
  m.row = {Value::Int(7)};
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  sim_.Run();
  EXPECT_EQ(got.table, "t");
  ASSERT_EQ(got.row.size(), 1u);
  EXPECT_EQ(got.row[0].as_int(), 7);
}

TEST_F(NetworkTest, NoLinkRejected) {
  Message m;
  m.table = "t";
  Status s = net_.Send(a_, c_, m);
  EXPECT_FALSE(s.ok());
}

TEST_F(NetworkTest, SelfSendDeliversLocally) {
  int got = 0;
  net_.SetReceiver(a_, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net_.Send(a_, a_, m).ok());
  sim_.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 0u)
      << "self-delivery is not network traffic";
}

TEST_F(NetworkTest, LatencyAndSerializationDelay) {
  LinkConfig cfg;
  cfg.latency_s = 0.010;
  cfg.bandwidth_bps = 8000;  // 1000 bytes/s
  ASSERT_TRUE(net_.AddLink(a_, c_, cfg).ok());
  double delivered_at = -1;
  net_.SetReceiver(c_, [&](NodeId, NodeId, const Message&) {
    delivered_at = sim_.Now();
  });
  Message m;
  m.table = "xy";  // wire size 20 + 2 + 1 + 9 = 32 bytes -> 0.032 s at 1 kB/s
  m.row = {Value::Int(1)};
  ASSERT_TRUE(net_.Send(a_, c_, m).ok());
  sim_.Run();
  EXPECT_NEAR(delivered_at, 0.010 + 0.032, 1e-9);
}

TEST_F(NetworkTest, TrafficAccounting) {
  net_.SetReceiver(b_, [](NodeId, NodeId, const Message&) {});
  Message m;
  m.table = "t";
  m.row = {Value::Int(1)};
  size_t size = m.WireSize();
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  ASSERT_TRUE(net_.Send(a_, b_, m).ok());
  sim_.Run();
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 2u);
  EXPECT_EQ(net_.StatsOf(a_).bytes_sent, 2 * size);
  EXPECT_EQ(net_.StatsOf(b_).messages_received, 2u);
  EXPECT_EQ(net_.StatsOf(b_).bytes_received, 2 * size);
  net_.ResetStats();
  EXPECT_EQ(net_.StatsOf(a_).bytes_sent, 0u);
}

TEST_F(NetworkTest, DropProbabilityLosesMessages) {
  LinkConfig cfg;
  cfg.drop_prob = 1.0;
  ASSERT_TRUE(net_.AddLink(a_, c_, cfg).ok());
  int got = 0;
  net_.SetReceiver(c_, [&](NodeId, NodeId, const Message&) { ++got; });
  Message m;
  m.table = "t";
  ASSERT_TRUE(net_.Send(a_, c_, m).ok());
  sim_.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.StatsOf(a_).messages_sent, 1u) << "sender still pays";
}

TEST_F(NetworkTest, NeighborsAndLinks) {
  ASSERT_TRUE(net_.AddLink(b_, c_).ok());
  EXPECT_EQ(net_.Neighbors(b_), (std::vector<NodeId>{a_, c_}));
  EXPECT_TRUE(net_.HasLink(b_, a_));
  EXPECT_FALSE(net_.HasLink(a_, c_));
  EXPECT_EQ(net_.Links().size(), 2u);
  EXPECT_FALSE(net_.AddLink(a_, a_).ok());
  EXPECT_FALSE(net_.AddLink(a_, 99).ok());
}

}  // namespace
}  // namespace cologne::net

// Golden-trace regression tests (ISSUE 3 satellite): small fixed-seed runs
// of the three scenario drivers — each under a small fault plan — are
// recorded as canonical traces and compared byte-for-byte against the files
// in tests/golden/ on every CI run.
//
// To regenerate after an intentional behavior change:
//   ./trace_golden_test --update-golden
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "apps/acloud.h"
#include "apps/followsun.h"
#include "apps/wireless.h"
#include "net/fault_plan.h"
#include "runtime/trace_replay.h"

namespace cologne::runtime {
namespace {

bool g_update_golden = false;

#ifndef COLOGNE_GOLDEN_DIR
#define COLOGNE_GOLDEN_DIR "tests/golden"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(COLOGNE_GOLDEN_DIR) + "/" + name + ".trace";
}

// Renders the identity fields of a parsed header for the refusal diff.
std::string HeaderIdentity(const TraceHeader& h) {
  return "program=" + h.program + " seed=" + std::to_string(h.seed) +
         " fault_plan=" + h.plan.ToJson();
}

void CompareOrUpdate(const TraceRecorder& trace, const std::string& name) {
  ASSERT_GT(trace.lines().size(), 1u) << name << ": trace is empty";
  std::string path = GoldenPath(name);
  if (g_update_golden) {
    // --update-golden exists to re-pin a trace after an intentional
    // *behavior* change of the same run. If the run identity (program,
    // seed, fault plan) changed, silently overwriting would swap the
    // scenario out from under the golden — refuse and show the diff.
    // Delete the golden file first if the identity change is intentional.
    auto old_lines = ReadTraceLines(path);
    if (old_lines.ok() && !old_lines.value().empty()) {
      auto old_header = ParseTraceHeader(old_lines.value()[0]);
      auto new_header = ParseTraceHeader(trace.lines()[0]);
      ASSERT_TRUE(new_header.ok()) << new_header.status().ToString();
      if (old_header.ok()) {
        std::string before = HeaderIdentity(old_header.value());
        std::string after = HeaderIdentity(new_header.value());
        ASSERT_EQ(before, after)
            << name << ": refusing --update-golden, run identity changed:\n"
            << "  golden: " << before << "\n  new:    " << after
            << "\n(delete " << path << " to record the new identity)";
      }
    }
    Status s = trace.WriteFile(path);
    ASSERT_TRUE(s.ok()) << s.ToString();
    printf("updated %s (%zu lines)\n", path.c_str(), trace.lines().size());
    return;
  }
  auto golden = ReadTraceLines(path);
  ASSERT_TRUE(golden.ok())
      << golden.status().ToString()
      << "\n(run ./trace_golden_test --update-golden to record)";
  EXPECT_EQ(DiffTraces(golden.value(), trace.lines()), "")
      << name << ": trace diverged from " << path
      << "\n(if the change is intentional, rerun with --update-golden)";
}

TEST(GoldenTraceTest, FollowTheSun) {
  apps::FtsConfig cfg;
  cfg.num_dcs = 3;
  cfg.capacity = 20;
  cfg.demand_hi = 5;
  cfg.solver_time_ms = 10000;  // generous cap: tiny models prove optimality in ms
  cfg.seed = 41;
  // One crash with restart plus a loss window: exercises drop, crash,
  // rejoin-replay, dedup, and reconcile trace events.
  net::LinkFault lf;
  lf.a = 0;
  lf.b = 1;
  lf.loss.push_back({2.0, 9.0, 0.3});
  cfg.fault_plan.seed = 41;
  cfg.fault_plan.links.push_back(lf);
  net::CrashFault crash;
  crash.node = 2;
  crash.t = 6.0;
  crash.restart_t = 12.0;
  cfg.fault_plan.crashes.push_back(crash);

  TraceRecorder trace;
  cfg.trace = &trace;
  apps::FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  CompareOrUpdate(trace, "followsun_small");
}

TEST(GoldenTraceTest, WirelessDistributed) {
  apps::WirelessConfig cfg;
  cfg.grid_w = 2;
  cfg.grid_h = 2;
  cfg.num_flows = 2;
  cfg.link_solve_ms = 10000;  // generous cap: tiny models prove optimality in ms
  cfg.seed = 43;
  net::LinkFault lf;
  lf.a = 0;
  lf.b = 1;
  lf.down.push_back({4.5, 8.0, 0});
  lf.duplicate.push_back({0.0, 20.0, 0.5});
  cfg.fault_plan.seed = 43;
  cfg.fault_plan.links.push_back(lf);

  TraceRecorder trace;
  cfg.trace = &trace;
  apps::WirelessScenario scenario(cfg);
  auto r = scenario.AssignChannels(apps::WirelessProtocol::kDistributed);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  CompareOrUpdate(trace, "wireless_small");
}

TEST(GoldenTraceTest, FollowTheSunReliableBatched) {
  // ISSUE 4 surface: reliable FIFO transport (sequenced sends, acks,
  // retransmissions after loss) plus batched multi-link solves (grouped
  // solve records) in one pinned trace.
  apps::FtsConfig cfg;
  cfg.num_dcs = 4;
  cfg.capacity = 25;
  cfg.demand_hi = 5;
  cfg.seed = 47;
  cfg.net_reliable = true;
  cfg.batch_links = true;
  cfg.link_loss_prob = 0.1;
  cfg.converge_sweeps = 1;  // keep the golden compact
  // Batched models are too wide for B&B to *prove* optimality within a
  // wall-clock cap on every CI machine, and a budget-dependent status
  // would leak into the trace. The iteration-capped LNS budget (unlimited
  // wall clock) is deterministic regardless of machine load.
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = 16;
  cfg.solver_time_ms = 0;

  TraceRecorder trace;
  cfg.trace = &trace;
  apps::FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().messages_dropped, 0u) << "loss should hit the wire";
  CompareOrUpdate(trace, "followsun_reliable");
}

TEST(GoldenTraceTest, FollowTheSunObsMetrics) {
  // ISSUE 6 surface: the ReliableBatched scenario with OBS_METRICS on —
  // per-round `metrics` snapshots and per-group solve provenance pinned
  // byte-for-byte. tools/explain's CI smoke queries this same golden.
  apps::FtsConfig cfg;
  cfg.num_dcs = 4;
  cfg.capacity = 25;
  cfg.demand_hi = 5;
  cfg.seed = 47;
  cfg.net_reliable = true;
  cfg.batch_links = true;
  cfg.link_loss_prob = 0.1;
  cfg.converge_sweeps = 1;
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = 16;
  cfg.solver_time_ms = 0;
  cfg.obs_metrics = true;
  // The golden embeds exact propagator-effort counters (solve.propagations,
  // prop.<kind>), which the event-typed engine reduces by design. Pin the
  // legacy reference mode so this trace stays byte-stable; search results
  // are identical either way.
  cfg.solver_naive_propagation = true;

  TraceRecorder trace;
  cfg.trace = &trace;
  apps::FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Observability must be additive: stripping the metrics lines and prov
  // fields must give back the exact followsun_reliable golden.
  bool saw_metrics = false, saw_prov = false;
  for (const std::string& line : trace.lines()) {
    if (line.find("\"ev\":\"metrics\"") != std::string::npos) {
      saw_metrics = true;
    }
    if (line.find("\"prov\":[") != std::string::npos) saw_prov = true;
  }
  EXPECT_TRUE(saw_metrics) << "no metrics snapshot landed in the trace";
  EXPECT_TRUE(saw_prov) << "no solve provenance landed in the trace";
  CompareOrUpdate(trace, "followsun_obs");
}

TEST(GoldenTraceTest, ACloudReplay) {
  apps::ACloudConfig cfg;
  cfg.num_dcs = 2;
  cfg.hosts_per_dc = 2;
  cfg.vms_per_host = 3;
  cfg.duration_hours = 0.5;
  cfg.interval_s = 600;
  cfg.solver_time_ms = 10000;  // generous cap: tiny models prove optimality in ms
  cfg.crash_dc = 1;
  cfg.crash_interval = 1;
  cfg.restart_interval = 2;

  TraceRecorder trace;
  trace.Header("acloud", cfg.seed, net::FaultPlan{});
  cfg.solve_trace = &trace;
  apps::ACloudScenario scenario(cfg);
  auto r = scenario.Run(apps::ACloudPolicy::kACloud);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  CompareOrUpdate(trace, "acloud_small");
}

}  // namespace
}  // namespace cologne::runtime

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      cologne::runtime::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}

// Reliable FIFO transport tests (ISSUE 4): retransmission across down
// windows, dup-ack fast retransmit, reorder-window FIFO reassembly,
// duplicate suppression, give-up bounding, and byte-identical traces with
// the reliable transport enabled.
#include <gtest/gtest.h>

#include <vector>

#include "apps/followsun.h"
#include "colog/planner.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/reliable_channel.h"
#include "net/simulator.h"
#include "runtime/system.h"
#include "runtime/trace_replay.h"

namespace cologne::net {
namespace {

// Two nodes, one 1 ms link, reliable transport on. Sends integer-tagged
// rows and records the receiver-side arrival order.
class ReliablePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(&sim_, /*seed=*/7);
    net_->SetReliableTransport(true);
    a_ = net_->AddNode();
    b_ = net_->AddNode();
    ASSERT_TRUE(net_->AddLink(a_, b_, link_).ok());
    net_->SetReceiver(b_, [this](NodeId, NodeId, const Message& msg) {
      received_.push_back(msg.row[0].as_int());
    });
  }

  void SendTagged(int64_t tag) {
    Message msg;
    msg.table = "m";
    msg.row = {Value::Int(tag)};
    msg.reliable = true;
    ASSERT_TRUE(net_->Send(a_, b_, std::move(msg)).ok());
  }

  std::vector<int64_t> Ascending(int64_t n) {
    std::vector<int64_t> out;
    for (int64_t i = 1; i <= n; ++i) out.push_back(i);
    return out;
  }

  Simulator sim_;
  LinkConfig link_;  // 1 ms latency, no loss by default
  std::unique_ptr<Network> net_;
  NodeId a_ = 0, b_ = 0;
  std::vector<int64_t> received_;
};

TEST_F(ReliablePairTest, FifoReassemblyUnderReorderJitter) {
  // A reorder window adds up to 80 ms of uniform extra delay per packet —
  // wildly out-of-order wire arrivals — yet the application must observe
  // the exact send order.
  FaultPlan plan;
  LinkFault lf;
  lf.a = a_;
  lf.b = b_;
  lf.reorder.push_back({0.0, 10.0, 0.08});
  plan.links.push_back(lf);
  net_->SetFaultPlan(plan);

  for (int64_t i = 1; i <= 25; ++i) SendTagged(i);
  sim_.Run();
  EXPECT_EQ(received_, Ascending(25)) << "FIFO order violated";
  EXPECT_GT(net_->channel().stats().reordered, 0u)
      << "jitter should actually have reordered something";
  EXPECT_EQ(net_->channel().StateOf(a_, b_).reorder_buffered, 0u);
}

TEST_F(ReliablePairTest, RetransmitAfterDownWindow) {
  // The link is dead for the first second; a send during the window is
  // dropped on the wire and must be recovered by RTO retransmission once
  // the window lifts.
  FaultPlan plan;
  LinkFault lf;
  lf.a = a_;
  lf.b = b_;
  lf.down.push_back({0.0, 1.0, 0});
  plan.links.push_back(lf);
  net_->SetFaultPlan(plan);

  sim_.Schedule(0.5, [this] { SendTagged(1); });
  sim_.Run();
  EXPECT_EQ(received_, Ascending(1));
  EXPECT_GT(net_->channel().stats().retransmits, 0u);
  EXPECT_GT(net_->StatsOf(a_).messages_dropped, 0u)
      << "the in-window transmissions were real wire losses";
  EXPECT_GE(sim_.Now(), 1.0) << "delivery cannot precede the window end";
  ReliableChannel::LinkState st = net_->channel().StateOf(a_, b_);
  EXPECT_EQ(st.in_flight, 0u) << "delivered packet must be acked";
  EXPECT_EQ(st.acked, 1u);
}

TEST_F(ReliablePairTest, DupAcksTriggerFastRetransmit) {
  // Kill exactly the first packet (total loss window around t=0), then send
  // four more after the window. Their out-of-order arrivals emit duplicate
  // cumulative acks, and the third dup ack must fast-retransmit the missing
  // packet well before the RTO timer fires.
  FaultPlan plan;
  LinkFault lf;
  lf.a = a_;
  lf.b = b_;
  lf.loss.push_back({0.0, 0.005, 1.0});
  plan.links.push_back(lf);
  net_->SetFaultPlan(plan);

  SendTagged(1);  // dropped on the wire
  sim_.Schedule(0.01, [this] {
    for (int64_t i = 2; i <= 5; ++i) SendTagged(i);
  });
  sim_.Run();
  EXPECT_EQ(received_, Ascending(5));
  const ChannelStats& st = net_->channel().stats();
  EXPECT_GE(st.fast_retransmits, 1u) << "dup acks must fast-retransmit";
  EXPECT_EQ(st.retransmits, 0u)
      << "fast retransmit should beat the RTO timer entirely";
  EXPECT_GE(st.reordered, 3u) << "packets 2..5 arrived ahead of the gap";
}

TEST_F(ReliablePairTest, DuplicatedDataIsSuppressedOnce) {
  // Every transmission is duplicated by the fault plan; the application
  // must still see each message exactly once, in order.
  FaultPlan plan;
  LinkFault lf;
  lf.a = a_;
  lf.b = b_;
  lf.duplicate.push_back({0.0, 10.0, 1.0});
  plan.links.push_back(lf);
  net_->SetFaultPlan(plan);

  for (int64_t i = 1; i <= 10; ++i) SendTagged(i);
  sim_.Run();
  EXPECT_EQ(received_, Ascending(10));
  EXPECT_GE(net_->channel().stats().dup_data, 10u);
}

TEST_F(ReliablePairTest, SustainedLossIsFullyRecovered) {
  // 30% uniform loss on data and acks alike: everything still arrives,
  // exactly once, in order.
  link_.drop_prob = 0.3;
  ASSERT_TRUE(net_->AddLink(a_, b_, link_).ok());  // re-add with loss
  for (int64_t i = 1; i <= 50; ++i) SendTagged(i);
  sim_.Run();
  EXPECT_EQ(received_, Ascending(50));
  EXPECT_GT(net_->channel().stats().retransmits +
                net_->channel().stats().fast_retransmits,
            0u);
}

TEST_F(ReliablePairTest, GiveUpBoundsRetriesOnBlackhole) {
  // A permanent blackhole (drop_prob 1) must not hang the simulation: the
  // attempt cap abandons the packet and the run terminates.
  ReliableConfig rc;
  rc.max_attempts = 3;
  rc.rto_initial_s = 0.01;
  net_->SetReliableConfig(rc);
  link_.drop_prob = 1.0;
  ASSERT_TRUE(net_->AddLink(a_, b_, link_).ok());
  SendTagged(1);
  sim_.Run();  // must terminate
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->channel().stats().gave_up, 1u);
  EXPECT_EQ(net_->channel().StateOf(a_, b_).in_flight, 0u);
}

TEST_F(ReliablePairTest, AbandonedPayloadSkipsInsteadOfWedging) {
  // A payload abandoned inside a long down-window must not wedge the FIFO
  // stream: its sequence slot degrades into a retransmitted @skip marker,
  // so once the window lifts the receiver advances past the hole and later
  // messages flow again.
  ReliableConfig rc;
  rc.max_attempts = 3;
  rc.rto_initial_s = 0.02;
  rc.rto_max_s = 0.1;
  net_->SetReliableConfig(rc);
  FaultPlan plan;
  LinkFault lf;
  lf.a = a_;
  lf.b = b_;
  lf.down.push_back({0.0, 0.3, 0});
  plan.links.push_back(lf);
  net_->SetFaultPlan(plan);

  SendTagged(1);  // exhausts its 3 attempts inside the window
  sim_.Schedule(0.6, [this] { SendTagged(2); });
  sim_.Run();
  EXPECT_EQ(received_, std::vector<int64_t>{2})
      << "payload 1 is lost, but the stream must keep delivering";
  EXPECT_EQ(net_->channel().stats().gave_up, 1u);
  ReliableChannel::LinkState st = net_->channel().StateOf(a_, b_);
  EXPECT_EQ(st.delivered, 2u)
      << "the skip marker must advance the receiver past the hole";
  EXPECT_EQ(st.in_flight, 0u);
}

TEST(ReliableMessageTest, SequencedWireSizeAndAckTable) {
  Message plain;
  plain.table = "m";
  Message sequenced = plain;
  sequenced.seq = 9;
  EXPECT_EQ(sequenced.WireSize(), plain.WireSize() + 8)
      << "sequence numbers cost 8 bytes on the wire";
  EXPECT_EQ(std::string(kAckTable), "@ack");
}

// The Colog `param NET_RELIABLE = 1` knob must reach the transport: every
// engine-derived tuple rides the channel (sequenced data + acks on the
// wire), end to end from program text to Network.
TEST(NetReliableKnobTest, ProgramKnobEnablesTransport) {
  auto compiled = colog::CompileColog(
      "param NET_RELIABLE = 1.\n"
      "table stock(X,I) keys(X,I).\n"
      "r1 mirror(@Y,X,I) <- link(@X,Y), stock(@X,I).\n");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::System sys(&prog, 2);
  ASSERT_TRUE(sys.Init().ok());
  ASSERT_TRUE(sys.AddLink(0, 1).ok());
  EXPECT_TRUE(sys.net_reliable());
  EXPECT_TRUE(sys.network().reliable_transport());
  auto N = [](NodeId n) { return Value::Node(n); };
  ASSERT_TRUE(sys.InsertFact(0, "link", {N(0), N(1)}).ok());
  ASSERT_TRUE(sys.InsertFact(0, "stock", {N(0), Value::Int(7)}).ok());
  sys.RunToQuiescence();
  EXPECT_EQ(sys.node(1).engine().GetTable("mirror")->size(), 1u);
  const ChannelStats& st = sys.network().channel().stats();
  EXPECT_GT(st.data_sent, 0u) << "tuples must have been sequenced";
  EXPECT_GT(st.acks_sent, 0u) << "deliveries must have been acknowledged";
}

// Determinism: identical (program, seed, loss, reliability) must be
// byte-identical — the RTO jitter and retransmission schedule are seeded.
TEST(ReliableTraceTest, ReliableRunsAreByteIdentical) {
  runtime::TraceRecorder ta, tb;
  for (runtime::TraceRecorder* t : {&ta, &tb}) {
    apps::FtsConfig cfg;
    cfg.num_dcs = 3;
    cfg.capacity = 20;
    cfg.demand_hi = 5;
    cfg.solver_time_ms = 5000;
    cfg.seed = 19;
    cfg.net_reliable = true;
    cfg.link_loss_prob = 0.2;
    cfg.batch_links = true;
    cfg.trace = t;
    apps::FollowTheSunScenario scenario(cfg);
    auto r = scenario.Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_GT(ta.lines().size(), 10u);
  EXPECT_EQ(runtime::DiffTraces(ta.lines(), tb.lines()), "");
}

}  // namespace
}  // namespace cologne::net

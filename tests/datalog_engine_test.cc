// Engine tests: incremental joins, aggregates, deletions, recursion,
// keyed replacement ("update rules"), and distributed routing between two
// engines.
#include "datalog/engine.h"

#include <gtest/gtest.h>

namespace cologne::datalog {
namespace {

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

TableSchema Schema(const std::string& name, int arity,
                   std::vector<int> keys = {}, int loc = -1) {
  TableSchema s;
  s.name = name;
  for (int i = 0; i < arity; ++i) s.attrs.push_back("A" + std::to_string(i));
  s.key_cols = std::move(keys);
  s.loc_col = loc;
  return s;
}

// h(X,Z) <- a(X,Y), b(Y,Z).
RuleIR JoinRule() {
  RuleIR r;
  r.label = "j";
  r.head = {"h", {TermIR::Slot(0), TermIR::Slot(2)}};
  r.body.push_back({"a", {TermIR::Slot(0), TermIR::Slot(1)}});
  r.body.push_back({"b", {TermIR::Slot(1), TermIR::Slot(2)}});
  r.trigger = {1, 1};
  r.num_slots = 3;
  return r;
}

class EngineJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(e_.DeclareTable(Schema("a", 2)).ok());
    ASSERT_TRUE(e_.DeclareTable(Schema("b", 2)).ok());
    ASSERT_TRUE(e_.DeclareTable(Schema("h", 2)).ok());
    ASSERT_TRUE(e_.AddRule(JoinRule()).ok());
  }
  Engine e_;
};

TEST_F(EngineJoinTest, JoinDerivesOnInsert) {
  ASSERT_TRUE(e_.InsertFact("a", R({1, 2})).ok());
  ASSERT_TRUE(e_.InsertFact("b", R({2, 3})).ok());
  EXPECT_TRUE(e_.GetTable("h")->Contains(R({1, 3})));
}

TEST_F(EngineJoinTest, JoinFiresFromEitherSide) {
  ASSERT_TRUE(e_.InsertFact("b", R({2, 3})).ok());
  ASSERT_TRUE(e_.InsertFact("a", R({1, 2})).ok());
  EXPECT_TRUE(e_.GetTable("h")->Contains(R({1, 3})));
}

TEST_F(EngineJoinTest, NoJoinOnMismatch) {
  ASSERT_TRUE(e_.InsertFact("a", R({1, 2})).ok());
  ASSERT_TRUE(e_.InsertFact("b", R({9, 3})).ok());
  EXPECT_EQ(e_.GetTable("h")->size(), 0u);
}

TEST_F(EngineJoinTest, DeletionRetractsDerivation) {
  ASSERT_TRUE(e_.InsertFact("a", R({1, 2})).ok());
  ASSERT_TRUE(e_.InsertFact("b", R({2, 3})).ok());
  ASSERT_TRUE(e_.DeleteFact("b", R({2, 3})).ok());
  EXPECT_FALSE(e_.GetTable("h")->Contains(R({1, 3})));
  EXPECT_EQ(e_.GetTable("h")->size(), 0u);
}

TEST_F(EngineJoinTest, MultipleDerivationsSurviveSingleRetraction) {
  // h(1,3) via y=2 and via y=4.
  ASSERT_TRUE(e_.InsertFact("a", R({1, 2})).ok());
  ASSERT_TRUE(e_.InsertFact("a", R({1, 4})).ok());
  ASSERT_TRUE(e_.InsertFact("b", R({2, 3})).ok());
  ASSERT_TRUE(e_.InsertFact("b", R({4, 3})).ok());
  ASSERT_TRUE(e_.DeleteFact("b", R({2, 3})).ok());
  EXPECT_TRUE(e_.GetTable("h")->Contains(R({1, 3})))
      << "second derivation path must keep the row alive";
  ASSERT_TRUE(e_.DeleteFact("b", R({4, 3})).ok());
  EXPECT_FALSE(e_.GetTable("h")->Contains(R({1, 3})));
}

TEST(EngineTest, SelfJoinInsertDeleteBalances) {
  // p(X,Z) <- e(X,Y), e(Y,Z): inserting then deleting the same fact must
  // leave derived state empty (the classic counting-IVM self-join trap).
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("e", 2)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("p", 2)).ok());
  RuleIR r;
  r.label = "sj";
  r.head = {"p", {TermIR::Slot(0), TermIR::Slot(2)}};
  r.body.push_back({"e", {TermIR::Slot(0), TermIR::Slot(1)}});
  r.body.push_back({"e", {TermIR::Slot(1), TermIR::Slot(2)}});
  r.trigger = {1, 1};
  r.num_slots = 3;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());

  ASSERT_TRUE(e.InsertFact("e", R({1, 1})).ok());  // self-loop: p(1,1) twice
  EXPECT_TRUE(e.GetTable("p")->Contains(R({1, 1})));
  ASSERT_TRUE(e.DeleteFact("e", R({1, 1})).ok());
  EXPECT_FALSE(e.GetTable("p")->Contains(R({1, 1})))
      << "derivation counts must retract symmetrically";
  EXPECT_EQ(e.GetTable("p")->size(), 0u);
}

TEST(EngineTest, SelectionFiltersRows) {
  // big(X) <- n(X), X > 10.
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("n", 1)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("big", 1)).ok());
  RuleIR r;
  r.label = "sel";
  r.head = {"big", {TermIR::Slot(0)}};
  r.body.push_back({"n", {TermIR::Slot(0)}});
  r.sels.push_back(SelIR{Expr::Binary(ExprOp::kGt, Expr::Slot(0),
                                      Expr::Const(Value::Int(10)))});
  r.trigger = {1};
  r.num_slots = 1;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());
  ASSERT_TRUE(e.InsertFact("n", R({5})).ok());
  ASSERT_TRUE(e.InsertFact("n", R({15})).ok());
  EXPECT_FALSE(e.GetTable("big")->Contains(R({5})));
  EXPECT_TRUE(e.GetTable("big")->Contains(R({15})));
}

TEST(EngineTest, AssignmentComputesHeadValue) {
  // out(X,Y) <- in(X), Y := X*2+1.
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("in", 1)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("out", 2)).ok());
  RuleIR r;
  r.label = "asg";
  r.head = {"out", {TermIR::Slot(0), TermIR::Slot(1)}};
  r.body.push_back({"in", {TermIR::Slot(0)}});
  r.assigns.push_back(AssignIR{
      1, Expr::Binary(ExprOp::kAdd,
                      Expr::Binary(ExprOp::kMul, Expr::Slot(0),
                                   Expr::Const(Value::Int(2))),
                      Expr::Const(Value::Int(1)))});
  r.trigger = {1};
  r.num_slots = 2;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());
  ASSERT_TRUE(e.InsertFact("in", R({4})).ok());
  EXPECT_TRUE(e.GetTable("out")->Contains(R({4, 9})));
}

TEST(EngineTest, TransitiveClosureRecursion) {
  // path(X,Y) <- edge(X,Y).  path(X,Z) <- edge(X,Y), path(Y,Z).
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("edge", 2)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("path", 2)).ok());
  RuleIR base;
  base.label = "b";
  base.head = {"path", {TermIR::Slot(0), TermIR::Slot(1)}};
  base.body.push_back({"edge", {TermIR::Slot(0), TermIR::Slot(1)}});
  base.trigger = {1};
  base.num_slots = 2;
  ASSERT_TRUE(e.AddRule(std::move(base)).ok());
  RuleIR rec;
  rec.label = "r";
  rec.head = {"path", {TermIR::Slot(0), TermIR::Slot(2)}};
  rec.body.push_back({"edge", {TermIR::Slot(0), TermIR::Slot(1)}});
  rec.body.push_back({"path", {TermIR::Slot(1), TermIR::Slot(2)}});
  rec.trigger = {1, 1};
  rec.num_slots = 3;
  ASSERT_TRUE(e.AddRule(std::move(rec)).ok());

  ASSERT_TRUE(e.InsertFact("edge", R({1, 2})).ok());
  ASSERT_TRUE(e.InsertFact("edge", R({2, 3})).ok());
  ASSERT_TRUE(e.InsertFact("edge", R({3, 4})).ok());
  EXPECT_TRUE(e.GetTable("path")->Contains(R({1, 4})));
  EXPECT_EQ(e.GetTable("path")->size(), 6u);  // all ordered pairs i<j
}

TEST(EngineTest, SumAggregateGroupsAndUpdates) {
  // total(G, SUM<V>) <- item(G, V).
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("item", 2)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("total", 2)).ok());
  RuleIR r;
  r.label = "agg";
  r.head = {"total", {TermIR::Slot(0), TermIR::Slot(1)}};
  r.agg = AggIR{AggKind::kSum, 1, 1};
  r.body.push_back({"item", {TermIR::Slot(0), TermIR::Slot(1)}});
  r.trigger = {1};
  r.num_slots = 2;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());

  ASSERT_TRUE(e.InsertFact("item", R({1, 10})).ok());
  ASSERT_TRUE(e.InsertFact("item", R({1, 5})).ok());
  ASSERT_TRUE(e.InsertFact("item", R({2, 7})).ok());
  EXPECT_TRUE(e.GetTable("total")->Contains(R({1, 15})));
  EXPECT_TRUE(e.GetTable("total")->Contains(R({2, 7})));

  // Update: retract one item; the aggregate row must be replaced.
  ASSERT_TRUE(e.DeleteFact("item", R({1, 5})).ok());
  EXPECT_TRUE(e.GetTable("total")->Contains(R({1, 10})));
  EXPECT_FALSE(e.GetTable("total")->Contains(R({1, 15})));

  // Emptying a group removes its aggregate row entirely.
  ASSERT_TRUE(e.DeleteFact("item", R({2, 7})).ok());
  EXPECT_EQ(e.GetTable("total")->Probe({0}, R({2})).size(), 0u);
}

TEST(EngineTest, GlobalAggregateWithoutGroup) {
  // count(COUNT<X>) <- n(X).
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("n", 1)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("cnt", 1)).ok());
  RuleIR r;
  r.label = "cnt";
  r.head = {"cnt", {TermIR::Slot(0)}};
  r.agg = AggIR{AggKind::kCount, 0, 0};
  r.body.push_back({"n", {TermIR::Slot(0)}});
  r.trigger = {1};
  r.num_slots = 1;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());
  ASSERT_TRUE(e.InsertFact("n", R({4})).ok());
  ASSERT_TRUE(e.InsertFact("n", R({9})).ok());
  EXPECT_TRUE(e.GetTable("cnt")->Contains(R({2})));
}

TEST(EngineTest, KeyedHeadReplacesOnUpdateRule) {
  // state(K,V') <- delta(K,D), state(K,V), V' := V+D — the Follow-the-Sun r3
  // pattern: keyed head, body atom on the head table is not a trigger.
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("delta", 2)).ok());
  ASSERT_TRUE(e.DeclareTable(Schema("state", 2, {0})).ok());
  RuleIR r;
  r.label = "upd";
  r.head = {"state", {TermIR::Slot(0), TermIR::Slot(3)}};
  r.body.push_back({"delta", {TermIR::Slot(0), TermIR::Slot(1)}});
  r.body.push_back({"state", {TermIR::Slot(0), TermIR::Slot(2)}});
  r.assigns.push_back(AssignIR{
      3, Expr::Binary(ExprOp::kAdd, Expr::Slot(2), Expr::Slot(1))});
  r.trigger = {1, 0};  // do not re-fire on our own output
  r.num_slots = 4;
  ASSERT_TRUE(e.AddRule(std::move(r)).ok());

  ASSERT_TRUE(e.InsertFact("state", R({1, 100})).ok());
  ASSERT_TRUE(e.InsertFact("delta", R({1, 5})).ok());
  EXPECT_TRUE(e.GetTable("state")->Contains(R({1, 105})));
  EXPECT_FALSE(e.GetTable("state")->Contains(R({1, 100})))
      << "keyed insert must displace the old row";
  EXPECT_EQ(e.GetTable("state")->size(), 1u);

  ASSERT_TRUE(e.InsertFact("delta", R({1, -5})).ok());
  EXPECT_TRUE(e.GetTable("state")->Contains(R({1, 100})));
}

TEST(EngineTest, WatcherSeesVisibilityChanges) {
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("t", 1)).ok());
  std::vector<std::pair<int64_t, int>> seen;
  e.AddWatcher("t", [&](const Row& row, int sign) {
    seen.push_back({row[0].as_int(), sign});
  });
  ASSERT_TRUE(e.InsertFact("t", R({1})).ok());
  ASSERT_TRUE(e.InsertFact("t", R({1})).ok());  // no transition
  ASSERT_TRUE(e.DeleteFact("t", R({1})).ok());  // no transition
  ASSERT_TRUE(e.DeleteFact("t", R({1})).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<int64_t, int>{1, +1}));
  EXPECT_EQ(seen[1], (std::pair<int64_t, int>{1, -1}));
}

TEST(EngineTest, RemoteTuplesGoToSender) {
  // Two engines, node 0 and node 1; rule at node 0 derives a head located
  // at @1, which must arrive in engine 1's table.
  Engine e0(0), e1(1);
  TableSchema in = Schema("in", 2, {}, 0);    // in(@L, X)
  TableSchema out = Schema("out", 2, {}, 0);  // out(@L, X)
  for (Engine* e : {&e0, &e1}) {
    ASSERT_TRUE(e->DeclareTable(in).ok());
    ASSERT_TRUE(e->DeclareTable(out).ok());
    RuleIR r;
    r.label = "fwd";  // out(@Y, X) <- in(@X2, ...) pattern: ship to slot 1
    r.head = {"out", {TermIR::Slot(1), TermIR::Slot(0)}};
    r.body.push_back({"in", {TermIR::Slot(0), TermIR::Slot(1)}});
    r.trigger = {1};
    r.num_slots = 2;
    ASSERT_TRUE(e->AddRule(std::move(r)).ok());
  }
  // Wire engine 0's sender straight into engine 1.
  e0.SetSender([&](NodeId dest, const std::string& table, const Row& row,
                   int sign) {
    ASSERT_EQ(dest, 1);
    ASSERT_TRUE(e1.Apply(table, row, sign).ok());
    ASSERT_TRUE(e1.Flush().ok());
  });
  // in(@0, 1): head out(@1, @0) routes to node 1.
  Row fact{Value::Node(0), Value::Node(1)};
  ASSERT_TRUE(e0.InsertFact("in", fact).ok());
  Row expect{Value::Node(1), Value::Node(0)};
  EXPECT_TRUE(e1.GetTable("out")->Contains(expect));
  EXPECT_EQ(e0.GetTable("out")->size(), 0u);
  EXPECT_EQ(e0.stats().tuples_sent, 1u);
}

TEST(EngineTest, ArityMismatchRejected) {
  Engine e;
  ASSERT_TRUE(e.DeclareTable(Schema("t", 2)).ok());
  Status s = e.Apply("t", R({1}), +1);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, UnknownTableRejected) {
  Engine e;
  EXPECT_FALSE(e.Apply("nope", R({1}), +1).ok());
  RuleIR r;
  r.head = {"nope", {TermIR::Slot(0)}};
  r.trigger = {};
  EXPECT_FALSE(e.AddRule(std::move(r)).ok());
}

}  // namespace
}  // namespace cologne::datalog

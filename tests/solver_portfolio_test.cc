// Tests for the concurrent search backends (solver/portfolio.{h,cc}):
// single-worker determinism against the sequential LNS backend,
// cancel-on-optimal racing, equal-budget quality against the best single
// backend, cooperative cancellation from outside, and a shared-incumbent
// stress loop meant to run under TSan (the CI thread-sanitizer job).
#include "solver/portfolio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "solver/context_cache.h"
#include "solver/model.h"
#include "solver/search_backend.h"
#include "solver/search_internal.h"
#include "solver/sync.h"
#include "solver_test_util.h"

namespace cologne::solver {
namespace {

// Every VM placed on exactly one host in the first vms*hosts variables.
void ExpectValidPlacement(const Solution& s, int vms, int hosts) {
  for (int i = 0; i < vms; ++i) {
    int64_t placed = 0;
    for (int h = 0; h < hosts; ++h) {
      placed += s.values[static_cast<size_t>(i * hosts + h)];
    }
    EXPECT_EQ(placed, 1) << "vm " << i;
  }
}

TEST(ParallelLnsTest, SingleWorkerReproducesSequentialLnsBitForBit) {
  // The PR-1 determinism contract: workers=1 with a fixed seed and an
  // iteration cap (no wall clock involved) must reproduce the sequential
  // LNS backend exactly — values, objective, and node counts.
  auto run = [](Backend backend) {
    auto m = MakeACloudModel(10, 4);
    Model::Options o;
    o.backend = backend;
    o.num_workers = 1;
    o.time_limit_ms = 0;
    o.max_iterations = 50;
    o.seed = 42;
    return m->Solve(o);
  };
  Solution parallel = run(Backend::kParallelLns);
  Solution sequential = run(Backend::kLns);
  ASSERT_TRUE(parallel.has_solution());
  ASSERT_TRUE(sequential.has_solution());
  EXPECT_EQ(parallel.values, sequential.values);
  EXPECT_EQ(parallel.objective, sequential.objective);
  EXPECT_EQ(parallel.stats.nodes, sequential.stats.nodes);
  EXPECT_EQ(parallel.stats.iterations, sequential.stats.iterations);
  EXPECT_TRUE(parallel.stats.per_worker.empty())
      << "single-worker runs must not report race stats";
}

TEST(PortfolioTest, ProvesOptimalityAndCancelsTheRace) {
  // A model small enough for the complete B&B worker to exhaust in
  // milliseconds: the race must end with a proof and the optimum of the
  // sequential reference. Deterministic budgets (no wall clock) force the
  // full 4-way race even on a single-core runner; the generous per-worker
  // node cap is only reachable if cancel-on-optimal failed.
  auto reference = MakeACloudModel(5, 3);
  Model::Options ro;
  ro.time_limit_ms = 10'000;
  Solution ref = reference->Solve(ro);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);

  auto m = MakeACloudModel(5, 3);
  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 4;
  o.time_limit_ms = 0;
  o.node_limit = 500'000;
  Solution s = m->Solve(o);
  ASSERT_TRUE(s.has_solution());
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, ref.objective);
  ASSERT_EQ(s.stats.per_worker.size(), 4u);
}

TEST(PortfolioTest, InfeasibleModelProvenInfeasible) {
  Model m;
  IntVar x = m.NewInt(0, 5);
  m.MarkDecision(x);
  m.PostRel(LinExpr(x), Rel::kGt, LinExpr(10));
  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 3;
  o.time_limit_ms = 0;
  o.node_limit = 10'000;
  Solution s = m.Solve(o);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(PortfolioTest, EqualBudgetQualityAtLeastBestSingleBackend) {
  // The acceptance bar: at an equal per-worker budget with >= 4 workers the
  // portfolio's median incumbent must not lose to the best sequential
  // backend's median. Budgets are node counts, not wall clock, so the
  // comparison survives sanitizer slowdowns and loaded CI runners (the
  // repo-wide rule for cross-backend quality assertions); medians over three
  // seeds absorb single-walk luck.
  if (kSanitizerBuild) {
    GTEST_SKIP() << "quality medians are enforced by the Release CI job";
  }
  const uint64_t node_budget = 4000;
  const int vms = 28, hosts = 4;
  std::vector<int64_t> bnb_objs, lns_objs, portfolio_objs;
  for (uint64_t seed : {7u, 42u, 0x5EEDu}) {
    Model::Options base;
    base.time_limit_ms = 0;
    base.node_limit = node_budget;
    base.seed = seed;
    Solution bnb = MakeACloudModel(vms, hosts)->Solve(base);

    Model::Options lo = base;
    lo.backend = Backend::kLns;
    Solution lns = MakeACloudModel(vms, hosts)->Solve(lo);

    Model::Options po = base;
    po.backend = Backend::kPortfolio;
    po.num_workers = 4;
    Solution portfolio = MakeACloudModel(vms, hosts)->Solve(po);

    ASSERT_TRUE(bnb.has_solution());
    ASSERT_TRUE(lns.has_solution());
    ASSERT_TRUE(portfolio.has_solution());
    ExpectValidPlacement(portfolio, vms, hosts);
    bnb_objs.push_back(bnb.objective);
    lns_objs.push_back(lns.objective);
    portfolio_objs.push_back(portfolio.objective);
  }
  auto median = [](std::vector<int64_t> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  const int64_t best_single = std::min(median(bnb_objs), median(lns_objs));
  EXPECT_LE(median(portfolio_objs), best_single + best_single / 100);
}

TEST(PortfolioTest, ExternalCancelTokenStopsTheRace) {
  // A cancel token supplied through Model::Options chains into the race's
  // internal token: cancelling it mid-solve must end a long solve early.
  auto m = MakeACloudModel(28, 4);
  CancelToken cancel;
  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 2;
  o.time_limit_ms = 30'000;
  o.cancel = &cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.Cancel();
  });
  Solution s = m->Solve(o);
  canceller.join();
  EXPECT_LT(s.stats.wall_ms, 15'000)
      << "external cancellation must cut the 30 s budget short";
  // Under sanitizer slowdown the cancel can land before any worker finishes
  // its first-solution dive, so a missing incumbent is a legal outcome; what
  // must hold is the early return and an honest status.
  if (s.has_solution()) {
    EXPECT_EQ(s.status, SolveStatus::kFeasible);
  } else {
    EXPECT_EQ(s.status, SolveStatus::kUnknown);
  }
}

TEST(ParallelLnsTest, SharedIncumbentStressLoop) {
  // Race many walks on a model with plenty of improving neighborhoods and
  // repeat, so publications and adoptions interleave heavily — the workload
  // the CI TSan job uses to exercise IncumbentStore/CancelToken. Node
  // budgets instead of a wall clock: all 8 threads really race (and finish)
  // regardless of core count or sanitizer slowdown, with smaller budgets
  // under sanitizers so the fixed work fits the ctest timeout.
  const int vms = 16, hosts = 4;
  const int rounds = kSanitizerBuild ? 2 : 4;
  for (int round = 0; round < rounds; ++round) {
    auto m = MakeACloudModel(vms, hosts);
    Model::Options o;
    o.backend = Backend::kParallelLns;
    o.num_workers = 8;
    o.time_limit_ms = 0;
    o.node_limit = kSanitizerBuild ? 600 : 2500;
    o.seed = 0x5EED + static_cast<uint64_t>(round);
    Solution s = m->Solve(o);
    ASSERT_TRUE(s.has_solution()) << "round " << round;
    ExpectValidPlacement(s, vms, hosts);
    ASSERT_EQ(s.stats.per_worker.size(), 8u);
    // The winner flag marks exactly one worker, and the reported objective
    // must be consistent with the values it points at.
    int winners = 0;
    for (const WorkerSolveStats& w : s.stats.per_worker) winners += w.winner;
    EXPECT_EQ(winners, 1) << "round " << round;
  }
}

TEST(ParallelLnsTest, QualityNotWorseThanSequentialLnsAtEqualBudget) {
  // Same equal-per-worker-budget form as the portfolio test: node budgets
  // and a median over three seeds keep it deterministic.
  if (kSanitizerBuild) {
    GTEST_SKIP() << "quality medians are enforced by the Release CI job";
  }
  const uint64_t node_budget = 4000;
  const int vms = 28, hosts = 4;
  std::vector<int64_t> single_objs, parallel_objs;
  for (uint64_t seed : {7u, 42u, 0x5EEDu}) {
    Model::Options lo;
    lo.backend = Backend::kLns;
    lo.time_limit_ms = 0;
    lo.node_limit = node_budget;
    lo.seed = seed;
    Solution single = MakeACloudModel(vms, hosts)->Solve(lo);

    Model::Options po = lo;
    po.backend = Backend::kParallelLns;
    po.num_workers = 4;
    Solution parallel = MakeACloudModel(vms, hosts)->Solve(po);

    ASSERT_TRUE(single.has_solution());
    ASSERT_TRUE(parallel.has_solution());
    single_objs.push_back(single.objective);
    parallel_objs.push_back(parallel.objective);
  }
  auto median = [](std::vector<int64_t> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  const int64_t single_med = median(single_objs);
  EXPECT_LE(median(parallel_objs), single_med + single_med / 100);
}

TEST(BackendFactoryTest, ConcurrentBackendNamesRoundTrip) {
  EXPECT_STREQ(MakeSearchBackend(Backend::kPortfolio)->name(), "portfolio");
  EXPECT_STREQ(MakeSearchBackend(Backend::kParallelLns)->name(),
               "parallel_lns");
  Backend b;
  ASSERT_TRUE(ParseBackend("portfolio", &b));
  EXPECT_EQ(b, Backend::kPortfolio);
  ASSERT_TRUE(ParseBackend("parallel_lns", &b));
  EXPECT_EQ(b, Backend::kParallelLns);
}

TEST(SyncTest, IncumbentStoreKeepsTheBestAndMarksTheWinner) {
  IncumbentStore store(/*minimize=*/true, /*num_workers=*/3);
  EXPECT_TRUE(store.Offer(10, {1, 2}, 0));
  EXPECT_FALSE(store.Offer(12, {9, 9}, 1)) << "worse offers are rejected";
  EXPECT_TRUE(store.Offer(7, {3, 4}, 2));

  int64_t bound = 0;
  ASSERT_TRUE(store.BestObjective(&bound));
  EXPECT_EQ(bound, 7);

  int winner = -1;
  int64_t obj = 0;
  std::vector<int64_t> values;
  ASSERT_TRUE(store.Snapshot(&obj, &values, &winner));
  EXPECT_EQ(obj, 7);
  EXPECT_EQ(values, (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(winner, 2);
  EXPECT_EQ(store.mark(2).improvements, 1u);
  EXPECT_EQ(store.mark(1).improvements, 0u);

  // Adoption: better shared incumbent copied out once per version.
  uint64_t seen = 0;
  ASSERT_TRUE(store.AdoptIfBetter(true, 9, &seen, &obj, &values));
  EXPECT_EQ(obj, 7);
  EXPECT_FALSE(store.AdoptIfBetter(true, 9, &seen, &obj, &values))
      << "unchanged version is skipped";
}

TEST(SyncTest, CancelTokenChainsToParent) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(SyncTest, SubproblemQueueIsFifoAndCounts) {
  SubproblemQueue q;
  for (int i = 0; i < 3; ++i) {
    Subproblem sp;
    sp.assignment = {{i, i * 10}};
    sp.have_bound = true;
    sp.bound = 100 + i;
    q.Push(std::move(sp));
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pushed(), 3u);
  Subproblem out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.Steal(&out)) << "i=" << i;
    ASSERT_EQ(out.assignment.size(), 1u);
    EXPECT_EQ(out.assignment[0].first, i) << "steals must be FIFO";
    EXPECT_EQ(out.bound, 100 + i);
  }
  EXPECT_FALSE(q.Steal(&out)) << "drained queue";
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pushed(), 3u);
  EXPECT_EQ(q.steals(), 3u);
}

TEST(SyncTest, SubproblemQueueConcurrentStealHammer) {
  // 8 threads drain a closed queue (the exact shape SubproblemSolve uses:
  // all pushes happen before any steal). Every subproblem must be stolen
  // exactly once — the TSan job turns any lock slip into a hard failure.
  constexpr int kItems = 512;
  constexpr int kThreads = 8;
  SubproblemQueue q;
  for (int i = 0; i < kItems; ++i) {
    Subproblem sp;
    sp.assignment = {{0, i}};
    q.Push(std::move(sp));
  }
  std::vector<std::vector<int64_t>> stolen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&q, &stolen, t] {
      Subproblem sp;
      while (q.Steal(&sp)) stolen[static_cast<size_t>(t)].push_back(
          sp.assignment[0].second);
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<int64_t> all;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(all[static_cast<size_t>(i)], i) << "lost or duplicated steal";
  }
  EXPECT_EQ(q.steals(), static_cast<uint64_t>(kItems));
}

TEST(SubproblemSolveTest, ProvesOptimalityMatchingSequentialReference) {
  // Subproblem mode must keep the completeness contract: on a model the
  // sequential B&B exhausts, the partitioned parallel run must prove the
  // same optimum (the frontier plus the stolen subtrees cover the tree).
  auto reference = MakeACloudModel(6, 3);
  Model::Options ro;
  ro.time_limit_ms = 0;
  Solution ref = reference->Solve(ro);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);

  auto m = MakeACloudModel(6, 3);
  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 4;
  o.subproblems = 8;
  o.time_limit_ms = 0;
  Solution s = m->Solve(o);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, ref.objective);
  ExpectValidPlacement(s, 6, 3);
  EXPECT_GE(s.stats.subproblems, 8u);
  EXPECT_EQ(s.stats.steals, s.stats.subproblems)
      << "a closed queue must be fully drained when the solve completes";
  ASSERT_EQ(s.stats.per_worker.size(), 5u) << "master + 4 stealing workers";
}

TEST(SubproblemSolveTest, EightWorkerStealStressLoop) {
  // The TSan workload for the subproblem queue + shared incumbent + private
  // per-worker caches: 8 workers drain a wide frontier repeatedly. Node
  // budgets, not wall clock, so the fixed work fits sanitizer slowdowns.
  const int rounds = kSanitizerBuild ? 2 : 4;
  for (int round = 0; round < rounds; ++round) {
    auto m = MakeACloudModel(12, 4);
    ContextCache cache;
    Model::Options o;
    o.backend = Backend::kPortfolio;
    o.num_workers = 8;
    o.subproblems = 32;
    o.context_cache = &cache;
    o.time_limit_ms = 0;
    o.node_limit = kSanitizerBuild ? 4'000 : 20'000;
    o.seed = 0x5EED + static_cast<uint64_t>(round);
    Solution s = m->Solve(o);
    ASSERT_TRUE(s.has_solution()) << "round " << round;
    ExpectValidPlacement(s, 12, 4);
    EXPECT_GT(s.stats.subproblems, 0u) << "round " << round;
    ASSERT_EQ(s.stats.per_worker.size(), 9u) << "round " << round;
    // An incomplete run (node limit) must not claim a proof.
    if (s.stats.steals < s.stats.subproblems) {
      EXPECT_EQ(s.status, SolveStatus::kFeasible) << "round " << round;
    }
  }
}

TEST(SubproblemSolveTest, CollapsedSubproblemIsExhaustedNotTerminal) {
  // Regression: a subproblem whose replayed prefix propagates to a full
  // assignment at dive entry makes Dive return kFirstSolution even on an
  // optimizing model. A worker once treated that as the satisfy-sense
  // terminal, cancelled the race, and the merge claimed kOptimal with
  // better subproblems still unstolen. Here maximizing a single decision
  // variable makes every subproblem such a collapsed leaf, FIFO steal order
  // serves the worst one first, and the true optimum sits at the queue's
  // tail — under the bug the solve "proves" a suboptimal objective.
  Model m;
  IntVar v = m.NewInt(0, 5);
  m.MarkDecision(v);
  m.Maximize(LinExpr(v));
  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 2;
  o.subproblems = 4;
  o.time_limit_ms = 0;
  Solution s = m.Solve(o);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, 5);
  EXPECT_EQ(s.stats.steals, s.stats.subproblems)
      << "collapsed leaves must not cancel the steal loop";
}

TEST(SubproblemSolveTest, CacheProofsPruneFrontierExpansion) {
  // The master expands the frontier under the caller's persistent cache: a
  // child whose decision context carries an exhausted-subtree proof is
  // pruned instead of shipped, and — because a cached proof is a sound
  // refutation like a propagation failure — completeness survives. The
  // model is parity-infeasible (2x+2y-2z-2w == 1 has no integer solution)
  // but bounds propagation cannot see that at the root or at any depth-1
  // child, so without the cache every child would become a subproblem.
  // Pre-seeding unconditional proofs for exactly those contexts must empty
  // the frontier: no subproblems ship, yet infeasibility is still proven.
  Model m;
  IntVar x = m.NewInt(0, 3);
  IntVar y = m.NewInt(0, 3);
  IntVar z = m.NewInt(0, 3);
  IntVar w = m.NewInt(0, 3);
  for (IntVar v : {x, y, z, w}) m.MarkDecision(v);
  m.PostRel(LinExpr::Term(2, x) + LinExpr::Term(2, y) - LinExpr::Term(2, z) -
                LinExpr::Term(2, w),
            Rel::kEq, LinExpr(1));

  // Compute the post-propagation signature of each depth-1 child context
  // (expansion branches on the same first-fail variable: x, the lowest-id
  // tie-break among equal domains) and store an unconditional "no solution
  // extends this context" proof for it.
  ContextCache cache;
  {
    Model::Options co;
    co.time_limit_ms = 0;
    internal::SearchContext ctx(m, co);
    ASSERT_TRUE(ctx.PropagateRoot());
    size_t watermark = 0;
    ASSERT_EQ(ctx.order().Select(ctx.store(), &watermark).id, x.id);
    for (int64_t val = 0; val <= 3; ++val) {
      ctx.store().PushLevel();
      ctx.store().Assign(x.id, val);
      std::vector<int32_t> changed{x.id};
      ASSERT_TRUE(ctx.engine().PropagateFrom(ctx.store(), changed, &ctx.stats))
          << "x=" << val << ": bounds propagation saw the parity conflict";
      cache.Store(ctx.ContextSignature(), /*minimize=*/false,
                  /*have_bound=*/false, 0);
      ctx.store().Backtrack();
    }
  }

  Model::Options o;
  o.backend = Backend::kPortfolio;
  o.num_workers = 2;
  o.subproblems = 4;
  o.context_cache = &cache;
  o.time_limit_ms = 0;
  Solution s = m.Solve(o);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(s.stats.subproblems, 0u)
      << "every frontier child was covered by a proof; none may ship";
  EXPECT_GE(s.stats.cache_hits, 4u);
}

TEST(SubproblemSolveTest, SingleWorkerKeepsTheSequentialPath) {
  // SOLVER_SUBPROBLEMS with one worker has nobody to steal: the knob must
  // leave the historical single-worker path (and its determinism) alone.
  auto run = [](int subproblems) {
    auto m = MakeACloudModel(8, 3);
    Model::Options o;
    o.backend = Backend::kPortfolio;
    o.num_workers = 1;
    o.subproblems = subproblems;
    o.time_limit_ms = 0;
    o.node_limit = 5'000;
    return m->Solve(o);
  };
  Solution off = run(0);
  Solution on = run(16);
  ASSERT_TRUE(off.has_solution());
  EXPECT_EQ(on.values, off.values);
  EXPECT_EQ(on.objective, off.objective);
  EXPECT_EQ(on.stats.nodes, off.stats.nodes);
  EXPECT_EQ(on.stats.steals, 0u);
  EXPECT_EQ(on.stats.subproblems, 0u);
}

}  // namespace
}  // namespace cologne::solver

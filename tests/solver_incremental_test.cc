// Incremental re-solve on fact deltas (SOLVER_INCREMENTAL): per-group model
// fingerprinting, clean/dirty classification, threshold fallback, the
// SolveRequest entry point, and the shared apps::CommonConfig helpers.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/common_config.h"
#include "apps/followsun.h"
#include "colog/planner.h"
#include "runtime/instance.h"

namespace cologne::runtime {
namespace {

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

// Four independent decision groups (key prefix 1 on pick's G column): each
// group must select a subset of slots whose summed weight reaches the
// group's cap, minimizing the total weight picked. The cap constant is
// baked into exactly one group's covering-constraint propagator, so a cap
// delta must dirty that group's fingerprint and no other. (The weights
// land in the flattened objective propagator, which spans every group — a
// deliberately model-global component.)
const char* kGrouped = R"(
param SOLVER_INCREMENTAL = 1.
param SOLVER_INCR_THRESHOLD = 60.
goal minimize C in total(C).
var pick(G,I,V) forall slot(G,I) domain [0,1].
d1 used(G,SUM<C>) <- pick(G,I,V), weight(G,I,W), C==V*W.
c1 used(G,C) -> cap(G,M), C>=M.
d3 total(SUM<C>) <- used(G,C).
)";

constexpr int kGroups = 4;
constexpr int kSlots = 3;
constexpr int64_t kDefaultCap = 6;

int64_t WeightOf(int g, int i) { return 5 + 3 * g + 7 * i; }

class IncrementalSolveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto compiled = colog::CompileColog(kGrouped);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    program_ = std::move(compiled).value();
    instance_ = std::make_unique<Instance>(0, &program_);
    ASSERT_TRUE(instance_->Init().ok());
    for (int g = 0; g < kGroups; ++g) {
      ASSERT_TRUE(instance_->InsertFact("cap", R({g, kDefaultCap})).ok());
      for (int i = 0; i < kSlots; ++i) {
        ASSERT_TRUE(instance_->InsertFact("slot", R({g, i})).ok());
        ASSERT_TRUE(
            instance_->InsertFact("weight", R({g, i, WeightOf(g, i)})).ok());
      }
    }
  }

  static SolveRequest Incremental() {
    SolveRequest req;
    req.mode = SolveMode::kIncremental;
    req.group_key_prefix = 1;
    return req;
  }

  // Re-point one group's cap fact (delete + insert): the cap constant lives
  // in that group's covering constraint only, so the delta dirties group `g`
  // and nothing else.
  void ChangeCap(int g, int64_t cap) {
    ASSERT_TRUE(instance_->DeleteFact("cap", R({g, kDefaultCap})).ok());
    ASSERT_TRUE(instance_->InsertFact("cap", R({g, cap})).ok());
  }

  // Cold reference: a fresh instance over the same base facts with the
  // incremental path off, for objective parity checks.
  double ColdObjective(int changed_g, int64_t changed_cap) {
    Instance cold(0, &program_);
    EXPECT_TRUE(cold.Init().ok());
    SolveOptions o = cold.solve_options();
    o.incremental = false;
    cold.set_solve_options(o);
    for (int g = 0; g < kGroups; ++g) {
      int64_t cap = g == changed_g ? changed_cap : kDefaultCap;
      EXPECT_TRUE(cold.InsertFact("cap", R({g, cap})).ok());
      for (int i = 0; i < kSlots; ++i) {
        EXPECT_TRUE(cold.InsertFact("slot", R({g, i})).ok());
        EXPECT_TRUE(
            cold.InsertFact("weight", R({g, i, WeightOf(g, i)})).ok());
      }
    }
    auto out = cold.Solve();
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(out.value().has_solution());
    EXPECT_TRUE(out.value().has_objective);
    return out.value().objective;
  }

  colog::CompiledProgram program_;
  std::unique_ptr<Instance> instance_;
};

TEST_F(IncrementalSolveTest, FirstSolveFallsBackCold) {
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  // Nothing to compare against yet: every group counts dirty, cold fallback.
  EXPECT_TRUE(out.value().incr_fallback);
  EXPECT_EQ(out.value().incr_dirty, kGroups);
  EXPECT_EQ(out.value().incr_clean, 0);
  EXPECT_TRUE(instance_->incremental_state().valid);
  EXPECT_EQ(instance_->incremental_state().fingerprints.size(),
            static_cast<size_t>(kGroups));
}

TEST_F(IncrementalSolveTest, UnchangedResolveKeepsEveryGroupClean) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out.value().incr_fallback);
  EXPECT_EQ(out.value().incr_dirty, 0);
  EXPECT_EQ(out.value().incr_clean, kGroups);
  EXPECT_TRUE(out.value().warm_started);
  EXPECT_DOUBLE_EQ(out.value().objective, ColdObjective(-1, 0));
}

TEST_F(IncrementalSolveTest, OneFactDeltaDirtiesExactlyOneGroup) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  // Raise group 2's cap so its incumbent subset no longer covers it: the
  // delta must re-open that group's decision and reach the new optimum
  // (two slots instead of one), not keep the incumbent.
  ChangeCap(2, 30);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_FALSE(out.value().incr_fallback);
  EXPECT_EQ(out.value().incr_dirty, 1);
  EXPECT_EQ(out.value().incr_clean, kGroups - 1);
  EXPECT_DOUBLE_EQ(out.value().objective, ColdObjective(2, 30));
}

TEST_F(IncrementalSolveTest, ThresholdZeroFallsBackOnAnyDelta) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  SolveOptions o = instance_->solve_options();
  o.incr_threshold_pct = 0;
  instance_->set_solve_options(o);
  ChangeCap(1, 20);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().incr_dirty, 1);
  EXPECT_TRUE(out.value().incr_fallback);
  EXPECT_DOUBLE_EQ(out.value().objective, ColdObjective(1, 20));
}

TEST_F(IncrementalSolveTest, ThresholdHundredNeverFallsBackOnVolume) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  SolveOptions o = instance_->solve_options();
  o.incr_threshold_pct = 100;
  instance_->set_solve_options(o);
  for (int g = 0; g < kGroups; ++g) ChangeCap(g, 25 + g);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().incr_dirty, kGroups);
  EXPECT_FALSE(out.value().incr_fallback);
  ASSERT_TRUE(out.value().has_solution());
}

TEST_F(IncrementalSolveTest, FingerprintsSurviveCrashRestartReplay) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  auto before = instance_->incremental_state().fingerprints;
  ASSERT_TRUE(instance_->Crash().ok());
  ASSERT_TRUE(instance_->Restart(/*retain_warm_start=*/true).ok());
  ASSERT_TRUE(instance_->ReplayBaseFacts().ok());
  // Journal replay rebuilds the identical model: the retained fingerprints
  // still classify every group clean, so the post-restart solve goes
  // straight to the incumbent instead of a cold solve.
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out.value().incr_fallback);
  EXPECT_EQ(out.value().incr_dirty, 0);
  EXPECT_EQ(instance_->incremental_state().fingerprints, before);
}

TEST_F(IncrementalSolveTest, RestartWithoutRetentionFallsBackCold) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  ASSERT_TRUE(instance_->Crash().ok());
  ASSERT_TRUE(instance_->Restart(/*retain_warm_start=*/false).ok());
  ASSERT_TRUE(instance_->ReplayBaseFacts().ok());
  EXPECT_FALSE(instance_->incremental_state().valid);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().incr_fallback);
}

TEST_F(IncrementalSolveTest, ResetWarmStartClearsFingerprints) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  ASSERT_TRUE(instance_->incremental_state().valid);
  instance_->reset_warm_start();
  EXPECT_FALSE(instance_->incremental_state().valid);
  EXPECT_TRUE(instance_->incremental_state().fingerprints.empty());
}

TEST_F(IncrementalSolveTest, TouchedTablesTrackTheJournalWindow) {
  // SetUp journaled cap + slot + weight; the window closes with the solve.
  EXPECT_EQ(instance_->touched_tables().size(), 3u);
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  EXPECT_TRUE(instance_->touched_tables().empty());
  ChangeCap(3, 99);
  ASSERT_EQ(instance_->touched_tables().size(), 1u);
  EXPECT_EQ(instance_->touched_tables()[0], "cap");
}

TEST_F(IncrementalSolveTest, UnchangedResolveReusesTheWholeSolve) {
  auto first = instance_->Solve(Incremental());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().incr_reused);
  // Input tables content-unchanged: the cached output is served without a
  // model build or search.
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().incr_reused);
  EXPECT_TRUE(out.value().warm_started);
  EXPECT_EQ(out.value().incr_dirty, 0);
  EXPECT_EQ(out.value().stats.nodes, 0u);
  EXPECT_DOUBLE_EQ(out.value().objective, first.value().objective);
  // A reused solve leaves the engine at the same fixed point, so the next
  // unchanged solve reuses again.
  auto third = instance_->Solve(Incremental());
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(third.value().incr_reused);
}

TEST_F(IncrementalSolveTest, FactDeltaInvalidatesReuseUntilContentReturns) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  ChangeCap(2, 30);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out.value().incr_reused);
  EXPECT_EQ(out.value().incr_dirty, 1);
  // A delete + reinsert of the same fact lands the table back on the
  // snapshotted content: the hash is over the visible set, not the
  // operation history, so reuse re-engages.
  ASSERT_TRUE(instance_->DeleteFact("cap", R({2, 30})).ok());
  ASSERT_TRUE(instance_->InsertFact("cap", R({2, 30})).ok());
  auto again = instance_->Solve(Incremental());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().incr_reused);
  EXPECT_DOUBLE_EQ(again.value().objective, out.value().objective);
}

TEST_F(IncrementalSolveTest, KnobChangeInvalidatesReuse) {
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  SolveOptions o = instance_->solve_options();
  o.seed += 1;
  instance_->set_solve_options(o);
  // Same inputs, different search knobs: the cached output no longer
  // describes what this solve would produce.
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out.value().incr_reused);
}

// ---- Context cache across solves (SOLVER_CACHE x PR 7 fingerprints) --------

TEST_F(IncrementalSolveTest, ContextCacheSolveTwiceIsDeterministic) {
  // Cache-on, incremental-off: the second solve really re-searches (no
  // whole-solve reuse), against the proofs the first solve persisted in the
  // instance's context cache. The answers must match the cache-off solve,
  // and the whole two-solve sequence must replay identically on a fresh
  // instance — the cache trades work, never answers or determinism.
  auto run_pair = [this](SolveOutput* first, SolveOutput* second) {
    Instance inst(0, &program_);
    ASSERT_TRUE(inst.Init().ok());
    SolveOptions o = inst.solve_options();
    o.incremental = false;
    o.cache = true;
    inst.set_solve_options(o);
    for (int g = 0; g < kGroups; ++g) {
      ASSERT_TRUE(inst.InsertFact("cap", R({g, kDefaultCap})).ok());
      for (int i = 0; i < kSlots; ++i) {
        ASSERT_TRUE(inst.InsertFact("slot", R({g, i})).ok());
        ASSERT_TRUE(
            inst.InsertFact("weight", R({g, i, WeightOf(g, i)})).ok());
      }
    }
    auto a = inst.Solve();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_GT(inst.context_cache().entries(), 0u)
        << "cache-on solve left no proofs behind";
    auto b = inst.Solve();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    *first = a.value();
    *second = b.value();
  };
  SolveOutput a1, a2, b1, b2;
  run_pair(&a1, &a2);
  run_pair(&b1, &b2);
  EXPECT_DOUBLE_EQ(a1.objective, ColdObjective(-1, 0));
  EXPECT_DOUBLE_EQ(a2.objective, a1.objective);
  // The warm-started re-solve must hit the first solve's exhausted-root
  // proof instead of re-searching the tree.
  EXPECT_TRUE(a2.warm_started);
  EXPECT_GE(a2.stats.cache_hits, 1u);
  EXPECT_LT(a2.stats.nodes, a1.stats.nodes);
  // Replay determinism: identical sequence, identical search.
  EXPECT_EQ(b1.stats.nodes, a1.stats.nodes);
  EXPECT_EQ(b2.stats.nodes, a2.stats.nodes);
  EXPECT_EQ(b2.stats.cache_hits, a2.stats.cache_hits);
  EXPECT_DOUBLE_EQ(b2.objective, a2.objective);
}

TEST_F(IncrementalSolveTest, FactDeltaRetiresContextCacheNamespace) {
  // The PR 7 interaction: the cache's model key folds every group
  // fingerprint, so a fact delta that changes one group's fingerprint
  // re-keys the namespace and every pre-delta proof silently stops
  // matching. The post-delta solve must land on the cold optimum — a stale
  // exhausted-subtree proof from the old model would misprune it.
  SolveOptions o = instance_->solve_options();
  o.cache = true;
  instance_->set_solve_options(o);
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  const uint64_t key_before = instance_->context_cache().model_key();
  EXPECT_GT(instance_->context_cache().entries(), 0u);

  ChangeCap(2, 30);
  auto out = instance_->Solve(Incremental());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(instance_->context_cache().model_key(), key_before)
      << "a dirtied group fingerprint must re-key the cache namespace";
  EXPECT_DOUBLE_EQ(out.value().objective, ColdObjective(2, 30));
}

TEST_F(IncrementalSolveTest, ResetWarmStartClearsContextCache) {
  SolveOptions o = instance_->solve_options();
  o.cache = true;
  instance_->set_solve_options(o);
  ASSERT_TRUE(instance_->Solve(Incremental()).ok());
  ASSERT_GT(instance_->context_cache().entries(), 0u);
  instance_->reset_warm_start();
  EXPECT_EQ(instance_->context_cache().entries(), 0u);
}

TEST(IncrementalKnobsTest, ProgramKnobsConfigureInstanceOptions) {
  auto compiled = colog::CompileColog(kGrouped);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  EXPECT_TRUE(inst.solve_options().incremental);
  EXPECT_EQ(inst.solve_options().incr_threshold_pct, 60);
}

TEST(IncrementalKnobsTest, OutOfRangeValuesAreCompileErrors) {
  auto bad_flag = colog::CompileColog(R"(
param SOLVER_INCREMENTAL = 2.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)");
  ASSERT_FALSE(bad_flag.ok());
  EXPECT_NE(bad_flag.status().ToString().find("SOLVER_INCREMENTAL"),
            std::string::npos);

  auto bad_threshold = colog::CompileColog(R"(
param SOLVER_INCR_THRESHOLD = 101.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)");
  ASSERT_FALSE(bad_threshold.ok());
  EXPECT_NE(bad_threshold.status().ToString().find("SOLVER_INCR_THRESHOLD"),
            std::string::npos);
}

TEST(SolverCacheKnobsTest, ProgramKnobsConfigureInstanceOptions) {
  auto compiled = colog::CompileColog(R"(
param SOLVER_CACHE = 1.
param SOLVER_SUBPROBLEMS = 16.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  EXPECT_TRUE(inst.solve_options().cache);
  EXPECT_EQ(inst.solve_options().subproblems, 16);
}

TEST(SolverCacheKnobsTest, OutOfRangeValuesAreCompileErrors) {
  auto bad_cache = colog::CompileColog(R"(
param SOLVER_CACHE = 2.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)");
  ASSERT_FALSE(bad_cache.ok());
  EXPECT_NE(bad_cache.status().ToString().find("SOLVER_CACHE"),
            std::string::npos);

  auto bad_subproblems = colog::CompileColog(R"(
param SOLVER_SUBPROBLEMS = 5000.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)");
  ASSERT_FALSE(bad_subproblems.ok());
  EXPECT_NE(bad_subproblems.status().ToString().find("SOLVER_SUBPROBLEMS"),
            std::string::npos);
}

// The pre-SolveRequest shims must keep routing through Solve() unchanged.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(IncrementalSolveTest, DeprecatedShimsStillRoute) {
  auto full = instance_->InvokeSolver();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(full.value().has_solution());
  auto batched = instance_->InvokeSolverBatched(1);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(batched.value().model_groups, static_cast<size_t>(kGroups));
}
#pragma GCC diagnostic pop

TEST(CommonConfigTest, HelpersMapSharedKnobs) {
  apps::CommonConfig c;
  c.seed = 42;
  c.net_reliable = true;
  c.obs_metrics = true;
  c.link_loss_prob = 0.25;
  System::Options sys = apps::MakeSystemOptions(c);
  EXPECT_EQ(sys.seed, 42u);
  EXPECT_TRUE(sys.net_reliable);
  EXPECT_TRUE(sys.obs_metrics);
  EXPECT_DOUBLE_EQ(sys.default_link.drop_prob, 0.25);

  c.solver_backend = "lns";
  c.solver_max_iterations = 9;
  c.solver_incremental = true;
  c.solver_cache = true;
  c.solver_subproblems = 8;
  c.solver_naive_propagation = true;
  SolveOptions base;
  base.time_limit_ms = 123;
  SolveOptions o = apps::OverlaySolveOptions(c, base, /*time_limit_ms=*/-1);
  EXPECT_DOUBLE_EQ(o.time_limit_ms, 123);
  EXPECT_EQ(o.backend, solver::Backend::kLns);
  EXPECT_EQ(o.max_iterations, 9u);
  EXPECT_TRUE(o.incremental);
  EXPECT_TRUE(o.cache);
  EXPECT_EQ(o.subproblems, 8);
  EXPECT_TRUE(o.naive_propagation);
  o = apps::OverlaySolveOptions(c, base, /*time_limit_ms=*/55);
  EXPECT_DOUBLE_EQ(o.time_limit_ms, 55);

  SolveRequest req = apps::MakeSolveRequest(c, 2);
  EXPECT_EQ(req.mode, SolveMode::kIncremental);
  EXPECT_EQ(req.group_key_prefix, 2);
  c.solver_incremental = false;
  c.batch_links = true;
  req = apps::MakeSolveRequest(c, 2);
  EXPECT_EQ(req.mode, SolveMode::kBatched);
  EXPECT_EQ(req.group_key_prefix, 2);
  c.batch_links = false;
  req = apps::MakeSolveRequest(c, 2);
  EXPECT_EQ(req.mode, SolveMode::kFull);
  EXPECT_EQ(req.group_key_prefix, 0);
}

// The scenario defaults inherit the shared knobs but keep their historical
// per-scenario seeds.
TEST(CommonConfigTest, ScenarioSeedsKeepHistoricalDefaults) {
  EXPECT_EQ(apps::FtsConfig{}.seed, 11u);
  EXPECT_FALSE(apps::FtsConfig{}.solver_incremental);
}

std::string RunFtsIncrementalTrace() {
  TraceRecorder rec;
  apps::FtsConfig cfg;
  cfg.num_dcs = 4;
  cfg.converge_sweeps = 2;
  cfg.batch_links = true;
  cfg.net_reliable = true;
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = 8;
  cfg.solver_time_ms = 0;  // iteration-bounded: wall-clock independent
  cfg.solver_incremental = true;
  cfg.trace = &rec;
  apps::FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return rec.ToString();
}

TEST(IncrementalDeterminismTest, TwoRunsProduceByteIdenticalTraces) {
  std::string first = RunFtsIncrementalTrace();
  std::string second = RunFtsIncrementalTrace();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The solve events carry the incremental classification.
  EXPECT_NE(first.find("\"incr\""), std::string::npos);
}

}  // namespace
}  // namespace cologne::runtime

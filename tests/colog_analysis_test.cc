// Static-analysis tests: the paper's Section 5.2 solver-table identification
// example, rule classification, and the Section 5.5 localization rewrite
// (d2 -> d21/d22).
#include <gtest/gtest.h>

#include "colog/analysis.h"
#include "colog/parser.h"
#include "colog/codegen.h"
#include "colog/planner.h"

namespace cologne::colog {
namespace {

const char* kACloud = R"(
param max_migrates = 9.
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].
r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
)";

Result<AnalyzedProgram> AnalyzeSource(const std::string& src) {
  auto parsed = Parse(src);
  if (!parsed.ok()) return parsed.status();
  return Analyze(parsed.value(), {});
}

RuleClass ClassOf(const AnalyzedProgram& a, const std::string& label) {
  for (const AnalyzedRule& r : a.rules) {
    if (r.rule.label == label) return r.cls;
  }
  ADD_FAILURE() << "rule " << label << " not found";
  return RuleClass::kRegular;
}

TEST(AnalysisTest, ACloudSolverTableIdentification) {
  // Reproduces the worked example in Section 5.2: assign, hostCpu,
  // hostStdevCpu, assignCount, hostMem (and migrate/migrateCount) are solver
  // tables; vm, host, toAssign, origin, hostMemThres are regular.
  auto r = AnalyzeSource(kACloud);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedProgram& a = r.value();

  auto solver_positions = [&](const std::string& t) {
    auto it = a.solver_cols.find(t);
    return it == a.solver_cols.end() ? std::set<int>{} : it->second;
  };
  EXPECT_EQ(solver_positions("assign"), (std::set<int>{2}));
  EXPECT_EQ(solver_positions("hostCpu"), (std::set<int>{1}));
  EXPECT_EQ(solver_positions("hostStdevCpu"), (std::set<int>{0}));
  EXPECT_EQ(solver_positions("assignCount"), (std::set<int>{1}));
  EXPECT_EQ(solver_positions("hostMem"), (std::set<int>{1}));
  EXPECT_EQ(solver_positions("migrate"), (std::set<int>{3}));
  EXPECT_EQ(solver_positions("migrateCount"), (std::set<int>{0}));
  EXPECT_TRUE(solver_positions("vm").empty());
  EXPECT_TRUE(solver_positions("host").empty());
  EXPECT_TRUE(solver_positions("toAssign").empty());
  EXPECT_TRUE(solver_positions("origin").empty());
  EXPECT_TRUE(solver_positions("hostMemThres").empty());
}

TEST(AnalysisTest, ACloudRuleClassification) {
  auto r = AnalyzeSource(kACloud);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedProgram& a = r.value();
  EXPECT_EQ(ClassOf(a, "r1"), RuleClass::kRegular);
  for (const char* d : {"d1", "d2", "d3", "d4", "d5", "d6"}) {
    EXPECT_EQ(ClassOf(a, d), RuleClass::kSolverDerivation) << d;
  }
  for (const char* c : {"c1", "c2", "c3"}) {
    EXPECT_EQ(ClassOf(a, c), RuleClass::kSolverConstraint) << c;
  }
  EXPECT_FALSE(a.distributed);
}

TEST(AnalysisTest, VarTableRecordedWithDomain) {
  auto r = AnalyzeSource(kACloud);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().var_tables.count("assign"));
}

TEST(AnalysisTest, PostSolveClassificationForUpdateRules) {
  // Follow-the-Sun r2/r3 pattern: rules consuming the *materialized* solver
  // output (var-table head, `:=` over solver attributes) are post-solve.
  const char* src = R"(
goal minimize C in aggCost(X,C).
var migVm(X,Y,R) forall toMigVm(X,Y) domain [-10,10].
d1 aggCost(X,SUMABS<R>) <- migVm(X,Y,R).
r2 migVm(Y,X,R2) <- setLink(X,Y), migVm(X,Y,R1), R2:=-R1.
r3 curVm(X,R) <- curVm(X,R1), migVm(X,Y,R2), R:=R1-R2.
)";
  auto r = AnalyzeSource(src);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedProgram& a = r.value();
  EXPECT_EQ(ClassOf(a, "d1"), RuleClass::kSolverDerivation);
  EXPECT_EQ(ClassOf(a, "r2"), RuleClass::kPostSolve);
  EXPECT_EQ(ClassOf(a, "r3"), RuleClass::kPostSolve);
  // Crucially, curVm must NOT be painted as a solver table through r3.
  auto it = a.solver_cols.find("curVm");
  EXPECT_TRUE(it == a.solver_cols.end() || it->second.empty());
}

TEST(AnalysisTest, ConstraintWithoutSolverTablesRejected) {
  auto r = AnalyzeSource("c1 foo(X) -> bar(X).\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAnalysisError);
}

TEST(AnalysisTest, ArityMismatchRejected) {
  auto r = AnalyzeSource("a(X) <- b(X).\nc(X) <- b(X,Y).\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("arity"), std::string::npos);
}

TEST(AnalysisTest, UndeclaredParamRejected) {
  auto r = AnalyzeSource("param threshold.\na(X) <- b(X).\n");
  EXPECT_FALSE(r.ok());
}

// --- Localization rewrite (Section 5.5) ------------------------------------

TEST(LocalizationTest, PaperD2RewritesToD21D22) {
  auto parsed = Parse(
      "d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),\n"
      "   migVm(@X,Y,D,R2), R==R1+R2.\n");
  ASSERT_TRUE(parsed.ok());
  size_t rewritten = 0;
  auto r = LocalizeRules(parsed.value().rules, &rewritten);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& rules = r.value();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rewritten, 1u);

  // d21: tmp_d2(@X,Y,D,R1) <- link(@Y,X), curVm(@Y,D,R1).
  const SrcRule& ship = rules[0];
  EXPECT_EQ(ship.head.pred, "tmp_d2");
  ASSERT_EQ(ship.head.args.size(), 4u);
  EXPECT_TRUE(ship.head.args[0].loc);
  EXPECT_EQ(ship.head.args[0].expr.name, "X");
  EXPECT_EQ(ship.head.args[1].expr.name, "Y");
  EXPECT_EQ(ship.head.args[2].expr.name, "D");
  EXPECT_EQ(ship.head.args[3].expr.name, "R1");
  ASSERT_EQ(ship.body.size(), 2u);
  EXPECT_EQ(ship.body[0].atom.pred, "link");
  EXPECT_EQ(ship.body[1].atom.pred, "curVm");

  // d22: nborNextVm(@X,Y,D,R) <- tmp_d2(@X,Y,D,R1), migVm(@X,Y,D,R2), ...
  const SrcRule& local = rules[1];
  EXPECT_EQ(local.head.pred, "nborNextVm");
  ASSERT_GE(local.body.size(), 3u);
  EXPECT_EQ(local.body[0].atom.pred, "tmp_d2");
  EXPECT_EQ(local.body[1].atom.pred, "migVm");
  EXPECT_EQ(local.body[2].kind, SrcBodyElem::Kind::kCond);
}

TEST(LocalizationTest, SingleLocationRuleUntouched) {
  auto parsed =
      Parse("d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.\n");
  ASSERT_TRUE(parsed.ok());
  size_t rewritten = 0;
  auto r = LocalizeRules(parsed.value().rules, &rewritten);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_EQ(rewritten, 0u);
}

TEST(LocalizationTest, ConstraintRuleRewrites) {
  // Paper c2: aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
  auto parsed = Parse(
      "c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.\n");
  ASSERT_TRUE(parsed.ok());
  size_t rewritten = 0;
  auto r = LocalizeRules(parsed.value().rules, &rewritten);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_FALSE(r.value()[0].is_constraint) << "shipping rule is regular";
  EXPECT_TRUE(r.value()[1].is_constraint) << "local rule stays a constraint";
}

TEST(LocalizationTest, ThreeLocationsRejected) {
  auto parsed =
      Parse("x(@X,V) <- a(@X,Y), b(@Y,Z,V), c(@Z,W).\n");
  ASSERT_TRUE(parsed.ok());
  size_t rewritten = 0;
  auto r = LocalizeRules(parsed.value().rules, &rewritten);
  EXPECT_FALSE(r.ok());
}

// --- Planner ----------------------------------------------------------------

TEST(PlannerTest, ACloudPlanShape) {
  auto r = CompileColog(kACloud);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CompiledProgram& p = r.value();
  EXPECT_EQ(p.counts.regular, 1u);
  EXPECT_EQ(p.counts.solver_derivation, 6u);
  EXPECT_EQ(p.counts.solver_constraint, 3u);
  EXPECT_EQ(p.counts.post_solve, 0u);
  EXPECT_EQ(p.counts.goal_and_var, 2u);
  ASSERT_EQ(p.var_decls.size(), 1u);
  EXPECT_EQ(p.var_decls[0].var_table, "assign");
  EXPECT_EQ(p.var_decls[0].forall_table, "toAssign");
  EXPECT_EQ(p.var_decls[0].dom_lo, 0);
  EXPECT_EQ(p.var_decls[0].dom_hi, 1);
  // Column mapping: Vid<-0, Hid<-1, V is the solver column.
  EXPECT_EQ(p.var_decls[0].from_forall_col, (std::vector<int>{0, 1, -1}));
  EXPECT_TRUE(p.goal.present);
  EXPECT_EQ(p.goal.table, "hostStdevCpu");
  EXPECT_EQ(p.goal.col, 0);
  // Base (input) tables.
  EXPECT_TRUE(p.base_tables.count("vm"));
  EXPECT_TRUE(p.base_tables.count("host"));
  EXPECT_TRUE(p.base_tables.count("origin"));
  EXPECT_TRUE(p.base_tables.count("hostMemThres"));
  EXPECT_FALSE(p.base_tables.count("toAssign"));
  EXPECT_FALSE(p.base_tables.count("assign"));
}

TEST(PlannerTest, DerivationsTopologicallyOrdered) {
  auto r = CompileColog(kACloud);
  ASSERT_TRUE(r.ok());
  const CompiledProgram& p = r.value();
  // d1 (hostCpu) must precede d2 (hostStdevCpu reads hostCpu). Constraints
  // come after all derivations.
  int d1_pos = -1, d2_pos = -1, first_constraint = -1;
  for (size_t i = 0; i < p.solver_rules.size(); ++i) {
    if (p.solver_rules[i].ir.label == "d1") d1_pos = static_cast<int>(i);
    if (p.solver_rules[i].ir.label == "d2") d2_pos = static_cast<int>(i);
    if (p.solver_rules[i].is_constraint && first_constraint < 0) {
      first_constraint = static_cast<int>(i);
    }
  }
  ASSERT_GE(d1_pos, 0);
  ASSERT_GE(d2_pos, 0);
  EXPECT_LT(d1_pos, d2_pos);
  for (size_t i = static_cast<size_t>(first_constraint);
       i < p.solver_rules.size(); ++i) {
    EXPECT_TRUE(p.solver_rules[i].is_constraint);
  }
}

TEST(PlannerTest, CyclicDerivationsRejected) {
  const char* src = R"(
goal minimize C in t1(C).
var v(X,V) forall base(X) domain [0,1].
d1 t1(C) <- v(X,V), t2(C2), C==V+C2.
d2 t2(C) <- t1(C1), C==C1+1.
)";
  auto r = CompileColog(src);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cyclic"), std::string::npos);
}

TEST(PlannerTest, ParamResolvedToConstant) {
  auto r = CompileColog(kACloud);
  ASSERT_TRUE(r.ok());
  // c3 migrateCount(C) -> C<=max_migrates: the param becomes Const(9).
  for (const SolverRuleIR& sr : r.value().solver_rules) {
    if (sr.ir.label != "c3") continue;
    ASSERT_EQ(sr.ir.sels.size(), 1u);
    const datalog::Expr& e = sr.ir.sels[0].expr;
    ASSERT_EQ(e.kids.size(), 2u);
    EXPECT_EQ(e.kids[1].op, datalog::ExprOp::kConst);
    EXPECT_EQ(e.kids[1].const_val.as_int(), 9);
    return;
  }
  FAIL() << "c3 not found";
}

TEST(PlannerTest, CompileParamOverride) {
  std::map<std::string, Value> params{{"max_migrates", Value::Int(3)}};
  auto r = CompileColog(kACloud, params);
  ASSERT_TRUE(r.ok());
  for (const SolverRuleIR& sr : r.value().solver_rules) {
    if (sr.ir.label == "c3") {
      EXPECT_EQ(sr.ir.sels[0].expr.kids[1].const_val.as_int(), 3);
    }
  }
}


TEST(CodegenTest, EmitsSubstantialImperativeCode) {
  auto r = CompileColog(kACloud);
  ASSERT_TRUE(r.ok());
  std::string cpp = GenerateCpp(r.value(), "acloud");
  size_t sloc = CountSloc(cpp);
  // Table 2's claim: orders of magnitude more imperative code than rules.
  EXPECT_GT(sloc, 20 * r.value().counts.total());
  EXPECT_NE(cpp.find("struct VmTuple"), std::string::npos);
  EXPECT_NE(cpp.find("Minimize"), std::string::npos);
}

TEST(CodegenTest, SlocIgnoresBlanksAndComments) {
  EXPECT_EQ(CountSloc("// comment\n\nint x;\n  // c2\n y;\n"), 2u);
}

// --- Solver-knob extraction (planner) --------------------------------------

TEST(SolverKnobsTest, KnobsExtractedIntoCompiledProgram) {
  auto r = CompileColog(
      "param SOLVER_BACKEND = \"lns\".\n"
      "param SOLVER_MAX_TIME = 750.\n"
      "param SOLVER_SEED = 13.\n"
      "param SOLVER_RESTARTS = 256.\n"
      "param SOLVER_WORKERS = 4.\n"
      "goal satisfy.\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SolverKnobsIR& knobs = r.value().knobs;
  ASSERT_TRUE(knobs.backend.has_value());
  EXPECT_EQ(*knobs.backend, "lns");
  ASSERT_TRUE(knobs.max_time_ms.has_value());
  EXPECT_DOUBLE_EQ(*knobs.max_time_ms, 750);
  ASSERT_TRUE(knobs.seed.has_value());
  EXPECT_EQ(*knobs.seed, 13u);
  ASSERT_TRUE(knobs.restart_base_nodes.has_value());
  EXPECT_EQ(*knobs.restart_base_nodes, 256u);
  ASSERT_TRUE(knobs.workers.has_value());
  EXPECT_EQ(*knobs.workers, 4u);
}

TEST(SolverKnobsTest, ConcurrentBackendSpellingsAccepted) {
  for (const char* name : {"portfolio", "parallel_lns", "local_search"}) {
    auto r = CompileColog("param SOLVER_BACKEND = \"" + std::string(name) +
                          "\".\ngoal satisfy.\n");
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    ASSERT_TRUE(r.value().knobs.backend.has_value());
    EXPECT_EQ(*r.value().knobs.backend, name);
  }
}

TEST(SolverKnobsTest, UnknownOrInvalidKnobsRejected) {
  auto unknown = CompileColog("param SOLVER_TEMPERATURE = 3.\ngoal satisfy.\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown solver knob"),
            std::string::npos);

  auto bad_backend =
      CompileColog("param SOLVER_BACKEND = \"tabu\".\ngoal satisfy.\n");
  ASSERT_FALSE(bad_backend.ok());
  EXPECT_NE(bad_backend.status().message().find("SOLVER_BACKEND"),
            std::string::npos);

  auto bad_time =
      CompileColog("param SOLVER_MAX_TIME = -5.\ngoal satisfy.\n");
  EXPECT_FALSE(bad_time.ok());

  auto bad_seed =
      CompileColog("param SOLVER_SEED = \"x\".\ngoal satisfy.\n");
  EXPECT_FALSE(bad_seed.ok());

  // SOLVER_WORKERS is bounded to [1, 256].
  auto zero_workers =
      CompileColog("param SOLVER_WORKERS = 0.\ngoal satisfy.\n");
  ASSERT_FALSE(zero_workers.ok());
  EXPECT_NE(zero_workers.status().message().find("SOLVER_WORKERS"),
            std::string::npos);
  auto too_many_workers =
      CompileColog("param SOLVER_WORKERS = 1000.\ngoal satisfy.\n");
  EXPECT_FALSE(too_many_workers.ok());
}

TEST(SolverKnobsTest, NetReliableKnobExtractedAndValidated) {
  // NET_RELIABLE = 1 turns on the retransmission/FIFO transport.
  auto on = CompileColog("param NET_RELIABLE = 1.\ngoal satisfy.\n");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_TRUE(on.value().knobs.net_reliable.has_value());
  EXPECT_TRUE(*on.value().knobs.net_reliable);
  // The knob is consumed into CompiledProgram::knobs, not the rule-level
  // parameter map (same handling as SOLVER_*).
  EXPECT_EQ(on.value().params.count("NET_RELIABLE"), 0u);

  auto off = CompileColog("param NET_RELIABLE = 0.\ngoal satisfy.\n");
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(off.value().knobs.net_reliable.has_value());
  EXPECT_FALSE(*off.value().knobs.net_reliable);

  auto unset = CompileColog("goal satisfy.\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.value().knobs.net_reliable.has_value());

  // Only 0/1 integers are accepted.
  for (const char* bad :
       {"param NET_RELIABLE = 2.\ngoal satisfy.\n",
        "param NET_RELIABLE = \"yes\".\ngoal satisfy.\n",
        "param NET_RELIABLE = 0.5.\ngoal satisfy.\n"}) {
    auto r = CompileColog(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("NET_RELIABLE"), std::string::npos)
        << r.status().ToString();
  }
  // Valueless reserved knobs are rejected by the parser.
  EXPECT_FALSE(CompileColog("param NET_RELIABLE.\ngoal satisfy.\n").ok());
}

}  // namespace
}  // namespace cologne::colog

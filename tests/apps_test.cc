// Scenario-driver tests at miniature scale: trace determinism, ACloud policy
// ordering, Follow-the-Sun convergence, wireless assignment validity.
#include <gtest/gtest.h>

#include "apps/acloud.h"
#include "apps/followsun.h"
#include "apps/negotiation.h"
#include "apps/programs.h"
#include "apps/trace.h"
#include "apps/wireless.h"
#include "colog/planner.h"
#include "common/stats.h"

namespace cologne::apps {
namespace {

TEST(TraceTest, DeterministicAndBounded) {
  TraceConfig cfg;
  cfg.num_customers = 20;
  cfg.num_pps = 60;
  DataCenterTrace a(cfg), b(cfg);
  for (int c = 0; c < cfg.num_customers; ++c) {
    EXPECT_GE(a.PpsOf(c), 1);
    for (double t : {0.0, 300.0, 3600.0, 86000.0}) {
      double cpu = a.CustomerCpu(c, t);
      EXPECT_GE(cpu, 0.0);
      EXPECT_LE(cpu, 100.0);
      EXPECT_EQ(cpu, b.CustomerCpu(c, t)) << "trace must be deterministic";
      double mem = a.CustomerMem(c, t);
      EXPECT_GE(mem, 0.0);
      EXPECT_LE(mem, 100.0);
    }
  }
}

TEST(TraceTest, DiurnalVariation) {
  TraceConfig cfg;
  cfg.num_customers = 10;
  cfg.num_pps = 30;
  DataCenterTrace t(cfg);
  // Over a day, load must actually move (amplitude >= 10%).
  RunningStats s;
  for (int i = 0; i < 288; ++i) s.Add(t.CustomerCpu(3, i * 300.0));
  EXPECT_GT(s.max() - s.min(), 10.0);
}

TEST(ProgramsTest, AllProgramsCompile) {
  for (const std::string& src :
       {ACloudProgram(false), ACloudProgram(true, 3),
        FollowTheSunDistributedProgram(false),
        FollowTheSunDistributedProgram(true),
        FollowTheSunCentralizedProgram(), WirelessCentralizedProgram(false),
        WirelessCentralizedProgram(true), WirelessDistributedProgram()}) {
    auto r = colog::CompileColog(src);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nprogram:\n" << src;
  }
}

TEST(ProgramsTest, DistributedFlagsMatch) {
  auto acloud = colog::CompileColog(ACloudProgram(false));
  ASSERT_TRUE(acloud.ok());
  EXPECT_FALSE(acloud.value().distributed);
  auto fts = colog::CompileColog(FollowTheSunDistributedProgram(false));
  ASSERT_TRUE(fts.ok());
  EXPECT_TRUE(fts.value().distributed);
}

ACloudConfig SmallACloud() {
  ACloudConfig cfg;
  cfg.num_dcs = 2;
  cfg.hosts_per_dc = 3;
  cfg.vms_per_host = 4;
  cfg.duration_hours = 0.5;
  cfg.interval_s = 600;
  cfg.solver_time_ms = 300;
  cfg.trace.num_customers = 16;
  cfg.trace.num_pps = 40;
  return cfg;
}

TEST(ACloudScenarioTest, PoliciesRunAndACloudBeatsDefault) {
  ACloudScenario scenario(SmallACloud());
  auto def = scenario.Run(ACloudPolicy::kDefault);
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  auto colog_run = scenario.Run(ACloudPolicy::kACloud);
  ASSERT_TRUE(colog_run.ok()) << colog_run.status().ToString();
  ASSERT_EQ(def.value().size(), colog_run.value().size());
  double def_avg = 0, acloud_avg = 0;
  int migrations = 0;
  for (size_t i = 0; i < def.value().size(); ++i) {
    def_avg += def.value()[i].avg_cpu_stdev;
    acloud_avg += colog_run.value()[i].avg_cpu_stdev;
    migrations += colog_run.value()[i].migrations;
  }
  EXPECT_LT(acloud_avg, def_avg) << "optimization must reduce imbalance";
  EXPECT_EQ([&] {
    int m = 0;
    for (const auto& iv : def.value()) m += iv.migrations;
    return m;
  }(), 0) << "Default never migrates";
  EXPECT_GT(migrations, 0) << "ACloud migrates to balance";
}

TEST(ACloudScenarioTest, MigrationLimitRespected) {
  ACloudConfig cfg = SmallACloud();
  cfg.max_migrates = 1;
  ACloudScenario scenario(cfg);
  auto limited = scenario.Run(ACloudPolicy::kACloudM);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  for (const auto& iv : limited.value()) {
    EXPECT_LE(iv.migrations, cfg.max_migrates * cfg.num_dcs)
        << "at t=" << iv.t_hours;
  }
}

TEST(FollowTheSunTest, CostDecreasesAndConverges) {
  FtsConfig cfg;
  cfg.num_dcs = 4;
  cfg.solver_time_ms = 300;
  FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const FtsResult& res = r.value();
  EXPECT_GT(res.initial_cost, 0);
  EXPECT_LE(res.final_cost, res.initial_cost)
      << "optimization must not increase total cost";
  EXPECT_GT(res.reduction_pct, 0) << "some reduction expected";
  EXPECT_GT(res.rounds, 0);
  EXPECT_GT(res.avg_per_node_kBps, 0) << "negotiation uses the network";
  // Normalized series starts at 100 and is (weakly) decreasing.
  ASSERT_GE(res.series.size(), 2u);
  EXPECT_DOUBLE_EQ(res.series[0].normalized, 100.0);
  for (size_t i = 1; i < res.series.size(); ++i) {
    EXPECT_LE(res.series[i].normalized, res.series[i - 1].normalized + 1e-9);
  }
}

TEST(WirelessTest, BaselinesAssignEveryLink) {
  WirelessConfig cfg;
  cfg.grid_w = 3;
  cfg.grid_h = 3;
  cfg.num_flows = 4;
  WirelessScenario scenario(cfg);
  for (WirelessProtocol p :
       {WirelessProtocol::k1Interface, WirelessProtocol::kIdenticalCh}) {
    auto r = scenario.AssignChannels(p);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().channel.size(), scenario.links().size());
  }
}

TEST(WirelessTest, CentralizedReducesInterferenceVsBaselines) {
  WirelessConfig cfg;
  cfg.grid_w = 3;
  cfg.grid_h = 3;
  cfg.num_flows = 4;
  cfg.solver_time_ms = 1500;
  WirelessScenario scenario(cfg);
  auto one = scenario.AssignChannels(WirelessProtocol::k1Interface);
  auto cen = scenario.AssignChannels(WirelessProtocol::kCentralized);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(cen.ok()) << cen.status().ToString();
  EXPECT_EQ(cen.value().channel.size(), scenario.links().size());
  EXPECT_LT(cen.value().interference_cost, one.value().interference_cost);
  // Primary-user constraint holds trivially (no restrictions configured).
  // Channels in range.
  for (const auto& [l, c] : cen.value().channel) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, cfg.num_channels);
  }
}

TEST(WirelessTest, DistributedAssignsAllLinksAndRespectsPrimaryUsers) {
  WirelessConfig cfg;
  cfg.grid_w = 3;
  cfg.grid_h = 2;
  cfg.num_flows = 3;
  cfg.restrict_frac = 0.25;  // two blocked channels per node
  cfg.link_solve_ms = 150;
  WirelessScenario scenario(cfg);
  auto r = scenario.AssignChannels(WirelessProtocol::kDistributed);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ChannelAssignment& a = r.value();
  EXPECT_EQ(a.channel.size(), scenario.links().size());
  for (const auto& [l, c] : a.channel) {
    EXPECT_FALSE(scenario.primary_channels(l.first).count(c))
        << "link (" << l.first << "," << l.second << ") uses channel " << c
        << " blocked at node " << l.first;
    EXPECT_FALSE(scenario.primary_channels(l.second).count(c));
  }
  EXPECT_GT(a.per_node_kBps, 0);
}

TEST(WirelessTest, ThroughputOrderingMatchesFigure6) {
  WirelessConfig cfg;
  cfg.grid_w = 4;
  cfg.grid_h = 3;
  cfg.num_flows = 8;
  cfg.solver_time_ms = 2000;
  cfg.link_solve_ms = 150;
  WirelessScenario scenario(cfg);
  auto one = scenario.AssignChannels(WirelessProtocol::k1Interface);
  auto dist = scenario.AssignChannels(WirelessProtocol::kDistributed);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  double rate = 8.0;
  double t_one = scenario.AggregateThroughput(one.value(), rate, false);
  double t_dist = scenario.AggregateThroughput(dist.value(), rate, false);
  double t_cross = scenario.AggregateThroughput(dist.value(), rate, true);
  EXPECT_GT(t_dist, t_one) << "channel diversity must beat one channel";
  EXPECT_GE(t_cross, t_dist * 0.99)
      << "cross-layer routing should not hurt throughput";
}

// --- ClaimBatches (apps/negotiation.h) ---------------------------------------

using TestLink = std::pair<int, int>;

std::vector<NegotiationBatch<int>> Claim(std::vector<TestLink> links,
                                         size_t num_nodes, bool batch_links,
                                         int max_link_batch,
                                         std::set<TestLink>* pending_out =
                                             nullptr) {
  std::set<TestLink> pending(links.begin(), links.end());
  auto batches =
      ClaimBatches(links, &pending, num_nodes, batch_links, max_link_batch,
                   [](const TestLink&) { return LinkClaim::kClaim; });
  if (pending_out != nullptr) *pending_out = pending;
  return batches;
}

std::string Render(const std::vector<NegotiationBatch<int>>& batches) {
  std::string out;
  for (const auto& b : batches) {
    out += std::to_string(b.init) + ":";
    for (int p : b.peers) out += std::to_string(p) + ",";
    out += ";";
  }
  return out;
}

TEST(NegotiationTest, BatchedScheduleIndependentOfLinkSpelling) {
  // The same endpoint set spelled (a,b), spelled (b,a), and permuted must
  // claim identically: the schedule (and with it the trace) depends only on
  // the link set. The both-orientations input is the regression case — the
  // two spellings of one pair compare equal on (initiator, peer), so the
  // sort needs the orientation tie-break to stay a total order.
  const std::vector<TestLink> links = {{0, 3}, {3, 1}, {2, 3}, {1, 2}, {0, 1}};
  const std::string base = Render(Claim(links, 4, true, 0));
  std::vector<TestLink> flipped;
  for (const TestLink& l : links) flipped.push_back({l.second, l.first});
  EXPECT_EQ(Render(Claim(flipped, 4, true, 0)), base);
  std::vector<TestLink> permuted = {{1, 2}, {0, 1}, {2, 3}, {0, 3}, {3, 1}};
  EXPECT_EQ(Render(Claim(permuted, 4, true, 0)), base);
  std::vector<TestLink> both = links;
  for (const TestLink& l : flipped) both.push_back(l);
  EXPECT_EQ(Render(Claim(both, 4, true, 0)), base);
}

TEST(NegotiationTest, BatchedInitiatorGathersPeersAscending) {
  // Highest id initiates first and gathers every free peer, low id first.
  const std::vector<TestLink> links = {{1, 3}, {0, 3}, {2, 3}};
  EXPECT_EQ(Render(Claim(links, 4, true, 0)), "3:0,1,2,;");
}

TEST(NegotiationTest, MaxLinkBatchCapsClaimsAndKeepsRestPending) {
  std::set<TestLink> pending;
  const std::vector<TestLink> links = {{0, 3}, {1, 3}, {2, 3}};
  auto batches = Claim(links, 4, true, 2, &pending);
  EXPECT_EQ(Render(batches), "3:0,1,;");
  // The capped-out link stays pending for a later round.
  EXPECT_EQ(pending, std::set<TestLink>({{2, 3}}));
}

TEST(NegotiationTest, ClassicModePairsOneLinkPerNode) {
  // Classic mode keeps the caller's order and one link per node per round.
  std::set<TestLink> pending;
  const std::vector<TestLink> links = {{0, 1}, {2, 3}, {0, 2}, {1, 3}};
  auto batches = Claim(links, 4, false, 0, &pending);
  EXPECT_EQ(Render(batches), "1:0,;3:2,;");
  EXPECT_EQ(pending, std::set<TestLink>({{0, 2}, {1, 3}}));
}

}  // namespace
}  // namespace cologne::apps

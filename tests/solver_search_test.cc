// Tests for the search-core additions of the subproblem-parallel /
// context-cache PR: the soft-deadline regression (honoured without a global
// time limit), ApplyBound saturation at the INT64 extremes (signed-overflow
// UB regression, exercised under UBSan in CI), the ContextCache proof
// semantics, cross-solve exhausted-subtree reuse, cache-on/off answer
// parity, and limited-discrepancy dives.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "solver/context_cache.h"
#include "solver/model.h"
#include "solver/search_internal.h"
#include "solver_test_util.h"

namespace cologne::solver {
namespace {

using internal::DiveEnd;
using internal::Incumbent;
using internal::SearchContext;

// Chain model with interleaved failures (the DeepBacktrackingDive shape):
// exhausting it takes far more nodes than any budget these tests grant, so a
// dive that returns early did so because of the limit under test.
std::unique_ptr<Model> MakeChainModel(int vars, std::vector<IntVar>* out) {
  auto m = std::make_unique<Model>();
  LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    IntVar x = m->NewInt(0, 2);
    m->MarkDecision(x);
    out->push_back(x);
    sum += LinExpr(x);
  }
  for (int i = 0; i + 1 < vars; ++i) {
    m->PostRel(LinExpr((*out)[static_cast<size_t>(i)]) +
                   LinExpr((*out)[static_cast<size_t>(i + 1)]),
               Rel::kLe, LinExpr(3));
  }
  m->Maximize(sum);
  return m;
}

// Regression for the soft-deadline hoist: soft_deadline_ms used to be
// checked only inside the `time_limit_ms > 0` branch, so an unlimited solve
// (time_limit_ms == 0) ignored it entirely and the dive ran to exhaustion.
TEST(SoftDeadlineTest, HonoredWithoutGlobalTimeLimit) {
  std::vector<IntVar> xs;
  auto m = MakeChainModel(100, &xs);
  Model::Options o;
  o.time_limit_ms = 0;  // unlimited wall clock: the historical dead-code path
  SearchContext ctx(*m, o);
  ASSERT_TRUE(ctx.PropagateRoot());

  // The deadline only applies once an incumbent exists; seed one first.
  Incumbent inc;
  SearchContext::DiveLimits seed;
  seed.stop_on_first = true;
  seed.bound_objective = false;
  ASSERT_EQ(ctx.Dive(seed, &inc), DiveEnd::kFirstSolution);
  ASSERT_TRUE(inc.found);

  SearchContext::DiveLimits limits;
  limits.bound_objective = true;
  limits.soft_deadline_ms = 1e-6;  // already elapsed by the time we dive
  DiveEnd end = ctx.Dive(limits, &inc);
  EXPECT_EQ(end, DiveEnd::kCutoff)
      << "soft deadline ignored when time_limit_ms == 0";
  // The deadline is polled every 256 nodes; a dive that blew past a few
  // polls was not honouring it (exhausting this model takes millions).
  EXPECT_LT(ctx.stats.nodes, 2'000u);
  EXPECT_EQ(ctx.store().level(), ctx.root_level()) << "store not restored";
}

// Regression for the bound-saturation fix: an incumbent at the extreme
// representable objective made ApplyBound compute INT64_MIN - 1 /
// INT64_MAX + 1 — signed-overflow UB. "Strictly better than the extreme
// value" is unsatisfiable, so the clamp must saturate to failure instead.
TEST(ApplyBoundTest, SaturatesAtInt64MinWhenMinimizing) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  m.MarkDecision(x);
  m.Minimize(LinExpr(x));
  Model::Options o;
  o.time_limit_ms = 0;
  SearchContext ctx(m, o);
  ASSERT_TRUE(ctx.PropagateRoot());
  ASSERT_TRUE(ctx.minimizing());

  ctx.store().PushLevel();
  Incumbent inc;
  inc.found = true;
  inc.objective = std::numeric_limits<int64_t>::min();
  std::vector<int32_t> changed;
  EXPECT_FALSE(ctx.ApplyBound(&changed, inc))
      << "nothing is strictly better than INT64_MIN";
  ctx.store().Backtrack();

  // Sanity: an ordinary incumbent still clamps instead of failing.
  ctx.store().PushLevel();
  inc.objective = 5;
  changed.clear();
  EXPECT_TRUE(ctx.ApplyBound(&changed, inc));
  EXPECT_EQ(ctx.store().dom(m.objective_var().id).max(), 4);
  ctx.store().Backtrack();
}

TEST(ApplyBoundTest, SaturatesAtInt64MaxWhenMaximizing) {
  Model m;
  IntVar x = m.NewInt(0, 10);
  m.MarkDecision(x);
  m.Maximize(LinExpr(x));
  Model::Options o;
  o.time_limit_ms = 0;
  SearchContext ctx(m, o);
  ASSERT_TRUE(ctx.PropagateRoot());
  ASSERT_TRUE(ctx.maximizing());

  ctx.store().PushLevel();
  Incumbent inc;
  inc.found = true;
  inc.objective = std::numeric_limits<int64_t>::max();
  std::vector<int32_t> changed;
  EXPECT_FALSE(ctx.ApplyBound(&changed, inc))
      << "nothing is strictly better than INT64_MAX";
  ctx.store().Backtrack();
}

// ---- ContextCache proof semantics ------------------------------------------

TEST(ContextCacheTest, BoundedEntryCoversOnlyContainedRegions) {
  ContextCache cache;
  const uint64_t sig = 0xABCDEF0123456789ull;
  // Minimize: entry proves "no solution better (smaller) than 10".
  cache.Store(sig, /*minimize=*/true, /*have_bound=*/true, 10);
  // A caller searching below 10 (or any smaller bound) is covered...
  EXPECT_TRUE(cache.Lookup(sig, true, true, 10));
  EXPECT_TRUE(cache.Lookup(sig, true, true, 5));
  // ...a caller searching below 11 is not (10 itself might exist)...
  EXPECT_FALSE(cache.Lookup(sig, true, true, 11));
  // ...and a caller wanting *any* extension is never refuted by a bound.
  EXPECT_FALSE(cache.Lookup(sig, true, false, 0));
  // Unknown signature: miss.
  EXPECT_FALSE(cache.Lookup(sig ^ 1, true, true, 5));
}

TEST(ContextCacheTest, BoundedEntryMaximizeMirror) {
  ContextCache cache;
  const uint64_t sig = 0x1234ull;
  // Maximize: entry proves "no solution better (larger) than 10".
  cache.Store(sig, /*minimize=*/false, /*have_bound=*/true, 10);
  EXPECT_TRUE(cache.Lookup(sig, false, true, 10));
  EXPECT_TRUE(cache.Lookup(sig, false, true, 15));
  EXPECT_FALSE(cache.Lookup(sig, false, true, 9));
}

TEST(ContextCacheTest, UnconditionalEntryRefutesEverything) {
  ContextCache cache;
  const uint64_t sig = 0x5EEDull;
  cache.Store(sig, true, /*have_bound=*/false, 0);
  EXPECT_TRUE(cache.Lookup(sig, true, false, 0));
  EXPECT_TRUE(cache.Lookup(sig, true, true, -1000));
  EXPECT_TRUE(cache.Lookup(sig, true, true, 1000));
}

TEST(ContextCacheTest, RestoreKeepsTheStrongerProof) {
  ContextCache cache;
  const uint64_t sig = 0xF00Dull;
  // Minimize: a larger bound excludes more solutions, i.e. is stronger.
  cache.Store(sig, true, true, 5);
  EXPECT_FALSE(cache.Lookup(sig, true, true, 10));
  cache.Store(sig, true, true, 10);  // strengthen in place
  EXPECT_TRUE(cache.Lookup(sig, true, true, 10));
  EXPECT_EQ(cache.entries(), 1u);
  cache.Store(sig, true, true, 3);  // weaker re-store must not regress
  EXPECT_TRUE(cache.Lookup(sig, true, true, 10));
  // Unconditional dominates any bound.
  cache.Store(sig, true, false, 0);
  EXPECT_TRUE(cache.Lookup(sig, true, false, 0));
  cache.Store(sig, true, true, 7);  // bounded re-store keeps unconditional
  EXPECT_TRUE(cache.Lookup(sig, true, false, 0));
}

TEST(ContextCacheTest, ModelKeyNamespacesEntries) {
  ContextCache cache;
  const uint64_t sig = 0xBEEFull;
  cache.set_model_key(0x1111);
  cache.Store(sig, true, false, 0);
  ASSERT_TRUE(cache.Lookup(sig, true, false, 0));
  // A fact delta that changes any group fingerprint re-keys the namespace:
  // every old entry silently stops matching — no sweep needed.
  cache.set_model_key(0x2222);
  EXPECT_FALSE(cache.Lookup(sig, true, false, 0));
  cache.set_model_key(0x1111);
  EXPECT_TRUE(cache.Lookup(sig, true, false, 0));
}

TEST(ContextCacheTest, ClearDropsEntriesKeepsModelKey) {
  ContextCache cache;
  cache.set_model_key(42);
  cache.Store(1, true, false, 0);
  cache.Store(2, true, false, 0);
  EXPECT_EQ(cache.entries(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup(1, true, false, 0));
  EXPECT_EQ(cache.model_key(), 42u);
}

TEST(ContextCacheTest, LazyAllocationAndCapacityRounding) {
  ContextCache cache(100);
  EXPECT_EQ(cache.capacity(), 128u) << "rounded up to a power of two";
  EXPECT_EQ(ContextCache(1).capacity(), 64u) << "minimum table size";
  EXPECT_EQ(cache.MemoryBytes(), 0u) << "table is allocated on first use";
  cache.Store(7, true, false, 0);
  EXPECT_GT(cache.MemoryBytes(), 0u);
}

TEST(ContextCacheTest, EvictionIsBoundedAndKeepsTheNewestEntry) {
  ContextCache cache(64);
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t sig = 0x9E3779B97F4A7C15ull * (i + 1);
    cache.Store(sig, true, false, 0);
    // A freshly stored proof is always findable (the deterministic victim
    // rule replaces a slot in the probe window, never drops the new entry).
    EXPECT_TRUE(cache.Lookup(sig, true, false, 0)) << "i=" << i;
  }
  EXPECT_LE(cache.entries(), cache.capacity());
}

// ---- Cache-enabled search --------------------------------------------------

// The cross-restart / cross-solve payoff: a second solve of the same model,
// warm-started with the first solve's optimum, hits the root proof stored
// when the first solve exhausted the tree and skips the search entirely.
TEST(ContextCacheSearchTest, CrossSolveCacheSkipsExhaustedTree) {
  auto m = MakeACloudModel(6, 3);
  ContextCache cache;
  Model::Options o;
  o.time_limit_ms = 0;
  o.context_cache = &cache;

  Solution first = m->Solve(o);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_GT(first.stats.cache_stores, 0u);
  EXPECT_EQ(first.stats.cache_hits, 0u) << "cold cache cannot hit";
  EXPECT_GT(first.stats.cache_mem_bytes, 0u);

  Model::Options o2 = o;
  o2.warm_start = first.values;
  Solution second = m->Solve(o2);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_EQ(second.objective, first.objective);
  EXPECT_GE(second.stats.cache_hits, 1u)
      << "the exhausted-root proof from solve 1 must prune solve 2";
  EXPECT_LT(second.stats.nodes, first.stats.nodes)
      << "solve 2 re-searched a tree solve 1 already exhausted";
}

// With the cache the *work* changes but the *answer* must not: same status
// and objective as the cache-free reference, across plain and Luby-restart
// solves (restarts are where intra-solve reuse actually fires).
TEST(ContextCacheSearchTest, CacheOnMatchesCacheOffAnswers) {
  for (uint64_t restart_base : {uint64_t{0}, uint64_t{64}}) {
    auto run = [&](ContextCache* cache) {
      auto m = MakeACloudModel(6, 3);
      Model::Options o;
      o.time_limit_ms = 0;
      o.restart_base_nodes = restart_base;
      o.seed = 0x5EED;
      o.context_cache = cache;
      return m->Solve(o);
    };
    Solution off = run(nullptr);
    ContextCache cache;
    Solution on = run(&cache);
    ASSERT_EQ(off.status, SolveStatus::kOptimal);
    EXPECT_EQ(on.status, off.status) << "restart_base=" << restart_base;
    EXPECT_EQ(on.objective, off.objective) << "restart_base=" << restart_base;
    EXPECT_EQ(off.stats.cache_hits, 0u);
    EXPECT_EQ(off.stats.cache_stores, 0u);
    if (restart_base > 0) {
      // Restart dives revisit contexts earlier dives exhausted: the cache
      // must actually fire (this is deterministic — fixed seed, no clock).
      EXPECT_GT(on.stats.cache_hits, 0u);
    }
  }
}

// ---- Limited-discrepancy dives ---------------------------------------------

TEST(LdsDiveTest, DiscrepancyBudgetShapesTheDive) {
  // 6 vars in {0,1,2}, maximize the sum, no constraints: the heuristic-first
  // path (value-order index 0 everywhere) is all-zeros, and reaching value
  // `v` at any variable costs exactly `v` discrepancies. So a budget of d
  // bounds the best reachable objective by d.
  auto run = [](int64_t max_disc, Incumbent* inc, uint64_t* nodes) {
    Model m;
    LinExpr sum;
    for (int i = 0; i < 6; ++i) {
      IntVar x = m.NewInt(0, 2);
      m.MarkDecision(x);
      sum += LinExpr(x);
    }
    m.Maximize(sum);
    Model::Options o;
    o.time_limit_ms = 0;
    SearchContext ctx(m, o);
    EXPECT_TRUE(ctx.PropagateRoot());
    SearchContext::DiveLimits limits;
    limits.bound_objective = false;  // count every leaf, undistorted
    limits.max_discrepancies = max_disc;
    DiveEnd end = ctx.Dive(limits, inc);
    *nodes = ctx.stats.nodes;
    return end;
  };

  Incumbent inc;
  uint64_t nodes = 0;
  // d=0: exactly the heuristic path — 6 nodes, objective 0, truncated.
  EXPECT_EQ(run(0, &inc, &nodes), DiveEnd::kCutoff);
  EXPECT_TRUE(inc.found);
  EXPECT_EQ(inc.objective, 0);
  EXPECT_EQ(nodes, 6u);

  // d=1: one unit of discrepancy buys at most one value-1 step.
  inc = Incumbent{};
  EXPECT_EQ(run(1, &inc, &nodes), DiveEnd::kCutoff);
  EXPECT_EQ(inc.objective, 1);

  // Budget >= the deepest path's total discrepancy (6 vars * index 2):
  // nothing is truncated, the dive exhausts, and the optimum appears.
  inc = Incumbent{};
  EXPECT_EQ(run(12, &inc, &nodes), DiveEnd::kExhausted);
  EXPECT_EQ(inc.objective, 12);

  // -1 disables LDS entirely: identical exhaustive result.
  inc = Incumbent{};
  EXPECT_EQ(run(-1, &inc, &nodes), DiveEnd::kExhausted);
  EXPECT_EQ(inc.objective, 12);
}

TEST(LdsDiveTest, TruncatedDivesStoreNoCacheProofs) {
  // An LDS-truncated subtree is not exhausted: recording a proof for it
  // would let a later unlimited dive skip unexplored ground. The truncation
  // flag must poison every ancestor's store.
  Model m;
  LinExpr sum;
  for (int i = 0; i < 6; ++i) {
    IntVar x = m.NewInt(0, 2);
    m.MarkDecision(x);
    sum += LinExpr(x);
  }
  m.Maximize(sum);
  ContextCache cache;
  Model::Options o;
  o.time_limit_ms = 0;
  o.context_cache = &cache;
  SearchContext ctx(m, o);
  ASSERT_TRUE(ctx.PropagateRoot());

  Incumbent inc;
  SearchContext::DiveLimits lds;
  lds.bound_objective = false;
  lds.max_discrepancies = 0;
  ASSERT_EQ(ctx.Dive(lds, &inc), DiveEnd::kCutoff);
  EXPECT_EQ(ctx.stats.cache_stores, 0u)
      << "a truncated dive recorded an exhausted-subtree proof";

  // The full follow-up dive must still reach the true optimum.
  SearchContext::DiveLimits full;
  Incumbent best;
  ASSERT_EQ(ctx.Dive(full, &best), DiveEnd::kExhausted);
  EXPECT_EQ(best.objective, 12);
}

}  // namespace
}  // namespace cologne::solver

// Unit tests for common utilities: Status/Result, Value, stats, RNG, strings.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace cologne {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  COLOGNE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(3).ok());
  EXPECT_FALSE(UseReturnIfError(-3).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_EQ(Value::Node(3).as_node(), 3);
  EXPECT_EQ(Value::Sym(9).sym_index(), 9);
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::Str("x").is_numeric());
}

TEST(ValueTest, IntAsDoubleCoerces) {
  EXPECT_DOUBLE_EQ(Value::Int(4).as_double(), 4.0);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_NE(Value::Int(3), Value::Str("3"));
  EXPECT_LT(Value::Int(3), Value::Int(4));
}

TEST(ValueTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Int(3).Hash());
  EXPECT_NE(Value::Int(3).Hash(), Value::Int(4).Hash());
  EXPECT_NE(Value::Int(3).Hash(), Value::Node(3).Hash());
  EXPECT_NE(Value::Str("a").Hash(), Value::Str("b").Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(-2).ToString(), "-2");
  EXPECT_EQ(Value::Str("vm1").ToString(), "\"vm1\"");
  EXPECT_EQ(Value::Node(5).ToString(), "@5");
  EXPECT_EQ(Value::Sym(2).ToString(), "$2");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, WireSizeAccountsPayload) {
  EXPECT_EQ(Value::Int(1).WireSize(), 9u);
  EXPECT_EQ(Value::Node(1).WireSize(), 5u);
  EXPECT_EQ(Value::Str("abcd").WireSize(), 1u + 4u + 4u);
}

TEST(ValueTest, RowHashAndPrint) {
  Row r{Value::Int(1), Value::Str("a")};
  Row r2{Value::Str("a"), Value::Int(1)};
  EXPECT_NE(HashRow(r), HashRow(r2)) << "row hash must be order-sensitive";
  EXPECT_EQ(RowToString(r), "(1, \"a\")");
}

TEST(StatsTest, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
}

TEST(StatsTest, VectorHelpers) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Stdev(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 9.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, 50), 2.0);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleAndGaussianSanity) {
  Rng r(9);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(r.UniformDouble());
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  RunningStats g;
  for (int i = 0; i < 20000; ++i) g.Add(r.Gaussian(10.0, 2.0));
  EXPECT_NEAR(g.mean(), 10.0, 0.1);
  EXPECT_NEAR(g.stdev(), 2.0, 0.1);
}

TEST(StringsTest, SplitJoinTrim) {
  std::vector<std::string> want{"a", "", "b"};
  EXPECT_EQ(Split("a,,b", ','), want);
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("goal minimize", "goal"));
  EXPECT_FALSE(StartsWith("go", "goal"));
}

TEST(StringsTest, FormatAndLower) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(ToLower("MiNiMiZe"), "minimize");
}

}  // namespace
}  // namespace cologne

// End-to-end runtime tests: full Colog programs through compile ->
// facts -> invokeSolver -> writeback -> incremental re-evaluation.
#include <gtest/gtest.h>

#include "colog/planner.h"
#include "runtime/instance.h"
#include "runtime/system.h"

namespace cologne::runtime {
namespace {

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

// The paper's ACloud program (Section 4.2) with migration-limit extension.
const char* kACloud = R"(
param max_migrates = 100.
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].
r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
)";

class ACloudRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto compiled = colog::CompileColog(kACloud);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    program_ = std::move(compiled).value();
    instance_ = std::make_unique<Instance>(0, &program_);
    ASSERT_TRUE(instance_->Init().ok());
  }

  // vm(Vid, Cpu, Mem), host(Hid, Cpu, Mem), hostMemThres(Hid, M),
  // origin(Vid, Hid).
  void AddVm(int64_t vid, int64_t cpu, int64_t mem, int64_t origin_host) {
    ASSERT_TRUE(instance_->InsertFact("vm", R({vid, cpu, mem})).ok());
    ASSERT_TRUE(instance_->InsertFact("origin", R({vid, origin_host})).ok());
  }
  void AddHost(int64_t hid, int64_t mem_thres) {
    ASSERT_TRUE(instance_->InsertFact("host", R({hid, 0, 0})).ok());
    ASSERT_TRUE(instance_->InsertFact("hostMemThres", R({hid, mem_thres})).ok());
  }

  colog::CompiledProgram program_;
  std::unique_ptr<Instance> instance_;
};

TEST_F(ACloudRuntimeTest, ToAssignDerivedIncrementally) {
  AddVm(1, 40, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  EXPECT_EQ(instance_->engine().GetTable("toAssign")->size(), 2u);
  AddVm(2, 20, 8, 101);
  EXPECT_EQ(instance_->engine().GetTable("toAssign")->size(), 4u);
}

TEST_F(ACloudRuntimeTest, SolveBalancesLoad) {
  // VMs with CPU 40, 20, 20: optimum splits 40 | 20+20 across two hosts.
  AddVm(1, 40, 8, 100);
  AddVm(2, 20, 8, 100);
  AddVm(3, 20, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  auto out = instance_->Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_EQ(out.value().status, solver::SolveStatus::kOptimal);
  ASSERT_TRUE(out.value().has_objective);
  EXPECT_NEAR(out.value().objective, 0.0, 1e-9) << "perfect balance possible";

  // Writeback: assign rows materialized with concrete 0/1 values.
  datalog::Table* assign = instance_->engine().GetTable("assign");
  ASSERT_EQ(assign->size(), 6u);
  // Each VM on exactly one host.
  for (int64_t vid : {1, 2, 3}) {
    int64_t total = 0;
    for (const Row& row : assign->Rows()) {
      if (row[0].as_int() == vid) total += row[2].as_int();
    }
    EXPECT_EQ(total, 1) << "constraint c1 for vm " << vid;
  }
  // The goal table materialized with the true stdev.
  datalog::Table* goal = instance_->engine().GetTable("hostStdevCpu");
  ASSERT_EQ(goal->size(), 1u);
  EXPECT_NEAR(goal->Rows()[0][0].as_double(), 0.0, 1e-9);
}

TEST_F(ACloudRuntimeTest, MemoryConstraintRespected) {
  // Two big-memory VMs cannot share the 10-unit host; CPU balance would
  // prefer them together on host 100 otherwise.
  AddVm(1, 10, 8, 100);
  AddVm(2, 10, 8, 100);
  AddHost(100, 10);
  AddHost(101, 32);
  auto out = instance_->Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  datalog::Table* assign = instance_->engine().GetTable("assign");
  int64_t mem_on_100 = 0;
  for (const Row& row : assign->Rows()) {
    if (row[1].as_int() == 100 && row[2].as_int() == 1) mem_on_100 += 8;
  }
  EXPECT_LE(mem_on_100, 10) << "constraint c2 violated";
}

TEST_F(ACloudRuntimeTest, InfeasibleWhenMemoryTooSmall) {
  AddVm(1, 10, 8, 100);
  AddHost(100, 4);  // the only host cannot fit the VM
  auto out = instance_->Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().status, solver::SolveStatus::kInfeasible);
}

TEST_F(ACloudRuntimeTest, MigrationCountDerived) {
  AddVm(1, 40, 8, 100);  // currently on host 100
  AddVm(2, 20, 8, 100);
  AddVm(3, 20, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  auto out = instance_->Solve();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.value().has_solution());
  // Balancing requires moving some VMs off host 100; migrateCount counts them.
  datalog::Table* mc = instance_->engine().GetTable("migrateCount");
  ASSERT_EQ(mc->size(), 1u);
  int64_t migrations = mc->Rows()[0][0].as_int();
  EXPECT_GE(migrations, 1);
  EXPECT_LE(migrations, 2);
}

TEST_F(ACloudRuntimeTest, MigrationLimitChangesSolution) {
  // Recompile with max_migrates = 0: no VM may leave its origin host.
  std::map<std::string, Value> params{{"max_migrates", Value::Int(0)}};
  auto compiled = colog::CompileColog(kACloud, params);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  ASSERT_TRUE(inst.InsertFact("vm", R({1, 40, 8})).ok());
  ASSERT_TRUE(inst.InsertFact("origin", R({1, 100})).ok());
  ASSERT_TRUE(inst.InsertFact("vm", R({2, 20, 8})).ok());
  ASSERT_TRUE(inst.InsertFact("origin", R({2, 100})).ok());
  ASSERT_TRUE(inst.InsertFact("host", R({100, 0, 0})).ok());
  ASSERT_TRUE(inst.InsertFact("hostMemThres", R({100, 32})).ok());
  ASSERT_TRUE(inst.InsertFact("host", R({101, 0, 0})).ok());
  ASSERT_TRUE(inst.InsertFact("hostMemThres", R({101, 32})).ok());
  auto out = inst.Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  // Both VMs stay on host 100 even though splitting balances better.
  datalog::Table* assign = inst.engine().GetTable("assign");
  for (const Row& row : assign->Rows()) {
    if (row[2].as_int() == 1) {
      EXPECT_EQ(row[1].as_int(), 100);
    }
  }
}

TEST_F(ACloudRuntimeTest, ResolveAfterWorkloadChangeReplacesOutput) {
  AddVm(1, 40, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  ASSERT_TRUE(instance_->Solve().ok());
  size_t before = instance_->engine().GetTable("assign")->size();
  EXPECT_EQ(before, 2u);
  // A new VM arrives; re-solving must replace old output cleanly.
  AddVm(2, 40, 8, 101);
  auto out2 = instance_->Solve();
  ASSERT_TRUE(out2.ok()) << out2.status().ToString();
  EXPECT_EQ(instance_->engine().GetTable("assign")->size(), 4u);
  // VM 1 and 2 end up on different hosts for balance.
  datalog::Table* assign = instance_->engine().GetTable("assign");
  int64_t host_of_1 = -1, host_of_2 = -1;
  for (const Row& row : assign->Rows()) {
    if (row[2].as_int() != 1) continue;
    if (row[0].as_int() == 1) host_of_1 = row[1].as_int();
    if (row[0].as_int() == 2) host_of_2 = row[1].as_int();
  }
  EXPECT_NE(host_of_1, host_of_2);
}

// --- Distributed: a miniature Follow-the-Sun negotiation -------------------

// Simplified two-node Follow-the-Sun (paper Section 4.3): node X decides how
// many VMs to migrate to its neighbor Y for a single demand location, then
// propagates the symmetric row and updates allocations via post-solve rules.
const char* kMiniFts = R"(
table curVm(X,D,R) keys(X,D).
table migVm(X,Y,D,R) keys(X,Y,D).

goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain [-60,60].

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).

d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.

d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X), commCost(@Y,D,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
d8 aggCost(@X,C) <- aggCommCost(@X,C1), aggMigCost(@X,C3), nborAggCommCost(@X,C4), C==C1+C3+C4.

d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
// Allocations cannot go negative (implicit in the paper's model).
c3 nextVm(@X,D,R) -> R>=0.
c4 nborNextVm(@X,Y,D,R) -> R>=0.

r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- migVm(@X,Y,D,R2), curVm(@X,D,R1), R:=R1-R2.
)";

TEST_F(ACloudRuntimeTest, SecondSolveWarmStartsFromCachedSolution) {
  AddVm(1, 40, 8, 100);
  AddVm(2, 20, 8, 100);
  AddVm(3, 20, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  auto first = instance_->Solve();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().warm_started) << "nothing cached yet";
  EXPECT_FALSE(instance_->warm_start_cache().empty());

  // The recurring invokeSolver loop: the second solve starts from the
  // cached placement and must reach the same optimum.
  AddVm(4, 10, 8, 101);
  auto second = instance_->Solve();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().warm_started);
  ASSERT_TRUE(second.value().has_solution());

  instance_->reset_warm_start();
  EXPECT_TRUE(instance_->warm_start_cache().empty());
}

TEST_F(ACloudRuntimeTest, WarmStartCanBeDisabled) {
  AddVm(1, 40, 8, 100);
  AddHost(100, 32);
  SolveOptions o = instance_->solve_options();
  o.warm_start = false;
  instance_->set_solve_options(o);
  ASSERT_TRUE(instance_->Solve().ok());
  auto second = instance_->Solve();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().warm_started);
}

TEST_F(ACloudRuntimeTest, LnsBackendSolvesTheSameModel) {
  AddVm(1, 40, 8, 100);
  AddVm(2, 20, 8, 100);
  AddVm(3, 20, 8, 100);
  AddHost(100, 32);
  AddHost(101, 32);
  SolveOptions o = instance_->solve_options();
  o.backend = solver::Backend::kLns;
  o.time_limit_ms = 500;
  o.max_iterations = 200;
  instance_->set_solve_options(o);
  auto out = instance_->Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  EXPECT_EQ(out.value().backend, solver::Backend::kLns);
  ASSERT_TRUE(out.value().has_objective);
  EXPECT_NEAR(out.value().objective, 0.0, 1e-9)
      << "LNS must find the perfectly balanced placement here";
}

TEST(SolverKnobsTest, ProgramKnobsConfigureInstanceOptions) {
  const char* src = R"(
param SOLVER_BACKEND = "lns".
param SOLVER_MAX_TIME = 250.
param SOLVER_SEED = 99.
param SOLVER_RESTARTS = 128.
param SOLVER_WORKERS = 3.
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<V>) <- pick(I,V).
)";
  auto compiled = colog::CompileColog(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  Instance inst(0, &prog);
  ASSERT_TRUE(inst.Init().ok());
  EXPECT_EQ(inst.solve_options().backend, solver::Backend::kLns);
  EXPECT_DOUBLE_EQ(inst.solve_options().time_limit_ms, 250);
  EXPECT_EQ(inst.solve_options().seed, 99u);
  EXPECT_EQ(inst.solve_options().restart_base_nodes, 128u);
  EXPECT_EQ(inst.solve_options().num_workers, 3);
}

TEST(FollowTheSunRuntimeTest, TwoNodeNegotiationMovesVmsTowardCheapComm) {
  auto compiled = colog::CompileColog(kMiniFts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  EXPECT_TRUE(prog.distributed);

  System sys(&prog, 2);
  ASSERT_TRUE(sys.Init().ok());
  ASSERT_TRUE(sys.AddLink(0, 1).ok());

  auto N = [](NodeId n) { return Value::Node(n); };
  // Topology facts (link is symmetric, stored per owner).
  ASSERT_TRUE(sys.InsertFact(0, "link", {N(0), N(1)}).ok());
  ASSERT_TRUE(sys.InsertFact(1, "link", {N(1), N(0)}).ok());
  // One demand location D=7. Node 0 currently hosts 10 VMs for it, node 1
  // hosts 0. Node 1 is far cheaper for this demand: comm cost 1 vs 50.
  ASSERT_TRUE(sys.InsertFact(0, "dc", {N(0), Value::Int(7)}).ok());
  ASSERT_TRUE(sys.InsertFact(0, "curVm", {N(0), Value::Int(7), Value::Int(10)}).ok());
  ASSERT_TRUE(sys.InsertFact(1, "curVm", {N(1), Value::Int(7), Value::Int(0)}).ok());
  ASSERT_TRUE(sys.InsertFact(0, "commCost", {N(0), Value::Int(7), Value::Int(50)}).ok());
  ASSERT_TRUE(sys.InsertFact(1, "commCost", {N(1), Value::Int(7), Value::Int(1)}).ok());
  ASSERT_TRUE(sys.InsertFact(0, "migCost", {N(0), N(1), Value::Int(2)}).ok());
  ASSERT_TRUE(sys.InsertFact(0, "resource", {N(0), Value::Int(60)}).ok());
  ASSERT_TRUE(sys.InsertFact(1, "resource", {N(1), Value::Int(60)}).ok());
  // Let the localization rewrite ship node 1's state to node 0.
  sys.RunToQuiescence();

  // Node 0 initiates negotiation over the link.
  ASSERT_TRUE(sys.InsertFact(0, "setLink", {N(0), N(1)}).ok());
  ASSERT_TRUE(sys.InsertFact(1, "setLink", {N(1), N(0)}).ok());
  sys.RunToQuiescence();

  sys.node(0).set_solve_options([] {
    SolveOptions o;
    o.time_limit_ms = 5000;
    return o;
  }());
  auto out = sys.node(0).Solve();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out.value().has_solution());
  sys.RunToQuiescence();  // deliver r2's symmetric migVm row to node 1

  // Optimal: migrate all 10 VMs to node 1 (cost 10*1 + 10*2 < 10*50).
  datalog::Table* mig0 = sys.node(0).engine().GetTable("migVm");
  ASSERT_GE(mig0->size(), 1u);
  Row want{N(0), N(1), Value::Int(7), Value::Int(10)};
  EXPECT_TRUE(mig0->Contains(want))
      << "migVm rows: " << [&] {
           std::string s;
           for (const Row& r : mig0->Rows()) s += RowToString(r) + " ";
           return s;
         }();

  // r2 propagated the symmetric row to node 1.
  datalog::Table* mig1 = sys.node(1).engine().GetTable("migVm");
  Row sym{N(1), N(0), Value::Int(7), Value::Int(-10)};
  EXPECT_TRUE(mig1->Contains(sym));

  // r3 updated both allocations.
  EXPECT_TRUE(sys.node(0).engine().GetTable("curVm")->Contains(
      {N(0), Value::Int(7), Value::Int(0)}));
  EXPECT_TRUE(sys.node(1).engine().GetTable("curVm")->Contains(
      {N(1), Value::Int(7), Value::Int(10)}));
}

TEST(SystemTest, ScheduleSolveRunsAtVirtualTime) {
  auto compiled = colog::CompileColog(kACloud);
  ASSERT_TRUE(compiled.ok());
  colog::CompiledProgram prog = std::move(compiled).value();
  System sys(&prog, 1);
  ASSERT_TRUE(sys.Init().ok());
  ASSERT_TRUE(sys.InsertFact(0, "vm", R({1, 40, 8})).ok());
  ASSERT_TRUE(sys.InsertFact(0, "origin", R({1, 100})).ok());
  ASSERT_TRUE(sys.InsertFact(0, "host", R({100, 0, 0})).ok());
  ASSERT_TRUE(sys.InsertFact(0, "hostMemThres", R({100, 32})).ok());
  bool solved = false;
  sys.ScheduleSolve(0, 60.0, [&](const SolveOutput& out) {
    solved = out.has_solution();
  });
  sys.RunUntil(59.0);
  EXPECT_FALSE(solved);
  sys.RunUntil(61.0);
  EXPECT_TRUE(solved);
  EXPECT_EQ(sys.node(0).solve_count(), 1u);
}

}  // namespace
}  // namespace cologne::runtime

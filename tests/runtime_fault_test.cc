// Fault-injection runtime tests (ISSUE 3): crash/restart recovery, epoch
// fencing, deterministic trace replay, and a seeded randomized soak over
// Follow-the-Sun and distributed wireless under churn.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/followsun.h"
#include "apps/wireless.h"
#include "apps/acloud.h"
#include "colog/planner.h"
#include "net/fault_plan.h"
#include "runtime/instance.h"
#include "runtime/system.h"
#include "runtime/trace_replay.h"

namespace cologne::runtime {
namespace {

using apps::FollowTheSunScenario;
using apps::FtsConfig;
using apps::FtsResult;
using apps::WirelessConfig;
using apps::WirelessProtocol;
using apps::WirelessScenario;

// Sanitizer builds run the engine ~10x slower; shrink the soak accordingly.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kSoakPlans = 12;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kSoakPlans = 12;
#else
constexpr int kSoakPlans = 50;
#endif
#else
constexpr int kSoakPlans = 50;
#endif

Row R(std::initializer_list<int64_t> xs) {
  Row r;
  for (int64_t x : xs) r.push_back(Value::Int(x));
  return r;
}

// Small, fast Follow-the-Sun workload for churn tests: 3-4 DCs, small
// domains so each per-link COP solves to optimality in milliseconds.
FtsConfig SmallFts(uint64_t seed, int num_dcs = 3) {
  FtsConfig cfg;
  cfg.num_dcs = num_dcs;
  cfg.capacity = 20;
  cfg.demand_hi = 5;
  cfg.solver_time_ms = 5000;  // generous cap; solves prove optimality in ms
  cfg.seed = seed;
  return cfg;
}

WirelessConfig SmallWireless(uint64_t seed) {
  WirelessConfig cfg;
  cfg.grid_w = 3;
  cfg.grid_h = 2;
  cfg.num_flows = 4;
  cfg.link_solve_ms = 5000;  // generous cap; solves prove optimality in ms
  cfg.seed = seed;
  return cfg;
}

/// True when the plan can lose or sever regular traffic (under loss the
/// UDP-style protocol legitimately lands farther from the no-fault optimum,
/// so objective bounds must be looser).
bool PlanIsLossy(const net::FaultPlan& plan) {
  if (!plan.partitions.empty()) return true;
  for (const net::LinkFault& f : plan.links) {
    if (!f.down.empty() || !f.loss.empty()) return true;
  }
  return false;
}

/// Per-node table cardinalities, for tuple-leak invariants.
std::map<std::string, size_t> TableSizes(System* sys, NodeId node) {
  std::map<std::string, size_t> out;
  for (const auto& [name, schema] : sys->node(node).program().tables) {
    const datalog::Table* t = sys->node(node).engine().GetTable(name);
    out[name] = t == nullptr ? 0 : t->size();
  }
  return out;
}

// --- Mini program for direct System-level crash tests ------------------------

const char* kMiniDistributed = R"(
table stock(X,I,N) keys(X,I).
r1 mirror(@Y,X,I,N) <- link(@X,Y), stock(@X,I,N).
)";

class MiniSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto compiled = colog::CompileColog(kMiniDistributed);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    prog_ = std::move(compiled).value();
    sys_ = std::make_unique<System>(&prog_, 2);
    ASSERT_TRUE(sys_->Init().ok());
    ASSERT_TRUE(sys_->AddLink(0, 1).ok());
    auto N = [](NodeId n) { return Value::Node(n); };
    ASSERT_TRUE(sys_->InsertFact(0, "link", {N(0), N(1)}).ok());
    ASSERT_TRUE(sys_->InsertFact(1, "link", {N(1), N(0)}).ok());
  }

  colog::CompiledProgram prog_;
  std::unique_ptr<System> sys_;
};

TEST_F(MiniSystemTest, CrashDropsStateRestartRebuildsFromJournal) {
  auto N = [](NodeId n) { return Value::Node(n); };
  // Node 0 publishes two stock rows; r1 mirrors them to node 1.
  ASSERT_TRUE(
      sys_->InsertFact(0, "stock", {N(0), Value::Int(1), Value::Int(5)}).ok());
  ASSERT_TRUE(
      sys_->InsertFact(0, "stock", {N(0), Value::Int(2), Value::Int(7)}).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(1).engine().GetTable("mirror")->size(), 2u);

  ASSERT_TRUE(sys_->CrashNode(0).ok());
  EXPECT_TRUE(sys_->node(0).crashed());
  EXPECT_EQ(sys_->node(0).engine().GetTable("stock")->size(), 0u)
      << "volatile state gone";
  // Facts and solves fail while down.
  EXPECT_FALSE(
      sys_->InsertFact(0, "stock", {N(0), Value::Int(3), Value::Int(1)}).ok());

  ASSERT_TRUE(sys_->RestartNode(0, /*retain_warm_start=*/false).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(0).epoch(), 1u);
  EXPECT_EQ(sys_->node(0).engine().GetTable("stock")->size(), 2u)
      << "journal replay restored the base facts";
  // No duplicate-count inflation at the peer: still exactly two mirrors,
  // and deleting a stock row retracts its mirror (counts balanced).
  EXPECT_EQ(sys_->node(1).engine().GetTable("mirror")->size(), 2u);
  ASSERT_TRUE(
      sys_->node(0).DeleteFact("stock", {N(0), Value::Int(1), Value::Int(5)}).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(1).engine().GetTable("mirror")->size(), 1u)
      << "tuple leak: re-derived mirror row was double-counted";
}

TEST_F(MiniSystemTest, PeerStateIsRestoredToRestartedNode) {
  auto N = [](NodeId n) { return Value::Node(n); };
  // Node 1 publishes; node 0 holds the mirror, crashes, and must re-learn
  // it from node 1's anti-entropy replay.
  ASSERT_TRUE(
      sys_->InsertFact(1, "stock", {N(1), Value::Int(9), Value::Int(3)}).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(0).engine().GetTable("mirror")->size(), 1u);

  ASSERT_TRUE(sys_->CrashNode(0).ok());
  ASSERT_TRUE(sys_->RestartNode(0, false).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(0).engine().GetTable("mirror")->size(), 1u)
      << "rejoin replay must restore what the node had learned from peers";
}

TEST_F(MiniSystemTest, StaleEpochMessagesAreFenced) {
  auto N = [](NodeId n) { return Value::Node(n); };
  // Long one-way latency so a message can span the crash+restart.
  ASSERT_TRUE(
      sys_->InsertFact(0, "stock", {N(0), Value::Int(1), Value::Int(5)}).ok());
  // The r1-derived mirror for node 1 is in flight now (latency 1 ms). Crash
  // and restart node 0 before delivering, then drain: the in-flight message
  // still carries epoch 0 and the replay carries epoch 1 — the pair must
  // not double-apply.
  ASSERT_TRUE(sys_->CrashNode(0).ok());
  ASSERT_TRUE(sys_->RestartNode(0, false).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(1).engine().GetTable("mirror")->size(), 1u);
  ASSERT_TRUE(
      sys_->node(0).DeleteFact("stock", {N(0), Value::Int(1), Value::Int(5)}).ok());
  sys_->RunToQuiescence();
  EXPECT_EQ(sys_->node(1).engine().GetTable("mirror")->size(), 0u)
      << "stale-epoch duplicate leaked a derivation count";
}

// --- Warm-start cache across crash/restart -----------------------------------

const char* kTinyCop = R"(
goal minimize C in cost(C).
var pick(I,V) forall item(I) domain [0,1].
d1 cost(SUM<W>) <- pick(I,V), weight(I,W2), W==V*W2.
)";

TEST(InstanceCrashTest, WarmStartCacheRetainedOrCleared) {
  auto compiled = colog::CompileColog(kTinyCop);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  colog::CompiledProgram prog = std::move(compiled).value();
  for (bool retain : {true, false}) {
    Instance inst(0, &prog);
    ASSERT_TRUE(inst.Init().ok());
    ASSERT_TRUE(inst.InsertFact("item", R({1})).ok());
    ASSERT_TRUE(inst.InsertFact("weight", R({1, 4})).ok());
    ASSERT_TRUE(inst.Solve().ok());
    EXPECT_FALSE(inst.warm_start_cache().empty());

    ASSERT_TRUE(inst.Crash().ok());
    ASSERT_TRUE(inst.Restart(retain).ok());
    ASSERT_TRUE(inst.ReplayBaseFacts().ok());
    EXPECT_EQ(inst.warm_start_cache().empty(), !retain);

    auto out = inst.Solve();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE(out.value().has_solution());
    EXPECT_EQ(out.value().warm_started, retain)
        << "retained cache must warm-start the post-restart solve";
  }
}

// --- Determinism: byte-identical traces --------------------------------------

TEST(TraceDeterminismTest, SamePlanSameSeedSameTrace) {
  std::vector<std::pair<NodeId, NodeId>> links{{0, 1}, {1, 2}, {0, 2}};
  net::FaultPlan plan = net::FaultPlan::Random(21, 3, links);
  TraceRecorder trace_a, trace_b;
  double final_a = 0, final_b = 0;
  {
    FtsConfig cfg = SmallFts(5);
    cfg.fault_plan = plan;
    cfg.trace = &trace_a;
    FollowTheSunScenario s(cfg);
    auto r = s.Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    final_a = r.value().final_cost;
  }
  {
    FtsConfig cfg = SmallFts(5);
    cfg.fault_plan = plan;
    cfg.trace = &trace_b;
    FollowTheSunScenario s(cfg);
    auto r = s.Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    final_b = r.value().final_cost;
  }
  ASSERT_GT(trace_a.lines().size(), 10u) << "trace should record the run";
  EXPECT_EQ(DiffTraces(trace_a.lines(), trace_b.lines()), "")
      << "identical (program, seed, fault plan) must be byte-identical";
  EXPECT_DOUBLE_EQ(final_a, final_b);
}

TEST(TraceDeterminismTest, EmptyPlanMatchesNoPlanBehavior) {
  TraceRecorder trace_a, trace_b;
  {
    FtsConfig cfg = SmallFts(6);
    cfg.trace = &trace_a;
    FollowTheSunScenario s(cfg);
    ASSERT_TRUE(s.Run().ok());
  }
  {
    FtsConfig cfg = SmallFts(6);
    cfg.trace = &trace_b;
    cfg.fault_plan = net::FaultPlan{};  // explicitly empty
    FollowTheSunScenario s(cfg);
    ASSERT_TRUE(s.Run().ok());
  }
  EXPECT_EQ(DiffTraces(trace_a.lines(), trace_b.lines()), "");
}

TEST(TraceDeterminismTest, HeaderReproducesTheRun) {
  std::vector<std::pair<NodeId, NodeId>> links{{0, 1}, {1, 2}, {0, 2}};
  net::FaultPlan plan = net::FaultPlan::Random(33, 3, links);
  TraceRecorder original;
  {
    FtsConfig cfg = SmallFts(9);
    cfg.fault_plan = plan;
    cfg.trace = &original;
    FollowTheSunScenario s(cfg);
    ASSERT_TRUE(s.Run().ok());
  }
  // The replay workflow: parse the header, rebuild the config from it, and
  // re-run — traces must match byte for byte.
  ASSERT_FALSE(original.lines().empty());
  auto header = ParseTraceHeader(original.lines()[0]);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().program, "followsun");
  EXPECT_EQ(header.value().seed, 9u);
  TraceRecorder replay;
  {
    FtsConfig cfg = SmallFts(header.value().seed);
    cfg.fault_plan = header.value().plan;
    cfg.trace = &replay;
    FollowTheSunScenario s(cfg);
    ASSERT_TRUE(s.Run().ok());
  }
  EXPECT_EQ(DiffTraces(original.lines(), replay.lines()), "");
}

// --- Acceptance: crash/restart reconvergence ---------------------------------

TEST(CrashRecoveryTest, FtsReconvergesWithin5PctOfNoFaultObjective) {
  FtsConfig base = SmallFts(17, /*num_dcs=*/4);
  FollowTheSunScenario no_fault(base);
  auto r0 = no_fault.Run();
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  double no_fault_final = r0.value().final_cost;

  FtsConfig faulted = base;
  net::CrashFault crash;
  crash.node = 2;
  crash.t = 6.0;        // mid-run: during round 2's negotiations
  crash.restart_t = 16.0;
  faulted.fault_plan.seed = 17;
  faulted.fault_plan.crashes.push_back(crash);
  FollowTheSunScenario with_crash(faulted);
  auto r1 = with_crash.Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const FtsResult& res = r1.value();

  EXPECT_EQ(res.crashes, 1);
  EXPECT_EQ(res.abandoned_links, 0) << "every link must eventually negotiate";
  EXPECT_LE(res.final_cost, no_fault_final * 1.05)
      << "crash/restart run must reconverge to within 5% of the no-fault "
      << "objective (no-fault " << no_fault_final << ", faulted "
      << res.final_cost << ")";
  if (res.failed_rounds > 0) {
    EXPECT_GT(res.recovered_rounds, 0)
        << "failed negotiations must be recovered after the restart";
  }
}

TEST(CrashRecoveryTest, NoTupleLeaksAfterCrashRestart) {
  // Crash-only plan (no loss): after recovery and quiescence, every node's
  // table cardinalities must match the no-fault run — re-derivation plus
  // duplicate suppression must not inflate or hole any table.
  FtsConfig base = SmallFts(23, /*num_dcs=*/4);
  FollowTheSunScenario no_fault(base);
  auto r0 = no_fault.Run();
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  std::vector<std::map<std::string, size_t>> want;
  for (int x = 0; x < base.num_dcs; ++x) {
    want.push_back(TableSizes(no_fault.system(), x));
  }

  FtsConfig faulted = base;
  net::CrashFault crash;
  crash.node = 1;
  crash.t = 7.0;
  crash.restart_t = 14.0;
  faulted.fault_plan.seed = 23;
  faulted.fault_plan.crashes.push_back(crash);
  FollowTheSunScenario with_crash(faulted);
  auto r1 = with_crash.Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  for (int x = 0; x < base.num_dcs; ++x) {
    std::map<std::string, size_t> got = TableSizes(with_crash.system(), x);
    // Negotiation state must be fully cleared everywhere.
    EXPECT_EQ(got["setLink"], 0u) << "node " << x;
    EXPECT_EQ(got["toMigVm"], 0u) << "node " << x;
    // Durable base tables and localized views must match the no-fault run.
    for (const char* table :
         {"curVm", "commCost", "dc", "opCost", "resource", "link", "migCost"}) {
      EXPECT_EQ(got[table], want[static_cast<size_t>(x)][table])
          << "node " << x << " table " << table;
    }
  }
}

TEST(CrashRecoveryTest, ACloudInstanceCrashMidReplay) {
  apps::ACloudConfig cfg;
  cfg.num_dcs = 2;
  cfg.hosts_per_dc = 3;
  cfg.vms_per_host = 4;
  cfg.duration_hours = 1.0;
  cfg.interval_s = 600;
  cfg.solver_time_ms = 5000;  // generous cap; solves prove optimality in ms
  cfg.crash_dc = 0;
  cfg.crash_interval = 2;
  cfg.restart_interval = 4;
  apps::ACloudScenario scenario(cfg);
  auto r = scenario.Run(apps::ACloudPolicy::kACloud);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& intervals = r.value();
  ASSERT_GE(intervals.size(), 6u);
  EXPECT_EQ(intervals[2].skipped_dcs, 1) << "crashed DC skips placement";
  EXPECT_EQ(intervals[3].skipped_dcs, 1);
  EXPECT_TRUE(intervals[4].recovered);
  EXPECT_EQ(intervals[4].skipped_dcs, 0)
      << "restarted DC resumes placement the same interval";
  // The rebuilt instance keeps balancing: post-recovery stdev stays sane.
  EXPECT_LT(intervals.back().avg_cpu_stdev, 100.0);
}

// --- Soak: 50 seeded random fault plans --------------------------------------

TEST(FaultSoakTest, RandomPlansFtsAndWireless) {
  int fts_runs = 0, wireless_runs = 0;
  uint64_t total_drops = 0;
  int total_crashes = 0;
  for (int i = 0; i < kSoakPlans; ++i) {
    uint64_t seed = 1000 + static_cast<uint64_t>(i);
    if (i % 2 == 0) {
      // Follow-the-Sun under churn.
      FtsConfig cfg = SmallFts(seed);
      FollowTheSunScenario topo_probe(cfg);  // same seed => same topology
      auto probe = topo_probe.Run();
      ASSERT_TRUE(probe.ok()) << "seed " << seed << ": "
                              << probe.status().ToString();
      double no_fault_final = probe.value().final_cost;

      net::FaultPlan::RandomConfig rc;
      rc.horizon_s = 40;
      std::vector<std::pair<NodeId, NodeId>> ring{{0, 1}, {1, 2}, {0, 2}};
      cfg.fault_plan = net::FaultPlan::Random(seed, 3, ring, rc);
      FollowTheSunScenario scenario(cfg);
      auto r = scenario.Run();
      ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
      const FtsResult& res = r.value();
      // Anytime property: churn never makes the allocation worse than the
      // starting point. Under loss-free churn (crashes, duplication,
      // reordering) recovery must land within 10% of the no-fault optimum;
      // with message loss the UDP-style protocol keeps its anytime bound
      // but no optimality claim.
      EXPECT_LE(res.final_cost, res.initial_cost * 1.0001)
          << "seed " << seed;
      if (res.abandoned_links == 0) {
        double bound = PlanIsLossy(cfg.fault_plan) ? 2.0 : 1.10;
        EXPECT_LE(res.final_cost, no_fault_final * bound) << "seed " << seed;
      }
      total_drops += res.messages_dropped;
      total_crashes += res.crashes;
      ++fts_runs;
    } else {
      // Distributed wireless channel selection under churn.
      WirelessConfig cfg = SmallWireless(seed);
      WirelessScenario scenario(cfg);
      net::FaultPlan::RandomConfig rc;
      rc.horizon_s = 40;
      cfg.fault_plan = net::FaultPlan::Random(
          seed, static_cast<size_t>(scenario.num_nodes()), scenario.links(), rc);
      WirelessScenario faulted(cfg);
      auto r = faulted.AssignChannels(WirelessProtocol::kDistributed);
      ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
      const auto& res = r.value();
      EXPECT_EQ(res.channel.size() + static_cast<size_t>(res.abandoned_links),
                scenario.links().size())
          << "seed " << seed;
      // Random plans always restart crashed nodes, so every link must end
      // up with a channel (renegotiated after recovery if necessary).
      EXPECT_EQ(res.abandoned_links, 0) << "seed " << seed;
      for (const auto& [link, ch] : res.channel) {
        EXPECT_GE(ch, 1) << "seed " << seed;
        EXPECT_LE(ch, cfg.num_channels) << "seed " << seed;
      }
      total_drops += res.messages_dropped;
      total_crashes += res.crashes;
      ++wireless_runs;
    }
  }
  EXPECT_EQ(fts_runs + wireless_runs, kSoakPlans);
  // The random plans must actually exercise the fault machinery.
  EXPECT_GT(total_drops + static_cast<uint64_t>(total_crashes), 0u);
}

// --- ISSUE 4: reliable transport + batched per-link solves -------------------

// Scaled-soak shape: full 10-DC / 30-node (6x5) topologies in normal builds,
// shrunk under sanitizers like the kSoakPlans soak above.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kScaleDcs = 6;
constexpr int kScaleGridW = 4, kScaleGridH = 3;
constexpr uint64_t kScaleIters = 4;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kScaleDcs = 6;
constexpr int kScaleGridW = 4, kScaleGridH = 3;
constexpr uint64_t kScaleIters = 4;
#else
constexpr int kScaleDcs = 10;
constexpr int kScaleGridW = 6, kScaleGridH = 5;
constexpr uint64_t kScaleIters = 8;
#endif
#else
constexpr int kScaleDcs = 10;
constexpr int kScaleGridW = 6, kScaleGridH = 5;
constexpr uint64_t kScaleIters = 8;
#endif

/// Scaled Follow-the-Sun config: batched incident-link solves with a
/// deterministic LNS budget (iteration-capped, no wall-clock dependence) so
/// 10-DC traces stay byte-identical across runs. Batch width and domains
/// are bounded to keep each per-round COP in the tens of milliseconds.
FtsConfig ScaledFts(uint64_t seed, int num_dcs) {
  FtsConfig cfg;
  cfg.num_dcs = num_dcs;
  cfg.capacity = 45;  // holds the worst-case demand sum (num_dcs * 4)
  cfg.demand_hi = 4;
  cfg.seed = seed;
  cfg.batch_links = true;
  cfg.max_link_batch = 3;
  cfg.solver_backend = "lns";
  cfg.solver_max_iterations = kScaleIters;
  cfg.solver_time_ms = 0;  // unlimited: the iteration cap is the budget
  return cfg;
}

// The acceptance gate of ISSUE 4: with the reliable FIFO transport carrying
// all traffic, a 5% / 20% lossy run must converge to within 1.05x of the
// no-fault objective WITHOUT the driver-level anti-entropy sweeps (which
// net_reliable retires).
TEST(ReliableSoakTest, LossyReliableRunClosesObjectiveGap) {
  FtsConfig base = SmallFts(31, /*num_dcs=*/4);
  base.batch_links = true;
  FollowTheSunScenario no_fault(base);
  auto r0 = no_fault.Run();
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  const double bound = r0.value().final_cost * 1.05;

  for (double loss : {0.05, 0.20}) {
    FtsConfig cfg = base;
    cfg.net_reliable = true;
    cfg.link_loss_prob = loss;
    FollowTheSunScenario s(cfg);
    auto r = s.Run();
    ASSERT_TRUE(r.ok()) << "loss " << loss << ": " << r.status().ToString();
    const FtsResult& res = r.value();
    EXPECT_GT(res.messages_dropped, 0u)
        << "loss " << loss << " never hit the wire — vacuous run";
    EXPECT_EQ(res.abandoned_links, 0) << "loss " << loss;
    EXPECT_LE(res.final_cost, bound)
        << "loss " << loss << ": reliable transport must close the "
        << "objective gap without anti-entropy sweeps (no-fault "
        << r0.value().final_cost << ", lossy " << res.final_cost << ")";
  }
}

// Observable retirement of the sweeps: a lossy *datagram* run heals through
// ResyncNode send-log replays ("replay"-detail sends in the trace); a lossy
// *reliable* run must not issue any.
TEST(ReliableSoakTest, ReliableRunsRetireAntiEntropySweeps) {
  auto replay_sends = [](const TraceRecorder& t) {
    size_t n = 0;
    for (const std::string& line : t.lines()) {
      if (line.find("\"detail\":\"replay\"") != std::string::npos) ++n;
    }
    return n;
  };
  TraceRecorder datagram, reliable;
  for (bool rel : {false, true}) {
    FtsConfig cfg = SmallFts(37, /*num_dcs=*/4);
    cfg.link_loss_prob = 0.2;
    cfg.net_reliable = rel;
    cfg.trace = rel ? &reliable : &datagram;
    FollowTheSunScenario s(cfg);
    ASSERT_TRUE(s.Run().ok());
  }
  EXPECT_GT(replay_sends(datagram), 0u)
      << "the lossy datagram run should have healed via anti-entropy";
  EXPECT_EQ(replay_sends(reliable), 0u)
      << "reliable runs must not need anti-entropy replays";
}

// 10-DC Follow-the-Sun churn soak (loss windows, flaps, duplication,
// reordering, crash/restart) over the reliable transport with batched
// solves: byte-identical traces across runs — the same determinism
// invariant PR 3 established for the small topologies.
TEST(ScaledSoakTest, TenDcFtsChurnSoakIsDeterministic) {
  std::vector<std::pair<NodeId, NodeId>> ring;
  for (int i = 0; i < kScaleDcs; ++i) {
    int j = (i + 1) % kScaleDcs;
    ring.push_back({std::min(i, j), std::max(i, j)});
  }
  net::FaultPlan::RandomConfig rc;
  rc.horizon_s = 60;
  net::FaultPlan plan =
      net::FaultPlan::Random(77, static_cast<size_t>(kScaleDcs), ring, rc);

  TraceRecorder trace_a, trace_b;
  double final_a = 0, final_b = 0;
  for (auto [trace, final_cost] :
       {std::pair<TraceRecorder*, double*>{&trace_a, &final_a},
        {&trace_b, &final_b}}) {
    FtsConfig cfg = ScaledFts(77, kScaleDcs);
    cfg.net_reliable = true;
    cfg.fault_plan = plan;
    cfg.trace = trace;
    FollowTheSunScenario s(cfg);
    auto r = s.Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *final_cost = r.value().final_cost;
    // Anytime property and full coverage survive the scale-up.
    EXPECT_LE(r.value().final_cost, r.value().initial_cost * 1.0001);
    EXPECT_EQ(r.value().abandoned_links, 0);
    EXPECT_GE(r.value().max_batch, 2)
        << "the 10-DC topology must actually exercise batching";
  }
  ASSERT_GT(trace_a.lines().size(), 100u);
  EXPECT_EQ(DiffTraces(trace_a.lines(), trace_b.lines()), "")
      << "10-DC churn soak must stay byte-deterministic";
  EXPECT_DOUBLE_EQ(final_a, final_b);
}

// 30-node (6x5 grid) distributed wireless churn soak, reliable + batched:
// byte-identical traces, every link assigned a valid channel.
TEST(ScaledSoakTest, ThirtyNodeWirelessChurnSoakIsDeterministic) {
  WirelessConfig cfg;
  cfg.grid_w = kScaleGridW;
  cfg.grid_h = kScaleGridH;
  cfg.num_flows = 8;
  cfg.seed = 88;
  cfg.batch_links = true;
  cfg.net_reliable = true;
  cfg.link_solve_ms = 0;  // unlimited: tiny batched models prove optimality
  WirelessScenario topo(cfg);
  net::FaultPlan::RandomConfig rc;
  rc.horizon_s = 60;
  cfg.fault_plan = net::FaultPlan::Random(
      88, static_cast<size_t>(topo.num_nodes()), topo.links(), rc);

  TraceRecorder trace_a, trace_b;
  for (TraceRecorder* trace : {&trace_a, &trace_b}) {
    WirelessConfig run_cfg = cfg;
    run_cfg.trace = trace;
    WirelessScenario scenario(run_cfg);
    auto r = scenario.AssignChannels(WirelessProtocol::kDistributed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& res = r.value();
    EXPECT_EQ(res.abandoned_links, 0);
    EXPECT_EQ(res.channel.size(), scenario.links().size());
    for (const auto& [link, ch] : res.channel) {
      EXPECT_GE(ch, 1);
      EXPECT_LE(ch, cfg.num_channels);
    }
    EXPECT_GE(res.max_batch, 2)
        << "the grid topology must actually exercise batching";
  }
  ASSERT_GT(trace_a.lines().size(), 100u);
  EXPECT_EQ(DiffTraces(trace_a.lines(), trace_b.lines()), "")
      << "30-node wireless churn soak must stay byte-deterministic";
}

// Batched negotiation is a refactor of the solve granularity, not the
// protocol: VM inventory is conserved per demand, capacity is respected,
// and the batch path needs strictly fewer solver invocations than the
// per-link path for the same workload.
TEST(BatchedNegotiationTest, ConservesInventoryWithFewerSolves) {
  auto demand_totals = [](FollowTheSunScenario& s, int n) {
    std::map<int64_t, int64_t> totals;  // demand -> total VMs across DCs
    for (int x = 0; x < n; ++x) {
      const datalog::Table* t = s.system()->node(x).engine().GetTable("curVm");
      for (const Row& row : t->Rows()) {
        if (row[0].as_node() != x) continue;
        totals[row[1].as_int()] += row[2].as_int();
      }
    }
    return totals;
  };

  FtsConfig batched_cfg = ScaledFts(53, kScaleDcs);
  // One full pass over every link for both granularities: the solve-count
  // comparison is per-coverage, not per-convergence-trajectory.
  batched_cfg.converge_sweeps = 0;
  FtsConfig sequential_cfg = batched_cfg;
  sequential_cfg.batch_links = false;

  FollowTheSunScenario batched(batched_cfg);
  auto rb = batched.Run();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  FollowTheSunScenario sequential(sequential_cfg);
  auto rs = sequential.Run();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  EXPECT_GE(rb.value().max_batch, 2);
  EXPECT_LE(rb.value().max_batch, 1 * kScaleDcs);
  EXPECT_EQ(rs.value().max_batch, 1);
  EXPECT_GT(rb.value().solves, 0);
  EXPECT_LT(rb.value().solves, rs.value().solves)
      << "aggregating incident links must reduce solver invocations";
  // Both protocols only move VMs between DCs: per-demand totals match.
  EXPECT_EQ(demand_totals(batched, kScaleDcs),
            demand_totals(sequential, kScaleDcs));
  // Capacity constraint c1 holds in the final engine state.
  for (int x = 0; x < kScaleDcs; ++x) {
    int64_t total = 0;
    const datalog::Table* t =
        batched.system()->node(x).engine().GetTable("curVm");
    for (const Row& row : t->Rows()) {
      if (row[0].as_node() == x) total += row[2].as_int();
    }
    EXPECT_LE(total, batched_cfg.capacity) << "node " << x;
  }
  // Batching must not cost solution quality: both converge (anytime, and
  // the batched joint model sees strictly more of the problem per solve).
  EXPECT_LE(rb.value().final_cost, rb.value().initial_cost);
  EXPECT_LE(rb.value().final_cost, rs.value().final_cost * 1.10)
      << "batched quality regressed vs per-link negotiation";
}

// Same-seed soak determinism: a sample of the soak plans, run twice with
// traces, must agree byte for byte.
TEST(FaultSoakTest, SoakPlansAreDeterministic) {
  for (uint64_t seed : {1002ull, 1005ull, 1010ull}) {
    TraceRecorder a, b;
    for (TraceRecorder* t : {&a, &b}) {
      FtsConfig cfg = SmallFts(seed);
      net::FaultPlan::RandomConfig rc;
      rc.horizon_s = 40;
      std::vector<std::pair<NodeId, NodeId>> ring{{0, 1}, {1, 2}, {0, 2}};
      cfg.fault_plan = net::FaultPlan::Random(seed, 3, ring, rc);
      cfg.trace = t;
      FollowTheSunScenario scenario(cfg);
      ASSERT_TRUE(scenario.Run().ok());
    }
    EXPECT_EQ(DiffTraces(a.lines(), b.lines()), "") << "seed " << seed;
  }
}

}  // namespace
}  // namespace cologne::runtime

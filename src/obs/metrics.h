// Deterministic observability registry: named counters, gauges, and
// fixed-bucket histograms shared by the runtime, the solver bridge, and
// the scenario drivers.
//
// Everything stored here is integer-valued and derived only from the
// simulated execution (virtual time, message counts, search statistics under
// deterministic budgets), never from wall-clock measurements — so a
// `metrics` snapshot serialized into a trace is byte-identical across runs
// of the same (program, seed, fault plan), extending the determinism
// contract of runtime/trace_replay.h to internal state. Names sort
// lexicographically in snapshots (std::map storage), independent of
// registration order.
#ifndef COLOGNE_OBS_METRICS_H_
#define COLOGNE_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cologne {
class JsonWriter;
}

namespace cologne::obs {

/// \brief One fixed-bucket integer histogram: counts per bucket, plus
/// count/sum, for distributions like search nodes per solve.
///
/// Bucket i holds samples <= bounds[i] (first matching bound); samples above
/// the last bound land in the implicit overflow bucket, so counts has
/// bounds.size() + 1 entries.
struct Histogram {
  std::vector<int64_t> bounds;    ///< Ascending inclusive upper bounds.
  std::vector<uint64_t> counts;   ///< bounds.size() + 1 buckets.
  uint64_t count = 0;             ///< Total samples observed.
  int64_t sum = 0;                ///< Sum of all samples.

  void Observe(int64_t sample);
};

/// \brief Registry of named metrics with a canonical JSON snapshot.
///
/// Counters are monotone uint64 totals (Add accumulates; Set overwrites,
/// for absolute values mirrored from another owner like the network's
/// traffic stats). Gauges are signed instantaneous values. Histograms must
/// be declared with their bucket bounds before the first Observe.
class MetricsRegistry {
 public:
  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void Set(const std::string& name, uint64_t value) {
    counters_[name] = value;
  }
  uint64_t counter(const std::string& name) const;

  void SetGauge(const std::string& name, int64_t value) {
    gauges_[name] = value;
  }

  void DeclareHistogram(const std::string& name, std::vector<int64_t> bounds);
  void Observe(const std::string& name, int64_t sample);
  const Histogram* histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }
  void Clear();

  /// Canonical JSON object (common/json.h): sections `counters`, `gauges`
  /// and `hist` in that order, each omitted when empty; names sorted;
  /// histograms as {"le":[bounds],"n":[counts],"count":C,"sum":S}.
  std::string SnapshotJson() const;
  /// Append the same sections as members of the object `w` is currently
  /// building (the trace recorder embeds snapshots in `metrics` lines).
  void AppendSnapshot(JsonWriter* w) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace cologne::obs

#endif  // COLOGNE_OBS_METRICS_H_

#include "obs/metrics.h"

#include "common/json.h"

namespace cologne::obs {

void Histogram::Observe(int64_t sample) {
  size_t bucket = bounds.size();
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (sample <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  ++count;
  sum += sample;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::DeclareHistogram(const std::string& name,
                                       std::vector<int64_t> bounds) {
  Histogram& h = hists_[name];
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  h.count = 0;
  h.sum = 0;
}

void MetricsRegistry::Observe(const std::string& name, int64_t sample) {
  auto it = hists_.find(name);
  if (it == hists_.end()) return;  // undeclared: ignore, keep snapshots stable
  it->second.Observe(sample);
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

void MetricsRegistry::AppendSnapshot(JsonWriter* w) const {
  if (!counters_.empty()) {
    w->Key("counters").BeginObject();
    for (const auto& [name, value] : counters_) {
      w->Key(name.c_str()).UInt(value);
    }
    w->EndObject();
  }
  if (!gauges_.empty()) {
    w->Key("gauges").BeginObject();
    for (const auto& [name, value] : gauges_) {
      w->Key(name.c_str()).Int(value);
    }
    w->EndObject();
  }
  if (!hists_.empty()) {
    w->Key("hist").BeginObject();
    for (const auto& [name, h] : hists_) {
      w->Key(name.c_str()).BeginObject();
      w->Key("le").BeginArray();
      for (int64_t b : h.bounds) w->Int(b);
      w->EndArray();
      w->Key("n").BeginArray();
      for (uint64_t c : h.counts) w->UInt(c);
      w->EndArray();
      w->Key("count").UInt(h.count);
      w->Key("sum").Int(h.sum);
      w->EndObject();
    }
    w->EndObject();
  }
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  w.BeginObject();
  AppendSnapshot(&w);
  w.EndObject();
  return w.Take();
}

}  // namespace cologne::obs

#include "apps/scenariogen.h"

#include <algorithm>
#include <utility>

#include "apps/invariants.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "runtime/trace_replay.h"

namespace cologne::apps {

namespace {

// Always-restart fault plans keep the coverage invariants (no abandoned
// links) sound: a permanently crashed endpoint legitimately abandons links.
net::FaultPlan::RandomConfig SweepFaults() {
  net::FaultPlan::RandomConfig rc;
  rc.horizon_s = 60;
  rc.allow_no_restart = false;
  return rc;
}

// Ring links over the node set: a topology-independent carrier for link
// faults (windows on links the app's random topology lacks are no-ops,
// while crashes and partitions apply regardless).
std::vector<std::pair<NodeId, NodeId>> RingLinks(int num_nodes) {
  std::vector<std::pair<NodeId, NodeId>> ring;
  for (int i = 0; i < num_nodes; ++i) {
    int j = (i + 1) % num_nodes;
    ring.push_back({std::min(i, j), std::max(i, j)});
  }
  return ring;
}

void GenFts(Rng& rng, const ScenarioGenConfig& config, FtsConfig* cfg) {
  cfg->num_dcs = static_cast<int>(
      rng.UniformInt(3, std::max(3, config.max_fts_dcs)));
  cfg->avg_degree = static_cast<int>(rng.UniformInt(2, 3));
  cfg->demand_hi = static_cast<int>(rng.UniformInt(2, 5));
  // Feasible by construction: capacity holds the worst-case per-node demand
  // sum (every demand's total ends up on one node), plus a random margin.
  cfg->capacity = cfg->num_dcs * cfg->demand_hi +
                  static_cast<int>(rng.UniformInt(0, 10));
  cfg->batch_links = rng.Bernoulli(0.5);
  cfg->max_link_batch = cfg->batch_links
                            ? static_cast<int>(rng.UniformInt(2, 3))
                            : 0;
  cfg->converge_sweeps = static_cast<int>(rng.UniformInt(0, 1));
  if (config.with_faults) {
    cfg->fault_plan =
        net::FaultPlan::Random(rng.Next(), static_cast<size_t>(cfg->num_dcs),
                               RingLinks(cfg->num_dcs), SweepFaults());
  }
}

void GenWireless(Rng& rng, const ScenarioGenConfig& config,
                 WirelessConfig* cfg) {
  cfg->grid_w = static_cast<int>(
      rng.UniformInt(3, std::max(3, config.max_grid_w)));
  cfg->grid_h = static_cast<int>(
      rng.UniformInt(2, std::max(2, config.max_grid_h)));
  cfg->num_channels = static_cast<int>(rng.UniformInt(3, 8));
  cfg->f_mindiff = static_cast<int>(rng.UniformInt(1, 2));
  cfg->restrict_frac = rng.Bernoulli(0.25) ? 0.25 : 0.0;
  cfg->num_flows = static_cast<int>(rng.UniformInt(3, 6));
  cfg->batch_links = rng.Bernoulli(0.5);
  if (config.with_faults) {
    // The grid topology is a pure function of the config: materialize it
    // once so the plan's link faults target real links.
    WirelessScenario topo(*cfg);
    cfg->fault_plan = net::FaultPlan::Random(
        rng.Next(), static_cast<size_t>(topo.num_nodes()), topo.links(),
        SweepFaults());
  }
}

void GenACloud(Rng& rng, const ScenarioGenConfig& config, ACloudConfig* cfg) {
  cfg->num_dcs = static_cast<int>(
      rng.UniformInt(2, std::max(2, config.max_acloud_dcs)));
  cfg->hosts_per_dc = static_cast<int>(
      rng.UniformInt(2, std::max(2, config.max_acloud_hosts)));
  // Keep hosts x vms small: the per-DC placement model is solved to
  // exhaustion by the wall-clock-free baseline, and its tree is
  // hosts^(hosts*vms) — 8 VMs per host already takes minutes.
  cfg->vms_per_host = static_cast<int>(rng.UniformInt(2, 4));
  cfg->duration_hours = 1.0;
  cfg->interval_s = 600;
  if (config.with_faults && rng.Bernoulli(0.5)) {
    // Crash one DC's instance mid-replay and restart it an interval later
    // (the replay driver has no simulated network; this is its fault axis).
    cfg->crash_dc = static_cast<int>(
        rng.UniformInt(0, cfg->num_dcs - 1));
    cfg->crash_interval = 1;
    cfg->restart_interval = 2;
  }
}

}  // namespace

const char* ScenarioAppName(ScenarioApp app) {
  switch (app) {
    case ScenarioApp::kFts: return "fts";
    case ScenarioApp::kWireless: return "wireless";
    case ScenarioApp::kACloud: return "acloud";
  }
  return "?";
}

bool ParseScenarioApp(const std::string& name, ScenarioApp* out) {
  if (name == "fts") {
    *out = ScenarioApp::kFts;
    return true;
  }
  if (name == "wireless") {
    *out = ScenarioApp::kWireless;
    return true;
  }
  if (name == "acloud") {
    *out = ScenarioApp::kACloud;
    return true;
  }
  return false;
}

Scenario GenerateScenario(ScenarioApp app, uint64_t seed,
                          const ScenarioGenConfig& config) {
  Scenario s;
  s.app = app;
  s.seed = seed;
  s.name = StrFormat("%s-%llu", ScenarioAppName(app),
                     static_cast<unsigned long long>(seed));
  // One derived stream per scenario: shape draws and the fault-plan seed all
  // come from it, so (app, seed, caps) fully determines the scenario.
  Rng rng(SplitMix64(seed ^ 0x5ce7a110ull));

  // Every scenario solves wall-clock-free (iteration-capped budgets) over
  // the reliable transport: re-running the same scenario must be
  // byte-deterministic regardless of host load.
  switch (app) {
    case ScenarioApp::kFts:
      s.fts.seed = seed;
      s.fts.net_reliable = true;
      s.fts.solver_time_ms = 0;
      s.fts.solver_max_iterations = config.solver_iterations;
      GenFts(rng, config, &s.fts);
      break;
    case ScenarioApp::kWireless:
      s.wireless.seed = seed;
      s.wireless.net_reliable = true;
      s.wireless.link_solve_ms = 0;
      s.wireless.solver_max_iterations = config.solver_iterations;
      GenWireless(rng, config, &s.wireless);
      break;
    case ScenarioApp::kACloud:
      s.acloud.seed = seed;
      s.acloud.solver_time_ms = 0;
      s.acloud.solver_max_iterations = config.solver_iterations;
      GenACloud(rng, config, &s.acloud);
      break;
  }
  return s;
}

std::vector<Scenario> GenerateScenarios(const ScenarioGenConfig& config) {
  std::vector<Scenario> out;
  out.reserve(static_cast<size_t>(std::max(0, config.count)));
  for (int i = 0; i < config.count; ++i) {
    ScenarioApp app = config.apps[static_cast<size_t>(i) % config.apps.size()];
    out.push_back(
        GenerateScenario(app, config.seed + static_cast<uint64_t>(i), config));
  }
  return out;
}

std::string Scenario::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("scenario").String(name);
  w.Key("app").String(ScenarioAppName(app));
  w.Key("seed").UInt(seed);
  switch (app) {
    case ScenarioApp::kFts:
      w.Key("num_dcs").Int(fts.num_dcs);
      w.Key("avg_degree").Int(fts.avg_degree);
      w.Key("capacity").Int(fts.capacity);
      w.Key("demand_hi").Int(fts.demand_hi);
      w.Key("batch_links").Bool(fts.batch_links);
      w.Key("max_link_batch").Int(fts.max_link_batch);
      w.Key("converge_sweeps").Int(fts.converge_sweeps);
      w.Key("fault_plan").Raw(fts.fault_plan.ToJson());
      break;
    case ScenarioApp::kWireless:
      w.Key("grid_w").Int(wireless.grid_w);
      w.Key("grid_h").Int(wireless.grid_h);
      w.Key("num_channels").Int(wireless.num_channels);
      w.Key("f_mindiff").Int(wireless.f_mindiff);
      w.Key("restrict_frac").Double(wireless.restrict_frac);
      w.Key("num_flows").Int(wireless.num_flows);
      w.Key("batch_links").Bool(wireless.batch_links);
      w.Key("fault_plan").Raw(wireless.fault_plan.ToJson());
      break;
    case ScenarioApp::kACloud:
      w.Key("num_dcs").Int(acloud.num_dcs);
      w.Key("hosts_per_dc").Int(acloud.hosts_per_dc);
      w.Key("vms_per_host").Int(acloud.vms_per_host);
      w.Key("duration_hours").Double(acloud.duration_hours);
      w.Key("interval_s").Double(acloud.interval_s);
      w.Key("crash_dc").Int(acloud.crash_dc);
      w.Key("crash_interval").Int(acloud.crash_interval);
      w.Key("restart_interval").Int(acloud.restart_interval);
      break;
  }
  w.EndObject();
  return w.Take();
}

ScenarioRun RunScenario(const Scenario& scenario, const std::string& backend) {
  ScenarioRun run;
  runtime::TraceRecorder trace;
  switch (scenario.app) {
    case ScenarioApp::kFts: {
      FtsConfig cfg = scenario.fts;
      cfg.solver_backend = backend.empty() ? cfg.solver_backend : backend;
      cfg.trace = &trace;
      FollowTheSunScenario s(cfg);
      auto r = s.Run();
      if (!r.ok()) {
        run.error = r.status().ToString();
        return run;
      }
      run.ok = true;
      run.objective = r.value().final_cost;
      run.solves = r.value().solves;
      run.violation = CheckFtsInvariants(s, cfg, r.value());
      run.fts_demand_totals = FtsDemandTotals(s, cfg.num_dcs);
      break;
    }
    case ScenarioApp::kWireless: {
      WirelessConfig cfg = scenario.wireless;
      cfg.solver_backend = backend.empty() ? cfg.solver_backend : backend;
      cfg.trace = &trace;
      WirelessScenario s(cfg);
      auto r = s.AssignChannels(WirelessProtocol::kDistributed);
      if (!r.ok()) {
        run.error = r.status().ToString();
        return run;
      }
      run.ok = true;
      run.objective = r.value().interference_cost;
      run.solves = r.value().solves;
      run.violation = CheckWirelessInvariants(cfg, r.value());
      break;
    }
    case ScenarioApp::kACloud: {
      ACloudConfig cfg = scenario.acloud;
      cfg.solver_backend = backend.empty() ? cfg.solver_backend : backend;
      cfg.solve_trace = &trace;
      ACloudScenario s(cfg);
      auto r = s.Run(ACloudPolicy::kACloud);
      if (!r.ok()) {
        run.error = r.status().ToString();
        return run;
      }
      run.ok = true;
      double sum = 0;
      for (const ACloudInterval& m : r.value()) sum += m.avg_cpu_stdev;
      run.objective = r.value().empty()
                          ? 0
                          : sum / static_cast<double>(r.value().size());
      run.violation = CheckACloudInvariants(cfg, r.value());
      break;
    }
  }
  run.trace_hash = HashTraceLines(trace.lines());
  return run;
}

}  // namespace cologne::apps

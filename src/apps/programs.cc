#include "apps/programs.h"

#include "common/strings.h"

namespace cologne::apps {

std::string ACloudProgram(bool migration_limit, int max_migrates) {
  std::string p = R"(
// ACloud load-balancing orchestration (paper Section 4.2).
table vm(Vid,Cpu,Mem) keys(Vid).
table host(Hid,Cpu,Mem) keys(Hid).
table hostMemThres(Hid,M) keys(Hid).
table origin(Vid,Hid) keys(Vid).

goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem),
     host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V),
     vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem),
     hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V),
     vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
)";
  if (migration_limit) {
    p += StrFormat(R"(
// ACloud (M): bound VM migrations per COP execution (Section 4.2).
param max_migrates = %d.
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V),
     origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
)",
                   max_migrates);
  }
  return p;
}

std::string FollowTheSunDistributedProgram(bool migration_limit, int cap,
                                           int max_migrates, bool batched) {
  // Per-link form: d1 joins curVm with the (single) active link's migVm.
  // Batched form: d0 sums the outflow over every active link first, so a
  // node negotiating several links in one solve subtracts the total
  // outflow, not one per-link copy (which would double-count nextVm rows).
  const char* next_vm_rules = batched ? R"(
// next-step VM allocations after migration (batched: total outflow)
d0 outMig(@X,D,SUM<R2>) <- migVm(@X,Y,D,R2).
d1 nextVm(@X,D,R) <- curVm(@X,D,R1),
     outMig(@X,D,R2), R==R1-R2.
)"
                                      : R"(
// next-step VM allocations after migration
d1 nextVm(@X,D,R) <- curVm(@X,D,R1),
     migVm(@X,Y,D,R2), R==R1-R2.
)";
  std::string p = StrFormat(R"(
// Distributed Follow-the-Sun orchestration (paper Section 4.3).
param cap = %d.
table curVm(X,D,R) keys(X,D).
table migVm(X,Y,D,R) keys(X,Y,D).
table commCost(X,D,C) keys(X,D).
table opCost(X,C) keys(X).
table migCost(X,Y,C) keys(X,Y).
table resource(X,R) keys(X).

goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain [-cap,cap].

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).
%s
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),
     migVm(@X,Y,D,R2), R==R1+R2.

// communication, operating and migration cost
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R),
     commCost(@X,D,C), Cost==R*C.
d4 aggOpCost(@X,SUM<Cost>) <- nextVm(@X,D,R),
     opCost(@X,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X),
     commCost(@Y,D,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d6 nborAggOpCost(@X,SUM<Cost>) <- link(@Y,X),
     opCost(@Y,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R),
     migCost(@X,Y,C), Cost==R*C.

// total cost
d8 aggCost(@X,C) <- aggCommCost(@X,C1),
     aggOpCost(@X,C2), aggMigCost(@X,C3),
     nborAggCommCost(@X,C4), nborAggOpCost(@X,C5),
     C==C1+C2+C3+C4+C5.

// not exceeding resource capacity
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X),
     resource(@Y,R2), R1<=R2.

// allocations cannot go negative (implicit in the paper's model)
c5 nextVm(@X,D,R) -> R>=0.
c6 nborNextVm(@X,Y,D,R) -> R>=0.

// propagate to ensure symmetry and update allocations
r2 migVm(@Y,X,D,R2) <- setLink(@X,Y),
     migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- migVm(@X,Y,D,R2),
     curVm(@X,D,R1), R:=R1-R2.
)",
                            cap, next_vm_rules);
  if (migration_limit) {
    p += StrFormat(R"(
// Policy customization (Section 4.3): bound per-link migration volume.
param max_migrates = %d.
d11 aggMigVm(@X,Y,SUMABS<R>) <- migVm(@X,Y,D,R).
c3 aggMigVm(@X,Y,R) -> R<=max_migrates.
)",
                   max_migrates);
  }
  return p;
}

std::string FollowTheSunCentralizedProgram(int cap) {
  return StrFormat(R"(
// Centralized Follow-the-Sun: one global COP over every inter-DC link.
param cap = %d.
table curVm(I,D,R) keys(I,D).
table commCost(I,D,C) keys(I,D).
table opCost(I,C) keys(I).
table migCost(I,J,C) keys(I,J).
table resource(I,R) keys(I).

goal minimize C in aggTotalCost(C).
var migVm(I,J,D,R) forall toMigVm(I,J,D) domain [-cap,cap].

r1 toMigVm(I,J,D) <- link(I,J), loc(D).

// net outflow per site and demand; M(j,i) == -M(i,j) keeps this exact
d1 outMig(I,D,SUM<R>) <- migVm(I,J,D,R).
d2 nextVm(I,D,R) <- curVm(I,D,R1), outMig(I,D,R2), R==R1-R2.

// antisymmetry (paper equation 6)
c1 migVm(I,J,D,R) -> migVm(J,I,D,R2), R+R2==0.

// costs (paper equations 2-4); I<J avoids double-counting migrations
d3 aggCommCost(SUM<Cost>) <- nextVm(I,D,R), commCost(I,D,C), Cost==R*C.
d4 aggOpCost(SUM<Cost>) <- nextVm(I,D,R), opCost(I,C), Cost==R*C.
d5 aggMigCost(SUMABS<Cost>) <- migVm(I,J,D,R), migCost(I,J,C), I<J,
     Cost==R*C.
d6 aggTotalCost(C) <- aggCommCost(C1), aggOpCost(C2), aggMigCost(C3),
     C==C1+C2+C3.

// capacity (paper equation 5) and non-negativity
d7 siteNextVm(I,SUM<R>) <- nextVm(I,D,R).
c2 siteNextVm(I,R1) -> resource(I,R2), R1<=R2.
c3 nextVm(I,D,R) -> R>=0.
)",
                   cap);
}

std::string WirelessCentralizedProgram(bool two_hop, int num_channels,
                                       int f_mindiff) {
  std::string p = StrFormat(R"(
// Centralized wireless channel selection (Appendix A.2).
param num_channels = %d.
param f_mindiff = %d.
table link(X,Y) keys(X,Y).
table primaryUser(X,C) keys(X,C).
table numInterface(X,K) keys(X).

goal minimize C in totalCost(C).
var assign(X,Y,C) forall link(X,Y) domain [1,num_channels].

// one-hop interference cost (paper equation 7/8)
d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2),
     Y!=Z, (C==1)==(|C1-C2|<f_mindiff).
d2 hopOneCost(SUM<C>) <- cost(X,Y,Z,C).
)",
                            num_channels, f_mindiff);
  if (two_hop) {
    p += R"(
// two-hop interference model (Appendix A.2, rule d3)
d3 cost2(X,Y,Z,W,C) <- assign(X,Y,C1), link(Z,X),
     assign(Z,W,C2), X!=W, Y!=W, Y!=Z,
     (C==1)==(|C1-C2|<f_mindiff).
d4 hopTwoCost(SUM<C>) <- cost2(X,Y,Z,W,C).
d5 totalCost(C) <- hopOneCost(C1), hopTwoCost(C2), C==C1+C2.
)";
  } else {
    p += R"(
d5 totalCost(C) <- hopOneCost(C1), C==C1.
)";
  }
  p += R"(
// primary user constraint (paper equation 9)
c1 assign(X,Y,C) -> primaryUser(X,C2), C!=C2.
// channel symmetry constraint (paper equation 10)
c2 assign(X,Y,C) -> assign(Y,X,C).
// interface constraint (paper equation 11)
d6 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
c3 uniqueChannel(X,Count) -> numInterface(X,K), Count<=K.
)";
  return p;
}

std::string WirelessDistributedProgram(int num_channels, int f_mindiff,
                                       bool two_hop, bool batched) {
  std::string cost_rule;
  if (two_hop) {
    cost_rule = R"(
// cost derivation for the two-hop interference model
d1 cost(@X,Y,Z,W,C) <- assign(@X,Y,C1), link(@Z,X),
     assign(@Z,W,C2), X!=W, Y!=W, Y!=Z,
     (C==1)==(|C1-C2|<f_mindiff).
)";
  } else {
    cost_rule = R"(
// one-hop cost model: only links sharing an endpoint with (X,Y) interfere
d1 cost(@X,Y,Z,W,C) <- assign(@X,Y,C1), link(@Z,X),
     assign(@Z,W,C2), (W==X && Z!=Y) || (Z==Y && W!=X),
     (C==1)==(|C1-C2|<f_mindiff).
)";
  }
  if (batched) {
    // Intra-batch interference: when one node negotiates several incident
    // links in a single solve, d1's neighbor-shipped copies cannot see the
    // sibling decisions (both are symbolic in this model), so the conflict
    // between two links under simultaneous negotiation is penalized
    // directly. Derives nothing when only one link is active.
    cost_rule += R"(
d1b cost(@X,Y,X,Z,C) <- assign(@X,Y,C1), assign(@X,Z,C2),
     Y!=Z, (C==1)==(|C1-C2|<f_mindiff).
)";
  }
  return StrFormat(R"(
// Distributed wireless channel selection (Appendix A.3): per-link greedy
// negotiation; X gathers neighbors' current assignments and minimizes the
// interference cost of the link under negotiation.
param num_channels = %d.
param f_mindiff = %d.
table link(X,Y) keys(X,Y).
table assign(X,Y,C) keys(X,Y).
table primaryUser(X,C) keys(X,C).

goal minimize C in totalCost(@X,C).
var assign(@X,Y,C) forall setLink(@X,Y) domain [1,num_channels].
%s
d2 totalCost(@X,SUM<C>) <- cost(@X,Y,Z,W,C).

// primary user constraints. Note: c2's remote body needs the link atom so
// the localization rewrite knows where to ship Y's primary-user set (the
// paper's listing omits it; its compiled form must bind X remotely too).
c1 assign(@X,Y,C) -> primaryUser(@X,C2), C!=C2.
c2 assign(@X,Y,C) -> link(@Y,X), primaryUser(@Y,C2), C!=C2.

// propagate channels to ensure symmetry
r1 assign(@Y,X,C) <- assign(@X,Y,C).
)",
                   num_channels, f_mindiff, cost_rule.c_str());
}

}  // namespace cologne::apps

// Greedy per-round negotiation matching, shared by the Follow-the-Sun and
// wireless scenario drivers.
//
// Classic mode pairs nodes one link each per round (paper footnote 1: the
// higher-id endpoint initiates). Batched mode lets an initiator claim
// every pending incident link whose peer is still free — one batched model
// solve per node per round — while a node never serves two negotiations at
// once (its capacity/channel state is a shared resource).
#ifndef COLOGNE_APPS_NEGOTIATION_H_
#define COLOGNE_APPS_NEGOTIATION_H_

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace cologne::apps {

/// Driver verdict on a pending link before claiming.
enum class LinkClaim {
  kClaim,  ///< Negotiable this round.
  kDefer,  ///< Keep pending (e.g. an endpoint is temporarily crashed).
  kDrop,   ///< Remove from pending without negotiating (abandoned).
};

/// One initiator and the peers it negotiates this round (one solve).
template <typename Node>
struct NegotiationBatch {
  Node init;
  std::vector<Node> peers;
};

/// Greedy matching over `links` (pairs of node ids). Links absent from
/// `pending` are ignored; claimed and kDrop links are erased from it.
/// `classify(link)` supplies the driver-specific verdict. Batched mode
/// claims initiator-first (descending id, then peer ascending) so an
/// initiator gathers all its incident links before lower nodes consume its
/// peers; classic mode keeps the caller's link order, preserving the
/// historical round schedule. `max_link_batch` caps links per batch
/// (0 = unlimited; classic mode is implicitly 1). Returns batches in claim
/// order — deterministic, so round schedules trace-reproducibly.
template <typename Link, typename Classify>
std::vector<NegotiationBatch<typename Link::first_type>> ClaimBatches(
    const std::vector<Link>& links, std::set<Link>* pending,
    size_t num_nodes, bool batch_links, int max_link_batch,
    Classify&& classify) {
  using Node = typename Link::first_type;
  std::vector<Link> claim_order = links;
  if (batch_links) {
    std::sort(claim_order.begin(), claim_order.end(),
              [](const Link& x, const Link& y) {
                Node ix = std::max(x.first, x.second);
                Node iy = std::max(y.first, y.second);
                if (ix != iy) return ix > iy;
                Node nx = std::min(x.first, x.second);
                Node ny = std::min(y.first, y.second);
                if (nx != ny) return nx < ny;
                // Total order: the two orientations of one endpoint pair
                // compare equal on (initiator, peer) alone, and std::sort
                // would order them unspecified — the claim schedule (and
                // with it the trace) must not depend on that.
                return x.first < y.first;
              });
  }
  // Roles: 0 = free, 1 = initiating this round, 2 = peer in a negotiation.
  std::vector<char> role(num_nodes, 0);
  std::vector<NegotiationBatch<Node>> batches;
  std::map<Node, size_t> batch_of;
  for (const Link& l : claim_order) {
    if (!pending->count(l)) continue;
    switch (classify(l)) {
      case LinkClaim::kDrop:
        pending->erase(l);
        continue;
      case LinkClaim::kDefer:
        continue;
      case LinkClaim::kClaim:
        break;
    }
    Node init = std::max(l.first, l.second);
    Node peer = std::min(l.first, l.second);
    if (role[static_cast<size_t>(init)] == 2 ||
        role[static_cast<size_t>(peer)] != 0) {
      continue;
    }
    auto it = batch_of.find(init);
    if (it == batch_of.end()) {
      if (role[static_cast<size_t>(init)] != 0) continue;
      it = batch_of.emplace(init, batches.size()).first;
      batches.push_back({init, {}});
    } else {
      if (!batch_links) continue;  // one link per node per round
      if (max_link_batch > 0 &&
          static_cast<int>(batches[it->second].peers.size()) >=
              max_link_batch) {
        continue;
      }
    }
    role[static_cast<size_t>(init)] = 1;
    role[static_cast<size_t>(peer)] = 2;
    batches[it->second].peers.push_back(peer);
    pending->erase(l);
  }
  return batches;
}

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_NEGOTIATION_H_

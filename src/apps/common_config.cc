#include "apps/common_config.h"

namespace cologne::apps {

runtime::System::Options MakeSystemOptions(const CommonConfig& config) {
  runtime::System::Options opts;
  opts.seed = config.seed;
  opts.net_reliable = config.net_reliable;
  opts.obs_metrics = config.obs_metrics;
  opts.default_link.drop_prob = config.link_loss_prob;
  return opts;
}

runtime::SolveOptions OverlaySolveOptions(const CommonConfig& config,
                                          runtime::SolveOptions base,
                                          double time_limit_ms) {
  if (time_limit_ms >= 0) base.time_limit_ms = time_limit_ms;
  if (!config.solver_backend.empty()) {
    (void)solver::ParseBackend(config.solver_backend, &base.backend);
  }
  if (config.solver_max_iterations > 0) {
    base.max_iterations = config.solver_max_iterations;
  }
  if (config.solver_incremental) base.incremental = true;
  if (config.solver_cache) base.cache = true;
  if (config.solver_subproblems > 0) base.subproblems = config.solver_subproblems;
  if (config.solver_naive_propagation) base.naive_propagation = true;
  return base;
}

runtime::SolveRequest MakeSolveRequest(const CommonConfig& config,
                                       int batched_prefix) {
  runtime::SolveRequest req;
  if (config.solver_incremental) {
    req.mode = runtime::SolveMode::kIncremental;
    req.group_key_prefix = batched_prefix;
  } else if (config.batch_links) {
    req.mode = runtime::SolveMode::kBatched;
    req.group_key_prefix = batched_prefix;
  }
  return req;
}

}  // namespace cologne::apps

#include "apps/invariants.h"

#include <cmath>

#include "common/strings.h"
#include "datalog/table.h"

namespace cologne::apps {

namespace {

// True when every crash in the plan has a restart (abandoned-link checks are
// only sound when no endpoint stays down forever).
bool AllCrashesRestart(const net::FaultPlan& plan) {
  for (const net::CrashFault& c : plan.crashes) {
    if (c.restart_t < 0) return false;
  }
  return true;
}

}  // namespace

std::map<int64_t, int64_t> FtsDemandTotals(FollowTheSunScenario& scenario,
                                           int num_dcs) {
  std::map<int64_t, int64_t> totals;  // demand -> total VMs across DCs
  for (int x = 0; x < num_dcs; ++x) {
    const datalog::Table* t =
        scenario.system()->node(x).engine().GetTable("curVm");
    if (t == nullptr) continue;
    for (const Row& row : t->Rows()) {
      if (row[0].as_node() != x) continue;
      totals[row[1].as_int()] += row[2].as_int();
    }
  }
  return totals;
}

std::string CheckFtsInvariants(FollowTheSunScenario& scenario,
                               const FtsConfig& config,
                               const FtsResult& result) {
  // Capacity constraint c1 in the final engine state of every node. Only
  // binding for crash-free plans: a restarted node replays its base facts
  // (the initial placement) while peers keep negotiated state, so the
  // global assignment can legitimately end out of sync — crash runs are
  // covered by the reconvergence checks in runtime_fault_test instead.
  if (config.fault_plan.crashes.empty()) {
    for (int x = 0; x < config.num_dcs; ++x) {
      int64_t total = 0;
      const datalog::Table* t =
          scenario.system()->node(x).engine().GetTable("curVm");
      if (t == nullptr) return StrFormat("node %d has no curVm table", x);
      for (const Row& row : t->Rows()) {
        if (row[0].as_node() == x) total += row[2].as_int();
      }
      if (total > config.capacity) {
        return StrFormat("node %d exceeds capacity: %lld > %d", x,
                         static_cast<long long>(total), config.capacity);
      }
    }
  }
  if (result.final_cost < 0 || result.initial_cost < 0) {
    return "negative cost";
  }
  // Anytime: negotiation must never leave the system worse than it started
  // (tolerance for the accumulated-migration-cost float bookkeeping).
  if (result.final_cost > result.initial_cost * 1.0001 + 1e-6) {
    return StrFormat("final cost %g above initial %g", result.final_cost,
                     result.initial_cost);
  }
  if (AllCrashesRestart(config.fault_plan) && result.abandoned_links != 0) {
    return StrFormat("%d links abandoned though every crash restarts",
                     result.abandoned_links);
  }
  return "";
}

std::string CheckWirelessInvariants(const WirelessConfig& config,
                                    const ChannelAssignment& result) {
  // Topology is a pure function of the config (the scenario constructor
  // derives grid, links, and primaries from the seed), so an independently
  // built copy recounts the same conflict graph.
  WirelessScenario topo(config);
  if (AllCrashesRestart(config.fault_plan)) {
    if (result.abandoned_links != 0) {
      return StrFormat("%d links abandoned though every crash restarts",
                       result.abandoned_links);
    }
    if (result.channel.size() != topo.links().size()) {
      return StrFormat("assigned %zu of %zu links", result.channel.size(),
                       topo.links().size());
    }
  }
  for (const auto& [link, ch] : result.channel) {
    if (ch < 1 || ch > config.num_channels) {
      return StrFormat("link (%d,%d) carries out-of-range channel %d",
                       link.first, link.second, ch);
    }
  }
  const double recount = topo.InterferenceCost(result.channel);
  if (std::fabs(recount - result.interference_cost) > 1e-9) {
    return StrFormat("reported interference %g != recomputed %g",
                     result.interference_cost, recount);
  }
  return "";
}

std::string CheckACloudInvariants(const ACloudConfig& config,
                                  const std::vector<ACloudInterval>& intervals) {
  // The replay loop runs step 0..N inclusive (a measurement at t=0 and one
  // per interval boundary), hence the +1.
  const int expected = static_cast<int>(config.duration_hours * 3600.0 /
                                        config.interval_s) +
                       1;
  if (static_cast<int>(intervals.size()) != expected) {
    return StrFormat("%zu intervals measured, expected %d", intervals.size(),
                     expected);
  }
  const bool crash_configured = config.crash_dc >= 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    const ACloudInterval& m = intervals[i];
    if (m.avg_cpu_stdev < 0 || !std::isfinite(m.avg_cpu_stdev)) {
      return StrFormat("interval %zu: invalid load stdev %g", i,
                       m.avg_cpu_stdev);
    }
    if (m.migrations < 0) {
      return StrFormat("interval %zu: negative migrations", i);
    }
    if (!crash_configured && m.skipped_dcs != 0) {
      return StrFormat("interval %zu: %d DCs skipped without a crash", i,
                       m.skipped_dcs);
    }
  }
  return "";
}

uint64_t HashTraceLines(const std::vector<std::string>& lines) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 1099511628211ull;  // FNV prime
  };
  uint64_t index = 0;
  for (const std::string& line : lines) {
    mix(index++);
    for (char c : line) mix(static_cast<unsigned char>(c));
  }
  return h;
}

}  // namespace cologne::apps

#include "apps/followsun.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "apps/negotiation.h"
#include "apps/programs.h"

namespace cologne::apps {

FollowTheSunScenario::FollowTheSunScenario(const FtsConfig& config)
    : config_(config) {
  auto compiled = colog::CompileColog(FollowTheSunDistributedProgram(
      config.migration_limit, config.capacity, config.max_migrates,
      config.batch_links));
  prog_ = std::move(compiled).value();
}

double FollowTheSunScenario::GlobalCost() const {
  // Communication + operating cost of the *current* allocation, plus the
  // migration cost spent so far (paper equations 1-4 evaluated globally).
  double cost = accumulated_mig_cost_;
  int n = config_.num_dcs;
  for (int x = 0; x < n; ++x) {
    for (int d = 0; d < n; ++d) {
      double r = static_cast<double>(cur_vm_[static_cast<size_t>(x)][static_cast<size_t>(d)]);
      cost += r * static_cast<double>(
                      comm_cost_[static_cast<size_t>(x)][static_cast<size_t>(d)]);
      cost += r * config_.op_cost;
    }
  }
  return cost;
}

Result<FtsResult> FollowTheSunScenario::Run() {
  const int n = config_.num_dcs;
  Rng rng(config_.seed);

  // ---- Topology: ring + random chords up to the target average degree -----
  sys_ = std::make_unique<runtime::System>(&prog_, static_cast<size_t>(n),
                                           MakeSystemOptions(config_));
  COLOGNE_RETURN_IF_ERROR(sys_->Init());
  if (config_.trace != nullptr) {
    config_.trace->Header("followsun", config_.seed, config_.fault_plan);
    sys_->SetTrace(config_.trace);
  }
  std::set<std::pair<NodeId, NodeId>> edges;
  auto add_edge = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (edges.insert(key).second) links_.push_back(key);
  };
  if (n == 2) {
    add_edge(0, 1);
  } else {
    for (int i = 0; i < n; ++i) add_edge(i, (i + 1) % n);
    int target = n * config_.avg_degree / 2;
    int guard = 0;
    while (static_cast<int>(links_.size()) < target && guard++ < 200) {
      add_edge(static_cast<NodeId>(rng.UniformInt(0, n - 1)),
               static_cast<NodeId>(rng.UniformInt(0, n - 1)));
    }
  }
  for (auto [a, b] : links_) {
    COLOGNE_RETURN_IF_ERROR(sys_->AddLink(a, b));
  }

  // ---- Workload facts -------------------------------------------------------
  cur_vm_.assign(static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(n), 0));
  comm_cost_.assign(static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(n), 0));
  auto N = [](NodeId x) { return Value::Node(x); };
  for (int x = 0; x < n; ++x) {
    for (int d = 0; d < n; ++d) {
      cur_vm_[static_cast<size_t>(x)][static_cast<size_t>(d)] =
          rng.UniformInt(config_.demand_lo, config_.demand_hi);
      // Follow-the-Sun semantics: serving demand at its preferred location
      // is cheap; serving it remotely costs comm_lo..comm_hi (the demand
      // *wants* to be near its customers — Section 3.1.2).
      comm_cost_[static_cast<size_t>(x)][static_cast<size_t>(d)] =
          x == d ? config_.comm_lo / 10
                 : rng.UniformInt(config_.comm_lo, config_.comm_hi);
      COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(
          x, "curVm",
          {N(x), Value::Int(d),
           Value::Int(cur_vm_[static_cast<size_t>(x)][static_cast<size_t>(d)])}));
      COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(
          x, "commCost",
          {N(x), Value::Int(d),
           Value::Int(comm_cost_[static_cast<size_t>(x)][static_cast<size_t>(d)])}));
      COLOGNE_RETURN_IF_ERROR(
          sys_->InsertFact(x, "dc", {N(x), Value::Int(d)}));
    }
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(
        x, "opCost", {N(x), Value::Int(config_.op_cost)}));
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(
        x, "resource", {N(x), Value::Int(config_.capacity)}));
  }
  for (auto [a, b] : links_) {
    int64_t mc = rng.UniformInt(config_.mig_lo, config_.mig_hi);
    mig_cost_[{a, b}] = mc;
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(a, "link", {N(a), N(b)}));
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(b, "link", {N(b), N(a)}));
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(a, "migCost", {N(a), N(b), Value::Int(mc)}));
    COLOGNE_RETURN_IF_ERROR(sys_->InsertFact(b, "migCost", {N(b), N(a), Value::Int(mc)}));
  }
  sys_->RunToQuiescence();  // ship the localized tmp tables

  FtsResult result;
  result.initial_cost = GlobalCost();
  result.series.push_back({0, result.initial_cost, 100.0});

  std::set<std::pair<NodeId, NodeId>> pending(links_.begin(), links_.end());
  std::map<std::pair<NodeId, NodeId>, int> fail_count;

  // ---- Fault plan + recovery hook ------------------------------------------
  // A restarted node re-reads its VM inventory from the hypervisor (the
  // mirrors), discards any half-open negotiation session, and re-negotiates
  // each of its links: its in-memory decisions died with it, and every
  // negotiation is a cost-non-increasing local improvement step, so the
  // renegotiation pass pulls the disturbed region back toward the no-fault
  // optimum.
  auto refresh_inventory = [this, N](NodeId x) {
    runtime::Instance& inst = sys_->node(x);
    if (inst.crashed()) return;
    for (int d = 0; d < config_.num_dcs; ++d) {
      (void)inst.InsertFact(
          "curVm", {N(x), Value::Int(d),
                    Value::Int(cur_vm_[static_cast<size_t>(x)][static_cast<size_t>(d)])});
    }
  };
  sys_->SetRestartHook([this, refresh_inventory, &pending](NodeId x) {
    runtime::Instance& inst = sys_->node(x);
    if (config_.refresh_on_restart) {
      // The renegotiation sessions below start with an inventory exchange:
      // the restarted node and its peers re-read ground truth, squashing
      // any divergence accumulated through earlier message loss.
      refresh_inventory(x);
      for (const auto& link : links_) {
        if (link.first == x) refresh_inventory(link.second);
        if (link.second == x) refresh_inventory(link.first);
      }
    }
    datalog::Table* set_link = inst.engine().GetTable("setLink");
    if (set_link != nullptr) {
      for (const Row& row : set_link->Rows()) {
        int guard = 0;
        while (set_link->Contains(row) && guard++ < 8) {
          (void)inst.DeleteFact("setLink", row);
        }
      }
    }
    for (const auto& link : links_) {
      if (link.first == x || link.second == x) pending.insert(link);
    }
  });
  if (!config_.fault_plan.empty()) {
    COLOGNE_RETURN_IF_ERROR(sys_->ApplyFaultPlan(config_.fault_plan));
  }

  // ---- Negotiation rounds ----------------------------------------------------
  const int max_rounds =
      config_.max_rounds > 0
          ? config_.max_rounds
          : static_cast<int>(links_.size()) * (3 + config_.converge_sweeps) + 8;
  double round_start = 0;
  Status failure;  // first negotiation error, surfaced for fault-free runs
  const bool faulty =
      !config_.fault_plan.empty() || config_.link_loss_prob > 0;
  int extra_passes = 0;
  double last_pass_cost = result.initial_cost + 1;  // first pass always runs
  while (result.rounds < max_rounds) {
    if (pending.empty() && !sys_->AnyRestartPending()) {
      // The pass is complete; renegotiate every link until a full pass
      // leaves the global cost unchanged (periodic negotiation converging
      // to a fixpoint). A pass that *worsened* the cost — divergence from
      // messages lost mid-negotiation — keeps sweeping so later, cleaner
      // passes repair the damage.
      double cost_now = GlobalCost();
      if (extra_passes >= config_.converge_sweeps) break;
      if (std::abs(cost_now - last_pass_cost) < 1e-9) break;  // fixpoint
      last_pass_cost = cost_now;
      ++extra_passes;
      if (faulty && config_.refresh_on_restart && !config_.net_reliable) {
        // Periodic anti-entropy: each sweep opens with an inventory sync
        // plus a reliable send-log resync so divergence accumulated through
        // message loss (lost r2/r3 updates, lost localized tmp tuples)
        // cannot compound across passes — the anytime-DCOP recipe for
        // tolerating lossy *datagram* transports. Retired on reliable runs:
        // the FIFO retransmission channel delivers everything, so there is
        // no loss-induced divergence to repair.
        for (int x = 0; x < n; ++x) refresh_inventory(x);
        for (int x = 0; x < n; ++x) (void)sys_->ResyncNode(x);
      }
      pending.insert(links_.begin(), links_.end());
    }
    ++result.rounds;
    // Greedy matching (apps/negotiation.h): classic mode pairs nodes one
    // link per round; batched mode lets an initiator claim all its pending
    // incident links with free peers and solve them as one batched model.
    std::vector<NegotiationBatch<NodeId>> batches = ClaimBatches(
        links_, &pending, static_cast<size_t>(n), config_.batch_links,
        config_.max_link_batch,
        [this, &result](const std::pair<NodeId, NodeId>& l) {
          if (sys_->NodePermanentlyDown(l.first) ||
              sys_->NodePermanentlyDown(l.second)) {
            ++result.abandoned_links;
            return LinkClaim::kDrop;
          }
          // A temporarily-down endpoint keeps the link pending for later.
          if (sys_->node(l.first).crashed() || sys_->node(l.second).crashed()) {
            return LinkClaim::kDefer;
          }
          return LinkClaim::kClaim;
        });
    for (const auto& [init, peers] : batches) {
      result.max_batch =
          std::max(result.max_batch, static_cast<int>(peers.size()));
      sys_->sim().ScheduleAt(round_start + 0.1, [this, init, peers, N] {
        for (NodeId peer : peers) {
          (void)sys_->InsertFact(init, "setLink", {N(init), N(peer)});
          (void)sys_->InsertFact(peer, "setLink", {N(peer), N(init)});
        }
      });
      sys_->sim().ScheduleAt(
          round_start + 2.0,
          [this, init, peers, N, &result, &failure, &pending, &fail_count,
           faulty] {
            auto link_of = [init](NodeId peer) {
              return peer < init ? std::make_pair(peer, init)
                                 : std::make_pair(init, peer);
            };
            auto requeue_all = [&] {
              for (NodeId peer : peers) {
                auto link = link_of(peer);
                ++result.failed_rounds;
                ++fail_count[link];
                if (sys_->NodePermanentlyDown(link.first) ||
                    sys_->NodePermanentlyDown(link.second)) {
                  ++result.abandoned_links;
                } else {
                  pending.insert(link);
                }
              }
            };
            bool peer_down = sys_->node(init).crashed();
            for (NodeId peer : peers) {
              peer_down = peer_down || sys_->node(peer).crashed();
            }
            if (peer_down) {
              // An endpoint died between setup and solve: the whole batch
              // is retried (partial application would desynchronize r2/r3).
              requeue_all();
              return;
            }
            runtime::Instance& inst = sys_->node(init);
            // Read-modify-write so program-declared SOLVER_* knobs survive.
            inst.set_solve_options(OverlaySolveOptions(
                config_, inst.solve_options(), config_.solver_time_ms));
            // Batched: one model covering every link of the batch, grouped
            // per (X, Y) link prefix of the migVm key for per-link LNS
            // neighborhoods.
            runtime::SolveRequest req = MakeSolveRequest(config_, 2);
            req.changed_tables = inst.touched_tables();
            auto out = inst.Solve(req);
            if (!out.ok()) {
              if (faulty) {
                requeue_all();
              } else if (failure.ok()) {
                failure = out.status();
              }
              return;
            }
            ++result.solves;
            for (NodeId peer : peers) {
              auto link = link_of(peer);
              if (auto fit = fail_count.find(link); fit != fail_count.end()) {
                ++result.recovered_rounds;
                fail_count.erase(fit);  // one recovery per failure streak
              }
            }
            result.avg_link_solve_ms += out.value().stats.wall_ms;
            // Account migrations and mirror curVm updates (r3 applied them
            // inside the engines; we mirror for global cost computation).
            auto it = out.value().tables.find("migVm");
            if (it == out.value().tables.end()) return;
            for (const Row& row : it->second) {
              int64_t moved = row[3].as_int();
              if (moved == 0) continue;
              NodeId peer = row[1].as_node();
              int d = static_cast<int>(row[2].as_int());
              double mc = static_cast<double>(mig_cost_[link_of(peer)]);
              // Physical clamp: a hypervisor cannot migrate VMs it does not
              // run. Only binds when message loss has let a node's engine
              // view drift from ground truth (no-op on consistent state,
              // where constraint c3 already guarantees feasibility).
              if (moved > 0) {
                moved = std::min(
                    moved, cur_vm_[static_cast<size_t>(init)][static_cast<size_t>(d)]);
              } else {
                moved = -std::min(
                    -moved, cur_vm_[static_cast<size_t>(peer)][static_cast<size_t>(d)]);
              }
              if (moved == 0) continue;
              cur_vm_[static_cast<size_t>(init)][static_cast<size_t>(d)] -= moved;
              cur_vm_[static_cast<size_t>(peer)][static_cast<size_t>(d)] += moved;
              accumulated_mig_cost_ +=
                  static_cast<double>(std::abs(moved)) * mc;
              total_moved_ += static_cast<int>(std::abs(moved));
            }
          });
      // Clear the negotiation before the next round begins.
      sys_->sim().ScheduleAt(round_start + 4.0, [this, init, peers, N] {
        for (NodeId peer : peers) {
          (void)sys_->node(init).DeleteFact("setLink", {N(init), N(peer)});
          (void)sys_->node(peer).DeleteFact("setLink", {N(peer), N(init)});
        }
      });
    }
    round_start += config_.round_period_s;
    sys_->RunUntil(round_start);
    // Round-boundary metrics snapshot (no-op, and no trace line, unless the
    // observability knob is on).
    sys_->SnapshotMetrics(static_cast<uint64_t>(result.rounds));
    result.series.push_back(
        {round_start, GlobalCost(), GlobalCost() / result.initial_cost * 100});
  }
  result.abandoned_links += static_cast<int>(pending.size());
  sys_->RunToQuiescence();
  COLOGNE_RETURN_IF_ERROR(failure);

  result.final_cost = GlobalCost();
  result.reduction_pct =
      (result.initial_cost - result.final_cost) / result.initial_cost * 100;
  result.converge_time_s = round_start;
  result.total_vms_migrated = total_moved_;
  // Batched runs amortize one solve over several links; the honest per-COP
  // figure divides by actual invocations, not the link count.
  if (config_.batch_links) {
    result.avg_link_solve_ms /= static_cast<double>(std::max(result.solves, 1));
  } else if (!links_.empty()) {
    result.avg_link_solve_ms /= static_cast<double>(links_.size());
  }
  result.messages_dropped = sys_->network().TotalDropped();
  for (int x = 0; x < n; ++x) {
    result.crashes += static_cast<int>(sys_->node(x).crash_count());
  }
  // Figure 5: per-node communication overhead over the run.
  double bytes = 0;
  for (int x = 0; x < n; ++x) {
    bytes += static_cast<double>(sys_->network().StatsOf(x).bytes_sent);
  }
  double duration = std::max(result.converge_time_s, 1.0);
  result.avg_per_node_kBps = bytes / n / duration / 1024.0;
  return result;
}

}  // namespace cologne::apps

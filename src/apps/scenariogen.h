// Seeded scenario generator for the three paper apps (Follow-the-Sun,
// wireless channel selection, ACloud) — the generator-vs-baseline testing
// pattern of fontanf/gap: randomized topologies, demand distributions, and
// net::FaultPlans, all derived deterministically from one scenario seed so
// any failing scenario reproduces from its (app, seed) pair alone.
//
// Consumed by tools/scenariogen.cc (emit scenarios as JSON), by
// tools/scenario_sweep.cc (run them across solver backends and report the
// objective-gap distribution), and by tests/scenario_sweep_test.cc (the
// tier-1 shrunk property subset).
#ifndef COLOGNE_APPS_SCENARIOGEN_H_
#define COLOGNE_APPS_SCENARIOGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/acloud.h"
#include "apps/followsun.h"
#include "apps/wireless.h"

namespace cologne::apps {

/// Which paper app a scenario exercises.
enum class ScenarioApp { kFts, kWireless, kACloud };

/// "fts", "wireless", "acloud".
const char* ScenarioAppName(ScenarioApp app);
/// Parse a name printed by ScenarioAppName; false on unknown names.
bool ParseScenarioApp(const std::string& name, ScenarioApp* out);

/// Generation knobs. The defaults generate scenarios sized for a sweep
/// (hundreds in seconds); the tier-1 property test shrinks them further for
/// sanitizer builds.
struct ScenarioGenConfig {
  uint64_t seed = 1;         ///< Master seed; scenario i derives seed+i.
  int count = 10;            ///< Scenarios to generate (cycled over `apps`).
  std::vector<ScenarioApp> apps = {ScenarioApp::kFts, ScenarioApp::kWireless,
                                   ScenarioApp::kACloud};
  bool with_faults = true;   ///< Attach a seeded FaultPlan (always-restart
                             ///< crashes, so coverage invariants stay sound).
  // Size caps (inclusive): randomized shapes stay within these.
  int max_fts_dcs = 6;
  int max_grid_w = 4;
  int max_grid_h = 3;
  int max_acloud_dcs = 3;
  int max_acloud_hosts = 3;
  /// Deterministic per-solve improvement budget (SolveOptions::
  /// max_iterations); every generated scenario solves wall-clock-free.
  uint64_t solver_iterations = 8;
};

/// One generated scenario: the app, the seed everything was derived from,
/// and the fully materialized config (workload shape + fault plan).
struct Scenario {
  ScenarioApp app = ScenarioApp::kFts;
  uint64_t seed = 0;
  std::string name;  ///< "<app>-<seed>", the sweep's row key.
  FtsConfig fts;
  WirelessConfig wireless;
  ACloudConfig acloud;

  /// Canonical single-line JSON describing the scenario (app, seed, shape
  /// fields, embedded fault plan) — enough to reproduce it by hand, though
  /// regenerating from (app, seed, caps) is the supported path.
  std::string ToJson() const;
};

/// Deterministically generate the scenario for (app, seed): same inputs and
/// caps always yield the same scenario, independent of `config.count`.
Scenario GenerateScenario(ScenarioApp app, uint64_t seed,
                          const ScenarioGenConfig& config);

/// The sweep set: `config.count` scenarios cycling over `config.apps`,
/// scenario i seeded with config.seed + i.
std::vector<Scenario> GenerateScenarios(const ScenarioGenConfig& config);

/// Outcome of executing one scenario under one solver backend.
struct ScenarioRun {
  bool ok = false;          ///< Driver ran to completion.
  std::string error;        ///< Driver failure (ok == false).
  std::string violation;    ///< First invariant violation; "" when clean.
  double objective = 0;     ///< App objective, lower is better: FTS final
                            ///< cost, wireless interference cost, ACloud
                            ///< mean per-interval load stdev.
  int solves = 0;           ///< invokeSolver executions (0 for ACloud).
  uint64_t trace_hash = 0;  ///< Fingerprint of the recorded trace
                            ///< (HashTraceLines); equal across re-runs of a
                            ///< deterministic scenario+backend.
  /// FTS only: per-demand VM totals across DCs — conserved by negotiation,
  /// so equal across backends for one scenario. Empty for other apps.
  std::map<int64_t, int64_t> fts_demand_totals;
};

/// Execute `scenario` with the driver's SOLVER_BACKEND overridden to
/// `backend` ("bnb", "lns", "portfolio", "parallel_lns", "local_search";
/// empty keeps the scenario default), recording a trace and checking the
/// app's invariants (apps/invariants.h) on the outcome.
ScenarioRun RunScenario(const Scenario& scenario, const std::string& backend);

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_SCENARIOGEN_H_

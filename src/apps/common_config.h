// Shared scenario-driver knobs, hoisted from FtsConfig / WirelessConfig /
// ACloudConfig (which duplicated them verbatim), plus the helpers that turn
// them into runtime::System::Options / SolveOptions / SolveRequest in one
// place instead of three per-driver copies.
#ifndef COLOGNE_APPS_COMMON_CONFIG_H_
#define COLOGNE_APPS_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

#include "runtime/solver_bridge.h"
#include "runtime/system.h"

namespace cologne::apps {

/// Knobs every scenario driver shares. Scenario configs inherit this; their
/// constructors override the seed default (11 for Follow-the-Sun, 3 for
/// wireless, 7 for ACloud — the historical per-scenario defaults).
struct CommonConfig {
  uint64_t seed = 1;
  /// Carry traffic over the retransmission/FIFO reliable transport
  /// (net/reliable_channel.h). Loss then no longer causes divergence.
  bool net_reliable = false;
  /// Deterministic observability: metrics registry + per-round `metrics`
  /// trace snapshots + solve provenance (see docs/observability.md).
  bool obs_metrics = false;
  /// Uniform per-message drop probability on every link (composes with
  /// fault-plan loss windows). Distributed drivers only.
  double link_loss_prob = 0;
  /// Batch per-link solves: each round an initiator aggregates all its
  /// claimable incident links into ONE grouped model solve instead of
  /// negotiating one link per round.
  bool batch_links = false;
  /// Cap on links per batched solve; 0 = unlimited.
  int max_link_batch = 0;
  /// Override the program's SOLVER_BACKEND for the driver's solves ("bnb",
  /// "lns", "portfolio", "parallel_lns", "local_search"); empty keeps the
  /// program default.
  std::string solver_backend;
  /// Deterministic improvement budget forwarded to
  /// SolveOptions::max_iterations; 0 = wall-clock bounded.
  uint64_t solver_max_iterations = 0;
  /// Route the driver's solves through the incremental fact-delta path
  /// (SolveMode::kIncremental): decision groups whose model fingerprint is
  /// unchanged stay pinned to the previous incumbent while search focuses
  /// on the dirtied ones. Off = the historical cold-solve behavior.
  bool solver_incremental = false;
  /// Persist exhausted-subtree proofs across the driver's solves
  /// (SOLVER_CACHE): repeated re-solves of a near-identical model skip
  /// subtrees a previous search already exhausted. Off = cache-free search,
  /// byte-identical to the historical solve path.
  bool solver_cache = false;
  /// Subproblem-parallel B&B width (SOLVER_SUBPROBLEMS) for concurrent
  /// backends with >1 worker; 0 = off.
  int solver_subproblems = 0;
  /// Run the propagation engine in its legacy untyped-FIFO reference mode
  /// (SOLVER_NAIVE_PROPAGATION): no event masks, no incremental linear
  /// aggregates, no entailment unsubscription. Search trees are identical
  /// either way; only propagator-effort metrics differ. Used by the
  /// confluence sweep and the CI props-per-node ratio gate.
  bool solver_naive_propagation = false;
};

/// System::Options from the shared knobs (seed, reliable transport,
/// observability, uniform loss).
runtime::System::Options MakeSystemOptions(const CommonConfig& config);

/// Overlay the shared solver knobs on an instance's resolved options
/// (read-modify-write, so program-declared SOLVER_* knobs survive wherever
/// the config does not override them). `time_limit_ms` < 0 keeps the base
/// time budget.
runtime::SolveOptions OverlaySolveOptions(const CommonConfig& config,
                                          runtime::SolveOptions base,
                                          double time_limit_ms);

/// The SolveRequest a driver's solve should issue under these knobs:
/// kIncremental when solver_incremental is set, else kBatched when
/// batch_links is, else kFull. `batched_prefix` is the decision-group key
/// prefix of the grouped modes (2 = per-(X, Y) link).
runtime::SolveRequest MakeSolveRequest(const CommonConfig& config,
                                       int batched_prefix);

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_COMMON_CONFIG_H_

// ACloud scenario driver (paper Sections 4.2 and 6.2): trace-driven replay of
// a multi-data-center cloud, with VM spawn/stop workload derivation and four
// placement policies — Default, Heuristic, ACloud and ACloud (M).
#ifndef COLOGNE_APPS_ACLOUD_H_
#define COLOGNE_APPS_ACLOUD_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/common_config.h"
#include "apps/trace.h"
#include "colog/planner.h"
#include "common/status.h"
#include "runtime/instance.h"

namespace cologne::apps {

/// Placement policies compared in Figures 2 and 3.
enum class ACloudPolicy {
  kDefault,    ///< No migration after initial random placement.
  kHeuristic,  ///< Threshold rebalancing: most- to least-loaded host until
               ///< the load ratio is below K (1.05 in the paper).
  kACloud,     ///< The Colog COP (Section 4.2), one Cologne instance per DC.
  kACloudM,    ///< ACloud plus the <=3-migrations-per-DC constraint (d5/d6/c3).
};

const char* ACloudPolicyName(ACloudPolicy p);

/// Scenario shape. Defaults reproduce the paper's setup at a scale where the
/// 4-hour replay completes in bench time: 3 data centers, 4 VM hosts each
/// (the paper's 5th host per DC is a storage server and hosts no VMs),
/// 10-minute COP interval, VMs below 20 % CPU excluded from the vm table.
/// The solver/observability knobs shared by every driver live in the
/// CommonConfig base (the network-transport ones are unused here — this
/// driver replays a trace against standalone instances, no simulated net).
/// CommonConfig::solver_backend replaces the historical solver::Backend
/// enum field: empty keeps the program default (branch-and-bound);
/// bench_fig2_3_acloud sets the spelled-out names.
struct ACloudConfig : CommonConfig {
  ACloudConfig() { seed = 7; }

  int num_dcs = 3;
  int hosts_per_dc = 4;
  int vms_per_host = 15;  ///< Preallocated migratable VMs per host.
  double duration_hours = 4.0;
  double interval_s = 600;
  double cpu_filter = 20.0;
  double spawn_threshold = 80.0;
  double stop_threshold = 20.0;
  int64_t host_mem_gb = 32;
  int64_t vm_mem_gb = 2;
  double heuristic_ratio = 1.05;
  int max_migrates = 3;        ///< Per DC per interval, ACloud (M) only.
  double solver_time_ms = 1500;
  /// Worker threads for the concurrent backends (portfolio / parallel_lns).
  int solver_workers = 1;
  uint64_t solver_seed = 0x10C5;
  /// Reuse each DC's previous placement as a warm start for the next solve.
  bool solver_warm_start = true;
  TraceConfig trace;
  // --- Fault injection -------------------------------------------------------
  /// DC whose Cologne instance crashes mid-replay (-1 = no crash). While
  /// down, the DC performs no placement (its interval is skipped).
  int crash_dc = -1;
  /// Interval index at which the crash happens.
  int crash_interval = -1;
  /// Interval index at which the instance restarts, rebuilding its tables
  /// from the durable base-fact journal (-1 = stays down).
  int restart_interval = -1;
  /// Keep the warm-start cache across the crash (both paths are tested).
  bool crash_retain_warm_start = false;
  /// Record invokeSolver outcomes + crash/restart transitions (optional).
  /// CommonConfig::obs_metrics additionally folds per-interval `metrics`
  /// snapshots + solve provenance into this trace.
  runtime::TraceRecorder* solve_trace = nullptr;
};

/// Per-interval measurements (one row of Figures 2 and 3).
struct ACloudInterval {
  double t_hours = 0;
  double avg_cpu_stdev = 0;  ///< Mean across DCs of per-DC host-CPU stdev.
  int migrations = 0;        ///< VM migrations performed this interval.
  double solve_ms = 0;       ///< Total solver wall time this interval.
  uint64_t solver_nodes = 0;       ///< Search nodes this interval.
  uint64_t solver_iterations = 0;  ///< Backend improvement iterations.
  uint64_t solver_restarts = 0;    ///< Backend restarts.
  /// Widest effective worker race this interval (1 for sequential backends;
  /// wall-clock solves cap the requested width at the core count).
  uint64_t solver_workers = 1;
  /// DCs that performed no placement this interval (crashed instance).
  int skipped_dcs = 0;
  /// True on the interval where a crashed instance rebuilt and rejoined.
  bool recovered = false;
};

/// \brief Trace replay of the ACloud workload under one policy.
class ACloudScenario {
 public:
  explicit ACloudScenario(const ACloudConfig& config);

  /// Replay the full duration; returns one entry per interval.
  Result<std::vector<ACloudInterval>> Run(ACloudPolicy policy);

  /// Number of VMs currently powered on (after the last Run).
  int active_vms() const;

 private:
  struct Vm {
    int id;
    int customer;
    int host;        // global host id
    bool active = true;
    double cpu = 0;  // current load %
  };

  int DcOfHost(int host) const { return host / config_.hosts_per_dc; }
  void UpdateLoads(double t_s);
  void ApplyWorkloadOps(double t_s);
  double DcStdev(int dc) const;
  std::vector<double> HostLoads() const;
  int RunHeuristic(int dc);
  Result<int> RunCologne(int dc, runtime::Instance* inst, ACloudInterval* m);

  ACloudConfig config_;
  DataCenterTrace trace_;
  Rng rng_;
  std::vector<Vm> vms_;
  int num_hosts_;
  colog::CompiledProgram prog_plain_;
  colog::CompiledProgram prog_limited_;
};

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_ACLOUD_H_

#include "apps/wireless.h"

#include <algorithm>
#include <queue>

#include "apps/negotiation.h"
#include "apps/programs.h"

namespace cologne::apps {

const char* WirelessProtocolName(WirelessProtocol p) {
  switch (p) {
    case WirelessProtocol::k1Interface: return "1-Interface";
    case WirelessProtocol::kIdenticalCh: return "Identical-Ch";
    case WirelessProtocol::kCentralized: return "Centralized";
    case WirelessProtocol::kDistributed: return "Distributed";
    case WirelessProtocol::kCrossLayer: return "Cross-layer";
  }
  return "?";
}

WirelessScenario::WirelessScenario(const WirelessConfig& config)
    : config_(config), rng_(config.seed) {
  int n = num_nodes();
  neighbors_.assign(static_cast<size_t>(n), {});
  auto id = [&](int x, int y) { return y * config_.grid_w + x; };
  for (int y = 0; y < config_.grid_h; ++y) {
    for (int x = 0; x < config_.grid_w; ++x) {
      if (x + 1 < config_.grid_w) {
        links_.push_back({id(x, y), id(x + 1, y)});
      }
      if (y + 1 < config_.grid_h) {
        links_.push_back({id(x, y), id(x, y + 1)});
      }
    }
  }
  for (const Link& l : links_) {
    neighbors_[static_cast<size_t>(l.first)].push_back(l.second);
    neighbors_[static_cast<size_t>(l.second)].push_back(l.first);
  }
  // Primary users: block a fraction of the channel set per node.
  primary_.assign(static_cast<size_t>(n), {});
  int blocked =
      static_cast<int>(config_.restrict_frac * config_.num_channels + 0.5);
  for (int v = 0; v < n; ++v) {
    while (static_cast<int>(primary_[static_cast<size_t>(v)].size()) < blocked) {
      primary_[static_cast<size_t>(v)].insert(
          static_cast<int>(rng_.UniformInt(1, config_.num_channels)));
    }
  }
  // Deterministic flow set.
  for (int f = 0; f < config_.num_flows; ++f) {
    int s = static_cast<int>(rng_.UniformInt(0, n - 1));
    int d = static_cast<int>(rng_.UniformInt(0, n - 1));
    while (d == s) d = static_cast<int>(rng_.UniformInt(0, n - 1));
    flows_.push_back({s, d});
  }
}

bool WirelessScenario::Interferes(const Link& a, const Link& b) const {
  if (a == b) return false;
  auto touches = [](const Link& l, int v) {
    return l.first == v || l.second == v;
  };
  // 1-hop: links share an endpoint.
  if (touches(b, a.first) || touches(b, a.second)) return true;
  if (config_.interference_hops < 2) return false;
  // 2-hop: an endpoint of a is adjacent to an endpoint of b.
  for (int u : {a.first, a.second}) {
    for (int v : neighbors_[static_cast<size_t>(u)]) {
      if (touches(b, v)) return true;
    }
  }
  return false;
}

double WirelessScenario::InterferenceCost(
    const std::map<Link, int>& channel) const {
  double cost = 0;
  for (size_t i = 0; i < links_.size(); ++i) {
    for (size_t j = i + 1; j < links_.size(); ++j) {
      auto ci = channel.find(links_[i]);
      auto cj = channel.find(links_[j]);
      if (ci == channel.end() || cj == channel.end()) continue;
      if (Interferes(links_[i], links_[j]) &&
          std::abs(ci->second - cj->second) < config_.f_mindiff) {
        cost += 1;
      }
    }
  }
  return cost;
}

// --- Protocols ---------------------------------------------------------------

ChannelAssignment WirelessScenario::RunIdentical() {
  // Every node has the same two channels (1 and 1+2*f_mindiff); links pick
  // greedily whichever conflicts less with already-assigned neighbors.
  ChannelAssignment out;
  int ch_a = 1;
  int ch_b = std::min(config_.num_channels, 1 + 2 * config_.f_mindiff);
  for (const Link& l : links_) {
    int best = ch_a;
    double best_cost = 1e18;
    for (int c : {ch_a, ch_b}) {
      double cost = 0;
      for (const auto& [other, oc] : out.channel) {
        if (Interferes(l, other) &&
            std::abs(c - oc) < config_.f_mindiff) {
          cost += 1;
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    out.channel[l] = best;
  }
  out.interference_cost = InterferenceCost(out.channel);
  return out;
}

Result<ChannelAssignment> WirelessScenario::RunCentralized() {
  auto compiled = colog::CompileColog(WirelessCentralizedProgram(
      config_.interference_hops >= 2, config_.num_channels,
      config_.f_mindiff));
  if (!compiled.ok()) return compiled.status();
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::Instance inst(0, &prog);
  COLOGNE_RETURN_IF_ERROR(inst.Init());
  datalog::Engine& eng = inst.engine();
  for (const Link& l : links_) {
    // Both directions (the symmetry constraint c2 links them).
    COLOGNE_RETURN_IF_ERROR(eng.Apply(
        "link", {Value::Int(l.first), Value::Int(l.second)}, +1));
    COLOGNE_RETURN_IF_ERROR(eng.Apply(
        "link", {Value::Int(l.second), Value::Int(l.first)}, +1));
  }
  for (int v = 0; v < num_nodes(); ++v) {
    for (int c : primary_[static_cast<size_t>(v)]) {
      COLOGNE_RETURN_IF_ERROR(
          eng.Apply("primaryUser", {Value::Int(v), Value::Int(c)}, +1));
    }
    COLOGNE_RETURN_IF_ERROR(eng.Apply(
        "numInterface", {Value::Int(v), Value::Int(config_.interfaces)}, +1));
  }
  COLOGNE_RETURN_IF_ERROR(eng.Flush());

  // Read-modify-write so program-declared SOLVER_* knobs survive.
  inst.set_solve_options(OverlaySolveOptions(config_, inst.solve_options(),
                                             config_.solver_time_ms));
  COLOGNE_ASSIGN_OR_RETURN(out, inst.Solve(MakeSolveRequest(config_, 0)));
  if (!out.has_solution()) {
    return Status::SolverError("centralized channel selection infeasible");
  }
  ChannelAssignment result;
  result.total_solve_ms = out.stats.wall_ms;
  result.converge_time_s = out.stats.wall_ms / 1000.0;
  const datalog::Table* assign = eng.GetTable("assign");
  for (const Row& row : assign->Rows()) {
    int a = static_cast<int>(row[0].as_int());
    int b = static_cast<int>(row[1].as_int());
    Link l = a < b ? Link{a, b} : Link{b, a};
    result.channel[l] = static_cast<int>(row[2].as_int());
  }
  result.interference_cost = InterferenceCost(result.channel);
  return result;
}

Result<ChannelAssignment> WirelessScenario::RunDistributed() {
  auto compiled = colog::CompileColog(WirelessDistributedProgram(
      config_.num_channels, config_.f_mindiff,
      config_.interference_hops >= 2, config_.batch_links));
  if (!compiled.ok()) return compiled.status();
  colog::CompiledProgram prog = std::move(compiled).value();

  runtime::System sys(&prog, static_cast<size_t>(num_nodes()),
                      MakeSystemOptions(config_));
  COLOGNE_RETURN_IF_ERROR(sys.Init());
  if (config_.trace != nullptr) {
    config_.trace->Header("wireless_distributed", config_.seed,
                          config_.fault_plan);
    sys.SetTrace(config_.trace);
  }
  auto N = [](int v) { return Value::Node(v); };
  for (const Link& l : links_) {
    COLOGNE_RETURN_IF_ERROR(sys.AddLink(l.first, l.second));
    COLOGNE_RETURN_IF_ERROR(
        sys.InsertFact(l.first, "link", {N(l.first), N(l.second)}));
    COLOGNE_RETURN_IF_ERROR(
        sys.InsertFact(l.second, "link", {N(l.second), N(l.first)}));
  }
  for (int v = 0; v < num_nodes(); ++v) {
    for (int c : primary_[static_cast<size_t>(v)]) {
      COLOGNE_RETURN_IF_ERROR(
          sys.InsertFact(v, "primaryUser", {N(v), Value::Int(c)}));
    }
  }
  sys.RunToQuiescence();

  ChannelAssignment result;
  Status failure;
  const bool faulty =
      !config_.fault_plan.empty() || config_.link_loss_prob > 0;
  std::set<Link> pending(links_.begin(), links_.end());
  std::map<Link, int> fail_count;

  // A rebooted node drops any half-open negotiation session and
  // re-negotiates its links: its assign decisions (solver output) died with
  // its engine and must be re-derived.
  sys.SetRestartHook([this, &sys, &pending](NodeId x) {
    runtime::Instance& inst = sys.node(x);
    for (const Link& link : links_) {
      if (link.first == x || link.second == x) pending.insert(link);
    }
    datalog::Table* set_link = inst.engine().GetTable("setLink");
    if (set_link == nullptr) return;
    for (const Row& row : set_link->Rows()) {
      int guard = 0;
      while (set_link->Contains(row) && guard++ < 8) {
        (void)inst.DeleteFact("setLink", row);
      }
    }
  });
  if (!config_.fault_plan.empty()) {
    COLOGNE_RETURN_IF_ERROR(sys.ApplyFaultPlan(config_.fault_plan));
  }

  const int max_rounds = config_.max_rounds > 0
                             ? config_.max_rounds
                             : static_cast<int>(links_.size()) * 3 + 8;
  int rounds = 0;
  double round_start = 0;
  while ((!pending.empty() || sys.AnyRestartPending()) && rounds < max_rounds) {
    ++rounds;
    // Greedy matching (apps/negotiation.h): classic mode pairs nodes one
    // link per round; batched mode lets an initiator claim all its pending
    // incident links with free peers and solve them as one batched model.
    std::vector<NegotiationBatch<int>> batches = ClaimBatches(
        links_, &pending, static_cast<size_t>(num_nodes()),
        config_.batch_links, config_.max_link_batch, [&sys](const Link& l) {
          if (sys.NodePermanentlyDown(l.first) ||
              sys.NodePermanentlyDown(l.second)) {
            // Abandoned: derived from the missing channel afterwards.
            return LinkClaim::kDrop;
          }
          if (sys.node(l.first).crashed() || sys.node(l.second).crashed()) {
            return LinkClaim::kDefer;  // retry once the endpoint is back
          }
          return LinkClaim::kClaim;
        });
    for (const auto& [init, peers] : batches) {
      result.max_batch =
          std::max(result.max_batch, static_cast<int>(peers.size()));
      sys.sim().ScheduleAt(round_start + 0.1, [&sys, init, peers, N] {
        for (int peer : peers) {
          (void)sys.InsertFact(init, "setLink", {N(init), N(peer)});
        }
      });
      sys.sim().ScheduleAt(
          round_start + 2.0,
          [this, &sys, &result, &failure, &pending, &fail_count, init, peers,
           faulty] {
            auto link_of = [init](int peer) {
              return peer < init ? Link{peer, init} : Link{init, peer};
            };
            auto requeue_all = [&] {
              for (int peer : peers) {
                Link l = link_of(peer);
                ++result.failed_rounds;
                ++fail_count[l];
                if (!sys.NodePermanentlyDown(l.first) &&
                    !sys.NodePermanentlyDown(l.second)) {
                  pending.insert(l);
                }
              }
            };
            bool down = sys.node(init).crashed();
            for (int peer : peers) down = down || sys.node(peer).crashed();
            if (down) {
              requeue_all();
              return;
            }
            runtime::Instance& inst = sys.node(init);
            inst.set_solve_options(OverlaySolveOptions(
                config_, inst.solve_options(), config_.link_solve_ms));
            // Batched: decision groups per (X, Y) assign-key prefix.
            runtime::SolveRequest req = MakeSolveRequest(config_, 2);
            req.changed_tables = inst.touched_tables();
            auto out = inst.Solve(req);
            if (!out.ok()) {
              if (faulty) {
                requeue_all();
              } else if (failure.ok()) {
                failure = out.status();
              }
              return;
            }
            ++result.solves;
            for (int peer : peers) {
              Link l = link_of(peer);
              if (auto fit = fail_count.find(l); fit != fail_count.end()) {
                ++result.recovered_rounds;
                fail_count.erase(fit);  // one recovery per failure streak
              }
            }
            result.total_solve_ms += out.value().stats.wall_ms;
          });
      sys.sim().ScheduleAt(round_start + 4.0, [&sys, init, peers, N] {
        for (int peer : peers) {
          (void)sys.node(init).DeleteFact("setLink", {N(init), N(peer)});
        }
      });
    }
    round_start += config_.round_period_s;
    sys.RunUntil(round_start);
    sys.SnapshotMetrics(static_cast<uint64_t>(rounds));
  }
  sys.RunToQuiescence();
  COLOGNE_RETURN_IF_ERROR(failure);

  // Collect assignments from each initiator's materialized assign table.
  // Links that never got a channel (endpoint dead for good, round cap, or a
  // crashed initiator that lost its decisions) are the abandoned set.
  for (const Link& l : links_) {
    int init = std::max(l.first, l.second);
    const datalog::Table* assign = sys.node(init).engine().GetTable("assign");
    for (const Row& row : assign->Rows()) {
      if (row[0].as_node() == init &&
          row[1].as_node() == std::min(l.first, l.second)) {
        result.channel[l] = static_cast<int>(row[2].as_int());
      }
    }
  }
  result.abandoned_links =
      static_cast<int>(links_.size() - result.channel.size());
  result.converge_time_s = round_start;
  result.messages_dropped = sys.network().TotalDropped();
  for (int v = 0; v < num_nodes(); ++v) {
    result.crashes += static_cast<int>(sys.node(v).crash_count());
  }
  double bytes = 0;
  for (int v = 0; v < num_nodes(); ++v) {
    bytes += static_cast<double>(sys.network().StatsOf(v).bytes_sent);
  }
  result.per_node_kBps =
      bytes / num_nodes() / std::max(round_start, 1.0) / 1024.0;
  result.interference_cost = InterferenceCost(result.channel);
  return result;
}

Result<ChannelAssignment> WirelessScenario::AssignChannels(
    WirelessProtocol protocol) {
  switch (protocol) {
    case WirelessProtocol::k1Interface: {
      ChannelAssignment out;
      for (const Link& l : links_) out.channel[l] = 1;
      out.interference_cost = InterferenceCost(out.channel);
      return out;
    }
    case WirelessProtocol::kIdenticalCh:
      return RunIdentical();
    case WirelessProtocol::kCentralized:
      return RunCentralized();
    case WirelessProtocol::kDistributed:
    case WirelessProtocol::kCrossLayer:
      return RunDistributed();
  }
  return Status::InvalidArgument("unknown protocol");
}

// --- Throughput model ---------------------------------------------------------

std::vector<int> WirelessScenario::RoutePath(
    int src, int dst, const std::map<Link, int>& channel,
    bool interference_aware) const {
  // Dijkstra; weight 1 per hop, plus the link's conflict count when routing
  // is interference-aware (the cross-layer protocol).
  int n = num_nodes();
  std::vector<double> dist(static_cast<size_t>(n), 1e18);
  std::vector<int> prev(static_cast<size_t>(n), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> q;
  dist[static_cast<size_t>(src)] = 0;
  q.push({0, src});
  auto link_of = [](int a, int b) {
    return a < b ? Link{a, b} : Link{b, a};
  };
  while (!q.empty()) {
    auto [d, u] = q.top();
    q.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == dst) break;
    for (int v : neighbors_[static_cast<size_t>(u)]) {
      double w = 1.0;
      if (interference_aware) {
        Link l = link_of(u, v);
        auto it = channel.find(l);
        if (it != channel.end()) {
          double conflicts = 0;
          for (const auto& [other, oc] : channel) {
            if (Interferes(l, other) &&
                std::abs(it->second - oc) < config_.f_mindiff) {
              conflicts += 1;
            }
          }
          w += 0.25 * conflicts;
        }
      }
      if (dist[static_cast<size_t>(u)] + w < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
        prev[static_cast<size_t>(v)] = u;
        q.push({dist[static_cast<size_t>(v)], v});
      }
    }
  }
  std::vector<int> path;
  if (prev[static_cast<size_t>(dst)] < 0 && src != dst) return path;
  for (int v = dst; v != -1; v = prev[static_cast<size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double WirelessScenario::AggregateThroughput(
    const ChannelAssignment& assignment, double rate_mbps,
    bool interference_aware_routing) const {
  auto link_of = [](int a, int b) {
    return a < b ? Link{a, b} : Link{b, a};
  };
  // Route all flows; count flows per link.
  std::map<Link, int> flows_on;
  std::vector<std::vector<Link>> paths;
  for (const auto& [s, d] : flows_) {
    std::vector<int> nodes =
        RoutePath(s, d, assignment.channel, interference_aware_routing);
    std::vector<Link> path;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      Link l = link_of(nodes[i], nodes[i + 1]);
      path.push_back(l);
      flows_on[l] += 1;
    }
    paths.push_back(std::move(path));
  }
  // Effective capacity: nominal rate shared with interfering *active* links
  // on conflicting channels.
  std::map<Link, double> eff;
  for (const auto& [l, cnt] : flows_on) {
    auto cl = assignment.channel.find(l);
    int ch = cl == assignment.channel.end() ? 1 : cl->second;
    int interferers = 0;
    for (const auto& [m, cnt2] : flows_on) {
      if (m == l) continue;
      auto cm = assignment.channel.find(m);
      int ch2 = cm == assignment.channel.end() ? 1 : cm->second;
      if (Interferes(l, m) && std::abs(ch - ch2) < config_.f_mindiff) {
        ++interferers;
      }
    }
    eff[l] = config_.link_capacity_mbps / (1.0 + interferers);
  }
  // Flow throughput: offered rate capped by its bottleneck share.
  double total = 0;
  for (const auto& path : paths) {
    if (path.empty()) continue;
    double share = 1e18;
    for (const Link& l : path) {
      share = std::min(share, eff[l] / flows_on[l]);
    }
    total += std::min(rate_mbps, share);
  }
  return total;
}

}  // namespace cologne::apps

#include "apps/trace.h"

#include <algorithm>
#include <cmath>

namespace cologne::apps {

namespace {
constexpr double kDaySeconds = 86400.0;
constexpr double kTwoPi = 6.283185307179586;

// Stateless hash-based uniform in [0,1): deterministic per (seed, index).
double HashUniform(uint64_t seed, uint64_t index) {
  uint64_t x = seed ^ (index * 0x9E3779B97F4A7C15ull);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}
}  // namespace

DataCenterTrace::DataCenterTrace(const TraceConfig& config) : config_(config) {
  Rng rng(config.seed);
  profiles_.reserve(static_cast<size_t>(config.num_customers));
  pps_.reserve(static_cast<size_t>(config.num_customers));
  // Allocate PPs: skewed (a few big customers, many small), always >= 1,
  // summing approximately to num_pps.
  int remaining = config.num_pps - config.num_customers;
  for (int c = 0; c < config.num_customers; ++c) {
    int extra = 0;
    if (remaining > 0) {
      extra = static_cast<int>(rng.UniformInt(0, 2));
      if (rng.Bernoulli(0.06)) extra += static_cast<int>(rng.UniformInt(8, 40));
      extra = std::min(extra, remaining);
      remaining -= extra;
    }
    pps_.push_back(1 + extra);

    Profile p;
    p.base = rng.UniformDouble(15.0, 45.0);
    p.amplitude = rng.UniformDouble(10.0, 40.0);
    p.phase = rng.UniformDouble(0.0, kTwoPi);
    p.burst_p = rng.UniformDouble(0.01, 0.06);
    p.noise = rng.UniformDouble(2.0, 6.0);
    p.seed = rng.Next();
    profiles_.push_back(p);
  }
}

double DataCenterTrace::CustomerCpu(int customer, double t_s) const {
  const Profile& p = profiles_[static_cast<size_t>(customer)];
  uint64_t sample = static_cast<uint64_t>(t_s / config_.sample_interval_s);
  double diurnal =
      p.base + p.amplitude * std::sin(kTwoPi * t_s / kDaySeconds + p.phase);
  double u1 = HashUniform(p.seed, sample * 2);
  double u2 = HashUniform(p.seed, sample * 2 + 1);
  double noise = (u1 - 0.5) * 2.0 * p.noise;
  double burst = (u2 < p.burst_p) ? 35.0 : 0.0;
  return std::clamp(diurnal + noise + burst, 0.0, 100.0);
}

double DataCenterTrace::CustomerMem(int customer, double t_s) const {
  const Profile& p = profiles_[static_cast<size_t>(customer)];
  // Memory tracks a dampened version of the load, floor 20%.
  double cpu = CustomerCpu(customer, t_s);
  return std::clamp(20.0 + 0.5 * cpu + 0.1 * p.base, 0.0, 100.0);
}

}  // namespace cologne::apps

#include "apps/acloud.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "apps/programs.h"
#include "common/stats.h"

namespace cologne::apps {

const char* ACloudPolicyName(ACloudPolicy p) {
  switch (p) {
    case ACloudPolicy::kDefault: return "Default";
    case ACloudPolicy::kHeuristic: return "Heuristic";
    case ACloudPolicy::kACloud: return "ACloud";
    case ACloudPolicy::kACloudM: return "ACloud (M)";
  }
  return "?";
}

ACloudScenario::ACloudScenario(const ACloudConfig& config)
    : config_(config), trace_(config.trace), rng_(config.seed) {
  num_hosts_ = config.num_dcs * config.hosts_per_dc;
  auto plain = colog::CompileColog(ACloudProgram(false));
  auto limited =
      colog::CompileColog(ACloudProgram(true, config.max_migrates));
  // Program texts are fixed; failure here is a programming error.
  prog_plain_ = std::move(plain).value();
  prog_limited_ = std::move(limited).value();
}

int ACloudScenario::active_vms() const {
  int n = 0;
  for (const Vm& vm : vms_) n += vm.active;
  return n;
}

void ACloudScenario::UpdateLoads(double t_s) {
  // Spread each customer's demand over its active VMs.
  std::vector<int> active_count(
      static_cast<size_t>(trace_.num_customers()), 0);
  for (const Vm& vm : vms_) {
    if (vm.active) ++active_count[static_cast<size_t>(vm.customer)];
  }
  for (Vm& vm : vms_) {
    if (!vm.active) {
      vm.cpu = 0;
      continue;
    }
    int n = active_count[static_cast<size_t>(vm.customer)];
    double demand = trace_.CustomerCpu(vm.customer, t_s) *
                    trace_.PpsOf(vm.customer);
    vm.cpu = std::clamp(demand / std::max(n, 1), 0.0, 100.0);
  }
}

void ACloudScenario::ApplyWorkloadOps(double t_s) {
  // Per customer: spawn (power on) a VM when average load exceeds the high
  // threshold and an inactive VM exists; power one off below the low
  // threshold (paper Section 6.2 workload derivation).
  std::vector<std::vector<size_t>> by_customer(
      static_cast<size_t>(trace_.num_customers()));
  for (size_t i = 0; i < vms_.size(); ++i) {
    by_customer[static_cast<size_t>(vms_[i].customer)].push_back(i);
  }
  for (int c = 0; c < trace_.num_customers(); ++c) {
    const auto& ids = by_customer[static_cast<size_t>(c)];
    if (ids.empty()) continue;
    int active = 0;
    for (size_t i : ids) active += vms_[i].active;
    double demand = trace_.CustomerCpu(c, t_s) * trace_.PpsOf(c);
    double per_vm = demand / std::max(active, 1);
    if (per_vm > config_.spawn_threshold) {
      for (size_t i : ids) {
        if (!vms_[i].active) {
          vms_[i].active = true;
          break;
        }
      }
    } else if (per_vm < config_.stop_threshold && active > 1) {
      for (size_t i : ids) {
        if (vms_[i].active) {
          vms_[i].active = false;
          break;
        }
      }
    }
  }
}

std::vector<double> ACloudScenario::HostLoads() const {
  std::vector<double> load(static_cast<size_t>(num_hosts_), 0.0);
  for (const Vm& vm : vms_) {
    if (vm.active) load[static_cast<size_t>(vm.host)] += vm.cpu;
  }
  return load;
}

double ACloudScenario::DcStdev(int dc) const {
  std::vector<double> loads = HostLoads();
  std::vector<double> dc_loads(
      loads.begin() + dc * config_.hosts_per_dc,
      loads.begin() + (dc + 1) * config_.hosts_per_dc);
  return Stdev(dc_loads);
}

int ACloudScenario::RunHeuristic(int dc) {
  int migrations = 0;
  int lo_host = dc * config_.hosts_per_dc;
  int hi_host = lo_host + config_.hosts_per_dc;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<double> loads = HostLoads();
    int most = lo_host, least = lo_host;
    for (int h = lo_host; h < hi_host; ++h) {
      if (loads[static_cast<size_t>(h)] > loads[static_cast<size_t>(most)]) most = h;
      if (loads[static_cast<size_t>(h)] < loads[static_cast<size_t>(least)]) least = h;
    }
    double max_l = loads[static_cast<size_t>(most)];
    double min_l = loads[static_cast<size_t>(least)];
    if (min_l <= 0) min_l = 1e-9;
    if (max_l / min_l <= config_.heuristic_ratio) break;
    // Move the VM whose load is closest to half the gap.
    double target = (max_l - min_l) / 2;
    int best_vm = -1;
    double best_diff = 1e18;
    for (size_t i = 0; i < vms_.size(); ++i) {
      const Vm& vm = vms_[i];
      if (!vm.active || vm.host != most || vm.cpu <= 0) continue;
      double diff = std::fabs(vm.cpu - target);
      if (vm.cpu < (max_l - min_l) && diff < best_diff) {
        best_diff = diff;
        best_vm = static_cast<int>(i);
      }
    }
    if (best_vm < 0) break;  // no move improves
    vms_[static_cast<size_t>(best_vm)].host = least;
    ++migrations;
  }
  return migrations;
}

Result<int> ACloudScenario::RunCologne(int dc, runtime::Instance* inst,
                                       ACloudInterval* m) {
  int lo_host = dc * config_.hosts_per_dc;
  int hi_host = lo_host + config_.hosts_per_dc;
  datalog::Engine& eng = inst->engine();

  // Residual (non-optimizable) load per host: VMs below the CPU filter.
  std::vector<int64_t> residual(static_cast<size_t>(num_hosts_), 0);
  std::vector<size_t> movable;
  for (size_t i = 0; i < vms_.size(); ++i) {
    const Vm& vm = vms_[i];
    if (!vm.active || vm.host < lo_host || vm.host >= hi_host) continue;
    if (vm.cpu > config_.cpu_filter) {
      movable.push_back(i);
    } else {
      residual[static_cast<size_t>(vm.host)] +=
          static_cast<int64_t>(std::lround(vm.cpu));
    }
  }

  // Refresh facts (keyed tables replace rows in place). Stale vm/origin rows
  // for VMs that left the filter are deleted via table diff below.
  std::set<Row> want_vm, want_origin;
  for (size_t i : movable) {
    const Vm& vm = vms_[i];
    want_vm.insert({Value::Int(vm.id),
                    Value::Int(static_cast<int64_t>(std::lround(vm.cpu))),
                    Value::Int(config_.vm_mem_gb)});
    want_origin.insert({Value::Int(vm.id), Value::Int(vm.host)});
  }
  // Fact refresh goes through the instance's durable journal (ApplyFact), so
  // a crashed DC rebuilds its last-known workload on restart.
  for (const std::string& table : {std::string("vm"), std::string("origin")}) {
    const auto& want = table == "vm" ? want_vm : want_origin;
    for (const Row& row : eng.GetTable(table)->Rows()) {
      // Delete rows whose key (Vid) is no longer wanted; keyed replacement
      // handles changed rows on insert.
      bool keep = false;
      for (const Row& w : want) {
        if (w[0] == row[0]) keep = true;
      }
      if (!keep) COLOGNE_RETURN_IF_ERROR(inst->ApplyFact(table, row, -1));
    }
    for (const Row& row : want) {
      COLOGNE_RETURN_IF_ERROR(inst->ApplyFact(table, row, +1));
    }
  }
  for (int h = lo_host; h < hi_host; ++h) {
    COLOGNE_RETURN_IF_ERROR(inst->ApplyFact(
        "host",
        {Value::Int(h), Value::Int(residual[static_cast<size_t>(h)]),
         Value::Int(0)},
        +1));
    COLOGNE_RETURN_IF_ERROR(inst->ApplyFact(
        "hostMemThres", {Value::Int(h), Value::Int(config_.host_mem_gb)}, +1));
  }
  COLOGNE_RETURN_IF_ERROR(inst->Flush());

  if (movable.empty()) return 0;

  COLOGNE_ASSIGN_OR_RETURN(out, inst->Solve(MakeSolveRequest(config_, 0)));
  // Per-solve trace for diagnosing replay regressions (set ACLOUD_DEBUG=1).
  if (getenv("ACLOUD_DEBUG") != nullptr) {
    fprintf(stderr,
            "DBG dc=%d status=%s vars=%zu movable=%zu wall=%.1f obj=%.2f "
            "nodes=%llu iters=%llu\n",
            dc, solver::SolveStatusName(out.status), out.model_vars,
            movable.size(), out.stats.wall_ms, out.objective,
            static_cast<unsigned long long>(out.stats.nodes),
            static_cast<unsigned long long>(out.stats.iterations));
  }
  m->solve_ms += out.stats.wall_ms;
  m->solver_nodes += out.stats.nodes;
  m->solver_iterations += out.stats.iterations;
  m->solver_restarts += out.stats.restarts;
  if (!out.stats.per_worker.empty()) {
    m->solver_workers =
        std::max(m->solver_workers,
                 static_cast<uint64_t>(out.stats.per_worker.size()));
  }
  if (!out.has_solution()) return 0;

  // Apply the placement: assign(Vid,Hid,1) => VM Vid runs on host Hid.
  int migrations = 0;
  const datalog::Table* assign = eng.GetTable("assign");
  for (size_t i : movable) {
    Vm& vm = vms_[i];
    for (int h = lo_host; h < hi_host; ++h) {
      Row row{Value::Int(vm.id), Value::Int(h), Value::Int(1)};
      if (assign->Contains(row)) {
        if (vm.host != h) {
          vm.host = h;
          ++migrations;
        }
        break;
      }
    }
  }
  return migrations;
}

Result<std::vector<ACloudInterval>> ACloudScenario::Run(ACloudPolicy policy) {
  // Reset VM population: vms_per_host on every host, customers round-robin.
  vms_.clear();
  rng_.Seed(config_.seed);
  int vid = 0;
  for (int h = 0; h < num_hosts_; ++h) {
    for (int k = 0; k < config_.vms_per_host; ++k) {
      Vm vm;
      vm.id = vid++;
      vm.customer = static_cast<int>(
          rng_.UniformInt(0, trace_.num_customers() - 1));
      vm.host = h;
      vms_.push_back(vm);
    }
  }

  // One persistent Cologne instance per data center (state updates flow
  // through incremental view maintenance across intervals).
  const colog::CompiledProgram& prog =
      policy == ACloudPolicy::kACloudM ? prog_limited_ : prog_plain_;
  std::vector<std::unique_ptr<runtime::Instance>> instances;
  // Standalone driver (no runtime::System): the scenario owns the metrics
  // registry itself and snapshots per COP interval instead of per round.
  obs::MetricsRegistry metrics;
  if (config_.obs_metrics) {
    metrics.DeclareHistogram("solve.nodes", {0, 10, 100, 1000, 10000});
  }
  if (policy == ACloudPolicy::kACloud || policy == ACloudPolicy::kACloudM) {
    for (int dc = 0; dc < config_.num_dcs; ++dc) {
      auto inst = std::make_unique<runtime::Instance>(dc, &prog);
      COLOGNE_RETURN_IF_ERROR(inst->Init());
      // Read-modify-write so program-declared SOLVER_* knobs survive
      // (the config fields below still win where set).
      runtime::SolveOptions opts = OverlaySolveOptions(
          config_, inst->solve_options(), config_.solver_time_ms);
      opts.num_workers = config_.solver_workers;
      opts.seed = config_.solver_seed;
      opts.warm_start = config_.solver_warm_start;
      inst->set_solve_options(opts);
      if (config_.solve_trace != nullptr) {
        inst->set_trace(config_.solve_trace);
      }
      if (config_.obs_metrics) inst->set_metrics(&metrics);
      instances.push_back(std::move(inst));
    }
  }

  std::vector<ACloudInterval> out;
  int intervals =
      static_cast<int>(config_.duration_hours * 3600 / config_.interval_s);
  const bool cologne_policy =
      policy == ACloudPolicy::kACloud || policy == ACloudPolicy::kACloudM;
  for (int step = 0; step <= intervals; ++step) {
    double t_s = step * config_.interval_s;
    if (config_.solve_trace != nullptr) config_.solve_trace->SetTime(t_s);
    ApplyWorkloadOps(t_s);
    UpdateLoads(t_s);

    ACloudInterval m;
    m.t_hours = t_s / 3600.0;
    // Injected instance crash/restart (Cologne policies only: the other
    // policies hold no per-DC engine state to lose).
    if (cologne_policy && step == config_.crash_interval &&
        config_.crash_dc >= 0 && config_.crash_dc < config_.num_dcs) {
      runtime::Instance* victim =
          instances[static_cast<size_t>(config_.crash_dc)].get();
      COLOGNE_RETURN_IF_ERROR(victim->Crash());
      if (config_.solve_trace != nullptr) {
        config_.solve_trace->Fault(
            "crash", "\"node\":" + std::to_string(config_.crash_dc));
      }
    }
    if (cologne_policy && step == config_.restart_interval &&
        config_.crash_dc >= 0 && config_.crash_dc < config_.num_dcs &&
        instances[static_cast<size_t>(config_.crash_dc)]->crashed()) {
      runtime::Instance* victim =
          instances[static_cast<size_t>(config_.crash_dc)].get();
      COLOGNE_RETURN_IF_ERROR(
          victim->Restart(config_.crash_retain_warm_start));
      COLOGNE_RETURN_IF_ERROR(victim->ReplayBaseFacts());
      m.recovered = true;
      if (config_.solve_trace != nullptr) {
        config_.solve_trace->Fault(
            "restart", "\"node\":" + std::to_string(config_.crash_dc));
      }
    }
    switch (policy) {
      case ACloudPolicy::kDefault:
        break;
      case ACloudPolicy::kHeuristic:
        for (int dc = 0; dc < config_.num_dcs; ++dc) {
          m.migrations += RunHeuristic(dc);
        }
        break;
      case ACloudPolicy::kACloud:
      case ACloudPolicy::kACloudM:
        for (int dc = 0; dc < config_.num_dcs; ++dc) {
          if (instances[static_cast<size_t>(dc)]->crashed()) {
            ++m.skipped_dcs;
            continue;
          }
          COLOGNE_ASSIGN_OR_RETURN(
              n, RunCologne(dc, instances[static_cast<size_t>(dc)].get(), &m));
          m.migrations += n;
        }
        break;
    }

    double total = 0;
    for (int dc = 0; dc < config_.num_dcs; ++dc) total += DcStdev(dc);
    m.avg_cpu_stdev = total / config_.num_dcs;
    if (config_.obs_metrics && cologne_policy &&
        config_.solve_trace != nullptr) {
      config_.solve_trace->Metrics(static_cast<uint64_t>(step), metrics);
    }
    out.push_back(m);
  }
  return out;
}

}  // namespace cologne::apps

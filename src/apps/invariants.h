// Reusable invariant checks over scenario-driver outcomes, shared by the
// property tests (tests/scenario_sweep_test.cc), the runtime fault soaks,
// and the scenario sweep harness (tools/scenario_sweep.cc).
//
// Every checker returns "" when the invariant holds and a human-readable
// violation description otherwise, so harnesses can aggregate violations
// (and print the offending scenario seed) instead of aborting on the first.
#ifndef COLOGNE_APPS_INVARIANTS_H_
#define COLOGNE_APPS_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/acloud.h"
#include "apps/followsun.h"
#include "apps/wireless.h"

namespace cologne::apps {

/// Per-demand VM totals across all DCs after a Follow-the-Sun run (read from
/// each node's final `curVm` engine table). Negotiation only moves VMs
/// between DCs, so these totals are conserved: they depend on the workload
/// seed alone, never on the solver backend or the negotiation schedule.
std::map<int64_t, int64_t> FtsDemandTotals(FollowTheSunScenario& scenario,
                                           int num_dcs);

/// Follow-the-Sun post-run invariants: per-node capacity (constraint c1)
/// holds in the final engine state, the anytime property (final cost never
/// above initial), non-negative costs, and — when the fault plan restarts
/// every crash — full link coverage (no abandoned links).
std::string CheckFtsInvariants(FollowTheSunScenario& scenario,
                               const FtsConfig& config, const FtsResult& result);

/// Wireless post-run invariants for the distributed protocol: every link
/// carries a channel in [1, num_channels], full coverage when the fault plan
/// restarts every crash, and the reported interference cost agrees with an
/// independent recount over the assignment on a freshly built topology.
std::string CheckWirelessInvariants(const WirelessConfig& config,
                                    const ChannelAssignment& result);

/// ACloud replay invariants: one measurement per interval, non-negative
/// load-imbalance and migration counts, and no skipped DCs unless a crash
/// was configured.
std::string CheckACloudInvariants(const ACloudConfig& config,
                                  const std::vector<ACloudInterval>& intervals);

/// Order-independent FNV-1a hash over trace lines — a compact determinism
/// fingerprint is not enough (reordered lines must not collide), so each
/// line is hashed with its index. Two identical traces hash identically;
/// byte-level diffs come from runtime::DiffTraces when a mismatch needs
/// explaining.
uint64_t HashTraceLines(const std::vector<std::string>& lines);

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_INVARIANTS_H_

// Synthetic data-center trace (substitute for the paper's proprietary
// hosting-company trace, Section 6.2): N customers on statically allocated
// physical processors, one CPU/memory sample per customer every 300 s, with
// diurnal load patterns plus noise.
#ifndef COLOGNE_APPS_TRACE_H_
#define COLOGNE_APPS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace cologne::apps {

/// Shape parameters for the synthetic trace. Defaults mirror the paper's
/// trace statistics (248 customers, 1,740 PPs, 300 s sampling).
struct TraceConfig {
  int num_customers = 248;
  int num_pps = 1740;
  double sample_interval_s = 300;
  uint64_t seed = 42;
};

/// \brief Deterministic per-customer CPU demand over time.
///
/// Each customer gets a base load, a diurnal sinusoid with its own amplitude
/// and phase (time zones), occasional bursts, and sampling noise — the
/// features the ACloud workload derivation (VM spawn at >80 %, power-off at
/// <20 %) reacts to.
class DataCenterTrace {
 public:
  explicit DataCenterTrace(const TraceConfig& config);

  int num_customers() const { return config_.num_customers; }

  /// Number of physical processors allocated to `customer`.
  int PpsOf(int customer) const { return pps_[static_cast<size_t>(customer)]; }

  /// Average CPU utilization (0..100, percent of one PP) across `customer`'s
  /// PPs at time `t_s` (seconds since trace start). Deterministic in
  /// (customer, sample index).
  double CustomerCpu(int customer, double t_s) const;

  /// Memory utilization (0..100) — slowly varying, load-correlated.
  double CustomerMem(int customer, double t_s) const;

 private:
  struct Profile {
    double base;       // baseline load %
    double amplitude;  // diurnal swing %
    double phase;      // radians (customer time zone)
    double burst_p;    // probability a sample is a burst
    double noise;      // stddev of sampling noise %
    uint64_t seed;
  };
  TraceConfig config_;
  std::vector<Profile> profiles_;
  std::vector<int> pps_;
};

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_TRACE_H_

// Follow-the-Sun scenario driver (paper Sections 4.3 and 6.3): distributed
// per-link VM-migration negotiation across geo-distributed data centers over
// the simulated network, optionally under an injected fault plan (link
// flaps, loss, partitions, node crashes) with failed-round retry.
#ifndef COLOGNE_APPS_FOLLOWSUN_H_
#define COLOGNE_APPS_FOLLOWSUN_H_

#include <map>
#include <memory>
#include <vector>

#include "apps/common_config.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/fault_plan.h"
#include "runtime/system.h"
#include "runtime/trace_replay.h"

namespace cologne::apps {

/// Experimental knobs, defaulting to the paper's Section 6.3 workload:
/// degree-3 random topology, capacity 60, demands 0-10, communication cost
/// 50-100, migration cost 10-20, operating cost 10, 5 s negotiation timer.
/// The transport/observability/solver knobs shared by every driver live in
/// the CommonConfig base.
struct FtsConfig : CommonConfig {
  FtsConfig() { seed = 11; }

  int num_dcs = 6;
  int avg_degree = 3;
  int capacity = 60;
  int demand_lo = 0;
  int demand_hi = 10;
  int comm_lo = 50;
  int comm_hi = 100;
  int mig_lo = 10;
  int mig_hi = 20;
  int op_cost = 10;
  double round_period_s = 5.0;
  double solver_time_ms = 500;
  bool migration_limit = false;  ///< Adds d11/c3 (<= max_migrates per link).
  int max_migrates = 20;
  /// Injected faults (empty = the happy path). Applied after the workload
  /// facts have shipped, so window/crash times are negotiation-phase times.
  net::FaultPlan fault_plan;
  /// Record every delivery/drop/fault/solve into this trace (optional).
  runtime::TraceRecorder* trace = nullptr;
  /// On node restart, re-insert the node's current VM inventory (curVm) —
  /// the hypervisor re-reads ground truth on boot. Disable to test pure
  /// journal-replay recovery.
  bool refresh_on_restart = true;
  /// Negotiation-round cap; 0 = auto (3x the link count + 8). Rounds whose
  /// negotiation fails (crashed endpoint, solve failure) are retried until
  /// the cap.
  int max_rounds = 0;
  /// After the initial pass over all links, renegotiate every link for up
  /// to this many additional passes until a pass leaves the global cost
  /// unchanged (the paper's periodic negotiation converging to a fixpoint;
  /// under churn, later clean passes repair loss-induced divergence). 0 =
  /// single-pass behavior.
  int converge_sweeps = 4;
};

/// One point of the Figure 4 series.
struct FtsSample {
  double t_s = 0;
  double total_cost = 0;      ///< Global comm+op+migration cost.
  double normalized = 0;      ///< Relative to the pre-optimization cost (%).
};

/// Full outcome of one distributed execution.
struct FtsResult {
  std::vector<FtsSample> series;     ///< Cost after each negotiation round.
  double initial_cost = 0;
  double final_cost = 0;
  double reduction_pct = 0;          ///< (initial-final)/initial * 100.
  double converge_time_s = 0;
  double avg_per_node_kBps = 0;      ///< Figure 5 measurement.
  int total_vms_migrated = 0;        ///< Sum of |R| across links.
  double avg_link_solve_ms = 0;      ///< Section 6.3: per-link COP time.
  int rounds = 0;
  int solves = 0;             ///< invokeSolver executions across the run.
  int max_batch = 0;          ///< Largest link batch covered by one solve.
  // --- Churn accounting ------------------------------------------------------
  int failed_rounds = 0;      ///< Negotiations that failed and were requeued.
  int recovered_rounds = 0;   ///< Previously-failed negotiations that later
                              ///< completed (post-restart recovery).
  int abandoned_links = 0;    ///< Links never negotiated (permanent crash /
                              ///< round cap).
  uint64_t messages_dropped = 0;  ///< In-flight losses across all nodes.
  int crashes = 0;                ///< Node crashes observed during the run.
};

/// \brief Runs the distributed Follow-the-Sun program to a fixpoint.
///
/// Each round (paper's 5 s periodic timer) pairs up idle adjacent nodes
/// (larger id initiates, per the paper's footnote 1); the initiator runs the
/// local COP and the r2/r3 rules propagate decisions and update allocations.
/// Failed negotiations (crashed endpoint, solver error) are retried in later
/// rounds; a restarted node rejoins via the System's anti-entropy replay
/// plus an inventory refresh.
class FollowTheSunScenario {
 public:
  explicit FollowTheSunScenario(const FtsConfig& config);

  /// Execute all link negotiations; returns the cost/traffic measurements.
  Result<FtsResult> Run();

  /// The system of the last Run() (for post-run state inspection in tests).
  runtime::System* system() { return sys_.get(); }

 private:
  double GlobalCost() const;

  FtsConfig config_;
  colog::CompiledProgram prog_;
  std::unique_ptr<runtime::System> sys_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  // Cost model mirrors (also inserted as facts).
  std::vector<std::vector<int64_t>> cur_vm_;     // [node][demand]
  std::vector<std::vector<int64_t>> comm_cost_;  // [node][demand]
  std::map<std::pair<NodeId, NodeId>, int64_t> mig_cost_;
  double accumulated_mig_cost_ = 0;
  int total_moved_ = 0;
};

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_FOLLOWSUN_H_

// Follow-the-Sun scenario driver (paper Sections 4.3 and 6.3): distributed
// per-link VM-migration negotiation across geo-distributed data centers over
// the simulated network.
#ifndef COLOGNE_APPS_FOLLOWSUN_H_
#define COLOGNE_APPS_FOLLOWSUN_H_

#include <memory>
#include <vector>

#include "colog/planner.h"
#include "common/rng.h"
#include "common/status.h"
#include "runtime/system.h"

namespace cologne::apps {

/// Experimental knobs, defaulting to the paper's Section 6.3 workload:
/// degree-3 random topology, capacity 60, demands 0-10, communication cost
/// 50-100, migration cost 10-20, operating cost 10, 5 s negotiation timer.
struct FtsConfig {
  int num_dcs = 6;
  int avg_degree = 3;
  int capacity = 60;
  int demand_lo = 0;
  int demand_hi = 10;
  int comm_lo = 50;
  int comm_hi = 100;
  int mig_lo = 10;
  int mig_hi = 20;
  int op_cost = 10;
  double round_period_s = 5.0;
  double solver_time_ms = 500;
  bool migration_limit = false;  ///< Adds d11/c3 (<= max_migrates per link).
  int max_migrates = 20;
  uint64_t seed = 11;
};

/// One point of the Figure 4 series.
struct FtsSample {
  double t_s = 0;
  double total_cost = 0;      ///< Global comm+op+migration cost.
  double normalized = 0;      ///< Relative to the pre-optimization cost (%).
};

/// Full outcome of one distributed execution.
struct FtsResult {
  std::vector<FtsSample> series;     ///< Cost after each negotiation round.
  double initial_cost = 0;
  double final_cost = 0;
  double reduction_pct = 0;          ///< (initial-final)/initial * 100.
  double converge_time_s = 0;
  double avg_per_node_kBps = 0;      ///< Figure 5 measurement.
  int total_vms_migrated = 0;        ///< Sum of |R| across links.
  double avg_link_solve_ms = 0;      ///< Section 6.3: per-link COP time.
  int rounds = 0;
};

/// \brief Runs the distributed Follow-the-Sun program to a fixpoint.
///
/// Each round (paper's 5 s periodic timer) pairs up idle adjacent nodes
/// (larger id initiates, per the paper's footnote 1); the initiator runs the
/// local COP and the r2/r3 rules propagate decisions and update allocations.
class FollowTheSunScenario {
 public:
  explicit FollowTheSunScenario(const FtsConfig& config);

  /// Execute all link negotiations; returns the cost/traffic measurements.
  Result<FtsResult> Run();

 private:
  double GlobalCost() const;

  FtsConfig config_;
  colog::CompiledProgram prog_;
  std::unique_ptr<runtime::System> sys_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  // Cost model mirrors (also inserted as facts).
  std::vector<std::vector<int64_t>> cur_vm_;     // [node][demand]
  std::vector<std::vector<int64_t>> comm_cost_;  // [node][demand]
  std::map<std::pair<NodeId, NodeId>, int64_t> mig_cost_;
  double accumulated_mig_cost_ = 0;
  int total_moved_ = 0;
};

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_FOLLOWSUN_H_

// Wireless channel-selection scenario (paper Sections 3.2, 6.4, Appendix A):
// a 30-node grid testbed substitute with a conflict-graph throughput model,
// five channel-assignment protocols, and policy variations for Figure 7.
#ifndef COLOGNE_APPS_WIRELESS_H_
#define COLOGNE_APPS_WIRELESS_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "apps/common_config.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/fault_plan.h"
#include "runtime/system.h"
#include "runtime/trace_replay.h"

namespace cologne::apps {

/// Channel-assignment protocols of Figure 6.
enum class WirelessProtocol {
  k1Interface,   ///< One interface: every link on channel 1.
  kIdenticalCh,  ///< Identical channel set on every node; greedy link pick.
  kCentralized,  ///< Appendix A.2 Colog program, single solver node.
  kDistributed,  ///< Appendix A.3 per-link negotiation.
  kCrossLayer,   ///< Distributed channels + interference-aware routing.
};

const char* WirelessProtocolName(WirelessProtocol p);

/// Scenario shape; defaults mirror the ORBIT deployment (30 nodes, 8 m x 5 m
/// grid, two 802.11 interfaces per node). The transport/observability/solver
/// knobs shared by every driver live in the CommonConfig base (distributed
/// protocols only — the centralized COP runs a single standalone instance).
struct WirelessConfig : CommonConfig {
  WirelessConfig() { seed = 3; }

  int grid_w = 6;
  int grid_h = 5;
  int num_channels = 8;
  int f_mindiff = 2;
  int interfaces = 2;
  int interference_hops = 2;    ///< 2-hop (default) or 1-hop model.
  double restrict_frac = 0.0;   ///< Fraction of channels blocked per node
                                ///< (primary users), Figure 7's policy.
  int num_flows = 15;
  double link_capacity_mbps = 18.0;  ///< Nominal per-link rate.
  double round_period_s = 5.0;
  double solver_time_ms = 4000;      ///< Centralized COP budget.
  double link_solve_ms = 200;        ///< Per-link COP budget (distributed).
  /// Injected faults for the distributed protocols (empty = happy path).
  net::FaultPlan fault_plan;
  /// Record deliveries/drops/faults/solves of distributed runs (optional).
  runtime::TraceRecorder* trace = nullptr;
  /// Negotiation-round cap for distributed runs; 0 = auto (3x links + 8).
  int max_rounds = 0;
};

/// An undirected link (a < b).
using Link = std::pair<int, int>;

/// Result of running a channel-assignment protocol.
struct ChannelAssignment {
  std::map<Link, int> channel;   ///< Per undirected link.
  double converge_time_s = 0;
  double per_node_kBps = 0;      ///< Distributed protocols only.
  double total_solve_ms = 0;
  double interference_cost = 0;  ///< Conflicting adjacent link pairs.
  int solves = 0;                ///< invokeSolver executions (distributed).
  int max_batch = 0;             ///< Largest link batch in one solve.
  // --- Churn accounting (distributed protocols under a fault plan) ----------
  int failed_rounds = 0;         ///< Negotiations that failed and requeued.
  int recovered_rounds = 0;      ///< Failed negotiations that later completed.
  int abandoned_links = 0;       ///< Links never assigned a channel.
  uint64_t messages_dropped = 0; ///< In-flight losses across all nodes.
  int crashes = 0;               ///< Node crashes observed during the run.
};

/// \brief The wireless testbed model: topology, interference, throughput.
class WirelessScenario {
 public:
  explicit WirelessScenario(const WirelessConfig& config);

  int num_nodes() const { return config_.grid_w * config_.grid_h; }
  const std::vector<Link>& links() const { return links_; }
  const std::set<int>& primary_channels(int node) const {
    return primary_[static_cast<size_t>(node)];
  }

  /// Assign channels with the given protocol.
  Result<ChannelAssignment> AssignChannels(WirelessProtocol protocol);

  /// Aggregate network throughput (Mbps) when every flow offers `rate_mbps`,
  /// under the given assignment. `interference_aware_routing` enables the
  /// cross-layer route selection.
  double AggregateThroughput(const ChannelAssignment& assignment,
                             double rate_mbps,
                             bool interference_aware_routing) const;

  /// Number of interfering link pairs under the assignment (the COP
  /// objective, for validation).
  double InterferenceCost(const std::map<Link, int>& channel) const;

 private:
  bool Interferes(const Link& a, const Link& b) const;
  std::vector<int> RoutePath(int src, int dst,
                             const std::map<Link, int>& channel,
                             bool interference_aware) const;
  Result<ChannelAssignment> RunCentralized();
  Result<ChannelAssignment> RunDistributed();
  ChannelAssignment RunIdentical();

  WirelessConfig config_;
  Rng rng_;
  std::vector<Link> links_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<std::set<int>> primary_;           // blocked channels per node
  std::vector<std::pair<int, int>> flows_;
};

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_WIRELESS_H_

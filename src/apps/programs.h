// The Colog programs for the paper's case studies (Sections 4.2, 4.3,
// Appendix A), plus the variants used in the evaluation:
//   * ACloud (centralized), with optional migration limit (ACloud (M))
//   * Follow-the-Sun, centralized and distributed, with optional
//     migration-limit policy
//   * Wireless channel selection, centralized and distributed, with one-hop
//     or two-hop interference cost models
//
// All programs parse, analyze and plan through the Colog toolchain; the texts
// below follow the paper's listings with this implementation's documented
// extensions (param/table declarations, `domain` clauses) plus explicit
// non-negativity constraints on allocations that the paper's formulation
// leaves implicit.
#ifndef COLOGNE_APPS_PROGRAMS_H_
#define COLOGNE_APPS_PROGRAMS_H_

#include <string>

namespace cologne::apps {

/// ACloud load balancing (paper Section 4.2). `migration_limit` appends
/// rules d5/d6/c3 (the ACloud (M) policy); `max_migrates` bounds migrations
/// per COP execution in that variant.
std::string ACloudProgram(bool migration_limit, int max_migrates = 3);

/// Distributed Follow-the-Sun (paper Section 4.3): per-link negotiation,
/// symmetric propagation (r2) and allocation update (r3).
/// `migration_limit` appends d11/c3; `cap` is the per-site VM capacity that
/// bounds the migVm domain. `batched` switches the next-allocation rule d1
/// to subtract the *summed* outflow over all active links (d0 outMig), so a
/// node can negotiate several incident links in one batched solve; with a
/// single active link the two forms are semantically identical.
std::string FollowTheSunDistributedProgram(bool migration_limit,
                                           int cap = 60,
                                           int max_migrates = 20,
                                           bool batched = false);

/// Centralized Follow-the-Sun: one global COP over all links (the paper's
/// 16-rule centralized variant referenced in Table 2).
std::string FollowTheSunCentralizedProgram(int cap = 60);

/// Centralized wireless channel selection (Appendix A.2). `two_hop` adds the
/// two-hop interference cost rule alongside the one-hop rule.
std::string WirelessCentralizedProgram(bool two_hop, int num_channels = 8,
                                       int f_mindiff = 2);

/// Distributed wireless channel selection (Appendix A.3): per-link greedy
/// negotiation over the two-hop interference model. `batched` adds an
/// intra-batch interference rule (d1b) over pairs of links under
/// simultaneous negotiation at one node, so a batched multi-link solve
/// penalizes conflicts between its own decisions; with a single active link
/// d1b derives nothing.
std::string WirelessDistributedProgram(int num_channels = 8,
                                       int f_mindiff = 2,
                                       bool two_hop = true,
                                       bool batched = false);

}  // namespace cologne::apps

#endif  // COLOGNE_APPS_PROGRAMS_H_

// Aggregate functions supported in Colog rule heads (paper Section 4.1:
// "Aggregate constructs (e.g. SUM, MIN, MAX) are represented as functions with
// attributes within angle brackets", plus SUMABS, STDEV and UNIQUE used by the
// case-study programs).
#ifndef COLOGNE_DATALOG_AGGREGATES_H_
#define COLOGNE_DATALOG_AGGREGATES_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace cologne::datalog {

/// Aggregate kinds; kNone marks a non-aggregate head.
enum class AggKind : uint8_t {
  kNone = 0,
  kSum,
  kCount,
  kMin,
  kMax,
  kAvg,
  kStdev,   ///< Population standard deviation (ACloud optimization goal).
  kSumAbs,  ///< Sum of absolute values (Follow-the-Sun migration cost, d7).
  kUnique,  ///< Number of distinct values (wireless interface constraint, d3).
};

/// Parse "SUM", "COUNT", ... (case-sensitive, as in the paper's programs).
/// Returns std::nullopt if `name` is not an aggregate keyword.
std::optional<AggKind> AggKindFromName(const std::string& name);

/// Keyword for an aggregate kind ("SUM", ...).
const char* AggKindName(AggKind kind);

/// Compute an aggregate over a concrete multiset (value -> multiplicity).
/// Empty input: SUM/COUNT/SUMABS/UNIQUE yield Int(0); MIN/MAX/AVG/STDEV yield
/// Null (no meaningful value).
Value ComputeAggregate(AggKind kind, const std::map<Value, int64_t>& multiset);

/// Convenience overload over a plain vector.
Value ComputeAggregate(AggKind kind, const std::vector<Value>& values);

}  // namespace cologne::datalog

#endif  // COLOGNE_DATALOG_AGGREGATES_H_

#include "datalog/table.h"

#include <algorithm>

namespace cologne::datalog {

const std::vector<Row> Table::kEmpty;

namespace {
// splitmix64 finalizer: XOR-combining raw row hashes would let near-identical
// rows cancel; mixing first makes the combined hash behave like a random
// function of the row set.
uint64_t MixRowHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

Row Table::KeyOf(const Row& row) const {
  Row key;
  key.reserve(schema_.key_cols.size());
  for (int c : schema_.key_cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

void Table::IndexAdd(const Row& row) {
  if (visible_.insert({row, true}).second) {
    content_hash_ ^= MixRowHash(HashRow(row));
  }
  scan_dirty_ = true;
  if (schema_.keyed()) by_key_[KeyOf(row)] = row;
  for (auto& [cols, index] : indexes_) {
    Row proj;
    proj.reserve(cols.size());
    for (int c : cols) proj.push_back(row[static_cast<size_t>(c)]);
    index[proj].push_back(row);
  }
}

void Table::IndexRemove(const Row& row) {
  if (visible_.erase(row) > 0) content_hash_ ^= MixRowHash(HashRow(row));
  scan_dirty_ = true;
  if (schema_.keyed()) {
    auto it = by_key_.find(KeyOf(row));
    if (it != by_key_.end() && it->second == row) by_key_.erase(it);
  }
  for (auto& [cols, index] : indexes_) {
    Row proj;
    proj.reserve(cols.size());
    for (int c : cols) proj.push_back(row[static_cast<size_t>(c)]);
    auto it = index.find(proj);
    if (it == index.end()) continue;
    auto& rows = it->second;
    rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
    if (rows.empty()) index.erase(it);
  }
}

int Table::Apply(const Row& row, int sign) {
  int64_t& count = counts_[row];
  int64_t before = count;
  count += sign;
  // Negative counts persist: with asynchronous distribution a deletion delta
  // can overtake the insertion it cancels, and the counts must still balance.
  if (count == 0) counts_.erase(row);
  if (before <= 0 && before + sign > 0) {
    IndexAdd(row);
    return +1;
  }
  if (before > 0 && before + sign <= 0) {
    IndexRemove(row);
    return -1;
  }
  return 0;
}

int64_t Table::CountOf(const Row& row) const {
  auto it = counts_.find(row);
  return it == counts_.end() ? 0 : it->second;
}

const Row* Table::DisplacedBy(const Row& row) const {
  if (!schema_.keyed()) return nullptr;
  auto it = by_key_.find(KeyOf(row));
  if (it == by_key_.end() || it->second == row) return nullptr;
  return &it->second;
}

bool Table::EraseAll(const Row& row) {
  auto it = counts_.find(row);
  if (it == counts_.end()) return false;
  // A negative-count row is tracked but was never visible: erasing it must
  // report false per the header contract (and IndexRemove is a no-op for
  // rows that never reached the indexes).
  const bool was_visible = it->second > 0;
  counts_.erase(it);
  IndexRemove(row);
  return was_visible;
}

bool Table::Contains(const Row& row) const { return visible_.count(row) > 0; }

std::vector<Row> Table::Rows() const {
  std::vector<Row> out;
  out.reserve(visible_.size());
  for (const auto& [row, _] : visible_) out.push_back(row);
  return out;
}

const std::vector<Row>& Table::Probe(const std::vector<int>& cols,
                                     const Row& key) {
  if (cols.empty()) {
    if (scan_dirty_) {
      scan_buffer_ = Rows();
      scan_dirty_ = false;
    }
    return scan_buffer_;
  }
  auto it = indexes_.find(cols);
  if (it == indexes_.end()) {
    // Build the index over current visible rows.
    auto& index = indexes_[cols];
    for (const auto& [row, _] : visible_) {
      Row proj;
      proj.reserve(cols.size());
      for (int c : cols) proj.push_back(row[static_cast<size_t>(c)]);
      index[proj].push_back(row);
    }
    it = indexes_.find(cols);
  }
  auto bucket = it->second.find(key);
  if (bucket == it->second.end()) return kEmpty;
  return bucket->second;
}

const Row* Table::FindByKey(const Row& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &it->second;
}

}  // namespace cologne::datalog

#include "datalog/aggregates.h"

#include <cmath>

namespace cologne::datalog {

std::optional<AggKind> AggKindFromName(const std::string& name) {
  if (name == "SUM") return AggKind::kSum;
  if (name == "COUNT") return AggKind::kCount;
  if (name == "MIN") return AggKind::kMin;
  if (name == "MAX") return AggKind::kMax;
  if (name == "AVG") return AggKind::kAvg;
  if (name == "STDEV") return AggKind::kStdev;
  if (name == "SUMABS") return AggKind::kSumAbs;
  if (name == "UNIQUE") return AggKind::kUnique;
  return std::nullopt;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kNone: return "NONE";
    case AggKind::kSum: return "SUM";
    case AggKind::kCount: return "COUNT";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kAvg: return "AVG";
    case AggKind::kStdev: return "STDEV";
    case AggKind::kSumAbs: return "SUMABS";
    case AggKind::kUnique: return "UNIQUE";
  }
  return "?";
}

Value ComputeAggregate(AggKind kind,
                       const std::map<Value, int64_t>& multiset) {
  int64_t count = 0;
  bool any_double = false;
  for (const auto& [v, n] : multiset) {
    count += n;
    if (v.is_double()) any_double = true;
  }

  switch (kind) {
    case AggKind::kCount:
      return Value::Int(count);
    case AggKind::kUnique:
      return Value::Int(static_cast<int64_t>(multiset.size()));
    case AggKind::kMin:
      if (multiset.empty()) return Value::Null();
      return multiset.begin()->first;
    case AggKind::kMax:
      if (multiset.empty()) return Value::Null();
      return multiset.rbegin()->first;
    case AggKind::kSum:
    case AggKind::kSumAbs: {
      if (any_double) {
        double s = 0;
        for (const auto& [v, n] : multiset) {
          double x = v.as_double();
          s += (kind == AggKind::kSumAbs ? std::fabs(x) : x) *
               static_cast<double>(n);
        }
        return Value::Double(s);
      }
      int64_t s = 0;
      for (const auto& [v, n] : multiset) {
        int64_t x = v.is_int() ? v.as_int() : 0;
        s += (kind == AggKind::kSumAbs ? std::abs(x) : x) * n;
      }
      return Value::Int(s);
    }
    case AggKind::kAvg: {
      if (count == 0) return Value::Null();
      double s = 0;
      for (const auto& [v, n] : multiset) {
        s += v.as_double() * static_cast<double>(n);
      }
      return Value::Double(s / static_cast<double>(count));
    }
    case AggKind::kStdev: {
      if (count == 0) return Value::Null();
      double s = 0, s2 = 0;
      for (const auto& [v, n] : multiset) {
        double x = v.as_double();
        s += x * static_cast<double>(n);
        s2 += x * x * static_cast<double>(n);
      }
      double mean = s / static_cast<double>(count);
      double var = s2 / static_cast<double>(count) - mean * mean;
      return Value::Double(std::sqrt(std::max(var, 0.0)));
    }
    case AggKind::kNone:
      break;
  }
  return Value::Null();
}

Value ComputeAggregate(AggKind kind, const std::vector<Value>& values) {
  std::map<Value, int64_t> ms;
  for (const Value& v : values) ++ms[v];
  return ComputeAggregate(kind, ms);
}

}  // namespace cologne::datalog

// Slot-based expression IR shared by the Datalog engine (concrete evaluation)
// and the solver bridge (symbolic evaluation over constraint-network values).
//
// The Colog planner resolves source-level variable names to dense *slots* in
// a per-rule binding array; expressions then reference slots only.
#ifndef COLOGNE_DATALOG_EXPR_H_
#define COLOGNE_DATALOG_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace cologne::datalog {

/// Expression node operator.
enum class ExprOp : uint8_t {
  kConst,  ///< Literal value.
  kSlot,   ///< Reference to a rule binding slot.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,  ///< Unary minus.
  kAbs,  ///< |x| (the paper's wireless programs use |C1-C2|).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// True for ==, !=, <, <=, >, >=.
bool IsComparison(ExprOp op);
/// True for and/or/not.
bool IsLogical(ExprOp op);

/// \brief Expression tree over constants and binding slots.
struct Expr {
  ExprOp op = ExprOp::kConst;
  Value const_val;          ///< kConst payload.
  int slot = -1;            ///< kSlot payload.
  std::vector<Expr> kids;   ///< Operands for compound nodes.

  static Expr Const(Value v) {
    Expr e;
    e.op = ExprOp::kConst;
    e.const_val = std::move(v);
    return e;
  }
  static Expr Slot(int s) {
    Expr e;
    e.op = ExprOp::kSlot;
    e.slot = s;
    return e;
  }
  static Expr Unary(ExprOp op, Expr a) {
    Expr e;
    e.op = op;
    e.kids.push_back(std::move(a));
    return e;
  }
  static Expr Binary(ExprOp op, Expr a, Expr b) {
    Expr e;
    e.op = op;
    e.kids.push_back(std::move(a));
    e.kids.push_back(std::move(b));
    return e;
  }

  /// Collect all referenced slots into `out` (with duplicates).
  void CollectSlots(std::vector<int>* out) const;

  std::string ToString() const;
};

/// Evaluate over concrete values. Returns an error if a referenced slot holds
/// a symbolic (kSym) value or is unbound (null), or on type mismatch /
/// division by zero. Integer arithmetic stays integral; mixing with doubles
/// promotes to double; comparisons yield Int(0/1).
Result<Value> EvalExpr(const Expr& e, const std::vector<Value>& slots);

/// Truthiness of a concrete value (nonzero numeric).
bool ValueIsTrue(const Value& v);

}  // namespace cologne::datalog

#endif  // COLOGNE_DATALOG_EXPR_H_

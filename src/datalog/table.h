// Materialized tables with counting-based incremental view maintenance
// support, lazy hash indexes, and NDlog-style primary-key replacement.
#ifndef COLOGNE_DATALOG_TABLE_H_
#define COLOGNE_DATALOG_TABLE_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace cologne::datalog {

/// \brief Table metadata.
///
/// `key_cols` empty means all columns form the key (pure set semantics).
/// A non-trivial key gives NDlog's materialized-table semantics: inserting a
/// row whose key matches an existing row *replaces* it (the paper's
/// Follow-the-Sun rule r3 updates curVm this way).
struct TableSchema {
  std::string name;
  std::vector<std::string> attrs;  ///< Attribute names (display only).
  std::vector<int> key_cols;       ///< Primary key positions; empty = all.
  int loc_col = -1;                ///< Location-specifier column or -1.

  size_t arity() const { return attrs.size(); }
  bool keyed() const {
    return !key_cols.empty() && key_cols.size() < attrs.size();
  }
};

/// \brief A multiset of rows with visible-set semantics.
///
/// Rows carry derivation counts (counting IVM): a row is *visible* while its
/// count is positive; dependent rules fire only on visibility transitions.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  /// Apply a derivation-count delta (`sign` = +1 or -1). Returns the
  /// visibility change: +1 row appeared, -1 row disappeared, 0 none.
  ///
  /// This is a *raw* count update: primary-key replacement is orchestrated by
  /// the engine (via DisplacedBy + EraseAll) so that deletion deltas can fire
  /// dependent rules against the pre-removal state, which keeps counting IVM
  /// balanced for self-joins.
  int Apply(const Row& row, int sign);

  /// Current derivation count of `row` (0 if absent).
  int64_t CountOf(const Row& row) const;

  /// For keyed tables: the visible row that shares `row`'s primary key but
  /// differs from it, if any (the row an insert of `row` would displace).
  const Row* DisplacedBy(const Row& row) const;

  /// Remove `row` entirely (all derivation counts). Returns true if the row
  /// was visible.
  bool EraseAll(const Row& row);

  /// True if `row` is currently visible.
  bool Contains(const Row& row) const;

  /// Number of visible rows.
  size_t size() const { return visible_.size(); }

  /// Order-independent hash of the visible row set, maintained in O(1) per
  /// visibility transition: equal hashes mean equal content regardless of
  /// the operation history that produced it (journal replay, network deltas,
  /// primary-key replacement all converge). The solver bridge compares these
  /// across solves to prove its inputs unchanged and reuse the previous
  /// model wholesale (SOLVER_INCREMENTAL).
  uint64_t ContentHash() const { return content_hash_; }

  /// Snapshot of visible rows (sorted for deterministic iteration).
  std::vector<Row> Rows() const;

  /// Rows whose values at `cols` equal `key` (in the same order). With empty
  /// `cols` this returns all visible rows. Builds a hash index per distinct
  /// column set on first use. The returned reference is invalidated by the
  /// next mutation (Apply() or EraseAll()): copy the rows out before
  /// mutating (see datalog_table_test's ProbeReferenceInvalidatedByNextApply
  /// for the supported pattern).
  const std::vector<Row>& Probe(const std::vector<int>& cols, const Row& key);

  /// Visible row with the given primary-key values, if any (keyed tables).
  const Row* FindByKey(const Row& key) const;

 private:
  struct RowHasher {
    size_t operator()(const Row& r) const {
      return static_cast<size_t>(HashRow(r));
    }
  };

  Row KeyOf(const Row& row) const;
  void IndexAdd(const Row& row);
  void IndexRemove(const Row& row);

  TableSchema schema_;
  uint64_t content_hash_ = 0;  // XOR of mixed per-row hashes (visible set)
  std::unordered_map<Row, int64_t, RowHasher> counts_;  // derivation counts
  // Visible rows in deterministic order.
  std::map<Row, bool> visible_;
  // Keyed tables: key values -> the visible row.
  std::map<Row, Row> by_key_;
  // Lazy secondary indexes: column set -> (projected key -> rows).
  std::map<std::vector<int>,
           std::unordered_map<Row, std::vector<Row>, RowHasher>>
      indexes_;
  std::vector<Row> scan_buffer_;  // backing for Probe({}, ...)
  bool scan_dirty_ = true;
  static const std::vector<Row> kEmpty;
};

}  // namespace cologne::datalog

#endif  // COLOGNE_DATALOG_TABLE_H_

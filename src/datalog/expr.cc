#include "datalog/expr.h"

#include <cmath>

#include "common/strings.h"

namespace cologne::datalog {

bool IsComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(ExprOp op) {
  return op == ExprOp::kAnd || op == ExprOp::kOr || op == ExprOp::kNot;
}

void Expr::CollectSlots(std::vector<int>* out) const {
  if (op == ExprOp::kSlot) out->push_back(slot);
  for (const Expr& k : kids) k.CollectSlots(out);
}

namespace {
const char* OpName(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kSlot: return "slot";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kNeg: return "neg";
    case ExprOp::kAbs: return "abs";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    case ExprOp::kNot: return "!";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (op) {
    case ExprOp::kConst: return const_val.ToString();
    case ExprOp::kSlot: return "s" + std::to_string(slot);
    case ExprOp::kNeg: return "-(" + kids[0].ToString() + ")";
    case ExprOp::kAbs: return "|" + kids[0].ToString() + "|";
    case ExprOp::kNot: return "!(" + kids[0].ToString() + ")";
    default:
      return "(" + kids[0].ToString() + " " + OpName(op) + " " +
             kids[1].ToString() + ")";
  }
}

bool ValueIsTrue(const Value& v) {
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_double()) return v.as_double() != 0.0;
  return false;
}

namespace {

bool BothInt(const Value& a, const Value& b) {
  return a.is_int() && b.is_int();
}

Result<Value> Compare(ExprOp op, const Value& a, const Value& b) {
  // Numeric comparison coerces; otherwise compare only like types.
  bool result;
  if (a.is_numeric() && b.is_numeric()) {
    if (BothInt(a, b)) {
      int64_t x = a.as_int(), y = b.as_int();
      switch (op) {
        case ExprOp::kEq: result = x == y; break;
        case ExprOp::kNe: result = x != y; break;
        case ExprOp::kLt: result = x < y; break;
        case ExprOp::kLe: result = x <= y; break;
        case ExprOp::kGt: result = x > y; break;
        default: result = x >= y; break;
      }
    } else {
      double x = a.as_double(), y = b.as_double();
      switch (op) {
        case ExprOp::kEq: result = x == y; break;
        case ExprOp::kNe: result = x != y; break;
        case ExprOp::kLt: result = x < y; break;
        case ExprOp::kLe: result = x <= y; break;
        case ExprOp::kGt: result = x > y; break;
        default: result = x >= y; break;
      }
    }
  } else if (a.type() == b.type()) {
    switch (op) {
      case ExprOp::kEq: result = a == b; break;
      case ExprOp::kNe: result = !(a == b); break;
      case ExprOp::kLt: result = a < b; break;
      case ExprOp::kLe: result = a < b || a == b; break;
      case ExprOp::kGt: result = b < a; break;
      default: result = b < a || a == b; break;
    }
  } else {
    // Cross-type: only (in)equality is meaningful.
    if (op == ExprOp::kEq) {
      result = false;
    } else if (op == ExprOp::kNe) {
      result = true;
    } else {
      return Status::RuntimeError("ordering comparison across types: " +
                                  a.ToString() + " vs " + b.ToString());
    }
  }
  return Value::Int(result ? 1 : 0);
}

Result<Value> Arith(ExprOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::RuntimeError("arithmetic on non-numeric values: " +
                                a.ToString() + " " + b.ToString());
  }
  if (BothInt(a, b)) {
    int64_t x = a.as_int(), y = b.as_int();
    switch (op) {
      case ExprOp::kAdd: return Value::Int(x + y);
      case ExprOp::kSub: return Value::Int(x - y);
      case ExprOp::kMul: return Value::Int(x * y);
      case ExprOp::kDiv:
        if (y == 0) return Status::RuntimeError("integer division by zero");
        return Value::Int(x / y);
      case ExprOp::kMod:
        if (y == 0) return Status::RuntimeError("modulo by zero");
        return Value::Int(x % y);
      default: break;
    }
  }
  double x = a.as_double(), y = b.as_double();
  switch (op) {
    case ExprOp::kAdd: return Value::Double(x + y);
    case ExprOp::kSub: return Value::Double(x - y);
    case ExprOp::kMul: return Value::Double(x * y);
    case ExprOp::kDiv:
      if (y == 0) return Status::RuntimeError("division by zero");
      return Value::Double(x / y);
    case ExprOp::kMod:
      return Status::RuntimeError("modulo on doubles");
    default: break;
  }
  return Status::RuntimeError("bad arithmetic op");
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const std::vector<Value>& slots) {
  switch (e.op) {
    case ExprOp::kConst:
      return e.const_val;
    case ExprOp::kSlot: {
      if (e.slot < 0 || static_cast<size_t>(e.slot) >= slots.size()) {
        return Status::RuntimeError("slot out of range");
      }
      const Value& v = slots[static_cast<size_t>(e.slot)];
      if (v.is_null()) {
        return Status::RuntimeError("unbound slot s" + std::to_string(e.slot));
      }
      if (v.is_sym()) {
        return Status::RuntimeError(
            "symbolic value reached the concrete evaluator (slot s" +
            std::to_string(e.slot) + ")");
      }
      return v;
    }
    case ExprOp::kNeg: {
      COLOGNE_ASSIGN_OR_RETURN(v, EvalExpr(e.kids[0], slots));
      if (v.is_int()) return Value::Int(-v.as_int());
      if (v.is_double()) return Value::Double(-v.as_double());
      return Status::RuntimeError("negating non-numeric value");
    }
    case ExprOp::kAbs: {
      COLOGNE_ASSIGN_OR_RETURN(v, EvalExpr(e.kids[0], slots));
      if (v.is_int()) return Value::Int(std::abs(v.as_int()));
      if (v.is_double()) return Value::Double(std::fabs(v.as_double()));
      return Status::RuntimeError("abs of non-numeric value");
    }
    case ExprOp::kNot: {
      COLOGNE_ASSIGN_OR_RETURN(v, EvalExpr(e.kids[0], slots));
      return Value::Int(ValueIsTrue(v) ? 0 : 1);
    }
    case ExprOp::kAnd: {
      COLOGNE_ASSIGN_OR_RETURN(a, EvalExpr(e.kids[0], slots));
      if (!ValueIsTrue(a)) return Value::Int(0);
      COLOGNE_ASSIGN_OR_RETURN(b, EvalExpr(e.kids[1], slots));
      return Value::Int(ValueIsTrue(b) ? 1 : 0);
    }
    case ExprOp::kOr: {
      COLOGNE_ASSIGN_OR_RETURN(a, EvalExpr(e.kids[0], slots));
      if (ValueIsTrue(a)) return Value::Int(1);
      COLOGNE_ASSIGN_OR_RETURN(b, EvalExpr(e.kids[1], slots));
      return Value::Int(ValueIsTrue(b) ? 1 : 0);
    }
    default: {
      COLOGNE_ASSIGN_OR_RETURN(a, EvalExpr(e.kids[0], slots));
      COLOGNE_ASSIGN_OR_RETURN(b, EvalExpr(e.kids[1], slots));
      if (IsComparison(e.op)) return Compare(e.op, a, b);
      return Arith(e.op, a, b);
    }
  }
}

}  // namespace cologne::datalog

#include "datalog/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace cologne::datalog {

Status Engine::DeclareTable(const TableSchema& schema) {
  if (tables_.count(schema.name)) {
    return Status::AlreadyExists("table already declared: " + schema.name);
  }
  tables_[schema.name] = std::make_unique<Table>(schema);
  return Status::OK();
}

bool Engine::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Table* Engine::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Engine::AddRule(RuleIR rule) {
  if (!HasTable(rule.head.table)) {
    return Status::PlanError("rule " + rule.label + ": undeclared head table " +
                             rule.head.table);
  }
  for (const AtomIR& a : rule.body) {
    if (!HasTable(a.table)) {
      return Status::PlanError("rule " + rule.label +
                               ": undeclared body table " + a.table);
    }
  }
  if (rule.trigger.size() != rule.body.size()) {
    return Status::PlanError("rule " + rule.label +
                             ": trigger flags do not match body atoms");
  }
  size_t rule_idx = rules_.size();

  // Precompute guard dependency info (selections + assignments).
  std::vector<GuardInfo> guards;
  for (size_t i = 0; i < rule.sels.size(); ++i) {
    GuardInfo g;
    g.is_assign = false;
    g.index = i;
    rule.sels[i].expr.CollectSlots(&g.deps);
    guards.push_back(std::move(g));
  }
  for (size_t i = 0; i < rule.assigns.size(); ++i) {
    GuardInfo g;
    g.is_assign = true;
    g.index = i;
    rule.assigns[i].expr.CollectSlots(&g.deps);
    guards.push_back(std::move(g));
  }

  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.trigger[i]) {
      triggers_[rule.body[i].table].push_back({rule_idx, i});
    }
  }
  agg_states_.push_back(rule.agg ? std::make_unique<AggState>() : nullptr);
  guards_.push_back(std::move(guards));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status Engine::Apply(const std::string& table, const Row& row, int sign) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  if (row.size() != t->schema().arity()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch on %s: row has %zu values, table expects %zu",
                  table.c_str(), row.size(), t->schema().arity()));
  }
  Route(table, row, sign);
  return Status::OK();
}

Status Engine::InsertFact(const std::string& table, const Row& row) {
  COLOGNE_RETURN_IF_ERROR(Apply(table, row, +1));
  return Flush();
}

Status Engine::DeleteFact(const std::string& table, const Row& row) {
  COLOGNE_RETURN_IF_ERROR(Apply(table, row, -1));
  return Flush();
}

void Engine::Route(const std::string& table, Row row, int sign) {
  const Table* t = GetTable(table);
  int loc = t->schema().loc_col;
  if (self_ != kCentralized && loc >= 0 &&
      static_cast<size_t>(loc) < row.size() && row[static_cast<size_t>(loc)].is_node()) {
    NodeId dest = row[static_cast<size_t>(loc)].as_node();
    if (dest != self_) {
      ++stats_.tuples_sent;
      if (sender_) {
        sender_(dest, table, row, sign);
      } else {
        COLOGNE_WARN("dropping remote tuple for node " + std::to_string(dest) +
                     " (no sender configured): " + table + RowToString(row));
      }
      return;
    }
  }
  queue_.push_back({table, std::move(row), sign});
}

Status Engine::Flush() {
  while (!queue_.empty()) {
    PendingDelta d = std::move(queue_.front());
    queue_.pop_front();
    ProcessOne(d);
  }
  Status err = first_error_;
  first_error_ = Status::OK();
  return err;
}

void Engine::ProcessOne(const PendingDelta& d) {
  Table* t = GetTable(d.table);
  if (d.sign > 0) {
    // NDlog replacement: displace any visible row sharing the primary key.
    if (const Row* disp = t->DisplacedBy(d.row)) {
      Row old = *disp;  // copy: EraseAll invalidates the pointer
      ++stats_.deltas_processed;
      // Fire deletions against the pre-removal state, then remove.
      FireTriggers(d.table, old, -1);
      t->EraseAll(old);
      auto wit = watchers_.find(d.table);
      if (wit != watchers_.end()) {
        for (const WatchFn& w : wit->second) w(old, -1);
      }
    }
    int vis = t->Apply(d.row, +1);
    if (vis != 0) {
      ++stats_.deltas_processed;
      auto wit = watchers_.find(d.table);
      if (wit != watchers_.end()) {
        for (const WatchFn& w : wit->second) w(d.row, +1);
      }
      FireTriggers(d.table, d.row, +1);
    }
  } else {
    // Deletion: fire rules while the row is still in the table so that
    // self-join derivation counts retract symmetrically, then remove.
    bool will_vanish = t->CountOf(d.row) == 1;
    if (will_vanish) {
      ++stats_.deltas_processed;
      FireTriggers(d.table, d.row, -1);
      t->Apply(d.row, -1);
      auto wit = watchers_.find(d.table);
      if (wit != watchers_.end()) {
        for (const WatchFn& w : wit->second) w(d.row, -1);
      }
    } else {
      t->Apply(d.row, -1);
    }
  }
}

void Engine::FireTriggers(const std::string& table, const Row& row, int sign) {
  auto it = triggers_.find(table);
  if (it == triggers_.end()) return;
  for (const TriggerRef& ref : it->second) {
    const RuleIR& rule = rules_[ref.rule_idx];
    if (sign < 0 && ref.atom_idx < rule.insert_only.size() &&
        rule.insert_only[ref.atom_idx]) {
      continue;
    }
    FireRule(ref.rule_idx, ref.atom_idx, row, sign);
  }
}

bool Engine::MatchAtom(const AtomIR& atom, const Row& row,
                       std::vector<Value>& slots,
                       std::vector<int>& newly_bound) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const TermIR& term = atom.args[i];
    const Value& v = row[i];
    if (term.is_const) {
      if (!(term.const_val == v)) return false;
    } else {
      Value& s = slots[static_cast<size_t>(term.slot)];
      if (s.is_null()) {
        s = v;
        newly_bound.push_back(term.slot);
      } else if (!(s == v)) {
        return false;
      }
    }
  }
  return true;
}

bool Engine::ApplyGuards(size_t rule_idx, std::vector<Value>& slots,
                         std::vector<char>& applied) {
  const RuleIR& rule = rules_[rule_idx];
  const auto& guards = guards_[rule_idx];
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t g = 0; g < guards.size(); ++g) {
      if (applied[g]) continue;
      const GuardInfo& info = guards[g];
      bool ready = true;
      for (int dep : info.deps) {
        if (slots[static_cast<size_t>(dep)].is_null()) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (info.is_assign) {
        const AssignIR& as = rule.assigns[info.index];
        Result<Value> r = EvalExpr(as.expr, slots);
        if (!r.ok()) {
          if (first_error_.ok()) first_error_ = r.status();
          return false;
        }
        Value& target = slots[static_cast<size_t>(as.slot)];
        if (target.is_null()) {
          target = std::move(r).value();
        } else if (!(target == r.value())) {
          return false;  // := re-binding must agree
        }
      } else {
        const SelIR& sel = rule.sels[info.index];
        Result<Value> r = EvalExpr(sel.expr, slots);
        if (!r.ok()) {
          if (first_error_.ok()) first_error_ = r.status();
          return false;
        }
        if (!ValueIsTrue(r.value())) return false;
      }
      applied[g] = 1;
      progress = true;
    }
  }
  return true;
}

void Engine::FireRule(size_t rule_idx, size_t atom_idx, const Row& row,
                      int sign) {
  const RuleIR& rule = rules_[rule_idx];
  ++stats_.rule_firings;

  std::vector<Value> slots(static_cast<size_t>(rule.num_slots));
  std::vector<int> bound;
  if (!MatchAtom(rule.body[atom_idx], row, slots, bound)) return;

  std::vector<char> applied(guards_[rule_idx].size(), 0);
  if (!ApplyGuards(rule_idx, slots, applied)) return;

  // Join the remaining atoms in body order.
  std::vector<size_t> order;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i != atom_idx) order.push_back(i);
  }
  JoinStep(rule_idx, order, 0, slots, applied, sign);
}

void Engine::JoinStep(size_t rule_idx, const std::vector<size_t>& order,
                      size_t depth, std::vector<Value>& slots,
                      std::vector<char>& applied, int sign) {
  const RuleIR& rule = rules_[rule_idx];
  if (depth == order.size()) {
    // All atoms matched; any remaining guards must have fired already for
    // head construction to be meaningful (unfired guards mean unbound slots,
    // which EmitHead reports).
    EmitHead(rule_idx, slots, sign);
    return;
  }
  const AtomIR& atom = rule.body[order[depth]];
  Table* t = GetTable(atom.table);

  // Determine bound columns for an indexed probe.
  std::vector<int> cols;
  Row key;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const TermIR& term = atom.args[i];
    if (term.is_const) {
      cols.push_back(static_cast<int>(i));
      key.push_back(term.const_val);
    } else if (!slots[static_cast<size_t>(term.slot)].is_null()) {
      cols.push_back(static_cast<int>(i));
      key.push_back(slots[static_cast<size_t>(term.slot)]);
    }
  }

  // Probe returns a reference into the index; copy because recursive calls
  // may add/rebuild indexes. At Cologne's scales this copy is cheap.
  std::vector<Row> candidates = t->Probe(cols, key);
  for (const Row& row : candidates) {
    std::vector<int> newly_bound;
    if (!MatchAtom(atom, row, slots, newly_bound)) {
      for (int s : newly_bound) slots[static_cast<size_t>(s)] = Value::Null();
      continue;
    }
    std::vector<char> applied_copy = applied;
    if (ApplyGuards(rule_idx, slots, applied_copy)) {
      JoinStep(rule_idx, order, depth + 1, slots, applied_copy, sign);
    }
    for (int s : newly_bound) slots[static_cast<size_t>(s)] = Value::Null();
  }
}

void Engine::EmitHead(size_t rule_idx, const std::vector<Value>& slots,
                      int sign) {
  const RuleIR& rule = rules_[rule_idx];

  // Build the head row (or the aggregate group key).
  Row head_row;
  head_row.reserve(rule.head.args.size());
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.agg && static_cast<int>(i) == rule.agg->arg_index) {
      head_row.push_back(Value::Null());  // placeholder, filled by aggregate
      continue;
    }
    const TermIR& term = rule.head.args[i];
    if (term.is_const) {
      head_row.push_back(term.const_val);
    } else {
      const Value& v = slots[static_cast<size_t>(term.slot)];
      if (v.is_null()) {
        if (first_error_.ok()) {
          first_error_ = Status::RuntimeError(
              "rule " + rule.label + ": unbound head attribute " +
              std::to_string(i));
        }
        return;
      }
      head_row.push_back(v);
    }
  }

  if (rule.agg) {
    const Value& v = slots[static_cast<size_t>(rule.agg->value_slot)];
    if (v.is_null()) {
      if (first_error_.ok()) {
        first_error_ = Status::RuntimeError(
            "rule " + rule.label + ": unbound aggregate input");
      }
      return;
    }
    // Group key: head row without the aggregate position.
    Row group;
    group.reserve(head_row.size() - 1);
    for (size_t i = 0; i < head_row.size(); ++i) {
      if (static_cast<int>(i) != rule.agg->arg_index) group.push_back(head_row[i]);
    }
    EmitAggregate(rule_idx, group, v, sign);
    return;
  }
  Route(rule.head.table, std::move(head_row), sign);
}

void Engine::EmitAggregate(size_t rule_idx, const Row& group,
                           const Value& value, int sign) {
  const RuleIR& rule = rules_[rule_idx];
  AggState& state = *agg_states_[rule_idx];
  auto& multiset = state.groups[group];
  multiset[value] += sign;
  if (multiset[value] <= 0) multiset.erase(value);
  bool empty = multiset.empty();
  if (empty) state.groups.erase(group);

  auto last_it = state.last_out.find(group);
  if (empty) {
    if (last_it != state.last_out.end()) {
      Route(rule.head.table, last_it->second, -1);
      state.last_out.erase(last_it);
    }
    return;
  }
  Value agg = ComputeAggregate(rule.agg->kind, state.groups[group]);
  // Rebuild the head row with the aggregate value in position.
  Row out;
  out.reserve(group.size() + 1);
  size_t g = 0;
  for (size_t i = 0; i <= group.size(); ++i) {
    if (static_cast<int>(i) == rule.agg->arg_index) {
      out.push_back(agg);
    } else {
      out.push_back(group[g++]);
    }
  }
  if (last_it != state.last_out.end()) {
    if (last_it->second == out) return;  // unchanged
    Route(rule.head.table, last_it->second, -1);
  }
  Route(rule.head.table, out, +1);
  state.last_out[group] = std::move(out);
}

void Engine::AddWatcher(const std::string& table, WatchFn fn) {
  watchers_[table].push_back(std::move(fn));
}

size_t Engine::MemoryEstimate() const {
  size_t bytes = 0;
  for (const auto& [name, t] : tables_) {
    // Rough: 48 bytes/value + row bookkeeping, times index fanout of ~2.
    bytes += t->size() * (t->schema().arity() * 48 + 64) * 2;
  }
  return bytes;
}

}  // namespace cologne::datalog

// The per-node Datalog evaluation engine: pipelined semi-naive (PSN)
// processing with counting-based incremental view maintenance, aggregate
// operators, NDlog-style keyed replacement, and location-aware routing of
// derived tuples (the RapidNet role in the original Cologne).
#ifndef COLOGNE_DATALOG_ENGINE_H_
#define COLOGNE_DATALOG_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "datalog/table.h"

namespace cologne::datalog {

/// Engine-level counters (exposed for tests and the overhead benchmarks).
struct EngineStats {
  uint64_t deltas_processed = 0;  ///< Visible tuple changes handled.
  uint64_t rule_firings = 0;      ///< Delta-rule evaluations.
  uint64_t tuples_sent = 0;       ///< Tuples routed to remote nodes.
};

/// \brief One node's rule processor.
///
/// Facts enter through Apply() (from the application or from the network);
/// Flush() drains the delta queue to a local fixpoint, firing rules
/// incrementally. Derived head tuples whose location specifier addresses a
/// different node are handed to the sender callback instead of being applied
/// locally.
class Engine {
 public:
  /// `self` is this node's address; kCentralized (-1) disables routing.
  static constexpr NodeId kCentralized = -1;
  explicit Engine(NodeId self = kCentralized) : self_(self) {}

  NodeId self() const { return self_; }

  // --- Catalog -------------------------------------------------------------

  Status DeclareTable(const TableSchema& schema);
  bool HasTable(const std::string& name) const;
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  // --- Rules ---------------------------------------------------------------

  /// Register a rule; all referenced tables must be declared.
  Status AddRule(RuleIR rule);
  size_t num_rules() const { return rules_.size(); }

  // --- Facts & evaluation ----------------------------------------------------

  /// Enqueue a tuple delta (+1 insert / -1 delete) for `table`. If the tuple
  /// addresses a remote node it is sent instead. Call Flush() to evaluate.
  Status Apply(const std::string& table, const Row& row, int sign);

  /// Convenience: Apply(+1) then Flush().
  Status InsertFact(const std::string& table, const Row& row);
  /// Convenience: Apply(-1) then Flush().
  Status DeleteFact(const std::string& table, const Row& row);

  /// Drain the delta queue to fixpoint.
  Status Flush();

  // --- Hooks ---------------------------------------------------------------

  /// Sender for tuples addressed to other nodes.
  using SendFn = std::function<void(NodeId dest, const std::string& table,
                                    const Row& row, int sign)>;
  void SetSender(SendFn fn) { sender_ = std::move(fn); }

  /// Watcher invoked on every visibility change of `table` (after the change
  /// is applied, before dependent rules fire).
  using WatchFn = std::function<void(const Row& row, int sign)>;
  void AddWatcher(const std::string& table, WatchFn fn);

  const EngineStats& stats() const { return stats_; }

  /// Approximate resident size of all tables (bytes), for the memory
  /// footprint numbers reported in the paper's Section 6.
  size_t MemoryEstimate() const;

 private:
  struct PendingDelta {
    std::string table;
    Row row;
    int sign;
  };

  // Rule bookkeeping: for each table, the (rule, body atom) pairs that a
  // delta on that table must fire.
  struct TriggerRef {
    size_t rule_idx;
    size_t atom_idx;
  };

  // Per-rule aggregate operator state.
  struct AggState {
    std::map<Row, std::map<Value, int64_t>> groups;  // group key -> multiset
    std::map<Row, Row> last_out;                     // group key -> head row
  };

  void ProcessOne(const PendingDelta& d);
  void FireTriggers(const std::string& table, const Row& row, int sign);
  void FireRule(size_t rule_idx, size_t atom_idx, const Row& row, int sign);
  // Recursive nested-loop join over remaining body atoms.
  void JoinStep(size_t rule_idx, const std::vector<size_t>& order, size_t depth,
                std::vector<Value>& slots, std::vector<char>& applied,
                int sign);
  // Evaluate ready selections/assignments; false = a selection failed or a
  // runtime error occurred (recorded in first_error_).
  bool ApplyGuards(size_t rule_idx, std::vector<Value>& slots,
                   std::vector<char>& applied);
  void EmitHead(size_t rule_idx, const std::vector<Value>& slots, int sign);
  void EmitAggregate(size_t rule_idx, const Row& group, const Value& value,
                     int sign);
  // Route a fully-constructed head tuple: local queue or remote send.
  void Route(const std::string& table, Row row, int sign);
  bool MatchAtom(const AtomIR& atom, const Row& row, std::vector<Value>& slots,
                 std::vector<int>& newly_bound);

  NodeId self_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<RuleIR> rules_;
  // Precomputed per rule: slots needed by each guard (selection/assignment).
  struct GuardInfo {
    bool is_assign;
    size_t index;              // into rule.sels or rule.assigns
    std::vector<int> deps;     // slots that must be bound first
  };
  std::vector<std::vector<GuardInfo>> guards_;
  std::map<std::string, std::vector<TriggerRef>> triggers_;
  std::map<std::string, std::vector<WatchFn>> watchers_;
  std::vector<std::unique_ptr<AggState>> agg_states_;
  std::deque<PendingDelta> queue_;
  SendFn sender_;
  EngineStats stats_;
  Status first_error_;
};

}  // namespace cologne::datalog

#endif  // COLOGNE_DATALOG_ENGINE_H_

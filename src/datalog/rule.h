// Executable rule IR produced by the Colog planner and evaluated by the
// Datalog engine via pipelined semi-naive (PSN) delta processing.
#ifndef COLOGNE_DATALOG_RULE_H_
#define COLOGNE_DATALOG_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "datalog/aggregates.h"
#include "datalog/expr.h"

namespace cologne::datalog {

/// An atom argument: either a constant or a binding-slot reference.
struct TermIR {
  bool is_const = false;
  Value const_val;
  int slot = -1;

  static TermIR Const(Value v) {
    TermIR t;
    t.is_const = true;
    t.const_val = std::move(v);
    return t;
  }
  static TermIR Slot(int s) {
    TermIR t;
    t.slot = s;
    return t;
  }
};

/// A predicate occurrence: table name plus argument terms.
struct AtomIR {
  std::string table;
  std::vector<TermIR> args;
};

/// Aggregate annotation on a rule head: head arg `arg_index` is
/// `kind<slot>`; the remaining head args are the group-by key.
struct AggIR {
  AggKind kind = AggKind::kNone;
  int arg_index = -1;  ///< Position of the aggregate in the head args.
  int value_slot = -1; ///< Slot holding the aggregated value.
};

/// A selection predicate (boolean expression over slots).
struct SelIR {
  Expr expr;
};

/// An assignment `slot := expr` (Colog's `:=` operator).
struct AssignIR {
  int slot = -1;
  Expr expr;
};

/// \brief One executable rule.
///
/// `trigger[i]` controls PSN firing: a delta on body atom i re-evaluates the
/// rule iff trigger[i] is true. The planner clears the flag on body atoms
/// matching the head table ("update rules" such as Follow-the-Sun r3, which
/// reads the current curVm snapshot but must not re-fire on its own output).
struct RuleIR {
  std::string label;
  AtomIR head;
  std::optional<AggIR> agg;
  std::vector<AtomIR> body;
  std::vector<SelIR> sels;
  std::vector<AssignIR> assigns;
  std::vector<char> trigger;  ///< Parallel to `body`.
  /// Parallel to `body`: when set, deltas with sign -1 do not fire this atom.
  /// Post-solve rules use this (NDlog event semantics): solver output rows
  /// act as one-shot events driving updates, so retracting a stale output
  /// must not "un-apply" a state update (e.g. Follow-the-Sun r3).
  std::vector<char> insert_only;
  int num_slots = 0;

  std::string DebugString() const {
    std::string out = label + ": " + head.table + "/" +
                      std::to_string(head.args.size()) + " <-";
    for (const AtomIR& a : body) {
      out += " " + a.table + "/" + std::to_string(a.args.size());
    }
    out += StrBits();
    return out;
  }

 private:
  std::string StrBits() const {
    std::string out;
    if (!sels.empty()) out += " [" + std::to_string(sels.size()) + " sels]";
    if (!assigns.empty()) {
      out += " [" + std::to_string(assigns.size()) + " assigns]";
    }
    if (agg) out += std::string(" [agg ") + AggKindName(agg->kind) + "]";
    return out;
  }
};

}  // namespace cologne::datalog

#endif  // COLOGNE_DATALOG_RULE_H_

// Discrete-event simulator: the clocking/transport substrate that ns-3
// provided for the original Cologne prototype.
#ifndef COLOGNE_NET_SIMULATOR_H_
#define COLOGNE_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace cologne::net {

/// Handle to a scheduled event (usable for cancellation).
using EventId = uint64_t;

/// \brief Deterministic discrete-event scheduler.
///
/// Events with equal timestamps fire in scheduling order (a strictly
/// increasing sequence number breaks ties), so simulations are reproducible.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds.
  double Now() const { return now_; }

  /// Schedule `cb` to run `delay_s` seconds from now (>= 0).
  EventId Schedule(double delay_s, Callback cb) {
    return ScheduleAt(now_ + delay_s, std::move(cb));
  }

  /// Schedule `cb` at absolute virtual time `time_s` (clamped to >= Now()).
  EventId ScheduleAt(double time_s, Callback cb);

  /// Cancel a pending event; no-op if it already fired or was cancelled.
  void Cancel(EventId id);

  /// Run until no events remain.
  void Run();

  /// Run all events with time <= t, then set the clock to t.
  void RunUntil(double t);

  /// Execute at most one pending event; returns false when queue is empty.
  bool Step();

  /// Number of pending (uncancelled) events.
  size_t pending() const { return pending_; }

  /// Total events executed so far.
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    EventId id;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  double now_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // id -> callback; erased on cancel so cancelled events are skipped cheaply.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_SIMULATOR_H_

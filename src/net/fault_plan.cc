#include "net/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"

namespace cologne::net {

namespace {

bool InWindow(const LinkFault::Window& w, double t) {
  return t >= w.t0 && t < w.t1;
}

bool SameLink(const LinkFault& f, NodeId a, NodeId b) {
  return (f.a == a && f.b == b) || (f.a == b && f.b == a);
}

double ActiveParam(const std::vector<LinkFault::Window>& ws, double t) {
  for (const LinkFault::Window& w : ws) {
    if (InWindow(w, t)) return w.p;
  }
  return 0;
}

void AppendWindows(JsonWriter* w, const char* key,
                   const std::vector<LinkFault::Window>& ws, bool with_p) {
  if (ws.empty()) return;
  w->Key(key).BeginArray();
  for (const LinkFault::Window& win : ws) {
    w->BeginArray().Double(win.t0).Double(win.t1);
    if (with_p) w->Double(win.p);
    w->EndArray();
  }
  w->EndArray();
}

// ---- Minimal JSON reader (canonical subset emitted by ToJson) ---------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  const char* p;
  const char* end;
  Status error = Status::OK();

  void Skip() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool Fail(const std::string& msg) {
    if (error.ok()) {
      error = Status::ParseError("fault plan JSON: " + msg);
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          default: *out += *p;
        }
      } else {
        *out += *p;
      }
      ++p;
    }
    if (p >= end) return Fail("unterminated string");
    ++p;
    return true;
  }

  bool Parse(JsonValue* out) {
    Skip();
    if (p >= end) return Fail("unexpected end of input");
    char c = *p;
    if (c == '{') {
      ++p;
      out->kind = JsonValue::Kind::kObject;
      Skip();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        Skip();
        std::string key;
        if (!ParseString(&key)) return false;
        Skip();
        if (p >= end || *p != ':') return Fail("expected ':'");
        ++p;
        JsonValue v;
        if (!Parse(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        Skip();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      out->kind = JsonValue::Kind::kArray;
      Skip();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!Parse(&v)) return false;
        out->arr.push_back(std::move(v));
        Skip();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      const char* word = c == 't' ? "true" : "false";
      size_t len = c == 't' ? 4 : 5;
      if (static_cast<size_t>(end - p) < len ||
          std::string_view(p, len) != word) {
        return Fail("bad literal");
      }
      out->b = c == 't';
      p += len;
      return true;
    }
    if (c == 'n') {
      if (static_cast<size_t>(end - p) < 4 || std::string_view(p, 4) != "null") {
        return Fail("bad literal");
      }
      p += 4;
      return true;
    }
    char* num_end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->num = strtod(p, &num_end);
    if (num_end == p || num_end > end) return Fail("bad number");
    p = num_end;
    return true;
  }
};

Result<std::vector<LinkFault::Window>> ReadWindows(const JsonValue& v,
                                                   bool with_p) {
  std::vector<LinkFault::Window> out;
  for (const JsonValue& wv : v.arr) {
    if (wv.arr.size() < 2) {
      return Status::ParseError("fault plan JSON: window needs [t0,t1]");
    }
    LinkFault::Window w;
    w.t0 = wv.arr[0].num;
    w.t1 = wv.arr[1].num;
    if (with_p && wv.arr.size() >= 3) w.p = wv.arr[2].num;
    out.push_back(w);
  }
  return out;
}

}  // namespace

bool LinkFault::DownAt(double t) const {
  for (const Window& w : down) {
    if (InWindow(w, t)) return true;
  }
  return false;
}

double LinkFault::LossAt(double t) const { return ActiveParam(loss, t); }

double LinkFault::DupAt(double t) const { return ActiveParam(duplicate, t); }

double LinkFault::ReorderAt(double t) const { return ActiveParam(reorder, t); }

const LinkFault* FaultPlan::FindLink(NodeId a, NodeId b) const {
  for (const LinkFault& f : links) {
    if (SameLink(f, a, b)) return &f;
  }
  return nullptr;
}

bool FaultPlan::PartitionedAt(NodeId a, NodeId b, double t) const {
  for (const PartitionFault& part : partitions) {
    if (t < part.t0 || t >= part.t1) continue;
    bool in_a = std::binary_search(part.group.begin(), part.group.end(), a);
    bool in_b = std::binary_search(part.group.begin(), part.group.end(), b);
    if (in_a != in_b) return true;
  }
  return false;
}

bool FaultPlan::SeveredAt(NodeId a, NodeId b, double t,
                          const char** reason) const {
  const LinkFault* f = FindLink(a, b);
  if (f != nullptr && f->DownAt(t)) {
    if (reason != nullptr) *reason = "link_down";
    return true;
  }
  if (PartitionedAt(a, b, t)) {
    if (reason != nullptr) *reason = "partition";
    return true;
  }
  return false;
}

double FaultPlan::LossProbAt(NodeId a, NodeId b, double t) const {
  const LinkFault* f = FindLink(a, b);
  return f == nullptr ? 0 : f->LossAt(t);
}

double FaultPlan::DupProbAt(NodeId a, NodeId b, double t) const {
  const LinkFault* f = FindLink(a, b);
  return f == nullptr ? 0 : f->DupAt(t);
}

double FaultPlan::ReorderJitterAt(NodeId a, NodeId b, double t) const {
  const LinkFault* f = FindLink(a, b);
  return f == nullptr ? 0 : f->ReorderAt(t);
}

const CrashFault* FaultPlan::FindCrash(NodeId node) const {
  for (const CrashFault& c : crashes) {
    if (c.node == node) return &c;
  }
  return nullptr;
}

std::string FaultPlan::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("seed").UInt(seed);
  if (!links.empty()) {
    w.Key("links").BeginArray();
    for (const LinkFault& f : links) {
      w.BeginObject();
      w.Key("a").Int(f.a);
      w.Key("b").Int(f.b);
      AppendWindows(&w, "down", f.down, /*with_p=*/false);
      AppendWindows(&w, "loss", f.loss, /*with_p=*/true);
      AppendWindows(&w, "dup", f.duplicate, /*with_p=*/true);
      AppendWindows(&w, "reorder", f.reorder, /*with_p=*/true);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!partitions.empty()) {
    w.Key("partitions").BeginArray();
    for (const PartitionFault& part : partitions) {
      w.BeginObject();
      w.Key("group").BeginArray();
      for (NodeId n : part.group) w.Int(n);
      w.EndArray();
      w.Key("t0").Double(part.t0);
      w.Key("t1").Double(part.t1);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!crashes.empty()) {
    w.Key("crashes").BeginArray();
    for (const CrashFault& c : crashes) {
      w.BeginObject();
      w.Key("node").Int(c.node);
      w.Key("t").Double(c.t);
      w.Key("restart").Double(c.restart_t);
      w.Key("retain_warm").Int(c.retain_warm_start ? 1 : 0);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.Take();
}

Result<FaultPlan> FaultPlan::FromJson(const std::string& json) {
  JsonParser parser{json.data(), json.data() + json.size()};
  JsonValue root;
  if (!parser.Parse(&root)) return parser.error;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("fault plan JSON: expected object");
  }
  FaultPlan plan;
  if (const JsonValue* v = root.Get("seed")) {
    plan.seed = static_cast<uint64_t>(v->num);
  }
  if (const JsonValue* v = root.Get("links")) {
    for (const JsonValue& lv : v->arr) {
      LinkFault f;
      if (const JsonValue* a = lv.Get("a")) f.a = static_cast<NodeId>(a->num);
      if (const JsonValue* b = lv.Get("b")) f.b = static_cast<NodeId>(b->num);
      if (const JsonValue* w = lv.Get("down")) {
        COLOGNE_ASSIGN_OR_RETURN(ws, ReadWindows(*w, false));
        f.down = std::move(ws);
      }
      if (const JsonValue* w = lv.Get("loss")) {
        COLOGNE_ASSIGN_OR_RETURN(ws, ReadWindows(*w, true));
        f.loss = std::move(ws);
      }
      if (const JsonValue* w = lv.Get("dup")) {
        COLOGNE_ASSIGN_OR_RETURN(ws, ReadWindows(*w, true));
        f.duplicate = std::move(ws);
      }
      if (const JsonValue* w = lv.Get("reorder")) {
        COLOGNE_ASSIGN_OR_RETURN(ws, ReadWindows(*w, true));
        f.reorder = std::move(ws);
      }
      plan.links.push_back(std::move(f));
    }
  }
  if (const JsonValue* v = root.Get("partitions")) {
    for (const JsonValue& pv : v->arr) {
      PartitionFault part;
      if (const JsonValue* g = pv.Get("group")) {
        for (const JsonValue& m : g->arr) {
          part.group.push_back(static_cast<NodeId>(m.num));
        }
        // SeveredAt binary-searches the member set; hand-edited plans may
        // list members in any order.
        std::sort(part.group.begin(), part.group.end());
      }
      if (const JsonValue* t = pv.Get("t0")) part.t0 = t->num;
      if (const JsonValue* t = pv.Get("t1")) part.t1 = t->num;
      plan.partitions.push_back(std::move(part));
    }
  }
  if (const JsonValue* v = root.Get("crashes")) {
    for (const JsonValue& cv : v->arr) {
      CrashFault c;
      if (const JsonValue* n = cv.Get("node")) c.node = static_cast<NodeId>(n->num);
      if (const JsonValue* t = cv.Get("t")) c.t = t->num;
      if (const JsonValue* t = cv.Get("restart")) c.restart_t = t->num;
      if (const JsonValue* r = cv.Get("retain_warm")) {
        c.retain_warm_start =
            r->kind == JsonValue::Kind::kBool ? r->b : r->num != 0;
      }
      plan.crashes.push_back(c);
    }
  }
  return plan;
}

FaultPlan FaultPlan::Random(uint64_t seed, size_t num_nodes,
                            const std::vector<std::pair<NodeId, NodeId>>& links,
                            const RandomConfig& config) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(SplitMix64(seed ^ 0xFA017FA017ull));
  auto window = [&](double max_len) {
    LinkFault::Window w;
    double len = rng.UniformDouble(0.25, std::max(max_len, 0.5));
    w.t0 = rng.UniformDouble(config.t_min_s,
                             std::max(config.horizon_s - len, config.t_min_s + 0.1));
    w.t1 = w.t0 + len;
    return w;
  };
  for (const auto& [a, b] : links) {
    LinkFault f;
    f.a = a;
    f.b = b;
    if (rng.Bernoulli(config.flap_prob)) f.down.push_back(window(config.max_flap_s));
    if (rng.Bernoulli(config.loss_prob)) {
      LinkFault::Window w = window(config.horizon_s / 2);
      w.p = rng.UniformDouble(0.05, config.max_loss);
      f.loss.push_back(w);
    }
    if (rng.Bernoulli(config.dup_prob)) {
      LinkFault::Window w = window(config.horizon_s / 2);
      w.p = rng.UniformDouble(0.05, config.max_dup);
      f.duplicate.push_back(w);
    }
    if (rng.Bernoulli(config.reorder_prob)) {
      LinkFault::Window w = window(config.horizon_s / 2);
      w.p = rng.UniformDouble(config.max_reorder_s / 4, config.max_reorder_s);
      f.reorder.push_back(w);
    }
    if (!f.down.empty() || !f.loss.empty() || !f.duplicate.empty() ||
        !f.reorder.empty()) {
      plan.links.push_back(std::move(f));
    }
  }
  if (num_nodes >= 2 && rng.Bernoulli(config.partition_prob)) {
    PartitionFault part;
    part.group.push_back(static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(num_nodes) - 1)));
    LinkFault::Window w = window(config.max_partition_s);
    part.t0 = w.t0;
    part.t1 = w.t1;
    plan.partitions.push_back(std::move(part));
  }
  if (num_nodes >= 1 && rng.Bernoulli(config.crash_prob)) {
    CrashFault c;
    c.node = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(num_nodes) - 1));
    c.t = rng.UniformDouble(config.t_min_s, config.horizon_s * 0.6);
    if (config.allow_no_restart && rng.Bernoulli(0.25)) {
      c.restart_t = -1;
    } else {
      c.restart_t = c.t + rng.UniformDouble(1.0, std::max(config.max_down_s, 1.5));
    }
    c.retain_warm_start = config.retain_warm_start;
    plan.crashes.push_back(c);
  }
  return plan;
}

}  // namespace cologne::net

#include "net/network.h"

#include <algorithm>

#include "common/strings.h"

namespace cologne::net {

size_t Message::WireSize() const {
  size_t n = 20 + table.size() + 1;  // header + table name + sign byte
  for (const Value& v : row) n += v.WireSize();
  return n;
}

NodeId Network::AddNode() {
  receivers_.emplace_back();
  stats_.emplace_back();
  return static_cast<NodeId>(receivers_.size() - 1);
}

Status Network::AddLink(NodeId a, NodeId b, LinkConfig config) {
  if (a == b) return Status::InvalidArgument("self-link not allowed");
  size_t n = receivers_.size();
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= n ||
      static_cast<size_t>(b) >= n) {
    return Status::InvalidArgument("link endpoint does not exist");
  }
  links_[Key(a, b)] = Link{config};
  return Status::OK();
}

bool Network::HasLink(NodeId a, NodeId b) const {
  return links_.count(Key(a, b)) > 0;
}

std::vector<NodeId> Network::Neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.first == n) out.push_back(key.second);
    if (key.second == n) out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Network::Links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) out.push_back(key);
  return out;
}

void Network::SetReceiver(NodeId n, Receiver r) {
  receivers_[static_cast<size_t>(n)] = std::move(r);
}

Status Network::Send(NodeId from, NodeId to, Message msg) {
  if (from == to) {
    // Local delivery: no latency, no traffic accounting.
    if (receivers_[static_cast<size_t>(to)]) {
      Message m = std::move(msg);
      sim_->Schedule(0.0, [this, from, to, m = std::move(m)] {
        receivers_[static_cast<size_t>(to)](from, to, m);
      });
    }
    return Status::OK();
  }
  auto it = links_.find(Key(from, to));
  if (it == links_.end()) {
    return Status::InvalidArgument(
        StrFormat("no link between node %d and node %d", from, to));
  }
  const LinkConfig& cfg = it->second.config;
  size_t size = msg.WireSize();
  TrafficStats& s = stats_[static_cast<size_t>(from)];
  ++s.messages_sent;
  s.bytes_sent += size;
  if (cfg.drop_prob > 0 && rng_.Bernoulli(cfg.drop_prob)) {
    return Status::OK();  // dropped in flight
  }
  double delay =
      cfg.latency_s + static_cast<double>(size) * 8.0 / cfg.bandwidth_bps;
  sim_->Schedule(delay, [this, from, to, m = std::move(msg), size] {
    TrafficStats& r = stats_[static_cast<size_t>(to)];
    ++r.messages_received;
    r.bytes_received += size;
    if (receivers_[static_cast<size_t>(to)]) {
      receivers_[static_cast<size_t>(to)](from, to, m);
    }
  });
  return Status::OK();
}

void Network::ResetStats() {
  for (TrafficStats& s : stats_) s = TrafficStats{};
}

}  // namespace cologne::net

#include "net/network.h"

#include <algorithm>

#include "common/strings.h"
#include "net/reliable_channel.h"

namespace cologne::net {

size_t Message::WireSize() const {
  size_t n = 20 + table.size() + 1;  // header + table name + sign byte
  if (seq != 0) n += 8;              // reliable-channel sequence number
  for (const Value& v : row) n += v.WireSize();
  return n;
}

Network::Network(Simulator* sim, uint64_t seed) : sim_(sim), rng_(seed) {
  channel_ = std::make_unique<ReliableChannel>(sim, seed);
  channel_->SetTransmit(
      [this](NodeId from, NodeId to, Message msg, const char* detail) {
        Transmit(from, to, std::move(msg), detail);
      });
  channel_->SetDeliver([this](NodeId from, NodeId to, const Message& msg) {
    if (receivers_[static_cast<size_t>(to)]) {
      receivers_[static_cast<size_t>(to)](from, to, msg);
    }
  });
  channel_->SetEmit([this](NetEvent::Kind kind, NodeId from, NodeId to,
                           const Message& msg, const char* detail) {
    Emit(kind, from, to, msg, detail);
  });
}

Network::~Network() = default;

void Network::SetReliableConfig(const ReliableConfig& config) {
  channel_->set_config(config);
}

NodeId Network::AddNode() {
  receivers_.emplace_back();
  stats_.emplace_back();
  return static_cast<NodeId>(receivers_.size() - 1);
}

Status Network::AddLink(NodeId a, NodeId b, LinkConfig config) {
  if (a == b) return Status::InvalidArgument("self-link not allowed");
  size_t n = receivers_.size();
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= n ||
      static_cast<size_t>(b) >= n) {
    return Status::InvalidArgument("link endpoint does not exist");
  }
  links_[Key(a, b)] = Link{config};
  return Status::OK();
}

bool Network::HasLink(NodeId a, NodeId b) const {
  return links_.count(Key(a, b)) > 0;
}

std::vector<NodeId> Network::Neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.first == n) out.push_back(key.second);
    if (key.second == n) out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Network::Links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) out.push_back(key);
  return out;
}

void Network::SetReceiver(NodeId n, Receiver r) {
  receivers_[static_cast<size_t>(n)] = std::move(r);
}

void Network::Emit(NetEvent::Kind kind, NodeId from, NodeId to,
                   const Message& msg, const char* detail) {
  if (!hook_) return;
  NetEvent ev;
  ev.kind = kind;
  ev.t = sim_->Now();
  ev.from = from;
  ev.to = to;
  ev.msg = &msg;
  ev.detail = detail;
  hook_(ev);
}

void Network::Arrive(NodeId from, NodeId to, const Message& msg, size_t size,
                     const char* detail) {
  TrafficStats& r = stats_[static_cast<size_t>(to)];
  ++r.messages_received;
  r.bytes_received += size;
  Emit(NetEvent::Kind::kDeliver, from, to, msg, detail);
  if (reliable_transport_ && (msg.seq != 0 || msg.table == kAckTable)) {
    // Sequenced data and acks belong to the channel: it suppresses
    // duplicates, reassembles FIFO order, and hands in-order data to the
    // runtime receiver through its DeliverFn.
    channel_->OnArrival(from, to, msg);
    return;
  }
  if (receivers_[static_cast<size_t>(to)]) {
    receivers_[static_cast<size_t>(to)](from, to, msg);
  }
}

Status Network::Send(NodeId from, NodeId to, Message msg) {
  if (from == to) {
    // Local delivery: no latency, no traffic accounting, no faults.
    if (receivers_[static_cast<size_t>(to)]) {
      Message m = std::move(msg);
      sim_->Schedule(0.0, [this, from, to, m = std::move(m)] {
        receivers_[static_cast<size_t>(to)](from, to, m);
      });
    }
    return Status::OK();
  }
  if (links_.find(Key(from, to)) == links_.end()) {
    return Status::InvalidArgument(
        StrFormat("no link between node %d and node %d", from, to));
  }
  msg.sent_s = sim_->Now();
  if (reliable_transport_ && msg.reliable) {
    // Real reliability: the channel sequences the message and calls back
    // into Transmit for the first transmission and every retransmission.
    channel_->Send(from, to, std::move(msg));
    return Status::OK();
  }
  const char* detail = msg.replay ? "replay" : "";
  Transmit(from, to, std::move(msg), detail);
  return Status::OK();
}

void Network::Transmit(NodeId from, NodeId to, Message msg,
                       const char* detail) {
  const LinkConfig& cfg = links_.find(Key(from, to))->second.config;
  size_t size = msg.WireSize();
  double now = sim_->Now();
  TrafficStats& s = stats_[static_cast<size_t>(from)];
  ++s.messages_sent;
  s.bytes_sent += size;
  Emit(NetEvent::Kind::kSend, from, to, msg, detail);

  // Fault evaluation (one link-fault lookup per transmission). In legacy
  // mode, reliable reconciliation traffic is immune to drop faults and
  // reorder jitter — the orchestrated anti-entropy protocol depends on
  // in-order delivery — but still pays latency and serialization. With the
  // reliable transport enabled nothing is immune: sequenced packets are
  // dropped/duplicated/jittered like any datagram and the channel's
  // retransmission and reassembly recover. The draw order (loss,
  // fault-loss, jitter, dup) is fixed so identical plans consume the RNG
  // stream identically.
  const bool immune = msg.reliable && !reliable_transport_;
  const net::LinkFault* lf = fault_plan_.FindLink(from, to);
  const char* drop_reason = nullptr;
  bool severed = (lf != nullptr && lf->DownAt(now))
                     ? (drop_reason = "link_down", true)
                     : fault_plan_.PartitionedAt(from, to, now)
                           ? (drop_reason = "partition", true)
                           : false;
  if (severed && !immune) {
    ++s.messages_dropped;
    Emit(NetEvent::Kind::kDrop, from, to, msg, drop_reason);
    return;
  }
  if (cfg.drop_prob > 0 && rng_.Bernoulli(cfg.drop_prob)) {
    if (!immune) {
      ++s.messages_dropped;
      Emit(NetEvent::Kind::kDrop, from, to, msg, "loss");
      return;
    }
  }
  double fault_loss = lf == nullptr ? 0 : lf->LossAt(now);
  if (fault_loss > 0 && rng_.Bernoulli(fault_loss) && !immune) {
    ++s.messages_dropped;
    Emit(NetEvent::Kind::kDrop, from, to, msg, "loss");
    return;
  }
  double delay =
      cfg.latency_s + static_cast<double>(size) * 8.0 / cfg.bandwidth_bps;
  double jitter_cap = lf == nullptr ? 0 : lf->ReorderAt(now);
  if (jitter_cap > 0) {
    double jitter = rng_.UniformDouble(0, jitter_cap);
    if (!immune) delay += jitter;
  }
  double dup_prob = lf == nullptr ? 0 : lf->DupAt(now);
  bool duplicate = dup_prob > 0 && rng_.Bernoulli(dup_prob) && !immune;
  Message copy;
  if (duplicate) {
    // The copy follows the original at the same timestamp (FIFO tie-break),
    // so receivers observe a back-to-back duplicate. The duplicate pays
    // bandwidth like any other transmission.
    ++s.messages_sent;
    s.bytes_sent += size;
    Emit(NetEvent::Kind::kDup, from, to, msg, "");
    copy = msg;
  }
  sim_->Schedule(delay, [this, from, to, m = std::move(msg), size, detail] {
    Arrive(from, to, m, size, detail);
  });
  if (duplicate) {
    sim_->Schedule(delay, [this, from, to, m = std::move(copy), size] {
      Arrive(from, to, m, size, "dup");
    });
  }
}

void Network::ResetStats() {
  for (TrafficStats& s : stats_) s = TrafficStats{};
}

uint64_t Network::TotalDropped() const {
  uint64_t total = 0;
  for (const TrafficStats& s : stats_) total += s.messages_dropped;
  return total;
}

}  // namespace cologne::net

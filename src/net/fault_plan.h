// Seeded fault plans for the simulated network and runtime: link flaps,
// bidirectional partitions, per-link loss/duplication/reordering windows,
// and node crash/restart events.
//
// A plan is pure data. The Network consults it at send time (so identical
// plans yield identical drop/duplicate/jitter draws) and runtime::System
// schedules its crash/restart events on the simulator. Plans serialize to
// canonical JSON and parse back, so the trace header of a faulty run is
// sufficient to reproduce it bit-for-bit (see runtime/trace_replay.h).
#ifndef COLOGNE_NET_FAULT_PLAN_H_
#define COLOGNE_NET_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace cologne::net {

/// Faults on one undirected link (endpoints unordered).
struct LinkFault {
  /// A half-open activity window [t0, t1) with an optional parameter:
  /// drop/duplication probability, or reorder jitter bound in seconds.
  struct Window {
    double t0 = 0;
    double t1 = 0;
    double p = 0;
  };

  NodeId a = 0;
  NodeId b = 0;
  std::vector<Window> down;       ///< Link is dead; every send is dropped.
  std::vector<Window> loss;       ///< Extra per-message drop probability `p`.
  std::vector<Window> duplicate;  ///< Per-message duplication probability `p`.
  std::vector<Window> reorder;    ///< Uniform extra delay in [0, p) seconds.

  bool DownAt(double t) const;
  double LossAt(double t) const;       ///< 0 outside any window.
  double DupAt(double t) const;
  double ReorderAt(double t) const;
};

/// A bidirectional partition: messages between `group` and its complement
/// are dropped during [t0, t1).
struct PartitionFault {
  std::vector<NodeId> group;  ///< Sorted member set.
  double t0 = 0;
  double t1 = 0;
};

/// A node crash (and optional restart) handled by runtime::System: the node
/// loses all engine and solver state and rejoins from its durable base facts.
struct CrashFault {
  NodeId node = 0;
  double t = 0;
  double restart_t = -1;          ///< < 0: the node never comes back.
  bool retain_warm_start = false; ///< Keep the warm-start cache across crash.
};

/// \brief A deterministic schedule of injected faults.
struct FaultPlan {
  uint64_t seed = 0;  ///< Generator seed (recorded for provenance only).
  std::vector<LinkFault> links;
  std::vector<PartitionFault> partitions;
  std::vector<CrashFault> crashes;

  bool empty() const {
    return links.empty() && partitions.empty() && crashes.empty();
  }

  /// Fault entry for the undirected link (a, b), or nullptr.
  const LinkFault* FindLink(NodeId a, NodeId b) const;

  /// True when (a, b) traffic must be dropped at time `t` — a down window on
  /// the link or an active partition separating the endpoints. `reason`
  /// (optional) receives "link_down" or "partition".
  bool SeveredAt(NodeId a, NodeId b, double t, const char** reason = nullptr) const;

  /// True when an active partition separates `a` from `b` at time `t`
  /// (the partition half of SeveredAt; link windows live on LinkFault).
  bool PartitionedAt(NodeId a, NodeId b, double t) const;

  /// Extra loss probability on (a, b) at `t` (0 when no window is active).
  double LossProbAt(NodeId a, NodeId b, double t) const;
  /// Duplication probability on (a, b) at `t`.
  double DupProbAt(NodeId a, NodeId b, double t) const;
  /// Reorder jitter bound (seconds of extra uniform delay) on (a, b) at `t`.
  double ReorderJitterAt(NodeId a, NodeId b, double t) const;

  /// The crash entry for `node` (first match), or nullptr.
  const CrashFault* FindCrash(NodeId node) const;

  /// Canonical single-line JSON (shortest round-trip double formatting;
  /// empty sections omitted). Equal plans render identically.
  std::string ToJson() const;

  /// Parse a plan rendered by ToJson (accepts any field order).
  static Result<FaultPlan> FromJson(const std::string& json);

  /// Knobs for Random(); probabilities are per-link (or per-plan for
  /// partition/crash) chances that the corresponding fault appears at all.
  struct RandomConfig {
    double horizon_s = 60;        ///< Faults fall inside [t_min_s, horizon_s).
    double t_min_s = 0.5;
    double flap_prob = 0.5;
    double max_flap_s = 6;
    double loss_prob = 0.5;
    double max_loss = 0.3;
    double dup_prob = 0.25;
    double max_dup = 0.2;
    double reorder_prob = 0.25;
    double max_reorder_s = 0.02;
    double partition_prob = 0.2;
    double max_partition_s = 5;
    double crash_prob = 0.5;
    double max_down_s = 12;
    bool allow_no_restart = false;
    bool retain_warm_start = false;
  };

  /// Deterministically generate a plan for a topology: same (seed, nodes,
  /// links, config) always yields the same plan.
  static FaultPlan Random(uint64_t seed, size_t num_nodes,
                          const std::vector<std::pair<NodeId, NodeId>>& links,
                          const RandomConfig& config);
  static FaultPlan Random(uint64_t seed, size_t num_nodes,
                          const std::vector<std::pair<NodeId, NodeId>>& links) {
    return Random(seed, num_nodes, links, RandomConfig{});
  }
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_FAULT_PLAN_H_

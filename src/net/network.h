// Message-passing network over the discrete-event simulator.
//
// Models what the original Cologne used ns-3 for: UDP-style, per-link latency
// and (optional) loss, with per-node byte counters for the bandwidth
// measurements in Figure 5 of the paper. A FaultPlan (fault_plan.h) layers
// deterministic link flaps, partitions, and loss/duplication/reordering
// windows on top; every send/deliver/drop is observable through the event
// hook so runs can be traced and replayed bit-for-bit.
#ifndef COLOGNE_NET_NETWORK_H_
#define COLOGNE_NET_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "net/fault_plan.h"
#include "net/simulator.h"

namespace cologne::net {

/// A tuple-delta message: table name + row + sign (+1 insert / -1 delete).
/// This is the only wire format the declarative networking engine needs.
struct Message {
  std::string table;
  Row row;
  int sign = 1;
  /// Sender incarnation (bumped when a node restarts after a crash); the
  /// runtime drops deliveries from stale incarnations.
  uint32_t epoch = 0;
  /// Virtual send time, stamped by Network::Send. Receivers that resynced
  /// at time T drop ordinary messages sent at or before T: their content is
  /// already covered by the reliable send-log replay.
  double sent_s = 0;
  /// Reconciliation traffic (crash-recovery / anti-entropy state replay)
  /// rides a reliable channel: it pays latency and bandwidth but ignores
  /// loss/down faults.
  bool reliable = false;

  /// Approximate wire size: 20-byte UDP/IP-ish header + payload.
  size_t WireSize() const;
};

/// Per-link transmission parameters.
struct LinkConfig {
  double latency_s = 0.001;        ///< One-way propagation delay.
  double bandwidth_bps = 10e6;     ///< 10 Mbps, matching the paper's ns-3 setup.
  double drop_prob = 0.0;          ///< Probability a message is lost.
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_dropped = 0;   ///< In-flight losses, counted at the sender.
};

/// One observable network transition, surfaced through Network's event hook
/// (the runtime's TraceRecorder serializes these into the canonical trace).
struct NetEvent {
  enum class Kind { kSend, kDeliver, kDrop, kDup };
  Kind kind = Kind::kSend;
  double t = 0;
  NodeId from = 0;
  NodeId to = 0;
  const Message* msg = nullptr;
  /// Drop reason ("loss", "link_down", "partition") or send/deliver detail
  /// ("replay" for reliable reconciliation traffic); may be empty.
  const char* detail = "";
};

/// \brief A static topology of nodes and bidirectional links carrying
/// tuple-delta messages.
class Network {
 public:
  explicit Network(Simulator* sim, uint64_t seed = 1)
      : sim_(sim), rng_(seed) {}

  /// Add a node; ids are dense and returned in creation order.
  NodeId AddNode();
  size_t num_nodes() const { return receivers_.size(); }

  /// Add a bidirectional link between existing nodes a and b.
  Status AddLink(NodeId a, NodeId b, LinkConfig config = {});
  bool HasLink(NodeId a, NodeId b) const;
  /// Neighbors of `n`, sorted ascending.
  std::vector<NodeId> Neighbors(NodeId n) const;
  /// All (a, b) link pairs with a < b.
  std::vector<std::pair<NodeId, NodeId>> Links() const;

  /// Delivery callback: (from, to, message).
  using Receiver = std::function<void(NodeId, NodeId, const Message&)>;
  void SetReceiver(NodeId n, Receiver r);

  /// Install a fault plan; link-level windows apply from the current virtual
  /// time on. Crash events are interpreted by runtime::System, not here.
  void SetFaultPlan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Observer for send/deliver/drop/duplicate transitions (tracing).
  using EventHook = std::function<void(const NetEvent&)>;
  void SetEventHook(EventHook hook) { hook_ = std::move(hook); }

  /// Send `msg` from `from` to neighbor `to`. Self-sends deliver with zero
  /// latency. Sends to non-neighbors fail (Cologne rules only ever
  /// communicate along links). Fault-plan drops return OK, like link loss.
  Status Send(NodeId from, NodeId to, Message msg);

  const TrafficStats& StatsOf(NodeId n) const {
    return stats_[static_cast<size_t>(n)];
  }
  void ResetStats();

  /// Sum of messages_dropped across all nodes.
  uint64_t TotalDropped() const;

 private:
  struct Link {
    LinkConfig config;
  };

  void Emit(NetEvent::Kind kind, NodeId from, NodeId to, const Message& msg,
            const char* detail);
  void Deliver(NodeId from, NodeId to, const Message& msg, size_t size,
               const char* detail);

  Simulator* sim_;
  Rng rng_;
  std::vector<Receiver> receivers_;
  std::vector<TrafficStats> stats_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;  // key: (min, max)
  FaultPlan fault_plan_;
  EventHook hook_;

  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_NETWORK_H_

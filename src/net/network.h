// Message-passing network over the discrete-event simulator.
//
// Models what the original Cologne used ns-3 for: UDP-style, per-link latency
// and (optional) loss, with per-node byte counters for the bandwidth
// measurements in Figure 5 of the paper.
#ifndef COLOGNE_NET_NETWORK_H_
#define COLOGNE_NET_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "net/simulator.h"

namespace cologne::net {

/// A tuple-delta message: table name + row + sign (+1 insert / -1 delete).
/// This is the only wire format the declarative networking engine needs.
struct Message {
  std::string table;
  Row row;
  int sign = 1;

  /// Approximate wire size: 20-byte UDP/IP-ish header + payload.
  size_t WireSize() const;
};

/// Per-link transmission parameters.
struct LinkConfig {
  double latency_s = 0.001;        ///< One-way propagation delay.
  double bandwidth_bps = 10e6;     ///< 10 Mbps, matching the paper's ns-3 setup.
  double drop_prob = 0.0;          ///< Probability a message is lost.
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// \brief A static topology of nodes and bidirectional links carrying
/// tuple-delta messages.
class Network {
 public:
  explicit Network(Simulator* sim, uint64_t seed = 1)
      : sim_(sim), rng_(seed) {}

  /// Add a node; ids are dense and returned in creation order.
  NodeId AddNode();
  size_t num_nodes() const { return receivers_.size(); }

  /// Add a bidirectional link between existing nodes a and b.
  Status AddLink(NodeId a, NodeId b, LinkConfig config = {});
  bool HasLink(NodeId a, NodeId b) const;
  /// Neighbors of `n`, sorted ascending.
  std::vector<NodeId> Neighbors(NodeId n) const;
  /// All (a, b) link pairs with a < b.
  std::vector<std::pair<NodeId, NodeId>> Links() const;

  /// Delivery callback: (from, to, message).
  using Receiver = std::function<void(NodeId, NodeId, const Message&)>;
  void SetReceiver(NodeId n, Receiver r);

  /// Send `msg` from `from` to neighbor `to`. Self-sends deliver with zero
  /// latency. Sends to non-neighbors fail (Cologne rules only ever
  /// communicate along links).
  Status Send(NodeId from, NodeId to, Message msg);

  const TrafficStats& StatsOf(NodeId n) const {
    return stats_[static_cast<size_t>(n)];
  }
  void ResetStats();

 private:
  struct Link {
    LinkConfig config;
  };
  Simulator* sim_;
  Rng rng_;
  std::vector<Receiver> receivers_;
  std::vector<TrafficStats> stats_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;  // key: (min, max)

  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_NETWORK_H_

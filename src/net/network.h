// Message-passing network over the discrete-event simulator.
//
// Models what the original Cologne used ns-3 for: UDP-style, per-link latency
// and (optional) loss, with per-node byte counters for the bandwidth
// measurements in Figure 5 of the paper. A FaultPlan (fault_plan.h) layers
// deterministic link flaps, partitions, and loss/duplication/reordering
// windows on top; every send/deliver/drop is observable through the event
// hook so runs can be traced and replayed bit-for-bit.
//
// Messages marked `reliable` are carried one of two ways:
//  * Legacy mode (default): the send skips drop faults and reorder jitter —
//    simulator magic, good enough for the orchestrated anti-entropy replay.
//  * Reliable transport mode (SetReliableTransport(true), the Colog
//    `param NET_RELIABLE` knob): the send rides the real retransmission /
//    FIFO protocol of net/reliable_channel.h and pays every fault like any
//    other packet; sequence numbers, cumulative acks and seeded-RTO
//    retransmission recover from loss, and delivery is in order per
//    directed link.
#ifndef COLOGNE_NET_NETWORK_H_
#define COLOGNE_NET_NETWORK_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "net/fault_plan.h"
#include "net/simulator.h"

namespace cologne::net {

class ReliableChannel;
struct ReliableConfig;

/// A tuple-delta message: table name + row + sign (+1 insert / -1 delete).
/// This is the only wire format the declarative networking engine needs.
struct Message {
  std::string table;
  Row row;
  int sign = 1;
  /// Sender incarnation (bumped when a node restarts after a crash); the
  /// runtime drops deliveries from stale incarnations.
  uint32_t epoch = 0;
  /// Virtual send time, stamped by Network::Send. Receivers that resynced
  /// at time T drop superseded ordinary messages sent at or before T: their
  /// content is already covered by the send-log replay.
  double sent_s = 0;
  /// Carried over the reliable channel. In legacy mode (reliable transport
  /// off) such sends skip drop faults and jitter; in reliable transport
  /// mode they are sequenced, retransmitted and delivered FIFO.
  bool reliable = false;
  /// Anti-entropy replay payload (crash-recovery / resync state replay),
  /// set by runtime::System. Replay content supersedes ordinary in-flight
  /// messages; the runtime's floor fencing keys off this flag.
  bool replay = false;
  /// Reliable-channel sequence number (0 = unsequenced datagram). For
  /// packets of table kAckTable this is the cumulative acknowledgement.
  uint64_t seq = 0;

  /// Approximate wire size: 20-byte UDP/IP-ish header + payload (+8 when
  /// sequenced by the reliable channel).
  size_t WireSize() const;
};

/// Per-link transmission parameters.
struct LinkConfig {
  double latency_s = 0.001;        ///< One-way propagation delay.
  double bandwidth_bps = 10e6;     ///< 10 Mbps, matching the paper's ns-3 setup.
  double drop_prob = 0.0;          ///< Probability a message is lost.
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_dropped = 0;   ///< In-flight losses, counted at the sender.
};

/// One observable network transition, surfaced through Network's event hook
/// (the runtime's TraceRecorder serializes these into the canonical trace).
struct NetEvent {
  enum class Kind { kSend, kDeliver, kDrop, kDup };
  Kind kind = Kind::kSend;
  double t = 0;
  NodeId from = 0;
  NodeId to = 0;
  const Message* msg = nullptr;
  /// Drop reason ("loss", "link_down", "partition", and with the reliable
  /// transport "dup_seq" / "rto_exhausted") or send/deliver detail
  /// ("replay" for anti-entropy payloads, "rto" / "fast_rto" for channel
  /// retransmissions, "ack" for acknowledgements, "dup" for fault-injected
  /// duplicates); may be empty.
  const char* detail = "";
};

/// \brief A static topology of nodes and bidirectional links carrying
/// tuple-delta messages.
class Network {
 public:
  explicit Network(Simulator* sim, uint64_t seed = 1);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a node; ids are dense and returned in creation order.
  NodeId AddNode();
  size_t num_nodes() const { return receivers_.size(); }

  /// Add a bidirectional link between existing nodes a and b.
  Status AddLink(NodeId a, NodeId b, LinkConfig config = {});
  bool HasLink(NodeId a, NodeId b) const;
  /// Neighbors of `n`, sorted ascending.
  std::vector<NodeId> Neighbors(NodeId n) const;
  /// All (a, b) link pairs with a < b.
  std::vector<std::pair<NodeId, NodeId>> Links() const;

  /// Delivery callback: (from, to, message).
  using Receiver = std::function<void(NodeId, NodeId, const Message&)>;
  void SetReceiver(NodeId n, Receiver r);

  /// Install a fault plan; link-level windows apply from the current virtual
  /// time on. Crash events are interpreted by runtime::System, not here.
  void SetFaultPlan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Observer for send/deliver/drop/duplicate transitions (tracing).
  using EventHook = std::function<void(const NetEvent&)>;
  void SetEventHook(EventHook hook) { hook_ = std::move(hook); }

  /// Route messages marked `reliable` through the real retransmission/FIFO
  /// protocol (net/reliable_channel.h) instead of the legacy fault-immunity
  /// shortcut. Runtime plumbing: System enables this when the program sets
  /// `param NET_RELIABLE = 1` (or System::Options::net_reliable).
  void SetReliableTransport(bool on) { reliable_transport_ = on; }
  bool reliable_transport() const { return reliable_transport_; }
  /// The channel state machines (protocol counters, per-link introspection).
  ReliableChannel& channel() { return *channel_; }
  const ReliableChannel& channel() const { return *channel_; }
  /// Replace the channel's protocol knobs (tests tighten RTOs and caps).
  void SetReliableConfig(const ReliableConfig& config);

  /// Send `msg` from `from` to neighbor `to`. Self-sends deliver with zero
  /// latency. Sends to non-neighbors fail (Cologne rules only ever
  /// communicate along links). Fault-plan drops return OK, like link loss.
  Status Send(NodeId from, NodeId to, Message msg);

  const TrafficStats& StatsOf(NodeId n) const {
    return stats_[static_cast<size_t>(n)];
  }
  void ResetStats();

  /// Sum of messages_dropped across all nodes.
  uint64_t TotalDropped() const;

 private:
  struct Link {
    LinkConfig config;
  };

  void Emit(NetEvent::Kind kind, NodeId from, NodeId to, const Message& msg,
            const char* detail);
  /// One wire transmission: fault evaluation, latency/serialization delay,
  /// then Arrive at the far end. Used for first sends, retransmissions and
  /// acks alike; `msg.sent_s` must already be stamped.
  void Transmit(NodeId from, NodeId to, Message msg, const char* detail);
  /// A packet reached `to`: account it, then either hand it to the reliable
  /// channel (sequenced data / acks) or deliver it to the runtime receiver.
  void Arrive(NodeId from, NodeId to, const Message& msg, size_t size,
              const char* detail);

  Simulator* sim_;
  Rng rng_;
  bool reliable_transport_ = false;
  std::unique_ptr<ReliableChannel> channel_;
  std::vector<Receiver> receivers_;
  std::vector<TrafficStats> stats_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;  // key: (min, max)
  FaultPlan fault_plan_;
  EventHook hook_;

  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_NETWORK_H_

#include "net/simulator.h"

#include <algorithm>

namespace cologne::net {

EventId Simulator::ScheduleAt(double time_s, Callback cb) {
  Event ev;
  ev.time = std::max(time_s, now_);
  ev.seq = next_seq_++;
  ev.id = ev.seq;
  callbacks_.emplace(ev.id, std::move(cb));
  queue_.push(ev);
  ++pending_;
  return ev.id;
}

void Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it != callbacks_.end()) {
    callbacks_.erase(it);
    --pending_;
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --pending_;
    now_ = ev.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(double t) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (callbacks_.find(ev.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (ev.time > t) break;
    Step();
  }
  now_ = std::max(now_, t);
}

}  // namespace cologne::net

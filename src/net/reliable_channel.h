// Reliable FIFO transport over the lossy datagram network.
//
// The original Cologne deployments (ACloud over ns-3, FTS on PlanetLab)
// assumed messaging that survives loss. This layer provides it as a real
// protocol rather than simulator magic: per-directed-link sender/receiver
// state machines with sequence numbers, cumulative acknowledgements,
// seeded-RTO retransmission with exponential backoff, fast retransmit on
// duplicate acks, receiver-side duplicate suppression, and in-order (FIFO)
// delivery through a reorder buffer. Data packets and acks both ride the
// underlying lossy network — they pay latency, bandwidth, loss, duplication
// and jitter like any other message; retransmission recovers.
//
// All timers and backoff jitter are driven by the discrete-event simulator
// and a seeded RNG, so runs remain bit-for-bit reproducible (the trace
// determinism contract of runtime/trace_replay.h).
#ifndef COLOGNE_NET_RELIABLE_CHANNEL_H_
#define COLOGNE_NET_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/rng.h"
#include "net/network.h"
#include "net/simulator.h"

namespace cologne::net {

/// Table name of acknowledgement control packets. Acks are consumed by the
/// channel and never reach the runtime; they appear in traces as ordinary
/// send/deliver events of this pseudo-table.
inline constexpr const char* kAckTable = "@ack";

/// Table name of skip control packets: when a sender abandons a payload
/// after max_attempts, it keeps the packet's sequence slot alive as a skip
/// marker (retransmitted and acked like data) so the receiver's FIFO
/// stream advances past the hole instead of wedging forever. Consumed by
/// the channel; delivers nothing to the runtime.
inline constexpr const char* kSkipTable = "@skip";

/// Protocol knobs. Defaults suit the simulated topologies (1 ms links):
/// the initial RTO comfortably exceeds one RTT, backoff covers multi-second
/// down windows, and the attempt cap bounds simulation time even against a
/// pathological permanent blackhole.
struct ReliableConfig {
  double rto_initial_s = 0.05;   ///< First retransmission timeout.
  double rto_backoff = 2.0;      ///< Multiplier applied per timer expiry.
  double rto_max_s = 2.0;        ///< Backoff ceiling.
  /// Seeded multiplicative jitter on each armed timeout (desynchronizes
  /// retransmission bursts across links, deterministically).
  double rto_jitter_frac = 0.1;
  int fast_retx_dup_acks = 3;    ///< Dup-ack threshold for fast retransmit.
  /// Give up on a payload after this many transmissions (safety valve:
  /// finite fault windows never exhaust it, but it bounds simulation time).
  /// The payload is dropped with reason "rto_exhausted" and its sequence
  /// slot degrades into a kSkipTable marker that keeps retransmitting (with
  /// its own attempt budget) so the receiver's FIFO stream advances past
  /// the hole once connectivity returns; only a truly permanent blackhole
  /// — where nothing flows anyway — also exhausts the skip and wedges the
  /// stream.
  int max_attempts = 64;
  /// Cap on buffered out-of-order packets per directed link; beyond it the
  /// newest arrival is discarded (a later retransmission re-delivers it).
  size_t max_reorder_buffer = 4096;
};

/// Aggregate protocol counters (across all links).
struct ChannelStats {
  uint64_t data_sent = 0;         ///< First transmissions of data packets.
  uint64_t retransmits = 0;       ///< RTO-driven retransmissions.
  uint64_t fast_retransmits = 0;  ///< Dup-ack-driven retransmissions.
  uint64_t acks_sent = 0;
  uint64_t dup_data = 0;          ///< Duplicate data suppressed at receivers.
  uint64_t reordered = 0;         ///< Arrivals buffered for FIFO reassembly.
  uint64_t gave_up = 0;           ///< Packets abandoned after max_attempts.
};

/// \brief Per-link reliable FIFO state machines (see file comment).
///
/// Owned by net::Network; not used directly by the runtime. The channel is
/// "NIC-level": its sequence state survives node crash/restart (the runtime
/// layers epoch fencing and journal replay on top).
class ReliableChannel {
 public:
  /// Raw transmission of one packet over the lossy network. `detail` tags
  /// the transmission for traces: "" (first send), "replay" (anti-entropy
  /// payload), "rto" / "fast_rto" (retransmissions), "ack".
  using TransmitFn =
      std::function<void(NodeId from, NodeId to, Message msg,
                         const char* detail)>;
  /// In-order delivery of a data packet to the runtime receiver.
  using DeliverFn =
      std::function<void(NodeId from, NodeId to, const Message& msg)>;
  /// Observable channel transition (duplicate suppression, give-up) for the
  /// trace hook; mirrors Network's Emit.
  using EmitFn = std::function<void(NetEvent::Kind kind, NodeId from,
                                    NodeId to, const Message& msg,
                                    const char* detail)>;

  ReliableChannel(Simulator* sim, uint64_t seed, ReliableConfig config = {})
      : sim_(sim), rng_(SplitMix64(seed ^ 0x52454C49ull)), config_(config) {}

  void SetTransmit(TransmitFn fn) { transmit_ = std::move(fn); }
  void SetDeliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void SetEmit(EmitFn fn) { emit_ = std::move(fn); }
  void set_config(const ReliableConfig& config) { config_ = config; }
  const ReliableConfig& config() const { return config_; }

  /// Sequence `msg` on the (from, to) stream, remember it for
  /// retransmission, and transmit. `msg.seq` must be 0 (unsequenced).
  void Send(NodeId from, NodeId to, Message msg);

  /// Handle the arrival of a sequenced data packet (`msg.seq > 0`) or an
  /// ack (`msg.table == kAckTable`) at `to`. In-order data — including any
  /// buffered successors it releases — is handed to the DeliverFn; every
  /// data arrival triggers a cumulative ack back to `from`.
  void OnArrival(NodeId from, NodeId to, const Message& msg);

  const ChannelStats& stats() const { return stats_; }

  /// Introspection for tests: sender/receiver state of one directed link.
  struct LinkState {
    uint64_t next_seq = 1;        ///< Sender: next sequence number to assign.
    uint64_t acked = 0;           ///< Sender: cumulative ack received.
    size_t in_flight = 0;         ///< Sender: unacknowledged packets.
    uint64_t delivered = 0;       ///< Receiver: cumulative in-order seq.
    size_t reorder_buffered = 0;  ///< Receiver: packets awaiting a gap fill.
  };
  LinkState StateOf(NodeId from, NodeId to) const;

 private:
  struct Pending {
    Message msg;
    int attempts = 0;
  };
  struct SenderState {
    uint64_t next_seq = 1;
    uint64_t acked = 0;
    int dup_acks = 0;
    double rto_s = 0;             ///< Current (backed-off) timeout.
    EventId timer = 0;
    bool timer_armed = false;
    std::map<uint64_t, Pending> window;  // seq -> unacked packet
  };
  struct ReceiverState {
    uint64_t delivered = 0;
    std::map<uint64_t, Message> reorder;  // seq -> buffered packet
  };
  using LinkKey = std::pair<NodeId, NodeId>;  // directed (from, to)

  void ArmTimer(const LinkKey& key, SenderState& ss);
  void CancelTimer(SenderState& ss);
  void OnTimer(const LinkKey& key);
  /// Retransmit the lowest unacked packet of `ss` (or give it up once its
  /// attempt budget is spent). Returns false when the window is empty.
  bool RetransmitOldest(const LinkKey& key, SenderState& ss,
                        const char* detail);
  void OnAck(const LinkKey& key, const Message& msg);
  void OnData(const LinkKey& key, const Message& msg);
  void SendAck(NodeId from, NodeId to, uint64_t cumulative);

  Simulator* sim_;
  Rng rng_;
  ReliableConfig config_;
  TransmitFn transmit_;
  DeliverFn deliver_;
  EmitFn emit_;
  ChannelStats stats_;
  std::map<LinkKey, SenderState> senders_;
  std::map<LinkKey, ReceiverState> receivers_;
};

}  // namespace cologne::net

#endif  // COLOGNE_NET_RELIABLE_CHANNEL_H_

#include "net/reliable_channel.h"

#include <algorithm>

namespace cologne::net {

void ReliableChannel::Send(NodeId from, NodeId to, Message msg) {
  LinkKey key{from, to};
  SenderState& ss = senders_[key];
  if (ss.rto_s == 0) ss.rto_s = config_.rto_initial_s;
  msg.seq = ss.next_seq++;
  Pending p;
  p.msg = msg;
  p.attempts = 1;
  const char* detail = msg.replay ? "replay" : "";
  ss.window.emplace(msg.seq, std::move(p));
  ++stats_.data_sent;
  transmit_(from, to, std::move(msg), detail);
  if (!ss.timer_armed) ArmTimer(key, ss);
}

void ReliableChannel::ArmTimer(const LinkKey& key, SenderState& ss) {
  // Seeded multiplicative jitter desynchronizes retransmission bursts across
  // links while staying deterministic (drawn in simulator-event order).
  double rto = ss.rto_s * (1.0 + config_.rto_jitter_frac * rng_.UniformDouble());
  ss.timer = sim_->Schedule(rto, [this, key] { OnTimer(key); });
  ss.timer_armed = true;
}

void ReliableChannel::CancelTimer(SenderState& ss) {
  if (ss.timer_armed) {
    sim_->Cancel(ss.timer);
    ss.timer_armed = false;
  }
}

bool ReliableChannel::RetransmitOldest(const LinkKey& key, SenderState& ss,
                                       const char* detail) {
  while (!ss.window.empty()) {
    auto it = ss.window.begin();
    Pending& p = it->second;
    if (p.attempts >= config_.max_attempts) {
      // Safety valve: abandon the payload so simulations terminate even
      // against a permanent blackhole. Finite fault windows never get
      // here. The sequence slot must not just vanish — the receiver's
      // FIFO stream would wedge on the hole forever — so it degrades into
      // a skip marker with a fresh attempt budget; once the marker (or a
      // later duplicate of it) gets through, the stream resynchronizes.
      // A skip that itself exhausts its budget is truly unreachable:
      // erase it (nothing flows on such a link anyway).
      if (p.msg.table == kSkipTable) {
        // The marker's budget counts toward the stream teardown, not
        // another abandoned payload.
        ss.window.erase(it);
        continue;
      }
      ++stats_.gave_up;
      if (emit_) {
        emit_(NetEvent::Kind::kDrop, key.first, key.second, p.msg,
              "rto_exhausted");
      }
      uint64_t seq = p.msg.seq;
      p.msg = Message{};
      p.msg.table = kSkipTable;
      p.msg.seq = seq;
      p.msg.reliable = true;
      p.attempts = 0;
    }
    ++p.attempts;
    transmit_(key.first, key.second, p.msg, detail);
    return true;
  }
  return false;
}

void ReliableChannel::OnTimer(const LinkKey& key) {
  SenderState& ss = senders_[key];
  ss.timer_armed = false;
  if (ss.window.empty()) return;
  if (!RetransmitOldest(key, ss, "rto")) return;  // everything gave up
  ++stats_.retransmits;  // counted only when something actually went out
  ss.rto_s = std::min(ss.rto_s * config_.rto_backoff, config_.rto_max_s);
  ArmTimer(key, ss);
}

void ReliableChannel::SendAck(NodeId from, NodeId to, uint64_t cumulative) {
  // Acks are plain datagrams: never sequenced, never retransmitted (a lost
  // ack is repaired by the data retransmission it would have suppressed).
  Message ack;
  ack.table = kAckTable;
  ack.seq = cumulative;
  ++stats_.acks_sent;
  transmit_(from, to, std::move(ack), "ack");
}

void ReliableChannel::OnArrival(NodeId from, NodeId to, const Message& msg) {
  if (msg.table == kAckTable) {
    // An ack travels from the data receiver back to the data sender, so the
    // stream it acknowledges is (to -> from).
    OnAck(LinkKey{to, from}, msg);
    return;
  }
  OnData(LinkKey{from, to}, msg);
}

void ReliableChannel::OnAck(const LinkKey& key, const Message& msg) {
  auto sit = senders_.find(key);
  if (sit == senders_.end()) return;  // stray ack for an unknown stream
  SenderState& ss = sit->second;
  uint64_t a = msg.seq;
  if (a > ss.acked) {
    // Progress: slide the window, reset backoff, restart the timer for
    // whatever is still outstanding.
    ss.acked = a;
    ss.dup_acks = 0;
    ss.window.erase(ss.window.begin(), ss.window.upper_bound(a));
    ss.rto_s = config_.rto_initial_s;
    CancelTimer(ss);
    if (!ss.window.empty()) ArmTimer(key, ss);
    return;
  }
  if (a == ss.acked && !ss.window.empty()) {
    // Duplicate cumulative ack: the receiver saw something beyond a gap.
    if (++ss.dup_acks >= config_.fast_retx_dup_acks) {
      ss.dup_acks = 0;
      ++stats_.fast_retransmits;
      RetransmitOldest(key, ss, "fast_rto");
    }
  }
}

void ReliableChannel::OnData(const LinkKey& key, const Message& msg) {
  ReceiverState& rs = receivers_[key];
  const NodeId from = key.first, to = key.second;
  if (msg.seq <= rs.delivered) {
    // Already delivered (network duplication or a retransmission racing its
    // ack): suppress, but re-ack in case the previous ack was lost.
    ++stats_.dup_data;
    if (emit_) emit_(NetEvent::Kind::kDrop, from, to, msg, "dup_seq");
    SendAck(to, from, rs.delivered);
    return;
  }
  if (msg.seq == rs.delivered + 1) {
    // In order: deliver, then drain any buffered successors (FIFO
    // release). Skip markers advance the stream without delivering — the
    // sender abandoned that payload.
    rs.delivered = msg.seq;
    if (msg.table != kSkipTable) deliver_(from, to, msg);
    auto it = rs.reorder.begin();
    while (it != rs.reorder.end() && it->first == rs.delivered + 1) {
      rs.delivered = it->first;
      Message next = std::move(it->second);
      it = rs.reorder.erase(it);
      if (next.table != kSkipTable) deliver_(from, to, next);
    }
    SendAck(to, from, rs.delivered);
    return;
  }
  // A gap: buffer for reassembly and emit a duplicate ack so the sender can
  // fast-retransmit the missing packet.
  if (rs.reorder.count(msg.seq)) {
    ++stats_.dup_data;
    if (emit_) emit_(NetEvent::Kind::kDrop, from, to, msg, "dup_seq");
  } else if (rs.reorder.size() < config_.max_reorder_buffer) {
    rs.reorder.emplace(msg.seq, msg);
    ++stats_.reordered;
  }
  // else: buffer full; the retransmission path re-delivers it later.
  SendAck(to, from, rs.delivered);
}

ReliableChannel::LinkState ReliableChannel::StateOf(NodeId from,
                                                    NodeId to) const {
  LinkState out;
  auto sit = senders_.find({from, to});
  if (sit != senders_.end()) {
    out.next_seq = sit->second.next_seq;
    out.acked = sit->second.acked;
    out.in_flight = sit->second.window.size();
  }
  auto rit = receivers_.find({from, to});
  if (rit != receivers_.end()) {
    out.delivered = rit->second.delivered;
    out.reorder_buffered = rit->second.reorder.size();
  }
  return out;
}

}  // namespace cologne::net

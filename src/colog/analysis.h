// Static analysis of Colog programs (paper Sections 5.2 and 5.5):
//  * localization rewrite of rules whose bodies span multiple locations,
//  * solver-attribute inference (fixpoint from `var` declarations),
//  * rule classification into regular Datalog / solver derivation /
//    solver constraint / post-solve rules,
//  * table schema inference and safety checks.
#ifndef COLOGNE_COLOG_ANALYSIS_H_
#define COLOGNE_COLOG_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "colog/ast.h"
#include "common/status.h"
#include "datalog/table.h"

namespace cologne::colog {

/// How a rule executes (paper Section 5.2, with one refinement — see below).
enum class RuleClass : uint8_t {
  kRegular,           ///< Plain Datalog; evaluated continuously by the engine.
  kSolverDerivation,  ///< Evaluated by the solver bridge at invokeSolver time.
  kSolverConstraint,  ///< `->` rule; posts hard constraints at solve time.
  kPostSolve,         ///< References solver tables but reads their
                      ///< *materialized* (post-optimization) contents; runs in
                      ///< the engine like a regular rule. The paper's
                      ///< Follow-the-Sun r2/r3 are the canonical examples.
};

/// Classification refinement implemented here (the paper's Section 5.2
/// description alone would mis-classify its own r2/r3): a `<-` rule is
/// post-solve rather than a solver derivation when (a) its head is a `var`
/// table (solver outputs are only *written back*, never derived), or (b) it
/// computes `:=` assignments over solver-table attributes — `:=` evaluates
/// concrete values, so such rules necessarily read materialized output.
const char* RuleClassName(RuleClass c);

/// A rule after rewriting + classification.
struct AnalyzedRule {
  SrcRule rule;
  RuleClass cls = RuleClass::kRegular;
};

/// Analysis result consumed by the planner.
struct AnalyzedProgram {
  std::vector<AnalyzedRule> rules;   ///< Post-localization.
  std::vector<GoalDecl> goals;
  std::vector<VarDeclStmt> var_decls;
  std::map<std::string, datalog::TableSchema> tables;
  /// table -> solver-attribute positions (nonempty = solver table).
  std::map<std::string, std::set<int>> solver_cols;
  std::map<std::string, Value> params;
  std::set<std::string> var_tables;
  bool distributed = false;          ///< Any location specifier present.
  size_t localized_rules = 0;        ///< Rules split by the rewrite.
};

/// Run the full analysis. `extra_params` supplies/overrides `param` values
/// (e.g. max_migrates) at compile time.
Result<AnalyzedProgram> Analyze(const Program& program,
                                const std::map<std::string, Value>& extra_params);

/// The localization rewrite alone (exposed for tests): split every rule whose
/// body atoms carry more than one distinct location variable into a shipping
/// rule (tmp_<label>) plus a local rule, exactly as the paper rewrites d2
/// into d21/d22. `counter` seeds tmp-table numbering.
Result<std::vector<SrcRule>> LocalizeRules(const std::vector<SrcRule>& rules,
                                           size_t* rewritten_count);

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_ANALYSIS_H_

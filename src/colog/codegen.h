// C++ code generation from compiled Colog programs.
//
// The original Cologne compiled Colog into RapidNet + Gecode C++ (Table 2
// compares Colog rule counts against generated-code size at roughly 100x).
// This generator emits the equivalent imperative implementation against this
// repository's runtime API: tuple structs per table, delta-join handlers per
// engine rule, and constraint-posting functions per solver rule.
#ifndef COLOGNE_COLOG_CODEGEN_H_
#define COLOGNE_COLOG_CODEGEN_H_

#include <string>

#include "colog/planner.h"

namespace cologne::colog {

/// Emit the full generated C++ translation unit for `program`.
/// `unit_name` names the generated namespace/class prefix.
std::string GenerateCpp(const CompiledProgram& program,
                        const std::string& unit_name);

/// Count source lines of code the way the paper did (sloccount: physical
/// lines excluding blanks and pure comments).
size_t CountSloc(const std::string& source);

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_CODEGEN_H_

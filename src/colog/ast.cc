#include "colog/ast.h"

namespace cologne::colog {

SrcExpr SrcExpr::Const(Value v) {
  SrcExpr e;
  e.kind = Kind::kConst;
  e.const_val = std::move(v);
  return e;
}
SrcExpr SrcExpr::Var(std::string n) {
  SrcExpr e;
  e.kind = Kind::kVar;
  e.name = std::move(n);
  return e;
}
SrcExpr SrcExpr::Param(std::string n) {
  SrcExpr e;
  e.kind = Kind::kParam;
  e.name = std::move(n);
  return e;
}
SrcExpr SrcExpr::Unary(datalog::ExprOp op, SrcExpr a) {
  SrcExpr e;
  e.kind = Kind::kUnary;
  e.op = op;
  e.kids.push_back(std::move(a));
  return e;
}
SrcExpr SrcExpr::Binary(datalog::ExprOp op, SrcExpr a, SrcExpr b) {
  SrcExpr e;
  e.kind = Kind::kBinary;
  e.op = op;
  e.kids.push_back(std::move(a));
  e.kids.push_back(std::move(b));
  return e;
}

void SrcExpr::CollectVars(std::vector<std::string>* out) const {
  if (kind == Kind::kVar) out->push_back(name);
  for (const SrcExpr& k : kids) k.CollectVars(out);
}

namespace {
const char* SrcOpName(datalog::ExprOp op) {
  using datalog::ExprOp;
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    default: return "?";
  }
}
}  // namespace

std::string SrcExpr::ToString() const {
  switch (kind) {
    case Kind::kConst: {
      if (const_val.is_string()) return const_val.ToString();
      return const_val.ToString();
    }
    case Kind::kVar:
    case Kind::kParam:
      return name;
    case Kind::kUnary:
      if (op == datalog::ExprOp::kAbs) return "|" + kids[0].ToString() + "|";
      if (op == datalog::ExprOp::kNot) return "!" + kids[0].ToString();
      return "-" + kids[0].ToString();
    case Kind::kBinary:
      return "(" + kids[0].ToString() + SrcOpName(op) + kids[1].ToString() + ")";
  }
  return "?";
}

int SrcAtom::LocArg() const {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].loc) return static_cast<int>(i);
  }
  return -1;
}

std::string SrcAtom::ToString() const {
  std::string out = pred + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    if (args[i].loc) out += "@";
    if (args[i].is_aggregate()) {
      out += std::string(datalog::AggKindName(args[i].agg)) + "<" +
             args[i].agg_var + ">";
    } else {
      out += args[i].expr.ToString();
    }
  }
  return out + ")";
}

std::string SrcRule::ToString() const {
  std::string out = label.empty() ? "" : label + " ";
  out += head.ToString();
  out += is_constraint ? " -> " : " <- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) out += ", ";
    switch (body[i].kind) {
      case SrcBodyElem::Kind::kAtom:
        out += body[i].atom.ToString();
        break;
      case SrcBodyElem::Kind::kCond:
        out += body[i].expr.ToString();
        break;
      case SrcBodyElem::Kind::kAssign:
        out += body[i].assign_var + " := " + body[i].expr.ToString();
        break;
    }
  }
  return out + ".";
}

}  // namespace cologne::colog

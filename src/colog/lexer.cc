#include "colog/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace cologne::colog {

const char* TokKindName(TokKind k) {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kVariable: return "variable";
    case TokKind::kInt: return "integer";
    case TokKind::kDouble: return "double";
    case TokKind::kString: return "string";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kDot: return "'.'";
    case TokKind::kAt: return "'@'";
    case TokKind::kBar: return "'|'";
    case TokKind::kLeftArrow: return "'<-'";
    case TokKind::kRightArrow: return "'->'";
    case TokKind::kAssign: return "':='";
    case TokKind::kEqualSign: return "'='";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kBang: return "'!'";
    case TokKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto peek = [&](size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };
  auto push = [&](TokKind k, std::string text = "") {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Identifiers / variables.
    if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      std::string text = src.substr(start, i - start);
      bool upper = isupper(static_cast<unsigned char>(text[0])) != 0;
      push(upper ? TokKind::kVariable : TokKind::kIdent, std::move(text));
      continue;
    }
    // Numbers. A '.' is part of the number only when followed by a digit,
    // so statement-terminating dots lex separately.
    if (isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && isdigit(static_cast<unsigned char>(src[i]))) ++i;
      bool is_double = false;
      if (i < n && src[i] == '.' && i + 1 < n &&
          isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      std::string text = src.substr(start, i - start);
      Token t;
      t.kind = is_double ? TokKind::kDouble : TokKind::kInt;
      t.literal = is_double ? Value::Double(atof(text.c_str()))
                            : Value::Int(atoll(text.c_str()));
      t.text = std::move(text);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      size_t start = ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        return Status::ParseError(
            StrFormat("line %d: unterminated string literal", line));
      }
      Token t;
      t.kind = TokKind::kString;
      t.literal = Value::Str(src.substr(start, i - start));
      t.line = line;
      out.push_back(std::move(t));
      ++i;  // closing quote
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(': push(TokKind::kLParen); ++i; continue;
      case ')': push(TokKind::kRParen); ++i; continue;
      case '[': push(TokKind::kLBracket); ++i; continue;
      case ']': push(TokKind::kRBracket); ++i; continue;
      case ',': push(TokKind::kComma); ++i; continue;
      case '.': push(TokKind::kDot); ++i; continue;
      case '@': push(TokKind::kAt); ++i; continue;
      case '+': push(TokKind::kPlus); ++i; continue;
      case '*': push(TokKind::kStar); ++i; continue;
      case '/': push(TokKind::kSlash); ++i; continue;
      case '%': push(TokKind::kPercent); ++i; continue;
      case '-':
        if (peek(1) == '>') {
          push(TokKind::kRightArrow);
          i += 2;
        } else {
          push(TokKind::kMinus);
          ++i;
        }
        continue;
      case '<':
        if (peek(1) == '-') {
          push(TokKind::kLeftArrow);
          i += 2;
        } else if (peek(1) == '=') {
          push(TokKind::kLe);
          i += 2;
        } else {
          push(TokKind::kLt);
          ++i;
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          push(TokKind::kGe);
          i += 2;
        } else {
          push(TokKind::kGt);
          ++i;
        }
        continue;
      case '=':
        if (peek(1) == '=') {
          push(TokKind::kEq);
          i += 2;
        } else {
          push(TokKind::kEqualSign);
          ++i;
        }
        continue;
      case '!':
        if (peek(1) == '=') {
          push(TokKind::kNe);
          i += 2;
        } else {
          push(TokKind::kBang);
          ++i;
        }
        continue;
      case ':':
        if (peek(1) == '=') {
          push(TokKind::kAssign);
          i += 2;
          continue;
        }
        return Status::ParseError(StrFormat("line %d: stray ':'", line));
      case '&':
        if (peek(1) == '&') {
          push(TokKind::kAndAnd);
          i += 2;
          continue;
        }
        return Status::ParseError(StrFormat("line %d: stray '&'", line));
      case '|':
        if (peek(1) == '|') {
          push(TokKind::kOrOr);
          i += 2;
        } else {
          push(TokKind::kBar);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            StrFormat("line %d: unexpected character '%c'", line, c));
    }
  }
  push(TokKind::kEof);
  return out;
}

bool IsSolverKnobName(const std::string& name) {
  return name == "SOLVER_MAX_TIME" || name == "SOLVER_BACKEND" ||
         name == "SOLVER_SEED" || name == "SOLVER_RESTARTS" ||
         name == "SOLVER_WORKERS" || name == "SOLVER_INCREMENTAL" ||
         name == "SOLVER_INCR_THRESHOLD" || name == "SOLVER_CACHE" ||
         name == "SOLVER_SUBPROBLEMS" || name == "SOLVER_NAIVE_PROPAGATION" ||
         name == "NET_RELIABLE" || name == "OBS_METRICS";
}

}  // namespace cologne::colog

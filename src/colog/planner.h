// Execution-plan generation (paper Section 5): lowers analyzed Colog rules to
// the Datalog engine's RuleIR, and packages the solver-side rules, variable
// declarations and goal for the runtime's solver bridge.
#ifndef COLOGNE_COLOG_PLANNER_H_
#define COLOGNE_COLOG_PLANNER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "colog/analysis.h"
#include "colog/ast.h"
#include "common/status.h"
#include "datalog/rule.h"
#include "datalog/table.h"

namespace cologne::colog {

/// A solver-side rule in executable form. Derivation rules run bottom-up at
/// invokeSolver time building the constraint network; constraint rules post
/// hard constraints over existing solver rows.
struct SolverRuleIR {
  datalog::RuleIR ir;
  bool is_constraint = false;
  std::string source;  ///< Original Colog text (diagnostics).
};

/// Executable form of `var T(...) forall F(...) domain [lo,hi]`.
struct VarDeclIR {
  std::string var_table;
  std::string forall_table;
  /// For each var-table column: the forall-table column supplying it, or -1
  /// for solver-variable columns.
  std::vector<int> from_forall_col;
  int64_t dom_lo = 0;
  int64_t dom_hi = 1;
};

/// Executable goal: optimize `col` of `table`.
struct GoalIR {
  bool present = false;
  GoalType type = GoalType::kSatisfy;
  std::string table;
  int col = -1;
};

/// Typed solver knobs extracted from reserved `param SOLVER_*` declarations
/// (the paper's SOLVER_MAX_TIME, Section 4.2, plus this implementation's
/// search-backend knobs). Unset optionals leave the runtime defaults alone.
struct SolverKnobsIR {
  /// SOLVER_MAX_TIME: per-solve wall-clock budget in milliseconds.
  std::optional<double> max_time_ms;
  /// SOLVER_BACKEND: "bnb" (branch-and-bound), "lns", "portfolio",
  /// "parallel_lns", or "local_search".
  std::optional<std::string> backend;
  /// SOLVER_SEED: seed for randomized search decisions.
  std::optional<uint64_t> seed;
  /// SOLVER_RESTARTS: Luby restart base (nodes) for the B&B backend.
  std::optional<uint64_t> restart_base_nodes;
  /// SOLVER_WORKERS: worker threads for the concurrent backends (portfolio /
  /// parallel_lns); 1..256.
  std::optional<uint64_t> workers;
  /// NET_RELIABLE: carry every engine-derived tuple over the retransmission
  /// / FIFO reliable transport (net/reliable_channel.h) instead of the
  /// UDP-style datagram path. 0 or 1.
  std::optional<bool> net_reliable;
  /// OBS_METRICS: deterministic observability — the runtime metrics
  /// registry, per-round `metrics` trace snapshots, and per-group solve
  /// provenance in `solve` trace events. 0 or 1.
  std::optional<bool> obs_metrics;
  /// SOLVER_INCREMENTAL: incremental re-solve on fact deltas — fingerprint
  /// the compiled model per decision group, pin clean groups to the
  /// previous incumbent and focus search on the dirty ones. 0 or 1.
  std::optional<bool> incremental;
  /// SOLVER_INCR_THRESHOLD: staleness threshold of the incremental path —
  /// fall back to a cold solve when strictly more than this percentage of
  /// decision groups changed fingerprint. 0..100.
  std::optional<uint64_t> incr_threshold_pct;
  /// SOLVER_CACHE: context cache of exhausted-subtree proofs, keyed on the
  /// fixed decision prefix and namespaced by the model fingerprint, persisted
  /// across solves of one Instance. 0 or 1.
  std::optional<bool> cache;
  /// SOLVER_SUBPROBLEMS: subproblem-parallel B&B for the concurrent backends
  /// — expand the root into about this many bounded subproblems and let
  /// workers steal them from a shared queue. 0 (off) .. 4096.
  std::optional<uint64_t> subproblems;
  /// SOLVER_NAIVE_PROPAGATION: run the propagation engine in its legacy
  /// untyped-FIFO reference mode (no event masks, no incremental sums, no
  /// entailment unsubscription). Search trees are unchanged; propagator
  /// effort metrics revert to the historical counts. 0 or 1.
  std::optional<bool> naive_propagation;
};

/// Per-class rule counts (reported by the Table 2 benchmark).
struct RuleCounts {
  size_t regular = 0;
  size_t solver_derivation = 0;
  size_t solver_constraint = 0;
  size_t post_solve = 0;
  size_t goal_and_var = 0;
  size_t total() const {
    return regular + solver_derivation + solver_constraint + post_solve +
           goal_and_var;
  }
};

/// \brief A fully compiled Colog program, ready to instantiate on nodes.
struct CompiledProgram {
  std::map<std::string, datalog::TableSchema> tables;
  std::vector<datalog::RuleIR> engine_rules;    ///< regular + post-solve.
  std::vector<SolverRuleIR> solver_rules;       ///< derivations (topo-sorted),
                                                ///< then constraints.
  std::vector<VarDeclIR> var_decls;
  GoalIR goal;
  /// table -> sorted solver-attribute positions.
  std::map<std::string, std::vector<int>> solver_cols;
  std::set<std::string> var_tables;
  /// Tables written by the solver bridge after each solve (var tables,
  /// derived solver tables, goal table).
  std::set<std::string> solver_output_tables;
  /// Input tables: never derived by any rule or writeback.
  std::set<std::string> base_tables;
  std::map<std::string, Value> params;
  SolverKnobsIR knobs;
  bool distributed = false;
  RuleCounts counts;

  bool IsSolverCol(const std::string& table, int col) const;
};

/// Lower an analyzed program into executable form.
Result<CompiledProgram> Plan(const AnalyzedProgram& analyzed);

/// One-stop compile: parse + analyze + plan.
Result<CompiledProgram> CompileColog(
    const std::string& source,
    const std::map<std::string, Value>& params = {});

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_PLANNER_H_

// Tokenizer for Colog source.
#ifndef COLOGNE_COLOG_LEXER_H_
#define COLOGNE_COLOG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace cologne::colog {

/// Token categories. Lexing notes:
///  * `<-` lexes as kLeftArrow only when '<' is immediately followed by '-';
///    write `X < -2` (with a space) for "less than negative two".
///  * Lowercase-initial identifiers are kIdent (predicates, parameters,
///    keywords); uppercase-initial are kVariable (rule variables and
///    aggregate keywords such as SUM, which the parser special-cases).
enum class TokKind : uint8_t {
  kIdent,      // lowercase identifier
  kVariable,   // Uppercase identifier
  kInt,
  kDouble,
  kString,
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kDot,        // .
  kAt,         // @
  kBar,        // |
  kLeftArrow,  // <-
  kRightArrow, // ->
  kAssign,     // :=
  kEqualSign,  // =
  kEq,         // ==
  kNe,         // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kPercent,    // %
  kAndAnd,     // &&
  kOrOr,       // ||
  kBang,       // !
  kEof,
};

/// One lexed token.
struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;   ///< Identifier / variable spelling.
  Value literal;      ///< kInt / kDouble / kString payload.
  int line = 0;

  bool is(TokKind k) const { return kind == k; }
  /// True for a kIdent with exactly this spelling (keyword check).
  bool IsKeyword(const char* kw) const {
    return kind == TokKind::kIdent && text == kw;
  }
};

/// Tokenize `source`. Comments: `//` and `#` to end of line.
Result<std::vector<Token>> Lex(const std::string& source);

/// True for the reserved runtime-knob names accepted in `param` declarations
/// (SOLVER_MAX_TIME, SOLVER_BACKEND, SOLVER_SEED, SOLVER_RESTARTS,
/// SOLVER_WORKERS, NET_RELIABLE, OBS_METRICS). They lex as kVariable like
/// any ALL-CAPS identifier, but the parser requires them to carry a literal
/// value and the
/// planner consumes them into CompiledProgram::knobs instead of the
/// rule-level parameter map.
bool IsSolverKnobName(const std::string& name);

/// Human-readable token-kind name for diagnostics.
const char* TokKindName(TokKind k);

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_LEXER_H_

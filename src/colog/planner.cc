#include "colog/planner.h"

#include <algorithm>

#include "colog/lexer.h"
#include "colog/parser.h"
#include "common/strings.h"
#include "solver/types.h"

namespace cologne::colog {

namespace {

using datalog::AssignIR;
using datalog::AtomIR;
using datalog::Expr;
using datalog::RuleIR;
using datalog::SelIR;
using datalog::TermIR;

// Location variable of an atom ("" if none).
std::string LocVarOf(const SrcAtom& atom) {
  int i = atom.LocArg();
  if (i < 0) return "";
  const SrcArg& arg = atom.args[static_cast<size_t>(i)];
  if (arg.is_aggregate() || !arg.expr.IsVar()) return "";
  return arg.expr.name;
}

class RuleLowerer {
 public:
  RuleLowerer(const SrcRule& rule, const std::map<std::string, Value>& params)
      : rule_(rule), params_(params) {}

  Result<RuleIR> Lower() {
    RuleIR ir;
    ir.label = rule_.label;

    // Body first so body-bound variables get slots before head use.
    for (const SrcBodyElem& e : rule_.body) {
      switch (e.kind) {
        case SrcBodyElem::Kind::kAtom: {
          COLOGNE_ASSIGN_OR_RETURN(atom, LowerBodyAtom(e.atom, &ir));
          ir.body.push_back(std::move(atom));
          break;
        }
        case SrcBodyElem::Kind::kCond: {
          COLOGNE_ASSIGN_OR_RETURN(ex, LowerExpr(e.expr));
          ir.sels.push_back(SelIR{std::move(ex)});
          break;
        }
        case SrcBodyElem::Kind::kAssign: {
          COLOGNE_ASSIGN_OR_RETURN(ex, LowerExpr(e.expr));
          ir.assigns.push_back(AssignIR{SlotOf(e.assign_var), std::move(ex)});
          break;
        }
      }
    }

    // Head.
    ir.head.table = rule_.head.pred;
    for (size_t i = 0; i < rule_.head.args.size(); ++i) {
      const SrcArg& arg = rule_.head.args[i];
      if (arg.is_aggregate()) {
        if (ir.agg) {
          return Status(Status::PlanError(
              "rule " + rule_.label + ": multiple aggregates in head"));
        }
        datalog::AggIR agg;
        agg.kind = arg.agg;
        agg.arg_index = static_cast<int>(i);
        agg.value_slot = SlotOf(arg.agg_var);
        ir.agg = agg;
        ir.head.args.push_back(TermIR::Slot(agg.value_slot));
        continue;
      }
      COLOGNE_ASSIGN_OR_RETURN(term, LowerHeadArg(arg.expr, &ir));
      ir.head.args.push_back(std::move(term));
    }

    // Trigger flags: suppress self-update atoms (same table, same location).
    std::string head_loc = LocVarOf(rule_.head);
    size_t ai = 0;
    for (const SrcBodyElem& e : rule_.body) {
      if (e.kind != SrcBodyElem::Kind::kAtom) continue;
      bool trig = true;
      if (e.atom.pred == rule_.head.pred && LocVarOf(e.atom) == head_loc) {
        trig = false;
      }
      ir.trigger.push_back(trig ? 1 : 0);
      ++ai;
    }
    (void)ai;
    ir.num_slots = next_slot_;
    return ir;
  }

 private:
  int SlotOf(const std::string& var) {
    auto it = slots_.find(var);
    if (it != slots_.end()) return it->second;
    int s = next_slot_++;
    slots_.emplace(var, s);
    return s;
  }

  Result<Expr> LowerExpr(const SrcExpr& e) {
    switch (e.kind) {
      case SrcExpr::Kind::kConst:
        return Expr::Const(e.const_val);
      case SrcExpr::Kind::kVar:
        return Expr::Slot(SlotOf(e.name));
      case SrcExpr::Kind::kParam: {
        auto it = params_.find(e.name);
        if (it == params_.end()) {
          return Status(Status::PlanError(
              "rule " + rule_.label + ": unknown parameter '" + e.name +
              "' (declare it with `param` or supply a value at compile time)"));
        }
        return Expr::Const(it->second);
      }
      case SrcExpr::Kind::kUnary: {
        COLOGNE_ASSIGN_OR_RETURN(a, LowerExpr(e.kids[0]));
        return Expr::Unary(e.op, std::move(a));
      }
      case SrcExpr::Kind::kBinary: {
        COLOGNE_ASSIGN_OR_RETURN(a, LowerExpr(e.kids[0]));
        COLOGNE_ASSIGN_OR_RETURN(b, LowerExpr(e.kids[1]));
        return Expr::Binary(e.op, std::move(a), std::move(b));
      }
    }
    return Status(Status::PlanError("bad expression"));
  }

  // Fold an expression with no slot references to a constant.
  static bool TryConstFold(const Expr& e, Value* out) {
    std::vector<int> slots;
    e.CollectSlots(&slots);
    if (!slots.empty()) return false;
    Result<Value> r = datalog::EvalExpr(e, {});
    if (!r.ok()) return false;
    *out = r.value();
    return true;
  }

  Result<AtomIR> LowerBodyAtom(const SrcAtom& atom, RuleIR* ir) {
    AtomIR out;
    out.table = atom.pred;
    for (const SrcArg& arg : atom.args) {
      if (arg.is_aggregate()) {
        return Status(Status::PlanError(
            "rule " + rule_.label + ": aggregate in body atom " + atom.pred));
      }
      if (arg.expr.IsVar()) {
        out.args.push_back(TermIR::Slot(SlotOf(arg.expr.name)));
        continue;
      }
      COLOGNE_ASSIGN_OR_RETURN(ex, LowerExpr(arg.expr));
      Value folded;
      if (TryConstFold(ex, &folded)) {
        out.args.push_back(TermIR::Const(std::move(folded)));
        continue;
      }
      // General expression argument: bind a hidden slot and test equality.
      int s = next_slot_++;
      out.args.push_back(TermIR::Slot(s));
      ir->sels.push_back(
          SelIR{Expr::Binary(datalog::ExprOp::kEq, Expr::Slot(s), std::move(ex))});
    }
    return out;
  }

  Result<TermIR> LowerHeadArg(const SrcExpr& e, RuleIR* ir) {
    if (e.IsVar()) return TermIR::Slot(SlotOf(e.name));
    COLOGNE_ASSIGN_OR_RETURN(ex, LowerExpr(e));
    Value folded;
    if (TryConstFold(ex, &folded)) return TermIR::Const(std::move(folded));
    // Computed head attribute: bind via a hidden assignment.
    int s = next_slot_++;
    ir->assigns.push_back(AssignIR{s, std::move(ex)});
    return TermIR::Slot(s);
  }

  const SrcRule& rule_;
  const std::map<std::string, Value>& params_;
  std::map<std::string, int> slots_;
  int next_slot_ = 0;
};

// Evaluate a domain bound expression to an integer constant.
Result<int64_t> EvalDomainBound(const SrcExpr& e,
                                const std::map<std::string, Value>& params) {
  SrcRule dummy;
  RuleLowerer lowerer(dummy, params);
  // Lower through a fresh lowerer so params resolve; variables are illegal.
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  if (!vars.empty()) {
    return Status(
        Status::PlanError("domain bounds must be constants or parameters"));
  }
  // Re-lower via a local recursion (no slots involved).
  struct L {
    static Result<Expr> Go(const SrcExpr& e,
                           const std::map<std::string, Value>& params) {
      switch (e.kind) {
        case SrcExpr::Kind::kConst:
          return Expr::Const(e.const_val);
        case SrcExpr::Kind::kParam: {
          auto it = params.find(e.name);
          if (it == params.end()) {
            return Status(Status::PlanError("unknown parameter " + e.name));
          }
          return Expr::Const(it->second);
        }
        case SrcExpr::Kind::kUnary: {
          COLOGNE_ASSIGN_OR_RETURN(a, Go(e.kids[0], params));
          return Expr::Unary(e.op, std::move(a));
        }
        case SrcExpr::Kind::kBinary: {
          COLOGNE_ASSIGN_OR_RETURN(a, Go(e.kids[0], params));
          COLOGNE_ASSIGN_OR_RETURN(b, Go(e.kids[1], params));
          return Expr::Binary(e.op, std::move(a), std::move(b));
        }
        default:
          return Status(Status::PlanError("bad domain bound"));
      }
    }
  };
  COLOGNE_ASSIGN_OR_RETURN(ex, L::Go(e, params));
  COLOGNE_ASSIGN_OR_RETURN(v, datalog::EvalExpr(ex, {}));
  if (!v.is_int()) {
    return Status(Status::PlanError("domain bounds must be integers"));
  }
  return v.as_int();
}

// Extract and validate the reserved `param SOLVER_*` / `param NET_*` knobs
// (lexed as plain ALL-CAPS identifiers; see IsSolverKnobName in
// colog/lexer.h).
Status ExtractSolverKnobs(const std::map<std::string, Value>& params,
                          SolverKnobsIR* knobs) {
  for (const auto& [name, value] : params) {
    if (name == "NET_RELIABLE") {
      // Transport selection is boolean; spelled 0/1 like the paper's knobs.
      if (!value.is_int() || (value.as_int() != 0 && value.as_int() != 1)) {
        return Status(Status::PlanError(
            "NET_RELIABLE must be 0 or 1, got " + value.ToString()));
      }
      knobs->net_reliable = value.as_int() == 1;
      continue;
    }
    if (name == "OBS_METRICS") {
      if (!value.is_int() || (value.as_int() != 0 && value.as_int() != 1)) {
        return Status(Status::PlanError(
            "OBS_METRICS must be 0 or 1, got " + value.ToString()));
      }
      knobs->obs_metrics = value.as_int() == 1;
      continue;
    }
    if (name.rfind("SOLVER_", 0) != 0) continue;
    if (!IsSolverKnobName(name)) {
      return Status(Status::PlanError("unknown solver knob " + name));
    }
    if (name == "SOLVER_BACKEND") {
      // One validation site: the spellings solver::ParseBackend accepts.
      solver::Backend parsed;
      if (!value.is_string() ||
          !solver::ParseBackend(value.as_string(), &parsed)) {
        return Status(Status::PlanError(
            "SOLVER_BACKEND must be \"bnb\", \"lns\", \"portfolio\", "
            "\"parallel_lns\" or \"local_search\", got " +
            value.ToString()));
      }
      knobs->backend = value.as_string();
      continue;
    }
    if (name == "SOLVER_WORKERS") {
      // Worker-thread count for the concurrent backends; bounded so a typo
      // cannot fork an unbounded race.
      if (!value.is_int() || value.as_int() < 1 || value.as_int() > 256) {
        return Status(Status::PlanError(
            "SOLVER_WORKERS must be an integer in [1, 256], got " +
            value.ToString()));
      }
      knobs->workers = static_cast<uint64_t>(value.as_int());
      continue;
    }
    if (name == "SOLVER_INCREMENTAL") {
      if (!value.is_int() || (value.as_int() != 0 && value.as_int() != 1)) {
        return Status(Status::PlanError(
            "SOLVER_INCREMENTAL must be 0 or 1, got " + value.ToString()));
      }
      knobs->incremental = value.as_int() == 1;
      continue;
    }
    if (name == "SOLVER_CACHE") {
      if (!value.is_int() || (value.as_int() != 0 && value.as_int() != 1)) {
        return Status(Status::PlanError(
            "SOLVER_CACHE must be 0 or 1, got " + value.ToString()));
      }
      knobs->cache = value.as_int() == 1;
      continue;
    }
    if (name == "SOLVER_SUBPROBLEMS") {
      // Frontier width of subproblem-parallel B&B; bounded so a typo cannot
      // make the master expand an enormous queue before search starts.
      if (!value.is_int() || value.as_int() < 0 || value.as_int() > 4096) {
        return Status(Status::PlanError(
            "SOLVER_SUBPROBLEMS must be an integer in [0, 4096], got " +
            value.ToString()));
      }
      knobs->subproblems = static_cast<uint64_t>(value.as_int());
      continue;
    }
    if (name == "SOLVER_NAIVE_PROPAGATION") {
      if (!value.is_int() || (value.as_int() != 0 && value.as_int() != 1)) {
        return Status(Status::PlanError(
            "SOLVER_NAIVE_PROPAGATION must be 0 or 1, got " +
            value.ToString()));
      }
      knobs->naive_propagation = value.as_int() == 1;
      continue;
    }
    if (name == "SOLVER_INCR_THRESHOLD") {
      if (!value.is_int() || value.as_int() < 0 || value.as_int() > 100) {
        return Status(Status::PlanError(
            "SOLVER_INCR_THRESHOLD must be an integer in [0, 100], got " +
            value.ToString()));
      }
      knobs->incr_threshold_pct = static_cast<uint64_t>(value.as_int());
      continue;
    }
    if (name == "SOLVER_MAX_TIME") {
      if (!value.is_numeric() || value.as_double() <= 0) {
        return Status(Status::PlanError(
            "SOLVER_MAX_TIME must be a positive number of milliseconds"));
      }
      knobs->max_time_ms = value.as_double();
      continue;
    }
    // SOLVER_SEED / SOLVER_RESTARTS: non-negative integers.
    if (!value.is_int() || value.as_int() < 0) {
      return Status(
          Status::PlanError(name + " must be a non-negative integer"));
    }
    if (name == "SOLVER_SEED") {
      knobs->seed = static_cast<uint64_t>(value.as_int());
    } else {
      knobs->restart_base_nodes = static_cast<uint64_t>(value.as_int());
    }
  }
  return Status::OK();
}

}  // namespace

bool CompiledProgram::IsSolverCol(const std::string& table, int col) const {
  auto it = solver_cols.find(table);
  if (it == solver_cols.end()) return false;
  return std::find(it->second.begin(), it->second.end(), col) !=
         it->second.end();
}

Result<CompiledProgram> Plan(const AnalyzedProgram& analyzed) {
  CompiledProgram out;
  out.tables = analyzed.tables;
  out.params = analyzed.params;
  COLOGNE_RETURN_IF_ERROR(ExtractSolverKnobs(analyzed.params, &out.knobs));
  // Knobs live in `knobs`, not the rule-level parameter map (they are not
  // substitutable in rule bodies).
  std::erase_if(out.params,
                [](const auto& kv) { return IsSolverKnobName(kv.first); });
  out.distributed = analyzed.distributed;
  out.var_tables = analyzed.var_tables;
  for (const auto& [t, cols] : analyzed.solver_cols) {
    if (cols.empty()) continue;
    out.solver_cols[t] = std::vector<int>(cols.begin(), cols.end());
  }

  // ---- Lower rules ----------------------------------------------------------
  std::vector<SolverRuleIR> derivations, constraints;
  for (const AnalyzedRule& ar : analyzed.rules) {
    RuleLowerer lowerer(ar.rule, analyzed.params);
    COLOGNE_ASSIGN_OR_RETURN(ir, lowerer.Lower());
    switch (ar.cls) {
      case RuleClass::kRegular:
        out.counts.regular++;
        out.engine_rules.push_back(std::move(ir));
        break;
      case RuleClass::kPostSolve:
        out.counts.post_solve++;
        // Solver outputs drive post-solve rules as one-shot events: fire on
        // insertions only, so a retracted stale output cannot "un-apply" a
        // state update.
        ir.insert_only.assign(ir.body.size(), 1);
        out.engine_rules.push_back(std::move(ir));
        break;
      case RuleClass::kSolverDerivation:
        out.counts.solver_derivation++;
        derivations.push_back({std::move(ir), false, ar.rule.ToString()});
        break;
      case RuleClass::kSolverConstraint:
        out.counts.solver_constraint++;
        constraints.push_back({std::move(ir), true, ar.rule.ToString()});
        break;
    }
  }

  // ---- Topologically order solver derivations -------------------------------
  std::vector<SolverRuleIR> ordered;
  std::set<std::string> ready_tables;
  // Only tables produced by derivation rules gate the order; var tables and
  // engine-materialized tables (including shipped tmp tables) are ready.
  std::set<std::string> produced;
  for (const SolverRuleIR& d : derivations) produced.insert(d.ir.head.table);
  auto table_ready = [&](const std::string& t) {
    if (!produced.count(t)) return true;
    return ready_tables.count(t) > 0;
  };
  std::vector<bool> emitted(derivations.size(), false);
  size_t emitted_count = 0;
  while (emitted_count < derivations.size()) {
    bool progress = false;
    for (size_t i = 0; i < derivations.size(); ++i) {
      if (emitted[i]) continue;
      bool ready = true;
      for (const AtomIR& a : derivations[i].ir.body) {
        if (!table_ready(a.table)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      ready_tables.insert(derivations[i].ir.head.table);
      ordered.push_back(std::move(derivations[i]));
      emitted[i] = true;
      ++emitted_count;
      progress = true;
    }
    if (!progress) {
      std::string cycle;
      for (size_t i = 0; i < derivations.size(); ++i) {
        if (!emitted[i]) cycle += derivations[i].ir.label + " ";
      }
      return Status(Status::PlanError(
          "cyclic solver derivation rules (unsupported): " + cycle));
    }
  }
  out.solver_rules = std::move(ordered);
  for (SolverRuleIR& c : constraints) out.solver_rules.push_back(std::move(c));

  // ---- Var declarations ------------------------------------------------------
  for (const VarDeclStmt& v : analyzed.var_decls) {
    VarDeclIR ir;
    ir.var_table = v.var_atom.pred;
    ir.forall_table = v.forall_atom.pred;
    std::map<std::string, int> forall_pos;
    for (size_t i = 0; i < v.forall_atom.args.size(); ++i) {
      const SrcArg& a = v.forall_atom.args[i];
      if (a.expr.IsVar()) forall_pos[a.expr.name] = static_cast<int>(i);
    }
    for (const SrcArg& a : v.var_atom.args) {
      auto it = forall_pos.find(a.expr.name);
      ir.from_forall_col.push_back(it == forall_pos.end() ? -1 : it->second);
    }
    if (v.dom_lo) {
      COLOGNE_ASSIGN_OR_RETURN(lo, EvalDomainBound(*v.dom_lo, analyzed.params));
      ir.dom_lo = lo;
    }
    if (v.dom_hi) {
      COLOGNE_ASSIGN_OR_RETURN(hi, EvalDomainBound(*v.dom_hi, analyzed.params));
      ir.dom_hi = hi;
    }
    if (ir.dom_lo > ir.dom_hi) {
      return Status(Status::PlanError("empty domain for var table " +
                                      ir.var_table));
    }
    // Auto-key var tables on their regular columns when no key is declared:
    // each re-solve then *replaces* the decision row for the same binding
    // instead of accumulating stale rows.
    auto tit = out.tables.find(ir.var_table);
    if (tit != out.tables.end() && tit->second.key_cols.empty()) {
      for (size_t i = 0; i < ir.from_forall_col.size(); ++i) {
        if (ir.from_forall_col[i] >= 0) {
          tit->second.key_cols.push_back(static_cast<int>(i));
        }
      }
    }
    out.var_decls.push_back(std::move(ir));
    out.counts.goal_and_var++;
  }

  // ---- Goal ------------------------------------------------------------------
  for (const GoalDecl& g : analyzed.goals) {
    out.goal.present = true;
    out.goal.type = g.type;
    out.counts.goal_and_var++;
    if (g.attr_var.empty()) continue;  // bare `goal satisfy.`
    out.goal.table = g.atom.pred;
    for (size_t i = 0; i < g.atom.args.size(); ++i) {
      const SrcArg& a = g.atom.args[i];
      if (!a.is_aggregate() && a.expr.IsVar() && a.expr.name == g.attr_var) {
        out.goal.col = static_cast<int>(i);
      }
    }
  }

  // ---- Output & base tables ---------------------------------------------------
  for (const std::string& v : out.var_tables) out.solver_output_tables.insert(v);
  for (const SolverRuleIR& r : out.solver_rules) {
    if (!r.is_constraint) out.solver_output_tables.insert(r.ir.head.table);
  }
  if (out.goal.present && !out.goal.table.empty()) {
    out.solver_output_tables.insert(out.goal.table);
  }
  std::set<std::string> derived;
  for (const datalog::RuleIR& r : out.engine_rules) derived.insert(r.head.table);
  for (const std::string& t : out.solver_output_tables) derived.insert(t);
  for (const auto& [name, schema] : out.tables) {
    if (!derived.count(name)) out.base_tables.insert(name);
  }
  return out;
}

Result<CompiledProgram> CompileColog(const std::string& source,
                                     const std::map<std::string, Value>& params) {
  COLOGNE_ASSIGN_OR_RETURN(prog, Parse(source));
  COLOGNE_ASSIGN_OR_RETURN(analyzed, Analyze(prog, params));
  return Plan(analyzed);
}

}  // namespace cologne::colog

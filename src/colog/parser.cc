#include "colog/parser.h"

#include "colog/lexer.h"
#include "common/strings.h"

namespace cologne::colog {

namespace {

using datalog::AggKindFromName;
using datalog::ExprOp;

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Program> Run() {
    Program prog;
    while (!Cur().is(TokKind::kEof)) {
      if (Cur().IsKeyword("goal")) {
        COLOGNE_RETURN_IF_ERROR(ParseGoal(&prog));
      } else if (Cur().IsKeyword("var")) {
        COLOGNE_RETURN_IF_ERROR(ParseVarDecl(&prog));
      } else if (Cur().IsKeyword("param")) {
        COLOGNE_RETURN_IF_ERROR(ParseParam(&prog));
      } else if (Cur().IsKeyword("table")) {
        COLOGNE_RETURN_IF_ERROR(ParseTableDecl(&prog));
      } else {
        COLOGNE_RETURN_IF_ERROR(ParseRule(&prog));
      }
    }
    return prog;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(size_t off = 1) const {
    size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token Take() { return toks_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("line %d: %s (at %s)", Cur().line, msg.c_str(),
                  TokKindName(Cur().kind)));
  }

  Status Expect(TokKind k, const char* what) {
    if (!Cur().is(k)) {
      return Err(StrFormat("expected %s", what));
    }
    ++pos_;
    return Status::OK();
  }

  // --- Statements ----------------------------------------------------------

  Status ParseGoal(Program* prog) {
    GoalDecl goal;
    goal.line = Cur().line;
    ++pos_;  // 'goal'
    if (Cur().IsKeyword("minimize")) {
      goal.type = GoalType::kMinimize;
    } else if (Cur().IsKeyword("maximize")) {
      goal.type = GoalType::kMaximize;
    } else if (Cur().IsKeyword("satisfy")) {
      goal.type = GoalType::kSatisfy;
    } else {
      return Err("expected minimize/maximize/satisfy");
    }
    ++pos_;
    if (goal.type != GoalType::kSatisfy || Cur().is(TokKind::kVariable)) {
      if (!Cur().is(TokKind::kVariable)) return Err("expected goal attribute");
      goal.attr_var = Take().text;
      if (!Cur().IsKeyword("in")) return Err("expected 'in'");
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(atom, ParseAtom());
      goal.atom = std::move(atom);
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
    prog->goals.push_back(std::move(goal));
    return Status::OK();
  }

  Status ParseVarDecl(Program* prog) {
    VarDeclStmt decl;
    decl.line = Cur().line;
    ++pos_;  // 'var'
    COLOGNE_ASSIGN_OR_RETURN(va, ParseAtom());
    decl.var_atom = std::move(va);
    if (!Cur().IsKeyword("forall")) return Err("expected 'forall'");
    ++pos_;
    COLOGNE_ASSIGN_OR_RETURN(fa, ParseAtom());
    decl.forall_atom = std::move(fa);
    if (Cur().IsKeyword("domain")) {
      ++pos_;
      COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
      COLOGNE_ASSIGN_OR_RETURN(lo, ParseExpr());
      decl.dom_lo = std::move(lo);
      COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
      COLOGNE_ASSIGN_OR_RETURN(hi, ParseExpr());
      decl.dom_hi = std::move(hi);
      COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
    prog->var_decls.push_back(std::move(decl));
    return Status::OK();
  }

  Status ParseParam(Program* prog) {
    ParamDecl p;
    p.line = Cur().line;
    ++pos_;  // 'param'
    if (!Cur().is(TokKind::kIdent) && !Cur().is(TokKind::kVariable)) {
      return Err("expected parameter name");
    }
    p.name = Take().text;
    if (Cur().is(TokKind::kEqualSign)) {
      ++pos_;
      bool neg = false;
      if (Cur().is(TokKind::kMinus)) {
        neg = true;
        ++pos_;
      }
      if (Cur().is(TokKind::kInt)) {
        p.value = neg ? Value::Int(-Cur().literal.as_int()) : Cur().literal;
      } else if (Cur().is(TokKind::kDouble)) {
        p.value =
            neg ? Value::Double(-Cur().literal.as_double()) : Cur().literal;
      } else if (Cur().is(TokKind::kString) && !neg) {
        p.value = Cur().literal;
      } else {
        return Err("expected literal parameter value");
      }
      ++pos_;
    } else if (IsSolverKnobName(p.name)) {
      // Reserved solver knobs (SOLVER_MAX_TIME etc.) configure the runtime
      // rather than the program; an open (valueless) knob is meaningless.
      return Err("solver knob " + p.name + " requires a literal value");
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
    prog->params.push_back(std::move(p));
    return Status::OK();
  }

  Status ParseTableDecl(Program* prog) {
    TableDecl t;
    t.line = Cur().line;
    ++pos_;  // 'table'
    if (!Cur().is(TokKind::kIdent)) return Err("expected table name");
    t.name = Take().text;
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    while (true) {
      if (!Cur().is(TokKind::kVariable)) return Err("expected attribute name");
      t.attrs.push_back(Take().text);
      if (Cur().is(TokKind::kComma)) {
        ++pos_;
        continue;
      }
      break;
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    if (Cur().IsKeyword("keys")) {
      ++pos_;
      COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      while (true) {
        if (!Cur().is(TokKind::kVariable)) return Err("expected key attribute");
        t.keys.push_back(Take().text);
        if (Cur().is(TokKind::kComma)) {
          ++pos_;
          continue;
        }
        break;
      }
      COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
    prog->table_decls.push_back(std::move(t));
    return Status::OK();
  }

  Status ParseRule(Program* prog) {
    SrcRule rule;
    rule.line = Cur().line;
    // Optional label: identifier followed by another identifier + '('.
    if (Cur().is(TokKind::kIdent) && Peek(1).is(TokKind::kIdent) &&
        Peek(2).is(TokKind::kLParen)) {
      rule.label = Take().text;
    }
    COLOGNE_ASSIGN_OR_RETURN(head, ParseAtom());
    rule.head = std::move(head);
    if (Cur().is(TokKind::kLeftArrow)) {
      rule.is_constraint = false;
    } else if (Cur().is(TokKind::kRightArrow)) {
      rule.is_constraint = true;
    } else {
      return Err("expected '<-' or '->'");
    }
    ++pos_;
    while (true) {
      COLOGNE_ASSIGN_OR_RETURN(elem, ParseBodyElem());
      rule.body.push_back(std::move(elem));
      if (Cur().is(TokKind::kComma)) {
        ++pos_;
        continue;
      }
      break;
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
    prog->rules.push_back(std::move(rule));
    return Status::OK();
  }

  // --- Atoms & body elements ----------------------------------------------

  Result<SrcAtom> ParseAtom() {
    SrcAtom atom;
    atom.line = Cur().line;
    if (!Cur().is(TokKind::kIdent)) {
      return Status(Err("expected predicate name"));
    }
    atom.pred = Take().text;
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    while (true) {
      SrcArg arg;
      if (Cur().is(TokKind::kAt)) {
        arg.loc = true;
        ++pos_;
      }
      // Aggregate argument: AGGNAME '<' Var '>'.
      if (Cur().is(TokKind::kVariable) && AggKindFromName(Cur().text) &&
          Peek(1).is(TokKind::kLt) && Peek(2).is(TokKind::kVariable) &&
          Peek(3).is(TokKind::kGt)) {
        arg.agg = *AggKindFromName(Cur().text);
        arg.agg_var = Peek(2).text;
        pos_ += 4;
      } else {
        COLOGNE_ASSIGN_OR_RETURN(e, ParseExpr());
        arg.expr = std::move(e);
      }
      atom.args.push_back(std::move(arg));
      if (Cur().is(TokKind::kComma)) {
        ++pos_;
        continue;
      }
      break;
    }
    COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return atom;
  }

  Result<SrcBodyElem> ParseBodyElem() {
    SrcBodyElem elem;
    // Atom: lowercase identifier followed by '('.
    if (Cur().is(TokKind::kIdent) && Peek(1).is(TokKind::kLParen)) {
      elem.kind = SrcBodyElem::Kind::kAtom;
      COLOGNE_ASSIGN_OR_RETURN(atom, ParseAtom());
      elem.atom = std::move(atom);
      return elem;
    }
    // Assignment: Variable ':=' expr.
    if (Cur().is(TokKind::kVariable) && Peek(1).is(TokKind::kAssign)) {
      elem.kind = SrcBodyElem::Kind::kAssign;
      elem.assign_var = Take().text;
      ++pos_;  // ':='
      COLOGNE_ASSIGN_OR_RETURN(e, ParseExpr());
      elem.expr = std::move(e);
      return elem;
    }
    // Otherwise a boolean condition.
    elem.kind = SrcBodyElem::Kind::kCond;
    COLOGNE_ASSIGN_OR_RETURN(e, ParseExpr());
    elem.expr = std::move(e);
    return elem;
  }

  // --- Expressions (precedence climbing) -----------------------------------

  Result<SrcExpr> ParseExpr() { return ParseOr(); }

  Result<SrcExpr> ParseOr() {
    COLOGNE_ASSIGN_OR_RETURN(lhs, ParseAnd());
    while (Cur().is(TokKind::kOrOr)) {
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(rhs, ParseAnd());
      lhs = SrcExpr::Binary(ExprOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SrcExpr> ParseAnd() {
    COLOGNE_ASSIGN_OR_RETURN(lhs, ParseCmp());
    while (Cur().is(TokKind::kAndAnd)) {
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(rhs, ParseCmp());
      lhs = SrcExpr::Binary(ExprOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SrcExpr> ParseCmp() {
    COLOGNE_ASSIGN_OR_RETURN(lhs, ParseAdd());
    ExprOp op;
    switch (Cur().kind) {
      case TokKind::kEq: op = ExprOp::kEq; break;
      case TokKind::kNe: op = ExprOp::kNe; break;
      case TokKind::kLt: op = ExprOp::kLt; break;
      case TokKind::kLe: op = ExprOp::kLe; break;
      case TokKind::kGt: op = ExprOp::kGt; break;
      case TokKind::kGe: op = ExprOp::kGe; break;
      default: return lhs;
    }
    ++pos_;
    COLOGNE_ASSIGN_OR_RETURN(rhs, ParseAdd());
    return SrcExpr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<SrcExpr> ParseAdd() {
    COLOGNE_ASSIGN_OR_RETURN(lhs, ParseMul());
    while (Cur().is(TokKind::kPlus) || Cur().is(TokKind::kMinus)) {
      ExprOp op = Cur().is(TokKind::kPlus) ? ExprOp::kAdd : ExprOp::kSub;
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(rhs, ParseMul());
      lhs = SrcExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SrcExpr> ParseMul() {
    COLOGNE_ASSIGN_OR_RETURN(lhs, ParseUnary());
    while (Cur().is(TokKind::kStar) || Cur().is(TokKind::kSlash) ||
           Cur().is(TokKind::kPercent)) {
      ExprOp op = Cur().is(TokKind::kStar)
                      ? ExprOp::kMul
                      : (Cur().is(TokKind::kSlash) ? ExprOp::kDiv
                                                   : ExprOp::kMod);
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = SrcExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SrcExpr> ParseUnary() {
    if (Cur().is(TokKind::kMinus)) {
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(operand, ParseUnary());
      return SrcExpr::Unary(ExprOp::kNeg, std::move(operand));
    }
    if (Cur().is(TokKind::kBang)) {
      ++pos_;
      COLOGNE_ASSIGN_OR_RETURN(operand, ParseUnary());
      return SrcExpr::Unary(ExprOp::kNot, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<SrcExpr> ParsePrimary() {
    switch (Cur().kind) {
      case TokKind::kInt:
      case TokKind::kDouble:
      case TokKind::kString: {
        SrcExpr e = SrcExpr::Const(Cur().literal);
        ++pos_;
        return e;
      }
      case TokKind::kVariable: {
        SrcExpr e = SrcExpr::Var(Cur().text);
        ++pos_;
        return e;
      }
      case TokKind::kIdent: {
        SrcExpr e = SrcExpr::Param(Cur().text);
        ++pos_;
        return e;
      }
      case TokKind::kLParen: {
        ++pos_;
        COLOGNE_ASSIGN_OR_RETURN(inner, ParseExpr());
        COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return inner;
      }
      case TokKind::kBar: {
        ++pos_;
        COLOGNE_ASSIGN_OR_RETURN(inner, ParseExpr());
        COLOGNE_RETURN_IF_ERROR(Expect(TokKind::kBar, "closing '|'"));
        return SrcExpr::Unary(ExprOp::kAbs, std::move(inner));
      }
      default:
        return Status(Err("expected expression"));
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  COLOGNE_ASSIGN_OR_RETURN(toks, Lex(source));
  Parser parser(std::move(toks));
  return parser.Run();
}

}  // namespace cologne::colog

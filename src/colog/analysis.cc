#include "colog/analysis.h"

#include <algorithm>

#include "common/strings.h"

namespace cologne::colog {

const char* RuleClassName(RuleClass c) {
  switch (c) {
    case RuleClass::kRegular: return "regular";
    case RuleClass::kSolverDerivation: return "solver-derivation";
    case RuleClass::kSolverConstraint: return "solver-constraint";
    case RuleClass::kPostSolve: return "post-solve";
  }
  return "?";
}

namespace {

// Location variable of an atom ("" when the atom carries no specifier).
std::string LocVarOf(const SrcAtom& atom) {
  int i = atom.LocArg();
  if (i < 0) return "";
  const SrcArg& arg = atom.args[static_cast<size_t>(i)];
  if (arg.is_aggregate() || !arg.expr.IsVar()) return "";
  return arg.expr.name;
}

// All bare variables appearing in an atom's arguments (including aggregates).
void AtomVars(const SrcAtom& atom, std::vector<std::string>* out) {
  for (const SrcArg& arg : atom.args) {
    if (arg.is_aggregate()) {
      out->push_back(arg.agg_var);
    } else {
      arg.expr.CollectVars(out);
    }
  }
}

}  // namespace

Result<std::vector<SrcRule>> LocalizeRules(const std::vector<SrcRule>& rules,
                                           size_t* rewritten_count) {
  std::vector<SrcRule> out;
  size_t counter = 0;
  if (rewritten_count) *rewritten_count = 0;

  for (const SrcRule& rule : rules) {
    // Collect distinct body-atom location variables.
    std::vector<std::string> body_locs;
    for (const SrcBodyElem& e : rule.body) {
      if (e.kind != SrcBodyElem::Kind::kAtom) continue;
      std::string lv = LocVarOf(e.atom);
      if (!lv.empty() &&
          std::find(body_locs.begin(), body_locs.end(), lv) == body_locs.end()) {
        body_locs.push_back(lv);
      }
    }
    std::string anchor = LocVarOf(rule.head);
    // Rewrite when the body spans two locations, or when a constraint rule's
    // whole body lives away from its head (the constraint must be checkable
    // at the head's node at solve time — paper c2 in Section 4.3).
    bool spans_two = body_locs.size() == 2;
    bool remote_constraint_body = rule.is_constraint &&
                                  body_locs.size() == 1 && !anchor.empty() &&
                                  body_locs[0] != anchor;
    if (body_locs.size() > 2) {
      return Status::AnalysisError(
          "rule " + rule.label +
          ": bodies spanning more than two locations are not supported");
    }
    if (!spans_two && !remote_constraint_body) {
      out.push_back(rule);
      continue;
    }
    if (anchor.empty()) {
      return Status::AnalysisError("rule " + rule.label +
                                   ": distributed body but unlocated head");
    }
    // Ship the group that is not at the anchor.
    std::string remote;
    for (const std::string& lv : body_locs) {
      if (lv != anchor) remote = lv;
    }
    if (remote.empty()) {
      return Status::AnalysisError(
          "rule " + rule.label +
          ": could not determine the remote location to localize");
    }

    // Partition body atoms.
    std::vector<SrcBodyElem> remote_atoms, local_elems;
    for (const SrcBodyElem& e : rule.body) {
      if (e.kind == SrcBodyElem::Kind::kAtom && LocVarOf(e.atom) == remote) {
        remote_atoms.push_back(e);
      } else {
        local_elems.push_back(e);
      }
    }

    // Variables bound remotely, in first-occurrence order.
    std::vector<std::string> remote_vars;
    for (const SrcBodyElem& e : remote_atoms) {
      std::vector<std::string> vs;
      AtomVars(e.atom, &vs);
      for (std::string& v : vs) {
        if (std::find(remote_vars.begin(), remote_vars.end(), v) ==
            remote_vars.end()) {
          remote_vars.push_back(std::move(v));
        }
      }
    }
    // Variables needed by the local part (atoms, conditions, assigns, head).
    std::vector<std::string> needed;
    for (const SrcBodyElem& e : local_elems) {
      if (e.kind == SrcBodyElem::Kind::kAtom) {
        AtomVars(e.atom, &needed);
      } else {
        e.expr.CollectVars(&needed);
        if (e.kind == SrcBodyElem::Kind::kAssign) needed.push_back(e.assign_var);
      }
    }
    AtomVars(rule.head, &needed);

    // Shipped attributes: anchor location first, then every remotely-bound
    // variable the local side needs.
    if (std::find(remote_vars.begin(), remote_vars.end(), anchor) ==
        remote_vars.end()) {
      return Status::AnalysisError(
          "rule " + rule.label + ": the remote sub-join does not bind the "
          "destination location variable " + anchor);
    }
    std::vector<std::string> shipped{anchor};
    for (const std::string& v : remote_vars) {
      if (v == anchor) continue;
      if (std::find(needed.begin(), needed.end(), v) != needed.end()) {
        shipped.push_back(v);
      }
    }

    std::string tmp_name = "tmp_" + (rule.label.empty()
                                         ? "r" + std::to_string(counter)
                                         : rule.label);
    ++counter;
    if (rewritten_count) ++(*rewritten_count);

    // Shipping rule: tmp(@Anchor, V...) <- remote atoms.
    SrcRule ship;
    ship.label = rule.label.empty() ? tmp_name : rule.label + "_ship";
    ship.is_constraint = false;
    ship.is_ship = true;
    ship.line = rule.line;
    ship.head.pred = tmp_name;
    ship.head.line = rule.line;
    for (size_t i = 0; i < shipped.size(); ++i) {
      SrcArg arg;
      arg.loc = (i == 0);
      arg.expr = SrcExpr::Var(shipped[i]);
      ship.head.args.push_back(std::move(arg));
    }
    ship.body = remote_atoms;
    out.push_back(std::move(ship));

    // Local rule: original head <- tmp(@Anchor, V...) + local elements.
    SrcRule local = rule;
    local.body.clear();
    SrcBodyElem tmp_elem;
    tmp_elem.kind = SrcBodyElem::Kind::kAtom;
    tmp_elem.atom.pred = tmp_name;
    tmp_elem.atom.line = rule.line;
    for (size_t i = 0; i < shipped.size(); ++i) {
      SrcArg arg;
      arg.loc = (i == 0);
      arg.expr = SrcExpr::Var(shipped[i]);
      tmp_elem.atom.args.push_back(std::move(arg));
    }
    local.body.push_back(std::move(tmp_elem));
    for (SrcBodyElem& e : local_elems) local.body.push_back(std::move(e));
    out.push_back(std::move(local));
  }
  return out;
}

namespace {

// Per-rule symbolic-variable analysis outcome.
struct RuleSymInfo {
  std::set<std::string> symbolic;      // vars carrying solver values
  bool reads_solver_tables = false;    // any body atom touches a solver table
  bool head_in_solver = false;
  bool forced_post_solve = false;      // `:=` over solver attributes
};

// Compute which variables of `rule` are symbolic given current solver column
// marks. Also reports whether `:=` assignments consume symbolic values.
RuleSymInfo AnalyzeRuleSymbols(
    const SrcRule& rule,
    const std::map<std::string, std::set<int>>& solver_cols) {
  RuleSymInfo info;
  std::set<std::string> regular_bound;

  auto scan_atom = [&](const SrcAtom& atom, bool is_head) {
    auto it = solver_cols.find(atom.pred);
    const std::set<int>* cols = it == solver_cols.end() ? nullptr : &it->second;
    if (cols != nullptr && !cols->empty() && !is_head) {
      info.reads_solver_tables = true;
    }
    if (cols != nullptr && !cols->empty() && is_head) info.head_in_solver = true;
    if (is_head) return;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const SrcArg& arg = atom.args[i];
      bool sym_pos = cols != nullptr && cols->count(static_cast<int>(i)) > 0;
      std::vector<std::string> vs;
      if (arg.is_aggregate()) {
        vs.push_back(arg.agg_var);
      } else {
        arg.expr.CollectVars(&vs);
      }
      for (const std::string& v : vs) {
        if (sym_pos) {
          info.symbolic.insert(v);
        } else {
          regular_bound.insert(v);
        }
      }
    }
  };

  scan_atom(rule.head, /*is_head=*/true);
  for (const SrcBodyElem& e : rule.body) {
    if (e.kind == SrcBodyElem::Kind::kAtom) scan_atom(e.atom, false);
  }

  // Propagate through conditions and assignments to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SrcBodyElem& e : rule.body) {
      if (e.kind == SrcBodyElem::Kind::kAtom) continue;
      std::vector<std::string> vs;
      e.expr.CollectVars(&vs);
      bool any_sym = false;
      for (const std::string& v : vs) {
        if (info.symbolic.count(v)) any_sym = true;
      }
      if (!any_sym) continue;
      if (e.kind == SrcBodyElem::Kind::kAssign) {
        // `:=` evaluates concrete values only: consuming a solver attribute
        // here means the rule reads materialized output (post-solve).
        info.forced_post_solve = true;
        continue;
      }
      // Equality-style conditions bind fresh variables to solver values
      // (paper 5.2: "C is identified as a solver attribute ... given the
      // boolean expression C==V*Cpu").
      for (const std::string& v : vs) {
        if (!regular_bound.count(v) && !info.symbolic.count(v)) {
          info.symbolic.insert(v);
          changed = true;
        }
      }
    }
  }
  return info;
}

}  // namespace

Result<AnalyzedProgram> Analyze(
    const Program& program, const std::map<std::string, Value>& extra_params) {
  AnalyzedProgram out;
  out.goals = program.goals;
  out.var_decls = program.var_decls;

  // ---- Parameters ----------------------------------------------------------
  for (const ParamDecl& p : program.params) {
    if (p.value) out.params[p.name] = *p.value;
  }
  for (const auto& [k, v] : extra_params) out.params[k] = v;
  for (const ParamDecl& p : program.params) {
    if (!out.params.count(p.name)) {
      return Status::AnalysisError("parameter " + p.name +
                                   " declared but no value provided");
    }
  }

  if (program.goals.size() > 1) {
    return Status::AnalysisError("multiple goal declarations");
  }

  // ---- Localization rewrite -------------------------------------------------
  COLOGNE_ASSIGN_OR_RETURN(rules, LocalizeRules(program.rules,
                                                &out.localized_rules));

  // ---- Schema inference -----------------------------------------------------
  std::map<std::string, const TableDecl*> decls;
  for (const TableDecl& t : program.table_decls) decls[t.name] = &t;

  auto note_atom = [&](const SrcAtom& atom) -> Status {
    auto it = out.tables.find(atom.pred);
    if (it == out.tables.end()) {
      datalog::TableSchema schema;
      schema.name = atom.pred;
      auto dit = decls.find(atom.pred);
      if (dit != decls.end()) {
        schema.attrs = dit->second->attrs;
        for (const std::string& k : dit->second->keys) {
          auto pos = std::find(schema.attrs.begin(), schema.attrs.end(), k);
          if (pos == schema.attrs.end()) {
            return Status::AnalysisError("table " + atom.pred +
                                         ": unknown key attribute " + k);
          }
          schema.key_cols.push_back(
              static_cast<int>(pos - schema.attrs.begin()));
        }
      } else {
        for (size_t i = 0; i < atom.args.size(); ++i) {
          schema.attrs.push_back("A" + std::to_string(i));
        }
      }
      if (schema.attrs.size() != atom.args.size()) {
        return Status::AnalysisError(StrFormat(
            "table %s declared with %zu attributes but used with %zu",
            atom.pred.c_str(), schema.attrs.size(), atom.args.size()));
      }
      out.tables.emplace(atom.pred, std::move(schema));
      it = out.tables.find(atom.pred);
    } else if (it->second.arity() != atom.args.size()) {
      return Status::AnalysisError(StrFormat(
          "table %s used with arity %zu but previously %zu (line %d)",
          atom.pred.c_str(), atom.args.size(), it->second.arity(), atom.line));
    }
    int loc = atom.LocArg();
    if (loc >= 0) {
      out.distributed = true;
      if (it->second.loc_col >= 0 && it->second.loc_col != loc) {
        return Status::AnalysisError("table " + atom.pred +
                                     ": inconsistent location argument");
      }
      it->second.loc_col = loc;
    }
    return Status::OK();
  };

  for (const SrcRule& r : rules) {
    COLOGNE_RETURN_IF_ERROR(note_atom(r.head));
    for (const SrcBodyElem& e : r.body) {
      if (e.kind == SrcBodyElem::Kind::kAtom) {
        COLOGNE_RETURN_IF_ERROR(note_atom(e.atom));
      }
    }
  }
  for (const GoalDecl& g : program.goals) {
    if (!g.attr_var.empty()) COLOGNE_RETURN_IF_ERROR(note_atom(g.atom));
  }
  for (const VarDeclStmt& v : program.var_decls) {
    COLOGNE_RETURN_IF_ERROR(note_atom(v.var_atom));
    COLOGNE_RETURN_IF_ERROR(note_atom(v.forall_atom));
  }
  // Tables declared but never used in rules still exist (inputs).
  for (const TableDecl& t : program.table_decls) {
    if (!out.tables.count(t.name)) {
      datalog::TableSchema schema;
      schema.name = t.name;
      schema.attrs = t.attrs;
      for (const std::string& k : t.keys) {
        auto pos = std::find(schema.attrs.begin(), schema.attrs.end(), k);
        if (pos == schema.attrs.end()) {
          return Status::AnalysisError("table " + t.name +
                                       ": unknown key attribute " + k);
        }
        schema.key_cols.push_back(static_cast<int>(pos - schema.attrs.begin()));
      }
      out.tables.emplace(t.name, std::move(schema));
    }
  }

  // ---- Solver-attribute inference (Section 5.2) -----------------------------
  for (const VarDeclStmt& v : program.var_decls) {
    out.var_tables.insert(v.var_atom.pred);
    std::set<std::string> forall_vars;
    for (const SrcArg& a : v.forall_atom.args) {
      if (!a.is_aggregate() && a.expr.IsVar()) forall_vars.insert(a.expr.name);
    }
    for (size_t i = 0; i < v.var_atom.args.size(); ++i) {
      const SrcArg& a = v.var_atom.args[static_cast<size_t>(i)];
      if (a.is_aggregate() || !a.expr.IsVar()) {
        return Status::AnalysisError("var declaration for " +
                                     v.var_atom.pred +
                                     ": arguments must be plain variables");
      }
      if (!forall_vars.count(a.expr.name)) {
        out.solver_cols[v.var_atom.pred].insert(static_cast<int>(i));
      }
    }
    if (!out.solver_cols.count(v.var_atom.pred)) {
      return Status::AnalysisError(
          "var declaration for " + v.var_atom.pred +
          ": no solver attribute (every attribute appears in forall)");
    }
  }

  // Fixpoint: propagate solver columns through rule heads.
  std::vector<RuleSymInfo> infos(rules.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      const SrcRule& rule = rules[ri];
      infos[ri] = AnalyzeRuleSymbols(rule, out.solver_cols);
      const RuleSymInfo& info = infos[ri];
      if (info.forced_post_solve) continue;       // reads materialized output
      if (out.var_tables.count(rule.head.pred)) continue;  // writeback rules
      if (rule.is_constraint) continue;            // constraints derive nothing
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        const SrcArg& arg = rule.head.args[i];
        std::vector<std::string> vs;
        if (arg.is_aggregate()) {
          vs.push_back(arg.agg_var);
        } else {
          arg.expr.CollectVars(&vs);
        }
        bool sym = false;
        for (const std::string& v : vs) {
          if (info.symbolic.count(v)) sym = true;
        }
        if (sym && !out.solver_cols[rule.head.pred].count(static_cast<int>(i))) {
          out.solver_cols[rule.head.pred].insert(static_cast<int>(i));
          changed = true;
        }
      }
    }
  }

  auto is_solver_table = [&](const std::string& t) {
    auto it = out.solver_cols.find(t);
    return it != out.solver_cols.end() && !it->second.empty();
  };

  // ---- "Needed" set: tables feeding the goal or any constraint -------------
  std::set<std::string> needed;
  for (const GoalDecl& g : program.goals) {
    if (!g.attr_var.empty()) needed.insert(g.atom.pred);
  }
  for (const SrcRule& r : rules) {
    if (!r.is_constraint) continue;
    needed.insert(r.head.pred);
    for (const SrcBodyElem& e : r.body) {
      if (e.kind == SrcBodyElem::Kind::kAtom && is_solver_table(e.atom.pred)) {
        needed.insert(e.atom.pred);
      }
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      const SrcRule& r = rules[ri];
      if (r.is_constraint || infos[ri].forced_post_solve) continue;
      if (out.var_tables.count(r.head.pred)) continue;
      if (!needed.count(r.head.pred)) continue;
      for (const SrcBodyElem& e : r.body) {
        if (e.kind == SrcBodyElem::Kind::kAtom &&
            is_solver_table(e.atom.pred) && !needed.count(e.atom.pred)) {
          needed.insert(e.atom.pred);
          changed = true;
        }
      }
    }
  }

  // ---- Classification -------------------------------------------------------
  out.rules.reserve(rules.size());
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    SrcRule& rule = rules[ri];
    const RuleSymInfo& info = infos[ri];
    AnalyzedRule ar;
    RuleClass cls;
    bool touches_solver = info.reads_solver_tables ||
                          is_solver_table(rule.head.pred) ||
                          out.var_tables.count(rule.head.pred) > 0;
    if (rule.is_ship) {
      // Shipping rules run in the engine over materialized tables, with full
      // insert/delete propagation (stale remote state must retract).
      cls = RuleClass::kRegular;
      ar.rule = std::move(rule);
      ar.cls = cls;
      out.rules.push_back(std::move(ar));
      continue;
    }
    if (rule.is_constraint) {
      if (!touches_solver) {
        return Status::AnalysisError(
            "constraint rule " + rule.label +
            " involves no solver tables; use a regular rule instead");
      }
      cls = RuleClass::kSolverConstraint;
    } else if (!touches_solver) {
      cls = RuleClass::kRegular;
    } else if (info.forced_post_solve ||
               out.var_tables.count(rule.head.pred) > 0 ||
               !needed.count(rule.head.pred)) {
      cls = RuleClass::kPostSolve;
    } else {
      cls = RuleClass::kSolverDerivation;
    }
    ar.rule = std::move(rule);
    ar.cls = cls;
    out.rules.push_back(std::move(ar));
  }

  // ---- Goal checks ----------------------------------------------------------
  for (const GoalDecl& g : program.goals) {
    if (g.attr_var.empty()) continue;
    bool found = false;
    for (const SrcArg& a : g.atom.args) {
      if (!a.is_aggregate() && a.expr.IsVar() && a.expr.name == g.attr_var) {
        found = true;
      }
    }
    if (!found) {
      return Status::AnalysisError("goal attribute " + g.attr_var +
                                   " does not appear in " + g.atom.pred);
    }
  }
  return out;
}

}  // namespace cologne::colog

// Recursive-descent parser for Colog programs.
#ifndef COLOGNE_COLOG_PARSER_H_
#define COLOGNE_COLOG_PARSER_H_

#include <string>

#include "colog/ast.h"
#include "common/status.h"

namespace cologne::colog {

/// Parse a complete Colog program from source text.
///
/// Accepts the full language of the paper's examples (Sections 4.2, 4.3 and
/// Appendix A): goal/var declarations, regular and solver rules with `<-` /
/// `->`, location specifiers `@X`, aggregates `SUM<C>` etc., assignments
/// `X := expr`, absolute values `|expr|`, plus this implementation's
/// `param`, `table ... keys(...)` and `domain [lo,hi]` extensions.
Result<Program> Parse(const std::string& source);

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_PARSER_H_

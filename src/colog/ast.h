// Source-level AST for the Colog language (paper Section 4).
#ifndef COLOGNE_COLOG_AST_H_
#define COLOGNE_COLOG_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "datalog/aggregates.h"
#include "datalog/expr.h"

namespace cologne::colog {

/// Goal type: `goal minimize|maximize|satisfy Attr in pred(...).`
enum class GoalType : uint8_t { kMinimize, kMaximize, kSatisfy };

/// \brief Source expression (variables still by name; params unresolved).
struct SrcExpr {
  enum class Kind : uint8_t {
    kConst,   ///< Numeric or string literal.
    kVar,     ///< Uppercase identifier (rule variable).
    kParam,   ///< Lowercase identifier (program parameter, e.g. max_migrates).
    kUnary,   ///< neg / abs / not.
    kBinary,  ///< Arithmetic, comparison, logical.
  };
  Kind kind = Kind::kConst;
  Value const_val;                ///< kConst.
  std::string name;               ///< kVar / kParam.
  datalog::ExprOp op = datalog::ExprOp::kConst;  ///< kUnary / kBinary.
  std::vector<SrcExpr> kids;

  static SrcExpr Const(Value v);
  static SrcExpr Var(std::string n);
  static SrcExpr Param(std::string n);
  static SrcExpr Unary(datalog::ExprOp op, SrcExpr a);
  static SrcExpr Binary(datalog::ExprOp op, SrcExpr a, SrcExpr b);

  /// Collect variable names referenced (with duplicates).
  void CollectVars(std::vector<std::string>* out) const;
  /// True if this is a bare variable reference.
  bool IsVar() const { return kind == Kind::kVar; }
  std::string ToString() const;
};

/// One argument of an atom. `loc` marks the `@X` location specifier;
/// `agg`/`agg_var` encode aggregate arguments such as `SUM<C>`.
struct SrcArg {
  bool loc = false;
  datalog::AggKind agg = datalog::AggKind::kNone;
  std::string agg_var;  ///< Variable inside the aggregate brackets.
  SrcExpr expr;         ///< For non-aggregate args.

  bool is_aggregate() const { return agg != datalog::AggKind::kNone; }
};

/// A predicate occurrence: `pred(@X, A, SUM<C>)`.
struct SrcAtom {
  std::string pred;
  std::vector<SrcArg> args;
  int line = 0;

  /// Index of the location-specifier argument, or -1.
  int LocArg() const;
  std::string ToString() const;
};

/// One element of a rule body: an atom, a boolean condition, or `X := expr`.
struct SrcBodyElem {
  enum class Kind : uint8_t { kAtom, kCond, kAssign };
  Kind kind = Kind::kAtom;
  SrcAtom atom;            ///< kAtom.
  SrcExpr expr;            ///< kCond / kAssign rhs.
  std::string assign_var;  ///< kAssign lhs.
};

/// `label head <- body.` (derivation) or `label head -> body.` (constraint).
struct SrcRule {
  std::string label;
  bool is_constraint = false;
  /// Set by the localization rewrite on generated shipping rules (the
  /// paper's d21). Shipping rules always read *materialized* remote state —
  /// a remote node cannot see this node's unsolved constraint variables —
  /// so they execute in the engine even when they scan solver tables.
  bool is_ship = false;
  SrcAtom head;
  std::vector<SrcBodyElem> body;
  int line = 0;

  std::string ToString() const;
};

/// `goal minimize C in hostStdevCpu(C).`
struct GoalDecl {
  GoalType type = GoalType::kSatisfy;
  std::string attr_var;
  SrcAtom atom;
  int line = 0;
};

/// `var assign(Vid,Hid,V) forall toAssign(Vid,Hid) [domain [lo,hi]].`
///
/// The `domain` clause is this implementation's (documented) extension: the
/// paper never specifies how solver-variable domains are declared. Defaults
/// to [0, 1].
struct VarDeclStmt {
  SrcAtom var_atom;
  SrcAtom forall_atom;
  std::optional<SrcExpr> dom_lo;
  std::optional<SrcExpr> dom_hi;
  int line = 0;
};

/// `param name [= literal].`
struct ParamDecl {
  std::string name;
  std::optional<Value> value;
  int line = 0;
};

/// `table name(A,B,C) keys(A,B).` — NDlog-style materialization declaration.
struct TableDecl {
  std::string name;
  std::vector<std::string> attrs;
  std::vector<std::string> keys;
  int line = 0;
};

/// A parsed Colog program.
struct Program {
  std::vector<GoalDecl> goals;
  std::vector<VarDeclStmt> var_decls;
  std::vector<ParamDecl> params;
  std::vector<TableDecl> table_decls;
  std::vector<SrcRule> rules;

  /// Statement count as the paper counts program size in Table 2
  /// (goal + var + rules; table/param declarations are bookkeeping).
  size_t RuleCount() const {
    return goals.size() + var_decls.size() + rules.size();
  }
};

}  // namespace cologne::colog

#endif  // COLOGNE_COLOG_AST_H_

#include "colog/codegen.h"

#include "common/strings.h"

namespace cologne::colog {

namespace {

using datalog::AtomIR;
using datalog::Expr;
using datalog::ExprOp;
using datalog::RuleIR;
using datalog::TermIR;

std::string ExprCpp(const Expr& e) {
  switch (e.op) {
    case ExprOp::kConst:
      if (e.const_val.is_string()) return e.const_val.ToString();
      return e.const_val.ToString();
    case ExprOp::kSlot:
      return "s" + std::to_string(e.slot);
    case ExprOp::kNeg: return "-(" + ExprCpp(e.kids[0]) + ")";
    case ExprOp::kAbs: return "std::abs(" + ExprCpp(e.kids[0]) + ")";
    case ExprOp::kNot: return "!(" + ExprCpp(e.kids[0]) + ")";
    default: {
      const char* op = "?";
      switch (e.op) {
        case ExprOp::kAdd: op = "+"; break;
        case ExprOp::kSub: op = "-"; break;
        case ExprOp::kMul: op = "*"; break;
        case ExprOp::kDiv: op = "/"; break;
        case ExprOp::kMod: op = "%"; break;
        case ExprOp::kEq: op = "=="; break;
        case ExprOp::kNe: op = "!="; break;
        case ExprOp::kLt: op = "<"; break;
        case ExprOp::kLe: op = "<="; break;
        case ExprOp::kGt: op = ">"; break;
        case ExprOp::kGe: op = ">="; break;
        case ExprOp::kAnd: op = "&&"; break;
        case ExprOp::kOr: op = "||"; break;
        default: break;
      }
      return "(" + ExprCpp(e.kids[0]) + " " + op + " " + ExprCpp(e.kids[1]) +
             ")";
    }
  }
}

void EmitTupleStruct(std::string& out, const datalog::TableSchema& schema) {
  std::string cls = schema.name;
  cls[0] = static_cast<char>(toupper(cls[0]));
  out += "/// Tuple of relation `" + schema.name + "`.\n";
  out += "struct " + cls + "Tuple {\n";
  for (const std::string& attr : schema.attrs) {
    out += "  Value " + ToLower(attr) + "_;\n";
  }
  out += "\n  Row ToRow() const {\n    return Row{";
  for (size_t i = 0; i < schema.attrs.size(); ++i) {
    if (i) out += ", ";
    out += ToLower(schema.attrs[i]) + "_";
  }
  out += "};\n  }\n";
  out += "  static " + cls + "Tuple FromRow(const Row& row) {\n";
  out += "    " + cls + "Tuple t;\n";
  for (size_t i = 0; i < schema.attrs.size(); ++i) {
    out += "    t." + ToLower(schema.attrs[i]) + "_ = row[" +
           std::to_string(i) + "];\n";
  }
  out += "    return t;\n  }\n";
  if (!schema.key_cols.empty()) {
    out += "  Row Key() const {\n    return Row{";
    for (size_t i = 0; i < schema.key_cols.size(); ++i) {
      if (i) out += ", ";
      out += ToLower(schema.attrs[static_cast<size_t>(schema.key_cols[i])]) + "_";
    }
    out += "};\n  }\n";
  }
  out += "  size_t WireSize() const {\n    size_t n = 21;\n";
  for (const std::string& attr : schema.attrs) {
    out += "    n += " + ToLower(attr) + "_.WireSize();\n";
  }
  out += "    return n;\n  }\n";
  out += "};\n\n";
}

void EmitAtomMatch(std::string& out, const AtomIR& atom, const std::string& row,
                   int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const TermIR& t = atom.args[i];
    if (t.is_const) {
      out += pad + "if (!(" + row + "[" + std::to_string(i) +
             "] == Value(" + t.const_val.ToString() + "))) continue;\n";
    } else {
      out += pad + "if (!BindOrTest(&s" + std::to_string(t.slot) + ", " + row +
             "[" + std::to_string(i) + "])) continue;\n";
    }
  }
}

void EmitRuleHandler(std::string& out, const RuleIR& rule, bool solver_rule,
                     bool constraint) {
  std::string cls = "Rule_" + (rule.label.empty() ? rule.head.table : rule.label);
  out += "/// " + std::string(constraint ? "Constraint" : "Delta handler") +
         " for rule " + rule.label + " (head: " + rule.head.table + ").\n";
  out += "class " + cls + " final : public " +
         (solver_rule ? std::string("SolverRuleHandler")
                      : std::string("DeltaRuleHandler")) +
         " {\n public:\n";
  out += "  explicit " + cls + "(Engine* engine" +
         (solver_rule ? ", solver::Model* model" : "") + ")\n      : engine_(engine)" +
         (solver_rule ? ", model_(model)" : "") + " {\n";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i < rule.trigger.size() && rule.trigger[i]) {
      out += "    engine_->Subscribe(\"" + rule.body[i].table + "\", this, " +
             std::to_string(i) + ");\n";
    }
  }
  out += "  }\n\n";
  // One entry point per triggering atom.
  for (size_t t = 0; t < rule.body.size(); ++t) {
    if (t < rule.trigger.size() && !rule.trigger[t]) continue;
    out += "  void OnDelta" + std::to_string(t) +
           "(const Row& delta, int sign) {\n";
    for (int s = 0; s < rule.num_slots; ++s) {
      out += "    Value s" + std::to_string(s) + ";\n";
    }
    EmitAtomMatch(out, rule.body[t], "delta", 4);
    int indent = 4;
    // Nested scans over the remaining atoms, probing table indexes.
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i == t) continue;
      std::string pad(static_cast<size_t>(indent), ' ');
      out += pad + "for (const Row& r" + std::to_string(i) +
             " : engine_->GetTable(\"" + rule.body[i].table +
             "\")->Probe(BoundCols(), BoundVals())) {\n";
      indent += 2;
      EmitAtomMatch(out, rule.body[i], "r" + std::to_string(i), indent);
    }
    std::string pad(static_cast<size_t>(indent), ' ');
    for (const auto& as : rule.assigns) {
      out += pad + "s" + std::to_string(as.slot) + " = " + ExprCpp(as.expr) +
             ";\n";
    }
    for (const auto& sel : rule.sels) {
      if (solver_rule) {
        out += pad + "model_->Post(" + ExprCpp(sel.expr) + ");\n";
      } else {
        out += pad + "if (!Truthy(" + ExprCpp(sel.expr) + ")) continue;\n";
      }
    }
    if (!constraint) {
      out += pad + "Row head{";
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (i) out += ", ";
        const TermIR& term = rule.head.args[i];
        out += term.is_const ? "Value(" + term.const_val.ToString() + ")"
                             : "s" + std::to_string(term.slot);
      }
      out += "};\n";
      if (rule.agg) {
        out += pad + "agg_.Update(GroupKey(head), s" +
               std::to_string(rule.agg->value_slot) + ", sign);\n";
        out += pad + "EmitAggregate(\"" + rule.head.table + "\", &agg_);\n";
      } else {
        out += pad + "engine_->Route(\"" + rule.head.table +
               "\", std::move(head), sign);\n";
      }
    }
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i == t) continue;
      indent -= 2;
      out += std::string(static_cast<size_t>(indent), ' ') + "}\n";
    }
    out += "  }\n\n";
  }
  out += " private:\n  Engine* engine_;\n";
  if (solver_rule) out += "  solver::Model* model_;\n";
  if (rule.agg) out += "  AggregateState agg_;\n";
  out += "};\n\n";
}

}  // namespace

std::string GenerateCpp(const CompiledProgram& program,
                        const std::string& unit_name) {
  std::string out;
  out += "// Generated by the Cologne Colog compiler. DO NOT EDIT.\n";
  out += "// Imperative translation of the `" + unit_name + "` program:\n";
  out += "// " + std::to_string(program.counts.total()) +
         " Colog statements -> RapidNet-style delta handlers + Gecode-style\n";
  out += "// constraint posting.\n";
  out += "#include \"runtime/instance.h\"\n#include \"solver/model.h\"\n\n";
  out += "namespace generated::" + unit_name + " {\n\n";
  out += "using cologne::Row;\nusing cologne::Value;\n";
  out += "using cologne::datalog::Engine;\nnamespace solver = cologne::solver;\n\n";

  for (const auto& [name, schema] : program.tables) {
    EmitTupleStruct(out, schema);
  }
  for (const datalog::RuleIR& rule : program.engine_rules) {
    EmitRuleHandler(out, rule, false, false);
  }
  for (const SolverRuleIR& rule : program.solver_rules) {
    EmitRuleHandler(out, rule.ir, true, rule.is_constraint);
  }

  // Variable instantiation + goal.
  out += "/// invokeSolver: instantiate decision variables and the goal.\n";
  out += "void BuildModel(Engine* engine, solver::Model* model) {\n";
  for (const VarDeclIR& decl : program.var_decls) {
    out += "  for (const Row& row : engine->GetTable(\"" + decl.forall_table +
           "\")->Rows()) {\n";
    out += "    Row vars;\n";
    for (size_t i = 0; i < decl.from_forall_col.size(); ++i) {
      int src = decl.from_forall_col[i];
      if (src >= 0) {
        out += "    vars.push_back(row[" + std::to_string(src) + "]);\n";
      } else {
        out += StrFormat(
            "    vars.push_back(SymRef(model->NewInt(%lld, %lld)));\n",
            static_cast<long long>(decl.dom_lo),
            static_cast<long long>(decl.dom_hi));
      }
    }
    out += "    RegisterVarRow(\"" + decl.var_table + "\", std::move(vars));\n";
    out += "  }\n";
  }
  if (program.goal.present && !program.goal.table.empty()) {
    out += "  const Row& goal = GoalRow(engine, \"" + program.goal.table +
           "\");\n";
    out += std::string("  model->") +
           (program.goal.type == GoalType::kMinimize ? "Minimize" : "Maximize") +
           "(SymExprOf(goal[" + std::to_string(program.goal.col) + "]));\n";
  }
  out += "}\n\n";
  out += "}  // namespace generated::" + unit_name + "\n";
  return out;
}

size_t CountSloc(const std::string& source) {
  size_t count = 0;
  for (const std::string& raw : Split(source, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (StartsWith(line, "//")) continue;
    ++count;
  }
  return count;
}

}  // namespace cologne::colog

#include "common/json.h"

#include "common/strings.h"

namespace cologne {

JsonWriter& JsonWriter::Key(const char* name) {
  if (!stack_.empty() && !stack_.back().array) {
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty() && stack_.back().array) {
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }
}

JsonWriter& JsonWriter::Open(char brace, bool array) {
  BeforeValue();
  out_ += brace;
  stack_.push_back({array, true});
  return *this;
}

JsonWriter& JsonWriter::Close(char brace) {
  if (!stack_.empty()) stack_.pop_back();
  out_ += brace;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(v));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  out_ += DoubleToShortestString(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Members(const std::string& json) {
  if (json.empty()) return *this;
  if (!stack_.empty() && !stack_.back().array) {
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }
  out_ += json;
  return *this;
}

std::string JsonWriter::Take() {
  std::string out = std::move(out_);
  out_.clear();
  stack_.clear();
  pending_key_ = false;
  return out;
}

}  // namespace cologne

// Small string helpers shared by the Colog frontend and the harnesses.
#ifndef COLOGNE_COMMON_STRINGS_H_
#define COLOGNE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cologne {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lowercase an ASCII string.
std::string ToLower(std::string_view s);

/// Shortest decimal string that round-trips `v` exactly through strtod
/// (tries %.15g, %.16g, %.17g). Used for canonical trace/fault-plan JSON,
/// where byte-identical output across runs must not lose precision.
std::string DoubleToShortestString(double v);

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

}  // namespace cologne

#endif  // COLOGNE_COMMON_STRINGS_H_

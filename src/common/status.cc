#include "common/status.h"

namespace cologne {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kAnalysisError: return "AnalysisError";
    case StatusCode::kPlanError: return "PlanError";
    case StatusCode::kSolverError: return "SolverError";
    case StatusCode::kRuntimeError: return "RuntimeError";
    case StatusCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace cologne

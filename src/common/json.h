// One canonical JSON writer shared by every emitter in the tree.
//
// The trace recorder (runtime/trace_replay.cc), the fault-plan serializer
// (net/fault_plan.cc), the bench SolveRecord rows (common/stats.cc) and the
// obs metrics snapshots (obs/metrics.cc) all print JSON object lines that
// must be byte-stable across runs and platforms: fixed field order, no
// whitespace, doubles via DoubleToShortestString (shortest round-trip), and
// strings through one JsonEscape. Hand-rolled emitters drifted on escaping
// (SolveRecord labels were pasted raw); routing everything through this
// writer makes quotes and backslashes round-trip identically everywhere.
#ifndef COLOGNE_COMMON_JSON_H_
#define COLOGNE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cologne {

/// \brief Append-only canonical JSON builder with automatic commas.
///
/// Calls mirror the output structure: BeginObject/Key/value.../EndObject.
/// Values at array level and keys at object level get their separating
/// comma inserted automatically; nothing else is ever emitted, so the
/// result is canonical (no spaces, stable ordering = call ordering).
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{', /*array=*/false); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('[', /*array=*/true); }
  JsonWriter& EndArray() { return Close(']'); }

  /// Object member name; the next value call supplies its value.
  JsonWriter& Key(const char* name);

  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  /// Canonical double: shortest string that round-trips (strings.h).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  /// Pre-rendered JSON, spliced verbatim (e.g. a nested ToJson()).
  JsonWriter& Raw(const std::string& json);
  /// Pre-rendered `"key":value[,...]` members, spliced into the current
  /// object with the usual comma bookkeeping (trace fault details arrive
  /// pre-rendered from the fault scheduler).
  JsonWriter& Members(const std::string& json);

  const std::string& str() const { return out_; }
  /// Move the finished document out; the writer is reusable afterwards.
  std::string Take();

 private:
  struct Frame {
    bool array = false;
    bool first = true;
  };

  JsonWriter& Open(char brace, bool array);
  JsonWriter& Close(char brace);
  /// Comma bookkeeping before a value (or container) is emitted.
  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace cologne

#endif  // COLOGNE_COMMON_JSON_H_

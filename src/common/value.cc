#include "common/value.h"

#include <cstring>

namespace cologne {

namespace {
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

uint64_t Value::Hash() const {
  uint64_t h = kFnvOffset;
  uint8_t tag = static_cast<uint8_t>(type());
  h = FnvMix(h, &tag, 1);
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      int64_t v = as_int();
      h = FnvMix(h, &v, sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      double v = std::get<double>(repr_);
      h = FnvMix(h, &v, sizeof(v));
      break;
    }
    case ValueType::kString: {
      const std::string& s = as_string();
      h = FnvMix(h, s.data(), s.size());
      break;
    }
    case ValueType::kNode: {
      NodeId v = as_node();
      h = FnvMix(h, &v, sizeof(v));
      break;
    }
    case ValueType::kSym: {
      int32_t v = sym_index();
      h = FnvMix(h, &v, sizeof(v));
      break;
    }
  }
  return h;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[48];
      snprintf(buf, sizeof(buf), "%g", std::get<double>(repr_));
      return buf;
    }
    case ValueType::kString: return "\"" + as_string() + "\"";
    case ValueType::kNode: return "@" + std::to_string(as_node());
    case ValueType::kSym: return "$" + std::to_string(sym_index());
  }
  return "?";
}

size_t Value::WireSize() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kInt: return 1 + 8;
    case ValueType::kDouble: return 1 + 8;
    case ValueType::kString: return 1 + 4 + as_string().size();
    case ValueType::kNode: return 1 + 4;
    case ValueType::kSym: return 1 + 4;
  }
  return 1;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = kFnvOffset;
  for (const Value& v : row) {
    uint64_t hv = v.Hash();
    h = FnvMix(h, &hv, sizeof(hv));
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cologne

#include "common/stats.h"

#include "common/strings.h"

namespace cologne {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Stdev(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = Mean(xs);
  double v = 0;
  for (double x : xs) v += (x - m) * (x - m);
  return std::sqrt(v / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

std::string SolveRecord::ToJsonLine() const {
  std::string out = StrFormat(
      "{\"bench\":\"%s\",\"backend\":\"%s\",\"seed\":%llu,\"workers\":%llu,"
      "\"nodes\":%llu,\"iterations\":%llu,\"restarts\":%llu,\"wall_ms\":%.2f",
      bench.c_str(), backend.c_str(), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(workers),
      static_cast<unsigned long long>(nodes),
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(restarts), wall_ms);
  if (has_objective) out += StrFormat(",\"objective\":%.4f", objective);
  if (loss_pct > 0 || crashes > 0 || drops > 0 || failed_rounds > 0 ||
      recovered_rounds > 0) {
    out += StrFormat(
        ",\"loss_pct\":%.1f,\"crashes\":%llu,\"drops\":%llu,"
        "\"failed_rounds\":%llu,\"recovered_rounds\":%llu",
        loss_pct, static_cast<unsigned long long>(crashes),
        static_cast<unsigned long long>(drops),
        static_cast<unsigned long long>(failed_rounds),
        static_cast<unsigned long long>(recovered_rounds));
  }
  out += "}";
  return out;
}

}  // namespace cologne

#include "common/stats.h"

#include "common/json.h"
#include "common/strings.h"

namespace cologne {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Stdev(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = Mean(xs);
  double v = 0;
  for (double x : xs) v += (x - m) * (x - m);
  return std::sqrt(v / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

namespace {

// Canonical float rendering for SolveRecord rows: round to a fixed number
// of decimals (the old printf precisions), then emit the shortest
// round-trip string like every other JSON emitter in the tree.
double RoundTo(double v, double scale) { return std::round(v * scale) / scale; }

}  // namespace

std::string SolveRecord::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("backend").String(backend);
  w.Key("seed").UInt(seed);
  w.Key("workers").UInt(workers);
  w.Key("nodes").UInt(nodes);
  w.Key("iterations").UInt(iterations);
  w.Key("restarts").UInt(restarts);
  w.Key("wall_ms").Double(RoundTo(wall_ms, 100));
  if (has_objective) w.Key("objective").Double(RoundTo(objective, 10000));
  if (loss_pct > 0 || crashes > 0 || drops > 0 || failed_rounds > 0 ||
      recovered_rounds > 0) {
    w.Key("loss_pct").Double(RoundTo(loss_pct, 10));
    w.Key("crashes").UInt(crashes);
    w.Key("drops").UInt(drops);
    w.Key("failed_rounds").UInt(failed_rounds);
    w.Key("recovered_rounds").UInt(recovered_rounds);
  }
  w.EndObject();
  return w.Take();
}

}  // namespace cologne

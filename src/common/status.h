// Status / Result<T>: return-value based error handling (no exceptions on
// fallible paths), following the RocksDB / Arrow idiom.
#ifndef COLOGNE_COMMON_STATUS_H_
#define COLOGNE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cologne {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,      ///< Colog source could not be tokenized/parsed.
  kAnalysisError,   ///< Static analysis rejected a Colog program.
  kPlanError,       ///< Execution-plan generation failed.
  kSolverError,     ///< Constraint model construction or search failed.
  kRuntimeError,    ///< Engine-level failure during evaluation.
  kUnimplemented,
};

/// \brief Lightweight status object carrying a code and a human-readable message.
///
/// All fallible public APIs in this repository return Status (or Result<T>).
/// A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status AnalysisError(std::string m) {
    return Status(StatusCode::kAnalysisError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(StatusCode::kPlanError, std::move(m));
  }
  static Status SolverError(std::string m) {
    return Status(StatusCode::kSolverError, std::move(m));
  }
  static Status RuntimeError(std::string m) {
    return Status(StatusCode::kRuntimeError, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Render as "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Result<T>: either a value or an error Status (Arrow's Result idiom).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value; callers must check ok() first.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status from the current function.
#define COLOGNE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::cologne::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluate a Result-returning expression; bind the value or propagate the error.
#define COLOGNE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_res = (expr);                       \
  if (!lhs##_res.ok()) return lhs##_res.status(); \
  auto lhs = std::move(lhs##_res).value()

}  // namespace cologne

#endif  // COLOGNE_COMMON_STATUS_H_

// Minimal leveled logging. Default level is kWarn so tests and benches stay
// quiet; harnesses can raise verbosity explicitly.
#ifndef COLOGNE_COMMON_LOGGING_H_
#define COLOGNE_COMMON_LOGGING_H_

#include <string>

namespace cologne {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
/// Current global minimum level.
LogLevel GetLogLevel();
/// Emit one line to stderr if `level` >= the global minimum.
void LogMessage(LogLevel level, const std::string& msg);

}  // namespace cologne

#define COLOGNE_LOG(level, msg)                                       \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::cologne::GetLogLevel())) {                 \
      ::cologne::LogMessage(level, (msg));                            \
    }                                                                 \
  } while (0)

#define COLOGNE_DEBUG(msg) COLOGNE_LOG(::cologne::LogLevel::kDebug, msg)
#define COLOGNE_INFO(msg) COLOGNE_LOG(::cologne::LogLevel::kInfo, msg)
#define COLOGNE_WARN(msg) COLOGNE_LOG(::cologne::LogLevel::kWarn, msg)
#define COLOGNE_ERROR(msg) COLOGNE_LOG(::cologne::LogLevel::kError, msg)

#endif  // COLOGNE_COMMON_LOGGING_H_

#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cologne {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string DoubleToShortestString(double v) {
  for (int prec = 15; prec <= 17; ++prec) {
    std::string s = StrFormat("%.*g", prec, v);
    if (strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrFormat("%.17g", v);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cologne

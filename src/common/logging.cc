#include "common/logging.h"

#include <cstdio>

namespace cologne {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& msg) {
  fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace cologne

// Streaming statistics accumulators used across the evaluation harnesses.
#ifndef COLOGNE_COMMON_STATS_H_
#define COLOGNE_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cologne {

/// \brief Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Incorporate one observation.
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Population standard deviation.
  double stdev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void Reset() { *this = RunningStats(); }

 private:
  size_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0, sum_ = 0;
};

/// Population standard deviation of a vector (one-shot helper).
double Stdev(const std::vector<double>& xs);

/// Arithmetic mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// `p`-th percentile (0..100) by nearest-rank on a copy; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

}  // namespace cologne

#endif  // COLOGNE_COMMON_STATS_H_

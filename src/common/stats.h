// Streaming statistics accumulators used across the evaluation harnesses.
#ifndef COLOGNE_COMMON_STATS_H_
#define COLOGNE_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cologne {

/// \brief Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Incorporate one observation.
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Population standard deviation.
  double stdev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Fold another accumulator into this one (Chan's parallel merge), as if
  /// every observation of `o` had been Add()ed here. Merging with an empty
  /// accumulator on either side is exact.
  void Merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    size_t n = n_ + o.n_;
    double d = o.mean_ - mean_;
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  void Reset() { *this = RunningStats(); }

 private:
  size_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0, sum_ = 0;
};

/// Population standard deviation of a vector (one-shot helper).
double Stdev(const std::vector<double>& xs);

/// Arithmetic mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// `p`-th percentile (0..100) by nearest-rank on a copy; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// \brief One observed solver execution, serialized as a JSON object line so
/// the benches emit per-backend rows comparable across harnesses
/// (bench_overhead, the Figure 2/3 replay, the solver microbenches).
struct SolveRecord {
  std::string bench;    ///< Harness / scenario label.
  std::string backend;  ///< solver::BackendName of the strategy used.
  uint64_t seed = 0;
  uint64_t workers = 1;     ///< Worker threads (1 for sequential backends).
  uint64_t nodes = 0;
  uint64_t iterations = 0;  ///< Backend improvement iterations.
  uint64_t restarts = 0;
  double wall_ms = 0;
  double objective = 0;
  bool has_objective = false;
  // --- Churn columns (fault-injected runs; zero on the happy path) ----------
  double loss_pct = 0;       ///< Injected message-loss percentage.
  uint64_t crashes = 0;      ///< Node crashes during the run.
  uint64_t drops = 0;        ///< Messages lost in flight.
  uint64_t failed_rounds = 0;     ///< Negotiations that failed and requeued.
  uint64_t recovered_rounds = 0;  ///< Failed negotiations later completed.

  /// Render as a single JSON object, e.g.
  /// {"bench":"acloud","backend":"lns","seed":7,...,"objective":3.20}.
  std::string ToJsonLine() const;
};

}  // namespace cologne

#endif  // COLOGNE_COMMON_STATS_H_

// Value: the tagged-union datum stored in Datalog tuples.
//
// Colog tables mix regular attributes (integers, doubles, strings, node
// addresses) with *solver* attributes, whose runtime representation is a
// symbolic reference into the constraint network (kSym).  See Section 4.2 of
// the paper for the regular/solver attribute distinction.
#ifndef COLOGNE_COMMON_VALUE_H_
#define COLOGNE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cologne {

/// Identifier of a node (location) in a distributed deployment.
using NodeId = int32_t;

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt,     ///< 64-bit signed integer (the workhorse type; solver domain type).
  kDouble,  ///< IEEE double (used for measured statistics such as CPU stdev).
  kString,  ///< Interned-by-copy string.
  kNode,    ///< Node address (location specifier value).
  kSym,     ///< Symbolic reference: index of an expression in the constraint
            ///< network built during solver-rule evaluation.
};

/// \brief A single datum within a tuple.
///
/// Values are small, regular, and totally ordered (ordering first by type tag
/// then by payload), which lets tables index and sort heterogeneous columns
/// deterministically.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Node(NodeId v) { return Value(NodeTag{v}); }
  /// A symbolic reference to constraint-network expression `idx`.
  static Value Sym(int32_t idx) { return Value(SymTag{idx}); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      case 3: return ValueType::kString;
      case 4: return ValueType::kNode;
      default: return ValueType::kSym;
    }
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_node() const { return type() == ValueType::kNode; }
  bool is_sym() const { return type() == ValueType::kSym; }
  /// True for any numeric (int or double) payload.
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(repr_))
                    : std::get<double>(repr_);
  }
  const std::string& as_string() const { return std::get<std::string>(repr_); }
  NodeId as_node() const { return std::get<NodeTag>(repr_).id; }
  int32_t sym_index() const { return std::get<SymTag>(repr_).index; }

  bool operator==(const Value& o) const { return repr_ == o.repr_; }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const { return repr_ < o.repr_; }

  /// Stable 64-bit hash (FNV-1a over the canonical encoding).
  uint64_t Hash() const;

  /// Render for debugging/printing: ints bare, strings quoted, nodes as @N,
  /// syms as $k.
  std::string ToString() const;

  /// Approximate serialized size in bytes, used by the network simulator for
  /// bandwidth accounting (Figure 5).
  size_t WireSize() const;

 private:
  struct NodeTag {
    NodeId id;
    auto operator<=>(const NodeTag&) const = default;
  };
  struct SymTag {
    int32_t index;
    auto operator<=>(const SymTag&) const = default;
  };
  using Repr = std::variant<std::monostate, int64_t, double, std::string,
                            NodeTag, SymTag>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

/// A row: ordered list of Values.
using Row = std::vector<Value>;

/// Hash of an entire row (order-sensitive).
uint64_t HashRow(const Row& row);

/// Render a row as "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace cologne

#endif  // COLOGNE_COMMON_VALUE_H_

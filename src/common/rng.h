// Deterministic pseudo-random number generation.
//
// Every experiment in this repository is seeded so results are reproducible
// bit-for-bit across runs; nothing reads entropy from the environment.
#ifndef COLOGNE_COMMON_RNG_H_
#define COLOGNE_COMMON_RNG_H_

#include <cstdint>

namespace cologne {

/// One SplitMix64 scrambling step: the repo's canonical way to derive
/// decorrelated deterministic seeds (Rng seeding, per-worker search seeds).
inline uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// \brief SplitMix64-seeded xoshiro256** generator.
///
/// Small, fast, and deterministic.  Not cryptographic; used only for workload
/// synthesis and randomized search tie-breaking.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seed the generator (SplitMix64 expansion of `seed`).
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      s = SplitMix64(x);
      x += 0x9E3779B97F4A7C15ull;
    }
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Approximately normal draw (sum of 12 uniforms, Irwin-Hall) with the
  /// given mean and standard deviation; adequate for workload noise.
  double Gaussian(double mean, double stddev) {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += UniformDouble();
    return mean + (s - 6.0) * stddev;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace cologne

#endif  // COLOGNE_COMMON_RNG_H_

#include "solver/domain.h"

#include <algorithm>

namespace cologne::solver {

IntDomain::IntDomain(int64_t lo, int64_t hi) {
  lo = std::max(lo, -kDomainLimit);
  hi = std::min(hi, kDomainLimit);
  if (lo <= hi) ranges_.push_back({lo, hi});
}

uint64_t IntDomain::size() const {
  uint64_t n = 0;
  for (const Range& r : ranges_) n += static_cast<uint64_t>(r.hi - r.lo) + 1;
  return n;
}

bool IntDomain::Contains(int64_t v) const {
  for (const Range& r : ranges_) {
    if (v < r.lo) return false;
    if (v <= r.hi) return true;
  }
  return false;
}

bool IntDomain::ClampMin(int64_t lo) {
  if (empty() || lo <= min()) return false;
  size_t i = 0;
  while (i < ranges_.size() && ranges_[i].hi < lo) ++i;
  ranges_.erase(ranges_.begin(), ranges_.begin() + static_cast<long>(i));
  if (!ranges_.empty() && ranges_.front().lo < lo) ranges_.front().lo = lo;
  return true;
}

bool IntDomain::ClampMax(int64_t hi) {
  if (empty() || hi >= max()) return false;
  size_t i = ranges_.size();
  while (i > 0 && ranges_[i - 1].lo > hi) --i;
  ranges_.erase(ranges_.begin() + static_cast<long>(i), ranges_.end());
  if (!ranges_.empty() && ranges_.back().hi > hi) ranges_.back().hi = hi;
  return true;
}

bool IntDomain::Remove(int64_t v) {
  for (size_t i = 0; i < ranges_.size(); ++i) {
    Range& r = ranges_[i];
    if (v < r.lo) return false;
    if (v > r.hi) continue;
    if (r.lo == r.hi) {
      ranges_.erase(ranges_.begin() + static_cast<long>(i));
    } else if (v == r.lo) {
      r.lo = v + 1;
    } else if (v == r.hi) {
      r.hi = v - 1;
    } else {
      Range right{v + 1, r.hi};
      r.hi = v - 1;
      ranges_.insert(ranges_.begin() + static_cast<long>(i) + 1, right);
    }
    return true;
  }
  return false;
}

bool IntDomain::Assign(int64_t v) {
  if (!Contains(v)) {
    bool changed = !empty();
    ranges_.clear();
    return changed;
  }
  if (IsFixed()) return false;
  ranges_.clear();
  ranges_.push_back({v, v});
  return true;
}

bool IntDomain::IntersectWith(const IntDomain& other) {
  std::vector<Range> out;
  size_t i = 0, j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const Range& a = ranges_[i];
    const Range& b = other.ranges_[j];
    int64_t lo = std::max(a.lo, b.lo);
    int64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  bool changed = out != ranges_;
  ranges_ = std::move(out);
  return changed;
}

std::vector<int64_t> IntDomain::Values() const {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(size()));
  AppendValues(&out);
  return out;
}

void IntDomain::AppendValues(std::vector<int64_t>* out) const {
  for (const Range& r : ranges_) {
    for (int64_t v = r.lo; v <= r.hi; ++v) out->push_back(v);
  }
}

bool IntDomain::operator==(const IntDomain& o) const {
  if (ranges_.size() != o.ranges_.size()) return false;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].lo != o.ranges_[i].lo || ranges_[i].hi != o.ranges_[i].hi) {
      return false;
    }
  }
  return true;
}

std::string IntDomain::ToString() const {
  if (empty()) return "{}";
  std::string out = "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i) out += ", ";
    if (ranges_[i].lo == ranges_[i].hi) {
      out += std::to_string(ranges_[i].lo);
    } else {
      out += std::to_string(ranges_[i].lo) + ".." + std::to_string(ranges_[i].hi);
    }
  }
  out += "}";
  return out;
}

}  // namespace cologne::solver

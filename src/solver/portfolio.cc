#include "solver/portfolio.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "solver/lns.h"
#include "solver/sync.h"

namespace cologne::solver {

namespace {

// Decorrelate per-worker seeds from the base seed so two workers never
// replay the same randomized walk.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  return SplitMix64(seed + 0x9E3779B97F4A7C15ull * salt);
}

struct WorkerConfig {
  Model::Options options;
  std::string label;
};

// Race width actually used. Wall-clock-bounded solves are capped at the
// hardware thread count: time-slicing N workers over fewer cores starves
// every one of them of its share of the deadline (each would get budget/N of
// CPU), so oversubscribing strictly loses. Deterministic budgets (node or
// iteration limits with no wall clock) are per-worker CPU work and immune to
// time-slicing, so the requested width always races — which also keeps the
// shared-incumbent machinery exercised on single-core CI runners.
int EffectiveWorkers(const Model::Options& options) {
  // 256 mirrors the planner's SOLVER_WORKERS bound; C++ callers bypass that
  // validation, and an unbounded request would abort on thread exhaustion.
  int workers = std::clamp(options.num_workers, 1, 256);
  if (options.time_limit_ms > 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) workers = std::min(workers, static_cast<int>(hw));
  }
  return workers;
}

size_t CountDecisions(const Model& model) {
  size_t n = 0;
  for (size_t id = 0; id < model.num_vars(); ++id) {
    if (model.IsDecision(IntVar{static_cast<int32_t>(id)})) ++n;
  }
  return n > 0 ? n : model.num_vars();
}

// Run every configured worker to completion on its own thread and merge the
// race outcome. Each worker's backend builds its own SearchContext — and
// with it its own trailed DomainStore, so the in-place domain mutation never
// crosses threads; only the IncumbentStore and CancelToken are shared. Each
// worker publishes improvements into `store` as it finds them
// (SearchContext::RecordSolution); a worker whose Solve returns a proof
// (kOptimal / kInfeasible) cancels the rest of the race.
Solution RunRace(const Model& model, std::vector<WorkerConfig> configs,
                 IncumbentStore& store, CancelToken& cancel) {
  const auto start = std::chrono::steady_clock::now();
  const size_t n = configs.size();
  std::vector<Solution> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&model, &configs, &results, &store, &cancel, i] {
      const Model::Options& opts = configs[i].options;
      Solution s = MakeSearchBackend(opts.backend)->Solve(model, opts);
      // Final publication is normally redundant (improvements stream out of
      // RecordSolution) but covers solutions adopted-then-kept verbatim.
      if (s.has_solution()) store.Offer(s.objective, s.values, static_cast<int>(i));
      if (s.status == SolveStatus::kOptimal ||
          s.status == SolveStatus::kInfeasible) {
        cancel.Cancel();
      }
      results[i] = std::move(s);
    });
  }
  for (std::thread& t : threads) t.join();

  Solution out;
  SolveStats& st = out.stats;
  bool any_proof = false;
  bool any_infeasible = false;
  for (size_t i = 0; i < n; ++i) {
    const SolveStats& ws = results[i].stats;
    st.nodes += ws.nodes;
    st.failures += ws.failures;
    st.solutions += ws.solutions;
    st.propagations += ws.propagations;
    st.iterations += ws.iterations;
    st.restarts += ws.restarts;
    st.trail_saves += ws.trail_saves;
    st.peak_memory_bytes = std::max(st.peak_memory_bytes, ws.peak_memory_bytes);
    any_proof |= results[i].status == SolveStatus::kOptimal ||
                 results[i].status == SolveStatus::kInfeasible;
    any_infeasible |= results[i].status == SolveStatus::kInfeasible;

    WorkerSolveStats w;
    w.config = std::move(configs[i].label);
    w.nodes = ws.nodes;
    w.iterations = ws.iterations;
    w.restarts = ws.restarts;
    IncumbentStore::WorkerMark mark = store.mark(static_cast<int>(i));
    w.improvements = mark.improvements;
    w.last_improve_ms = mark.last_improve_ms;
    st.per_worker.push_back(std::move(w));
  }

  int winner = -1;
  int64_t objective = 0;
  std::vector<int64_t> values;
  if (store.Snapshot(&objective, &values, &winner)) {
    out.values = std::move(values);
    out.objective = objective;
    // Any worker that finished with a proof certifies the shared best: a
    // complete search that exhausted while pruning against the shared bound
    // shows nothing strictly better exists — even when it reports
    // kInfeasible because the bound cut away its whole local tree.
    out.status = any_proof ? SolveStatus::kOptimal : SolveStatus::kFeasible;
    if (winner >= 0 && static_cast<size_t>(winner) < st.per_worker.size()) {
      st.per_worker[static_cast<size_t>(winner)].winner = true;
    }
  } else {
    // No worker published a solution: infeasibility only on a real proof.
    out.status =
        any_infeasible ? SolveStatus::kInfeasible : SolveStatus::kUnknown;
  }
  st.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

// Worker options common to both backends: sequential sub-backend wired to
// the race's shared state. Every worker inherits the caller's warm-start
// hint, so the runtime's cross-solve cache seeds the whole race.
Model::Options WorkerBase(const Model::Options& base, IncumbentStore* store,
                          CancelToken* cancel, int worker) {
  Model::Options o = base;
  o.num_workers = 1;
  o.shared = store;
  o.cancel = cancel;
  o.worker_id = worker;
  return o;
}

// The portfolio mix, cycled over workers: complete B&B (can prove
// optimality), an LNS walk with the caller's seed, B&B with Luby restarts,
// then further LNS walks with distinct seeds and relax-k.
std::vector<WorkerConfig> BuildPortfolio(const Model& model,
                                         const Model::Options& base,
                                         int workers, IncumbentStore* store,
                                         CancelToken* cancel) {
  const size_t decisions = CountDecisions(model);
  std::vector<WorkerConfig> configs;
  configs.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    WorkerConfig cfg;
    cfg.options = WorkerBase(base, store, cancel, i);
    Model::Options& o = cfg.options;
    switch (i % 4) {
      case 0:
        o.backend = Backend::kBranchAndBound;
        if (i == 0) {
          cfg.label =
              o.restart_base_nodes > 0
                  ? StrFormat("bnb+luby(%llu)", static_cast<unsigned long long>(
                                                    o.restart_base_nodes))
                  : "bnb";
        } else {
          // Second and later rounds of the cycle: plain B&B would replay
          // round one's deterministic tree, so diversify with a mixed seed
          // and a restart base distinct from the case-2 workers'.
          o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
          o.restart_base_nodes =
              (base.restart_base_nodes > 0 ? base.restart_base_nodes : 256)
              << std::min(i / 4, 4);
          cfg.label = StrFormat(
              "bnb+luby(%llu)",
              static_cast<unsigned long long>(o.restart_base_nodes));
        }
        break;
      case 1:
        o.backend = Backend::kLns;
        o.seed = i == 1 ? base.seed : MixSeed(base.seed, static_cast<uint64_t>(i));
        cfg.label = StrFormat("lns(seed=%llu)",
                              static_cast<unsigned long long>(o.seed));
        break;
      case 2:
        o.backend = Backend::kBranchAndBound;
        o.restart_base_nodes =
            base.restart_base_nodes > 0 ? base.restart_base_nodes : 512;
        o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
        cfg.label = StrFormat(
            "bnb+luby(%llu)",
            static_cast<unsigned long long>(o.restart_base_nodes));
        break;
      default: {
        o.backend = Backend::kLns;
        o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
        // Distinct relax-k per walk: alternate tight and wide neighborhoods
        // around the adaptive default.
        o.lns_relax_base = (i / 4) % 2 == 0
                               ? 2
                               : static_cast<uint64_t>(decisions / 4 + 1);
        cfg.label = StrFormat("lns(seed=%llu,k=%llu)",
                              static_cast<unsigned long long>(o.seed),
                              static_cast<unsigned long long>(o.lns_relax_base));
        break;
      }
    }
    configs.push_back(std::move(cfg));
  }
  return configs;
}

}  // namespace

Solution PortfolioSearch::Solve(const Model& model,
                                const Model::Options& options) const {
  const int workers = EffectiveWorkers(options);
  IncumbentStore store(model.sense() != Sense::kMaximize, workers);
  CancelToken cancel(options.cancel);
  return RunRace(model,
                 BuildPortfolio(model, options, workers, &store, &cancel),
                 store, cancel);
}

Solution ParallelLnsSearch::Solve(const Model& model,
                                  const Model::Options& options) const {
  const int workers = EffectiveWorkers(options);
  // Single worker: run the sequential backend untouched (no shared state, no
  // extra thread) so a fixed seed reproduces LnsSearch bit-for-bit.
  if (workers == 1) return LnsSearch().Solve(model, options);

  IncumbentStore store(model.sense() != Sense::kMaximize, workers);
  CancelToken cancel(options.cancel);
  const size_t decisions = CountDecisions(model);
  std::vector<WorkerConfig> configs;
  configs.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    WorkerConfig cfg;
    cfg.options = WorkerBase(options, &store, &cancel, i);
    Model::Options& o = cfg.options;
    o.backend = Backend::kLns;
    o.seed = i == 0 ? options.seed : MixSeed(options.seed, static_cast<uint64_t>(i));
    // Every third walk explores wide neighborhoods; the rest keep the
    // caller's (or adaptive) relax-k.
    if (i % 3 == 2) o.lns_relax_base = static_cast<uint64_t>(decisions / 4 + 1);
    cfg.label =
        o.lns_relax_base > 0
            ? StrFormat("lns(seed=%llu,k=%llu)",
                        static_cast<unsigned long long>(o.seed),
                        static_cast<unsigned long long>(o.lns_relax_base))
            : StrFormat("lns(seed=%llu)",
                        static_cast<unsigned long long>(o.seed));
    configs.push_back(std::move(cfg));
  }
  return RunRace(model, std::move(configs), store, cancel);
}

}  // namespace cologne::solver

#include "solver/portfolio.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "solver/context_cache.h"
#include "solver/lns.h"
#include "solver/search_internal.h"
#include "solver/sync.h"

namespace cologne::solver {

namespace {

// Decorrelate per-worker seeds from the base seed so two workers never
// replay the same randomized walk.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  return SplitMix64(seed + 0x9E3779B97F4A7C15ull * salt);
}

struct WorkerConfig {
  Model::Options options;
  std::string label;
};

// Race width actually used. Wall-clock-bounded solves are capped at the
// hardware thread count: time-slicing N workers over fewer cores starves
// every one of them of its share of the deadline (each would get budget/N of
// CPU), so oversubscribing strictly loses. Deterministic budgets (node or
// iteration limits with no wall clock) are per-worker CPU work and immune to
// time-slicing, so the requested width always races — which also keeps the
// shared-incumbent machinery exercised on single-core CI runners.
int EffectiveWorkers(const Model::Options& options) {
  // 256 mirrors the planner's SOLVER_WORKERS bound; C++ callers bypass that
  // validation, and an unbounded request would abort on thread exhaustion.
  int workers = std::clamp(options.num_workers, 1, 256);
  if (options.time_limit_ms > 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) workers = std::min(workers, static_cast<int>(hw));
  }
  return workers;
}

size_t CountDecisions(const Model& model) {
  size_t n = 0;
  for (size_t id = 0; id < model.num_vars(); ++id) {
    if (model.IsDecision(IntVar{static_cast<int32_t>(id)})) ++n;
  }
  return n > 0 ? n : model.num_vars();
}

// Run every configured worker to completion on its own thread and merge the
// race outcome. Each worker's backend builds its own SearchContext — and
// with it its own trailed DomainStore, so the in-place domain mutation never
// crosses threads; only the IncumbentStore and CancelToken are shared. Each
// worker publishes improvements into `store` as it finds them
// (SearchContext::RecordSolution); a worker whose Solve returns a proof
// (kOptimal / kInfeasible) cancels the rest of the race.
Solution RunRace(const Model& model, std::vector<WorkerConfig> configs,
                 IncumbentStore& store, CancelToken& cancel,
                 const ContextCache* cache_proto) {
  const auto start = std::chrono::steady_clock::now();
  const size_t n = configs.size();
  // The context cache is single-threaded (WorkerBase nulled the caller's
  // pointer); a caching race hands each worker a private cache under the
  // same model key instead.
  std::vector<std::unique_ptr<ContextCache>> caches;
  if (cache_proto != nullptr) {
    caches.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      caches.push_back(std::make_unique<ContextCache>());
      caches.back()->set_model_key(cache_proto->model_key());
      configs[i].options.context_cache = caches.back().get();
    }
  }
  std::vector<Solution> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&model, &configs, &results, &store, &cancel, i] {
      const Model::Options& opts = configs[i].options;
      Solution s = MakeSearchBackend(opts.backend)->Solve(model, opts);
      // Final publication is normally redundant (improvements stream out of
      // RecordSolution) but covers solutions adopted-then-kept verbatim.
      if (s.has_solution()) store.Offer(s.objective, s.values, static_cast<int>(i));
      if (s.status == SolveStatus::kOptimal ||
          s.status == SolveStatus::kInfeasible) {
        cancel.Cancel();
      }
      results[i] = std::move(s);
    });
  }
  for (std::thread& t : threads) t.join();

  Solution out;
  SolveStats& st = out.stats;
  bool any_proof = false;
  bool any_infeasible = false;
  for (size_t i = 0; i < n; ++i) {
    const SolveStats& ws = results[i].stats;
    st.nodes += ws.nodes;
    st.failures += ws.failures;
    st.solutions += ws.solutions;
    st.propagations += ws.propagations;
    st.wakes_filtered += ws.wakes_filtered;
    st.props_skipped_entailed += ws.props_skipped_entailed;
    st.iterations += ws.iterations;
    st.restarts += ws.restarts;
    // lns_accepted is deliberately not merged: a cancelled race makes the
    // sum nondeterministic and the runtime emits an "lns.accepted" metric
    // only when it is nonzero, which would poison byte-identical traces.
    st.ls_moves += ws.ls_moves;
    st.ls_accepted += ws.ls_accepted;
    st.ls_tabu_hits += ws.ls_tabu_hits;
    st.trail_saves += ws.trail_saves;
    st.cache_hits += ws.cache_hits;
    st.cache_stores += ws.cache_stores;
    st.cache_mem_bytes = std::max(st.cache_mem_bytes, ws.cache_mem_bytes);
    st.peak_memory_bytes = std::max(st.peak_memory_bytes, ws.peak_memory_bytes);
    any_proof |= results[i].status == SolveStatus::kOptimal ||
                 results[i].status == SolveStatus::kInfeasible;
    any_infeasible |= results[i].status == SolveStatus::kInfeasible;

    WorkerSolveStats w;
    w.config = std::move(configs[i].label);
    w.nodes = ws.nodes;
    w.iterations = ws.iterations;
    w.restarts = ws.restarts;
    IncumbentStore::WorkerMark mark = store.mark(static_cast<int>(i));
    w.improvements = mark.improvements;
    w.last_improve_ms = mark.last_improve_ms;
    st.per_worker.push_back(std::move(w));
  }

  int winner = -1;
  int64_t objective = 0;
  std::vector<int64_t> values;
  if (store.Snapshot(&objective, &values, &winner)) {
    out.values = std::move(values);
    out.objective = objective;
    // Any worker that finished with a proof certifies the shared best: a
    // complete search that exhausted while pruning against the shared bound
    // shows nothing strictly better exists — even when it reports
    // kInfeasible because the bound cut away its whole local tree.
    out.status = any_proof ? SolveStatus::kOptimal : SolveStatus::kFeasible;
    if (winner >= 0 && static_cast<size_t>(winner) < st.per_worker.size()) {
      st.per_worker[static_cast<size_t>(winner)].winner = true;
    }
  } else {
    // No worker published a solution: infeasibility only on a real proof.
    out.status =
        any_infeasible ? SolveStatus::kInfeasible : SolveStatus::kUnknown;
  }
  st.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

// Worker options common to both backends: sequential sub-backend wired to
// the race's shared state. Every worker inherits the caller's warm-start
// hint, so the runtime's cross-solve cache seeds the whole race.
Model::Options WorkerBase(const Model::Options& base, IncumbentStore* store,
                          CancelToken* cancel, int worker) {
  Model::Options o = base;
  o.num_workers = 1;
  o.shared = store;
  o.cancel = cancel;
  o.worker_id = worker;
  // The caller's context cache is single-threaded; workers that want one get
  // a private cache from their launcher (RunRace / SubproblemSolve).
  o.context_cache = nullptr;
  return o;
}

// Replay a subproblem's decision prefix on a fresh trail level of `ctx`,
// apply the incumbent bound, and propagate. False when the prefix is
// infeasible under the current bound (the caller backtracks either way).
bool ReplayPrefix(internal::SearchContext& ctx, const Subproblem& sp,
                  const internal::Incumbent& inc) {
  std::vector<int32_t> changed;
  changed.reserve(sp.assignment.size() + 1);
  for (const auto& [id, value] : sp.assignment) {
    if (!ctx.store().dom(id).Contains(value)) {
      // Failing without propagating: drop the wakes the earlier assignments
      // of this prefix enqueued (the caller backtracks their level).
      ctx.engine().DrainQueue();
      return false;
    }
    ctx.store().Assign(id, value);
    changed.push_back(id);
  }
  if (!ctx.ApplyBound(&changed, inc)) {
    ctx.engine().DrainQueue();
    return false;
  }
  if (changed.empty()) return true;
  return ctx.engine().PropagateFrom(ctx.store(), changed, &ctx.stats);
}

// Subproblem-parallel branch-and-bound (SOLVER_SUBPROBLEMS > 0 with more
// than one worker): instead of racing heterogeneous full-tree searches, a
// master thread seeds an incumbent with limited-discrepancy probes, expands
// the root breadth-first into ~max(subproblems, workers) bounded frontier
// nodes (decision-prefix assignment + the pruning bound at generation time),
// and closes a shared SubproblemQueue. Workers then steal subproblems,
// replay the prefix on their own trailed store, and exhaust the subtree
// under the shared incumbent bound — the DAOOPT parallel scheme: one search
// tree partitioned across workers rather than N overlapping trees.
//
// Completeness: the frontier partitions the root's subtree (every child
// value of every expanded node is either pruned by propagation/bound/
// context-cache proof — each a sound refutation — or enqueued). If
// expansion finished and every stolen subproblem
// was fully exhausted with none left unstolen, the combined search is
// complete: kOptimal / kInfeasible. Any cutoff or leftover subproblem
// downgrades to kFeasible / kUnknown.
Solution SubproblemSolve(const Model& model, const Model::Options& base,
                         int workers) {
  using internal::DiveEnd;
  using internal::Incumbent;
  using internal::SearchContext;

  const auto start = std::chrono::steady_clock::now();
  // Worker 0 is the master; stealing workers are 1..workers.
  IncumbentStore store(model.sense() != Sense::kMaximize, workers + 1);
  CancelToken cancel(base.cancel);
  Solution out;

  // Master phase is single-threaded, so it may use the caller's cache
  // directly (cross-solve hits prune frontier expansion too).
  Model::Options master_opts = WorkerBase(base, &store, &cancel, 0);
  master_opts.context_cache = base.context_cache;
  SearchContext master(model, master_opts);
  Incumbent minc;

  if (!master.PropagateRoot()) {
    master.FinalizeStats();
    out.stats = master.stats;
    out.status = SolveStatus::kInfeasible;
    return out;
  }
  const int root = master.root_level();

  // Seed the shared incumbent before expanding, so frontier generation and
  // every steal prune against a real bound from the start: first the
  // warm-start hint (when assimilable), then limited-discrepancy probes of
  // increasing budget against the value-ordering heuristic.
  {
    size_t applied = 0;
    if (master.ApplyWarmStart(&applied)) {
      SearchContext::DiveLimits seed;
      seed.stop_on_first = true;
      seed.bound_objective = false;
      seed.node_budget = 4'000;
      master.Dive(seed, &minc);
      master.store().BacktrackTo(root);
    }
  }
  for (int64_t d : {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{4}}) {
    if (minc.found || master.ShouldStop()) break;
    SearchContext::DiveLimits probe;
    probe.stop_on_first = true;
    probe.bound_objective = false;
    probe.node_budget = 4'000;
    probe.max_discrepancies = d;
    if (!base.warm_start.empty()) probe.hint = &base.warm_start;
    master.Dive(probe, &minc);
  }
  if (model.sense() == Sense::kSatisfy && minc.found) {
    // Satisfaction is terminal on the first solution: nothing to partition.
    master.FinalizeStats();
    out.stats = master.stats;
    out.values = std::move(minc.values);
    out.objective = minc.objective;
    out.status = SolveStatus::kOptimal;
    return out;
  }

  // Breadth-first frontier expansion: repeatedly replace the oldest frontier
  // node by its surviving children until the frontier is wide enough for the
  // worker pool (or the root's subtree ran out of open nodes first).
  SubproblemQueue queue;
  bool expansion_complete = true;
  const size_t target = std::max<size_t>(
      static_cast<size_t>(base.subproblems), static_cast<size_t>(workers));
  std::deque<Subproblem> frontier;
  frontier.push_back(Subproblem{});
  while (!frontier.empty() && frontier.size() < target) {
    if (master.ShouldStop()) {
      expansion_complete = false;
      break;
    }
    Subproblem sp = std::move(frontier.front());
    frontier.pop_front();
    master.store().PushLevel();
    if (!ReplayPrefix(master, sp, minc)) {
      ++master.stats.failures;
      master.store().Backtrack();
      continue;
    }
    size_t watermark = 0;
    IntVar v = master.order().Select(master.store(), &watermark);
    if (!v.valid()) {
      // The prefix propagates to a full assignment: a solved leaf, not a
      // subproblem.
      master.RecordSolution(&minc);
      master.store().Backtrack();
      continue;
    }
    std::vector<int64_t> values;
    master.store().dom(v.id).AppendValues(&values);
    for (int64_t value : values) {
      ++master.stats.nodes;
      master.store().PushLevel();
      master.store().Assign(v.id, value);
      std::vector<int32_t> changed{v.id};
      bool child_ok = master.ApplyBound(&changed, minc);
      if (!child_ok) {
        // Bound clamp emptied the objective before propagation ran: the
        // child assignment's wakes die with the level.
        master.engine().DrainQueue();
      } else {
        child_ok = master.engine().PropagateFrom(master.store(), changed,
                                                 &master.stats);
      }
      // A cached exhausted-subtree proof covering the enqueue-time bound is
      // as good as a propagation failure: the child's subtree holds nothing
      // better than the incumbent, so it needs no subproblem. This is where
      // the caller's persistent cache prunes frontier expansion itself.
      const bool cache_pruned =
          child_ok && master.CacheCoversCurrentContext(minc);
      master.store().Backtrack();
      if (!child_ok) {
        ++master.stats.failures;
        continue;
      }
      if (cache_pruned) continue;
      Subproblem child;
      child.assignment = sp.assignment;
      child.assignment.emplace_back(v.id, value);
      child.have_bound = master.EffectiveBound(minc, &child.bound);
      frontier.push_back(std::move(child));
    }
    master.store().Backtrack();
  }
  for (Subproblem& sp : frontier) queue.Push(std::move(sp));

  // Worker phase: steal until the queue drains. Each worker owns a private
  // store, propagation engine, and (when caching) context cache; only the
  // incumbent store, cancel token, and queue are shared.
  struct WorkerOut {
    SolveStats stats;
    uint64_t steals = 0;
    bool exhausted_all = true;  ///< Every stolen subproblem fully explored.
    bool terminal = false;      ///< Satisfy-sense solution ended the solve.
  };
  std::vector<WorkerOut> wouts(static_cast<size_t>(workers));
  if (queue.size() > 0) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&model, &base, &store, &cancel, &queue, &wouts,
                            w] {
        WorkerOut& wo = wouts[static_cast<size_t>(w)];
        Model::Options wopts = WorkerBase(base, &store, &cancel, w + 1);
        std::unique_ptr<ContextCache> wcache;
        if (base.context_cache != nullptr) {
          wcache = std::make_unique<ContextCache>();
          wcache->set_model_key(base.context_cache->model_key());
          wopts.context_cache = wcache.get();
        }
        SearchContext ctx(model, wopts);
        Incumbent inc;
        uint64_t seen = 0;
        if (!ctx.PropagateRoot()) {
          // Cannot happen after the master propagated the same root, but
          // keep the worker well-defined regardless.
          ctx.FinalizeStats();
          wo.stats = ctx.stats;
          return;
        }
        Subproblem sp;
        while (queue.Steal(&sp)) {
          ++wo.steals;
          if (ctx.ShouldStop()) {
            // Stolen but not searched: the partition is no longer covered.
            wo.exhausted_all = false;
            break;
          }
          ctx.AdoptShared(&inc, &seen);
          if (sp.have_bound && !inc.found) {
            // The master's generation-time bound arrives even when the
            // incumbent assignment itself has not been adopted yet.
            inc.found = true;
            inc.objective = sp.bound;
          }
          ctx.store().PushLevel();
          if (ReplayPrefix(ctx, sp, inc)) {
            SearchContext::DiveLimits dive;
            if (!base.warm_start.empty()) dive.hint = &base.warm_start;
            const DiveEnd end = ctx.Dive(dive, &inc);
            if (end == DiveEnd::kCutoff) wo.exhausted_all = false;
            if (end == DiveEnd::kFirstSolution &&
                model.sense() == Sense::kSatisfy) {
              // Satisfy-sense dives stop at the first solution; it is
              // terminal for the whole solve. For optimizing senses a
              // worker dive (stop_on_first off) reports kFirstSolution only
              // when the replayed prefix propagated to a full assignment at
              // dive entry — a single leaf Dive already recorded and
              // offered. That subproblem is merely exhausted: treating it
              // as terminal would cancel the race and claim kOptimal with
              // possibly-better subproblems still unstolen.
              wo.terminal = true;
              ctx.store().Backtrack();
              cancel.Cancel();
              break;
            }
          } else {
            ++ctx.stats.failures;
          }
          ctx.store().Backtrack();
        }
        ctx.FinalizeStats();
        wo.stats = ctx.stats;
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Merge: master counters plus per-worker sums; the frontier/steal counters
  // come from the queue itself.
  master.FinalizeStats();
  SolveStats& st = out.stats;
  st = master.stats;
  st.subproblems = queue.pushed();
  {
    WorkerSolveStats wm;
    wm.config = "frontier+lds";
    wm.nodes = master.stats.nodes;
    wm.iterations = master.stats.iterations;
    wm.restarts = master.stats.restarts;
    IncumbentStore::WorkerMark mark = store.mark(0);
    wm.improvements = mark.improvements;
    wm.last_improve_ms = mark.last_improve_ms;
    st.per_worker.push_back(std::move(wm));
  }
  bool all_exhausted = expansion_complete;
  bool terminal = false;
  for (int w = 0; w < workers; ++w) {
    const WorkerOut& wo = wouts[static_cast<size_t>(w)];
    const SolveStats& ws = wo.stats;
    st.nodes += ws.nodes;
    st.failures += ws.failures;
    st.solutions += ws.solutions;
    st.propagations += ws.propagations;
    st.wakes_filtered += ws.wakes_filtered;
    st.props_skipped_entailed += ws.props_skipped_entailed;
    st.iterations += ws.iterations;
    st.restarts += ws.restarts;
    // lns_accepted is deliberately not merged: a cancelled race makes the
    // sum nondeterministic and the runtime emits an "lns.accepted" metric
    // only when it is nonzero, which would poison byte-identical traces.
    st.ls_moves += ws.ls_moves;
    st.ls_accepted += ws.ls_accepted;
    st.ls_tabu_hits += ws.ls_tabu_hits;
    st.trail_saves += ws.trail_saves;
    st.cache_hits += ws.cache_hits;
    st.cache_stores += ws.cache_stores;
    st.cache_mem_bytes = std::max(st.cache_mem_bytes, ws.cache_mem_bytes);
    st.peak_memory_bytes =
        std::max(st.peak_memory_bytes, ws.peak_memory_bytes);
    all_exhausted &= wo.exhausted_all;
    terminal |= wo.terminal;

    WorkerSolveStats wss;
    wss.config = StrFormat("steal(worker=%d,subproblems=%llu)", w + 1,
                           static_cast<unsigned long long>(wo.steals));
    wss.nodes = ws.nodes;
    wss.iterations = ws.iterations;
    wss.restarts = ws.restarts;
    IncumbentStore::WorkerMark mark = store.mark(w + 1);
    wss.improvements = mark.improvements;
    wss.last_improve_ms = mark.last_improve_ms;
    st.per_worker.push_back(std::move(wss));
  }
  st.steals = queue.steals();
  // Leftover subproblems (workers stopped stealing early) mean the
  // partition was not fully covered.
  if (queue.size() > 0) all_exhausted = false;

  int winner = -1;
  int64_t objective = 0;
  std::vector<int64_t> values;
  if (store.Snapshot(&objective, &values, &winner)) {
    out.values = std::move(values);
    out.objective = objective;
    out.status = (all_exhausted || terminal) ? SolveStatus::kOptimal
                                             : SolveStatus::kFeasible;
    if (winner >= 0 && static_cast<size_t>(winner) < st.per_worker.size()) {
      st.per_worker[static_cast<size_t>(winner)].winner = true;
    }
  } else {
    out.status =
        all_exhausted ? SolveStatus::kInfeasible : SolveStatus::kUnknown;
  }
  st.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

// The portfolio mix, cycled over workers: complete B&B (can prove
// optimality), an LNS walk with the caller's seed, B&B with Luby restarts,
// further LNS walks with distinct seeds and relax-k, and — from the fifth
// worker on — SA+tabu local-search walks with mixed seeds.
std::vector<WorkerConfig> BuildPortfolio(const Model& model,
                                         const Model::Options& base,
                                         int workers, IncumbentStore* store,
                                         CancelToken* cancel) {
  const size_t decisions = CountDecisions(model);
  std::vector<WorkerConfig> configs;
  configs.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    WorkerConfig cfg;
    cfg.options = WorkerBase(base, store, cancel, i);
    Model::Options& o = cfg.options;
    switch (i % 5) {
      case 0:
        o.backend = Backend::kBranchAndBound;
        if (i == 0) {
          cfg.label =
              o.restart_base_nodes > 0
                  ? StrFormat("bnb+luby(%llu)", static_cast<unsigned long long>(
                                                    o.restart_base_nodes))
                  : "bnb";
        } else {
          // Second and later rounds of the cycle: plain B&B would replay
          // round one's deterministic tree, so diversify with a mixed seed
          // and a restart base distinct from the case-2 workers'.
          o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
          o.restart_base_nodes =
              (base.restart_base_nodes > 0 ? base.restart_base_nodes : 256)
              << std::min(i / 4, 4);
          cfg.label = StrFormat(
              "bnb+luby(%llu)",
              static_cast<unsigned long long>(o.restart_base_nodes));
        }
        break;
      case 1:
        o.backend = Backend::kLns;
        o.seed = i == 1 ? base.seed : MixSeed(base.seed, static_cast<uint64_t>(i));
        cfg.label = StrFormat("lns(seed=%llu)",
                              static_cast<unsigned long long>(o.seed));
        break;
      case 2:
        o.backend = Backend::kBranchAndBound;
        o.restart_base_nodes =
            base.restart_base_nodes > 0 ? base.restart_base_nodes : 512;
        o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
        cfg.label = StrFormat(
            "bnb+luby(%llu)",
            static_cast<unsigned long long>(o.restart_base_nodes));
        break;
      case 3: {
        o.backend = Backend::kLns;
        o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
        // Distinct relax-k per walk: alternate tight and wide neighborhoods
        // around the adaptive default.
        o.lns_relax_base = (i / 4) % 2 == 0
                               ? 2
                               : static_cast<uint64_t>(decisions / 4 + 1);
        cfg.label = StrFormat("lns(seed=%llu,k=%llu)",
                              static_cast<unsigned long long>(o.seed),
                              static_cast<unsigned long long>(o.lns_relax_base));
        break;
      }
      default:
        o.backend = Backend::kLocalSearch;
        o.seed = MixSeed(base.seed, static_cast<uint64_t>(i));
        cfg.label = StrFormat("local_search(seed=%llu)",
                              static_cast<unsigned long long>(o.seed));
        break;
    }
    configs.push_back(std::move(cfg));
  }
  return configs;
}

}  // namespace

Solution PortfolioSearch::Solve(const Model& model,
                                const Model::Options& options) const {
  const int workers = EffectiveWorkers(options);
  // Subproblem mode: partition one search tree across the pool instead of
  // racing heterogeneous full-tree configurations.
  if (options.subproblems > 0 && workers > 1) {
    return SubproblemSolve(model, options, workers);
  }
  IncumbentStore store(model.sense() != Sense::kMaximize, workers);
  CancelToken cancel(options.cancel);
  return RunRace(model,
                 BuildPortfolio(model, options, workers, &store, &cancel),
                 store, cancel, options.context_cache);
}

Solution ParallelLnsSearch::Solve(const Model& model,
                                  const Model::Options& options) const {
  const int workers = EffectiveWorkers(options);
  // Single worker: run the sequential backend untouched (no shared state, no
  // extra thread) so a fixed seed reproduces LnsSearch bit-for-bit.
  if (workers == 1) return LnsSearch().Solve(model, options);
  // Subproblem mode: steal bounded subtrees from a shared frontier instead
  // of running N overlapping neighborhood walks.
  if (options.subproblems > 0) {
    return SubproblemSolve(model, options, workers);
  }

  IncumbentStore store(model.sense() != Sense::kMaximize, workers);
  CancelToken cancel(options.cancel);
  const size_t decisions = CountDecisions(model);
  std::vector<WorkerConfig> configs;
  configs.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    WorkerConfig cfg;
    cfg.options = WorkerBase(options, &store, &cancel, i);
    Model::Options& o = cfg.options;
    o.backend = Backend::kLns;
    o.seed = i == 0 ? options.seed : MixSeed(options.seed, static_cast<uint64_t>(i));
    // Every third walk explores wide neighborhoods; the rest keep the
    // caller's (or adaptive) relax-k.
    if (i % 3 == 2) o.lns_relax_base = static_cast<uint64_t>(decisions / 4 + 1);
    cfg.label =
        o.lns_relax_base > 0
            ? StrFormat("lns(seed=%llu,k=%llu)",
                        static_cast<unsigned long long>(o.seed),
                        static_cast<unsigned long long>(o.lns_relax_base))
            : StrFormat("lns(seed=%llu)",
                        static_cast<unsigned long long>(o.seed));
    configs.push_back(std::move(cfg));
  }
  return RunRace(model, std::move(configs), store, cancel,
                 options.context_cache);
}

}  // namespace cologne::solver

// Model: the public constraint-programming API of cologne::solver.
//
// This plays the role Gecode played in the original system: callers create
// integer variables, post constraints, declare an objective, and call Solve()
// which runs depth-first branch-and-bound with a configurable time limit (the
// paper's SOLVER_MAX_TIME knob, Section 4.2).
#ifndef COLOGNE_SOLVER_MODEL_H_
#define COLOGNE_SOLVER_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "solver/domain.h"
#include "solver/propagator.h"
#include "solver/sync.h"
#include "solver/types.h"

namespace cologne::solver {

class ContextCache;

/// Objective sense of a model.
enum class Sense : uint8_t { kSatisfy, kMinimize, kMaximize };

/// \brief A constraint-satisfaction/optimization model.
///
/// Variables and constraints are append-only; Solve() is const and can be
/// called repeatedly (e.g. once per `invokeSolver` event).
class Model {
 public:
  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  // --- Variables -----------------------------------------------------------

  /// New integer variable with domain [lo, hi].
  IntVar NewInt(int64_t lo, int64_t hi, std::string name = "");
  /// New variable with an explicit (possibly holey) domain.
  IntVar NewIntFromDomain(IntDomain dom, std::string name = "");
  /// New 0/1 variable.
  IntVar NewBool(std::string name = "") { return NewInt(0, 1, std::move(name)); }

  size_t num_vars() const { return domains_.size(); }
  size_t num_propagators() const { return props_.size(); }

  /// Mark `v` as a decision variable: search branches on decision variables
  /// before any auxiliary variable (auxiliaries are usually functionally
  /// determined by propagation once the decisions are fixed).
  void MarkDecision(IntVar v) {
    if (static_cast<size_t>(v.id) >= is_decision_.size()) {
      is_decision_.resize(domains_.size(), 0);
    }
    is_decision_[static_cast<size_t>(v.id)] = 1;
    has_decisions_ = true;
  }
  bool IsDecision(IntVar v) const {
    return static_cast<size_t>(v.id) < is_decision_.size() &&
           is_decision_[static_cast<size_t>(v.id)] != 0;
  }
  bool has_decisions() const { return has_decisions_; }

  /// Declare a group of decision variables that form one semantic unit —
  /// e.g. all variables of one link in a batched multi-link negotiation
  /// solve (the per-agent neighborhoods of Fioretto et al.'s distributed
  /// LNS). Group-aware backends (LNS and the LNS-based concurrent backends)
  /// relax whole groups as neighborhoods; models with fewer than two groups
  /// keep variable-level neighborhoods. Empty groups are ignored.
  void MarkGroup(std::vector<IntVar> vars) {
    if (!vars.empty()) groups_.push_back(std::move(vars));
  }
  const std::vector<std::vector<IntVar>>& decision_groups() const {
    return groups_;
  }
  const IntDomain& InitialDomain(IntVar v) const {
    return domains_[static_cast<size_t>(v.id)];
  }
  /// All initial domains (index = var id): the root store search backends
  /// start from.
  const std::vector<IntDomain>& initial_domains() const { return domains_; }
  const std::string& NameOf(IntVar v) const {
    return names_[static_cast<size_t>(v.id)];
  }

  // --- Constraints ---------------------------------------------------------

  /// Post `e rel 0`.
  void PostLinear(LinExpr e, Rel rel);
  /// Post `lhs rel rhs`.
  void PostRel(LinExpr lhs, Rel rel, LinExpr rhs);
  /// Post `b <=> (lhs rel rhs)` for an existing 0/1 variable b.
  void PostReified(IntVar b, LinExpr lhs, Rel rel, LinExpr rhs);
  /// Fresh 0/1 variable b with `b <=> (lhs rel rhs)`.
  IntVar ReifyRel(LinExpr lhs, Rel rel, LinExpr rhs);
  /// Remove a single value from a variable's domain (e.g. the wireless
  /// primary-user constraint c1: the assigned channel must differ from every
  /// occupied channel).
  void RemoveValue(IntVar v, int64_t value);

  // --- Derived variables (each returns a fresh variable + channeling) ------

  /// Variable constrained equal to an affine expression. Returns the
  /// underlying variable directly when `e` is a bare 1*x term.
  IntVar VarOf(const LinExpr& e);
  /// z == x * y.
  IntVar MakeTimes(IntVar x, IntVar y);
  /// z == e^2 (used by the STDEV aggregate's sum-of-squared-deviations form).
  IntVar MakeSquare(const LinExpr& e);
  /// z == |e| (used by the SUMABS aggregate).
  IntVar MakeAbs(const LinExpr& e);
  /// z == max(e, c).
  IntVar MakeMaxConst(const LinExpr& e, int64_t c);
  /// b == OR(bs) over 0/1 variables.
  IntVar MakeOr(std::vector<IntVar> bs);
  /// count == |{distinct values taken by vars}| (the UNIQUE aggregate;
  /// decomposed into reified membership booleans).
  IntVar MakeCountDistinct(const std::vector<IntVar>& vars);

  // --- Objective -----------------------------------------------------------

  void Minimize(const LinExpr& e);
  void Maximize(const LinExpr& e);
  /// Plain satisfaction (the paper's `goal satisfy`); the default.
  void Satisfy() { sense_ = Sense::kSatisfy; }

  Sense sense() const { return sense_; }
  /// Objective variable (valid unless sense is kSatisfy).
  IntVar objective_var() const { return objective_; }

  // --- Solving -------------------------------------------------------------

  struct Options {
    /// Missing-entry sentinel for `warm_start`.
    static constexpr int64_t kNoHint = INT64_MIN;

    /// Wall-clock budget; mirrors the paper's SOLVER_MAX_TIME (they used 10 s
    /// for ACloud). <= 0 means unlimited.
    double time_limit_ms = 10'000;
    /// Optional hard cap on explored nodes. 0 means unlimited.
    uint64_t node_limit = 0;
    /// Search strategy (the SOLVER_BACKEND knob).
    Backend backend = Backend::kBranchAndBound;
    /// Seed for all randomized search decisions (the SOLVER_SEED knob);
    /// identical seeds reproduce identical search decisions. For bit-for-bit
    /// reproducible *solutions*, also replace the wall-clock limit with a
    /// deterministic budget (max_iterations and/or node_limit).
    uint64_t seed = 0x10C5;
    /// Luby restart policy for the branch-and-bound backend: restart i gets a
    /// node budget of `restart_base_nodes * luby(i)`, with randomized value
    /// ordering after the first restart. 0 disables restarts.
    uint64_t restart_base_nodes = 0;
    /// Cap on backend improvement iterations (LNS neighborhoods / B&B
    /// improvement dives). 0 means "until the time budget runs out"; a finite
    /// cap makes runs wall-clock independent (deterministic tests).
    uint64_t max_iterations = 0;
    /// Optional warm-start hint: warm_start[var.id] is a suggested value or
    /// kNoHint. Backends use it to seed the first incumbent and bias value
    /// ordering; infeasible hints are repaired, never trusted.
    std::vector<int64_t> warm_start;
    /// Worker threads for the concurrent backends (the SOLVER_WORKERS knob):
    /// kPortfolio races this many heterogeneous configurations, kParallelLns
    /// runs this many seeded neighborhood walks. Sequential backends ignore
    /// it. time_limit_ms is the shared wall-clock deadline of the race;
    /// node_limit and max_iterations apply per worker. Wall-clock-bounded
    /// solves cap the race at the hardware thread count (time-slicing more
    /// workers than cores starves each of its share of the deadline);
    /// deterministic budgets always race the full width.
    int num_workers = 1;
    /// Starting LNS neighborhood size (relax-k); 0 = adaptive default
    /// (#decisions / 10 + 1). Portfolio workers vary it to diversify.
    uint64_t lns_relax_base = 0;
    /// Incremental re-solve (the runtime's SOLVER_INCREMENTAL path): the
    /// warm-start hint is the previous incumbent of a near-identical model,
    /// so backends skip the incumbent-sharpening prefix and open their
    /// improvement loop on `focus_groups` instead of the whole model.
    /// Off by default; when off, every search path is bit-identical to the
    /// non-incremental solver.
    bool incremental = false;
    /// Indices into decision_groups() that a fact-delta fingerprint pass
    /// classified as dirty. Only read when `incremental` is set: LNS relaxes
    /// these neighborhoods first (widening only after they stop improving),
    /// B&B caps its tree-search prefix and focuses the anytime tail the same
    /// way. Empty with `incremental` set means "nothing dirty": the
    /// warm-started incumbent is accepted after the first dive.
    std::vector<size_t> focus_groups;
    /// Transposition/context cache (the SOLVER_CACHE knob): exhausted-subtree
    /// proofs keyed on the fixed decision context, consulted across Luby
    /// restarts, LNS neighborhood trials, and — when the owner persists the
    /// cache — across solves (solver/context_cache.h). Not owned; null
    /// disables caching (the default) and keeps every search path
    /// bit-identical to the cache-free solver. Single-threaded: the
    /// concurrent backends hand each worker a private cache seeded with this
    /// one's model key instead of sharing it.
    ContextCache* context_cache = nullptr;
    /// Subproblem-parallel B&B (the SOLVER_SUBPROBLEMS knob): with more than
    /// one worker, the portfolio/parallel_lns backends expand the root into
    /// about this many bounded subproblems (decision-prefix assignment +
    /// cost bound) and let workers steal them from a shared queue instead of
    /// each re-searching from the root (solver/sync.h SubproblemQueue).
    /// 0 disables (the pre-existing race/walk behaviour).
    int subproblems = 0;
    /// Naive-propagation reference mode (the SOLVER_NAIVE_PROPAGATION knob):
    /// run the legacy flat-FIFO scheduler with full-recompute propagators —
    /// no event filtering, no incremental aggregates, no entailment
    /// unsubscription — reproducing the pre-event-engine propagation counts
    /// byte-for-byte. Search trees are identical in both modes (monotone
    /// propagators reach the same fixpoint under any scheduling order); only
    /// the propagation-effort counters differ. Used by the confluence sweep
    /// and as the baseline leg of the CI propagation-ratio gate.
    bool naive_propagation = false;
    /// Cooperative cancellation: search returns (with the best incumbent so
    /// far) soon after the token is cancelled. Not owned; may be null.
    const CancelToken* cancel = nullptr;
    /// Cross-worker incumbent sharing (set by the concurrent backends, null
    /// for standalone solves): local improvements are published here, the
    /// published bound sharpens branch-and-bound cuts, and LNS periodically
    /// adopts a better shared incumbent. Not owned.
    IncumbentStore* shared = nullptr;
    /// This worker's index into `shared`'s publication marks.
    int worker_id = 0;
  };

  /// Run propagation + the selected search backend (see
  /// solver/search_backend.h).
  ///
  /// The default branch-and-bound backend branches with first-fail variable
  /// selection (smallest domain first, decision variables before
  /// auxiliaries) and ascending value order; on each incumbent the objective
  /// is bounded and search continues (anytime behaviour under the time
  /// limit).
  Solution Solve(const Options& options) const;
  /// Solve with default options.
  Solution Solve() const { return Solve(Options{}); }

  /// Bounds of an affine expression under the *initial* domains.
  ExprBounds InitialBounds(const LinExpr& e) const;

  /// Approximate resident size of the model itself (vars + propagators).
  size_t MemoryEstimate() const;

  const std::vector<std::unique_ptr<Propagator>>& propagators() const {
    return props_;
  }

 private:
  std::vector<IntDomain> domains_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Propagator>> props_;
  std::vector<char> is_decision_;
  std::vector<std::vector<IntVar>> groups_;
  bool has_decisions_ = false;
  Sense sense_ = Sense::kSatisfy;
  IntVar objective_;
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_MODEL_H_

// Shared machinery for the search backends (search.cc, lns.cc): branching
// order, copy-based DFS dives, warm-start assimilation, Luby sequence.
//
// Internal to src/solver; not part of the public Model API.
#ifndef COLOGNE_SOLVER_SEARCH_INTERNAL_H_
#define COLOGNE_SOLVER_SEARCH_INTERNAL_H_

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"
#include "solver/model.h"
#include "solver/propagator.h"

namespace cologne::solver::internal {

/// Branching order: decision variables first, then auxiliaries, each segment
/// ascending by id (matching the historical tie-break of lowest id first).
///
/// Select() keeps a per-search-path *watermark*: domains only narrow along a
/// DFS path, so once the leading `w` variables of the order are fixed they
/// stay fixed in the whole subtree and are never rescanned. In particular,
/// while any decision variable is unfixed the auxiliary segment is not
/// scanned at all — auxiliaries are usually functionally determined and used
/// to dominate SelectVar cost on ACloud-sized models.
class SearchOrder {
 public:
  explicit SearchOrder(const Model& model) {
    const int32_t n = static_cast<int32_t>(model.num_vars());
    order_.reserve(static_cast<size_t>(n));
    for (int32_t id = 0; id < n; ++id) {
      if (model.IsDecision(IntVar{id})) order_.push_back(id);
    }
    num_decisions_ = order_.size();
    for (int32_t id = 0; id < n; ++id) {
      if (!model.IsDecision(IntVar{id})) order_.push_back(id);
    }
  }

  /// First-fail selection (smallest domain) among unfixed variables, decision
  /// variables before auxiliaries, ties by lowest id. Advances `*watermark`
  /// past the fixed prefix; invalid IntVar means everything is fixed.
  IntVar Select(const std::vector<IntDomain>& doms, size_t* watermark) const {
    size_t w = *watermark;
    while (w < order_.size() &&
           doms[static_cast<size_t>(order_[w])].IsFixed()) {
      ++w;
    }
    *watermark = w;
    if (w == order_.size()) return IntVar{};
    // While an unfixed decision variable exists (w inside the decision
    // segment), the scan stops at the segment boundary: auxiliaries are
    // never branched before decisions.
    const size_t end = w < num_decisions_ ? num_decisions_ : order_.size();
    IntVar best;
    uint64_t best_size = 0;
    for (size_t i = w; i < end; ++i) {
      const IntDomain& d = doms[static_cast<size_t>(order_[i])];
      if (d.IsFixed()) continue;
      uint64_t s = d.size();
      if (!best.valid() || s < best_size) {
        best = IntVar{order_[i]};
        best_size = s;
      }
    }
    return best;
  }

  /// Decision-variable ids (the relaxation pool for LNS); all variables when
  /// the model marks none.
  std::vector<int32_t> DecisionIds() const {
    return std::vector<int32_t>(
        order_.begin(),
        order_.begin() + static_cast<ptrdiff_t>(
                             num_decisions_ ? num_decisions_ : order_.size()));
  }

 private:
  std::vector<int32_t> order_;
  size_t num_decisions_ = 0;
};

/// Best solution found so far within one Solve call.
struct Incumbent {
  bool found = false;
  int64_t objective = 0;
  std::vector<int64_t> values;
};

/// How one DFS dive terminated.
enum class DiveEnd {
  kExhausted,      ///< Subtree fully explored.
  kCutoff,         ///< Time / node-budget / node-limit cutoff.
  kFirstSolution,  ///< Stopped at a solution (stop_on_first or kSatisfy).
};

/// Luby restart sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
inline uint64_t Luby(uint64_t i) {
  if (i == 0) return 1;  // out-of-contract call; recursion below needs i >= 1
  for (uint64_t k = 1;; ++k) {
    uint64_t pow2 = uint64_t{1} << k;
    if (i == pow2 - 1) return pow2 >> 1;
    if (i < pow2 - 1) return Luby(i - (pow2 >> 1) + 1);
  }
}

/// \brief Per-Solve search state shared by every phase of a backend: the
/// propagation engine, branching order, wall clock, and statistics.
class SearchContext {
 public:
  SearchContext(const Model& model, const Model::Options& options)
      : model_(model),
        options_(options),
        engine_(&model.propagators(), model.num_vars()),
        order_(model),
        start_(std::chrono::steady_clock::now()) {}

  const Model& model() const { return model_; }
  const Model::Options& options() const { return options_; }
  PropagationEngine& engine() { return engine_; }
  const SearchOrder& order() const { return order_; }

  bool minimizing() const { return model_.sense() == Sense::kMinimize; }
  bool maximizing() const { return model_.sense() == Sense::kMaximize; }
  bool optimizing() const { return minimizing() || maximizing(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  bool out_of_time() const {
    return options_.time_limit_ms > 0 && elapsed_ms() > options_.time_limit_ms;
  }
  bool node_limit_hit() const {
    return options_.node_limit > 0 && stats.nodes >= options_.node_limit;
  }
  bool cancelled() const {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }
  /// Combined stop condition of the improvement loops: budget exhausted or
  /// a concurrent worker cancelled the race.
  bool ShouldStop() const {
    return cancelled() || out_of_time() || node_limit_hit();
  }

  /// Adopt the shared incumbent when a concurrent worker published one that
  /// strictly improves on `inc` (no-op for sequential solves). `seen_version`
  /// is the caller's poll cursor into the store's version counter.
  bool AdoptShared(Incumbent* inc, uint64_t* seen_version) {
    if (options_.shared == nullptr) return false;
    int64_t obj = 0;
    std::vector<int64_t> values;
    if (!options_.shared->AdoptIfBetter(inc->found, inc->objective,
                                        seen_version, &obj, &values)) {
      return false;
    }
    inc->found = true;
    inc->objective = obj;
    inc->values = std::move(values);
    return true;
  }

  struct DiveLimits {
    uint64_t node_budget = 0;   ///< Nodes for this dive; 0 = unlimited.
    bool stop_on_first = false; ///< Return at the first full assignment.
    bool bound_objective = true;///< Apply the B&B cut from the incumbent.
    /// Early soft deadline (elapsed ms) honoured once an incumbent exists —
    /// the B&B backend uses it to reserve budget for the improvement phase.
    double soft_deadline_ms = 0;
    Rng* shuffle_rng = nullptr; ///< Randomize value order (restart dives).
    /// Value-order hint: hint[var.id] tried first when present in the domain.
    const std::vector<int64_t>* hint = nullptr;
  };

  /// Depth-first search from `root` (which must already be propagated and
  /// consistent). Every improving full assignment is recorded into `inc`;
  /// with bound_objective the objective is clamped to strictly-better after
  /// each incumbent. For kSatisfy models the first solution terminates the
  /// dive.
  DiveEnd Dive(std::vector<IntDomain> root, const DiveLimits& limits,
               Incumbent* inc) {
    struct Frame {
      std::vector<IntDomain> doms;
      IntVar var;
      std::vector<int64_t> values;
      size_t next = 0;
      size_t watermark = 0;
    };
    std::vector<Frame> stack;

    // Returns true when `doms` is a full assignment (recorded, not pushed).
    auto push_node = [&](std::vector<IntDomain> doms,
                         size_t watermark) -> bool {
      IntVar v = order_.Select(doms, &watermark);
      if (!v.valid()) {
        RecordSolution(doms, inc);
        return true;
      }
      Frame f;
      f.var = v;
      f.values = doms[static_cast<size_t>(v.id)].Values();
      OrderValues(v, limits, &f.values);
      f.watermark = watermark;
      f.doms = std::move(doms);
      stack.push_back(std::move(f));
      peak_frames = std::max(peak_frames, stack.size());
      return false;
    };

    if (push_node(std::move(root), 0)) return DiveEnd::kFirstSolution;

    uint64_t dive_nodes = 0;
    while (!stack.empty()) {
      if (limits.node_budget > 0 && dive_nodes >= limits.node_budget) {
        return DiveEnd::kCutoff;
      }
      if (node_limit_hit()) return DiveEnd::kCutoff;
      if ((stats.nodes & 0xFF) == 0) {
        if (cancelled()) return DiveEnd::kCutoff;
        if (options_.time_limit_ms > 0) {
          double t = elapsed_ms();
          if (t > options_.time_limit_ms ||
              (limits.soft_deadline_ms > 0 && inc->found &&
               t > limits.soft_deadline_ms)) {
            return DiveEnd::kCutoff;
          }
        }
      }
      Frame& top = stack.back();
      if (top.next >= top.values.size()) {
        stack.pop_back();
        continue;
      }
      int64_t value = top.values[top.next++];
      ++stats.nodes;
      ++dive_nodes;

      std::vector<IntDomain> doms = top.doms;
      const IntVar var = top.var;
      const size_t watermark = top.watermark;
      doms[static_cast<size_t>(var.id)].Assign(value);
      std::vector<int32_t> changed{var.id};
      if (limits.bound_objective && !ApplyBound(doms, &changed, *inc)) {
        ++stats.failures;
        continue;
      }
      if (!engine_.PropagateFrom(doms, changed, &stats)) {
        ++stats.failures;
        continue;
      }
      // NOTE: `top` may dangle after push_node reallocates the stack.
      if (push_node(std::move(doms), watermark)) {
        if (limits.stop_on_first || model_.sense() == Sense::kSatisfy) {
          return DiveEnd::kFirstSolution;
        }
      }
    }
    return DiveEnd::kExhausted;
  }

  /// Record a fully fixed store into `inc` when it improves on it.
  void RecordSolution(const std::vector<IntDomain>& doms, Incumbent* inc) {
    std::vector<int64_t> vals(doms.size());
    for (size_t i = 0; i < doms.size(); ++i) vals[i] = doms[i].value();
    IntVar obj_var = model_.objective_var();
    int64_t obj =
        obj_var.valid() ? vals[static_cast<size_t>(obj_var.id)] : 0;
    if (!inc->found || (minimizing() && obj < inc->objective) ||
        (maximizing() && obj > inc->objective) ||
        model_.sense() == Sense::kSatisfy) {
      inc->found = true;
      inc->objective = obj;
      inc->values = std::move(vals);
      ++stats.solutions;
      // Racing with other workers: publish the improvement. The store keeps
      // it only when it beats every other worker's best.
      if (options_.shared != nullptr) {
        options_.shared->Offer(obj, inc->values, options_.worker_id);
      }
    }
  }

  /// Clamp the objective domain of `doms` to strictly-better-than-incumbent
  /// (the tighter of the local incumbent and the shared race bound, when a
  /// concurrent worker published one); false when the clamp empties it.
  bool ApplyBound(std::vector<IntDomain>& doms, std::vector<int32_t>* changed,
                  const Incumbent& inc) {
    if (!optimizing()) return true;
    bool have = inc.found;
    int64_t bound = inc.objective;
    if (options_.shared != nullptr) {
      int64_t shared_bound = 0;
      if (options_.shared->BestObjective(&shared_bound) &&
          (!have || (minimizing() ? shared_bound < bound
                                  : shared_bound > bound))) {
        have = true;
        bound = shared_bound;
      }
    }
    if (!have) return true;
    IntVar obj_var = model_.objective_var();
    IntDomain& od = doms[static_cast<size_t>(obj_var.id)];
    bool ch = minimizing() ? od.ClampMax(bound - 1) : od.ClampMin(bound + 1);
    if (od.empty()) return false;
    if (ch) changed->push_back(obj_var.id);
    return true;
  }

  /// Assimilate warm-start hints into a propagated root store: hinted
  /// decision variables are assigned one at a time, each followed by
  /// propagation, and any hint that fails is dropped (stale hints repair
  /// instead of poisoning the store). Returns the narrowed store and sets
  /// `*applied` to the number of hints that stuck.
  std::vector<IntDomain> ApplyWarmStart(std::vector<IntDomain> doms,
                                        size_t* applied) {
    *applied = 0;
    const std::vector<int64_t>& hint = options_.warm_start;
    if (hint.empty()) return doms;
    std::vector<std::pair<size_t, int64_t>> wanted;
    for (int32_t id : order_.DecisionIds()) {
      size_t i = static_cast<size_t>(id);
      if (i >= hint.size() || hint[i] == Model::Options::kNoHint) continue;
      if (doms[i].IsFixed()) {
        if (doms[i].value() == hint[i]) ++*applied;
        continue;
      }
      if (doms[i].Contains(hint[i])) wanted.push_back({i, hint[i]});
    }
    if (wanted.empty()) return doms;

    // Fast path: hints usually come from the previous near-identical solve
    // and are mutually consistent — assign them all and propagate once.
    {
      std::vector<IntDomain> trial = doms;
      std::vector<int32_t> changed;
      changed.reserve(wanted.size());
      bool ok = true;
      for (const auto& [i, v] : wanted) {
        trial[i].Assign(v);
        if (trial[i].empty()) {
          ok = false;
          break;
        }
        changed.push_back(static_cast<int32_t>(i));
      }
      if (ok && engine_.PropagateFrom(trial, changed, &stats)) {
        *applied += wanted.size();
        return trial;
      }
    }

    // Slow path: some hint went stale; assimilate one variable at a time so
    // the bad hints are dropped instead of poisoning the store.
    for (const auto& [i, v] : wanted) {
      if (doms[i].IsFixed() || !doms[i].Contains(v)) continue;
      std::vector<IntDomain> trial = doms;
      trial[i].Assign(v);
      std::vector<int32_t> changed{static_cast<int32_t>(i)};
      if (engine_.PropagateFrom(trial, changed, &stats)) {
        doms = std::move(trial);
        ++*applied;
      }
    }
    return doms;
  }

  /// Approximate peak search memory, mirroring the historical estimate.
  size_t PeakMemoryBytes() const {
    return model_.MemoryEstimate() +
           peak_frames * model_.num_vars() *
               (sizeof(IntDomain) + 2 * sizeof(IntDomain::Range));
  }

  SolveStats stats;
  size_t peak_frames = 0;

 private:
  void OrderValues(IntVar v, const DiveLimits& limits,
                   std::vector<int64_t>* values) const {
    if (limits.shuffle_rng != nullptr && values->size() > 1) {
      for (size_t i = values->size() - 1; i > 0; --i) {
        size_t j = static_cast<size_t>(
            limits.shuffle_rng->UniformInt(0, static_cast<int64_t>(i)));
        std::swap((*values)[i], (*values)[j]);
      }
    }
    if (limits.hint != nullptr &&
        static_cast<size_t>(v.id) < limits.hint->size()) {
      int64_t h = (*limits.hint)[static_cast<size_t>(v.id)];
      if (h != Model::Options::kNoHint) {
        auto it = std::find(values->begin(), values->end(), h);
        if (it != values->end()) {
          std::rotate(values->begin(), it, it + 1);
        }
      }
    }
  }

  const Model& model_;
  const Model::Options& options_;
  PropagationEngine engine_;
  SearchOrder order_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cologne::solver::internal

#endif  // COLOGNE_SOLVER_SEARCH_INTERNAL_H_

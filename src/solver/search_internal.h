// Shared machinery for the search backends (search.cc, lns.cc): branching
// order, trailed DFS dives, warm-start assimilation, Luby sequence.
//
// State restoration is trailed (solver/store.h): branching pushes a level,
// mutates the one shared store in place, and backtracks O(changed domains)
// undo records — where the historical core cloned the whole domain vector at
// every node. The explored tree is bit-identical to the copy-based core's:
// backtracking replays the saved range vectors verbatim, so every branching
// decision sees exactly the store the old code saw.
//
// Internal to src/solver; not part of the public Model API.
#ifndef COLOGNE_SOLVER_SEARCH_INTERNAL_H_
#define COLOGNE_SOLVER_SEARCH_INTERNAL_H_

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "solver/context_cache.h"
#include "solver/model.h"
#include "solver/propagator.h"
#include "solver/store.h"

namespace cologne::solver::internal {

/// Branching order: decision variables first, then auxiliaries, each segment
/// ascending by id (matching the historical tie-break of lowest id first).
///
/// Select() keeps a per-search-path *watermark*: domains only narrow along a
/// DFS path, so once the leading `w` variables of the order are fixed they
/// stay fixed in the whole subtree and are never rescanned. In particular,
/// while any decision variable is unfixed the auxiliary segment is not
/// scanned at all — auxiliaries are usually functionally determined and used
/// to dominate SelectVar cost on ACloud-sized models.
class SearchOrder {
 public:
  explicit SearchOrder(const Model& model) {
    const int32_t n = static_cast<int32_t>(model.num_vars());
    order_.reserve(static_cast<size_t>(n));
    for (int32_t id = 0; id < n; ++id) {
      if (model.IsDecision(IntVar{id})) order_.push_back(id);
    }
    num_decisions_ = order_.size();
    for (int32_t id = 0; id < n; ++id) {
      if (!model.IsDecision(IntVar{id})) order_.push_back(id);
    }
    decision_ids_.assign(
        order_.begin(),
        order_.begin() + static_cast<ptrdiff_t>(
                             num_decisions_ ? num_decisions_ : order_.size()));
  }

  /// First-fail selection (smallest domain) among unfixed variables, decision
  /// variables before auxiliaries, ties by lowest id. Advances `*watermark`
  /// past the fixed prefix; invalid IntVar means everything is fixed.
  IntVar Select(const DomainStore& store, size_t* watermark) const {
    size_t w = *watermark;
    while (w < order_.size() && store.dom(order_[w]).IsFixed()) {
      ++w;
    }
    *watermark = w;
    if (w == order_.size()) return IntVar{};
    // While an unfixed decision variable exists (w inside the decision
    // segment), the scan stops at the segment boundary: auxiliaries are
    // never branched before decisions.
    const size_t end = w < num_decisions_ ? num_decisions_ : order_.size();
    IntVar best;
    uint64_t best_size = 0;
    for (size_t i = w; i < end; ++i) {
      const IntDomain& d = store.dom(order_[i]);
      if (d.IsFixed()) continue;
      uint64_t s = d.size();
      if (!best.valid() || s < best_size) {
        best = IntVar{order_[i]};
        best_size = s;
      }
    }
    return best;
  }

  /// Decision-variable ids (the relaxation pool for LNS, and the context-
  /// cache signature domain); all variables when the model marks none.
  /// Returns a reference into the order — LNS calls this from its hot
  /// relaxation loop, where the historical per-call copy dominated.
  const std::vector<int32_t>& DecisionIds() const { return decision_ids_; }

 private:
  std::vector<int32_t> order_;
  std::vector<int32_t> decision_ids_;
  size_t num_decisions_ = 0;
};

/// Best solution found so far within one Solve call.
struct Incumbent {
  bool found = false;
  int64_t objective = 0;
  std::vector<int64_t> values;
};

/// How one DFS dive terminated.
enum class DiveEnd {
  kExhausted,      ///< Subtree fully explored.
  kCutoff,         ///< Time / node-budget / node-limit cutoff.
  kFirstSolution,  ///< Stopped at a solution (stop_on_first or kSatisfy).
};

/// Luby restart sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
/// Iterative (the sequence's self-similar suffix is peeled off in a loop):
/// called once per restart on the hot path, so no recursion depth in log(i).
///
/// Contract: i >= 1 — the sequence has no zeroth element, and callers count
/// restarts from 1. An out-of-contract call asserts in debug builds and
/// pins to the first block's value in release builds.
inline uint64_t Luby(uint64_t i) {
  assert(i >= 1 && "Luby(i) is 1-indexed; callers count restarts from 1");
  if (i == 0) return 1;  // release-build fallback; the loop needs i >= 1
  for (;;) {
    const uint64_t p = i + 1;  // i == 2^k - 1  <=>  i+1 is a power of two
    if ((p & (p - 1)) == 0) return p >> 1;
    // Otherwise peel the leading completed block: with 2^(k-1)-1 < i < 2^k-1,
    // position i restates position i - 2^(k-1) + 1 of the same sequence.
    uint64_t pow2 = uint64_t{1} << 1;
    while (pow2 - 1 < i) pow2 <<= 1;
    i -= (pow2 >> 1) - 1;
  }
}

/// \brief Per-Solve search state shared by every phase of a backend: the
/// trailed domain store, propagation engine, branching order, wall clock,
/// and statistics.
///
/// One store serves the whole solve. Level 0 holds the model's pristine
/// initial domains (never mutated above level 0); PropagateRoot() pushes the
/// root level and narrows it to the propagated root every dive starts from.
/// Dive() always restores the store to its entry level before returning, so
/// phases compose by push/backtrack instead of cloning root vectors.
class SearchContext {
 public:
  SearchContext(const Model& model, const Model::Options& options)
      : model_(model),
        options_(options),
        engine_(&model.propagators(), model.num_vars(),
                options.naive_propagation),
        order_(model),
        cache_(options.context_cache),
        start_(std::chrono::steady_clock::now()) {
    store_.Init(model.initial_domains());
    // Event mode: aggregates + entailment flags become trailed aux slots of
    // the freshly initialized store, and every mutation from here on —
    // branching assignments included — reaches the engine as a typed event.
    engine_.AttachStore(store_);
  }

  const Model& model() const { return model_; }
  const Model::Options& options() const { return options_; }
  PropagationEngine& engine() { return engine_; }
  const SearchOrder& order() const { return order_; }
  DomainStore& store() { return store_; }

  /// Push the root level and run all propagators to fixpoint; false means
  /// the model is infeasible by propagation alone. Call once per solve,
  /// before any dive; root_level() then marks the propagated root state.
  bool PropagateRoot() {
    store_.PushLevel();
    root_level_ = store_.level();
    return engine_.PropagateAll(store_, &stats);
  }
  int root_level() const { return root_level_; }

  bool minimizing() const { return model_.sense() == Sense::kMinimize; }
  bool maximizing() const { return model_.sense() == Sense::kMaximize; }
  bool optimizing() const { return minimizing() || maximizing(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  bool out_of_time() const {
    return options_.time_limit_ms > 0 && elapsed_ms() > options_.time_limit_ms;
  }
  bool node_limit_hit() const {
    return options_.node_limit > 0 && stats.nodes >= options_.node_limit;
  }
  bool cancelled() const {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }
  /// Combined stop condition of the improvement loops: budget exhausted or
  /// a concurrent worker cancelled the race.
  bool ShouldStop() const {
    return cancelled() || out_of_time() || node_limit_hit();
  }

  /// Adopt the shared incumbent when a concurrent worker published one that
  /// strictly improves on `inc` (no-op for sequential solves). `seen_version`
  /// is the caller's poll cursor into the store's version counter.
  bool AdoptShared(Incumbent* inc, uint64_t* seen_version) {
    if (options_.shared == nullptr) return false;
    int64_t obj = 0;
    std::vector<int64_t> values;
    if (!options_.shared->AdoptIfBetter(inc->found, inc->objective,
                                        seen_version, &obj, &values)) {
      return false;
    }
    inc->found = true;
    inc->objective = obj;
    inc->values = std::move(values);
    return true;
  }

  struct DiveLimits {
    uint64_t node_budget = 0;   ///< Nodes for this dive; 0 = unlimited.
    bool stop_on_first = false; ///< Return at the first full assignment.
    bool bound_objective = true;///< Apply the B&B cut from the incumbent.
    /// Early soft deadline (elapsed ms) honoured once an incumbent exists —
    /// the B&B backend uses it to reserve budget for the improvement phase.
    double soft_deadline_ms = 0;
    Rng* shuffle_rng = nullptr; ///< Randomize value order (restart dives).
    /// Value-order hint: hint[var.id] tried first when present in the domain.
    const std::vector<int64_t>* hint = nullptr;
    /// Limited-discrepancy cap: a branch whose cumulative discrepancy count
    /// (sum of value-order indices along the path from the dive root) would
    /// exceed this is skipped. A truncated dive reports kCutoff — the
    /// subtree was not exhausted — and records no context-cache proofs for
    /// truncated subtrees. -1 (the default) disables LDS.
    int64_t max_discrepancies = -1;
  };

  /// Depth-first search from the store's current state (which must already
  /// be propagated and consistent). Branching pushes one trail level per
  /// attempted value; exhausted or failed subtrees backtrack in O(changed
  /// domains). Every improving full assignment is recorded into `inc`; with
  /// bound_objective the objective is clamped to strictly-better after each
  /// incumbent. For kSatisfy models the first solution terminates the dive.
  /// The store is restored to its entry level before returning.
  DiveEnd Dive(const DiveLimits& limits, Incumbent* inc) {
    const int base = store_.level();
    frames_.clear();
    const bool use_cache = cache_ != nullptr;
    bool base_truncated = false;

    // Materializes the current store as an open node: selects the branching
    // variable and fills the depth's reusable value buffer. Returns true
    // when the store is a full assignment (recorded, not pushed).
    auto push_node = [&](size_t watermark, size_t depth,
                         size_t path_disc) -> bool {
      IntVar v = order_.Select(store_, &watermark);
      if (!v.valid()) {
        RecordSolution(inc);
        return true;
      }
      if (value_scratch_.size() <= depth) value_scratch_.resize(depth + 1);
      std::vector<int64_t>& values = value_scratch_[depth];
      values.clear();
      store_.dom(v.id).AppendValues(&values);
      OrderValues(v, limits, &values);
      frames_.push_back(Frame{v, 0, watermark, values.size(), 0, path_disc,
                              /*truncated=*/false});
      return false;
    };

    uint64_t entry_sig = 0;
    if (use_cache) {
      entry_sig = ContextSignature();
      // A stored proof already covers the whole dive under the bound now in
      // effect: nothing to explore (cross-restart / cross-solve skip).
      if (CacheLookup(entry_sig, limits, *inc)) return DiveEnd::kExhausted;
    }
    if (push_node(0, 0, 0)) {
      store_.BacktrackTo(base);
      return DiveEnd::kFirstSolution;
    }
    if (use_cache) frames_.back().sig = entry_sig;

    uint64_t dive_nodes = 0;
    while (!frames_.empty()) {
      if (limits.node_budget > 0 && dive_nodes >= limits.node_budget) {
        store_.BacktrackTo(base);
        return DiveEnd::kCutoff;
      }
      if (node_limit_hit()) {
        store_.BacktrackTo(base);
        return DiveEnd::kCutoff;
      }
      if ((stats.nodes & 0xFF) == 0) {
        if (cancelled()) {
          store_.BacktrackTo(base);
          return DiveEnd::kCutoff;
        }
        // The soft deadline is independent of the global wall-clock limit:
        // an anytime dive with time_limit_ms == 0 (unlimited) must still
        // honour it once an incumbent exists. (It historically sat nested
        // inside the global-limit branch and was dead code for unlimited
        // solves.)
        double t = -1;
        if (options_.time_limit_ms > 0) {
          t = elapsed_ms();
          if (t > options_.time_limit_ms) {
            store_.BacktrackTo(base);
            return DiveEnd::kCutoff;
          }
        }
        if (limits.soft_deadline_ms > 0 && inc->found) {
          if (t < 0) t = elapsed_ms();
          if (t > limits.soft_deadline_ms) {
            store_.BacktrackTo(base);
            return DiveEnd::kCutoff;
          }
        }
      }
      Frame& top = frames_.back();
      if (limits.max_discrepancies >= 0 && top.next < top.num_values &&
          static_cast<int64_t>(top.path_disc + top.next) >
              limits.max_discrepancies) {
        // LDS: every remaining branch costs at least this discrepancy count
        // (value-order index) — skip them and mark the subtree incomplete.
        top.truncated = true;
        top.next = top.num_values;
      }
      if (top.next >= top.num_values) {
        // Subtree exhausted (or LDS-truncated): drop the frame and (unless
        // it is the dive root, which owns no level) undo its parent's
        // branching level. A fully explored subtree is an exhausted-subtree
        // proof; a truncated one is not, and poisons its ancestors' proofs.
        const bool truncated = top.truncated;
        const uint64_t sig = top.sig;
        frames_.pop_back();
        if (truncated) {
          if (!frames_.empty()) {
            frames_.back().truncated = true;
          } else {
            base_truncated = true;
          }
        } else if (use_cache) {
          CacheStore(sig, limits, *inc);
        }
        if (!frames_.empty()) store_.Backtrack();
        continue;
      }
      // Copy the branching decision out of the frame: push_node below may
      // grow `frames_` and invalidate `top` (the historical dangling-
      // reference hazard of the copy-based loop).
      const IntVar var = top.var;
      const size_t watermark = top.watermark;
      const size_t child_depth = frames_.size();
      const size_t child_disc = top.path_disc + top.next;
      const int64_t value = value_scratch_[child_depth - 1][top.next++];
      ++stats.nodes;
      ++dive_nodes;

      store_.PushLevel();
      store_.Assign(var.id, value);
      changed_scratch_.clear();
      changed_scratch_.push_back(var.id);
      if (limits.bound_objective && !ApplyBound(&changed_scratch_, *inc)) {
        ++stats.failures;
        // Failed without running propagation: discard the wakes the
        // listener enqueued for the assignment we are about to undo.
        engine_.DrainQueue();
        store_.Backtrack();
        continue;
      }
      if (!engine_.PropagateFrom(store_, changed_scratch_, &stats)) {
        ++stats.failures;
        store_.Backtrack();
        continue;
      }
      uint64_t child_sig = 0;
      if (use_cache) {
        child_sig = ContextSignature();
        if (CacheLookup(child_sig, limits, *inc)) {
          // A previous dive exhausted this decision context under a bound at
          // least as tight: prune without descending.
          store_.Backtrack();
          continue;
        }
      }
      if (push_node(watermark, child_depth, child_disc)) {
        if (limits.stop_on_first || model_.sense() == Sense::kSatisfy) {
          store_.BacktrackTo(base);
          return DiveEnd::kFirstSolution;
        }
        // Solution leaf: undo this attempt's level and continue with the
        // parent frame's remaining values.
        store_.Backtrack();
      } else if (use_cache) {
        frames_.back().sig = child_sig;
      }
    }
    store_.BacktrackTo(base);  // no-op: every frame pop backtracked its level
    return base_truncated ? DiveEnd::kCutoff : DiveEnd::kExhausted;
  }

  /// Pin every decision of `units[from..)` to its incumbent value on the
  /// current trail level (the LNS "fix the non-relaxed neighborhoods" step,
  /// and the incremental path's "pin the clean groups" step — same
  /// mechanism). Returns false as soon as an assignment empties a domain;
  /// the caller backtracks the level either way.
  bool FixUnitsToIncumbent(const std::vector<std::vector<int32_t>>& units,
                           size_t from, const Incumbent& inc) {
    for (size_t i = from; i < units.size(); ++i) {
      for (int32_t id : units[i]) {
        store_.Assign(id, inc.values[static_cast<size_t>(id)]);
        if (store_.dom(id).empty()) {
          // Failing without propagating: drop the wakes already enqueued
          // for the assignments the caller is about to backtrack.
          engine_.DrainQueue();
          return false;
        }
      }
    }
    return true;
  }

  /// Record the store's (fully fixed) assignment into `inc` when it improves.
  void RecordSolution(Incumbent* inc) {
    std::vector<int64_t> vals(store_.size());
    for (size_t i = 0; i < store_.size(); ++i) vals[i] = store_[i].value();
    IntVar obj_var = model_.objective_var();
    int64_t obj =
        obj_var.valid() ? vals[static_cast<size_t>(obj_var.id)] : 0;
    if (!inc->found || (minimizing() && obj < inc->objective) ||
        (maximizing() && obj > inc->objective) ||
        model_.sense() == Sense::kSatisfy) {
      inc->found = true;
      inc->objective = obj;
      inc->values = std::move(vals);
      ++stats.solutions;
      // Racing with other workers: publish the improvement. The store keeps
      // it only when it beats every other worker's best.
      if (options_.shared != nullptr) {
        options_.shared->Offer(obj, inc->values, options_.worker_id);
      }
    }
  }

  /// The bound branch-and-bound prunes against: the tighter of the local
  /// incumbent and the shared race bound (when a concurrent worker published
  /// one). False when neither exists yet. This is also the bound region that
  /// context-cache proofs are stored and looked up under, so the two stay in
  /// exact agreement by construction.
  bool EffectiveBound(const Incumbent& inc, int64_t* bound) const {
    bool have = inc.found;
    int64_t b = inc.objective;
    if (options_.shared != nullptr) {
      int64_t shared_bound = 0;
      if (options_.shared->BestObjective(&shared_bound) &&
          (!have ||
           (minimizing() ? shared_bound < b : shared_bound > b))) {
        have = true;
        b = shared_bound;
      }
    }
    *bound = b;
    return have;
  }

  /// Clamp the store's objective domain to strictly-better-than-incumbent
  /// (EffectiveBound); false when the clamp empties it. The clamp is trailed
  /// like any branching mutation, so backtracking the level restores the
  /// pre-clamp domain.
  bool ApplyBound(std::vector<int32_t>* changed, const Incumbent& inc) {
    if (!optimizing()) return true;
    int64_t bound = 0;
    if (!EffectiveBound(inc, &bound)) return true;
    // "Strictly better than the extreme representable value" is
    // unsatisfiable; saturate instead of computing bound∓1, which would be
    // signed-overflow UB at INT64_MIN / INT64_MAX.
    if (minimizing() ? bound == INT64_MIN : bound == INT64_MAX) return false;
    IntVar obj_var = model_.objective_var();
    bool ch = minimizing() ? store_.ClampMax(obj_var.id, bound - 1)
                           : store_.ClampMin(obj_var.id, bound + 1);
    if (store_.dom(obj_var.id).empty()) return false;
    if (ch) changed->push_back(obj_var.id);
    return true;
  }

  /// Order-independent signature of the current decision context: XOR over
  /// per-(variable, value) hashes of the *fixed* decision variables. Two
  /// nodes reached by different branching orders (or with different
  /// auxiliary domains) that fix the same decisions to the same values hash
  /// identically — exactly the DAOOPT context-equivalence the cache prunes
  /// on. Auxiliary variables are excluded by construction.
  uint64_t ContextSignature() const {
    uint64_t sig = 0x736f6c7665724343ull;  // "solverCC"
    for (int32_t id : order_.DecisionIds()) {
      const IntDomain& d = store_.dom(id);
      if (!d.IsFixed()) continue;
      sig ^= SplitMix64(
          SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(id)) +
                     0x9E3779B97F4A7C15ull) ^
          static_cast<uint64_t>(d.value()));
    }
    return sig;
  }

  /// True (and counted as a cache hit) when a stored proof covers the
  /// store's current decision context under the bound in effect
  /// (EffectiveBound, the same region Dive looks up and stores under).
  /// Lets the subproblem master prune frontier children whose subtree a
  /// previous dive — possibly from an earlier solve sharing the persistent
  /// cache — already exhausted, without descending into them. False when
  /// caching is disabled.
  bool CacheCoversCurrentContext(const Incumbent& inc) {
    if (cache_ == nullptr) return false;
    return CacheLookup(ContextSignature(), DiveLimits{}, inc);
  }

  /// Assimilate warm-start hints into the store (which must hold a
  /// propagated root): hinted decision variables are assigned one at a time,
  /// each followed by propagation, and any hint that fails is dropped (stale
  /// hints repair instead of poisoning the store). Narrowing stacks trail
  /// levels above the root; the caller unwinds with BacktrackTo(root_level).
  /// Sets `*applied` to the number of hints that stuck and returns whether
  /// the store narrowed at all.
  bool ApplyWarmStart(size_t* applied) {
    *applied = 0;
    const std::vector<int64_t>& hint = options_.warm_start;
    if (hint.empty()) return false;
    std::vector<std::pair<size_t, int64_t>> wanted;
    for (int32_t id : order_.DecisionIds()) {
      size_t i = static_cast<size_t>(id);
      if (i >= hint.size() || hint[i] == Model::Options::kNoHint) continue;
      if (store_[i].IsFixed()) {
        if (store_[i].value() == hint[i]) ++*applied;
        continue;
      }
      if (store_[i].Contains(hint[i])) wanted.push_back({i, hint[i]});
    }
    if (wanted.empty()) return false;

    // Fast path: hints usually come from the previous near-identical solve
    // and are mutually consistent — assign them all and propagate once.
    {
      store_.PushLevel();
      std::vector<int32_t> changed;
      changed.reserve(wanted.size());
      bool ok = true;
      for (const auto& [i, v] : wanted) {
        store_.Assign(static_cast<int32_t>(i), v);
        if (store_[i].empty()) {
          ok = false;
          break;
        }
        changed.push_back(static_cast<int32_t>(i));
      }
      if (ok && engine_.PropagateFrom(store_, changed, &stats)) {
        *applied += wanted.size();
        return true;
      }
      // Either an assignment emptied a domain before propagation ran (drain
      // the listener-enqueued wakes) or propagation failed (queue already
      // drained; the extra drain is a no-op).
      engine_.DrainQueue();
      store_.Backtrack();
    }

    // Slow path: some hint went stale; assimilate one variable at a time so
    // the bad hints are dropped instead of poisoning the store. Each hint
    // that sticks keeps its level on the stack.
    bool narrowed = false;
    for (const auto& [i, v] : wanted) {
      if (store_[i].IsFixed() || !store_[i].Contains(v)) continue;
      store_.PushLevel();
      store_.Assign(static_cast<int32_t>(i), v);
      changed_scratch_.clear();
      changed_scratch_.push_back(static_cast<int32_t>(i));
      if (engine_.PropagateFrom(store_, changed_scratch_, &stats)) {
        ++*applied;
        narrowed = true;
      } else {
        store_.Backtrack();
      }
    }
    return narrowed;
  }

  /// Peak search memory: the model plus the store's in-place domain array
  /// and the trail's high-water mark (undo records + saved range vectors) —
  /// the copy-based core reported peak open frames × store width here.
  size_t PeakMemoryBytes() const {
    return model_.MemoryEstimate() + store_.PeakMemoryBytes();
  }

  /// Stamp the end-of-solve statistics (wall clock, peak memory, trail
  /// saves, per-kind propagation counts); every backend exit path calls
  /// this exactly once.
  void FinalizeStats() {
    stats.wall_ms = elapsed_ms();
    stats.peak_memory_bytes = PeakMemoryBytes();
    stats.trail_saves = store_.total_saves();
    stats.wakes_filtered = engine_.wakes_filtered();
    stats.props_skipped_entailed = engine_.props_skipped_entailed();
    if (cache_ != nullptr) stats.cache_mem_bytes = cache_->MemoryBytes();
    const std::vector<uint64_t>& runs = engine_.run_counts();
    const auto& props = model_.propagators();
    for (size_t i = 0; i < runs.size() && i < props.size(); ++i) {
      if (runs[i] > 0) stats.propagations_by_kind[props[i]->kind()] += runs[i];
    }
  }

  SolveStats stats;

 private:
  /// One open DFS node. Domains live in the shared trailed store (the level
  /// pushed by the parent's branching attempt); the candidate values live in
  /// the per-depth scratch buffer, reused across every node at that depth.
  struct Frame {
    IntVar var;
    size_t next = 0;
    size_t watermark = 0;
    size_t num_values = 0;
    uint64_t sig = 0;        ///< Context signature (cache enabled only).
    size_t path_disc = 0;    ///< Discrepancies consumed, dive root to here.
    bool truncated = false;  ///< LDS skipped branches somewhere below.
  };

  /// True (and counted) when a stored proof covers the dive's current bound
  /// region at `sig`, i.e. the subtree can be pruned without descending.
  bool CacheLookup(uint64_t sig, const DiveLimits& limits,
                   const Incumbent& inc) {
    bool have = false;
    int64_t bound = 0;
    if (optimizing() && limits.bound_objective) {
      have = EffectiveBound(inc, &bound);
    }
    if (!cache_->Lookup(sig, minimizing(), have, bound)) return false;
    ++stats.cache_hits;
    return true;
  }

  /// Record the proof a fully-explored (never LDS-truncated, never cut off)
  /// subtree pop establishes: for a bounded optimizing dive, "no solution in
  /// this context better than the bound in effect now" (the pop-time bound
  /// is the tightest the subtree was ever searched under, so it is the
  /// strongest sound claim); for satisfy-sense dives — which stop at the
  /// first solution, so a pop means none exists — and for optimizing dives
  /// that explored unbounded and found nothing, the unconditional "no
  /// solution extends this context".
  void CacheStore(uint64_t sig, const DiveLimits& limits,
                  const Incumbent& inc) {
    bool have = false;
    int64_t bound = 0;
    if (optimizing()) {
      if (!limits.bound_objective) {
        // Explored without pruning: exhaustion with an incumbent proves
        // nothing a later bounded dive can reuse soundly — skip.
        if (inc.found) return;
      } else {
        have = EffectiveBound(inc, &bound);
      }
    }
    cache_->Store(sig, minimizing(), have, bound);
    ++stats.cache_stores;
  }

  void OrderValues(IntVar v, const DiveLimits& limits,
                   std::vector<int64_t>* values) const {
    if (limits.shuffle_rng != nullptr && values->size() > 1) {
      for (size_t i = values->size() - 1; i > 0; --i) {
        size_t j = static_cast<size_t>(
            limits.shuffle_rng->UniformInt(0, static_cast<int64_t>(i)));
        std::swap((*values)[i], (*values)[j]);
      }
    }
    if (limits.hint != nullptr &&
        static_cast<size_t>(v.id) < limits.hint->size()) {
      int64_t h = (*limits.hint)[static_cast<size_t>(v.id)];
      if (h != Model::Options::kNoHint) {
        auto it = std::find(values->begin(), values->end(), h);
        if (it != values->end()) {
          std::rotate(values->begin(), it, it + 1);
        }
      }
    }
  }

  const Model& model_;
  const Model::Options& options_;
  PropagationEngine engine_;
  SearchOrder order_;
  /// Exhausted-subtree proof cache; null (the default) disables caching and
  /// keeps every search path bit-identical to the cache-free solver.
  ContextCache* cache_ = nullptr;
  DomainStore store_;
  int root_level_ = 0;
  std::vector<Frame> frames_;
  /// value_scratch_[depth]: candidate values of the open node at `depth`,
  /// reused across the whole solve so value enumeration never allocates
  /// after the deepest first descent.
  std::vector<std::vector<int64_t>> value_scratch_;
  std::vector<int32_t> changed_scratch_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cologne::solver::internal

#endif  // COLOGNE_SOLVER_SEARCH_INTERNAL_H_

// Trailed domain store: in-place domains + an undo trail, the state-restoring
// core of the search backends.
#ifndef COLOGNE_SOLVER_STORE_H_
#define COLOGNE_SOLVER_STORE_H_

#include <cstdint>
#include <vector>

#include "solver/domain.h"

namespace cologne::solver {

// --- Modification events ----------------------------------------------------
// Every domain mutation is classified into a bitmask of typed events so the
// propagation engine can wake only the propagators whose filtering can be
// affected (Gecode-style modification events). `kEventFix` always rides along
// with the bound event that caused the fixing; `kEventRemove` marks a pure
// interior hole (bounds unchanged, domain not newly fixed).
inline constexpr uint8_t kEventMin = 1;     ///< min() increased
inline constexpr uint8_t kEventMax = 2;     ///< max() decreased
inline constexpr uint8_t kEventFix = 4;     ///< became fixed (singleton)
inline constexpr uint8_t kEventRemove = 8;  ///< interior value removed only
inline constexpr uint8_t kEventAny = 0xF;

/// \brief Observer for typed domain-change events. The propagation engine
/// implements this to receive every mutation made through the store —
/// including the direct `Assign`/`ClampMax` calls search and LNS make
/// without going through a `PropCtx` — so advisor state (incremental linear
/// aggregates) can never go stale. Events are delivered only for changes
/// that leave the domain non-empty: an emptied domain fails the current
/// level, which is always backtracked (restoring any trailed advisor state)
/// before propagation resumes.
class DomainListener {
 public:
  virtual ~DomainListener() = default;
  /// `events` is a kEvent* mask; new bounds are readable from the store.
  virtual void OnDomainEvent(int32_t var, uint8_t events, int64_t old_min,
                             int64_t old_max) = 0;
};

/// \brief A trailed domain store: one in-place `IntDomain` array plus a trail
/// of save-once-per-level undo records, giving O(changed domains)
/// backtracking where the historical copy-based search cloned the whole
/// store (O(num_vars × ranges)) at every node.
///
/// Levels nest like DFS choice points. `PushLevel()` marks a point; each
/// mutator records at most one save per (variable, level) — the domain's
/// range vector as it stood when the level first touched it — and
/// `Backtrack()` restores exactly the touched domains, in reverse trail
/// order. Restoration replays the saved range vectors verbatim, so a
/// backtracked store is bit-identical to the store before the level was
/// pushed: search built on this store explores the same tree the copy-based
/// core did (the determinism contract behind the golden traces).
///
/// Mutations at level 0 (no level pushed) are permanent: there is nothing
/// below to restore to, so they bypass the trail.
///
/// Alongside the domains the store owns a small array of trailed `__int128`
/// auxiliary slots. Propagators park incremental aggregates (running
/// sum(min)/sum(max) of a linear expression, entailed flags) there; the
/// slots share the store's save-once-per-level discipline so `Backtrack()`
/// restores them in O(changed) together with the domains they summarize.
///
/// Not thread-safe; concurrent backends give each racing worker its own
/// store (one SearchContext per worker).
class DomainStore {
 public:
  DomainStore() = default;

  /// Reset to `doms` at level 0 with an empty trail, no aux slots, and no
  /// listener. Peak/total accounting carries across Init (one store serves
  /// one Solve call).
  void Init(std::vector<IntDomain> doms);

  /// Attach (or detach, with nullptr) the event listener. Mutations made
  /// while attached deliver typed events; the naive reference mode never
  /// attaches one, keeping the legacy mutator fast path byte-identical.
  void SetListener(DomainListener* listener) { listener_ = listener; }

  size_t size() const { return doms_.size(); }
  /// Current level: number of PushLevel() calls not yet backtracked.
  int level() const { return static_cast<int>(marks_.size()); }
  const IntDomain& dom(int32_t id) const {
    return doms_[static_cast<size_t>(id)];
  }
  const IntDomain& operator[](size_t i) const { return doms_[i]; }

  /// Mark a choice point: subsequent mutations are undone by Backtrack().
  void PushLevel();
  /// Undo every mutation since the matching PushLevel(). Requires level() > 0.
  void Backtrack();
  /// Backtrack until level() == `level` (no-op when already there or below).
  void BacktrackTo(int level);

  // --- Trail-recording mutators -------------------------------------------
  // Mirrors of the IntDomain mutators; each saves the pre-mutation domain on
  // the trail (once per level) before applying, and returns true exactly
  // when the domain changed. A change can empty the domain (failure); the
  // caller checks dom(id).empty(). Inline: the no-change early-outs are the
  // propagation fixpoint's common case and must cost one comparison, not a
  // call.
  bool ClampMin(int32_t id, int64_t lo) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || lo <= d.min()) return false;
    Save(id);
    if (listener_ == nullptr) return d.ClampMin(lo);
    const int64_t old_min = d.min(), old_max = d.max();
    d.ClampMin(lo);
    NotifyListener(id, old_min, old_max);
    return true;
  }
  bool ClampMax(int32_t id, int64_t hi) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || hi >= d.max()) return false;
    Save(id);
    if (listener_ == nullptr) return d.ClampMax(hi);
    const int64_t old_min = d.min(), old_max = d.max();
    d.ClampMax(hi);
    NotifyListener(id, old_min, old_max);
    return true;
  }
  bool Remove(int32_t id, int64_t v) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (!d.Contains(v)) return false;
    Save(id);
    if (listener_ == nullptr) return d.Remove(v);
    const int64_t old_min = d.min(), old_max = d.max();
    d.Remove(v);
    NotifyListener(id, old_min, old_max);
    return true;
  }
  bool Assign(int32_t id, int64_t v) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || (d.IsFixed() && d.value() == v)) return false;
    Save(id);
    if (listener_ == nullptr) return d.Assign(v);
    const int64_t old_min = d.min(), old_max = d.max();
    d.Assign(v);
    NotifyListener(id, old_min, old_max);
    return true;
  }

  // --- Trailed auxiliary slots --------------------------------------------

  /// Append `n` zero-initialized aux slots; returns the base index. Intended
  /// for level-0 setup (engine attach), before any level is pushed.
  int AddAuxSlots(int n) {
    const int base = static_cast<int>(aux_.size());
    aux_.resize(aux_.size() + static_cast<size_t>(n), 0);
    aux_saved_at_.resize(aux_.size(), 0);
    return base;
  }
  int num_aux_slots() const { return static_cast<int>(aux_.size()); }
  __int128 aux(int slot) const { return aux_[static_cast<size_t>(slot)]; }
  /// Write an aux slot, trailing the previous value once per level (same
  /// discipline as the domain mutators; level-0 writes are permanent).
  void SetAux(int slot, __int128 v) {
    SaveAux(slot);
    aux_[static_cast<size_t>(slot)] = v;
  }

  // --- Accounting -----------------------------------------------------------

  /// Total save records pushed over the store's lifetime.
  uint64_t total_saves() const { return total_saves_; }
  /// High-water mark of live trail records.
  size_t peak_trail_entries() const { return peak_trail_entries_; }
  /// High-water mark of nested levels.
  size_t peak_depth() const { return peak_depth_; }
  /// High-water mark of trail memory (undo records + saved arena ranges)
  /// plus the in-place domain array — the search-state footprint reported
  /// by SolveStats::peak_memory_bytes.
  size_t PeakMemoryBytes() const;

 private:
  /// One undo record. The saved range vector lives in the shared flat arena
  /// (`range_arena_[range_begin, range_begin+range_len)`), so a save appends
  /// to two flat vectors instead of heap-allocating a domain copy — after
  /// the first deep descent the trail allocates nothing at all.
  struct Saved {
    int32_t var = -1;
    /// saved_at_[var] before this save; restored on backtrack so outer
    /// levels keep their own save-once bookkeeping.
    int32_t prev_saved_level = 0;
    uint32_t range_begin = 0;
    uint32_t range_len = 0;
  };

  /// Undo record for one aux slot; the old value is inlined (fixed size),
  /// so aux saves need no arena.
  struct AuxSaved {
    int32_t slot = -1;
    int32_t prev_saved_level = 0;
    __int128 old_value = 0;
  };

  /// Record `id`'s current domain on the trail unless this level already did.
  void Save(int32_t id);
  /// Record `slot`'s current value on the aux trail unless this level did.
  void SaveAux(int slot) {
    const int32_t cur = static_cast<int32_t>(marks_.size());
    if (cur == 0) return;  // level-0 writes are permanent
    int32_t& at = aux_saved_at_[static_cast<size_t>(slot)];
    if (at == cur) return;
    aux_trail_.push_back({slot, at, aux_[static_cast<size_t>(slot)]});
    at = cur;
    peak_aux_trail_entries_ =
        aux_trail_.size() > peak_aux_trail_entries_ ? aux_trail_.size()
                                                    : peak_aux_trail_entries_;
  }
  /// Classify the change against (`old_min`, `old_max`) and deliver it.
  /// Emptied domains deliver nothing (the level is about to be backtracked).
  void NotifyListener(int32_t id, int64_t old_min, int64_t old_max) {
    const IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty()) return;
    uint8_t ev = 0;
    if (d.min() > old_min) ev |= kEventMin;
    if (d.max() < old_max) ev |= kEventMax;
    if (d.IsFixed()) ev |= kEventFix;
    if (ev == 0) ev = kEventRemove;
    listener_->OnDomainEvent(id, ev, old_min, old_max);
  }

  std::vector<IntDomain> doms_;
  std::vector<Saved> trail_;
  std::vector<IntDomain::Range> range_arena_;  ///< Saved ranges, flat.
  std::vector<size_t> marks_;      ///< trail_.size() at each PushLevel.
  std::vector<int32_t> saved_at_;  ///< var -> level of newest save (0 = none).

  DomainListener* listener_ = nullptr;

  std::vector<__int128> aux_;          ///< Trailed propagator aggregates.
  std::vector<AuxSaved> aux_trail_;
  std::vector<size_t> aux_marks_;      ///< aux_trail_.size() per PushLevel.
  std::vector<int32_t> aux_saved_at_;  ///< slot -> level of newest save.

  uint64_t total_saves_ = 0;
  size_t peak_trail_entries_ = 0;
  size_t peak_depth_ = 0;
  size_t peak_arena_ranges_ = 0;   ///< High-water mark of live saved ranges.
  size_t peak_aux_trail_entries_ = 0;
  size_t dom_bytes_ = 0;           ///< Footprint of the domain array at Init.
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_STORE_H_

// Trailed domain store: in-place domains + an undo trail, the state-restoring
// core of the search backends.
#ifndef COLOGNE_SOLVER_STORE_H_
#define COLOGNE_SOLVER_STORE_H_

#include <cstdint>
#include <vector>

#include "solver/domain.h"

namespace cologne::solver {

/// \brief A trailed domain store: one in-place `IntDomain` array plus a trail
/// of save-once-per-level undo records, giving O(changed domains)
/// backtracking where the historical copy-based search cloned the whole
/// store (O(num_vars × ranges)) at every node.
///
/// Levels nest like DFS choice points. `PushLevel()` marks a point; each
/// mutator records at most one save per (variable, level) — the domain's
/// range vector as it stood when the level first touched it — and
/// `Backtrack()` restores exactly the touched domains, in reverse trail
/// order. Restoration replays the saved range vectors verbatim, so a
/// backtracked store is bit-identical to the store before the level was
/// pushed: search built on this store explores the same tree the copy-based
/// core did (the determinism contract behind the golden traces).
///
/// Mutations at level 0 (no level pushed) are permanent: there is nothing
/// below to restore to, so they bypass the trail.
///
/// Not thread-safe; concurrent backends give each racing worker its own
/// store (one SearchContext per worker).
class DomainStore {
 public:
  DomainStore() = default;

  /// Reset to `doms` at level 0 with an empty trail. Peak/total accounting
  /// carries across Init (one store serves one Solve call).
  void Init(std::vector<IntDomain> doms);

  size_t size() const { return doms_.size(); }
  /// Current level: number of PushLevel() calls not yet backtracked.
  int level() const { return static_cast<int>(marks_.size()); }
  const IntDomain& dom(int32_t id) const {
    return doms_[static_cast<size_t>(id)];
  }
  const IntDomain& operator[](size_t i) const { return doms_[i]; }

  /// Mark a choice point: subsequent mutations are undone by Backtrack().
  void PushLevel();
  /// Undo every mutation since the matching PushLevel(). Requires level() > 0.
  void Backtrack();
  /// Backtrack until level() == `level` (no-op when already there or below).
  void BacktrackTo(int level);

  // --- Trail-recording mutators -------------------------------------------
  // Mirrors of the IntDomain mutators; each saves the pre-mutation domain on
  // the trail (once per level) before applying, and returns true exactly
  // when the domain changed. A change can empty the domain (failure); the
  // caller checks dom(id).empty(). Inline: the no-change early-outs are the
  // propagation fixpoint's common case and must cost one comparison, not a
  // call.
  bool ClampMin(int32_t id, int64_t lo) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || lo <= d.min()) return false;
    Save(id);
    return d.ClampMin(lo);
  }
  bool ClampMax(int32_t id, int64_t hi) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || hi >= d.max()) return false;
    Save(id);
    return d.ClampMax(hi);
  }
  bool Remove(int32_t id, int64_t v) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (!d.Contains(v)) return false;
    Save(id);
    return d.Remove(v);
  }
  bool Assign(int32_t id, int64_t v) {
    IntDomain& d = doms_[static_cast<size_t>(id)];
    if (d.empty() || (d.IsFixed() && d.value() == v)) return false;
    Save(id);
    return d.Assign(v);
  }

  // --- Accounting -----------------------------------------------------------

  /// Total save records pushed over the store's lifetime.
  uint64_t total_saves() const { return total_saves_; }
  /// High-water mark of live trail records.
  size_t peak_trail_entries() const { return peak_trail_entries_; }
  /// High-water mark of nested levels.
  size_t peak_depth() const { return peak_depth_; }
  /// High-water mark of trail memory (undo records + saved arena ranges)
  /// plus the in-place domain array — the search-state footprint reported
  /// by SolveStats::peak_memory_bytes.
  size_t PeakMemoryBytes() const;

 private:
  /// One undo record. The saved range vector lives in the shared flat arena
  /// (`range_arena_[range_begin, range_begin+range_len)`), so a save appends
  /// to two flat vectors instead of heap-allocating a domain copy — after
  /// the first deep descent the trail allocates nothing at all.
  struct Saved {
    int32_t var = -1;
    /// saved_at_[var] before this save; restored on backtrack so outer
    /// levels keep their own save-once bookkeeping.
    int32_t prev_saved_level = 0;
    uint32_t range_begin = 0;
    uint32_t range_len = 0;
  };

  /// Record `id`'s current domain on the trail unless this level already did.
  void Save(int32_t id);

  std::vector<IntDomain> doms_;
  std::vector<Saved> trail_;
  std::vector<IntDomain::Range> range_arena_;  ///< Saved ranges, flat.
  std::vector<size_t> marks_;      ///< trail_.size() at each PushLevel.
  std::vector<int32_t> saved_at_;  ///< var -> level of newest save (0 = none).

  uint64_t total_saves_ = 0;
  size_t peak_trail_entries_ = 0;
  size_t peak_depth_ = 0;
  size_t peak_arena_ranges_ = 0;   ///< High-water mark of live saved ranges.
  size_t dom_bytes_ = 0;           ///< Footprint of the domain array at Init.
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_STORE_H_

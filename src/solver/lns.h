// Large Neighborhood Search backend (Model::Options::backend = kLns).
//
// Anytime local search in the style of Fioretto et al.'s distributed LNS for
// DCOPs and DAOOPT's incumbent-seeding local search: start from a
// propagation-guided greedy assignment (or the caller's warm-start hint),
// then repeatedly relax a randomized subset of the decision variables, fix
// the rest to the incumbent, and repair the sub-problem with a time-sliced
// branch-and-bound dive bounded to strictly-improving solutions. The
// neighborhood size adapts: it shrinks on improvement and grows on
// stagnation, with periodic diversification resets counted as restarts.
#ifndef COLOGNE_SOLVER_LNS_H_
#define COLOGNE_SOLVER_LNS_H_

#include "solver/search_backend.h"
#include "solver/search_internal.h"

namespace cologne::solver {

/// Tuning knobs of the improvement loop.
struct LnsParams {
  uint64_t seed = 0x10C5;
  /// Cap on neighborhoods explored; 0 = until the time budget runs out.
  uint64_t max_iterations = 0;
  /// Node budget of each repair dive (the "time slice" of the sub-B&B).
  uint64_t repair_node_budget = 2000;
  /// Starting neighborhood size; 0 = adaptive default (#decisions / 10 + 1).
  /// Portfolio workers vary this (Model::Options::lns_relax_base) so their
  /// walks explore differently-sized basins. Ignored when the model carries
  /// two or more decision groups — neighborhoods are then whole groups
  /// (start at #groups / 3 + 1, adapt in group units), and concurrent
  /// workers rotate the group pool by Model::Options::worker_id.
  uint64_t relax_base = 0;
  /// Valid relaxation bound on the objective (the propagated root store's
  /// objective min for minimize / max for maximize). When the incumbent
  /// reaches it, the loop stops and reports proven optimality instead of
  /// sampling guaranteed-infeasible neighborhoods.
  bool have_objective_bound = false;
  int64_t objective_bound = 0;
  /// Incremental focus (Model::Options::incremental): restrict the first
  /// neighborhoods to `focus_groups` (indices into the model's
  /// decision_groups()) — the groups a fact-delta fingerprint pass marked
  /// dirty. The pool widens to every unit once the focused walk goes stale,
  /// so focus biases the search without making it incomplete. Ignored unless
  /// the model carries two or more decision groups.
  bool incremental = false;
  std::vector<size_t> focus_groups;
};

/// \brief The improvement loop, shared by LnsSearch and the branch-and-bound
/// backend's anytime tail (which historically ran this exact pattern after a
/// time cutoff).
///
/// Requires an existing incumbent and an optimizing sense; no-op otherwise.
/// Updates `inc` in place and accounts iterations/restarts in ctx.stats.
/// Returns true when the incumbent provably reached the objective bound.
/// Rebuilds each trial neighborhood as one trail level over the store's
/// pristine initial domains (ctx.store() level 0) — fix, bound, propagate,
/// repair-dive, backtrack — so a trial costs O(touched domains), not a
/// store clone; the store is left at level 0 on return.
bool LnsImprove(internal::SearchContext& ctx, const LnsParams& params,
                internal::Incumbent* inc);

/// \brief The LNS search backend.
class LnsSearch : public SearchBackend {
 public:
  Solution Solve(const Model& model,
                 const Model::Options& options) const override;
  const char* name() const override { return BackendName(Backend::kLns); }
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_LNS_H_

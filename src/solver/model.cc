#include "solver/model.h"

#include <algorithm>
#include <set>

namespace cologne::solver {

IntVar Model::NewInt(int64_t lo, int64_t hi, std::string name) {
  return NewIntFromDomain(IntDomain(lo, hi), std::move(name));
}

IntVar Model::NewIntFromDomain(IntDomain dom, std::string name) {
  IntVar v{static_cast<int32_t>(domains_.size())};
  if (name.empty()) name = "x" + std::to_string(v.id);
  domains_.push_back(std::move(dom));
  names_.push_back(std::move(name));
  return v;
}

void Model::PostLinear(LinExpr e, Rel rel) {
  e.Canonicalize();
  props_.push_back(MakeLinear(std::move(e), rel));
}

void Model::PostRel(LinExpr lhs, Rel rel, LinExpr rhs) {
  lhs -= rhs;
  PostLinear(std::move(lhs), rel);
}

void Model::PostReified(IntVar b, LinExpr lhs, Rel rel, LinExpr rhs) {
  lhs -= rhs;
  props_.push_back(MakeReifiedLinear(b, std::move(lhs), rel));
}

IntVar Model::ReifyRel(LinExpr lhs, Rel rel, LinExpr rhs) {
  IntVar b = NewBool();
  PostReified(b, std::move(lhs), rel, std::move(rhs));
  return b;
}

void Model::RemoveValue(IntVar v, int64_t value) {
  domains_[static_cast<size_t>(v.id)].Remove(value);
}

ExprBounds Model::InitialBounds(const LinExpr& e) const {
  __int128 lo = e.constant, hi = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = domains_[static_cast<size_t>(v.id)];
    if (c >= 0) {
      lo += static_cast<__int128>(c) * d.min();
      hi += static_cast<__int128>(c) * d.max();
    } else {
      lo += static_cast<__int128>(c) * d.max();
      hi += static_cast<__int128>(c) * d.min();
    }
  }
  auto clamp = [](__int128 x) {
    if (x > kDomainLimit) return kDomainLimit;
    if (x < -kDomainLimit) return -kDomainLimit;
    return static_cast<int64_t>(x);
  };
  return {clamp(lo), clamp(hi)};
}

IntVar Model::VarOf(const LinExpr& e) {
  if (e.constant == 0 && e.terms.size() == 1 && e.terms[0].first == 1) {
    return e.terms[0].second;
  }
  ExprBounds b = InitialBounds(e);
  IntVar v = NewInt(b.min, b.max);
  LinExpr chan = e;
  chan -= LinExpr(v);
  PostLinear(std::move(chan), Rel::kEq);
  return v;
}

IntVar Model::MakeTimes(IntVar x, IntVar y) {
  ExprBounds bx{InitialDomain(x).min(), InitialDomain(x).max()};
  ExprBounds by{InitialDomain(y).min(), InitialDomain(y).max()};
  __int128 c1 = static_cast<__int128>(bx.min) * by.min;
  __int128 c2 = static_cast<__int128>(bx.min) * by.max;
  __int128 c3 = static_cast<__int128>(bx.max) * by.min;
  __int128 c4 = static_cast<__int128>(bx.max) * by.max;
  __int128 lo = std::min(std::min(c1, c2), std::min(c3, c4));
  __int128 hi = std::max(std::max(c1, c2), std::max(c3, c4));
  auto clamp = [](__int128 v) {
    if (v > kDomainLimit) return kDomainLimit;
    if (v < -kDomainLimit) return -kDomainLimit;
    return static_cast<int64_t>(v);
  };
  IntVar z = NewInt(clamp(lo), clamp(hi));
  props_.push_back(solver::MakeTimes(z, x, y));
  return z;
}

IntVar Model::MakeSquare(const LinExpr& e) {
  IntVar x = VarOf(e);
  return MakeTimes(x, x);
}

IntVar Model::MakeAbs(const LinExpr& e) {
  IntVar x = VarOf(e);
  const IntDomain& d = InitialDomain(x);
  int64_t hi = std::max(std::abs(d.min()), std::abs(d.max()));
  IntVar z = NewInt(0, hi);
  props_.push_back(solver::MakeAbs(z, x));
  return z;
}

IntVar Model::MakeMaxConst(const LinExpr& e, int64_t c) {
  IntVar x = VarOf(e);
  const IntDomain& d = InitialDomain(x);
  IntVar z = NewInt(std::max(d.min(), c), std::max(d.max(), c));
  props_.push_back(solver::MakeMaxConst(z, x, c));
  return z;
}

IntVar Model::MakeOr(std::vector<IntVar> bs) {
  IntVar b = NewBool();
  props_.push_back(solver::MakeOr(b, std::move(bs)));
  return b;
}

IntVar Model::MakeCountDistinct(const std::vector<IntVar>& vars) {
  // Union of candidate values over all initial domains.
  std::set<int64_t> values;
  for (IntVar v : vars) {
    for (int64_t x : InitialDomain(v).Values()) values.insert(x);
  }
  LinExpr sum;
  for (int64_t val : values) {
    std::vector<IntVar> members;
    for (IntVar v : vars) {
      if (!InitialDomain(v).Contains(val)) continue;
      members.push_back(ReifyRel(LinExpr(v), Rel::kEq, LinExpr(val)));
    }
    if (members.empty()) continue;
    IntVar used = MakeOr(std::move(members));
    sum += LinExpr(used);
  }
  IntVar count = NewInt(vars.empty() ? 0 : 1,
                        static_cast<int64_t>(
                            std::min(values.size(), vars.size())));
  if (vars.empty()) count = NewInt(0, 0);
  PostRel(sum, Rel::kEq, LinExpr(count));
  return count;
}

void Model::Minimize(const LinExpr& e) {
  sense_ = Sense::kMinimize;
  objective_ = VarOf(e);
}

void Model::Maximize(const LinExpr& e) {
  sense_ = Sense::kMaximize;
  objective_ = VarOf(e);
}

size_t Model::MemoryEstimate() const {
  size_t bytes = 0;
  for (const IntDomain& d : domains_) {
    bytes += sizeof(IntDomain) + d.ranges().size() * sizeof(IntDomain::Range);
  }
  bytes += props_.size() * 96;  // rough per-propagator footprint
  return bytes;
}

}  // namespace cologne::solver

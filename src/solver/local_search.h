// Move-based local search backend (Model::Options::backend = kLocalSearch).
//
// The cheap-and-anytime complement to the exact and neighborhood backends,
// in the style of the shift/swap local search used for generalized
// assignment (fontanf/gap) and move-based DCOP solvers: start from a
// propagation-guided greedy assignment (or the caller's warm-start hint),
// then walk the decision space one move at a time — a *shift* reassigns a
// single decision variable to another root-domain value, a *swap* exchanges
// the values of two decision variables (on grouped one-hot models this is
// exactly "move an item to another agent" / "swap two items"). Acceptance is
// simulated annealing (improving moves always, uphill moves with probability
// exp(-delta/T) under a geometric cooling schedule) layered over a tabu list
// on reversed move attributes with aspiration; stagnation reheats the
// temperature (counted as restarts). All randomness flows from the solver
// seed, so deterministic budgets reproduce runs bit-for-bit.
#ifndef COLOGNE_SOLVER_LOCAL_SEARCH_H_
#define COLOGNE_SOLVER_LOCAL_SEARCH_H_

#include "solver/search_backend.h"

namespace cologne::solver {

/// \brief The shift/swap local-search backend.
///
/// Incomplete: optimality is claimed only when the propagated root is fixed,
/// the sense is satisfaction, the incumbent provably reaches the root
/// relaxation bound, or the incumbent-sharpening dive exhausts the space.
/// Move/acceptance/tabu counts land in SolveStats::ls_moves / ls_accepted /
/// ls_tabu_hits.
class LocalSearch : public SearchBackend {
 public:
  Solution Solve(const Model& model,
                 const Model::Options& options) const override;
  const char* name() const override {
    return BackendName(Backend::kLocalSearch);
  }
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_LOCAL_SEARCH_H_

#include "solver/store.h"

#include <algorithm>

namespace cologne::solver {

void DomainStore::Init(std::vector<IntDomain> doms) {
  doms_ = std::move(doms);
  trail_.clear();
  range_arena_.clear();
  marks_.clear();
  saved_at_.assign(doms_.size(), 0);
  listener_ = nullptr;
  aux_.clear();
  aux_trail_.clear();
  aux_marks_.clear();
  aux_saved_at_.clear();
  dom_bytes_ = 0;
  for (const IntDomain& d : doms_) {
    dom_bytes_ += sizeof(IntDomain) + d.ranges().size() * sizeof(IntDomain::Range);
  }
}

void DomainStore::PushLevel() {
  marks_.push_back(trail_.size());
  aux_marks_.push_back(aux_trail_.size());
  peak_depth_ = std::max(peak_depth_, marks_.size());
}

void DomainStore::Backtrack() {
  const size_t mark = marks_.back();
  marks_.pop_back();
  // Restore in reverse trail order: a variable saved by this level *and* an
  // outer one gets the outer (older) ranges last, which is the correct
  // pre-level state. The arena truncates with the records it backs.
  for (size_t i = trail_.size(); i > mark; --i) {
    const Saved& s = trail_[i - 1];
    saved_at_[static_cast<size_t>(s.var)] = s.prev_saved_level;
    doms_[static_cast<size_t>(s.var)].RestoreRanges(
        range_arena_.data() + s.range_begin, s.range_len);
  }
  if (mark < trail_.size()) {
    range_arena_.resize(trail_[mark].range_begin);
    trail_.resize(mark);
  }
  const size_t aux_mark = aux_marks_.back();
  aux_marks_.pop_back();
  for (size_t i = aux_trail_.size(); i > aux_mark; --i) {
    const AuxSaved& s = aux_trail_[i - 1];
    aux_saved_at_[static_cast<size_t>(s.slot)] = s.prev_saved_level;
    aux_[static_cast<size_t>(s.slot)] = s.old_value;
  }
  aux_trail_.resize(aux_mark);
}

void DomainStore::BacktrackTo(int level) {
  while (this->level() > level) Backtrack();
}

void DomainStore::Save(int32_t id) {
  const int32_t cur = static_cast<int32_t>(marks_.size());
  if (cur == 0) return;  // level-0 mutations are permanent
  int32_t& at = saved_at_[static_cast<size_t>(id)];
  if (at == cur) return;  // this level already holds a save for `id`
  const std::vector<IntDomain::Range>& ranges =
      doms_[static_cast<size_t>(id)].ranges();
  trail_.push_back({id, at, static_cast<uint32_t>(range_arena_.size()),
                    static_cast<uint32_t>(ranges.size())});
  range_arena_.insert(range_arena_.end(), ranges.begin(), ranges.end());
  at = cur;
  ++total_saves_;
  peak_trail_entries_ = std::max(peak_trail_entries_, trail_.size());
  peak_arena_ranges_ = std::max(peak_arena_ranges_, range_arena_.size());
}

size_t DomainStore::PeakMemoryBytes() const {
  return dom_bytes_ + peak_trail_entries_ * sizeof(Saved) +
         peak_arena_ranges_ * sizeof(IntDomain::Range) +
         peak_aux_trail_entries_ * sizeof(AuxSaved) +
         aux_.size() * sizeof(__int128);
}

}  // namespace cologne::solver

// Finite integer domains represented as sorted disjoint range lists.
#ifndef COLOGNE_SOLVER_DOMAIN_H_
#define COLOGNE_SOLVER_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cologne::solver {

/// Process-wide count of IntDomain deep copies (each clones the range
/// vector): bumped by every copy construction/assignment. Trail save records
/// and any residual store cloning both route through here, so the counter is
/// the apples-to-apples "domain-vector allocations" metric reported by
/// bench_micro_solver's BENCH_solver.json rows. Relaxed ordering: the count
/// is a statistic, not a synchronization point.
inline std::atomic<uint64_t> g_domain_copies{0};
inline uint64_t DomainCopyCount() {
  return g_domain_copies.load(std::memory_order_relaxed);
}

/// Domain values are kept within +/-kDomainLimit so that linear-expression
/// bound arithmetic cannot overflow int64 (intermediates use __int128).
constexpr int64_t kDomainLimit = int64_t{1} << 40;

/// \brief A finite set of integers stored as sorted, disjoint, non-adjacent
/// closed ranges.
///
/// The common case in Cologne models is a single interval ([0,1] assignment
/// variables, [-cap,cap] migration quantities) with holes appearing only via
/// `Remove` (e.g. the primary-user channel constraint), so the range list is
/// almost always tiny.
class IntDomain {
 public:
  struct Range {
    int64_t lo;
    int64_t hi;  // inclusive
    bool operator==(const Range&) const = default;
  };

  /// Empty (failed) domain.
  IntDomain() = default;
  /// Interval [lo, hi]; empty if lo > hi. Values clamped to +/-kDomainLimit.
  IntDomain(int64_t lo, int64_t hi);
  IntDomain(const IntDomain& o) : ranges_(o.ranges_) {
    g_domain_copies.fetch_add(1, std::memory_order_relaxed);
  }
  IntDomain& operator=(const IntDomain& o) {
    ranges_ = o.ranges_;
    g_domain_copies.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  IntDomain(IntDomain&&) = default;
  IntDomain& operator=(IntDomain&&) = default;
  /// Singleton {v}.
  static IntDomain Singleton(int64_t v) { return IntDomain(v, v); }

  bool empty() const { return ranges_.empty(); }
  /// True when exactly one value remains.
  bool IsFixed() const {
    return ranges_.size() == 1 && ranges_[0].lo == ranges_[0].hi;
  }
  /// The single remaining value; requires IsFixed().
  int64_t value() const { return ranges_[0].lo; }
  int64_t min() const { return ranges_.front().lo; }
  int64_t max() const { return ranges_.back().hi; }
  /// Number of values in the domain.
  uint64_t size() const;
  bool Contains(int64_t v) const;

  /// Remove all values < lo. Returns true if the domain changed.
  bool ClampMin(int64_t lo);
  /// Remove all values > hi. Returns true if the domain changed.
  bool ClampMax(int64_t hi);
  /// Remove a single value. Returns true if the domain changed.
  bool Remove(int64_t v);
  /// Reduce to the single value v (or empty if v not contained).
  /// Returns true if the domain changed.
  bool Assign(int64_t v);
  /// Keep only values also in `other`. Returns true if the domain changed.
  bool IntersectWith(const IntDomain& other);

  /// Iterate over contained values (domains used here are small).
  std::vector<int64_t> Values() const;
  /// Append contained values to `*out` without clearing it; with a reused
  /// scratch buffer this makes value enumeration allocation-free on the
  /// search hot path.
  void AppendValues(std::vector<int64_t>* out) const;
  /// Replace the range list with `[p, p+n)` — the trailed store's backtrack
  /// restore. Reuses the existing capacity (domains only shrink along a DFS
  /// path, so this never allocates on the search hot path).
  void RestoreRanges(const Range* p, size_t n) { ranges_.assign(p, p + n); }
  const std::vector<Range>& ranges() const { return ranges_; }

  bool operator==(const IntDomain& o) const;

  /// Render as e.g. "{1..3, 7, 9..12}" for debugging.
  std::string ToString() const;

 private:
  std::vector<Range> ranges_;
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_DOMAIN_H_

#include "solver/lns.h"

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace cologne::solver {

using internal::DiveEnd;
using internal::Incumbent;
using internal::SearchContext;

bool LnsImprove(SearchContext& ctx, const LnsParams& params, Incumbent* inc) {
  if (!inc->found || !ctx.optimizing()) return false;
  auto at_bound = [&] {
    return params.have_objective_bound &&
           inc->objective == params.objective_bound;
  };
  if (at_bound()) return true;
  const Model& model = ctx.model();

  // Relaxation units: whole decision groups when the model declares two or
  // more (batched multi-link solves relax per-link neighborhoods, the
  // per-agent neighborhoods of distributed LNS), individual decision
  // variables otherwise. The singleton-unit path consumes the RNG stream
  // exactly as the historical variable-level loop did.
  std::vector<std::vector<int32_t>> units;
  bool grouped = false;
  // units index of each decision group (SIZE_MAX for groups whose variables
  // were all covered earlier); only used to resolve the incremental focus.
  std::vector<size_t> unit_of_group;
  {
    const std::vector<int32_t>& decisions = ctx.order().DecisionIds();
    const auto& groups = model.decision_groups();
    if (groups.size() >= 2) {
      std::vector<char> covered(model.num_vars(), 0);
      for (const std::vector<IntVar>& g : groups) {
        std::vector<int32_t> unit;
        for (IntVar v : g) {
          size_t id = static_cast<size_t>(v.id);
          if (id < covered.size() && model.IsDecision(v) && !covered[id]) {
            covered[id] = 1;
            unit.push_back(v.id);
          }
        }
        unit_of_group.push_back(unit.empty() ? SIZE_MAX : units.size());
        if (!unit.empty()) units.push_back(std::move(unit));
      }
      // Decisions outside every group relax together as one extra unit.
      std::vector<int32_t> rest;
      for (int32_t id : decisions) {
        if (!covered[static_cast<size_t>(id)]) rest.push_back(id);
      }
      if (!rest.empty()) units.push_back(std::move(rest));
      grouped = units.size() >= 2;
    }
    if (!grouped) {
      units.clear();
      for (int32_t id : decisions) units.push_back({id});
    }
  }
  const size_t n = units.size();
  if (n == 0) return false;

  // Incremental focus: move the dirty-group units to the front of the pool
  // (stable, ascending group order) and open the walk on them alone. Only
  // meaningful for grouped models with a proper subset of dirty groups.
  size_t focus_n = 0;
  if (params.incremental && grouped && !params.focus_groups.empty()) {
    std::vector<char> is_focus(n, 0);
    for (size_t g : params.focus_groups) {
      if (g < unit_of_group.size() && unit_of_group[g] != SIZE_MAX) {
        is_focus[unit_of_group[g]] = 1;
      }
    }
    std::vector<std::vector<int32_t>> reordered;
    reordered.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (is_focus[i]) reordered.push_back(std::move(units[i]));
    }
    focus_n = reordered.size();
    for (size_t i = 0; i < n; ++i) {
      if (!is_focus[i]) reordered.push_back(std::move(units[i]));
    }
    units = std::move(reordered);
    if (focus_n == n) focus_n = 0;  // everything dirty: plain grouped walk
  }
  const bool focused = focus_n > 0;

  Rng rng(params.seed);
  size_t min_k, max_k, start_k;
  if (grouped) {
    // Relax at least one group and keep at least one fixed.
    min_k = 1;
    max_k = std::max<size_t>(1, n - 1);
    start_k = focused ? std::clamp(focus_n, min_k, max_k)
                      : std::clamp<size_t>(n / 3 + 1, min_k, max_k);
    // Deterministic worker diversity: rotate the unit pool so concurrent
    // walks (parallel_lns) open on different link neighborhoods. Focused
    // solves skip the rotation — the dirty prefix must stay in front.
    size_t rot =
        focused ? 0 : static_cast<size_t>(ctx.options().worker_id) % n;
    if (rot > 0) {
      std::rotate(units.begin(), units.begin() + static_cast<ptrdiff_t>(rot),
                  units.end());
    }
  } else {
    min_k = std::min<size_t>(n, 2);
    max_k = std::max(min_k, n / 2);
    start_k = std::clamp(
        params.relax_base > 0 ? static_cast<size_t>(params.relax_base)
                              : n / 10 + 1,
        min_k, max_k);
  }
  size_t k = start_k;

  // Neighborhoods stack one level per iteration — fix, bound, propagate,
  // repair, backtrack — so each trial costs O(touched domains) instead of a
  // full store clone. The event-typed engine rebuilds from the *propagated
  // root* (any leftover hint levels unwound): fixpoint(root ∧ fixings) ==
  // fixpoint(initial ∧ fixings) for monotone propagators, and starting from
  // the root fixpoint lets each trial propagate only the delta its fixings
  // caused. The naive reference mode keeps the historical rebuild from the
  // pristine level-0 domains with a full re-propagation per trial, so its
  // propagation counts reproduce the legacy engine exactly.
  DomainStore& st = ctx.store();
  if (ctx.options().naive_propagation) {
    st.BacktrackTo(0);
  } else {
    st.BacktrackTo(ctx.root_level());
  }

  // Improving neighborhoods get rare near a local optimum; keep sampling
  // until the time budget runs out. The stale cap only terminates small
  // models that reach a true neighborhood-local optimum quickly.
  const int max_stale =
      std::max(200, static_cast<int>(64 * (n / start_k + 1)));
  int stale = 0;
  uint64_t iters = 0;
  uint64_t shared_seen = 0;

  while (stale < max_stale) {
    if (params.max_iterations > 0 && iters >= params.max_iterations) break;
    if (ctx.ShouldStop()) break;
    // Periodic adoption: when a concurrent walk published a better incumbent,
    // continue this walk from there (the shared-incumbent pattern of
    // Fioretto et al.'s distributed LNS).
    if (ctx.AdoptShared(inc, &shared_seen)) {
      stale = 0;
      if (at_bound()) return true;
    }
    ++iters;
    ++ctx.stats.iterations;

    // Relax a uniform random k-subset of the relaxation units (partial
    // Fisher-Yates; units[0..kk) is the neighborhood). Focused solves
    // sample from the dirty prefix until it stops improving (8 stale
    // trials), then widen to the full pool — the clean groups stay pinned
    // to the incumbent for the whole focused phase.
    const size_t pool = (focused && stale < 8) ? focus_n : n;
    const size_t kk = std::min(k, pool);
    for (size_t i = 0; i < kk; ++i) {
      size_t j = i + static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(pool - 1 - i)));
      std::swap(units[i], units[j]);
    }

    // Fix every non-relaxed decision to the incumbent, bound the objective
    // to strictly-better, and propagate — all on one trail level that the
    // end of the iteration unwinds.
    st.PushLevel();
    bool ok = ctx.FixUnitsToIncumbent(units, kk, *inc);
    if (ok) {
      std::vector<int32_t> changed;
      ok = ctx.ApplyBound(&changed, *inc) &&
           ctx.engine().PropagateDelta(st, &ctx.stats);
    }

    bool improved = false;
    bool reached_bound = false;
    if (ok) {
      const int64_t prev = inc->objective;
      SearchContext::DiveLimits dl;
      dl.node_budget = params.repair_node_budget;
      dl.bound_objective = true;
      ctx.Dive(dl, inc);
      improved = inc->objective != prev;
      reached_bound = improved && at_bound();
    }
    // A trial that failed before propagation ran (fixing or bounding emptied
    // a domain) leaves its wakes pending; discard them with the level.
    if (!ok) ctx.engine().DrainQueue();
    st.Backtrack();
    if (improved) ++ctx.stats.lns_accepted;
    if (reached_bound) return true;

    if (improved) {
      stale = 0;
      // Intensify: smaller neighborhoods repair faster.
      k = std::max(min_k, k - std::max<size_t>(1, k / 4));
    } else {
      ++stale;
      // Diversify: widen the neighborhood, and periodically reset it (a
      // restart) so the walk escapes the current basin.
      k = std::min(max_k, k + 1);
      if (stale > 0 && stale % 64 == 0) {
        k = start_k;
        ++ctx.stats.restarts;
      }
    }
  }
  return false;
}

Solution LnsSearch::Solve(const Model& model,
                          const Model::Options& options) const {
  SearchContext ctx(model, options);
  Solution out;  // Solution::backend is stamped by the Solve dispatch.

  if (!ctx.PropagateRoot()) {
    ctx.FinalizeStats();
    out.status = SolveStatus::kInfeasible;
    out.stats = ctx.stats;
    return out;
  }
  // Optimality-by-propagation only holds for the *plain* root: a store fixed
  // by warm-start hints is just a feasible point.
  bool root_fixed = true;
  for (size_t i = 0; i < ctx.store().size(); ++i) {
    if (!ctx.store()[i].IsFixed()) {
      root_fixed = false;
      break;
    }
  }
  // Valid relaxation bound on the objective, from the propagated root (read
  // before any hint level narrows the store further).
  int64_t objective_bound = 0;
  if (ctx.optimizing()) {
    const IntDomain& od = ctx.store().dom(model.objective_var().id);
    objective_bound = ctx.minimizing() ? od.min() : od.max();
  }

  // ---- Initial assignment ---------------------------------------------------
  // Propagation-guided greedy construction: a first-solution DFS dive (each
  // assignment is followed by propagation, backtracking over dead ends),
  // optionally narrowed first by the warm-start hint (stacked as trail
  // levels above the root).
  Incumbent inc;
  size_t hints_applied = 0;
  bool hint_narrowed = ctx.ApplyWarmStart(&hints_applied);
  SearchContext::DiveLimits first;
  first.stop_on_first = true;
  first.bound_objective = false;
  first.hint = options.warm_start.empty() ? nullptr : &options.warm_start;
  DiveEnd end = ctx.Dive(first, &inc);
  if (!inc.found && hint_narrowed) {
    // The hint narrowed the store into an unsatisfiable region; unwind to
    // the plain root and retry (exhausting the *hinted* store proves
    // nothing). When the hints changed nothing, the first dive already was
    // the plain-root search and retrying would just repeat it.
    ctx.store().BacktrackTo(ctx.root_level());
    end = ctx.Dive(first, &inc);
  }

  bool proven_exhausted = !inc.found && end == DiveEnd::kExhausted;

  // ---- Incumbent sharpening -------------------------------------------------
  // A short bounded constructive burst before the neighborhood loop: DFS
  // with the objective cut from the first solution rapidly walks the
  // incumbent down, giving LNS a strong starting point (the
  // incumbent-seeding pattern of DAOOPT). Bounded by nodes — and a slice of
  // the wall-clock budget when one is set — so it stays a small prefix of
  // the solve.
  bool proven_optimal = false;
  if (inc.found && ctx.optimizing() && !options.incremental) {
    // Incremental re-solves skip this prefix: the warm-start hint IS the
    // previous incumbent of a near-identical model, so the constructive
    // burst would re-walk ground the previous solve already covered.
    SearchContext::DiveLimits sharpen;
    sharpen.bound_objective = true;
    sharpen.node_budget = 5000;
    if (options.time_limit_ms > 0) {
      sharpen.soft_deadline_ms = options.time_limit_ms * 0.15;
    }
    sharpen.hint = first.hint;
    // Exhausting a bounded DFS from the root *is* a complete search: the
    // incumbent is then provably optimal and the neighborhood loop is moot.
    ctx.store().BacktrackTo(ctx.root_level());
    proven_optimal = ctx.Dive(sharpen, &inc) == DiveEnd::kExhausted;
  }

  // ---- Improvement ----------------------------------------------------------
  // kSatisfy models stop at the first solution (the fallback the runtime
  // relies on when a goal table is empty); optimizing models spend the rest
  // of the budget on neighborhood search.
  // An incremental solve whose fingerprint pass found nothing dirty keeps
  // the warm-started incumbent as-is — the whole point of the delta path.
  const bool skip_improve =
      options.incremental && options.focus_groups.empty();
  if (inc.found && ctx.optimizing() && !proven_optimal && !skip_improve) {
    LnsParams params;
    params.seed = options.seed;
    params.max_iterations = options.max_iterations;
    params.relax_base = options.lns_relax_base;
    params.have_objective_bound = true;
    params.objective_bound = objective_bound;
    params.incremental = options.incremental;
    params.focus_groups = options.focus_groups;
    proven_optimal = LnsImprove(ctx, params, &inc);
  }

  ctx.FinalizeStats();
  out.stats = ctx.stats;
  if (inc.found) {
    out.values = std::move(inc.values);
    out.objective = inc.objective;
    // LNS is incomplete: optimality is only claimed when the sharpening
    // dive exhausted the space, the root was fixed by pure propagation, or
    // the sense is satisfaction.
    out.status =
        (model.sense() == Sense::kSatisfy || root_fixed || proven_optimal)
            ? SolveStatus::kOptimal
            : SolveStatus::kFeasible;
  } else {
    out.status =
        proven_exhausted ? SolveStatus::kInfeasible : SolveStatus::kUnknown;
  }
  return out;
}

}  // namespace cologne::solver

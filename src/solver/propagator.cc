#include "solver/propagator.h"

namespace cologne::solver {

namespace {

// Bucket by subscription width, *widest first*. Wide linear sums are the
// producers in the model graphs this solver sees (resource capacities,
// objective channels): running them before the narrow consumers (reified
// thresholds, binary squares) lets each consumer observe settled sums and
// run once, where a cheap-first order re-executes every narrow propagator
// after each wide prune lands (measured: cheap-first roughly doubles reified
// executions on capacity-heavy models and re-runs square channels ~40% more
// on the assignment kernel). Deterministic: width is fixed at construction,
// FIFO within a bucket.
uint8_t PriorityBucket(size_t unique_watches) {
  if (unique_watches > 8) return 0;
  if (unique_watches > 3) return 1;
  if (unique_watches == 3) return 2;
  return 3;
}

}  // namespace

PropagationEngine::PropagationEngine(
    const std::vector<std::unique_ptr<Propagator>>* props, size_t num_vars,
    bool naive)
    : props_(props),
      naive_(naive),
      watchers_(num_vars),
      subs_(num_vars),
      priority_(props->size(), 0),
      in_queue_(props->size(), 0),
      run_counts_(props->size(), 0),
      proofs_(props->size()),
      idempotent_(props->size(), 0),
      aux_base_(props->size(), -1),
      has_dup_watch_(props->size(), 0) {
  // Build both watch structures deduplicated per (variable, propagator): a
  // variable appearing in several watch entries of one propagator (e.g. both
  // factors of a square) subscribes once, with the union of the entry masks
  // — one wake per (propagator, change). Dedup is count-neutral in naive
  // mode too: the duplicate enqueues it removes were already suppressed by
  // the in_queue_ flag.
  std::vector<int32_t> seen_at(num_vars, -1);
  for (size_t i = 0; i < props->size(); ++i) {
    const Propagator& p = *(*props)[i];
    const std::vector<int32_t>& w = p.watched();
    const std::vector<uint8_t>& masks = p.watch_masks();
    size_t unique = 0;
    for (size_t k = 0; k < w.size(); ++k) {
      const size_t v = static_cast<size_t>(w[k]);
      if (seen_at[v] == static_cast<int32_t>(i)) {
        // Duplicate: merge the mask into the existing subscription. The
        // advisor position stays ambiguous, so incremental aggregates are
        // disabled for this propagator (full-recompute path instead).
        has_dup_watch_[i] = 1;
        for (WatchEntry& e : subs_[v]) {
          if (e.prop == i) e.mask |= masks[k];
        }
        continue;
      }
      seen_at[v] = static_cast<int32_t>(i);
      ++unique;
      watchers_[v].push_back(i);
      subs_[v].push_back({static_cast<uint32_t>(i), masks[k],
                          p.AdviseCoefficient(static_cast<uint32_t>(k))});
    }
    priority_[i] = naive_ ? 0 : PriorityBucket(unique);
    // Cache the virtual per-propagator traits consulted on every wake and
    // every self-wake, so the hot paths below are dispatch-free.
    proofs_[i] = p.fixpoint_proof();
    idempotent_[i] = p.IdempotentAfterRun() ? 1 : 0;
  }
}

bool PropagationEngine::ProvablyAtFixpoint(
    const Propagator::FixpointProof& proof, int aux_base) const {
  switch (proof.kind) {
    case Propagator::FixpointProof::Kind::kNone:
      return false;
    case Propagator::FixpointProof::Kind::kLinear:
      return LinearPassAtFixpoint(proof.rel, store_->aux(aux_base),
                                  store_->aux(aux_base + 1),
                                  store_->aux(aux_base + 2));
    case Propagator::FixpointProof::Kind::kReified: {
      const __int128 smin = store_->aux(aux_base);
      const __int128 smax = store_->aux(aux_base + 1);
      const IntDomain& bd = store_->dom(proof.b);
      if (bd.IsFixed()) {
        // b decided: the propagator is a plain linear pass over the
        // effective relation; same width/slack certificate applies.
        return LinearPassAtFixpoint(bd.min() != 0 ? proof.rel
                                                  : Negate(proof.rel),
                                    smin, smax, store_->aux(aux_base + 2));
      }
      // b open: the only possible prune is fixing b, which happens exactly
      // when the relation's entailment is decided by the sum bounds.
      return EntailedRel(ClampExprBounds(smin, smax), proof.rel) ==
             Entail::kMaybe;
    }
  }
  return false;
}

void PropagationEngine::AttachStore(DomainStore& store) {
  if (naive_) return;
  store_ = &store;
  entailed_base_ = store.AddAuxSlots(static_cast<int>(props_->size()));
  for (size_t i = 0; i < props_->size(); ++i) {
    const Propagator& p = *(*props_)[i];
    const int n = p.NumAuxSlots();
    if (n > 0 && !has_dup_watch_[i]) {
      aux_base_[i] = store.AddAuxSlots(n);
      p.InitAux(store, aux_base_[i]);
    } else {
      aux_base_[i] = -1;
    }
  }
  store.SetListener(this);
}

void PropagationEngine::Enqueue(size_t prop_idx) {
  if (!in_queue_[prop_idx]) {
    in_queue_[prop_idx] = 1;
    buckets_[priority_[prop_idx]].push_back(static_cast<uint32_t>(prop_idx));
  }
}

void PropagationEngine::OnVarChanged(int32_t var_id) {
  // Attached event mode: the store listener already delivered this change
  // with its event type; a second, untyped wake here would bypass the mask
  // filter.
  if (!naive_ && store_ != nullptr) return;
  for (size_t p : watchers_[static_cast<size_t>(var_id)]) Enqueue(p);
}

void PropagationEngine::OnDomainEvent(int32_t var, uint8_t events,
                                      int64_t old_min, int64_t old_max) {
  // Bound deltas are per-variable, not per-subscriber: hoist them out of the
  // subscription loop (this dispatch runs on every mutation search makes).
  const IntDomain& d = store_->dom(var);
  const __int128 dmin = static_cast<__int128>(d.min()) - old_min;
  const __int128 dmax = static_cast<__int128>(d.max()) - old_max;
  for (const WatchEntry& w : subs_[static_cast<size_t>(var)]) {
    // Advisors run on every bound event, even when the wake is filtered or
    // the propagator entailed: the aggregates must track the domains so the
    // next real execution (or entailment re-check) reads current sums. The
    // coefficient-based fold is inlined here — no virtual dispatch.
    const int base = aux_base_[w.prop];
    if (base >= 0 && w.coef != 0 &&
        (events & (kEventMin | kEventMax)) != 0) {
      const __int128 c = w.coef;
      if (w.coef >= 0) {
        if (dmin != 0) store_->SetAux(base, store_->aux(base) + c * dmin);
        if (dmax != 0) {
          store_->SetAux(base + 1, store_->aux(base + 1) + c * dmax);
        }
      } else {
        if (dmax != 0) store_->SetAux(base, store_->aux(base) + c * dmax);
        if (dmin != 0) {
          store_->SetAux(base + 1, store_->aux(base + 1) + c * dmin);
        }
      }
    }
    if ((events & w.mask) == 0) {
      ++wakes_filtered_;
      continue;
    }
    if (store_->aux(entailed_base_ + static_cast<int>(w.prop)) != 0) {
      ++skipped_entailed_;
      continue;
    }
    // The event is relevant in kind, but the freshly-advised aggregates may
    // still prove the run would change nothing: the advisor subsumes the
    // wake entirely. proofs_[] is the construction-time descriptor cache —
    // no virtual dispatch here either.
    if (base >= 0 && ProvablyAtFixpoint(proofs_[w.prop], base)) {
      ++wakes_filtered_;
      continue;
    }
    Enqueue(w.prop);
  }
}

bool PropagationEngine::PropagateAll(DomainStore& store, SolveStats* stats) {
  for (size_t i = 0; i < props_->size(); ++i) Enqueue(i);
  return RunQueue(store, stats);
}

bool PropagationEngine::PropagateFrom(DomainStore& store,
                                      const std::vector<int32_t>& changed_vars,
                                      SolveStats* stats) {
  for (int32_t v : changed_vars) OnVarChanged(v);
  return RunQueue(store, stats);
}

bool PropagationEngine::PropagateDelta(DomainStore& store, SolveStats* stats) {
  if (naive_) return PropagateAll(store, stats);
  return RunQueue(store, stats);
}

void PropagationEngine::DrainQueue() {
  for (auto& bucket : buckets_) {
    while (!bucket.empty()) {
      in_queue_[bucket.front()] = 0;
      bucket.pop_front();
    }
  }
}

bool PropagationEngine::RunQueue(DomainStore& store, SolveStats* stats) {
  PropCtx ctx(&store, this);
  for (;;) {
    int b = 0;
    while (b < kNumBuckets && buckets_[b].empty()) ++b;
    if (b == kNumBuckets) return true;
    const uint32_t idx = buckets_[b].front();
    buckets_[b].pop_front();
    // Stale entry: the quiescence loop below consumed this wake without
    // popping it (event mode only — naive never clears the flag early).
    if (!in_queue_[idx]) continue;
    in_queue_[idx] = 0;
    // A propagator can become entailed after it was enqueued; skip it here
    // the same way the wake-time check does.
    if (!naive_ && IsEntailed(idx)) {
      ++skipped_entailed_;
      continue;
    }
    // Re-prove no-op at pop time: prunes made by propagators that ran since
    // this one was enqueued may have advanced its aggregates to a provable
    // fixpoint.
    if (!naive_ && aux_base_[idx] >= 0 &&
        ProvablyAtFixpoint(proofs_[idx], aux_base_[idx])) {
      ++wakes_filtered_;
      continue;
    }
    if (stats != nullptr) ++stats->propagations;
    ++run_counts_[idx];
    ctx.cur_prop_ = static_cast<int32_t>(idx);
    ctx.aux_base_ = naive_ ? -1 : aux_base_[idx];
    if (!(*props_)[idx]->Propagate(ctx)) {
      // Failure: drain the queue so the engine is clean for the next node.
      DrainQueue();
      return false;
    }
    // Fixpoint reporting (event mode): a wake the run put on *itself* — the
    // only mutations during Propagate(idx) are idx's own — is consumed here
    // instead of costing a queue round trip. Idempotent propagators are at
    // their own fixpoint already; the rest re-run (same execution episode,
    // uncounted) until quiescent or entailed, which computes the exact same
    // per-propagator closure the legacy self-wake loop did.
    while (!naive_ && in_queue_[idx]) {
      in_queue_[idx] = 0;  // the deque entry it left behind is now stale
      if (IsEntailed(idx) || idempotent_[idx]) break;
      // The run's own prunes advised its aggregates; if they now certify a
      // no-op, the closure is reached without another full term scan.
      if (aux_base_[idx] >= 0 &&
          ProvablyAtFixpoint(proofs_[idx], aux_base_[idx])) {
        break;
      }
      if (!(*props_)[idx]->Propagate(ctx)) {
        DrainQueue();
        return false;
      }
    }
  }
}

ExprBounds ClampExprBounds(__int128 lo, __int128 hi) {
  auto clamp = [](__int128 x) {
    const __int128 lim = static_cast<__int128>(INT64_MAX) / 2;
    if (x > lim) return static_cast<int64_t>(lim);
    if (x < -lim) return static_cast<int64_t>(-lim);
    return static_cast<int64_t>(x);
  };
  return {clamp(lo), clamp(hi)};
}

ExprBounds BoundsOf(const PropCtx& ctx, const LinExpr& e) {
  __int128 lo = e.constant, hi = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    if (c >= 0) {
      lo += static_cast<__int128>(c) * d.min();
      hi += static_cast<__int128>(c) * d.max();
    } else {
      lo += static_cast<__int128>(c) * d.max();
      hi += static_cast<__int128>(c) * d.min();
    }
  }
  return ClampExprBounds(lo, hi);
}

Entail EntailedRel(const ExprBounds& b, Rel rel) {
  switch (rel) {
    case Rel::kEq:
      if (b.min == 0 && b.max == 0) return Entail::kYes;
      if (b.min > 0 || b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kNe:
      if (b.min > 0 || b.max < 0) return Entail::kYes;
      if (b.min == 0 && b.max == 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLe:
      if (b.max <= 0) return Entail::kYes;
      if (b.min > 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLt:
      if (b.max < 0) return Entail::kYes;
      if (b.min >= 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGe:
      if (b.min >= 0) return Entail::kYes;
      if (b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGt:
      if (b.min > 0) return Entail::kYes;
      if (b.max <= 0) return Entail::kNo;
      return Entail::kMaybe;
  }
  return Entail::kMaybe;
}

namespace {

// Floor/ceil division with correct rounding toward -inf / +inf.
// __int128 intermediates keep coefficient * bound products exact.
int64_t FloorDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) q -= 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}
int64_t CeilDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) q += 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}

// Prune pass of `sign*e + add <= 0` given the precomputed sum of minima of
// the transformed expression. Term-for-term identical to the historical
// single-function PruneLe; split out so the incremental path can supply
// `sum_min` from its live aggregates instead of the O(all terms) first loop.
bool PruneLeWithSum(PropCtx& ctx, const LinExpr& e, int64_t sign, int64_t add,
                    __int128 sum_min) {
  if (sum_min > 0) return false;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    const __int128 ce = static_cast<__int128>(sign) * c;
    // min of the expression excluding this term's contribution at its min.
    __int128 term_min = ce * (ce >= 0 ? d.min() : d.max());
    __int128 rest_min = sum_min - term_min;
    // Need: ce * x <= -rest_min. The multiply-compare guard skips the
    // division and the clamp call when the current bound already satisfies
    // the budget (the overwhelmingly common case): ce*x over the domain
    // violates the budget exactly when the clamp below would narrow it.
    __int128 budget = -rest_min;
    if (ce > 0) {
      if (ce * static_cast<__int128>(d.max()) > budget &&
          !ctx.ClampMax(v, FloorDiv128(budget, ce))) {
        return false;
      }
    } else if (ce < 0) {
      if (ce * static_cast<__int128>(d.min()) > budget &&
          !ctx.ClampMin(v, CeilDiv128(budget, ce))) {
        return false;
      }
    }
  }
  return true;
}

// Prune `sign*e + add <= 0` to bounds consistency. The sign/offset
// parameterization covers every PruneLinear rewrite (>=, >, <, ==) without
// materializing a negated LinExpr copy per propagation — the historical
// `f = e; f.MulBy(-1)` heap-allocated a terms vector on the hot path.
bool PruneLe(PropCtx& ctx, const LinExpr& e, int64_t sign = 1,
             int64_t add = 0) {
  __int128 sum_min = static_cast<__int128>(sign) * e.constant + add;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    const __int128 ce = static_cast<__int128>(sign) * c;
    sum_min += ce * (ce >= 0 ? d.min() : d.max());
  }
  return PruneLeWithSum(ctx, e, sign, add, sum_min);
}

bool PruneNe(PropCtx& ctx, const LinExpr& e) {
  // Only prunes when exactly one variable is unfixed.
  int64_t fixed_sum = e.constant;
  IntVar free_var;
  int64_t free_coef = 0;
  int n_free = 0;
  for (const auto& [c, v] : e.terms) {
    if (ctx.IsFixed(v)) {
      fixed_sum += c * ctx.ValueOf(v);
    } else {
      ++n_free;
      free_var = v;
      free_coef = c;
    }
  }
  if (n_free == 0) return fixed_sum != 0;
  if (n_free == 1) {
    // free_coef * x != -fixed_sum.
    if ((-fixed_sum) % free_coef == 0) {
      if (!ctx.Remove(free_var, (-fixed_sum) / free_coef)) return false;
    }
  }
  return true;
}

}  // namespace

bool PruneLinear(PropCtx& ctx, const LinExpr& e, Rel rel) {
  switch (rel) {
    case Rel::kLe:
      return PruneLe(ctx, e);
    case Rel::kLt:
      return PruneLe(ctx, e, 1, 1);  // e < 0  <=>  e + 1 <= 0
    case Rel::kGe:
      return PruneLe(ctx, e, -1);  // e >= 0  <=>  -e <= 0
    case Rel::kGt:
      return PruneLe(ctx, e, -1, 1);  // e > 0  <=>  -e + 1 <= 0
    case Rel::kEq:
      return PruneLe(ctx, e) && PruneLe(ctx, e, -1);
    case Rel::kNe:
      return PruneNe(ctx, e);
  }
  return true;
}

bool LinearPassAtFixpoint(Rel rel, __int128 sum_min, __int128 sum_max,
                          __int128 max_width) {
  // Pass over `g = sign*e + add <= 0`: term j prunable iff
  // width_j > slack = -min(g); see PruneLeWithSum's multiply-compare guard.
  // `max_width >= 0`, so `max_width <= slack` also certifies `min(g) <= 0` —
  // a failing pass (positive min) is never skipped.
  switch (rel) {
    case Rel::kLe:  // g = e:       slack = -sum_min
      return max_width <= -sum_min;
    case Rel::kLt:  // g = e + 1:   slack = -sum_min - 1
      return max_width <= -sum_min - 1;
    case Rel::kGe:  // g = -e:      slack = sum_max
      return max_width <= sum_max;
    case Rel::kGt:  // g = -e + 1:  slack = sum_max - 1
      return max_width <= sum_max - 1;
    case Rel::kEq:  // both passes; same widths (|c| is sign-invariant)
      return max_width <= -sum_min && max_width <= sum_max;
    case Rel::kNe:
      return false;
  }
  return false;
}

bool PruneLinearIncremental(PropCtx& ctx, const LinExpr& e, Rel rel) {
  // Aux slot 0/1 hold the exact sum-min/sum-max of `e` (constant included),
  // maintained by Advise deltas. `sum_min(sign*e + add)` is `aux0 + add`
  // for sign=1 and `-aux1 + add` for sign=-1 — the same value the
  // full-recompute first loop would produce, so the prune pass (and hence
  // the fixpoint) is identical. For kEq the second pass re-reads the slot:
  // prunes made by the first pass advise the aggregates mid-call, exactly
  // as the legacy second recompute observed them.
  switch (rel) {
    case Rel::kLe:
      return PruneLeWithSum(ctx, e, 1, 0, ctx.AuxVal(0));
    case Rel::kLt:
      return PruneLeWithSum(ctx, e, 1, 1, ctx.AuxVal(0) + 1);
    case Rel::kGe:
      return PruneLeWithSum(ctx, e, -1, 0, -ctx.AuxVal(1));
    case Rel::kGt:
      return PruneLeWithSum(ctx, e, -1, 1, -ctx.AuxVal(1) + 1);
    case Rel::kEq:
      return PruneLeWithSum(ctx, e, 1, 0, ctx.AuxVal(0)) &&
             PruneLeWithSum(ctx, e, -1, 0, -ctx.AuxVal(1));
    case Rel::kNe:
      return PruneNe(ctx, e);
  }
  return true;
}

}  // namespace cologne::solver

#include "solver/propagator.h"

namespace cologne::solver {

bool PropCtx::ClampMin(IntVar v, int64_t lo) {
  IntDomain& d = (*doms_)[static_cast<size_t>(v.id)];
  if (d.ClampMin(lo)) {
    if (d.empty()) return false;
    Notify(v.id);
  }
  return true;
}

bool PropCtx::ClampMax(IntVar v, int64_t hi) {
  IntDomain& d = (*doms_)[static_cast<size_t>(v.id)];
  if (d.ClampMax(hi)) {
    if (d.empty()) return false;
    Notify(v.id);
  }
  return true;
}

bool PropCtx::Assign(IntVar v, int64_t val) {
  IntDomain& d = (*doms_)[static_cast<size_t>(v.id)];
  if (d.Assign(val)) {
    if (d.empty()) return false;
    Notify(v.id);
  }
  return !d.empty();
}

bool PropCtx::Remove(IntVar v, int64_t val) {
  IntDomain& d = (*doms_)[static_cast<size_t>(v.id)];
  if (d.Remove(val)) {
    if (d.empty()) return false;
    Notify(v.id);
  }
  return true;
}

void PropCtx::Notify(int32_t var_id) {
  if (engine_ != nullptr) engine_->OnVarChanged(var_id);
}

PropagationEngine::PropagationEngine(
    const std::vector<std::unique_ptr<Propagator>>* props, size_t num_vars)
    : props_(props), watchers_(num_vars), in_queue_(props->size(), 0) {
  for (size_t i = 0; i < props->size(); ++i) {
    for (int32_t v : (*props)[i]->watched()) {
      watchers_[static_cast<size_t>(v)].push_back(i);
    }
  }
}

void PropagationEngine::Enqueue(size_t prop_idx) {
  if (!in_queue_[prop_idx]) {
    in_queue_[prop_idx] = 1;
    queue_.push_back(prop_idx);
  }
}

void PropagationEngine::OnVarChanged(int32_t var_id) {
  for (size_t p : watchers_[static_cast<size_t>(var_id)]) Enqueue(p);
}

bool PropagationEngine::PropagateAll(std::vector<IntDomain>& doms,
                                     SolveStats* stats) {
  for (size_t i = 0; i < props_->size(); ++i) Enqueue(i);
  return RunQueue(doms, stats);
}

bool PropagationEngine::PropagateFrom(std::vector<IntDomain>& doms,
                                      const std::vector<int32_t>& changed_vars,
                                      SolveStats* stats) {
  for (int32_t v : changed_vars) OnVarChanged(v);
  return RunQueue(doms, stats);
}

bool PropagationEngine::RunQueue(std::vector<IntDomain>& doms,
                                 SolveStats* stats) {
  PropCtx ctx(&doms, this);
  while (!queue_.empty()) {
    size_t idx = queue_.front();
    queue_.pop_front();
    in_queue_[idx] = 0;
    if (stats != nullptr) ++stats->propagations;
    if (!(*props_)[idx]->Propagate(ctx)) {
      // Failure: drain the queue so the engine is clean for the next node.
      while (!queue_.empty()) {
        in_queue_[queue_.front()] = 0;
        queue_.pop_front();
      }
      return false;
    }
  }
  return true;
}

ExprBounds BoundsOf(const PropCtx& ctx, const LinExpr& e) {
  __int128 lo = e.constant, hi = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    if (c >= 0) {
      lo += static_cast<__int128>(c) * d.min();
      hi += static_cast<__int128>(c) * d.max();
    } else {
      lo += static_cast<__int128>(c) * d.max();
      hi += static_cast<__int128>(c) * d.min();
    }
  }
  auto clamp = [](__int128 x) {
    const __int128 lim = static_cast<__int128>(INT64_MAX) / 2;
    if (x > lim) return static_cast<int64_t>(lim);
    if (x < -lim) return static_cast<int64_t>(-lim);
    return static_cast<int64_t>(x);
  };
  return {clamp(lo), clamp(hi)};
}

Entail EntailedRel(const ExprBounds& b, Rel rel) {
  switch (rel) {
    case Rel::kEq:
      if (b.min == 0 && b.max == 0) return Entail::kYes;
      if (b.min > 0 || b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kNe:
      if (b.min > 0 || b.max < 0) return Entail::kYes;
      if (b.min == 0 && b.max == 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLe:
      if (b.max <= 0) return Entail::kYes;
      if (b.min > 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLt:
      if (b.max < 0) return Entail::kYes;
      if (b.min >= 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGe:
      if (b.min >= 0) return Entail::kYes;
      if (b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGt:
      if (b.min > 0) return Entail::kYes;
      if (b.max <= 0) return Entail::kNo;
      return Entail::kMaybe;
  }
  return Entail::kMaybe;
}

namespace {

// Floor/ceil division with correct rounding toward -inf / +inf.
// __int128 intermediates keep coefficient * bound products exact.
int64_t FloorDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) q -= 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}
int64_t CeilDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) q += 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}

// Prune `e <= 0` to bounds consistency.
bool PruneLe(PropCtx& ctx, const LinExpr& e) {
  __int128 sum_min = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    sum_min += static_cast<__int128>(c) * (c >= 0 ? d.min() : d.max());
  }
  if (sum_min > 0) return false;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    // min of the expression excluding this term's contribution at its min.
    __int128 term_min = static_cast<__int128>(c) * (c >= 0 ? d.min() : d.max());
    __int128 rest_min = sum_min - term_min;
    // Need: c * x <= -rest_min.
    __int128 budget = -rest_min;
    if (c > 0) {
      if (!ctx.ClampMax(v, FloorDiv128(budget, c))) return false;
    } else if (c < 0) {
      if (!ctx.ClampMin(v, CeilDiv128(budget, c))) return false;
    }
  }
  return true;
}

bool PruneNe(PropCtx& ctx, const LinExpr& e) {
  // Only prunes when exactly one variable is unfixed.
  int64_t fixed_sum = e.constant;
  IntVar free_var;
  int64_t free_coef = 0;
  int n_free = 0;
  for (const auto& [c, v] : e.terms) {
    if (ctx.IsFixed(v)) {
      fixed_sum += c * ctx.ValueOf(v);
    } else {
      ++n_free;
      free_var = v;
      free_coef = c;
    }
  }
  if (n_free == 0) return fixed_sum != 0;
  if (n_free == 1) {
    // free_coef * x != -fixed_sum.
    if ((-fixed_sum) % free_coef == 0) {
      if (!ctx.Remove(free_var, (-fixed_sum) / free_coef)) return false;
    }
  }
  return true;
}

}  // namespace

bool PruneLinear(PropCtx& ctx, const LinExpr& e, Rel rel) {
  switch (rel) {
    case Rel::kLe:
      return PruneLe(ctx, e);
    case Rel::kLt: {
      LinExpr f = e;
      f.constant += 1;  // e < 0  <=>  e + 1 <= 0
      return PruneLe(ctx, f);
    }
    case Rel::kGe: {
      LinExpr f = e;
      f.MulBy(-1);  // e >= 0  <=>  -e <= 0
      return PruneLe(ctx, f);
    }
    case Rel::kGt: {
      LinExpr f = e;
      f.MulBy(-1);
      f.constant += 1;
      return PruneLe(ctx, f);
    }
    case Rel::kEq: {
      if (!PruneLe(ctx, e)) return false;
      LinExpr f = e;
      f.MulBy(-1);
      return PruneLe(ctx, f);
    }
    case Rel::kNe:
      return PruneNe(ctx, e);
  }
  return true;
}

}  // namespace cologne::solver

#include "solver/propagator.h"

namespace cologne::solver {

PropagationEngine::PropagationEngine(
    const std::vector<std::unique_ptr<Propagator>>* props, size_t num_vars)
    : props_(props),
      watchers_(num_vars),
      in_queue_(props->size(), 0),
      run_counts_(props->size(), 0) {
  for (size_t i = 0; i < props->size(); ++i) {
    for (int32_t v : (*props)[i]->watched()) {
      watchers_[static_cast<size_t>(v)].push_back(i);
    }
  }
}

void PropagationEngine::Enqueue(size_t prop_idx) {
  if (!in_queue_[prop_idx]) {
    in_queue_[prop_idx] = 1;
    queue_.push_back(prop_idx);
  }
}

void PropagationEngine::OnVarChanged(int32_t var_id) {
  for (size_t p : watchers_[static_cast<size_t>(var_id)]) Enqueue(p);
}

bool PropagationEngine::PropagateAll(DomainStore& store, SolveStats* stats) {
  for (size_t i = 0; i < props_->size(); ++i) Enqueue(i);
  return RunQueue(store, stats);
}

bool PropagationEngine::PropagateFrom(DomainStore& store,
                                      const std::vector<int32_t>& changed_vars,
                                      SolveStats* stats) {
  for (int32_t v : changed_vars) OnVarChanged(v);
  return RunQueue(store, stats);
}

bool PropagationEngine::RunQueue(DomainStore& store, SolveStats* stats) {
  PropCtx ctx(&store, this);
  while (!queue_.empty()) {
    size_t idx = queue_.front();
    queue_.pop_front();
    in_queue_[idx] = 0;
    if (stats != nullptr) ++stats->propagations;
    ++run_counts_[idx];
    if (!(*props_)[idx]->Propagate(ctx)) {
      // Failure: drain the queue so the engine is clean for the next node.
      while (!queue_.empty()) {
        in_queue_[queue_.front()] = 0;
        queue_.pop_front();
      }
      return false;
    }
  }
  return true;
}

ExprBounds BoundsOf(const PropCtx& ctx, const LinExpr& e) {
  __int128 lo = e.constant, hi = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    if (c >= 0) {
      lo += static_cast<__int128>(c) * d.min();
      hi += static_cast<__int128>(c) * d.max();
    } else {
      lo += static_cast<__int128>(c) * d.max();
      hi += static_cast<__int128>(c) * d.min();
    }
  }
  auto clamp = [](__int128 x) {
    const __int128 lim = static_cast<__int128>(INT64_MAX) / 2;
    if (x > lim) return static_cast<int64_t>(lim);
    if (x < -lim) return static_cast<int64_t>(-lim);
    return static_cast<int64_t>(x);
  };
  return {clamp(lo), clamp(hi)};
}

Entail EntailedRel(const ExprBounds& b, Rel rel) {
  switch (rel) {
    case Rel::kEq:
      if (b.min == 0 && b.max == 0) return Entail::kYes;
      if (b.min > 0 || b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kNe:
      if (b.min > 0 || b.max < 0) return Entail::kYes;
      if (b.min == 0 && b.max == 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLe:
      if (b.max <= 0) return Entail::kYes;
      if (b.min > 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kLt:
      if (b.max < 0) return Entail::kYes;
      if (b.min >= 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGe:
      if (b.min >= 0) return Entail::kYes;
      if (b.max < 0) return Entail::kNo;
      return Entail::kMaybe;
    case Rel::kGt:
      if (b.min > 0) return Entail::kYes;
      if (b.max <= 0) return Entail::kNo;
      return Entail::kMaybe;
  }
  return Entail::kMaybe;
}

namespace {

// Floor/ceil division with correct rounding toward -inf / +inf.
// __int128 intermediates keep coefficient * bound products exact.
int64_t FloorDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) q -= 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}
int64_t CeilDiv128(__int128 a, __int128 b) {
  __int128 q = a / b, r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) q += 1;
  if (q > kDomainLimit) return kDomainLimit;
  if (q < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(q);
}

// Prune `sign*e + add <= 0` to bounds consistency. The sign/offset
// parameterization covers every PruneLinear rewrite (>=, >, <, ==) without
// materializing a negated LinExpr copy per propagation — the historical
// `f = e; f.MulBy(-1)` heap-allocated a terms vector on the hot path. The
// arithmetic is term-for-term identical to running the plain `e' <= 0` prune
// on the rewritten expression.
bool PruneLe(PropCtx& ctx, const LinExpr& e, int64_t sign = 1,
             int64_t add = 0) {
  __int128 sum_min = static_cast<__int128>(sign) * e.constant + add;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    const __int128 ce = static_cast<__int128>(sign) * c;
    sum_min += ce * (ce >= 0 ? d.min() : d.max());
  }
  if (sum_min > 0) return false;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    const __int128 ce = static_cast<__int128>(sign) * c;
    // min of the expression excluding this term's contribution at its min.
    __int128 term_min = ce * (ce >= 0 ? d.min() : d.max());
    __int128 rest_min = sum_min - term_min;
    // Need: ce * x <= -rest_min. The multiply-compare guard skips the
    // division and the clamp call when the current bound already satisfies
    // the budget (the overwhelmingly common case): ce*x over the domain
    // violates the budget exactly when the clamp below would narrow it.
    __int128 budget = -rest_min;
    if (ce > 0) {
      if (ce * static_cast<__int128>(d.max()) > budget &&
          !ctx.ClampMax(v, FloorDiv128(budget, ce))) {
        return false;
      }
    } else if (ce < 0) {
      if (ce * static_cast<__int128>(d.min()) > budget &&
          !ctx.ClampMin(v, CeilDiv128(budget, ce))) {
        return false;
      }
    }
  }
  return true;
}

bool PruneNe(PropCtx& ctx, const LinExpr& e) {
  // Only prunes when exactly one variable is unfixed.
  int64_t fixed_sum = e.constant;
  IntVar free_var;
  int64_t free_coef = 0;
  int n_free = 0;
  for (const auto& [c, v] : e.terms) {
    if (ctx.IsFixed(v)) {
      fixed_sum += c * ctx.ValueOf(v);
    } else {
      ++n_free;
      free_var = v;
      free_coef = c;
    }
  }
  if (n_free == 0) return fixed_sum != 0;
  if (n_free == 1) {
    // free_coef * x != -fixed_sum.
    if ((-fixed_sum) % free_coef == 0) {
      if (!ctx.Remove(free_var, (-fixed_sum) / free_coef)) return false;
    }
  }
  return true;
}

}  // namespace

bool PruneLinear(PropCtx& ctx, const LinExpr& e, Rel rel) {
  switch (rel) {
    case Rel::kLe:
      return PruneLe(ctx, e);
    case Rel::kLt:
      return PruneLe(ctx, e, 1, 1);  // e < 0  <=>  e + 1 <= 0
    case Rel::kGe:
      return PruneLe(ctx, e, -1);  // e >= 0  <=>  -e <= 0
    case Rel::kGt:
      return PruneLe(ctx, e, -1, 1);  // e > 0  <=>  -e + 1 <= 0
    case Rel::kEq:
      return PruneLe(ctx, e) && PruneLe(ctx, e, -1);
    case Rel::kNe:
      return PruneNe(ctx, e);
  }
  return true;
}

}  // namespace cologne::solver

// Branch-and-bound search backend and the Model::Solve dispatch.
//
// Trailed state restoration (as in Gecode's recomputation-free engines): one
// in-place domain store per solve, a level pushed per branching attempt, and
// O(changed domains) undo on backtrack (solver/store.h). The explored tree
// is bit-identical to the historical copy-based core's.
//
// The backend is complete: left to run it proves optimality/infeasibility.
// Under a time cap it is anytime — after the tree-search phase is cut off it
// spends the remaining budget on the shared LNS improvement loop (lns.cc),
// the pattern behind the paper's "close-to-optimal under a 10 s cap"
// executions (Section 6.2). Optional Luby restarts (Options::
// restart_base_nodes) rerun the dive under growing node budgets with
// randomized value order, which helps on heavy-tailed instances.
#include "common/rng.h"
#include "solver/lns.h"
#include "solver/local_search.h"
#include "solver/model.h"
#include "solver/portfolio.h"
#include "solver/search_backend.h"
#include "solver/search_internal.h"

namespace cologne::solver {

namespace {

using internal::DiveEnd;
using internal::Incumbent;
using internal::Luby;
using internal::SearchContext;

class BranchAndBound : public SearchBackend {
 public:
  Solution Solve(const Model& model,
                 const Model::Options& options) const override {
    SearchContext ctx(model, options);
    Solution out;  // Solution::backend is stamped by the Solve dispatch.

    if (!ctx.PropagateRoot()) {
      ctx.FinalizeStats();
      out.status = SolveStatus::kInfeasible;
      out.stats = ctx.stats;
      return out;
    }

    Incumbent inc;

    // ---- Warm start --------------------------------------------------------
    // Seed the incumbent from the caller's hint (the runtime bridge feeds
    // back the previous invokeSolver solution here): assimilate the hints
    // into the store, then complete with a short first-solution dive. A good
    // early incumbent makes every subsequent branch-and-bound cut sharper.
    // The hint levels unwind afterwards so the tree search starts from the
    // plain propagated root.
    if (!options.warm_start.empty()) {
      size_t applied = 0;
      ctx.ApplyWarmStart(&applied);
      if (applied > 0) {
        SearchContext::DiveLimits seed_dive;
        seed_dive.stop_on_first = true;
        seed_dive.bound_objective = false;
        seed_dive.node_budget = 10'000;
        seed_dive.hint = &options.warm_start;
        ctx.Dive(seed_dive, &inc);
      }
      ctx.store().BacktrackTo(ctx.root_level());
    }

    // A warm-started satisfaction solve is already done: any solution is
    // terminal, so skip the tree search entirely.
    if (inc.found && model.sense() == Sense::kSatisfy) {
      ctx.FinalizeStats();
      out.stats = ctx.stats;
      out.values = std::move(inc.values);
      out.objective = inc.objective;
      out.status = SolveStatus::kOptimal;
      return out;
    }

    // Valid relaxation bound on the objective, from root propagation; lets
    // the improvement phase stop (and claim optimality) when reached.
    int64_t objective_bound = 0;
    if (ctx.optimizing()) {
      const IntDomain& od = ctx.store().dom(model.objective_var().id);
      objective_bound = ctx.minimizing() ? od.min() : od.max();
    }

    // ---- Tree search -------------------------------------------------------
    // Large models cannot be searched exhaustively within SOLVER_MAX_TIME;
    // once an incumbent exists, reserve the remaining budget for the LNS
    // improvement phase below.
    SearchContext::DiveLimits limits;
    limits.bound_objective = true;
    limits.hint = options.warm_start.empty() ? nullptr : &options.warm_start;
    if (ctx.optimizing() && options.time_limit_ms > 0) {
      limits.soft_deadline_ms = options.time_limit_ms * 0.3;
    }

    // ---- Incremental re-solve ----------------------------------------------
    // A warm-seeded incremental solve already holds the previous incumbent of
    // a near-identical model. Nothing dirty: accept it outright (feasible,
    // not proven — the delta path trades the proof for latency). Dirty
    // groups: cap the exhaustive prefix to a short sharpening dive and let
    // the focused improvement tail do the repair.
    if (options.incremental && inc.found && ctx.optimizing()) {
      if (options.focus_groups.empty()) {
        ctx.FinalizeStats();
        out.stats = ctx.stats;
        out.values = std::move(inc.values);
        out.objective = inc.objective;
        out.status = SolveStatus::kFeasible;
        return out;
      }
      limits.node_budget = 2000;
    }

    bool cutoff = false;
    if (options.restart_base_nodes == 0) {
      DiveEnd end = ctx.Dive(limits, &inc);
      cutoff = end == DiveEnd::kCutoff;
    } else {
      // Luby restarts: dive i gets base * luby(i) nodes; from the second
      // dive on, value order is randomized to diversify. The incumbent (and
      // with it the objective cut) carries across dives; every dive starts
      // from the propagated root the trail restores between restarts.
      Rng rng(options.seed);
      std::vector<int64_t> incumbent_hint;
      for (uint64_t i = 1;; ++i) {
        SearchContext::DiveLimits dive = limits;
        dive.node_budget = options.restart_base_nodes * Luby(i);
        dive.shuffle_rng = i > 1 ? &rng : nullptr;
        // Warm-start-aware restarts: once an incumbent exists, it becomes
        // the value-order hint of every later dive — each restart descends
        // into the incumbent's basin first while the shuffle diversifies the
        // rest of the tree, instead of re-rolling value order blindly.
        if (i > 1 && inc.found) {
          incumbent_hint = inc.values;
          dive.hint = &incumbent_hint;
        }
        DiveEnd end = ctx.Dive(dive, &inc);
        if (end == DiveEnd::kExhausted || end == DiveEnd::kFirstSolution) {
          cutoff = false;
          break;
        }
        cutoff = true;
        if (ctx.ShouldStop() ||
            (limits.soft_deadline_ms > 0 && inc.found &&
             ctx.elapsed_ms() > limits.soft_deadline_ms)) {
          break;
        }
        ++ctx.stats.restarts;
      }
    }

    // ---- Anytime improvement tail -----------------------------------------
    if (cutoff && inc.found && ctx.optimizing()) {
      LnsParams params;
      params.seed = options.seed;
      params.max_iterations = options.max_iterations;
      params.relax_base = options.lns_relax_base;
      params.have_objective_bound = true;
      params.objective_bound = objective_bound;
      params.incremental = options.incremental;
      params.focus_groups = options.focus_groups;
      if (LnsImprove(ctx, params, &inc)) {
        cutoff = false;  // incumbent reached the relaxation bound: optimal
      }
    }

    ctx.FinalizeStats();
    out.stats = ctx.stats;
    if (inc.found) {
      out.values = std::move(inc.values);
      out.objective = inc.objective;
      // With a cutoff we cannot claim optimality (except pure satisfaction,
      // where any solution is terminal).
      out.status = (cutoff && model.sense() != Sense::kSatisfy)
                       ? SolveStatus::kFeasible
                       : SolveStatus::kOptimal;
    } else {
      out.status = cutoff ? SolveStatus::kUnknown : SolveStatus::kInfeasible;
    }
    return out;
  }

  const char* name() const override {
    return BackendName(Backend::kBranchAndBound);
  }
};

}  // namespace

std::unique_ptr<SearchBackend> MakeSearchBackend(Backend backend) {
  switch (backend) {
    case Backend::kBranchAndBound:
      return std::make_unique<BranchAndBound>();
    case Backend::kLns:
      return std::make_unique<LnsSearch>();
    case Backend::kPortfolio:
      return std::make_unique<PortfolioSearch>();
    case Backend::kParallelLns:
      return std::make_unique<ParallelLnsSearch>();
    case Backend::kLocalSearch:
      return std::make_unique<LocalSearch>();
  }
  return std::make_unique<BranchAndBound>();
}

Solution Model::Solve(const Options& options) const {
  Solution s = MakeSearchBackend(options.backend)->Solve(*this, options);
  s.backend = options.backend;
  return s;
}

}  // namespace cologne::solver

// Depth-first branch-and-bound search (Model::Solve).
//
// Copy-based state restoration (as in Gecode's clone-based search engines):
// each open node stores a full domain vector. Models in Cologne are small
// (hundreds of variables per invokeSolver event), so cloning is cheap and
// keeps backtracking trivially correct.
#include <chrono>

#include "common/rng.h"
#include "solver/model.h"

namespace cologne::solver {

namespace {

struct Frame {
  std::vector<IntDomain> doms;   // store after propagation at this node
  IntVar var;                    // branching variable
  std::vector<int64_t> values;   // values to try, in order
  size_t next = 0;               // next value index to try
};

// First-fail: smallest domain among unfixed variables; ties by lowest id.
// Decision variables (if any are marked) are branched before auxiliaries.
IntVar SelectVar(const Model& model, const std::vector<IntDomain>& doms) {
  IntVar best;
  uint64_t best_size = 0;
  bool best_decision = false;
  for (size_t i = 0; i < doms.size(); ++i) {
    const IntDomain& d = doms[i];
    if (d.IsFixed()) continue;
    IntVar v{static_cast<int32_t>(i)};
    bool dec = model.IsDecision(v);
    uint64_t s = d.size();
    if (!best.valid() || (dec && !best_decision) ||
        (dec == best_decision && s < best_size)) {
      best = v;
      best_size = s;
      best_decision = dec;
    }
  }
  return best;
}

bool AllFixed(const std::vector<IntDomain>& doms) {
  for (const IntDomain& d : doms) {
    if (!d.IsFixed()) return false;
  }
  return true;
}

}  // namespace

Solution Model::Solve(const Options& options) const {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  Solution out;
  SolveStats& stats = out.stats;
  PropagationEngine engine(&props_, domains_.size());

  // Root propagation.
  std::vector<IntDomain> root = domains_;
  bool root_ok = engine.PropagateAll(root, &stats);
  if (!root_ok) {
    out.status = SolveStatus::kInfeasible;
    out.stats.wall_ms = elapsed_ms();
    return out;
  }

  const bool minimizing = sense_ == Sense::kMinimize;
  const bool maximizing = sense_ == Sense::kMaximize;
  bool have_incumbent = false;
  int64_t best_obj = 0;
  std::vector<int64_t> best_values;
  bool cutoff = false;  // time/node limit hit

  std::vector<Frame> stack;
  size_t peak_frames = 0;

  auto record_solution = [&](const std::vector<IntDomain>& doms) {
    std::vector<int64_t> vals(doms.size());
    for (size_t i = 0; i < doms.size(); ++i) vals[i] = doms[i].value();
    int64_t obj = objective_.valid()
                      ? vals[static_cast<size_t>(objective_.id)]
                      : 0;
    if (!have_incumbent || (minimizing && obj < best_obj) ||
        (maximizing && obj > best_obj) || sense_ == Sense::kSatisfy) {
      have_incumbent = true;
      best_obj = obj;
      best_values = std::move(vals);
      ++stats.solutions;
    }
  };

  // Apply the branch-and-bound cut to a fresh store; false on failure.
  auto apply_bound = [&](std::vector<IntDomain>& doms,
                         std::vector<int32_t>& changed) {
    if (!have_incumbent || sense_ == Sense::kSatisfy) return true;
    IntDomain& od = doms[static_cast<size_t>(objective_.id)];
    bool ch = minimizing ? od.ClampMax(best_obj - 1) : od.ClampMin(best_obj + 1);
    if (od.empty()) return false;
    if (ch) changed.push_back(objective_.id);
    return true;
  };

  // Open the root node.
  if (AllFixed(root)) {
    record_solution(root);
  } else {
    IntVar v = SelectVar(*this, root);
    Frame f;
    f.var = v;
    f.values = root[static_cast<size_t>(v.id)].Values();
    f.doms = std::move(root);
    stack.push_back(std::move(f));
  }

  // Large models cannot be searched exhaustively within SOLVER_MAX_TIME;
  // once an incumbent exists, reserve the remaining budget for the
  // coordinate-descent improvement phase below.
  const double bnb_budget_ms =
      options.time_limit_ms > 0 ? options.time_limit_ms * 0.3 : 0;

  while (!stack.empty()) {
    if (options.node_limit > 0 && stats.nodes >= options.node_limit) {
      cutoff = true;
      break;
    }
    if (options.time_limit_ms > 0 && (stats.nodes & 0xFF) == 0) {
      double t = elapsed_ms();
      if (t > options.time_limit_ms ||
          (have_incumbent && sense_ != Sense::kSatisfy && t > bnb_budget_ms)) {
        cutoff = true;
        break;
      }
    }
    Frame& top = stack.back();
    if (top.next >= top.values.size()) {
      stack.pop_back();
      continue;
    }
    int64_t value = top.values[top.next++];
    ++stats.nodes;

    std::vector<IntDomain> doms = top.doms;
    doms[static_cast<size_t>(top.var.id)].Assign(value);
    std::vector<int32_t> changed{top.var.id};
    if (!apply_bound(doms, changed)) {
      ++stats.failures;
      continue;
    }
    if (!engine.PropagateFrom(doms, changed, &stats)) {
      ++stats.failures;
      continue;
    }
    if (AllFixed(doms)) {
      record_solution(doms);
      if (sense_ == Sense::kSatisfy) break;  // first solution suffices
      continue;
    }
    IntVar v = SelectVar(*this, doms);
    Frame f;
    f.var = v;
    f.values = doms[static_cast<size_t>(v.id)].Values();
    f.doms = std::move(doms);
    stack.push_back(std::move(f));
    peak_frames = std::max(peak_frames, stack.size());
  }

  // ---- Large-neighborhood improvement (anytime quality) --------------------
  // When the branch-and-bound phase was cut off with an incumbent, spend the
  // remaining budget on LNS: repeatedly re-fix most decision variables to
  // the incumbent, free a sliding window of them, bound the objective to
  // "strictly better", and re-dive with a small node budget. This is the
  // standard anytime pattern for time-capped COP executions (the paper
  // reports "close-to-optimal" solutions under a 10 s cap, Section 6.2).
  if (cutoff && have_incumbent && (minimizing || maximizing)) {
    std::vector<int32_t> decisions;
    for (size_t i = 0; i < domains_.size(); ++i) {
      IntVar v{static_cast<int32_t>(i)};
      if (has_decisions_ ? IsDecision(v) : true) decisions.push_back(v.id);
    }
    size_t n = decisions.size();

    // Bounded first-solution dive; any solution found is improving because
    // the objective was pre-bounded. Returns true on success.
    auto bounded_dive = [&](std::vector<IntDomain> doms,
                            uint64_t node_budget) -> bool {
      if (AllFixed(doms)) {
        record_solution(doms);
        return true;
      }
      std::vector<Frame> st;
      {
        IntVar v = SelectVar(*this, doms);
        Frame f;
        f.var = v;
        f.values = doms[static_cast<size_t>(v.id)].Values();
        f.doms = std::move(doms);
        st.push_back(std::move(f));
      }
      uint64_t dive_nodes = 0;
      while (!st.empty()) {
        if (++dive_nodes > node_budget) return false;
        if (options.time_limit_ms > 0 && (dive_nodes & 63) == 0 &&
            elapsed_ms() > options.time_limit_ms) {
          return false;
        }
        Frame& top = st.back();
        if (top.next >= top.values.size()) {
          st.pop_back();
          continue;
        }
        int64_t value = top.values[top.next++];
        ++stats.nodes;
        std::vector<IntDomain> d2 = top.doms;
        d2[static_cast<size_t>(top.var.id)].Assign(value);
        std::vector<int32_t> changed{top.var.id};
        if (!engine.PropagateFrom(d2, changed, &stats)) {
          ++stats.failures;
          continue;
        }
        if (AllFixed(d2)) {
          record_solution(d2);
          return true;
        }
        IntVar v = SelectVar(*this, d2);
        Frame f;
        f.var = v;
        f.values = d2[static_cast<size_t>(v.id)].Values();
        f.doms = std::move(d2);
        st.push_back(std::move(f));
      }
      return false;
    };

    Rng rng(0x10C5);
    size_t window = std::max<size_t>(2, std::min<size_t>(12, n / 3 + 1));
    int stale = 0;
    // Improving windows can be rare near a local optimum; keep sampling
    // until the time budget runs out (the cap only matters for small models
    // that reach a true window-local optimum quickly).
    const int max_stale =
        std::max(200, static_cast<int>(64 * (n / window + 1)));
    while (n > 0 && stale < max_stale) {
      if (options.time_limit_ms > 0 && elapsed_ms() > options.time_limit_ms) {
        break;
      }
      size_t start = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      std::vector<char> freed(n, 0);
      for (size_t k = 0; k < window; ++k) freed[(start + k) % n] = 1;

      std::vector<IntDomain> doms = domains_;
      bool ok = true;
      for (size_t i = 0; i < n; ++i) {
        if (freed[i]) continue;
        int32_t var = decisions[i];
        doms[static_cast<size_t>(var)].Assign(
            best_values[static_cast<size_t>(var)]);
        if (doms[static_cast<size_t>(var)].empty()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        IntDomain& od = doms[static_cast<size_t>(objective_.id)];
        if (minimizing) {
          od.ClampMax(best_obj - 1);
        } else {
          od.ClampMin(best_obj + 1);
        }
        ok = !od.empty() && engine.PropagateAll(doms, &stats);
      }
      if (ok && bounded_dive(std::move(doms), 2000)) {
        stale = 0;
      } else {
        ++stale;
      }
    }
  }

  stats.wall_ms = elapsed_ms();
  stats.peak_memory_bytes =
      MemoryEstimate() + peak_frames * domains_.size() *
                             (sizeof(IntDomain) + 2 * sizeof(IntDomain::Range));

  if (have_incumbent) {
    out.values = std::move(best_values);
    out.objective = best_obj;
    // With a cutoff we cannot claim optimality (except pure satisfaction,
    // where any solution is terminal).
    out.status = (cutoff && sense_ != Sense::kSatisfy) ? SolveStatus::kFeasible
                                                       : SolveStatus::kOptimal;
  } else {
    out.status = cutoff ? SolveStatus::kUnknown : SolveStatus::kInfeasible;
  }
  return out;
}

}  // namespace cologne::solver

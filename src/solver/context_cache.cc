#include "solver/context_cache.h"

#include "common/rng.h"

namespace cologne::solver {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 64;  // floor: a probe window must fit with room to spare
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ContextCache::ContextCache(size_t capacity)
    : capacity_(RoundUpPow2(capacity)), mask_(capacity_ - 1) {}

void ContextCache::Clear() {
  if (!table_.empty()) {
    table_.assign(table_.size(), Entry{});
  }
  entries_ = 0;
}

uint64_t ContextCache::MixedKey(uint64_t sig) const {
  uint64_t k = SplitMix64(sig ^ model_key_);
  // Zero doubles as "empty slot"; steer the (1-in-2^64) real zero away.
  return k == 0 ? 0x9E3779B97F4A7C15ull : k;
}

size_t ContextCache::MemoryBytes() const {
  return table_.capacity() * sizeof(Entry);
}

void ContextCache::EnsureTable() {
  if (table_.empty()) table_.resize(capacity_);
}

bool ContextCache::Lookup(uint64_t sig, bool minimize, bool have_bound,
                          int64_t bound) const {
  if (table_.empty()) return false;
  const uint64_t key = MixedKey(sig);
  const size_t base = static_cast<size_t>(key) & mask_;
  for (size_t p = 0; p < kProbes; ++p) {
    const Entry& e = table_[(base + p) & mask_];
    if ((e.flags & kOccupied) == 0 || e.key != key) continue;
    if ((e.flags & kUnconditional) != 0) return true;
    // Bounded proof "no solution better than e.bound": it covers the
    // caller's "better than `bound`" query iff that region is contained,
    // i.e. the caller's bound is no looser than the proven one.
    if (have_bound &&
        (minimize ? bound <= e.bound : bound >= e.bound)) {
      return true;
    }
    return false;
  }
  return false;
}

void ContextCache::Store(uint64_t sig, bool minimize, bool have_bound,
                         int64_t bound) {
  EnsureTable();
  const uint64_t key = MixedKey(sig);
  const size_t base = static_cast<size_t>(key) & mask_;
  Entry* slot = nullptr;
  for (size_t p = 0; p < kProbes; ++p) {
    Entry& e = table_[(base + p) & mask_];
    if ((e.flags & kOccupied) != 0 && e.key == key) {
      // Strengthen in place: unconditional dominates; among bounds the one
      // excluding more solutions wins (minimize: the larger bound).
      if (!have_bound) {
        e.flags |= kUnconditional;
      } else if ((e.flags & kUnconditional) == 0 &&
                 (minimize ? bound > e.bound : bound < e.bound)) {
        e.bound = bound;
      }
      return;
    }
    if (slot == nullptr && (e.flags & kOccupied) == 0) slot = &e;
  }
  if (slot == nullptr) {
    // Probe window full of other contexts: evict a key-determined victim
    // (deterministic, and different keys scatter across the window instead
    // of always trampling the same slot).
    slot = &table_[(base + (static_cast<size_t>(key >> 60) & (kProbes - 1))) &
                   mask_];
  } else {
    ++entries_;
  }
  slot->key = key;
  slot->bound = have_bound ? bound : 0;
  slot->flags =
      static_cast<uint8_t>(kOccupied | (have_bound ? 0 : kUnconditional));
}

}  // namespace cologne::solver

// Propagator interface and the propagation fixpoint engine.
//
// The solver follows the classic finite-domain architecture (as in Gecode,
// which the paper used as its black-box solver): propagators watch variables,
// a queue drives re-execution until fixpoint or failure, and search
// interleaves branching decisions with propagation.
//
// The engine runs in one of two modes:
//
//  - Event-typed (default): the engine registers itself as the store's
//    DomainListener, so every mutation — including the direct Assign/Clamp
//    calls search and LNS make without a PropCtx — arrives classified as a
//    kEvent* mask. Subscriptions are per (variable, event-mask): a wake is
//    suppressed (`wakes_filtered`) when the event cannot affect the
//    subscriber. Incremental propagators keep running aggregates in trailed
//    store aux slots, updated by coefficient-based advisor deltas (folded
//    inline by the engine) on every relevant event.
//    A propagator that reports entailment (PropCtx::SetEntailed) is skipped
//    (`props_skipped_entailed`) for the rest of the subtree; the flag lives
//    in a trailed aux slot, so Backtrack re-plugs it automatically. Ready
//    propagators drain from fixed priority buckets — wide linear sums (the
//    producers) before their narrow consumers — FIFO within a bucket, so
//    the schedule is deterministic. Because all propagators are monotone, the
//    fixpoint domains are scheduling-order-independent: search trees are
//    bit-identical to the naive mode, only the propagation-effort counters
//    differ.
//
//  - Naive reference (Model::Options::naive_propagation): the legacy flat
//    FIFO with full-recompute propagators, byte-identical to the
//    pre-event-engine scheduler — the baseline leg of the CI propagation
//    ratio gate and the oracle for the confluence sweep.
#ifndef COLOGNE_SOLVER_PROPAGATOR_H_
#define COLOGNE_SOLVER_PROPAGATOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "solver/domain.h"
#include "solver/store.h"
#include "solver/types.h"

namespace cologne::solver {

class PropagationEngine;

/// \brief Mutable view over the current domain store handed to propagators.
///
/// All domain mutations go through PropCtx so that the trail records the
/// pre-mutation domain (store undo) and watchers of changed variables are
/// re-queued automatically. Mutators return false exactly when the touched
/// domain became empty (failure).
class PropCtx {
 public:
  PropCtx(DomainStore* store, PropagationEngine* engine)
      : store_(store), engine_(engine) {}

  const IntDomain& dom(IntVar v) const { return store_->dom(v.id); }
  bool IsFixed(IntVar v) const { return dom(v).IsFixed(); }
  int64_t Min(IntVar v) const { return dom(v).min(); }
  int64_t Max(IntVar v) const { return dom(v).max(); }
  int64_t ValueOf(IntVar v) const { return dom(v).value(); }

  bool ClampMin(IntVar v, int64_t lo);
  bool ClampMax(IntVar v, int64_t hi);
  bool Assign(IntVar v, int64_t val);
  bool Remove(IntVar v, int64_t val);

  // --- Incremental-propagation surface (event-typed engine only) ----------

  /// True when the running propagator has live aux aggregates: its InitAux
  /// ran at engine attach and every Advise delta since has been applied. A
  /// false return (naive mode, standalone PropCtx in tests, or a propagator
  /// whose watch list failed the unique-variable precondition) means the
  /// propagator must take its full-recompute path.
  bool incremental() const { return aux_base_ >= 0; }
  __int128 AuxVal(int off) const { return store_->aux(aux_base_ + off); }
  void SetAuxVal(int off, __int128 v) { store_->SetAux(aux_base_ + off, v); }
  /// Report the running propagator entailed on the current subtree: it is
  /// skipped until backtracking unwinds past this level (the flag is a
  /// trailed aux slot). Only meaningful while the engine is executing the
  /// propagator in event mode; a no-op otherwise.
  void SetEntailed();

 private:
  friend class PropagationEngine;
  void Notify(int32_t var_id);

  DomainStore* store_;
  PropagationEngine* engine_;
  int32_t cur_prop_ = -1;  ///< Index of the running propagator (engine-set).
  int32_t aux_base_ = -1;  ///< Its aux base, or -1 = no incremental state.
};

/// \brief Base class for constraint propagators.
///
/// A propagator narrows the domains of its watched variables; returning false
/// signals that the constraint is unsatisfiable under the current store.
/// Propagators are immutable after construction and shared across concurrent
/// workers: all per-solve state (incremental aggregates, entailment flags)
/// lives in the worker's DomainStore aux slots, never in the propagator.
class Propagator {
 public:
  virtual ~Propagator() = default;
  /// Narrow domains; false on failure. Must be monotone and idempotent-safe
  /// (re-running on an unchanged store must not change anything).
  virtual bool Propagate(PropCtx& ctx) = 0;
  /// One-line description for tracing and test diagnostics.
  virtual std::string DebugString() const = 0;
  /// Stable short kind name ("linear", "times", ...) keying the per-kind
  /// propagation counters of the observability layer (obs/metrics.h).
  virtual const char* kind() const { return "other"; }
  /// True when a successful Propagate provably leaves this propagator at its
  /// own fixpoint — its prunes cannot enable further prunes *by itself*
  /// (e.g. a one-sided linear sum prunes opposite bounds only, leaving the
  /// sum it read untouched). The event-typed engine then drops the wake the
  /// run generated on itself instead of re-executing a propagator that is
  /// guaranteed to find nothing (Gecode's ES_FIX). Propagators returning
  /// false (the default) are instead re-run — uncounted, as part of the same
  /// execution episode — until they stop changing domains, so the global
  /// fixpoint is identical either way.
  virtual bool IdempotentAfterRun() const { return false; }
  /// Shape descriptor for the engine's inline no-op proof (see
  /// PropagationEngine::ProvablyAtFixpoint). Queried once at construction so
  /// the proof itself — evaluated on every mask-passing wake — costs no
  /// virtual dispatch. kNone: no proof available, always run.
  struct FixpointProof {
    enum class Kind : uint8_t { kNone, kLinear, kReified };
    Kind kind = Kind::kNone;
    Rel rel = Rel::kLe;  ///< The (positive) relation of the linear pass.
    int32_t b = -1;      ///< Reified control variable id (kReified only).
  };
  virtual FixpointProof fixpoint_proof() const { return {}; }
  /// Variable ids this propagator must be re-run for when they change.
  const std::vector<int32_t>& watched() const { return watched_; }
  /// Per-watch-entry event masks (parallel to watched()): the kEvent* set
  /// that can affect this propagator through that variable.
  const std::vector<uint8_t>& watch_masks() const { return watch_masks_; }

  // --- Advisor surface (event-typed engine) -------------------------------

  /// Number of trailed aux slots this propagator's aggregates need (0 = not
  /// incremental). Allocated store-side at engine attach.
  virtual int NumAuxSlots() const { return 0; }
  /// Compute the aggregates from the store's current domains into
  /// [aux_base, aux_base + NumAuxSlots()). Called once at attach (level 0).
  virtual void InitAux(DomainStore& store, int aux_base) const {
    (void)store;
    (void)aux_base;
  }
  /// Advisor: the coefficient by which watched()[watch_pos] contributes to
  /// the [sum-min, sum-max] aggregates in aux slots 0/1 (0 = no
  /// contribution, e.g. a reified control variable). Queried once at engine
  /// construction; the engine folds bound deltas into the aggregates inline
  /// — on every bound event of a subscribed variable, even when the wake
  /// itself is mask-filtered, so aggregates never go stale — without a
  /// virtual dispatch on the mutation hot path.
  virtual int64_t AdviseCoefficient(uint32_t watch_pos) const {
    (void)watch_pos;
    return 0;
  }

 protected:
  void Watch(IntVar v, uint8_t mask = kEventAny) {
    watched_.push_back(v.id);
    watch_masks_.push_back(mask);
  }
  void WatchExpr(const LinExpr& e, uint8_t mask = kEventAny) {
    for (const auto& [c, v] : e.terms) Watch(v, mask);
  }
  /// Watch an expression with sign-dependent masks: terms with a positive
  /// coefficient subscribe `pos_mask`, negative ones `neg_mask` (a linear
  /// `e <= 0` only fails/prunes when its sum-of-mins rises, which a positive
  /// coefficient does via the variable's min and a negative one via its max).
  void WatchExprSigned(const LinExpr& e, uint8_t pos_mask, uint8_t neg_mask) {
    for (const auto& [c, v] : e.terms) Watch(v, c >= 0 ? pos_mask : neg_mask);
  }

 private:
  std::vector<int32_t> watched_;
  std::vector<uint8_t> watch_masks_;
};

/// \brief Queue-driven propagation-to-fixpoint engine.
///
/// Owned by the search; the propagator set is fixed after model construction
/// (branch-and-bound objective cuts are applied by the search by clamping the
/// objective variable's domain directly).
class PropagationEngine : public DomainListener {
 public:
  /// Builds watch lists (deduplicated: a variable appearing several times in
  /// one propagator's watch list yields a single subscription whose mask is
  /// the union — one wake per (propagator, change)). `props` must outlive
  /// the engine. `naive` selects the legacy flat-FIFO reference mode.
  PropagationEngine(const std::vector<std::unique_ptr<Propagator>>* props,
                    size_t num_vars, bool naive = false);

  /// Event mode: allocate entailment flags + advisor aggregates as trailed
  /// aux slots of `store` (initialized from its current domains — call after
  /// Init, at level 0) and register as its listener. Naive mode: no-op, so
  /// the store keeps the listener-free mutator fast path. The store must
  /// outlive the engine or be re-attached after re-Init.
  void AttachStore(DomainStore& store);

  /// Run all propagators to fixpoint on `store`. False on failure (the store
  /// is left mid-propagation; the caller backtracks the level to recover).
  bool PropagateAll(DomainStore& store, SolveStats* stats);

  /// Run to fixpoint starting from the watchers of the changed variables.
  /// In attached event mode the seed list is redundant — the store listener
  /// already enqueued (and mask-filtered) the affected subscribers as the
  /// mutations happened — so only the pending queue is drained.
  bool PropagateFrom(DomainStore& store,
                     const std::vector<int32_t>& changed_vars,
                     SolveStats* stats);

  /// Run whatever the listener enqueued since the last run (event mode); in
  /// naive mode, a full PropagateAll — the call sites (LNS neighborhood
  /// repair) historically re-ran every propagator there, and the reference
  /// mode must reproduce those counts exactly.
  bool PropagateDelta(DomainStore& store, SolveStats* stats);

  /// Discard pending wakes. Search calls this on paths that fail *without*
  /// running propagation (e.g. a branch assignment that empties a domain):
  /// the backtrack restores the domains, but listener-enqueued wakes would
  /// otherwise leak into the next node. (Stale wakes are sound — propagators
  /// are idempotent on the restored fixpoint — this keeps effort counters
  /// honest.) No-op in naive mode, where those paths never enqueue.
  void DrainQueue();

  /// Called by PropCtx when a variable's domain changed. In attached event
  /// mode this is a no-op (the store listener already delivered the typed
  /// event); otherwise it conservatively wakes every watcher.
  void OnVarChanged(int32_t var_id);

  /// DomainListener: classify + advise + filter + enqueue.
  void OnDomainEvent(int32_t var, uint8_t events, int64_t old_min,
                     int64_t old_max) override;

  /// Executions per propagator index over the engine's lifetime (sums to
  /// SolveStats::propagations); the search folds these into per-kind
  /// counters at the end of a solve.
  const std::vector<uint64_t>& run_counts() const { return run_counts_; }
  /// Wakes suppressed by event-mask filtering or by an advisor no-op proof
  /// (Propagator::AtFixpoint), including queued entries dropped at pop time
  /// (event mode only).
  uint64_t wakes_filtered() const { return wakes_filtered_; }
  /// Wakes + queue pops suppressed because the propagator was entailed.
  uint64_t props_skipped_entailed() const { return skipped_entailed_; }

 private:
  /// One per-variable subscription record (event mode).
  struct WatchEntry {
    uint32_t prop;  ///< Propagator index.
    uint8_t mask;   ///< Union of the kEvent* masks this var registered.
    int64_t coef;   ///< Aggregate contribution (AdviseCoefficient), 0 = none.
  };
  static constexpr int kNumBuckets = 4;

  bool RunQueue(DomainStore& store, SolveStats* stats);
  void Enqueue(size_t prop_idx);
  /// Inline evaluation of `proofs_[prop]` against the live aggregates: true
  /// when running the propagator now provably changes nothing (and cannot
  /// fail), so the wake can be dropped with the fixpoint bit-identical. Any
  /// later change that could make it prune arrives as a new event on a
  /// watched variable, re-running this check against fresh aggregates.
  bool ProvablyAtFixpoint(const Propagator::FixpointProof& proof,
                          int aux_base) const;
  bool IsEntailed(size_t prop_idx) const {
    return store_ != nullptr && store_->aux(entailed_base_ + static_cast<int>(prop_idx)) != 0;
  }
  void MarkEntailed(int32_t prop_idx) {
    if (store_ != nullptr && prop_idx >= 0) {
      store_->SetAux(entailed_base_ + prop_idx, 1);
    }
  }
  friend class PropCtx;

  const std::vector<std::unique_ptr<Propagator>>* props_;
  const bool naive_;
  std::vector<std::vector<size_t>> watchers_;  // var id -> propagator indices
  std::vector<std::vector<WatchEntry>> subs_;  // var id -> typed subscriptions
  std::array<std::deque<uint32_t>, kNumBuckets> buckets_;
  std::vector<uint8_t> priority_;  // prop idx -> bucket (0 in naive mode)
  std::vector<char> in_queue_;
  std::vector<uint64_t> run_counts_;
  std::vector<Propagator::FixpointProof> proofs_;  // construction-time cache
  std::vector<char> idempotent_;  // IdempotentAfterRun(), cached likewise

  DomainStore* store_ = nullptr;  // attached store (event mode only)
  int entailed_base_ = -1;        // aux base of the per-prop entailed flags
  std::vector<int32_t> aux_base_; // per-prop advisor aux base, -1 = none
  std::vector<char> has_dup_watch_;  // unique-variable precondition failed
  uint64_t wakes_filtered_ = 0;
  uint64_t skipped_entailed_ = 0;
};

// ---------------------------------------------------------------------------
// Shared linear-arithmetic helpers (used by linear and reified propagators).
// ---------------------------------------------------------------------------

/// Bounds [min,max] of an affine expression under the current store.
struct ExprBounds {
  int64_t min;
  int64_t max;
};
ExprBounds BoundsOf(const PropCtx& ctx, const LinExpr& e);

/// Clamp exact __int128 bounds into ExprBounds range (±INT64_MAX/2). The
/// clamp preserves sign and zero, so EntailedRel over clamped bounds equals
/// entailment over the exact ones.
ExprBounds ClampExprBounds(__int128 lo, __int128 hi);

/// Three-valued entailment of `e rel 0` from bounds alone.
enum class Entail { kYes, kNo, kMaybe };
Entail EntailedRel(const ExprBounds& b, Rel rel);

/// Bounds-consistent pruning of `e rel 0`; false on failure.
bool PruneLinear(PropCtx& ctx, const LinExpr& e, Rel rel);

/// Incremental variant: identical pruning, but the sum-of-mins/maxes first
/// pass is read from the propagator's live aux aggregates (slots 0/1 =
/// exact sum-min/sum-max of `e`) instead of recomputed over all terms.
/// Requires ctx.incremental().
bool PruneLinearIncremental(PropCtx& ctx, const LinExpr& e, Rel rel);

/// No-op proof for the prune pass(es) of `e rel 0` from the live aggregates:
/// a pass over `g = sign*e + add <= 0` can narrow some domain iff a term's
/// width `|c|*(max-min)` exceeds the pass slack `-min(g)` (and fails iff the
/// slack is negative, which `max_width >= 0` never proves away). `max_width`
/// may be any upper bound on the true maximum term width — domains only
/// narrow between resyncs, so a stale bound errs toward running. kNe prunes
/// from fixed-value counts the aggregates don't carry: never provably a
/// no-op.
bool LinearPassAtFixpoint(Rel rel, __int128 sum_min, __int128 sum_max,
                          __int128 max_width);

// ---------------------------------------------------------------------------
// PropCtx inline mutators (below PropagationEngine: Notify needs its
// definition). The no-change early-outs inside DomainStore are the fixpoint
// common case; keeping the whole path inline costs a comparison, not a call.
// ---------------------------------------------------------------------------

inline void PropCtx::Notify(int32_t var_id) {
  if (engine_ != nullptr) engine_->OnVarChanged(var_id);
}

inline void PropCtx::SetEntailed() {
  if (engine_ != nullptr) engine_->MarkEntailed(cur_prop_);
}

inline bool PropCtx::ClampMin(IntVar v, int64_t lo) {
  if (store_->ClampMin(v.id, lo)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

inline bool PropCtx::ClampMax(IntVar v, int64_t hi) {
  if (store_->ClampMax(v.id, hi)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

inline bool PropCtx::Assign(IntVar v, int64_t val) {
  if (store_->Assign(v.id, val)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return !store_->dom(v.id).empty();
}

inline bool PropCtx::Remove(IntVar v, int64_t val) {
  if (store_->Remove(v.id, val)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

/// e rel 0.
std::unique_ptr<Propagator> MakeLinear(LinExpr e, Rel rel);
/// b <=> (e rel 0), with b a 0/1 variable.
std::unique_ptr<Propagator> MakeReifiedLinear(IntVar b, LinExpr e, Rel rel);
/// z == x * y (also correct when x == y, i.e. squares).
std::unique_ptr<Propagator> MakeTimes(IntVar z, IntVar x, IntVar y);
/// z == |x|.
std::unique_ptr<Propagator> MakeAbs(IntVar z, IntVar x);
/// b <=> (b1 or b2 or ... or bn) over 0/1 variables.
std::unique_ptr<Propagator> MakeOr(IntVar b, std::vector<IntVar> bs);
/// z == max(x, c).
std::unique_ptr<Propagator> MakeMaxConst(IntVar z, IntVar x, int64_t c);

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_PROPAGATOR_H_

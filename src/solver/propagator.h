// Propagator interface and the propagation fixpoint engine.
//
// The solver follows the classic finite-domain architecture (as in Gecode,
// which the paper used as its black-box solver): propagators watch variables,
// a queue drives re-execution until fixpoint or failure, and search
// interleaves branching decisions with propagation.
#ifndef COLOGNE_SOLVER_PROPAGATOR_H_
#define COLOGNE_SOLVER_PROPAGATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "solver/domain.h"
#include "solver/store.h"
#include "solver/types.h"

namespace cologne::solver {

class PropagationEngine;

/// \brief Mutable view over the current domain store handed to propagators.
///
/// All domain mutations go through PropCtx so that the trail records the
/// pre-mutation domain (store undo) and watchers of changed variables are
/// re-queued automatically. Mutators return false exactly when the touched
/// domain became empty (failure).
class PropCtx {
 public:
  PropCtx(DomainStore* store, PropagationEngine* engine)
      : store_(store), engine_(engine) {}

  const IntDomain& dom(IntVar v) const { return store_->dom(v.id); }
  bool IsFixed(IntVar v) const { return dom(v).IsFixed(); }
  int64_t Min(IntVar v) const { return dom(v).min(); }
  int64_t Max(IntVar v) const { return dom(v).max(); }
  int64_t ValueOf(IntVar v) const { return dom(v).value(); }

  bool ClampMin(IntVar v, int64_t lo);
  bool ClampMax(IntVar v, int64_t hi);
  bool Assign(IntVar v, int64_t val);
  bool Remove(IntVar v, int64_t val);

 private:
  void Notify(int32_t var_id);
  DomainStore* store_;
  PropagationEngine* engine_;
};

/// \brief Base class for constraint propagators.
///
/// A propagator narrows the domains of its watched variables; returning false
/// signals that the constraint is unsatisfiable under the current store.
class Propagator {
 public:
  virtual ~Propagator() = default;
  /// Narrow domains; false on failure. Must be monotone and idempotent-safe
  /// (re-running on an unchanged store must not change anything).
  virtual bool Propagate(PropCtx& ctx) = 0;
  /// One-line description for tracing and test diagnostics.
  virtual std::string DebugString() const = 0;
  /// Stable short kind name ("linear", "times", ...) keying the per-kind
  /// propagation counters of the observability layer (obs/metrics.h).
  virtual const char* kind() const { return "other"; }
  /// Variable ids this propagator must be re-run for when they change.
  const std::vector<int32_t>& watched() const { return watched_; }

 protected:
  void Watch(IntVar v) { watched_.push_back(v.id); }
  void WatchExpr(const LinExpr& e) {
    for (const auto& [c, v] : e.terms) Watch(v);
  }

 private:
  std::vector<int32_t> watched_;
};

/// \brief Queue-driven propagation-to-fixpoint engine.
///
/// Owned by the search; the propagator set is fixed after model construction
/// (branch-and-bound objective cuts are applied by the search by clamping the
/// objective variable's domain directly).
class PropagationEngine {
 public:
  /// Builds watch lists. `props` must outlive the engine.
  PropagationEngine(const std::vector<std::unique_ptr<Propagator>>* props,
                    size_t num_vars);

  /// Run all propagators to fixpoint on `store`. False on failure (the store
  /// is left mid-propagation; the caller backtracks the level to recover).
  bool PropagateAll(DomainStore& store, SolveStats* stats);

  /// Run to fixpoint starting from the watchers of the changed variables.
  bool PropagateFrom(DomainStore& store,
                     const std::vector<int32_t>& changed_vars,
                     SolveStats* stats);

  /// Called by PropCtx when a variable's domain changed.
  void OnVarChanged(int32_t var_id);

  /// Executions per propagator index over the engine's lifetime (sums to
  /// SolveStats::propagations); the search folds these into per-kind
  /// counters at the end of a solve.
  const std::vector<uint64_t>& run_counts() const { return run_counts_; }

 private:
  bool RunQueue(DomainStore& store, SolveStats* stats);
  void Enqueue(size_t prop_idx);

  const std::vector<std::unique_ptr<Propagator>>* props_;
  std::vector<std::vector<size_t>> watchers_;  // var id -> propagator indices
  std::deque<size_t> queue_;
  std::vector<char> in_queue_;
  std::vector<uint64_t> run_counts_;
};

// ---------------------------------------------------------------------------
// Shared linear-arithmetic helpers (used by linear and reified propagators).
// ---------------------------------------------------------------------------

/// Bounds [min,max] of an affine expression under the current store.
struct ExprBounds {
  int64_t min;
  int64_t max;
};
ExprBounds BoundsOf(const PropCtx& ctx, const LinExpr& e);

/// Three-valued entailment of `e rel 0` from bounds alone.
enum class Entail { kYes, kNo, kMaybe };
Entail EntailedRel(const ExprBounds& b, Rel rel);

/// Bounds-consistent pruning of `e rel 0`; false on failure.
bool PruneLinear(PropCtx& ctx, const LinExpr& e, Rel rel);

// ---------------------------------------------------------------------------
// Propagator factories (definitions in propagators.cc).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// PropCtx inline mutators (below PropagationEngine: Notify needs its
// definition). The no-change early-outs inside DomainStore are the fixpoint
// common case; keeping the whole path inline costs a comparison, not a call.
// ---------------------------------------------------------------------------

inline void PropCtx::Notify(int32_t var_id) {
  if (engine_ != nullptr) engine_->OnVarChanged(var_id);
}

inline bool PropCtx::ClampMin(IntVar v, int64_t lo) {
  if (store_->ClampMin(v.id, lo)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

inline bool PropCtx::ClampMax(IntVar v, int64_t hi) {
  if (store_->ClampMax(v.id, hi)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

inline bool PropCtx::Assign(IntVar v, int64_t val) {
  if (store_->Assign(v.id, val)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return !store_->dom(v.id).empty();
}

inline bool PropCtx::Remove(IntVar v, int64_t val) {
  if (store_->Remove(v.id, val)) {
    if (store_->dom(v.id).empty()) return false;
    Notify(v.id);
  }
  return true;
}

/// e rel 0.
std::unique_ptr<Propagator> MakeLinear(LinExpr e, Rel rel);
/// b <=> (e rel 0), with b a 0/1 variable.
std::unique_ptr<Propagator> MakeReifiedLinear(IntVar b, LinExpr e, Rel rel);
/// z == x * y (also correct when x == y, i.e. squares).
std::unique_ptr<Propagator> MakeTimes(IntVar z, IntVar x, IntVar y);
/// z == |x|.
std::unique_ptr<Propagator> MakeAbs(IntVar z, IntVar x);
/// b <=> (b1 or b2 or ... or bn) over 0/1 variables.
std::unique_ptr<Propagator> MakeOr(IntVar b, std::vector<IntVar> bs);
/// z == max(x, c).
std::unique_ptr<Propagator> MakeMaxConst(IntVar z, IntVar x, int64_t c);

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_PROPAGATOR_H_

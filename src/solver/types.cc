#include "solver/types.h"

#include <algorithm>
#include <map>

namespace cologne::solver {

const char* RelName(Rel rel) {
  switch (rel) {
    case Rel::kEq: return "==";
    case Rel::kNe: return "!=";
    case Rel::kLe: return "<=";
    case Rel::kLt: return "<";
    case Rel::kGe: return ">=";
    case Rel::kGt: return ">";
  }
  return "?";
}

Rel Negate(Rel rel) {
  switch (rel) {
    case Rel::kEq: return Rel::kNe;
    case Rel::kNe: return Rel::kEq;
    case Rel::kLe: return Rel::kGt;
    case Rel::kLt: return Rel::kGe;
    case Rel::kGe: return Rel::kLt;
    case Rel::kGt: return Rel::kLe;
  }
  return Rel::kEq;
}

Rel Flip(Rel rel) {
  switch (rel) {
    case Rel::kEq: return Rel::kEq;
    case Rel::kNe: return Rel::kNe;
    case Rel::kLe: return Rel::kGe;
    case Rel::kLt: return Rel::kGt;
    case Rel::kGe: return Rel::kLe;
    case Rel::kGt: return Rel::kLt;
  }
  return rel;
}

bool EvalRel(int64_t lhs, Rel rel, int64_t rhs) {
  switch (rel) {
    case Rel::kEq: return lhs == rhs;
    case Rel::kNe: return lhs != rhs;
    case Rel::kLe: return lhs <= rhs;
    case Rel::kLt: return lhs < rhs;
    case Rel::kGe: return lhs >= rhs;
    case Rel::kGt: return lhs > rhs;
  }
  return false;
}

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  constant += o.constant;
  terms.insert(terms.end(), o.terms.begin(), o.terms.end());
  Canonicalize();
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  constant -= o.constant;
  for (const auto& [c, v] : o.terms) terms.push_back({-c, v});
  Canonicalize();
  return *this;
}

LinExpr& LinExpr::MulBy(int64_t k) {
  constant *= k;
  if (k == 0) {
    terms.clear();
    return *this;
  }
  for (auto& [c, v] : terms) c *= k;
  return *this;
}

void LinExpr::Canonicalize() {
  if (terms.empty()) return;
  std::map<int32_t, int64_t> merged;
  for (const auto& [c, v] : terms) merged[v.id] += c;
  terms.clear();
  for (const auto& [id, c] : merged) {
    if (c != 0) terms.push_back({c, IntVar{id}});
  }
}

std::string LinExpr::ToString() const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) out += " + ";
    out += std::to_string(terms[i].first) + "*x" + std::to_string(terms[i].second.id);
  }
  if (constant != 0 || terms.empty()) {
    if (!terms.empty()) out += " + ";
    out += std::to_string(constant);
  }
  return out;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kBranchAndBound: return "bnb";
    case Backend::kLns: return "lns";
    case Backend::kPortfolio: return "portfolio";
    case Backend::kParallelLns: return "parallel_lns";
    case Backend::kLocalSearch: return "local_search";
  }
  return "?";
}

bool ParseBackend(const std::string& name, Backend* out) {
  if (name == "bnb" || name == "branch_and_bound") {
    *out = Backend::kBranchAndBound;
    return true;
  }
  if (name == "lns") {
    *out = Backend::kLns;
    return true;
  }
  if (name == "portfolio") {
    *out = Backend::kPortfolio;
    return true;
  }
  if (name == "parallel_lns") {
    *out = Backend::kParallelLns;
    return true;
  }
  if (name == "local_search") {
    *out = Backend::kLocalSearch;
    return true;
  }
  return false;
}

const char* SolveStatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace cologne::solver

#include "solver/local_search.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "solver/search_internal.h"

namespace cologne::solver {

namespace {

using internal::DiveEnd;
using internal::Incumbent;
using internal::SearchContext;

/// The SA + tabu move walk. Requires an existing incumbent and an optimizing
/// sense. Updates `inc` in place; returns true when the incumbent provably
/// reached `objective_bound` (the propagated root's objective relaxation).
///
/// Every candidate is evaluated as one trail level over the propagated root:
/// assign all decisions to the candidate values, propagate, complete the
/// auxiliaries with a bounded first-solution dive, backtrack. The store must
/// be at root_level() on entry and is left there on return.
bool MoveWalk(SearchContext& ctx, int64_t objective_bound, Incumbent* inc) {
  if (!inc->found || !ctx.optimizing()) return false;
  auto at_bound = [&] { return inc->objective == objective_bound; };
  if (at_bound()) return true;

  const Model::Options& options = ctx.options();
  DomainStore& st = ctx.store();
  const std::vector<int32_t>& decisions = ctx.order().DecisionIds();

  // Per-decision candidate values from the propagated root (ascending, so
  // swap compatibility is a binary search). Only variables with two or more
  // root values can move; a model whose decisions are all root-fixed has no
  // neighborhood at all.
  std::vector<std::vector<int64_t>> root_values(
      static_cast<size_t>(ctx.model().num_vars()));
  std::vector<int32_t> movable;
  for (int32_t id : decisions) {
    std::vector<int64_t>& vals = root_values[static_cast<size_t>(id)];
    st.dom(id).AppendValues(&vals);
    if (vals.size() >= 2) movable.push_back(id);
  }
  if (movable.empty()) return false;
  const size_t n = movable.size();

  Rng rng(options.seed);

  // Geometric cooling from a scale set by the root relaxation gap, with
  // stagnation reheats (counted as restarts). Without an iteration or time
  // budget the walk still terminates: after a few reheats that fail to
  // improve the best-so-far, the basin is declared exhausted.
  const double t0 = std::max(
      1.0, std::fabs(static_cast<double>(inc->objective) -
                     static_cast<double>(objective_bound)) / 4.0);
  double temp = t0;
  const int stale_limit = static_cast<int>(std::max<size_t>(64, 8 * n));
  const int max_reheats = 3;
  int stale = 0;
  int reheats = 0;

  // Tabu on (variable, value) re-assignment attributes: accepting a move
  // forbids undoing it for `tenure` iterations, unless the candidate beats
  // the best-so-far (aspiration).
  const uint64_t tenure = 5 + static_cast<uint64_t>(n) / 4;
  std::map<std::pair<int32_t, int64_t>, uint64_t> tabu_until;

  // The walk's current point (may be worse than `inc` after uphill moves).
  std::vector<int64_t> cur = inc->values;
  int64_t cur_obj = inc->objective;

  uint64_t iters = 0;
  uint64_t shared_seen = 0;
  const bool minimizing = ctx.minimizing();

  while (true) {
    if (options.max_iterations > 0 && iters >= options.max_iterations) break;
    if (ctx.ShouldStop()) break;
    if (ctx.AdoptShared(inc, &shared_seen)) {
      // A concurrent worker published a better incumbent: continue the walk
      // from there (the shared-incumbent pattern of distributed LNS).
      cur = inc->values;
      cur_obj = inc->objective;
      stale = 0;
      if (at_bound()) return true;
    }
    if (stale >= stale_limit) {
      if (reheats >= max_reheats) break;
      ++reheats;
      ++ctx.stats.restarts;
      temp = t0;
      stale = 0;
    }
    ++iters;
    ++ctx.stats.iterations;

    // ---- Propose: swap two decisions' values, or shift one -----------------
    // moved = {(var, new_value)}; everything else keeps its `cur` value.
    std::pair<int32_t, int64_t> moved[2];
    size_t num_moved = 0;
    const bool try_swap = n >= 2 && rng.Bernoulli(0.5);
    if (try_swap) {
      const size_t i =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      size_t j =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 2));
      if (j >= i) ++j;
      const int32_t a = movable[i];
      const int32_t b = movable[j];
      const int64_t va = cur[static_cast<size_t>(a)];
      const int64_t vb = cur[static_cast<size_t>(b)];
      const std::vector<int64_t>& da = root_values[static_cast<size_t>(a)];
      const std::vector<int64_t>& db = root_values[static_cast<size_t>(b)];
      if (va != vb && std::binary_search(da.begin(), da.end(), vb) &&
          std::binary_search(db.begin(), db.end(), va)) {
        moved[0] = {a, vb};
        moved[1] = {b, va};
        num_moved = 2;
      }
      // Cross-incompatible pair: degrade to a shift below.
    }
    if (num_moved == 0) {
      const int32_t a = movable[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1))];
      const std::vector<int64_t>& da = root_values[static_cast<size_t>(a)];
      const int64_t va = cur[static_cast<size_t>(a)];
      // Uniform over the root values excluding the current one.
      const size_t cur_idx = static_cast<size_t>(
          std::lower_bound(da.begin(), da.end(), va) - da.begin());
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(da.size()) - 2));
      if (pick >= cur_idx) ++pick;
      moved[0] = {a, da[pick]};
      num_moved = 1;
    }

    // ---- Evaluate: one trail level over the propagated root ----------------
    ++ctx.stats.ls_moves;
    st.PushLevel();
    bool ok = true;
    std::vector<int32_t> changed;
    changed.reserve(decisions.size());
    for (int32_t id : decisions) {
      int64_t v = cur[static_cast<size_t>(id)];
      for (size_t m = 0; m < num_moved; ++m) {
        if (moved[m].first == id) v = moved[m].second;
      }
      st.Assign(id, v);
      if (st.dom(id).empty()) {
        ok = false;
        break;
      }
      changed.push_back(id);
    }
    if (ok) {
      ok = ctx.engine().PropagateFrom(st, changed, &ctx.stats);
    } else {
      // An assignment emptied a domain before propagation ran: discard the
      // wakes the listener enqueued for the level we are about to unwind.
      ctx.engine().DrainQueue();
    }
    Incumbent cand;
    if (ok) {
      SearchContext::DiveLimits complete;
      complete.stop_on_first = true;
      complete.bound_objective = false;
      complete.node_budget = 500;
      ctx.Dive(complete, &cand);
    }
    st.Backtrack();
    if (!cand.found) {
      ++stale;
      temp = std::max(temp * 0.995, 1e-9);
      continue;
    }

    const bool beats_best = minimizing ? cand.objective < inc->objective
                                       : cand.objective > inc->objective;

    // ---- Tabu check (aspiration: best-so-far improvements always pass) -----
    if (!beats_best) {
      bool is_tabu = false;
      for (size_t m = 0; m < num_moved; ++m) {
        auto it = tabu_until.find(moved[m]);
        if (it != tabu_until.end()) {
          if (it->second > iters) {
            is_tabu = true;
          } else {
            tabu_until.erase(it);
          }
        }
      }
      if (is_tabu) {
        ++ctx.stats.ls_tabu_hits;
        ++stale;
        temp = std::max(temp * 0.995, 1e-9);
        continue;
      }
    }

    // ---- Simulated-annealing acceptance ------------------------------------
    const double delta = minimizing
                             ? static_cast<double>(cand.objective) -
                                   static_cast<double>(cur_obj)
                             : static_cast<double>(cur_obj) -
                                   static_cast<double>(cand.objective);
    const bool accept =
        delta <= 0 || rng.UniformDouble() < std::exp(-delta / temp);
    if (accept) {
      ++ctx.stats.ls_accepted;
      // Undoing the move is tabu for `tenure` iterations.
      for (size_t m = 0; m < num_moved; ++m) {
        const int32_t id = moved[m].first;
        tabu_until[{id, cur[static_cast<size_t>(id)]}] = iters + tenure;
      }
      cur = cand.values;
      cur_obj = cand.objective;
    }
    if (beats_best) {
      inc->objective = cand.objective;
      inc->values = std::move(cand.values);
      stale = 0;
      reheats = 0;
      if (at_bound()) return true;
    } else {
      ++stale;
    }
    temp = std::max(temp * 0.995, 1e-9);
  }
  return false;
}

}  // namespace

Solution LocalSearch::Solve(const Model& model,
                            const Model::Options& options) const {
  SearchContext ctx(model, options);
  Solution out;  // Solution::backend is stamped by the Solve dispatch.

  if (!ctx.PropagateRoot()) {
    ctx.FinalizeStats();
    out.status = SolveStatus::kInfeasible;
    out.stats = ctx.stats;
    return out;
  }
  // Optimality-by-propagation only holds for the *plain* root: a store fixed
  // by warm-start hints is just a feasible point.
  bool root_fixed = true;
  for (size_t i = 0; i < ctx.store().size(); ++i) {
    if (!ctx.store()[i].IsFixed()) {
      root_fixed = false;
      break;
    }
  }
  // Valid relaxation bound on the objective, from the propagated root (read
  // before any hint level narrows the store further).
  int64_t objective_bound = 0;
  if (ctx.optimizing()) {
    const IntDomain& od = ctx.store().dom(model.objective_var().id);
    objective_bound = ctx.minimizing() ? od.min() : od.max();
  }

  // ---- Initial assignment ---------------------------------------------------
  // Propagation-guided greedy construction, exactly as the LNS backend: a
  // first-solution dive, optionally narrowed first by the warm-start hint,
  // with a plain-root retry when the hint narrowed the store into an
  // unsatisfiable region.
  Incumbent inc;
  size_t hints_applied = 0;
  bool hint_narrowed = ctx.ApplyWarmStart(&hints_applied);
  SearchContext::DiveLimits first;
  first.stop_on_first = true;
  first.bound_objective = false;
  first.hint = options.warm_start.empty() ? nullptr : &options.warm_start;
  DiveEnd end = ctx.Dive(first, &inc);
  if (!inc.found && hint_narrowed) {
    ctx.store().BacktrackTo(ctx.root_level());
    end = ctx.Dive(first, &inc);
  }

  bool proven_exhausted = !inc.found && end == DiveEnd::kExhausted;

  // ---- Incumbent sharpening -------------------------------------------------
  // A short bounded constructive burst before the move walk (the incumbent-
  // seeding pattern the LNS backend uses): when the bounded DFS exhausts, the
  // incumbent is provably optimal and the walk is moot — on the small
  // per-link models the apps emit this is the common case, so the heuristic
  // backend usually matches the exact one.
  bool proven_optimal = false;
  if (inc.found && ctx.optimizing() && !options.incremental) {
    SearchContext::DiveLimits sharpen;
    sharpen.bound_objective = true;
    sharpen.node_budget = 2000;
    if (options.time_limit_ms > 0) {
      sharpen.soft_deadline_ms = options.time_limit_ms * 0.15;
    }
    sharpen.hint = first.hint;
    ctx.store().BacktrackTo(ctx.root_level());
    proven_optimal = ctx.Dive(sharpen, &inc) == DiveEnd::kExhausted;
  }

  // ---- Move walk ------------------------------------------------------------
  // kSatisfy models stop at the first solution; an incremental solve whose
  // fingerprint pass found nothing dirty keeps the warm-started incumbent.
  const bool skip_improve =
      options.incremental && options.focus_groups.empty();
  if (inc.found && ctx.optimizing() && !proven_optimal && !skip_improve) {
    ctx.store().BacktrackTo(ctx.root_level());
    proven_optimal = MoveWalk(ctx, objective_bound, &inc);
  }

  ctx.FinalizeStats();
  out.stats = ctx.stats;
  if (inc.found) {
    out.values = std::move(inc.values);
    out.objective = inc.objective;
    // Local search is incomplete: optimality is only claimed when the
    // sharpening dive exhausted the space, the incumbent reached the root
    // relaxation bound, the root was fixed by pure propagation, or the
    // sense is satisfaction.
    out.status =
        (model.sense() == Sense::kSatisfy || root_fixed || proven_optimal)
            ? SolveStatus::kOptimal
            : SolveStatus::kFeasible;
  } else {
    out.status =
        proven_exhausted ? SolveStatus::kInfeasible : SolveStatus::kUnknown;
  }
  return out;
}

}  // namespace cologne::solver
